// Integration tests reproducing the paper's validation methodology
// (Section 4 / Table 1): the analytical buffer model must agree with LRU
// simulation across trees, buffer sizes, and query models.
//
// The paper validates with 20 batches of 1,000,000 queries and reports
// agreement within 2%. These tests use shorter runs, so the tolerance is
// slightly looser; the full-scale run lives in bench/table1_validation.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "model/access_prob.h"
#include "model/cost_model.h"
#include "rtree/bulk_load.h"
#include "rtree/summary.h"
#include "sim/lru_sim.h"
#include "sim/query_gen.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb {
namespace {

using geom::Point;
using model::QuerySpec;
using rtree::LoadAlgorithm;
using rtree::TreeSummary;
using storage::MemPageStore;

// Relative tolerance for model-vs-simulation agreement. The paper reports
// <= 2% with 20M queries/cell; with ~300k queries/cell statistical noise is
// larger, so accept 8% relative or 0.02 absolute, whichever is looser.
constexpr double kRelTol = 0.08;
constexpr double kAbsTol = 0.02;

void ExpectClose(double model, double sim, const std::string& label) {
  double tol = std::max(kAbsTol, kRelTol * sim);
  EXPECT_NEAR(model, sim, tol) << label;
}

struct BuiltSummary {
  std::unique_ptr<TreeSummary> summary;
  std::vector<Point> centers;
};

BuiltSummary Build(const std::vector<geom::Rect>& rects, uint32_t fanout,
                   LoadAlgorithm algo) {
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(fanout),
                                 rects, algo);
  EXPECT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  EXPECT_TRUE(summary.ok());
  BuiltSummary out;
  out.summary = std::make_unique<TreeSummary>(*summary);
  out.centers = data::Centers(rects);
  return out;
}

double Simulate(const TreeSummary& summary, const QuerySpec& spec,
                const std::vector<Point>* centers, uint64_t buffer,
                uint64_t seed, uint32_t batches = 10,
                uint64_t batch_size = 30000) {
  sim::SimOptions options;
  options.buffer_pages = buffer;
  sim::MbrListSimulator simulator(&summary, options);
  auto gen = sim::MakeGenerator(spec, centers);
  EXPECT_TRUE(gen.ok());
  Rng rng(seed);
  auto result = simulator.Run(gen->get(), &rng, batches, batch_size);
  EXPECT_TRUE(result.ok());
  return result->mean_disk_accesses;
}

double Predict(const TreeSummary& summary, const QuerySpec& spec,
               const std::vector<Point>* centers, uint64_t buffer) {
  auto ed = model::PredictDiskAccesses(summary, spec, buffer, centers);
  EXPECT_TRUE(ed.ok());
  return *ed;
}

// --------------------------------------------------------------------------
// Table-1 style: uniform point queries on the paper's 1,668-node trees.
// --------------------------------------------------------------------------

class Table1ValidationTest
    : public ::testing::TestWithParam<std::tuple<LoadAlgorithm, uint64_t>> {};

TEST_P(Table1ValidationTest, ModelAgreesWithSimulation) {
  auto [algo, buffer] = GetParam();
  Rng data_rng(1998);
  auto rects = data::GenerateUniformPoints(40000, &data_rng);
  BuiltSummary built = Build(rects, 25, algo);
  ASSERT_EQ(built.summary->NumNodes(), 1668u);

  QuerySpec spec = QuerySpec::UniformPoint();
  double predicted = Predict(*built.summary, spec, nullptr, buffer);
  double simulated = Simulate(*built.summary, spec, nullptr, buffer,
                              /*seed=*/buffer * 7919 + 1);
  ExpectClose(predicted, simulated,
              std::string(LoadAlgorithmName(algo)) + " buffer " +
                  std::to_string(buffer));
}

INSTANTIATE_TEST_SUITE_P(
    TreesAndBuffers, Table1ValidationTest,
    ::testing::Combine(::testing::Values(LoadAlgorithm::kNearestX,
                                         LoadAlgorithm::kHilbertSort,
                                         LoadAlgorithm::kStr),
                       ::testing::Values(10, 100, 400)),
    [](const auto& info) {
      return std::string(LoadAlgorithmName(std::get<0>(info.param))) + "_B" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------------------------
// Region queries and data-driven queries.
// --------------------------------------------------------------------------

TEST(RegionValidationTest, UniformRegionModelAgreesWithSimulation) {
  Rng data_rng(2024);
  auto rects = data::GenerateSyntheticRegion(10000, &data_rng);
  BuiltSummary built = Build(rects, 100, LoadAlgorithm::kHilbertSort);
  QuerySpec spec = QuerySpec::UniformRegion(0.1, 0.1);  // 1% region query.
  // Buffers comfortably above the per-query footprint (~8 nodes): the
  // model's recency-window approximation assumes the buffer outlives a
  // single query (see SmallBufferRegimeTest for the other side).
  for (uint64_t buffer : {30, 80}) {
    double predicted = Predict(*built.summary, spec, nullptr, buffer);
    double simulated = Simulate(*built.summary, spec, nullptr, buffer,
                                /*seed=*/buffer + 5, 10, 15000);
    ExpectClose(predicted, simulated, "region buffer " + std::to_string(buffer));
  }
}

TEST(DataDrivenValidationTest, PointModelAgreesWithSimulation) {
  Rng data_rng(2025);
  data::TigerParams params;
  params.num_rects = 8000;
  auto rects = data::GenerateTigerSurrogate(params, &data_rng);
  BuiltSummary built = Build(rects, 50, LoadAlgorithm::kHilbertSort);
  QuerySpec spec = QuerySpec::DataDrivenPoint();
  for (uint64_t buffer : {10, 60}) {
    double predicted = Predict(*built.summary, spec, &built.centers, buffer);
    double simulated = Simulate(*built.summary, spec, &built.centers, buffer,
                                /*seed=*/buffer + 77, 10, 20000);
    ExpectClose(predicted, simulated,
                "data-driven buffer " + std::to_string(buffer));
  }
}

TEST(DataDrivenValidationTest, RegionModelAgreesWithSimulation) {
  Rng data_rng(2026);
  data::CfdParams params;
  params.num_points = 6000;
  auto rects = data::GenerateCfdSurrogate(params, &data_rng);
  BuiltSummary built = Build(rects, 50, LoadAlgorithm::kHilbertSort);
  QuerySpec spec = QuerySpec::DataDrivenRegion(0.02, 0.02);
  for (uint64_t buffer : {40, 90}) {
    double predicted = Predict(*built.summary, spec, &built.centers, buffer);
    double simulated = Simulate(*built.summary, spec, &built.centers, buffer,
                                /*seed=*/buffer + 99, 10, 20000);
    // Extreme data skew plus query-to-query node correlation stretches the
    // model's independence approximation; accuracy here is ~10% rather than
    // the paper's 2% point-query figure (recorded in EXPERIMENTS.md).
    double tol = std::max(kAbsTol, 0.12 * simulated);
    EXPECT_NEAR(predicted, simulated, tol)
        << "cfd data-driven buffer " << buffer;
  }
}

TEST(SmallBufferRegimeTest, ModelUnderestimatesWhenBufferBelowQueryFootprint) {
  // Documented model limitation (reported in EXPERIMENTS.md): when the
  // buffer is smaller than a single region query's node footprint, N* is
  // forced to its floor and the mean-field hit estimate is optimistic, so
  // the model *underestimates* disk accesses. The paper validates with
  // point queries (footprint = tree height), where this regime is absent.
  Rng data_rng(2030);
  auto rects = data::GenerateSyntheticRegion(10000, &data_rng);
  BuiltSummary built = Build(rects, 100, LoadAlgorithm::kHilbertSort);
  QuerySpec spec = QuerySpec::UniformRegion(0.1, 0.1);
  const uint64_t buffer = 5;  // Below the ~8-node per-query footprint.
  double predicted = Predict(*built.summary, spec, nullptr, buffer);
  double simulated = Simulate(*built.summary, spec, nullptr, buffer,
                              /*seed=*/77, 10, 10000);
  EXPECT_LT(predicted, simulated);          // Bias direction is consistent.
  EXPECT_GT(predicted, simulated * 0.6);    // And bounded.
}

// --------------------------------------------------------------------------
// Pinning: model vs simulation.
// --------------------------------------------------------------------------

TEST(PinningValidationTest, PinnedModelAgreesWithPinnedSimulation) {
  Rng data_rng(2027);
  auto rects = data::GenerateUniformPoints(40000, &data_rng);
  BuiltSummary built = Build(rects, 25, LoadAlgorithm::kHilbertSort);
  auto probs = model::UniformAccessProbabilities(*built.summary, 0.0, 0.0);
  ASSERT_TRUE(probs.ok());

  for (uint16_t levels : {1, 2, 3}) {
    const uint64_t buffer = 500;
    auto predicted = model::ExpectedDiskAccessesPinned(*built.summary, *probs,
                                                       buffer, levels);
    ASSERT_TRUE(predicted.feasible);

    sim::SimOptions options;
    options.buffer_pages = buffer;
    options.pinned_levels = levels;
    sim::MbrListSimulator simulator(built.summary.get(), options);
    sim::UniformPointGenerator gen;
    Rng rng(2100 + levels);
    auto result = simulator.Run(&gen, &rng, 10, 30000);
    ASSERT_TRUE(result.ok());
    ExpectClose(predicted.disk_accesses, result->mean_disk_accesses,
                "pinned levels " + std::to_string(levels));
  }
}

// --------------------------------------------------------------------------
// Qualitative paper findings at test scale.
// --------------------------------------------------------------------------

TEST(QualitativeTest, BufferChangesAlgorithmOrderingStory) {
  // Core claim of the paper: node accesses (bufferless) and disk accesses
  // (buffered) are different metrics; the bufferless metric overstates the
  // cost of a well-structured tree once a buffer exists. At minimum the
  // buffered cost must be well below the bufferless cost for a warm buffer.
  Rng data_rng(2028);
  data::TigerParams params;
  params.num_rects = 10000;
  auto rects = data::GenerateTigerSurrogate(params, &data_rng);
  BuiltSummary hs = Build(rects, 100, LoadAlgorithm::kHilbertSort);
  auto probs = model::UniformAccessProbabilities(*hs.summary, 0.0, 0.0);
  ASSERT_TRUE(probs.ok());
  double bufferless = model::ExpectedNodeAccesses(*probs);
  double buffered = model::ExpectedDiskAccesses(*probs, 50);
  EXPECT_LT(buffered, bufferless * 0.8);
}

TEST(QualitativeTest, DeeperBufferHelpsTatMoreLinearly) {
  // Section 5.3: TAT trees benefit roughly linearly from buffer increases;
  // HS trees get most of the benefit early. Check that HS's relative
  // improvement from a small buffer exceeds TAT's.
  Rng data_rng(2029);
  auto rects = data::GenerateSyntheticRegion(8000, &data_rng);
  BuiltSummary hs = Build(rects, 50, LoadAlgorithm::kHilbertSort);
  BuiltSummary tat = Build(rects, 50, LoadAlgorithm::kTupleAtATime);
  QuerySpec spec = QuerySpec::UniformPoint();
  double hs_0 = Predict(*hs.summary, spec, nullptr, 0);
  double hs_small = Predict(*hs.summary, spec, nullptr, 20);
  double tat_0 = Predict(*tat.summary, spec, nullptr, 0);
  double tat_small = Predict(*tat.summary, spec, nullptr, 20);
  // Relative improvement from the first 20 pages of buffer.
  double hs_gain = (hs_0 - hs_small) / hs_0;
  double tat_gain = (tat_0 - tat_small) / tat_0;
  EXPECT_GT(hs_gain, tat_gain);
}

}  // namespace
}  // namespace rtb
