// Tests for the experiment engine: spec parsing (round-trip, defaults,
// malformed-document error paths — always a Status, never a crash) and the
// run pipeline. The load-bearing case is EquivalenceSerial: a serial
// engine::Run must produce byte-identical counters and buffer statistics
// to the legacy hand-written serial RunWorkload over the same tree and
// seed — the refactor's no-behavior-change guarantee.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "engine/engine.h"
#include "engine/spec.h"
#include "report/json.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "sim/query_gen.h"
#include "sim/runner.h"
#include "storage/buffer_pool.h"
#include "storage/file_page_store.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::engine {
namespace {

constexpr uint64_t kDataSeed = 1998;
constexpr uint64_t kQuerySeed = 7;

// The reference workload: uniform points, fanout 25, LRU buffer — the
// scaled-down Table 1 configuration used across the sim tests.
ExperimentSpec BaseSpec() {
  ExperimentSpec spec;
  spec.name = "unit";
  spec.dataset.kind = "uniform";
  spec.dataset.n = 10000;
  spec.dataset.seed = kDataSeed;
  spec.tree.fanout = 25;
  spec.tree.algo = "HS";
  spec.pool.buffer_pages = 50;
  spec.workload.warmup = 2000;
  QueryClassSpec cls;
  cls.query.center = "uniform";
  cls.count = 10000;
  spec.workload.classes.push_back(cls);
  spec.run.threads = 1;
  spec.run.seed = kQuerySeed;
  return spec;
}

TEST(SpecTest, JsonRoundTrip) {
  ExperimentSpec spec = BaseSpec();
  spec.pool.policy = "CLOCK";
  spec.pool.shards = 4;
  spec.pool.pinned_levels = 1;
  spec.workload.classes[0].label = "point";
  QueryClassSpec region;
  region.query.center = "data";
  region.query.x = model::AxisExtent::Fixed(0.01);
  region.query.y = model::AxisExtent::Fixed(0.02);
  region.count = 500;
  spec.workload.classes.push_back(region);
  spec.workload.batch_size = 64;
  spec.run.threads = 2;
  spec.run.evaluate_model = false;

  spec.storage.backend = "file";
  spec.storage.path = ::testing::TempDir() + "/rtb_spec_rt.store";
  spec.storage.vectored_io = false;

  auto parsed = ExperimentSpec::FromJson(spec.ToJsonDict().ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, spec.name);
  EXPECT_EQ(parsed->storage.backend, spec.storage.backend);
  EXPECT_EQ(parsed->storage.path, spec.storage.path);
  EXPECT_FALSE(parsed->storage.vectored_io);
  EXPECT_EQ(parsed->dataset.kind, spec.dataset.kind);
  EXPECT_EQ(parsed->dataset.n, spec.dataset.n);
  EXPECT_EQ(parsed->dataset.seed, spec.dataset.seed);
  EXPECT_EQ(parsed->tree.fanout, spec.tree.fanout);
  EXPECT_EQ(parsed->tree.algo, spec.tree.algo);
  EXPECT_EQ(parsed->pool.buffer_pages, spec.pool.buffer_pages);
  EXPECT_EQ(parsed->pool.policy, spec.pool.policy);
  EXPECT_EQ(parsed->pool.shards, spec.pool.shards);
  EXPECT_EQ(parsed->pool.pinned_levels, spec.pool.pinned_levels);
  EXPECT_EQ(parsed->workload.warmup, spec.workload.warmup);
  EXPECT_EQ(parsed->workload.batch_size, 64u);
  ASSERT_EQ(parsed->workload.classes.size(), 2u);
  EXPECT_EQ(parsed->workload.classes[0].label, "point");
  EXPECT_EQ(parsed->workload.classes[1].query.center, "data");
  EXPECT_DOUBLE_EQ(parsed->workload.classes[1].query.x.length, 0.01);
  EXPECT_DOUBLE_EQ(parsed->workload.classes[1].query.y.length, 0.02);
  EXPECT_EQ(parsed->workload.classes[1].count, 500u);
  EXPECT_EQ(parsed->run.threads, 2u);
  EXPECT_EQ(parsed->run.seed, spec.run.seed);
  EXPECT_FALSE(parsed->run.evaluate_model);
}

TEST(SpecTest, MissingFieldsKeepDefaults) {
  auto spec = ExperimentSpec::FromJson(
      R"({"workload": {"classes": [{}]}})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "experiment");
  EXPECT_EQ(spec->dataset.kind, "uniform");
  EXPECT_EQ(spec->tree.fanout, 100u);
  EXPECT_EQ(spec->pool.policy, "LRU");
  EXPECT_EQ(spec->workload.classes[0].query.center, "uniform");
  EXPECT_EQ(spec->workload.classes[0].count, 100000u);
  EXPECT_EQ(spec->workload.batch_size, 1u);
  EXPECT_EQ(spec->storage.backend, "mem");
  EXPECT_TRUE(spec->storage.vectored_io);
  EXPECT_EQ(spec->run.threads, 1u);
  EXPECT_TRUE(spec->run.evaluate_model);
}

TEST(SpecTest, MalformedDocumentsReturnStatusNotCrash) {
  // JSON syntax errors carry a byte offset.
  auto bad = ExperimentSpec::FromJson("{\"name\": }");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);

  // Unknown keys are rejected at every level, naming the field path.
  EXPECT_FALSE(ExperimentSpec::FromJson(R"({"nam": "x"})").ok());
  EXPECT_FALSE(
      ExperimentSpec::FromJson(R"({"dataset": {"king": "tiger"}})").ok());
  auto bad_storage =
      ExperimentSpec::FromJson(R"({"storage": {"backnd": "file"}})");
  ASSERT_FALSE(bad_storage.ok());
  EXPECT_NE(bad_storage.status().message().find("storage.backnd"),
            std::string::npos);
  EXPECT_FALSE(ExperimentSpec::FromJson(
                   R"({"workload": {"classes": [{"qz": 1}]}})")
                   .ok());

  // Type mismatches.
  EXPECT_FALSE(ExperimentSpec::FromJson(R"({"name": 3})").ok());
  EXPECT_FALSE(
      ExperimentSpec::FromJson(R"({"dataset": {"n": "many"}})").ok());
  EXPECT_FALSE(
      ExperimentSpec::FromJson(R"({"dataset": {"n": -5}})").ok());
  EXPECT_FALSE(
      ExperimentSpec::FromJson(R"({"dataset": {"n": 1.5}})").ok());
  EXPECT_FALSE(
      ExperimentSpec::FromJson(R"({"run": {"evaluate_model": 1}})").ok());
  EXPECT_FALSE(ExperimentSpec::FromJson(R"({"workload": 7})").ok());
  EXPECT_FALSE(ExperimentSpec::FromJson(R"([1, 2])").ok());
}

TEST(SpecTest, ValidateRejectsSemanticErrors) {
  // No query classes.
  ExperimentSpec spec = BaseSpec();
  spec.workload.classes.clear();
  EXPECT_FALSE(spec.Validate().ok());

  // Bad enum strings.
  spec = BaseSpec();
  spec.dataset.kind = "mystery";
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.tree.algo = "BULK";
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.pool.policy = "MRU";
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.workload.classes[0].query.center = "zipf";
  EXPECT_FALSE(spec.Validate().ok());

  // Out-of-range values.
  spec = BaseSpec();
  spec.workload.classes[0].query.x = model::AxisExtent::Fixed(1.0);
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.workload.classes[0].query.y = model::AxisExtent::Fixed(-0.1);
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.run.threads = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.pool.buffer_pages = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.tree.fanout = 1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.workload.batch_size = 0;
  EXPECT_FALSE(spec.Validate().ok());

  // Storage section: unknown backend, file backend without a path, and a
  // second store file alongside a persistent index.
  spec = BaseSpec();
  spec.storage.backend = "nvme";
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.storage.backend = "file";
  EXPECT_FALSE(spec.Validate().ok());
  spec.storage.path = "x.store";
  EXPECT_TRUE(spec.Validate().ok());
  spec.tree.index = "index.rtb";
  EXPECT_FALSE(spec.Validate().ok());

  // kind=file needs a path; a data-driven class over an opened index needs
  // a centers source.
  spec = BaseSpec();
  spec.dataset.kind = "file";
  EXPECT_FALSE(spec.Validate().ok());
  spec = BaseSpec();
  spec.tree.index = "some.idx";
  spec.workload.classes[0].query.center = "data";
  EXPECT_FALSE(spec.Validate().ok());

  // The base spec itself is valid.
  EXPECT_TRUE(BaseSpec().Validate().ok());
}

TEST(EngineTest, EquivalenceSerial) {
  const ExperimentSpec spec = BaseSpec();

  // Legacy reference: the pre-engine serial pipeline, written out by hand.
  auto store = std::make_unique<storage::MemPageStore>();
  Rng data_rng(kDataSeed);
  auto rects = data::GenerateUniformPoints(spec.dataset.n, &data_rng);
  auto built = rtree::BuildRTree(store.get(),
                                 rtree::RTreeConfig::WithFanout(25), rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  store->ResetStats();
  auto pool = storage::BufferPool::MakeLru(store.get(),
                                           spec.pool.buffer_pages);
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(25),
                                 built->root, built->height);
  ASSERT_TRUE(tree.ok());
  sim::UniformPointGenerator gen;
  Rng rng(kQuerySeed);
  auto legacy = sim::RunWorkload(&*tree, store.get(), &gen, &rng,
                                 spec.workload.warmup,
                                 spec.workload.classes[0].count);
  ASSERT_TRUE(legacy.ok());
  const storage::BufferStats legacy_stats = pool->AggregateStats();
  const storage::IoStats legacy_io = store->stats();

  // Engine path over the identical declarative spec.
  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->total.queries, legacy->queries);
  EXPECT_EQ(report->total.disk_accesses, legacy->disk_accesses);
  EXPECT_EQ(report->total.node_accesses, legacy->node_accesses);
  EXPECT_EQ(report->buffer.requests, legacy_stats.requests);
  EXPECT_EQ(report->buffer.hits, legacy_stats.hits);
  EXPECT_EQ(report->buffer.misses, legacy_stats.misses);
  EXPECT_EQ(report->buffer.evictions, legacy_stats.evictions);
  EXPECT_EQ(report->store_io.reads, legacy_io.reads);

  // The report also carries the model prediction for the same spec.
  ASSERT_EQ(report->classes.size(), 1u);
  EXPECT_TRUE(report->classes[0].model_evaluated);
  EXPECT_GT(report->classes[0].predicted.disk_accesses, 0.0);
  EXPECT_GT(report->classes[0].predicted.node_accesses, 0.0);
}

TEST(EngineTest, RunsAreReproducible) {
  const ExperimentSpec spec = BaseSpec();
  auto a = engine::Run(spec);
  auto b = engine::Run(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total.disk_accesses, b->total.disk_accesses);
  EXPECT_EQ(a->total.node_accesses, b->total.node_accesses);
  EXPECT_EQ(a->buffer.hits, b->buffer.hits);
}

TEST(EngineTest, PinnedLevelsReduceDiskAccesses) {
  ExperimentSpec spec = BaseSpec();
  auto unpinned = engine::Run(spec);
  ASSERT_TRUE(unpinned.ok());

  spec.pool.pinned_levels = 2;
  auto pinned = engine::Run(spec);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_GT(pinned->pinned_pages, 0u);
  EXPECT_LT(pinned->total.disk_accesses, unpinned->total.disk_accesses);
  EXPECT_TRUE(pinned->classes[0].predicted.feasible);
  EXPECT_EQ(pinned->classes[0].predicted.pinned_pages,
            pinned->pinned_pages);
}

TEST(EngineTest, InfeasiblePinningFailsCleanly) {
  ExperimentSpec spec = BaseSpec();
  spec.pool.buffer_pages = 2;
  spec.pool.pinned_levels = 3;  // Whole tree; cannot fit in 2 pages.
  auto report = engine::Run(spec);
  EXPECT_FALSE(report.ok());
}

TEST(EngineTest, MultiClassWorkloadsAggregateAndBreakDown) {
  ExperimentSpec spec = BaseSpec();
  spec.workload.classes[0].label = "point";
  spec.workload.classes[0].count = 4000;
  QueryClassSpec region;
  region.label = "region";
  region.query.x = model::AxisExtent::Fixed(0.02);
  region.query.y = model::AxisExtent::Fixed(0.02);
  region.count = 1000;
  spec.workload.classes.push_back(region);

  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->classes.size(), 2u);
  EXPECT_EQ(report->classes[0].label, "point");
  EXPECT_EQ(report->classes[1].label, "region");
  EXPECT_EQ(report->classes[0].run.queries, 4000u);
  EXPECT_EQ(report->classes[1].run.queries, 1000u);
  EXPECT_EQ(report->total.queries, 5000u);
  EXPECT_EQ(report->total.disk_accesses,
            report->classes[0].run.disk_accesses +
                report->classes[1].run.disk_accesses);
  // Region queries touch more nodes per query than point queries.
  EXPECT_GT(report->classes[1].run.MeanNodeAccesses(),
            report->classes[0].run.MeanNodeAccesses());
}

TEST(EngineTest, DataDrivenClassUsesBuiltDataCenters) {
  ExperimentSpec spec = BaseSpec();
  spec.workload.classes[0].query.center = "data";
  spec.workload.classes[0].count = 2000;
  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->classes[0].run.queries, 2000u);
  EXPECT_TRUE(report->classes[0].model_evaluated);
}

TEST(EngineTest, ParallelRunEmitsPerWorkerBreakdown) {
  ExperimentSpec spec = BaseSpec();
  spec.run.threads = 2;
  spec.pool.shards = 2;
  spec.workload.classes[0].count = 2000;
  spec.workload.warmup = 500;
  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->classes[0].run.per_worker.size(), 2u);
  EXPECT_EQ(report->classes[0].run.per_worker[0].queries +
                report->classes[0].run.per_worker[1].queries,
            2000u);
}

TEST(EngineTest, FileBackendBuildsOnDiskAndCountsBatches) {
  ExperimentSpec spec = BaseSpec();
  spec.storage.backend = "file";
  spec.storage.path = ::testing::TempDir() + "/rtb_engine_file.store";
  spec.dataset.n = 5000;
  spec.pool.buffer_pages = 20;  // Small pool: the cold sweeps must miss.
  spec.workload.batch_size = 64;
  spec.workload.warmup = 200;
  spec.workload.classes[0].count = 2000;
  spec.workload.classes[0].query.x = model::AxisExtent::Fixed(0.05);
  spec.workload.classes[0].query.y = model::AxisExtent::Fixed(0.05);
  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->store_io.reads, 0u);
  if (storage::VectoredIoAvailable()) {
    // vectored_io defaults to true; batched misses over the file store must
    // have coalesced at least once.
    EXPECT_GT(report->store_io.read_batches, 0u);
    EXPECT_GE(report->store_io.PagesPerBatch(), 2.0);
  }
  // The report surfaces the batch counters.
  auto doc = report::JsonValue::Parse(report->ToJsonString());
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->Find("store"), nullptr);
  EXPECT_NE(doc->Find("store")->Find("read_batches"), nullptr);
  EXPECT_NE(doc->Find("store")->Find("pages_per_batch"), nullptr);
  std::remove(spec.storage.path.c_str());
}

TEST(EngineTest, ReportJsonIsWellFormedAndSchemaTagged) {
  ExperimentSpec spec = BaseSpec();
  spec.workload.classes[0].count = 1000;
  spec.workload.warmup = 100;
  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok());

  auto doc = report::JsonValue::Parse(report->ToJsonString());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("report")->str(), "rtb-run");
  EXPECT_DOUBLE_EQ(doc->Find("schema_version")->number(),
                   static_cast<double>(kRunReportSchemaVersion));
  ASSERT_NE(doc->Find("spec"), nullptr);
  ASSERT_NE(doc->Find("tree"), nullptr);
  ASSERT_NE(doc->Find("phases"), nullptr);
  ASSERT_NE(doc->Find("pool"), nullptr);
  ASSERT_NE(doc->Find("totals"), nullptr);
  const report::JsonValue* classes = doc->Find("classes");
  ASSERT_NE(classes, nullptr);
  ASSERT_EQ(classes->array().size(), 1u);
  const report::JsonValue& cls = classes->array()[0];
  EXPECT_DOUBLE_EQ(cls.Find("queries")->number(), 1000.0);
  ASSERT_NE(cls.Find("predicted"), nullptr);
  EXPECT_NE(cls.Find("predicted")->Find("disk_accesses"), nullptr);

  // The embedded spec round-trips back into an equivalent spec.
  std::string spec_json;
  {
    const report::JsonValue* embedded = doc->Find("spec");
    ASSERT_TRUE(embedded->is_object());
    spec_json = spec.ToJsonDict().ToString();
  }
  auto reparsed = ExperimentSpec::FromJson(spec_json);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->workload.classes[0].count, 1000u);
}

// A BaseSpec variant whose class mixes inserts, deletes and searches.
ExperimentSpec MixedSpec() {
  ExperimentSpec spec = BaseSpec();
  spec.dataset.n = 4000;
  spec.workload.warmup = 500;
  spec.workload.update_batch_size = 64;
  spec.workload.classes[0].count = 4000;
  spec.workload.classes[0].query.x = model::AxisExtent::Fixed(0.02);
  spec.workload.classes[0].query.y = model::AxisExtent::Fixed(0.02);
  spec.workload.classes[0].insert_frac = 0.3;
  spec.workload.classes[0].delete_frac = 0.2;
  return spec;
}

TEST(SpecTest, MixedWorkloadRoundTripAndValidation) {
  ExperimentSpec spec = MixedSpec();
  ASSERT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();

  auto parsed = ExperimentSpec::FromJson(spec.ToJsonDict().ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->workload.classes[0].insert_frac, 0.3);
  EXPECT_DOUBLE_EQ(parsed->workload.classes[0].delete_frac, 0.2);
  EXPECT_EQ(parsed->workload.update_batch_size, 64u);
  EXPECT_TRUE(parsed->workload.HasMixedClass());

  // Unknown keys next to the new ones still fail loudly.
  EXPECT_FALSE(ExperimentSpec::FromJson(
      R"({"workload": {"classes": [{"insert_frak": 0.5}]}})").ok());
  EXPECT_FALSE(ExperimentSpec::FromJson(
      R"({"workload": {"update_batchsize": 8, "classes": [{}]}})").ok());

  // Semantic rejections: fraction range, tuple-at-a-time floor, and the
  // mixed-class requirements (built tree, serial, private frontiers).
  spec = MixedSpec();
  spec.workload.classes[0].insert_frac = 0.9;
  spec.workload.classes[0].delete_frac = 0.2;
  EXPECT_FALSE(spec.Validate().ok());
  spec = MixedSpec();
  spec.workload.classes[0].delete_frac = -0.1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = MixedSpec();
  spec.workload.update_batch_size = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = MixedSpec();
  spec.tree.index = "some.idx";
  EXPECT_FALSE(spec.Validate().ok());
  spec = MixedSpec();
  spec.run.threads = 4;
  EXPECT_FALSE(spec.Validate().ok());
  spec = MixedSpec();
  spec.workload.batch_size = 8;
  spec.workload.shared_frontier = true;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(EngineTest, MixedWorkloadRunsValidatesAndReports) {
  const ExperimentSpec spec = MixedSpec();
  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->classes.size(), 1u);
  const ClassReport& cr = report->classes[0];
  EXPECT_TRUE(cr.validated);
  EXPECT_FALSE(cr.model_evaluated);
  EXPECT_EQ(cr.run.searches + cr.run.inserts + cr.run.deletes,
            spec.workload.classes[0].count);
  EXPECT_GT(cr.run.searches, 0u);
  EXPECT_GT(cr.run.inserts, 0u);
  EXPECT_GT(cr.run.deletes, 0u);
  // Updates dirtied pages; the post-class flush wrote them to the store.
  EXPECT_GT(report->store_io.writes, 0u);

  auto doc = report::JsonValue::Parse(report->ToJsonString());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const report::JsonValue& cls = doc->Find("classes")->array()[0];
  EXPECT_NE(cls.Find("inserts"), nullptr);
  EXPECT_NE(cls.Find("deletes"), nullptr);
  EXPECT_NE(cls.Find("searches"), nullptr);
  EXPECT_TRUE(cls.Find("validated")->boolean());
  ASSERT_NE(doc->Find("store"), nullptr);
  EXPECT_NE(doc->Find("store")->Find("write_batches"), nullptr);
  EXPECT_NE(doc->Find("store")->Find("write_syscalls"), nullptr);
}

TEST(EngineTest, MixedBatchedAndSerialSeeTheSameOperationStream) {
  // The op stream is a pure function of the seed, so the tuple-at-a-time
  // oracle (update_batch_size 1) and the batched path must report the same
  // operation mix, and both runs must end structurally valid.
  ExperimentSpec serial = MixedSpec();
  serial.workload.update_batch_size = 1;
  ExperimentSpec batched = MixedSpec();

  auto a = engine::Run(serial);
  auto b = engine::Run(batched);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->classes[0].run.inserts, b->classes[0].run.inserts);
  EXPECT_EQ(a->classes[0].run.deletes, b->classes[0].run.deletes);
  EXPECT_EQ(a->classes[0].run.searches, b->classes[0].run.searches);
  EXPECT_TRUE(a->classes[0].validated);
  EXPECT_TRUE(b->classes[0].validated);
}

TEST(EngineTest, MixedOnFileBackendCoalescesWrites) {
  ExperimentSpec spec = MixedSpec();
  spec.storage.backend = "file";
  spec.storage.path = ::testing::TempDir() + "/rtb_engine_mixed.store";
  spec.pool.buffer_pages = 24;  // Small pool: eviction writebacks too.
  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->classes[0].validated);
  EXPECT_GT(report->store_io.writes, 0u);
  if (storage::VectoredIoAvailable()) {
    // Group-by-leaf batches dirty page-adjacent leaves; the pool's sorted
    // flush must have coalesced at least one pwritev run.
    EXPECT_GT(report->store_io.write_batches, 0u);
    EXPECT_LT(report->store_io.WriteSyscalls(), report->store_io.writes);
  }
  std::remove(spec.storage.path.c_str());
}

}  // namespace
}  // namespace rtb::engine
