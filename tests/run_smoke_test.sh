#!/bin/sh
# Smoke test for `rtb_cli run`: executes a declarative experiment spec end
# to end and checks the emitted run report is schema-complete, well-formed
# JSON carrying both measured and model-predicted disk accesses.
set -e

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/spec.json" <<'EOF'
{
  "name": "smoke",
  "dataset": {"kind": "uniform", "n": 5000, "seed": 42},
  "tree": {"fanout": 25, "algo": "HS"},
  "pool": {"buffer_pages": 50, "policy": "LRU", "pinned_levels": 1},
  "workload": {
    "warmup": 1000,
    "classes": [
      {"label": "point", "model": "uniform", "count": 3000},
      {"label": "region", "model": "uniform", "qx": 0.02, "qy": 0.02,
       "count": 1000}
    ]
  },
  "run": {"threads": 1, "seed": 9}
}
EOF

# Human summary to stdout, JSON to an explicit --out path.
"$CLI" run "$WORK/spec.json" --out="$WORK/report.json" > "$WORK/stdout.txt"
test -s "$WORK/report.json"
grep -q "measured" "$WORK/stdout.txt"
grep -q "predicted" "$WORK/stdout.txt"
grep -q "hit rate" "$WORK/stdout.txt"

# Schema keys in the emitted document.
grep -q '"report": "rtb-run"' "$WORK/report.json"
grep -q '"schema_version": 1' "$WORK/report.json"
grep -q '"spec": {' "$WORK/report.json"
grep -q '"tree": {' "$WORK/report.json"
grep -q '"phases": {' "$WORK/report.json"
grep -q '"pool": {' "$WORK/report.json"
grep -q '"totals": {' "$WORK/report.json"
grep -q '"classes": \[' "$WORK/report.json"
grep -q '"predicted": {' "$WORK/report.json"

# --out=- streams only the JSON document, so it pipes straight into a
# parser; verify structure and that measured + predicted are both present.
"$CLI" run "$WORK/spec.json" --out=- > "$WORK/piped.json"
python3 - "$WORK/piped.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["report"] == "rtb-run", doc
assert doc["schema_version"] == 1, doc
assert doc["pool"]["pinned_pages"] >= 1, doc["pool"]
assert doc["totals"]["queries"] == 4000, doc["totals"]
classes = doc["classes"]
assert [c["label"] for c in classes] == ["point", "region"], classes
for c in classes:
    assert c["disk_accesses"] >= 0, c
    assert isinstance(c["mean_disk_accesses"], (int, float)), c
    pred = c["predicted"]
    assert pred["disk_accesses"] > 0, pred
    assert pred["feasible"] is True, pred
EOF

# Without --out the report lands in RUN_<name>.json in the cwd.
( cd "$WORK" && "$CLI" run spec.json > /dev/null )
test -s "$WORK/RUN_smoke.json"

# A malformed spec must fail with a diagnostic, not crash.
echo '{"dataset": {"kind": "nope"}}' > "$WORK/bad.json"
if "$CLI" run "$WORK/bad.json" 2>/dev/null; then exit 1; fi
if "$CLI" run "$WORK/missing.json" 2>/dev/null; then exit 1; fi

echo "run smoke test passed"
