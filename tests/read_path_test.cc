// Tests for the zero-copy query read path (NodeView + explicit-stack
// Search):
//
//   * property test — NodeView and DeserializeNode agree on every field of
//     randomly generated nodes, and NodeView::Intersects matches the
//     Rect::Intersects it replaces;
//   * equivalence — the NodeView Search returns byte-identical results,
//     QueryStats and buffer hit/miss streams to a reference walker that
//     decodes every node with DeserializeNode, on resident and
//     buffer-constrained pools alike;
//   * allocation — the steady-state query loop performs zero heap
//     allocations (scoped allocation counter);
//   * regression — queries succeed against pools with fewer frames than the
//     tree is tall (the recursive search pinned the whole root-to-leaf path
//     and exhausted such pools).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rtb.h"
#include "util/alloc_counter.h"

namespace rtb::rtree {
namespace {

using geom::Rect;
using storage::PageGuard;
using storage::PageId;

Rect RandomRect(Rng& rng, double max_side) {
  const double x = rng.NextDouble() * (1.0 - max_side);
  const double y = rng.NextDouble() * (1.0 - max_side);
  return Rect(x, y, x + rng.NextDouble() * max_side,
              y + rng.NextDouble() * max_side);
}

// --------------------------------------------------------------------------
// NodeView vs DeserializeNode (property test)
// --------------------------------------------------------------------------

TEST(NodeViewPropertyTest, AgreesWithDeserializeNodeOnRandomNodes) {
  Rng rng(42);
  std::vector<uint8_t> page(4096);
  for (int trial = 0; trial < 200; ++trial) {
    Node node;
    node.level = static_cast<uint16_t>(rng.NextUint64() % 5);
    const size_t count = rng.NextUint64() % 103;  // 0..102 fit in 4096.
    for (size_t i = 0; i < count; ++i) {
      node.entries.push_back(Entry{RandomRect(rng, 0.2), rng.NextUint64()});
    }
    ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());

    auto decoded = DeserializeNode(page.data(), page.size());
    ASSERT_TRUE(decoded.ok());
    auto view = NodeView::Create(page.data(), page.size());
    ASSERT_TRUE(view.ok());

    EXPECT_EQ(view->level(), decoded->level);
    EXPECT_EQ(view->is_leaf(), decoded->is_leaf());
    ASSERT_EQ(view->count(), decoded->entries.size());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(view->rect(i), decoded->entries[i].rect) << i;
      EXPECT_EQ(view->id(i), decoded->entries[i].id) << i;
      EXPECT_EQ(view->entry(i), decoded->entries[i]) << i;
    }

    // The raw-coordinate intersection test matches the Rect one for
    // arbitrary non-empty queries (including touching edges and the
    // degenerate point rectangles SearchPoint uses).
    for (int q = 0; q < 8; ++q) {
      const Rect query = q == 0 ? Rect::FromPoint({rng.NextDouble(),
                                                   rng.NextDouble()})
                                : RandomRect(rng, 0.5);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(view->Intersects(i, query),
                  view->rect(i).Intersects(query))
            << "entry " << i << " query " << q;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Query equivalence against a deserializing reference walker
// --------------------------------------------------------------------------

struct TreeFixture {
  std::unique_ptr<storage::MemPageStore> store;
  BuiltTree built;

  explicit TreeFixture(size_t points, uint32_t fanout, uint64_t seed = 9) {
    Rng rng(seed);
    auto rects = data::GenerateUniformPoints(points, &rng);
    store = std::make_unique<storage::MemPageStore>();
    auto b = BuildRTree(store.get(), RTreeConfig::WithFanout(fanout), rects,
                        LoadAlgorithm::kHilbertSort);
    RTB_CHECK(b.ok());
    built = *b;
  }
};

// Reference: recursive preorder walk that decodes every node with
// DeserializeNode. The guard is released before recursing so, like the
// explicit-stack Search, at most one page is pinned at a time — the fetch
// sequence (and thus the pool's hit/miss stream) must match exactly.
Status ReferenceSearch(storage::PageCache* pool, PageId page,
                       const Rect& query, std::vector<ObjectId>* out,
                       QueryStats* stats) {
  Node node;
  {
    RTB_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(page));
    if (stats != nullptr) ++stats->nodes_accessed;
    RTB_ASSIGN_OR_RETURN(node,
                         DeserializeNode(guard.data(), pool->page_size()));
  }
  for (const Entry& e : node.entries) {
    if (!e.rect.Intersects(query)) continue;
    if (node.is_leaf()) {
      out->push_back(e.id);
    } else {
      RTB_RETURN_IF_ERROR(
          ReferenceSearch(pool, static_cast<PageId>(e.id), query, out,
                          stats));
    }
  }
  return Status::OK();
}

void ExpectSearchEquivalence(TreeFixture& fx, size_t pool_pages) {
  auto live_pool = storage::BufferPool::MakeLru(fx.store.get(), pool_pages);
  auto ref_pool = storage::BufferPool::MakeLru(fx.store.get(), pool_pages);
  auto tree = RTree::Open(live_pool.get(), RTreeConfig::WithFanout(25),
                          fx.built.root, fx.built.height);
  ASSERT_TRUE(tree.ok());
  // Open() fetches the root once to sanity-check it; mirror that on the
  // reference pool so the hit/miss streams start from the same state.
  ASSERT_TRUE(ref_pool->Fetch(fx.built.root).ok());

  Rng rng(1234);
  QueryStats live_stats, ref_stats;
  for (int q = 0; q < 300; ++q) {
    const Rect query = q % 3 == 0 ? Rect::FromPoint({rng.NextDouble(),
                                                     rng.NextDouble()})
                                  : RandomRect(rng, 0.08);
    std::vector<ObjectId> live_out, ref_out;
    ASSERT_TRUE(tree->Search(query, &live_out, &live_stats).ok());
    ASSERT_TRUE(ReferenceSearch(ref_pool.get(), fx.built.root, query,
                                &ref_out, &ref_stats)
                    .ok());
    // Same ids in the same (preorder) emission order.
    ASSERT_EQ(live_out, ref_out) << "query " << q;
  }
  EXPECT_EQ(live_stats.nodes_accessed, ref_stats.nodes_accessed);

  // Identical fetch sequences against identically configured pools must
  // produce identical hit/miss/eviction streams.
  const storage::BufferStats live = live_pool->AggregateStats();
  const storage::BufferStats ref = ref_pool->AggregateStats();
  EXPECT_EQ(live.requests, ref.requests);
  EXPECT_EQ(live.hits, ref.hits);
  EXPECT_EQ(live.misses, ref.misses);
  EXPECT_EQ(live.evictions, ref.evictions);
}

TEST(ReadPathEquivalenceTest, ResidentPool) {
  TreeFixture fx(8000, 25);
  ExpectSearchEquivalence(fx, 4096);
}

TEST(ReadPathEquivalenceTest, ConstrainedPool) {
  TreeFixture fx(8000, 25);
  // ~10% of the tree resident: constant eviction pressure.
  ExpectSearchEquivalence(fx, 40);
}

TEST(ReadPathEquivalenceTest, TinyPool) {
  TreeFixture fx(8000, 25);
  ExpectSearchEquivalence(fx, 2);
}

// --------------------------------------------------------------------------
// Zero allocations in the steady-state query loop
// --------------------------------------------------------------------------

TEST(ReadPathAllocationTest, SteadyStateQueriesDoNotAllocate) {
  TreeFixture fx(8000, 25);
  auto pool = storage::BufferPool::MakeLru(fx.store.get(), 4096);
  auto tree = RTree::Open(pool.get(), RTreeConfig::WithFanout(25),
                          fx.built.root, fx.built.height);
  ASSERT_TRUE(tree.ok());

  // Warm-up pass: faults every page in, grows the thread-local search
  // stack and the result vector to their steady-state capacities.
  std::vector<ObjectId> out;
  Rng warm_rng(77);
  for (int q = 0; q < 200; ++q) {
    out.clear();
    ASSERT_TRUE(tree->Search(RandomRect(warm_rng, 0.05), &out).ok());
  }

  // Steady state: the same query sequence again, counted. Every fetch is a
  // buffer hit and every vector stays within capacity, so the loop must
  // perform zero heap allocations — not per query, zero in total.
  Rng rng(77);
  QueryStats stats;
  util::ScopedAllocationCounter allocs;
  for (int q = 0; q < 200; ++q) {
    out.clear();
    ASSERT_TRUE(tree->Search(RandomRect(rng, 0.05), &out, &stats).ok());
  }
  EXPECT_EQ(allocs.delta(), 0u);
  EXPECT_GT(stats.nodes_accessed, 0u);
}

// --------------------------------------------------------------------------
// Pools smaller than the tree height (regression)
// --------------------------------------------------------------------------

TEST(ShallowPoolRegressionTest, QueriesSucceedWithSingleFramePool) {
  TreeFixture fx(6000, 10);  // Fanout 10 -> height >= 4.
  ASSERT_GE(fx.built.height, 4);

  // The recursive search pinned the whole root-to-leaf path, so any pool
  // with fewer frames than the tree's height failed with ResourceExhausted.
  // The explicit-stack search holds one pin at a time and must work with
  // the minimum possible pool.
  auto tiny_pool = storage::BufferPool::MakeLru(fx.store.get(), 1);
  ASSERT_LT(tiny_pool->capacity(), fx.built.height);
  auto tree = RTree::Open(tiny_pool.get(), RTreeConfig::WithFanout(10),
                          fx.built.root, fx.built.height);
  ASSERT_TRUE(tree.ok());

  auto big_pool = storage::BufferPool::MakeLru(fx.store.get(), 4096);
  auto ref_tree = RTree::Open(big_pool.get(), RTreeConfig::WithFanout(10),
                              fx.built.root, fx.built.height);
  ASSERT_TRUE(ref_tree.ok());

  Rng rng(5);
  for (int q = 0; q < 50; ++q) {
    const Rect query = RandomRect(rng, 0.1);
    std::vector<ObjectId> tiny_out, ref_out;
    ASSERT_TRUE(tree->Search(query, &tiny_out).ok()) << "query " << q;
    ASSERT_TRUE(ref_tree->Search(query, &ref_out).ok());
    EXPECT_EQ(tiny_out, ref_out) << "query " << q;
  }
}

}  // namespace
}  // namespace rtb::rtree
