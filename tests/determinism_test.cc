// Determinism tests: the library guarantees that identical seeds give
// identical results end-to-end (README "Conventions"). These tests exercise
// that promise across component boundaries — generator -> loader -> summary
// -> model -> simulator — so accidental nondeterminism (iteration-order
// dependence, uninitialized reads, hidden global state) is caught.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "model/access_prob.h"
#include "model/cost_model.h"
#include "rtree/bulk_load.h"
#include "rtree/summary.h"
#include "sim/lru_sim.h"
#include "sim/query_gen.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb {
namespace {

using rtree::TreeSummary;
using storage::MemPageStore;

// Builds the full pipeline twice from the same seed and compares summaries
// byte-for-byte (MBRs are IEEE doubles; identical computation gives
// identical bits).
TEST(DeterminismTest, PipelineIsBitwiseReproducible) {
  auto run = [](uint64_t seed) {
    Rng rng(seed);
    data::TigerParams params;
    params.num_rects = 5000;
    auto rects = data::GenerateTigerSurrogate(params, &rng);
    MemPageStore store;
    auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(40),
                                   rects, rtree::LoadAlgorithm::kHilbertSort);
    EXPECT_TRUE(built.ok());
    auto summary = TreeSummary::Extract(&store, built->root);
    EXPECT_TRUE(summary.ok());
    return std::make_unique<TreeSummary>(std::move(*summary));
  };
  auto a = run(424242);
  auto b = run(424242);
  ASSERT_EQ(a->NumNodes(), b->NumNodes());
  for (size_t j = 0; j < a->nodes().size(); ++j) {
    ASSERT_EQ(a->nodes()[j].mbr, b->nodes()[j].mbr) << j;
    ASSERT_EQ(a->nodes()[j].level, b->nodes()[j].level);
    ASSERT_EQ(a->nodes()[j].parent, b->nodes()[j].parent);
  }
  auto c = run(424243);  // Different seed -> different tree.
  bool any_diff = c->NumNodes() != a->NumNodes();
  for (size_t j = 0; !any_diff && j < a->nodes().size(); ++j) {
    any_diff = !(a->nodes()[j].mbr == c->nodes()[j].mbr);
  }
  EXPECT_TRUE(any_diff);
}

TEST(DeterminismTest, ModelIsPureFunctionOfInputs) {
  Rng rng(31337);
  auto rects = data::GenerateSyntheticRegion(3000, &rng);
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(50),
                                 rects, rtree::LoadAlgorithm::kNearestX);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  auto p1 = model::UniformAccessProbabilities(*summary, 0.05, 0.02);
  auto p2 = model::UniformAccessProbabilities(*summary, 0.05, 0.02);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*p1, *p2);
  EXPECT_EQ(model::ExpectedDiskAccesses(*p1, 37),
            model::ExpectedDiskAccesses(*p2, 37));
}

TEST(DeterminismTest, SimulatorRunsAreSeedReproducible) {
  Rng rng(271828);
  auto rects = data::GenerateUniformPoints(4000, &rng);
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(25),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());

  auto simulate = [&](uint64_t seed) {
    sim::SimOptions options;
    options.buffer_pages = 30;
    sim::MbrListSimulator simulator(&*summary, options);
    sim::UniformPointGenerator gen;
    Rng qrng(seed);
    auto result = simulator.Run(&gen, &qrng, 5, 5000);
    EXPECT_TRUE(result.ok());
    return result->mean_disk_accesses;
  };
  EXPECT_DOUBLE_EQ(simulate(1), simulate(1));
  EXPECT_NE(simulate(1), simulate(2));
}

TEST(DeterminismTest, AllGeneratorsSeedStable) {
  auto fingerprint = [](const std::vector<geom::Rect>& rects) {
    double acc = 0.0;
    for (const geom::Rect& r : rects) {
      acc += r.lo.x * 3.0 + r.lo.y * 5.0 + r.hi.x * 7.0 + r.hi.y * 11.0;
    }
    return acc;
  };
  for (int variant = 0; variant < 4; ++variant) {
    auto make = [variant](uint64_t seed) {
      Rng rng(seed);
      switch (variant) {
        case 0:
          return data::GenerateUniformPoints(2000, &rng);
        case 1:
          return data::GenerateSyntheticRegion(2000, &rng);
        case 2: {
          data::TigerParams p;
          p.num_rects = 2000;
          return data::GenerateTigerSurrogate(p, &rng);
        }
        default: {
          data::CfdParams p;
          p.num_points = 2000;
          return data::GenerateCfdSurrogate(p, &rng);
        }
      }
    };
    EXPECT_DOUBLE_EQ(fingerprint(make(17)), fingerprint(make(17)))
        << "variant " << variant;
    EXPECT_NE(fingerprint(make(17)), fingerprint(make(18)))
        << "variant " << variant;
  }
}

}  // namespace
}  // namespace rtb
