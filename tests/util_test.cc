// Tests for rtb::Status, rtb::Result, rtb::Rng and batch statistics.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/batch_stats.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace rtb {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "page 7");
  EXPECT_EQ(s.ToString(), "NotFound: page 7");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotSupported("").code(), StatusCode::kNotSupported);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  RTB_ASSIGN_OR_RETURN(int h, Half(x));
  RTB_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(7).ok());
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRangeAndCoversAllValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntOneIsAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.5, 7.25);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.25);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(29);
  Rng child = a.Fork();
  // Fork advances the parent; child stream should not mirror parent.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// --------------------------------------------------------------------------
// BatchMeans / RunningStats
// --------------------------------------------------------------------------

TEST(BatchMeansTest, MeanOfBatches) {
  BatchMeans bm;
  bm.AddBatch(1.0);
  bm.AddBatch(2.0);
  bm.AddBatch(3.0);
  EXPECT_DOUBLE_EQ(bm.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(bm.Variance(), 1.0);
}

TEST(BatchMeansTest, EmptyIsZero) {
  BatchMeans bm;
  EXPECT_EQ(bm.Mean(), 0.0);
  EXPECT_EQ(bm.Variance(), 0.0);
  EXPECT_EQ(bm.HalfWidth(0.90), 0.0);
}

TEST(BatchMeansTest, HalfWidthMatchesHandComputation) {
  BatchMeans bm;
  bm.AddBatch(10.0);
  bm.AddBatch(12.0);
  // n=2, df=1: t90 = 6.314, s^2 = 2, hw = 6.314 * sqrt(2/2) = 6.314.
  EXPECT_NEAR(bm.HalfWidth(0.90), 6.314, 1e-9);
  EXPECT_NEAR(bm.RelativeHalfWidth(0.90), 6.314 / 11.0, 1e-9);
}

TEST(BatchMeansTest, IdenticalBatchesHaveZeroWidth) {
  BatchMeans bm;
  for (int i = 0; i < 20; ++i) bm.AddBatch(5.5);
  EXPECT_DOUBLE_EQ(bm.Mean(), 5.5);
  EXPECT_DOUBLE_EQ(bm.HalfWidth(0.95), 0.0);
}

TEST(BatchMeansTest, WidthShrinksWithMoreBatches) {
  Rng rng(31);
  BatchMeans few, many;
  for (int i = 0; i < 5; ++i) few.AddBatch(rng.NextDouble());
  Rng rng2(31);
  for (int i = 0; i < 100; ++i) many.AddBatch(rng2.NextDouble());
  EXPECT_LT(many.HalfWidth(0.90), few.HalfWidth(0.90));
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 5.0);
  EXPECT_NEAR(rs.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.Min(), 2.0);
  EXPECT_EQ(rs.Max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.Mean(), 0.0);
  rs.Add(3.0);
  EXPECT_EQ(rs.Mean(), 3.0);
  EXPECT_EQ(rs.Variance(), 0.0);
}

}  // namespace
}  // namespace rtb
