// Tests for the bulk loaders (NX, HS, STR), TAT via BuildRTree, tree
// summaries and validation on loaded trees.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "rtree/summary.h"
#include "rtree/validate.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::MemPageStore;

std::vector<ObjectId> BruteForce(const std::vector<Rect>& rects,
                                 const Rect& query) {
  std::vector<ObjectId> out;
  for (size_t i = 0; i < rects.size(); ++i) {
    if (rects[i].Intersects(query)) out.push_back(i);
  }
  return out;
}

class LoaderTest : public ::testing::TestWithParam<LoadAlgorithm> {};

TEST_P(LoaderTest, ProducesValidTreeWithAllEntries) {
  MemPageStore store;
  RTreeConfig config = RTreeConfig::WithFanout(16);
  Rng rng(211);
  auto rects = data::GenerateSyntheticRegion(1000, &rng);
  auto built = BuildRTree(&store, config, rects, GetParam());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_GT(built->height, 1);

  ValidateOptions options;
  // Packed trees can have one underfull node per level; TAT must respect
  // min fill.
  options.check_min_fill = GetParam() == LoadAlgorithm::kTupleAtATime;
  ValidationReport report = ValidateTree(&store, built->root, config,
                                         options);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.num_data_entries, rects.size());
  EXPECT_EQ(report.num_nodes, built->num_nodes);
}

TEST_P(LoaderTest, QueriesMatchBruteForce) {
  MemPageStore store;
  RTreeConfig config = RTreeConfig::WithFanout(16);
  Rng rng(223);
  auto rects = data::GenerateSyntheticRegion(800, &rng);
  auto built = BuildRTree(&store, config, rects, GetParam());
  ASSERT_TRUE(built.ok());

  auto pool = storage::BufferPool::MakeLru(&store, 64);
  auto tree = RTree::Open(pool.get(), config, built->root, built->height);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  for (int q = 0; q < 150; ++q) {
    double qx = rng.Uniform(0.0, 0.2), qy = rng.Uniform(0.0, 0.2);
    double x = rng.Uniform(0.0, 1.0 - qx), y = rng.Uniform(0.0, 1.0 - qy);
    Rect query(x, y, x + qx, y + qy);
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree->Search(query, &got).ok());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForce(rects, query));
  }
}

TEST_P(LoaderTest, SummaryAggregatesAreConsistent) {
  MemPageStore store;
  RTreeConfig config = RTreeConfig::WithFanout(10);
  Rng rng(227);
  auto rects = data::GenerateSyntheticRegion(500, &rng);
  auto built = BuildRTree(&store, config, rects, GetParam());
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());

  EXPECT_EQ(summary->NumNodes(), built->num_nodes);
  EXPECT_EQ(summary->height(), built->height);
  EXPECT_EQ(summary->NumDataEntries(), rects.size());

  // Level counts sum to the node count, and the root level has one node.
  uint64_t level_sum = 0;
  for (uint16_t l = 0; l < summary->height(); ++l) {
    level_sum += summary->NodesAtLevel(l);
  }
  EXPECT_EQ(level_sum, summary->NumNodes());
  EXPECT_EQ(summary->NodesAtLevel(summary->height() - 1), 1u);
  EXPECT_EQ(summary->NodesAtPaperLevel(0), 1u);

  // Aggregates match a direct sum over nodes.
  double area = 0, lx = 0, ly = 0;
  for (const NodeInfo& n : summary->nodes()) {
    area += n.mbr.Area();
    lx += n.mbr.XExtent();
    ly += n.mbr.YExtent();
  }
  EXPECT_DOUBLE_EQ(summary->TotalArea(), area);
  EXPECT_DOUBLE_EQ(summary->TotalXExtent(), lx);
  EXPECT_DOUBLE_EQ(summary->TotalYExtent(), ly);

  // Preorder: the root is node 0; every node's parent precedes it.
  EXPECT_EQ(summary->nodes()[0].parent, kNoParent);
  for (size_t j = 1; j < summary->nodes().size(); ++j) {
    EXPECT_LT(summary->nodes()[j].parent, j);
  }

  // Parent MBRs contain child MBRs.
  for (size_t j = 1; j < summary->nodes().size(); ++j) {
    const NodeInfo& child = summary->nodes()[j];
    const NodeInfo& parent = summary->nodes()[child.parent];
    EXPECT_TRUE(parent.mbr.Contains(child.mbr));
    EXPECT_EQ(parent.level, child.level + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, LoaderTest,
                         ::testing::Values(LoadAlgorithm::kNearestX,
                                           LoadAlgorithm::kHilbertSort,
                                           LoadAlgorithm::kStr,
                                           LoadAlgorithm::kTupleAtATime),
                         [](const auto& info) {
                           return std::string(LoadAlgorithmName(info.param));
                         });

TEST(BulkLoadTest, PackedLeafCountMatchesCeilDivision) {
  MemPageStore store;
  RTreeConfig config = RTreeConfig::WithFanout(100);
  Rng rng(229);
  auto rects = data::GenerateUniformPoints(53145, &rng);
  auto built = BuildRTree(&store, config, rects,
                          LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  // ceil(53145/100) = 532 leaves, 6 level-1 nodes, 1 root — the exact
  // numbers the paper quotes for its TIGER tree (Section 5.3).
  EXPECT_EQ(summary->NodesAtLevel(0), 532u);
  EXPECT_EQ(summary->NodesAtLevel(1), 6u);
  EXPECT_EQ(summary->NodesAtLevel(2), 1u);
  EXPECT_EQ(summary->height(), 3);
}

TEST(BulkLoadTest, FourLevelTreeMatchesPaperTable2Shape) {
  // Table 2: synthetic points, node size 25 -> 4-level trees. For 40,000
  // points: 1600 leaves, 64, 3, 1.
  MemPageStore store;
  RTreeConfig config = RTreeConfig::WithFanout(25);
  Rng rng(233);
  auto rects = data::GenerateUniformPoints(40000, &rng);
  auto built = BuildRTree(&store, config, rects,
                          LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->height(), 4);
  EXPECT_EQ(summary->NodesAtLevel(0), 1600u);
  EXPECT_EQ(summary->NodesAtLevel(1), 64u);
  EXPECT_EQ(summary->NodesAtLevel(2), 3u);
  EXPECT_EQ(summary->NodesAtLevel(3), 1u);
}

TEST(BulkLoadTest, SingleNodeTree) {
  MemPageStore store;
  RTreeConfig config = RTreeConfig::WithFanout(10);
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 5; ++i) {
    entries.push_back(Entry{Rect(0.1 * i, 0.1, 0.1 * i + 0.05, 0.2), i});
  }
  auto built = BulkLoad(&store, config, entries,
                        LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->height, 1);
  EXPECT_EQ(built->num_nodes, 1u);
}

TEST(BulkLoadTest, EmptyInputGivesEmptyRoot) {
  MemPageStore store;
  auto built = BulkLoad(&store, RTreeConfig::WithFanout(10), {},
                        LoadAlgorithm::kNearestX);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->height, 1);
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->NumDataEntries(), 0u);
}

TEST(BulkLoadTest, TatRejectedByPackingEntryPoint) {
  MemPageStore store;
  auto built = BulkLoad(&store, RTreeConfig::WithFanout(10), {},
                        LoadAlgorithm::kTupleAtATime);
  EXPECT_FALSE(built.ok());
}

TEST(BulkLoadTest, HilbertOrderingClustersBetterThanNearestX) {
  // NX leaves are thin vertical slivers spanning the data's full y-range,
  // so their total perimeter (and hence region-query cost, Eq. 2) is far
  // worse than HS's square-ish cells; on clustered data the total area is
  // worse too. This is the qualitative loader ranking behind the paper's
  // Figs. 6 and 9.
  MemPageStore store_nx, store_hs;
  RTreeConfig config = RTreeConfig::WithFanout(25);
  Rng rng(239);
  data::TigerParams params;
  params.num_rects = 20000;
  auto rects = data::GenerateTigerSurrogate(params, &rng);
  auto nx = BuildRTree(&store_nx, config, rects, LoadAlgorithm::kNearestX);
  auto hs = BuildRTree(&store_hs, config, rects,
                       LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(nx.ok());
  ASSERT_TRUE(hs.ok());
  auto summary_nx = TreeSummary::Extract(&store_nx, nx->root);
  auto summary_hs = TreeSummary::Extract(&store_hs, hs->root);
  ASSERT_TRUE(summary_nx.ok());
  ASSERT_TRUE(summary_hs.ok());
  EXPECT_LT(summary_hs->TotalArea(), summary_nx->TotalArea());
  // Sum of y-extents (Ly) drives region-query cost; NX's slivers blow it up.
  EXPECT_LT(summary_hs->TotalYExtent(), summary_nx->TotalYExtent());
}

TEST(BulkLoadTest, TatHasWorseStructureThanPacking) {
  // "The resultant R-tree has worse space utilization and structure
  // relative to the two [packing] algorithms" (Section 2.2).
  MemPageStore store_tat, store_hs;
  RTreeConfig config = RTreeConfig::WithFanout(16);
  Rng rng(241);
  auto rects = data::GenerateSyntheticRegion(3000, &rng);
  auto tat = BuildRTree(&store_tat, config, rects,
                        LoadAlgorithm::kTupleAtATime);
  auto hs = BuildRTree(&store_hs, config, rects,
                       LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(tat.ok());
  ASSERT_TRUE(hs.ok());
  // Worse utilization -> more nodes.
  EXPECT_GT(tat->num_nodes, hs->num_nodes);
  auto summary_tat = TreeSummary::Extract(&store_tat, tat->root);
  auto summary_hs = TreeSummary::Extract(&store_hs, hs->root);
  ASSERT_TRUE(summary_tat.ok());
  ASSERT_TRUE(summary_hs.ok());
  // Worse structure -> larger total area.
  EXPECT_GT(summary_tat->TotalArea(), summary_hs->TotalArea());
  // Mean fill of a packed tree is ~max_entries; TAT is well below.
  EXPECT_GT(summary_hs->MeanEntriesPerNode(),
            summary_tat->MeanEntriesPerNode());
}

TEST(TreeSummaryTest, PagesInTopLevels) {
  MemPageStore store;
  RTreeConfig config = RTreeConfig::WithFanout(25);
  Rng rng(251);
  auto rects = data::GenerateUniformPoints(40000, &rng);
  auto built = BuildRTree(&store, config, rects,
                          LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  // Levels (root down): 1, 3, 64, 1600.
  EXPECT_EQ(summary->PagesInTopLevels(0), 0u);
  EXPECT_EQ(summary->PagesInTopLevels(1), 1u);
  EXPECT_EQ(summary->PagesInTopLevels(2), 4u);
  EXPECT_EQ(summary->PagesInTopLevels(3), 68u);
  EXPECT_EQ(summary->PagesInTopLevels(4), 1668u);
  EXPECT_EQ(summary->PagesInTopLevels(9), 1668u);  // Clamped.
}

}  // namespace
}  // namespace rtb::rtree
