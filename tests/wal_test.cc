// Framing and group-commit units for storage::WalWriter / WalReader:
//
//   * round trip — every record type survives write + read with its LSN,
//     page id, payload and page-count field intact;
//   * durability buffering — records buffered under a deferred window are
//     genuinely absent from the file until a sync point (the property the
//     crash tests rely on), and EnsureDurable drains them;
//   * group commit — window 1 forces one fsync per commit, window N one
//     per N commits, and Close drains the remainder;
//   * corruption — a flipped bit or a truncated tail stops the reader at
//     the last whole record with torn_tail() set, never a bad decode;
//   * checkpoint — restarts the file with a single checkpoint record;
//   * sticky death — a failed sync point kills the writer permanently.
//
// Runs with the DurableSync seam off: WalStats::fsyncs counts durability
// points, not syscalls, so the counts are exact on any filesystem.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/fault_injection.h"
#include "storage/page_store.h"
#include "storage/wal.h"

namespace rtb::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_durable_ = DurableSyncActive();
    SetDurableSync(false);
  }
  void TearDown() override { SetDurableSync(was_durable_); }

  std::string Path(const char* name) {
    return ::testing::TempDir() + "/rtb_wal_" + std::to_string(::getpid()) +
           "_" + name;
  }

  static uint64_t FileSize(const std::string& path) {
    struct stat st {};
    return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                          : 0;
  }

  static std::vector<uint8_t> Bytes(size_t n, uint8_t seed) {
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(seed + i);
    return out;
  }

  static std::vector<WalRecord> ReadAll(const std::string& path,
                                        bool* torn = nullptr) {
    auto reader = WalReader::Open(path);
    EXPECT_TRUE(reader.ok()) << reader.status().ToString();
    std::vector<WalRecord> records;
    WalRecord rec;
    while ((*reader)->Next(&rec)) records.push_back(rec);
    if (torn != nullptr) *torn = (*reader)->torn_tail();
    return records;
  }

  bool was_durable_ = false;
};

TEST_F(WalTest, SeamIsOffByDefaultAndSwitchable) {
  // The binary under test is built with -DRTB_WAL=ON; runtime default off.
  ASSERT_TRUE(WalAvailable());
  const bool was = WalActive();
  EXPECT_TRUE(SetWal(true));
  EXPECT_TRUE(WalActive());
  EXPECT_TRUE(SetWal(false));
  EXPECT_FALSE(WalActive());
  SetWal(was);
}

TEST_F(WalTest, RejectsZeroWindow) {
  WalWriter::Options options;
  options.group_commit_window = 0;
  auto writer = WalWriter::Create(Path("zero_window"), options);
  EXPECT_EQ(writer.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WalTest, RoundTripsEveryRecordType) {
  const std::string path = Path("round_trip");
  auto writer = WalWriter::Create(path);  // Window 1.
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const std::vector<uint8_t> after = Bytes(64, 10);
  const std::vector<uint8_t> before = Bytes(64, 90);
  const std::vector<uint8_t> logical = Bytes(24, 7);
  EXPECT_EQ((*writer)->AppendPageImage(3, after.data(), after.size()), 1u);
  EXPECT_EQ((*writer)->AppendBeforeImage(4, before.data(), before.size()),
            2u);
  EXPECT_EQ((*writer)->AppendLogicalUpdate(logical.data(), logical.size()),
            3u);
  auto commit = (*writer)->Commit(/*num_pages=*/17);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(*commit, 4u);
  EXPECT_TRUE((*writer)->Durable(*commit));  // Window 1 forces the group.
  ASSERT_TRUE((*writer)->Close().ok());

  bool torn = true;
  const std::vector<WalRecord> records = ReadAll(path, &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, WalRecordType::kPageImage);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].page_id, 3u);
  EXPECT_EQ(records[0].payload, after);
  EXPECT_EQ(records[1].type, WalRecordType::kBeforeImage);
  EXPECT_EQ(records[1].page_id, 4u);
  EXPECT_EQ(records[1].payload, before);
  EXPECT_EQ(records[2].type, WalRecordType::kLogicalUpdate);
  EXPECT_EQ(records[2].payload, logical);
  EXPECT_EQ(records[3].type, WalRecordType::kCommit);
  EXPECT_EQ(records[3].lsn, 4u);
  EXPECT_EQ(records[3].num_pages, 17u);
}

TEST_F(WalTest, DeferredRecordsStayOutOfTheFileUntilASyncPoint) {
  const std::string path = Path("deferred");
  WalWriter::Options options;
  options.group_commit_window = 8;
  auto writer = WalWriter::Create(path, options);
  ASSERT_TRUE(writer.ok());
  const std::vector<uint8_t> image = Bytes(32, 1);
  (*writer)->AppendPageImage(0, image.data(), image.size());
  auto commit = (*writer)->Commit(1);
  ASSERT_TRUE(commit.ok());
  // Two records buffered, no sync point yet: the file must not contain
  // them — that is what makes a simulated crash lose exactly the
  // unsynced suffix.
  EXPECT_EQ(FileSize(path), 0u);
  EXPECT_FALSE((*writer)->Durable(*commit));
  EXPECT_EQ((*writer)->stats().fsyncs, 0u);

  ASSERT_TRUE((*writer)->EnsureDurable(*commit).ok());
  EXPECT_TRUE((*writer)->Durable(*commit));
  EXPECT_EQ((*writer)->stats().fsyncs, 1u);
  EXPECT_GT(FileSize(path), 0u);
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ(ReadAll(path).size(), 2u);
}

TEST_F(WalTest, GroupCommitCoalescesDurabilityPoints) {
  const std::vector<uint8_t> image = Bytes(48, 3);

  // Window 1: every commit is its own durability point.
  auto forced = WalWriter::Create(Path("window1"));
  ASSERT_TRUE(forced.ok());
  for (int i = 0; i < 8; ++i) {
    (*forced)->AppendPageImage(0, image.data(), image.size());
    ASSERT_TRUE((*forced)->Commit(1).ok());
  }
  EXPECT_EQ((*forced)->stats().commits, 8u);
  EXPECT_EQ((*forced)->stats().fsyncs, 8u);
  ASSERT_TRUE((*forced)->Close().ok());

  // Window 8: sixteen commits drain twice.
  WalWriter::Options options;
  options.group_commit_window = 8;
  auto grouped = WalWriter::Create(Path("window8"), options);
  ASSERT_TRUE(grouped.ok());
  for (int i = 0; i < 16; ++i) {
    (*grouped)->AppendPageImage(0, image.data(), image.size());
    ASSERT_TRUE((*grouped)->Commit(1).ok());
  }
  EXPECT_EQ((*grouped)->stats().commits, 16u);
  EXPECT_EQ((*grouped)->stats().fsyncs, 2u);

  // A partial group (3 more commits) drains once on Close.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*grouped)->Commit(1).ok());
  }
  EXPECT_EQ((*grouped)->stats().fsyncs, 2u);
  ASSERT_TRUE((*grouped)->Close().ok());
  EXPECT_EQ((*grouped)->stats().fsyncs, 3u);
}

TEST_F(WalTest, ReaderRejectsAFlippedBit) {
  const std::string path = Path("crc");
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*writer)->Commit(1).ok());  // 24B header + 8B payload each.
  }
  ASSERT_TRUE((*writer)->Close().ok());
  ASSERT_EQ(ReadAll(path).size(), 3u);

  // Flip one payload bit of the middle record.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(32 + 24);
    char b = 0;
    f.read(&b, 1);
    f.seekp(32 + 24);
    b = static_cast<char>(b ^ 0x01);
    f.write(&b, 1);
  }
  bool torn = false;
  const std::vector<WalRecord> records = ReadAll(path, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);  // The scan stops at the bad frame.
  EXPECT_EQ(records[0].lsn, 1u);
}

TEST_F(WalTest, ReaderStopsAtATruncatedTail) {
  const std::string path = Path("torn");
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Commit(1).ok());
  ASSERT_TRUE((*writer)->Commit(2).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  const uint64_t full = FileSize(path);
  ASSERT_TRUE(::truncate(path.c_str(), static_cast<off_t>(full - 5)) == 0);

  bool torn = false;
  const std::vector<WalRecord> records = ReadAll(path, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].num_pages, 1u);

  auto reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  WalRecord rec;
  while ((*reader)->Next(&rec)) {
  }
  EXPECT_EQ((*reader)->valid_bytes(), full / 2);  // One whole record.
}

TEST_F(WalTest, CheckpointRestartsTheLog) {
  const std::string path = Path("checkpoint");
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  const std::vector<uint8_t> image = Bytes(128, 5);
  for (int i = 0; i < 4; ++i) {
    (*writer)->AppendPageImage(static_cast<PageId>(i), image.data(),
                               image.size());
    ASSERT_TRUE((*writer)->Commit(i + 1).ok());
  }
  const uint64_t before = FileSize(path);
  ASSERT_TRUE((*writer)->Checkpoint(/*num_pages=*/4).ok());
  EXPECT_LT(FileSize(path), before);

  std::vector<WalRecord> records = ReadAll(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(records[0].num_pages, 4u);

  // The log keeps working after the restart, with LSNs still monotonic.
  (*writer)->AppendPageImage(0, image.data(), image.size());
  ASSERT_TRUE((*writer)->Commit(4).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  records = ReadAll(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_GT(records[1].lsn, records[0].lsn);
}

TEST_F(WalTest, AFailedSyncPointIsSticky) {
  CrashClock clock;
  CrashWalHook hook(&clock);
  WalWriter::Options options;
  options.fault_hook = &hook;
  auto writer = WalWriter::Create(Path("sticky"), options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Commit(1).ok());

  clock.budget = 0;  // The next sync point dies.
  EXPECT_FALSE((*writer)->Commit(1).ok());
  // Dead forever after, without touching the clock again.
  EXPECT_FALSE((*writer)->Commit(1).ok());
  EXPECT_FALSE((*writer)->EnsureDurable((*writer)->last_lsn()).ok());
  EXPECT_FALSE((*writer)->Close().ok());
}

}  // namespace
}  // namespace rtb::storage
