// Tests for k-nearest-neighbor search: correctness against a brute-force
// oracle, distance semantics, and pruning efficiency.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "rtree/bulk_load.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::MemPageStore;

std::vector<Neighbor> BruteForceKnn(const std::vector<Rect>& rects, Point p,
                                    size_t k) {
  std::vector<Neighbor> all;
  for (size_t i = 0; i < rects.size(); ++i) {
    all.push_back(Neighbor{i, MinDistance(p, rects[i]), rects[i]});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Neighbor& a, const Neighbor& b) {
                     return a.distance < b.distance;
                   });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(MinDistanceTest, ZeroInsideAndOnBoundary) {
  Rect r(0.2, 0.2, 0.6, 0.6);
  EXPECT_DOUBLE_EQ(MinDistance(Point{0.4, 0.4}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point{0.2, 0.3}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point{0.6, 0.6}, r), 0.0);
}

TEST(MinDistanceTest, AxisAndCornerDistances) {
  Rect r(0.2, 0.2, 0.6, 0.6);
  EXPECT_DOUBLE_EQ(MinDistance(Point{0.8, 0.4}, r), 0.2);  // Right side.
  EXPECT_DOUBLE_EQ(MinDistance(Point{0.4, 0.1}, r), 0.1);  // Below.
  EXPECT_NEAR(MinDistance(Point{0.0, 0.0}, r), std::hypot(0.2, 0.2), 1e-12);
  EXPECT_TRUE(std::isinf(MinDistance(Point{0.5, 0.5}, Rect::Empty())));
}

struct KnnFixture {
  MemPageStore store;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<RTree> tree;
  std::vector<Rect> rects;

  KnnFixture(size_t n, uint32_t fanout, uint64_t seed) {
    Rng rng(seed);
    rects = data::GenerateSyntheticRegion(n, &rng);
    auto built = BuildRTree(&store, RTreeConfig::WithFanout(fanout), rects,
                            LoadAlgorithm::kHilbertSort);
    EXPECT_TRUE(built.ok());
    pool = storage::BufferPool::MakeLru(&store, 1024);
    auto t = RTree::Open(pool.get(), RTreeConfig::WithFanout(fanout),
                         built->root, built->height);
    EXPECT_TRUE(t.ok());
    tree = std::make_unique<RTree>(std::move(*t));
  }
};

class KnnOracleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KnnOracleTest, MatchesBruteForce) {
  const size_t k = GetParam();
  KnnFixture fx(1500, 16, 701);
  Rng rng(709);
  for (int trial = 0; trial < 60; ++trial) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    auto got = SearchKnn(*fx.tree, p, k);
    ASSERT_TRUE(got.ok());
    auto expected = BruteForceKnn(fx.rects, p, k);
    ASSERT_EQ(got->size(), expected.size());
    for (size_t i = 0; i < got->size(); ++i) {
      // Distances must match exactly rank by rank (ids may differ on ties).
      ASSERT_NEAR((*got)[i].distance, expected[i].distance, 1e-12)
          << "trial " << trial << " rank " << i;
    }
    // Results sorted ascending.
    for (size_t i = 1; i < got->size(); ++i) {
      ASSERT_GE((*got)[i].distance, (*got)[i - 1].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnOracleTest,
                         ::testing::Values(1, 5, 17, 100));

TEST(KnnTest, KLargerThanTreeReturnsEverything) {
  KnnFixture fx(50, 8, 719);
  auto got = SearchKnn(*fx.tree, Point{0.5, 0.5}, 500);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 50u);
}

TEST(KnnTest, KZeroReturnsNothingAndTouchesNothing) {
  KnnFixture fx(100, 8, 727);
  QueryStats stats;
  auto got = SearchKnn(*fx.tree, Point{0.5, 0.5}, 0, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  EXPECT_EQ(stats.nodes_accessed, 0u);
}

TEST(KnnTest, PointInsideRectangleGivesZeroDistance) {
  KnnFixture fx(400, 16, 733);
  // Pick a rect and query its center: distance 0 and that id first (or
  // tied at 0).
  const Rect& target = fx.rects[123];
  auto got = SearchKnn(*fx.tree, target.Center(), 1);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1u);
  EXPECT_DOUBLE_EQ((*got)[0].distance, 0.0);
}

TEST(KnnTest, BestFirstPrunesMostOfTheTree) {
  // On 20k rects with fanout 100 (203 nodes), a 5-NN query should touch a
  // small fraction of the nodes.
  KnnFixture fx(20000, 100, 739);
  Rng rng(743);
  uint64_t total_nodes = 0;
  const int kQueries = 50;
  for (int i = 0; i < kQueries; ++i) {
    QueryStats stats;
    auto got = SearchKnn(*fx.tree,
                         Point{rng.NextDouble(), rng.NextDouble()}, 5,
                         &stats);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 5u);
    total_nodes += stats.nodes_accessed;
  }
  EXPECT_LT(total_nodes / kQueries, 10u);  // Of 203 nodes.
}

TEST(KnnTest, EmptyTree) {
  MemPageStore store;
  auto pool = storage::BufferPool::MakeLru(&store, 8);
  auto tree = RTree::Create(pool.get(), RTreeConfig::WithFanout(8));
  ASSERT_TRUE(tree.ok());
  auto got = SearchKnn(*tree, Point{0.5, 0.5}, 3);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

}  // namespace
}  // namespace rtb::rtree
