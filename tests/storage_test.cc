// Tests for the storage substrate: MemPageStore, replacement policies, and
// the buffer pool (including permanent pinning and eviction accounting).

#include <algorithm>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/file_page_store.h"
#include "storage/page_store.h"
#include "storage/replacement.h"
#include "util/rng.h"

namespace rtb::storage {
namespace {

// --------------------------------------------------------------------------
// MemPageStore
// --------------------------------------------------------------------------

TEST(MemPageStoreTest, AllocateReadWriteRoundTrip) {
  MemPageStore store(128);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  std::vector<uint8_t> data(128, 0xAB);
  ASSERT_TRUE(store.Write(*id, data.data()).ok());
  std::vector<uint8_t> out(128, 0);
  ASSERT_TRUE(store.Read(*id, out.data()).ok());
  EXPECT_EQ(data, out);
}

TEST(MemPageStoreTest, NewPagesAreZeroFilled) {
  MemPageStore store(64);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> out(64, 0xFF);
  ASSERT_TRUE(store.Read(*id, out.data()).ok());
  for (uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(MemPageStoreTest, CountsAccesses) {
  MemPageStore store(64);
  auto id = store.Allocate();
  std::vector<uint8_t> buf(64);
  (void)store.Read(*id, buf.data());
  (void)store.Read(*id, buf.data());
  (void)store.Write(*id, buf.data());
  EXPECT_EQ(store.stats().reads, 2u);
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_EQ(store.stats().allocations, 1u);
  store.ResetStats();
  EXPECT_EQ(store.stats().reads, 0u);
}

TEST(MemPageStoreTest, InvalidPageIsError) {
  MemPageStore store(64);
  std::vector<uint8_t> buf(64);
  EXPECT_EQ(store.Read(5, buf.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Write(5, buf.data()).code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------------------
// Replacement policies
// --------------------------------------------------------------------------

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru(4);
  for (FrameId f = 0; f < 3; ++f) {
    lru.RecordAccess(f);
    lru.SetEvictable(f, true);
  }
  lru.RecordAccess(0);  // 0 becomes most recent; LRU order: 1, 2, 0.
  FrameId victim;
  ASSERT_TRUE(lru.Evict(&victim));
  EXPECT_EQ(victim, 1u);
  ASSERT_TRUE(lru.Evict(&victim));
  EXPECT_EQ(victim, 2u);
  ASSERT_TRUE(lru.Evict(&victim));
  EXPECT_EQ(victim, 0u);
  EXPECT_FALSE(lru.Evict(&victim));
}

TEST(LruPolicyTest, UnevictableFramesAreSkipped) {
  LruPolicy lru(3);
  for (FrameId f = 0; f < 3; ++f) {
    lru.RecordAccess(f);
    lru.SetEvictable(f, true);
  }
  lru.SetEvictable(0, false);
  FrameId victim;
  ASSERT_TRUE(lru.Evict(&victim));
  EXPECT_EQ(victim, 1u);
  EXPECT_EQ(lru.NumEvictable(), 1u);
}

TEST(LruPolicyTest, RemoveForgetsFrame) {
  LruPolicy lru(2);
  lru.RecordAccess(0);
  lru.SetEvictable(0, true);
  lru.Remove(0);
  FrameId victim;
  EXPECT_FALSE(lru.Evict(&victim));
}

TEST(FifoPolicyTest, EvictsInInsertionOrderDespiteAccesses) {
  FifoPolicy fifo(3);
  for (FrameId f = 0; f < 3; ++f) {
    fifo.RecordAccess(f);
    fifo.SetEvictable(f, true);
  }
  fifo.RecordAccess(0);  // Access must not refresh FIFO position.
  FrameId victim;
  ASSERT_TRUE(fifo.Evict(&victim));
  EXPECT_EQ(victim, 0u);
}

TEST(ClockPolicyTest, SecondChanceSemantics) {
  ClockPolicy clock(3);
  for (FrameId f = 0; f < 3; ++f) {
    clock.RecordAccess(f);
    clock.SetEvictable(f, true);
  }
  // All referenced: first sweep clears bits, second evicts frame 0.
  FrameId victim;
  ASSERT_TRUE(clock.Evict(&victim));
  EXPECT_EQ(victim, 0u);
  // Re-reference frame 1; frame 2 (unreferenced) should go next.
  clock.RecordAccess(1);
  ASSERT_TRUE(clock.Evict(&victim));
  EXPECT_EQ(victim, 2u);
}

TEST(LfuPolicyTest, EvictsLeastFrequent) {
  LfuPolicy lfu(3);
  for (FrameId f = 0; f < 3; ++f) {
    lfu.RecordAccess(f);
    lfu.SetEvictable(f, true);
  }
  lfu.RecordAccess(0);
  lfu.RecordAccess(0);
  lfu.RecordAccess(2);
  FrameId victim;
  ASSERT_TRUE(lfu.Evict(&victim));
  EXPECT_EQ(victim, 1u);  // Frequency 1 vs 3 and 2.
  ASSERT_TRUE(lfu.Evict(&victim));
  EXPECT_EQ(victim, 2u);
}

TEST(LfuPolicyTest, TieBreaksByRecency) {
  LfuPolicy lfu(2);
  lfu.RecordAccess(0);
  lfu.RecordAccess(1);
  lfu.SetEvictable(0, true);
  lfu.SetEvictable(1, true);
  FrameId victim;
  ASSERT_TRUE(lfu.Evict(&victim));
  EXPECT_EQ(victim, 0u);  // Same frequency; 0 touched earlier.
}

TEST(LruKPolicyTest, ColdFramesEvictedBeforeHotOnes) {
  // Frames with fewer than K accesses have infinite backward-K distance and
  // go first, even if touched more recently than a hot frame.
  LruKPolicy lruk(4, /*k=*/2);
  lruk.RecordAccess(0);
  lruk.RecordAccess(0);  // Frame 0: two accesses (hot).
  lruk.RecordAccess(1);  // Frame 1: one access (cold).
  lruk.SetEvictable(0, true);
  lruk.SetEvictable(1, true);
  FrameId victim;
  ASSERT_TRUE(lruk.Evict(&victim));
  EXPECT_EQ(victim, 1u);
  ASSERT_TRUE(lruk.Evict(&victim));
  EXPECT_EQ(victim, 0u);
}

TEST(LruKPolicyTest, HotFramesOrderedByKthAccess) {
  LruKPolicy lruk(4, /*k=*/2);
  // Frame 0 accesses at t=1,2; frame 1 at t=3,4; frame 2 at t=5,6.
  for (FrameId f = 0; f < 3; ++f) {
    lruk.RecordAccess(f);
    lruk.RecordAccess(f);
    lruk.SetEvictable(f, true);
  }
  // Refresh frame 0: accesses now t=2,7 — 2nd-most-recent is t=2, still the
  // oldest K-distance, so 0 is evicted first under LRU-2 (a scan-resistant
  // behaviour plain LRU lacks).
  lruk.RecordAccess(0);
  FrameId victim;
  ASSERT_TRUE(lruk.Evict(&victim));
  EXPECT_EQ(victim, 0u);
  ASSERT_TRUE(lruk.Evict(&victim));
  EXPECT_EQ(victim, 1u);
  ASSERT_TRUE(lruk.Evict(&victim));
  EXPECT_EQ(victim, 2u);
  EXPECT_FALSE(lruk.Evict(&victim));
}

TEST(LruKPolicyTest, ColdTiesBreakByRecency) {
  LruKPolicy lruk(3, /*k=*/2);
  lruk.RecordAccess(0);  // t=1.
  lruk.RecordAccess(1);  // t=2.
  lruk.SetEvictable(0, true);
  lruk.SetEvictable(1, true);
  FrameId victim;
  ASSERT_TRUE(lruk.Evict(&victim));
  EXPECT_EQ(victim, 0u);  // Older single access.
}

TEST(LruKPolicyTest, KOneDegeneratesToLru) {
  LruKPolicy lru1(3, /*k=*/1);
  LruPolicy lru(3);
  Rng rng(73);
  for (int step = 0; step < 500; ++step) {
    FrameId f = static_cast<FrameId>(rng.UniformInt(3));
    lru1.RecordAccess(f);
    lru.RecordAccess(f);
    lru1.SetEvictable(f, true);
    lru.SetEvictable(f, true);
    if (step % 7 == 0) {
      FrameId v1, v2;
      bool ok1 = lru1.Evict(&v1);
      bool ok2 = lru.Evict(&v2);
      ASSERT_EQ(ok1, ok2);
      if (ok1) {
        ASSERT_EQ(v1, v2) << "step " << step;
      }
    }
  }
}

TEST(RandomPolicyTest, EvictsOnlyEvictableAndIsDeterministic) {
  RandomPolicy a(8, /*seed=*/99), b(8, /*seed=*/99);
  for (FrameId f = 0; f < 8; ++f) {
    a.RecordAccess(f);
    b.RecordAccess(f);
    a.SetEvictable(f, f % 2 == 0);
    b.SetEvictable(f, f % 2 == 0);
  }
  for (int i = 0; i < 4; ++i) {
    FrameId va, vb;
    ASSERT_TRUE(a.Evict(&va));
    ASSERT_TRUE(b.Evict(&vb));
    EXPECT_EQ(va, vb);
    EXPECT_EQ(va % 2, 0u);
  }
  FrameId v;
  EXPECT_FALSE(a.Evict(&v));
}

TEST(PolicyFactoryTest, MakesEveryKind) {
  for (PolicyKind kind : {PolicyKind::kLru, PolicyKind::kFifo,
                          PolicyKind::kClock, PolicyKind::kLfu,
                          PolicyKind::kRandom, PolicyKind::kLruK}) {
    auto policy = MakePolicy(kind, 4, 1);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), PolicyKindName(kind));
  }
}

// Randomized cross-check: LruPolicy against a simple reference LRU stack.
TEST(LruPolicyPropertyTest, MatchesReferenceModel) {
  const size_t kFrames = 16;
  LruPolicy lru(kFrames);
  std::deque<FrameId> reference;  // Front = most recent, all evictable.
  Rng rng(71);
  std::vector<bool> present(kFrames, false);
  for (int step = 0; step < 5000; ++step) {
    if (rng.NextDouble() < 0.7) {
      FrameId f = static_cast<FrameId>(rng.UniformInt(kFrames));
      lru.RecordAccess(f);
      if (present[f]) {
        reference.erase(std::find(reference.begin(), reference.end(), f));
      }
      reference.push_front(f);
      if (!present[f]) {
        present[f] = true;
      }
      lru.SetEvictable(f, true);
    } else if (!reference.empty()) {
      FrameId victim, expected = reference.back();
      reference.pop_back();
      ASSERT_TRUE(lru.Evict(&victim));
      ASSERT_EQ(victim, expected) << "step " << step;
      present[victim] = false;
    }
  }
}

// --------------------------------------------------------------------------
// BufferPool
// --------------------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : store_(64) {}

  // Allocates `n` pages whose first byte is their id.
  void FillStore(int n) {
    for (int i = 0; i < n; ++i) {
      auto id = store_.Allocate();
      ASSERT_TRUE(id.ok());
      std::vector<uint8_t> data(64, 0);
      data[0] = static_cast<uint8_t>(*id);
      ASSERT_TRUE(store_.Write(*id, data.data()).ok());
    }
    store_.ResetStats();
  }

  MemPageStore store_;
};

TEST_F(BufferPoolTest, FetchHitsAfterFirstMiss) {
  FillStore(4);
  auto pool = BufferPool::MakeLru(&store_, 2);
  {
    auto g = pool->Fetch(1);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], 1);
  }
  {
    auto g = pool->Fetch(1);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool->stats().requests, 2u);
  EXPECT_EQ(pool->stats().hits, 1u);
  EXPECT_EQ(pool->stats().misses, 1u);
  EXPECT_EQ(store_.stats().reads, 1u);
}

TEST_F(BufferPoolTest, LruEvictionOrder) {
  FillStore(4);
  auto pool = BufferPool::MakeLru(&store_, 2);
  (void)pool->Fetch(0);
  (void)pool->Fetch(1);
  (void)pool->Fetch(0);  // 0 most recent.
  (void)pool->Fetch(2);  // Evicts 1.
  EXPECT_TRUE(pool->Contains(0));
  EXPECT_FALSE(pool->Contains(1));
  EXPECT_TRUE(pool->Contains(2));
  EXPECT_EQ(pool->stats().evictions, 1u);
}

TEST_F(BufferPoolTest, PinnedPagesCannotBeEvicted) {
  FillStore(4);
  auto pool = BufferPool::MakeLru(&store_, 2);
  auto guard = pool->Fetch(0);
  ASSERT_TRUE(guard.ok());  // Keep pinned by holding the guard.
  (void)pool->Fetch(1);
  (void)pool->Fetch(2);  // Must evict 1, not pinned 0.
  EXPECT_TRUE(pool->Contains(0));
  EXPECT_FALSE(pool->Contains(1));
}

TEST_F(BufferPoolTest, AllPinnedIsResourceExhausted) {
  FillStore(3);
  auto pool = BufferPool::MakeLru(&store_, 2);
  auto g0 = pool->Fetch(0);
  auto g1 = pool->Fetch(1);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  auto g2 = pool->Fetch(2);
  EXPECT_FALSE(g2.ok());
  EXPECT_EQ(g2.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BufferPoolTest, DirtyPagesWrittenBackOnEviction) {
  FillStore(3);
  auto pool = BufferPool::MakeLru(&store_, 1);
  {
    auto g = pool->FetchMutable(0);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 0x77;
  }
  (void)pool->Fetch(1);  // Evicts page 0, forcing writeback.
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(store_.Read(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x77);
  EXPECT_EQ(pool->stats().writebacks, 1u);
}

TEST_F(BufferPoolTest, FlushAllPersistsWithoutEviction) {
  FillStore(2);
  auto pool = BufferPool::MakeLru(&store_, 2);
  {
    auto g = pool->FetchMutable(1);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 0x55;
  }
  ASSERT_TRUE(pool->FlushAll().ok());
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(store_.Read(1, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x55);
  EXPECT_TRUE(pool->Contains(1));
}

TEST_F(BufferPoolTest, NewPageAllocatesAndPins) {
  FillStore(0);
  auto pool = BufferPool::MakeLru(&store_, 2);
  auto g = pool->NewPage();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(store_.num_pages(), 1u);
  g->mutable_data()[0] = 9;
  g->Release();
  ASSERT_TRUE(pool->FlushAll().ok());
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(store_.Read(g->page_id(), buf.data()).ok());
  EXPECT_EQ(buf[0], 9);
}

TEST_F(BufferPoolTest, PermanentPinSurvivesPressure) {
  FillStore(6);
  auto pool = BufferPool::MakeLru(&store_, 3);
  ASSERT_TRUE(pool->PinPermanently(0).ok());
  EXPECT_EQ(pool->num_permanent_pins(), 1u);
  for (PageId p = 1; p < 6; ++p) {
    auto g = pool->Fetch(p);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_TRUE(pool->Contains(0));
  // Accessing page 0 is always a hit now.
  uint64_t misses_before = pool->stats().misses;
  (void)pool->Fetch(0);
  EXPECT_EQ(pool->stats().misses, misses_before);
}

TEST_F(BufferPoolTest, UnpinPermanentlyMakesEvictableAgain) {
  FillStore(4);
  auto pool = BufferPool::MakeLru(&store_, 2);
  ASSERT_TRUE(pool->PinPermanently(0).ok());
  ASSERT_TRUE(pool->UnpinPermanently(0).ok());
  EXPECT_EQ(pool->num_permanent_pins(), 0u);
  (void)pool->Fetch(1);
  (void)pool->Fetch(2);  // Now 0 can be evicted.
  EXPECT_FALSE(pool->Contains(0));
}

TEST_F(BufferPoolTest, UnpinErrorsOnNonPinnedPage) {
  FillStore(2);
  auto pool = BufferPool::MakeLru(&store_, 2);
  EXPECT_EQ(pool->UnpinPermanently(0).code(), StatusCode::kNotFound);
  (void)pool->Fetch(0);
  EXPECT_EQ(pool->UnpinPermanently(0).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BufferPoolTest, HitRateComputation) {
  FillStore(2);
  auto pool = BufferPool::MakeLru(&store_, 2);
  (void)pool->Fetch(0);
  (void)pool->Fetch(0);
  (void)pool->Fetch(0);
  (void)pool->Fetch(1);
  EXPECT_DOUBLE_EQ(pool->stats().HitRate(), 0.5);
}

TEST_F(BufferPoolTest, PageGuardMoveSemantics) {
  FillStore(2);
  auto pool = BufferPool::MakeLru(&store_, 2);
  auto g1 = pool->Fetch(0);
  ASSERT_TRUE(g1.ok());
  PageGuard g2 = std::move(*g1);
  EXPECT_TRUE(g2.valid());
  EXPECT_FALSE(g1->valid());
  g2.Release();
  // After release, pressure can evict page 0.
  (void)pool->Fetch(1);
  auto g3 = pool->NewPage();
  ASSERT_TRUE(g3.ok());
}

TEST_F(BufferPoolTest, PageGuardMoveAssignReleasesOldPin) {
  // Regression: moving into an engaged guard must drop the pin the target
  // held, or the page leaks a pin count and can never be evicted.
  FillStore(3);
  auto pool = BufferPool::MakeLru(&store_, 2);
  auto g0 = pool->Fetch(0);
  auto g1 = pool->Fetch(1);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  *g0 = std::move(*g1);  // g0 adopts page 1; the pin on page 0 is released.
  EXPECT_TRUE(g0->valid());
  EXPECT_EQ(g0->page_id(), 1u);
  EXPECT_FALSE(g1->valid());
  // Page 0 is unpinned now: fetching page 2 evicts it instead of failing
  // with ResourceExhausted.
  auto g2 = pool->Fetch(2);
  ASSERT_TRUE(g2.ok());
  EXPECT_FALSE(pool->Contains(0));
  EXPECT_TRUE(pool->Contains(1));
}

TEST_F(BufferPoolTest, PageGuardMoveAssignPreservesDirtyWriteback) {
  // The dirty bit must travel with the guard: a mutable guard moved into an
  // engaged clean guard still writes its page back on release.
  FillStore(3);
  auto pool = BufferPool::MakeLru(&store_, 2);
  auto clean = pool->Fetch(0);
  auto dirty = pool->FetchMutable(1);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(dirty.ok());
  dirty->mutable_data()[0] = 0x5C;
  *clean = std::move(*dirty);
  clean->Release();
  ASSERT_TRUE(pool->EvictAll().ok());
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(store_.Read(1, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x5C);
}

TEST_F(BufferPoolTest, PageGuardSelfMoveAssignIsNoOp) {
  FillStore(1);
  auto pool = BufferPool::MakeLru(&store_, 1);
  auto g = pool->Fetch(0);
  ASSERT_TRUE(g.ok());
  PageGuard& self = *g;
  *g = std::move(self);
  EXPECT_TRUE(g->valid());
  EXPECT_EQ(g->page_id(), 0u);
  EXPECT_EQ(g->data()[0], 0);
}

TEST_F(BufferPoolTest, EvictAllColdStartsThePool) {
  FillStore(4);
  auto pool = BufferPool::MakeLru(&store_, 4);
  for (PageId p = 0; p < 4; ++p) (void)pool->Fetch(p);
  EXPECT_TRUE(pool->Contains(2));
  ASSERT_TRUE(pool->EvictAll().ok());
  for (PageId p = 0; p < 4; ++p) EXPECT_FALSE(pool->Contains(p));
  // Next fetches are cold misses again.
  pool->ResetStats();
  (void)pool->Fetch(0);
  EXPECT_EQ(pool->stats().misses, 1u);
}

TEST_F(BufferPoolTest, EvictAllWritesBackDirtyPages) {
  FillStore(2);
  auto pool = BufferPool::MakeLru(&store_, 2);
  {
    auto g = pool->FetchMutable(0);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 0x42;
  }
  ASSERT_TRUE(pool->EvictAll().ok());
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(store_.Read(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x42);
}

TEST_F(BufferPoolTest, EvictAllKeepsPermanentPins) {
  FillStore(3);
  auto pool = BufferPool::MakeLru(&store_, 3);
  ASSERT_TRUE(pool->PinPermanently(1).ok());
  (void)pool->Fetch(0);
  ASSERT_TRUE(pool->EvictAll().ok());
  EXPECT_TRUE(pool->Contains(1));
  EXPECT_FALSE(pool->Contains(0));
}

TEST_F(BufferPoolTest, EvictAllRefusesWhileGuardsHeld) {
  FillStore(2);
  auto pool = BufferPool::MakeLru(&store_, 2);
  auto guard = pool->Fetch(0);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(pool->EvictAll().code(), StatusCode::kFailedPrecondition);
  guard->Release();
  EXPECT_TRUE(pool->EvictAll().ok());
}

// --------------------------------------------------------------------------
// FilePageStore
// --------------------------------------------------------------------------

class FilePageStoreTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    return ::testing::TempDir() + "/rtb_fps_" + name;
  }
};

TEST_F(FilePageStoreTest, CreateWriteReadRoundTrip) {
  std::string path = Path("roundtrip");
  auto store = FilePageStore::Create(path, 256);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto id = (*store)->Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE((*store)->Write(*id, data.data()).ok());
  std::vector<uint8_t> out(256, 0);
  ASSERT_TRUE((*store)->Read(*id, out.data()).ok());
  EXPECT_EQ(data, out);
  EXPECT_EQ((*store)->stats().reads, 1u);
  std::remove(path.c_str());
}

TEST_F(FilePageStoreTest, PersistsAcrossReopen) {
  std::string path = Path("persist");
  {
    auto store = FilePageStore::Create(path, 128);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 5; ++i) {
      auto id = (*store)->Allocate();
      ASSERT_TRUE(id.ok());
      std::vector<uint8_t> data(128, static_cast<uint8_t>(10 + i));
      ASSERT_TRUE((*store)->Write(*id, data.data()).ok());
    }
  }  // Destructor syncs.
  auto reopened = FilePageStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->page_size(), 128u);
  EXPECT_EQ((*reopened)->num_pages(), 5u);
  std::vector<uint8_t> out(128);
  ASSERT_TRUE((*reopened)->Read(3, out.data()).ok());
  EXPECT_EQ(out[0], 13);
  EXPECT_EQ(out[127], 13);
  std::remove(path.c_str());
}

TEST_F(FilePageStoreTest, OpenRejectsGarbage) {
  std::string path = Path("garbage");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("this is not a page store", f);
    fclose(f);
  }
  auto opened = FilePageStore::Open(path);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(FilePageStoreTest, MissingFileAndInvalidPage) {
  EXPECT_FALSE(FilePageStore::Open("/nonexistent/rtb.store").ok());
  std::string path = Path("bounds");
  auto store = FilePageStore::Create(path, 64);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> buf(64);
  EXPECT_EQ((*store)->Read(0, buf.data()).code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST_F(FilePageStoreTest, WorksUnderBufferPoolAndRTree) {
  // End-to-end: build a real R-tree on a file-backed store, reopen the
  // file, and query it.
  std::string path = Path("rtree");
  rtree::BuiltTree built;
  std::vector<geom::Rect> rects;
  {
    auto store = FilePageStore::Create(path, kDefaultPageSize);
    ASSERT_TRUE(store.ok());
    Rng rng(83);
    rects = data::GenerateSyntheticRegion(500, &rng);
    auto b = rtree::BuildRTree(store->get(),
                               rtree::RTreeConfig::WithFanout(16), rects,
                               rtree::LoadAlgorithm::kHilbertSort);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    built = *b;
  }
  auto reopened = FilePageStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  auto pool = BufferPool::MakeLru(reopened->get(), 32);
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(16),
                                 built.root, built.height);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  std::vector<rtree::ObjectId> out;
  ASSERT_TRUE(tree->Search(geom::Rect::UnitSquare(), &out).ok());
  EXPECT_EQ(out.size(), rects.size());
  std::remove(path.c_str());
}

// Sweep over pool capacities: a cyclic scan of N pages through a pool of
// size B yields hits only when B >= N (sequential flooding, the classic LRU
// worst case).
class BufferPoolCapacityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferPoolCapacityTest, CyclicScanHitRate) {
  const size_t capacity = GetParam();
  MemPageStore store(64);
  for (int i = 0; i < 8; ++i) (void)store.Allocate();
  auto pool = BufferPool::MakeLru(&store, capacity);
  const int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    for (PageId p = 0; p < 8; ++p) {
      auto g = pool->Fetch(p);
      ASSERT_TRUE(g.ok());
    }
  }
  if (capacity >= 8) {
    // Only cold misses.
    EXPECT_EQ(pool->stats().misses, 8u);
  } else {
    // LRU on a cyclic scan larger than the pool never hits.
    EXPECT_EQ(pool->stats().hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferPoolCapacityTest,
                         ::testing::Values(1, 2, 4, 7, 8, 16));

// --------------------------------------------------------------------------
// PageTable (the open-addressed page-id -> frame map behind BufferPool)
// --------------------------------------------------------------------------

TEST(PageTableTest, InsertFindErase) {
  PageTable table(16);
  EXPECT_EQ(table.Find(3), PageTable::kNoFrame);
  EXPECT_FALSE(table.Contains(3));

  table.Insert(3, 7);
  table.Insert(99, 1);
  EXPECT_EQ(table.Find(3), 7u);
  EXPECT_EQ(table.Find(99), 1u);
  EXPECT_TRUE(table.Contains(3));
  EXPECT_EQ(table.Find(4), PageTable::kNoFrame);

  EXPECT_TRUE(table.Erase(3));
  EXPECT_EQ(table.Find(3), PageTable::kNoFrame);
  EXPECT_EQ(table.Find(99), 1u);  // Unaffected by the erase.
  EXPECT_FALSE(table.Erase(3));   // Already gone.
}

TEST(PageTableTest, FillsToDeclaredCapacity) {
  // A table sized for N entries must take N live keys without probing
  // failures, whatever the hash spread.
  constexpr size_t kN = 100;
  PageTable table(kN);
  for (PageId id = 0; id < kN; ++id) {
    table.Insert(id * 7919 + 1, static_cast<FrameId>(id));
  }
  for (PageId id = 0; id < kN; ++id) {
    EXPECT_EQ(table.Find(id * 7919 + 1), static_cast<FrameId>(id)) << id;
  }
}

TEST(PageTableTest, BackwardShiftDeletionKeepsClustersFindable) {
  // Erase from the middle of a collision cluster: linear probing with
  // backward-shift deletion must keep every remaining key reachable (a
  // tombstone-free table has no deleted markers to skip over).
  PageTable table(8);  // 16 slots; dense enough to force clusters.
  std::vector<PageId> keys;
  for (PageId id = 0; id < 8; ++id) keys.push_back(id * 1024 + 3);
  for (size_t i = 0; i < keys.size(); ++i) {
    table.Insert(keys[i], static_cast<FrameId>(i));
  }
  // Erase every other key, then verify the survivors.
  for (size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(table.Erase(keys[i]));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(table.Find(keys[i]), PageTable::kNoFrame) << i;
    } else {
      EXPECT_EQ(table.Find(keys[i]), static_cast<FrameId>(i)) << i;
    }
  }
}

TEST(PageTablePropertyTest, MatchesUnorderedMapUnderChurn) {
  // Randomized insert/erase/find churn against std::unordered_map as the
  // reference model, at the <= 50% load factor the pool guarantees.
  constexpr size_t kCapacity = 64;
  PageTable table(kCapacity);
  std::unordered_map<PageId, FrameId> reference;
  Rng rng(2024);

  for (int op = 0; op < 200000; ++op) {
    const PageId id = rng.NextUint64() % 512;
    const int action = static_cast<int>(rng.NextUint64() % 3);
    if (action == 0 && reference.size() < kCapacity) {
      const auto frame = static_cast<FrameId>(rng.NextUint64() % 1000);
      if (reference.find(id) == reference.end()) {
        table.Insert(id, frame);
        reference[id] = frame;
      }
    } else if (action == 1) {
      EXPECT_EQ(table.Erase(id), reference.erase(id) > 0) << "op " << op;
    } else {
      const auto it = reference.find(id);
      EXPECT_EQ(table.Find(id),
                it == reference.end() ? PageTable::kNoFrame : it->second)
          << "op " << op;
      EXPECT_EQ(table.Contains(id), it != reference.end());
    }
  }
  // Full sweep at the end: the table holds exactly the reference contents.
  for (PageId id = 0; id < 512; ++id) {
    const auto it = reference.find(id);
    EXPECT_EQ(table.Find(id),
              it == reference.end() ? PageTable::kNoFrame : it->second)
        << id;
  }
}

}  // namespace
}  // namespace rtb::storage
