// Tests for the fully analytical tree model (Theodoridis-Sellis style) and
// the buffer warm-up transient (Bhide-Dan-Dias).

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "model/access_prob.h"
#include "model/analytic_tree.h"
#include "model/cost_model.h"
#include "model/warmup.h"
#include "rtree/bulk_load.h"
#include "rtree/summary.h"
#include "sim/lru_sim.h"
#include "sim/query_gen.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::model {
namespace {

using rtree::TreeSummary;
using storage::MemPageStore;

// --------------------------------------------------------------------------
// PredictTreeShape
// --------------------------------------------------------------------------

TEST(AnalyticTreeTest, ShapeMatchesPackedTreeExactlyForExactFanout) {
  // 40,000 points, fanout 25: the packed tree is 1600/64/3/1 (paper Table
  // 2); ceil-division prediction reproduces it exactly.
  DataStats stats{40000, 0.0, 0.0};
  auto tree = PredictTreeShape(stats, 25.0);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height, 4);
  ASSERT_EQ(tree->level_counts.size(), 4u);
  EXPECT_EQ(tree->level_counts[0], 1600u);
  EXPECT_EQ(tree->level_counts[1], 64u);
  EXPECT_EQ(tree->level_counts[2], 3u);
  EXPECT_EQ(tree->level_counts[3], 1u);
  EXPECT_EQ(tree->TotalNodes(), 1668u);
}

TEST(AnalyticTreeTest, SidesShrinkTowardLeavesAndRootCoversSquare) {
  DataStats stats{100000, 0.001, 0.001};
  auto tree = PredictTreeShape(stats, 100.0);
  ASSERT_TRUE(tree.ok());
  for (size_t l = 1; l < tree->level_side.size(); ++l) {
    EXPECT_LE(tree->level_side[l - 1], tree->level_side[l] + 1e-12);
  }
  EXPECT_DOUBLE_EQ(tree->level_side.back(), 1.0);
}

TEST(AnalyticTreeTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(PredictTreeShape(DataStats{0, 0, 0}, 10.0).ok());
  EXPECT_FALSE(PredictTreeShape(DataStats{100, 0, 0}, 1.0).ok());
  EXPECT_FALSE(PredictTreeShape(DataStats{100, -0.1, 0}, 10.0).ok());
  EXPECT_FALSE(AnalyticAccessProbabilities(DataStats{100, 0, 0}, 10.0,
                                           1.0, 0.0)
                   .ok());
}

TEST(AnalyticTreeTest, SingleNodeDataSet) {
  DataStats stats{50, 0.0, 0.0};
  auto tree = PredictTreeShape(stats, 100.0);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height, 1);
  EXPECT_EQ(tree->TotalNodes(), 1u);
}

// --------------------------------------------------------------------------
// Analytical cost vs the hybrid (real-MBR) model, on data it targets.
// --------------------------------------------------------------------------

class AnalyticVsHybridTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalyticVsHybridTest, PointCostWithinModelingTolerance) {
  const uint64_t n = GetParam();
  Rng rng(601 + n);
  auto rects = data::GenerateUniformPoints(n, &rng);
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(25),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  auto hybrid_probs = UniformAccessProbabilities(*summary, 0.0, 0.0);
  ASSERT_TRUE(hybrid_probs.ok());
  double hybrid = ExpectedNodeAccesses(*hybrid_probs);

  DataStats stats{n, 0.0, 0.0};
  auto analytic = AnalyticExpectedNodeAccesses(stats, 25.0, 0.0, 0.0);
  ASSERT_TRUE(analytic.ok());
  // A zero-input model; within 40% of the hybrid model is its design goal,
  // and it must agree on the order of magnitude everywhere.
  EXPECT_NEAR(*analytic, hybrid, hybrid * 0.4) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, AnalyticVsHybridTest,
                         ::testing::Values(10000, 40000, 100000));

TEST(AnalyticTreeTest, FullyAnalyticalDiskAccessPipeline) {
  // The predicted probabilities feed the buffer model directly: prediction
  // with zero inputs vs the hybrid prediction with real MBRs.
  const uint64_t n = 40000;
  Rng rng(607);
  auto rects = data::GenerateUniformPoints(n, &rng);
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(25),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  auto hybrid_probs = UniformAccessProbabilities(*summary, 0.0, 0.0);
  ASSERT_TRUE(hybrid_probs.ok());

  auto analytic_probs =
      AnalyticAccessProbabilities(DataStats{n, 0.0, 0.0}, 25.0, 0.0, 0.0);
  ASSERT_TRUE(analytic_probs.ok());
  EXPECT_EQ(analytic_probs->size(), summary->NumNodes());

  for (uint64_t buffer : {50, 200, 800}) {
    double hybrid = ExpectedDiskAccesses(*hybrid_probs, buffer);
    double analytic = ExpectedDiskAccesses(*analytic_probs, buffer);
    EXPECT_NEAR(analytic, hybrid, hybrid * 0.5 + 0.05) << "B=" << buffer;
  }
}

TEST(AnalyticTreeTest, RegionCostGrowsWithQuerySize) {
  DataStats stats{50000, 0.002, 0.002};
  double prev = 0.0;
  for (double q : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    auto cost = AnalyticExpectedNodeAccesses(stats, 100.0, q, q);
    ASSERT_TRUE(cost.ok());
    EXPECT_GT(*cost, prev);
    prev = *cost;
  }
}

// --------------------------------------------------------------------------
// Warm-up transient
// --------------------------------------------------------------------------

TEST(WarmupTest, TransientIsMonotone) {
  Rng rng(613);
  std::vector<double> probs;
  for (int i = 0; i < 400; ++i) probs.push_back(rng.Uniform(0.0005, 0.05));
  auto curve = WarmupTransientGeometric(probs, 1e6, 25);
  ASSERT_GE(curve.size(), 10u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].queries, curve[i - 1].queries);
    EXPECT_GE(curve[i].distinct_nodes, curve[i - 1].distinct_nodes);
    EXPECT_LE(curve[i].disk_accesses, curve[i - 1].disk_accesses + 1e-12);
  }
  // Boundary values: D(0)=0 and ED(0) = sum p (cold buffer).
  auto zero = WarmupTransient(probs, {0.0});
  EXPECT_DOUBLE_EQ(zero[0].distinct_nodes, 0.0);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(zero[0].disk_accesses, sum, 1e-9);
}

TEST(WarmupTest, SteadyStateMatchesTransientAtNStar) {
  // The paper's core approximation: ED at N* equals the model's
  // steady-state prediction by construction, and both sit close to the
  // simulated steady state (verified within batch-mean noise).
  Rng data_rng(617);
  auto rects = data::GenerateUniformPoints(20000, &data_rng);
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(25),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  auto probs = UniformAccessProbabilities(*summary, 0.0, 0.0);
  ASSERT_TRUE(probs.ok());

  const uint64_t buffer = 100;
  uint64_t n_star = QueriesToFillBuffer(*probs, buffer);
  ASSERT_NE(n_star, kNeverFills);
  auto at_nstar =
      WarmupTransient(*probs, {static_cast<double>(n_star)});
  EXPECT_NEAR(at_nstar[0].disk_accesses,
              ExpectedDiskAccesses(*probs, buffer), 1e-12);
  EXPECT_GE(at_nstar[0].distinct_nodes, static_cast<double>(buffer));

  sim::SimOptions options;
  options.buffer_pages = buffer;
  sim::MbrListSimulator simulator(&*summary, options);
  sim::UniformPointGenerator gen;
  Rng rng(619);
  auto result = simulator.Run(&gen, &rng, 10, 20000);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(at_nstar[0].disk_accesses, result->mean_disk_accesses,
              result->mean_disk_accesses * 0.06);
}

TEST(WarmupTest, SimulatedTransientTracksModelTransient) {
  // Run the simulator from a cold buffer and measure disk accesses in
  // windows; the measured curve must track ED(N) within coarse tolerance
  // while warming.
  Rng data_rng(621);
  auto rects = data::GenerateUniformPoints(20000, &data_rng);
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(25),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  auto probs = UniformAccessProbabilities(*summary, 0.0, 0.0);
  ASSERT_TRUE(probs.ok());

  sim::SimOptions options;
  options.buffer_pages = 200;
  sim::UniformPointGenerator gen;

  // Average the empirical transient over several cold starts.
  const int kRuns = 60;
  const std::vector<std::pair<uint64_t, uint64_t>> windows = {
      {0, 20}, {20, 80}, {80, 300}, {300, 1000}};
  std::vector<double> measured(windows.size(), 0.0);
  for (int run = 0; run < kRuns; ++run) {
    sim::MbrListSimulator simulator(&*summary, options);
    Rng rng(1000 + run);
    uint64_t q = 0;
    for (size_t w = 0; w < windows.size(); ++w) {
      uint64_t misses = 0;
      for (; q < windows[w].second; ++q) {
        misses += simulator.ExecuteQuery(gen.Next(rng), nullptr);
      }
      measured[w] += static_cast<double>(misses) /
                     static_cast<double>(windows[w].second -
                                         windows[w].first) /
                     kRuns;
    }
  }
  // The transient formula holds while the buffer is filling; past N* the
  // real curve plateaus at the steady state, so clamp the model there.
  const double n_star = static_cast<double>(
      QueriesToFillBuffer(*probs, options.buffer_pages));
  for (size_t w = 0; w < windows.size(); ++w) {
    double mid = (static_cast<double>(windows[w].first) +
                  static_cast<double>(windows[w].second)) /
                 2.0;
    auto point = WarmupTransient(*probs, {std::min(mid, n_star)});
    EXPECT_NEAR(point[0].disk_accesses, measured[w],
                measured[w] * 0.15 + 0.05)
        << "window " << windows[w].first << ".." << windows[w].second;
  }
}

}  // namespace
}  // namespace rtb::model
