// Tests for node serialization and the split heuristics.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "rtree/config.h"
#include "rtree/node.h"
#include "rtree/split.h"
#include "util/rng.h"

namespace rtb::rtree {
namespace {

using geom::Rect;

// --------------------------------------------------------------------------
// Serialization
// --------------------------------------------------------------------------

TEST(NodeSerdeTest, RoundTripLeaf) {
  Node node;
  node.level = 0;
  node.entries = {{Rect(0.1, 0.2, 0.3, 0.4), 7},
                  {Rect(0.5, 0.5, 0.9, 0.95), 123456789012345ULL}};
  std::vector<uint8_t> page(4096);
  ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
  auto decoded = DeserializeNode(page.data(), page.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->level, 0);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0], node.entries[0]);
  EXPECT_EQ(decoded->entries[1], node.entries[1]);
}

TEST(NodeSerdeTest, RoundTripInternalWithManyEntries) {
  Node node;
  node.level = 3;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    double x = rng.NextDouble() * 0.9, y = rng.NextDouble() * 0.9;
    node.entries.push_back(
        Entry{Rect(x, y, x + 0.05, y + 0.05), static_cast<uint64_t>(i)});
  }
  std::vector<uint8_t> page(4096);
  ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
  auto decoded = DeserializeNode(page.data(), page.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->level, 3);
  ASSERT_EQ(decoded->entries.size(), node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    EXPECT_EQ(decoded->entries[i], node.entries[i]) << i;
  }
}

TEST(NodeSerdeTest, EmptyNodeRoundTrips) {
  Node node;
  std::vector<uint8_t> page(4096);
  ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
  auto decoded = DeserializeNode(page.data(), page.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->entries.empty());
  EXPECT_TRUE(decoded->is_leaf());
}

TEST(NodeSerdeTest, OverflowRejected) {
  Node node;
  node.entries.resize(NodeCapacity(256) + 1);
  std::vector<uint8_t> page(256);
  EXPECT_EQ(SerializeNode(node, page.size(), page.data()).code(),
            StatusCode::kOutOfRange);
}

TEST(NodeSerdeTest, BadMagicDetected) {
  std::vector<uint8_t> page(4096, 0);
  auto decoded = DeserializeNode(page.data(), page.size());
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(NodeSerdeTest, CorruptCountDetected) {
  Node node;
  std::vector<uint8_t> page(256);
  ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
  // Forge an absurd entry count.
  uint16_t bogus = 60000;
  std::memcpy(page.data() + 6, &bogus, 2);
  auto decoded = DeserializeNode(page.data(), page.size());
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// --------------------------------------------------------------------------
// NodeView corruption handling: the zero-copy reader must reject the same
// malformed pages the deserializer does (the read path validates once in
// NodeView::Create and never re-checks per field).
// --------------------------------------------------------------------------

TEST(NodeViewCorruptionTest, BadMagicDetected) {
  std::vector<uint8_t> page(4096, 0);
  auto view = NodeView::Create(page.data(), page.size());
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kCorruption);
}

TEST(NodeViewCorruptionTest, CountOverflowDetected) {
  Node node;
  std::vector<uint8_t> page(256);
  ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
  uint16_t bogus = 60000;
  std::memcpy(page.data() + 6, &bogus, 2);
  auto view = NodeView::Create(page.data(), page.size());
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kCorruption);
}

TEST(NodeViewCorruptionTest, TruncatedEntryRegionDetected) {
  // A count that fits a 4096-byte page must not validate against a view
  // told the page is smaller than header + count * entry.
  Node node;
  node.level = 0;
  for (uint64_t i = 0; i < 5; ++i) {
    node.entries.push_back(Entry{Rect(0.1, 0.1, 0.2, 0.2), i});
  }
  std::vector<uint8_t> page(4096);
  ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
  // 16 + 5*40 = 216 bytes needed; claim only 200 are readable.
  auto view = NodeView::Create(page.data(), 200);
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kCorruption);
}

TEST(NodeViewCorruptionTest, PageSmallerThanHeaderDetected) {
  std::vector<uint8_t> page(8, 0);
  auto view = NodeView::Create(page.data(), page.size());
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kCorruption);
}

TEST(NodeViewCorruptionTest, AgreesWithDeserializeNodeOnRandomBytes) {
  // Both entry points into the page format must accept/reject identically.
  Rng rng(777);
  std::vector<uint8_t> page(512);
  for (int trial = 0; trial < 5000; ++trial) {
    for (auto& b : page) b = static_cast<uint8_t>(rng.NextUint64());
    auto node = DeserializeNode(page.data(), page.size());
    auto view = NodeView::Create(page.data(), page.size());
    ASSERT_EQ(node.ok(), view.ok());
    if (!view.ok()) {
      EXPECT_EQ(view.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(NodeSerdeTest, CapacityMatchesLayoutConstants) {
  EXPECT_EQ(NodeCapacity(4096), (4096u - 16u) / 40u);
  EXPECT_GE(NodeCapacity(4096), 100u);  // The paper's fanout must fit.
  EXPECT_EQ(NodeCapacity(8), 0u);
}

// Property sweep: random nodes of every shape round-trip bit-exactly
// through serialization, across page sizes.
class SerdePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SerdePropertyTest, RandomRoundTrips) {
  const size_t page_size = GetParam();
  Rng rng(GetParam());
  const uint32_t capacity = NodeCapacity(page_size);
  ASSERT_GT(capacity, 0u);
  for (int trial = 0; trial < 100; ++trial) {
    Node node;
    node.level = static_cast<uint16_t>(rng.UniformInt(8));
    size_t count = rng.UniformInt(capacity + 1);
    for (size_t i = 0; i < count; ++i) {
      double x0 = rng.NextDouble(), y0 = rng.NextDouble();
      node.entries.push_back(
          Entry{Rect(x0, y0, x0 + rng.NextDouble(), y0 + rng.NextDouble()),
                rng.NextUint64()});
    }
    std::vector<uint8_t> page(page_size);
    ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
    auto decoded = DeserializeNode(page.data(), page.size());
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->level, node.level);
    ASSERT_EQ(decoded->entries.size(), node.entries.size());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(decoded->entries[i], node.entries[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, SerdePropertyTest,
                         ::testing::Values(256, 1024, 4096, 8192));

TEST(SerdeFuzzTest, RandomBytesNeverCrashAndNeverOverflow) {
  // Arbitrary page images must decode to either a clean error or a node
  // whose entry count fits the page — never crash or read out of bounds.
  Rng rng(12345);
  std::vector<uint8_t> page(512);
  int decoded_ok = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    for (auto& b : page) b = static_cast<uint8_t>(rng.NextUint64());
    auto node = DeserializeNode(page.data(), page.size());
    if (node.ok()) {
      ++decoded_ok;
      EXPECT_LE(node->entries.size(), NodeCapacity(page.size()));
    } else {
      EXPECT_EQ(node.status().code(), StatusCode::kCorruption);
    }
  }
  // Random magic almost never matches; the check must actually reject.
  EXPECT_LT(decoded_ok, 5);
}

TEST(SerdeFuzzTest, BitFlippedValidPagesFailSafely) {
  // Start from a valid page and flip random bits: decoding stays safe and
  // count-overflow forgeries are caught.
  Rng rng(54321);
  Node node;
  node.level = 1;
  for (uint64_t i = 0; i < 10; ++i) {
    node.entries.push_back(Entry{Rect(0.1, 0.1, 0.2, 0.2), i});
  }
  std::vector<uint8_t> clean(512);
  ASSERT_TRUE(SerializeNode(node, clean.size(), clean.data()).ok());
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<uint8_t> page = clean;
    int flips = 1 + static_cast<int>(rng.UniformInt(8));
    for (int f = 0; f < flips; ++f) {
      size_t byte = rng.UniformInt(page.size());
      page[byte] ^= static_cast<uint8_t>(1u << rng.UniformInt(8));
    }
    auto decoded = DeserializeNode(page.data(), page.size());
    if (decoded.ok()) {
      EXPECT_LE(decoded->entries.size(), NodeCapacity(page.size()));
    }
  }
}

TEST(NodeTest, MbrOfEntries) {
  Node node;
  node.entries = {{Rect(0.2, 0.3, 0.4, 0.5), 1},
                  {Rect(0.1, 0.4, 0.3, 0.9), 2}};
  EXPECT_EQ(node.Mbr(), Rect(0.1, 0.3, 0.4, 0.9));
  Node empty;
  EXPECT_TRUE(empty.Mbr().is_empty());
}

// --------------------------------------------------------------------------
// Splits
// --------------------------------------------------------------------------

std::vector<Entry> RandomEntries(size_t n, Rng* rng) {
  std::vector<Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    double x = rng->NextDouble() * 0.95, y = rng->NextDouble() * 0.95;
    double w = rng->NextDouble() * 0.05, h = rng->NextDouble() * 0.05;
    entries.push_back(Entry{Rect(x, y, x + w, y + h), i});
  }
  return entries;
}

class SplitPolicyTest : public ::testing::TestWithParam<SplitPolicy> {};

TEST_P(SplitPolicyTest, PartitionPreservesAllEntriesAndHonorsMinFill) {
  Rng rng(97);
  RTreeConfig config = RTreeConfig::WithFanout(10, GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    auto entries = RandomEntries(11, &rng);  // Overflowing node: n+1.
    SplitResult split = SplitEntries(entries, config);
    EXPECT_EQ(split.group_a.size() + split.group_b.size(), entries.size());
    EXPECT_GE(split.group_a.size(), config.min_entries);
    EXPECT_GE(split.group_b.size(), config.min_entries);
    // Every input entry appears exactly once across the groups.
    std::vector<bool> seen(entries.size(), false);
    for (const auto* group : {&split.group_a, &split.group_b}) {
      for (const Entry& e : *group) {
        ASSERT_LT(e.id, entries.size());
        ASSERT_FALSE(seen[e.id]);
        seen[e.id] = true;
        EXPECT_EQ(entries[e.id], e);
      }
    }
  }
}

TEST_P(SplitPolicyTest, TwoEntriesSplitOnePerGroup) {
  RTreeConfig config = RTreeConfig::WithFanout(4, GetParam());
  std::vector<Entry> entries = {{Rect(0, 0, 0.1, 0.1), 0},
                                {Rect(0.8, 0.8, 1, 1), 1}};
  SplitResult split = SplitEntries(entries, config);
  EXPECT_EQ(split.group_a.size(), 1u);
  EXPECT_EQ(split.group_b.size(), 1u);
}

TEST_P(SplitPolicyTest, IdenticalRectanglesStillBalance) {
  RTreeConfig config = RTreeConfig::WithFanout(10, GetParam());
  std::vector<Entry> entries(11, Entry{Rect(0.4, 0.4, 0.6, 0.6), 0});
  for (size_t i = 0; i < entries.size(); ++i) entries[i].id = i;
  SplitResult split = SplitEntries(entries, config);
  EXPECT_EQ(split.group_a.size() + split.group_b.size(), 11u);
  EXPECT_GE(split.group_a.size(), config.min_entries);
  EXPECT_GE(split.group_b.size(), config.min_entries);
}

INSTANTIATE_TEST_SUITE_P(Policies, SplitPolicyTest,
                         ::testing::Values(SplitPolicy::kQuadratic,
                                           SplitPolicy::kLinear,
                                           SplitPolicy::kRStar),
                         [](const auto& info) {
                           switch (info.param) {
                             case SplitPolicy::kQuadratic:
                               return "Quadratic";
                             case SplitPolicy::kLinear:
                               return "Linear";
                             case SplitPolicy::kRStar:
                               return "RStar";
                           }
                           return "?";
                         });

TEST(RStarSplitTest, ChoosesAxisWithSmallerPerimeters) {
  // Entries form two clusters separated along y; the R* split must cut
  // along y (each group's MBR stays compact).
  RTreeConfig config = RTreeConfig::WithFanout(10, SplitPolicy::kRStar);
  std::vector<Entry> entries;
  Rng rng(103);
  for (size_t i = 0; i < 6; ++i) {
    double x = rng.Uniform(0.0, 0.9), y = rng.Uniform(0.0, 0.05);
    entries.push_back(Entry{Rect(x, y, x + 0.02, y + 0.02), i});
  }
  for (size_t i = 6; i < 11; ++i) {
    double x = rng.Uniform(0.0, 0.9), y = rng.Uniform(0.9, 0.95);
    entries.push_back(Entry{Rect(x, y, x + 0.02, y + 0.02), i});
  }
  SplitResult split = RStarSplit(entries, config);
  for (const auto* group : {&split.group_a, &split.group_b}) {
    bool low = (*group)[0].id < 6;
    for (const Entry& e : *group) {
      EXPECT_EQ(e.id < 6, low) << "group mixes the clusters";
    }
  }
}

TEST(RStarSplitTest, MinimizesOverlapAmongDistributions) {
  // A split of collinear boxes along x: groups must be contiguous runs, so
  // their MBRs do not overlap at all.
  RTreeConfig config = RTreeConfig::WithFanout(10, SplitPolicy::kRStar);
  std::vector<Entry> entries;
  for (size_t i = 0; i < 11; ++i) {
    double x = 0.05 + 0.08 * static_cast<double>(i);
    entries.push_back(Entry{Rect(x, 0.4, x + 0.04, 0.6), i});
  }
  SplitResult split = RStarSplit(entries, config);
  geom::Rect mbr_a = geom::Rect::Empty(), mbr_b = geom::Rect::Empty();
  for (const Entry& e : split.group_a) mbr_a = geom::Union(mbr_a, e.rect);
  for (const Entry& e : split.group_b) mbr_b = geom::Union(mbr_b, e.rect);
  EXPECT_DOUBLE_EQ(geom::Intersection(mbr_a, mbr_b).Area(), 0.0);
}

TEST(RTreeConfigTest, RStarFactory) {
  RTreeConfig config = RTreeConfig::RStar(50);
  EXPECT_TRUE(config.IsValid());
  EXPECT_EQ(config.split_policy, SplitPolicy::kRStar);
  EXPECT_EQ(config.insert_policy, InsertPolicy::kRStar);
  EXPECT_DOUBLE_EQ(config.reinsert_fraction, 0.3);
  RTreeConfig bad = config;
  bad.reinsert_fraction = 1.0;
  EXPECT_FALSE(bad.IsValid());
}

TEST(QuadraticSplitTest, SeparatesTwoObviousClusters) {
  RTreeConfig config = RTreeConfig::WithFanout(10);
  std::vector<Entry> entries;
  Rng rng(101);
  for (size_t i = 0; i < 5; ++i) {
    double x = rng.Uniform(0.0, 0.1), y = rng.Uniform(0.0, 0.1);
    entries.push_back(Entry{Rect(x, y, x + 0.02, y + 0.02), i});
  }
  for (size_t i = 5; i < 11; ++i) {
    double x = rng.Uniform(0.85, 0.95), y = rng.Uniform(0.85, 0.95);
    entries.push_back(Entry{Rect(x, y, x + 0.02, y + 0.02), i});
  }
  SplitResult split = QuadraticSplit(entries, config);
  // Each group should be pure: all ids < 5 or all >= 5.
  for (const auto* group : {&split.group_a, &split.group_b}) {
    bool low = (*group)[0].id < 5;
    for (const Entry& e : *group) {
      EXPECT_EQ(e.id < 5, low);
    }
  }
}

TEST(RTreeConfigTest, ValidityRules) {
  EXPECT_TRUE(RTreeConfig::WithFanout(100).IsValid());
  EXPECT_TRUE(RTreeConfig::WithFanout(25).IsValid());
  EXPECT_TRUE(RTreeConfig::WithFanout(2).IsValid());
  RTreeConfig bad;
  bad.max_entries = 10;
  bad.min_entries = 6;  // > n/2.
  EXPECT_FALSE(bad.IsValid());
  bad.min_entries = 0;
  EXPECT_FALSE(bad.IsValid());
}

}  // namespace
}  // namespace rtb::rtree
