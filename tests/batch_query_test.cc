// Batched-vs-serial equivalence suite for rtree::BatchExecutor:
//
//   * property test — identical per-query result sets and identical summed
//     node-access counts across random workloads (point, region and empty
//     queries), random batch sizes, and pool capacities from one frame to
//     fully resident;
//   * batch_size=1 — the runner's batch_size=1 configuration is the serial
//     per-query loop itself: byte-identical BufferStats and WorkloadResult
//     counters against a hand-written reference of the historical path;
//   * multi-get — PageCache::FetchBatch pins in order, counts one request
//     per id, releases cleanly on error (no leaked pins, no shard-lock
//     deadlock), on both the serial and the sharded pool;
//   * threads>1 — a sharded-pool batched run is deterministic and keeps the
//     logical node-access count of its serial twin (TSan covers this test
//     via the concurrency label).

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rtb.h"
#include "rtree/batch.h"

namespace rtb::rtree {
namespace {

using geom::Rect;
using storage::PageId;

Rect RandomRect(Rng& rng, double max_side) {
  const double x = rng.NextDouble() * (1.0 - max_side);
  const double y = rng.NextDouble() * (1.0 - max_side);
  return Rect(x, y, x + rng.NextDouble() * max_side,
              y + rng.NextDouble() * max_side);
}

struct TreeFixture {
  std::unique_ptr<storage::MemPageStore> store;
  BuiltTree built;
  uint32_t fanout;

  explicit TreeFixture(size_t points, uint32_t fanout, uint64_t seed = 11)
      : fanout(fanout) {
    Rng rng(seed);
    auto rects = data::GenerateUniformPoints(points, &rng);
    store = std::make_unique<storage::MemPageStore>();
    auto b = BuildRTree(store.get(), RTreeConfig::WithFanout(fanout), rects,
                        LoadAlgorithm::kHilbertSort);
    RTB_CHECK(b.ok());
    built = *b;
  }
};

// A mixed query stream: points, small regions, the occasional empty rect.
std::vector<Rect> MakeQueries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 11 == 10) {
      queries.push_back(Rect::Empty());
    } else if (i % 3 == 0) {
      queries.push_back(
          Rect::FromPoint({rng.NextDouble(), rng.NextDouble()}));
    } else {
      queries.push_back(RandomRect(rng, 0.07));
    }
  }
  return queries;
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// --------------------------------------------------------------------------
// Batched results and node accesses match the serial search (property test)
// --------------------------------------------------------------------------

void ExpectBatchEquivalence(TreeFixture& fx, size_t pool_pages,
                            size_t batch_size) {
  auto serial_pool = storage::BufferPool::MakeLru(fx.store.get(), pool_pages);
  auto batch_pool = storage::BufferPool::MakeLru(fx.store.get(), pool_pages);
  auto serial_tree =
      RTree::Open(serial_pool.get(), RTreeConfig::WithFanout(fx.fanout),
                  fx.built.root, fx.built.height);
  auto batch_tree =
      RTree::Open(batch_pool.get(), RTreeConfig::WithFanout(fx.fanout),
                  fx.built.root, fx.built.height);
  ASSERT_TRUE(serial_tree.ok());
  ASSERT_TRUE(batch_tree.ok());

  const std::vector<Rect> queries = MakeQueries(160, 500 + pool_pages);

  QueryStats serial_stats;
  std::vector<std::vector<ObjectId>> serial_results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(serial_tree->Search(queries[q], &serial_results[q],
                                    &serial_stats)
                    .ok());
  }

  BatchExecutor executor(&*batch_tree);
  BatchStats batch_stats;
  std::vector<std::vector<ObjectId>> batch_results;
  for (size_t off = 0; off < queries.size(); off += batch_size) {
    const size_t k = std::min(batch_size, queries.size() - off);
    std::vector<std::vector<ObjectId>> chunk;
    ASSERT_TRUE(executor
                    .Run(std::span<const Rect>(queries.data() + off, k),
                         &chunk, &batch_stats)
                    .ok());
    for (auto& r : chunk) batch_results.push_back(std::move(r));
  }

  ASSERT_EQ(batch_results.size(), serial_results.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    // Same id sets; emission order within a query is unspecified in the
    // batched path (pages are visited in page-id order, not preorder).
    EXPECT_EQ(Sorted(batch_results[q]), Sorted(serial_results[q]))
        << "pool " << pool_pages << " batch " << batch_size << " query "
        << q;
  }
  // Query q visits node n in either mode iff q intersects n's parent
  // entry, so the summed logical visit counts agree exactly.
  EXPECT_EQ(batch_stats.node_accesses, serial_stats.nodes_accessed);
  // Within a batch every distinct page is pinned once, so the batched side
  // can never issue more page requests than the serial side.
  EXPECT_LE(batch_pool->AggregateStats().requests,
            serial_pool->AggregateStats().requests);
}

TEST(BatchEquivalenceTest, ResidentPool) {
  TreeFixture fx(4000, 16);
  ExpectBatchEquivalence(fx, 4096, 64);
}

TEST(BatchEquivalenceTest, SmallPools) {
  TreeFixture fx(4000, 16);
  for (size_t pool_pages : {2u, 7u, 40u}) {
    for (size_t batch_size : {2u, 33u, 160u}) {
      ExpectBatchEquivalence(fx, pool_pages, batch_size);
    }
  }
}

TEST(BatchEquivalenceTest, OneFramePool) {
  // The degenerate pool: one frame, window degraded to a single page —
  // batching must still work (fetch-scan-release per page) and agree with
  // the serial search, exactly like the serial path's own 1-frame support.
  TreeFixture fx(3000, 10);
  ASSERT_GE(fx.built.height, 3);
  for (size_t batch_size : {2u, 64u}) {
    ExpectBatchEquivalence(fx, 1, batch_size);
  }
}

TEST(BatchEquivalenceTest, BatchOfOneAndEmptyBatch) {
  TreeFixture fx(2000, 16);
  auto pool = storage::BufferPool::MakeLru(fx.store.get(), 64);
  auto tree = RTree::Open(pool.get(), RTreeConfig::WithFanout(16),
                          fx.built.root, fx.built.height);
  ASSERT_TRUE(tree.ok());
  BatchExecutor executor(&*tree);

  std::vector<std::vector<ObjectId>> results;
  ASSERT_TRUE(executor.Run({}, &results).ok());
  EXPECT_TRUE(results.empty());

  const Rect query(0.2, 0.2, 0.4, 0.4);
  std::vector<ObjectId> serial;
  ASSERT_TRUE(tree->Search(query, &serial).ok());
  ASSERT_TRUE(executor.Run(std::span<const Rect>(&query, 1), &results).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(Sorted(results[0]), Sorted(serial));
}

// --------------------------------------------------------------------------
// batch_size=1 in the runner is the serial loop, byte for byte
// --------------------------------------------------------------------------

TEST(BatchRunnerTest, BatchSizeOneByteIdenticalToSerialRunner) {
  TreeFixture fx(5000, 32);
  constexpr uint64_t kSeed = 42, kWarmup = 300, kQueries = 700;

  // Reference: the historical serial loop, written out by hand. Worker 0
  // of the unified runner must execute this exact sequence.
  auto ref_pool = storage::BufferPool::MakeLru(fx.store.get(), 50);
  auto ref_tree = RTree::Open(ref_pool.get(), RTreeConfig::WithFanout(32),
                              fx.built.root, fx.built.height);
  ASSERT_TRUE(ref_tree.ok());
  sim::UniformRegionGenerator gen(0.05, 0.05);
  Rng ref_rng(kSeed + 0);  // Worker 0's substream.
  std::vector<ObjectId> sink;
  for (uint64_t i = 0; i < kWarmup; ++i) {
    sink.clear();
    ASSERT_TRUE(ref_tree->Search(gen.Next(ref_rng), &sink).ok());
  }
  const uint64_t ref_reads_before = fx.store->stats().reads;
  QueryStats ref_stats;
  for (uint64_t i = 0; i < kQueries; ++i) {
    sink.clear();
    ASSERT_TRUE(ref_tree->Search(gen.Next(ref_rng), &sink, &ref_stats).ok());
  }
  const uint64_t ref_disk = fx.store->stats().reads - ref_reads_before;
  const storage::BufferStats ref_buffer = ref_pool->AggregateStats();

  // Live: the unified runner with the default batch_size = 1.
  auto live_pool = storage::BufferPool::MakeLru(fx.store.get(), 50);
  auto live_tree = RTree::Open(live_pool.get(), RTreeConfig::WithFanout(32),
                               fx.built.root, fx.built.height);
  ASSERT_TRUE(live_tree.ok());
  sim::WorkloadOptions options;
  options.threads = 1;
  options.base_seed = kSeed;
  options.warmup = kWarmup;
  options.queries = kQueries;
  options.batch_size = 1;
  sim::UniformRegionGenerator live_gen(0.05, 0.05);
  auto result = sim::RunWorkload(&*live_tree, fx.store.get(), &live_gen,
                                 options);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->queries, kQueries);
  EXPECT_EQ(result->node_accesses, ref_stats.nodes_accessed);
  EXPECT_EQ(result->disk_accesses, ref_disk);

  const storage::BufferStats live_buffer = live_pool->AggregateStats();
  EXPECT_EQ(live_buffer.requests, ref_buffer.requests);
  EXPECT_EQ(live_buffer.hits, ref_buffer.hits);
  EXPECT_EQ(live_buffer.misses, ref_buffer.misses);
  EXPECT_EQ(live_buffer.evictions, ref_buffer.evictions);
  EXPECT_EQ(live_buffer.writebacks, ref_buffer.writebacks);
}

TEST(BatchRunnerTest, BatchedRunKeepsLogicalWorkAndResultsDeterministic) {
  TreeFixture fx(5000, 32);
  sim::WorkloadOptions options;
  options.threads = 1;
  options.base_seed = 7;
  options.warmup = 100;
  options.queries = 600;

  auto run = [&](uint64_t batch_size) {
    auto pool = storage::BufferPool::MakeLru(fx.store.get(), 60);
    auto tree = RTree::Open(pool.get(), RTreeConfig::WithFanout(32),
                            fx.built.root, fx.built.height);
    RTB_CHECK(tree.ok());
    sim::UniformRegionGenerator gen(0.04, 0.04);
    options.batch_size = batch_size;
    auto result = sim::RunWorkload(&*tree, fx.store.get(), &gen, options);
    RTB_CHECK(result.ok());
    return std::make_pair(*result, pool->AggregateStats());
  };

  const auto [serial, serial_buf] = run(1);
  for (uint64_t batch_size : {2u, 64u, 600u}) {
    const auto [batched, batched_buf] = run(batch_size);
    EXPECT_EQ(batched.queries, serial.queries) << batch_size;
    // Same query stream (generators draw per query, not per batch), same
    // logical node visits.
    EXPECT_EQ(batched.node_accesses, serial.node_accesses) << batch_size;
    // Coalescing strictly reduces page *requests*: a page shared by k
    // queries of a batch is requested once, not k times (the root alone
    // guarantees strictness at any batch_size >= 2).
    EXPECT_LT(batched_buf.requests, serial_buf.requests) << batch_size;
    // Disk *reads* are not point-wise comparable on a constrained pool —
    // reordering the accesses changes LRU's evictions — so only bound them
    // loosely at small batch sizes. Once a batch spans the whole workload,
    // within-batch dedup dominates any eviction jitter and reads must
    // strictly drop.
    EXPECT_LE(batched.disk_accesses,
              serial.disk_accesses + serial.disk_accesses / 4)
        << batch_size;
    if (batch_size >= options.queries) {
      EXPECT_LT(batched.disk_accesses, serial.disk_accesses) << batch_size;
    }
  }
}

// --------------------------------------------------------------------------
// FetchBatch (serial and sharded pools)
// --------------------------------------------------------------------------

TEST(FetchBatchTest, PinsInOrderAndCountsOneRequestPerId) {
  TreeFixture fx(1500, 16);
  auto pool = storage::BufferPool::MakeLru(fx.store.get(), 32);
  // Duplicate ids are allowed and each get an independent pin.
  const std::vector<PageId> ids = {fx.built.root, 0, 1, fx.built.root};
  pool->ResetStats();
  auto guards = pool->FetchBatch(ids.data(), ids.size());
  ASSERT_TRUE(guards.ok());
  ASSERT_EQ(guards->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*guards)[i].page_id(), ids[i]);
    EXPECT_NE((*guards)[i].data(), nullptr);
  }
  const storage::BufferStats stats = pool->AggregateStats();
  EXPECT_EQ(stats.requests, ids.size());
  EXPECT_GE(stats.hits, 1u);  // The duplicated root is a hit at least once.
}

TEST(FetchBatchTest, ShardedPoolMatchesSerialPoolContents) {
  TreeFixture fx(1500, 16);
  auto sharded = storage::ShardedBufferPool::MakeLru(fx.store.get(), 32,
                                                     /*num_shards=*/4);
  // A run of consecutive ids spanning every shard, plus duplicates.
  std::vector<PageId> ids;
  for (PageId id = 0; id < 12; ++id) ids.push_back(id);
  ids.push_back(3);
  ids.push_back(3);
  auto guards = sharded->FetchBatch(ids.data(), ids.size());
  ASSERT_TRUE(guards.ok());
  ASSERT_EQ(guards->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ((*guards)[i].page_id(), ids[i]);
    // Same bytes the store holds (MemPageStore is the source of truth).
    std::vector<uint8_t> expected(sharded->page_size());
    ASSERT_TRUE(fx.store->Read(ids[i], expected.data()).ok());
    EXPECT_EQ(std::memcmp((*guards)[i].data(), expected.data(),
                          expected.size()),
              0)
        << "id " << ids[i];
  }
  EXPECT_EQ(sharded->AggregateStats().requests, ids.size());
}

TEST(FetchBatchTest, OverCapacityFailsWithoutLeakingPins) {
  TreeFixture fx(1500, 16);
  // Pool of two frames; a batch of three distinct pages cannot all be
  // pinned at once.
  auto pool = storage::BufferPool::MakeLru(fx.store.get(), 2);
  const std::vector<PageId> ids = {0, 1, 2};
  auto guards = pool->FetchBatch(ids.data(), ids.size());
  ASSERT_FALSE(guards.ok());
  // The partial pins were all released: single fetches work again.
  for (PageId id : ids) {
    EXPECT_TRUE(pool->Fetch(id).ok()) << id;
  }
}

TEST(FetchBatchTest, ShardedOverCapacityFailsWithoutDeadlockOrLeak) {
  TreeFixture fx(1500, 16);
  // One shard of two frames: the failing batch pins, fails, and must
  // release its partial pins after dropping the shard lock (a release
  // under the lock would self-deadlock).
  auto pool = storage::ShardedBufferPool::MakeLru(fx.store.get(), 2,
                                                  /*num_shards=*/1);
  const std::vector<PageId> ids = {0, 1, 2};
  auto guards = pool->FetchBatch(ids.data(), ids.size());
  ASSERT_FALSE(guards.ok());
  for (PageId id : ids) {
    EXPECT_TRUE(pool->Fetch(id).ok()) << id;
  }
}

// --------------------------------------------------------------------------
// Concurrent batched execution (sharded pool; run under TSan via the
// concurrency label)
// --------------------------------------------------------------------------

TEST(BatchConcurrencyTest, ThreadedBatchedRunIsDeterministic) {
  TreeFixture fx(4000, 32);
  auto run = [&](uint64_t batch_size) {
    auto pool = storage::ShardedBufferPool::MakeLru(fx.store.get(), 64,
                                                    /*num_shards=*/4);
    auto tree = RTree::Open(pool.get(), RTreeConfig::WithFanout(32),
                            fx.built.root, fx.built.height);
    RTB_CHECK(tree.ok());
    sim::UniformRegionGenerator gen(0.05, 0.05);
    sim::WorkloadOptions options;
    options.threads = 2;
    options.base_seed = 9;
    options.warmup = 50;
    options.queries = 400;
    options.batch_size = batch_size;
    auto result = sim::RunWorkload(&*tree, fx.store.get(), &gen, options);
    RTB_CHECK(result.ok());
    return *result;
  };

  const sim::WorkloadResult serial = run(1);
  const sim::WorkloadResult batched_a = run(32);
  const sim::WorkloadResult batched_b = run(32);
  EXPECT_EQ(batched_a.queries, serial.queries);
  // Logical node visits are a pure function of the query stream, so they
  // match the serial run and reproduce across identical batched runs.
  EXPECT_EQ(batched_a.node_accesses, serial.node_accesses);
  EXPECT_EQ(batched_a.node_accesses, batched_b.node_accesses);
  ASSERT_EQ(batched_a.per_worker.size(), 2u);
  for (size_t w = 0; w < 2; ++w) {
    EXPECT_EQ(batched_a.per_worker[w].queries,
              serial.per_worker[w].queries);
    EXPECT_EQ(batched_a.per_worker[w].node_accesses,
              serial.per_worker[w].node_accesses);
  }
}

}  // namespace
}  // namespace rtb::rtree
