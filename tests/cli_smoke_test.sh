#!/bin/sh
# Smoke test for the rtb_cli tool: exercises every subcommand end to end on
# a temporary index and checks the pipeline stays consistent.
set -e

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --kind=region --n=5000 --seed=7 --out="$WORK/data.rects"
test -s "$WORK/data.rects"

"$CLI" build --data="$WORK/data.rects" --index="$WORK/idx" \
    --fanout=50 --algo=HS
test -s "$WORK/idx"
test -s "$WORK/idx.meta"

"$CLI" stats --index="$WORK/idx" | grep -q "data entries: 5000"
"$CLI" validate --index="$WORK/idx" | grep -q "OK"
"$CLI" predict --index="$WORK/idx" --buffer=30 | grep -q "disk accesses"
"$CLI" predict --index="$WORK/idx" --buffer=30 --pin=1 | grep -q "pinned"
"$CLI" predict --index="$WORK/idx" --buffer=30 --qx=0.1 --qy=0.1 \
    --data="$WORK/data.rects" | grep -q "data-driven"
"$CLI" query --index="$WORK/idx" --buffer=30 --queries=5000 --warmup=1000 \
    | grep -q "measured"
"$CLI" knn --index="$WORK/idx" --x=0.5 --y=0.5 --k=3 | grep -q "nearest"

# Help text: global and per-subcommand, both exiting zero.
"$CLI" --help | grep -q "usage:"
"$CLI" help | grep -q "usage:"
"$CLI" query --help | grep -q "usage: rtb_cli query"
"$CLI" run --help | grep -q "usage: rtb_cli run"

# Unknown subcommands, unknown flags, and missing files must fail.
if "$CLI" bogus 2>/dev/null; then exit 1; fi
if "$CLI" 2>/dev/null; then exit 1; fi
if "$CLI" build --bogus=1 2>/dev/null; then exit 1; fi
if "$CLI" stats --index="$WORK/missing" 2>/dev/null; then exit 1; fi

# RSTAR build path.
"$CLI" build --data="$WORK/data.rects" --index="$WORK/idx2" \
    --fanout=20 --algo=RSTAR
"$CLI" validate --index="$WORK/idx2" --strict=1 | grep -q "OK"

echo "cli smoke test passed"
