// Failure-injection tests: I/O errors must propagate as Status through the
// buffer pool and the R-tree without crashes, leaks of frames, or state
// corruption — and the system must recover once the fault clears.

#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "rtree/bulk_load.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "rtree/summary.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/file_page_store.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::storage {
namespace {

using geom::Point;
using geom::Rect;

TEST(FaultInjectionTest, PassThroughWhenHealthy) {
  MemPageStore base(64);
  FaultInjectingPageStore store(&base);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> buf(64, 7);
  ASSERT_TRUE(store.Write(*id, buf.data()).ok());
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(store.Read(*id, out.data()).ok());
  EXPECT_EQ(out[0], 7);
}

TEST(FaultInjectionTest, FailNextReadsCountsDown) {
  MemPageStore base(64);
  FaultInjectingPageStore store(&base);
  (void)store.Allocate();
  std::vector<uint8_t> buf(64);
  store.FailNextReads(2, Status::IoError("boom"));
  EXPECT_EQ(store.Read(0, buf.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(store.Read(0, buf.data()).code(), StatusCode::kIoError);
  EXPECT_TRUE(store.Read(0, buf.data()).ok());
}

TEST(BufferPoolFaultTest, ReadFaultSurfacesAndFrameIsReusable) {
  MemPageStore base(64);
  FaultInjectingPageStore store(&base);
  for (int i = 0; i < 3; ++i) (void)store.Allocate();
  auto pool = BufferPool::MakeLru(&store, 2);

  store.FailNextReads(1, Status::IoError("disk died"));
  auto failed = pool->Fetch(0);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(pool->Contains(0));

  // The frame must have been returned to the free list: the pool can still
  // hold two pages.
  auto a = pool->Fetch(1);
  auto b = pool->Fetch(2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // And the faulted page is fetchable after the fault clears.
  a->Release();
  b->Release();
  auto recovered = pool->Fetch(0);
  EXPECT_TRUE(recovered.ok());
}

TEST(BufferPoolFaultTest, WritebackFaultSurfacesOnEviction) {
  MemPageStore base(64);
  FaultInjectingPageStore store(&base);
  for (int i = 0; i < 2; ++i) (void)store.Allocate();
  auto pool = BufferPool::MakeLru(&store, 1);
  {
    auto g = pool->FetchMutable(0);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 9;
  }
  store.FailNextWrites(1, Status::IoError("write fault"));
  auto next = pool->Fetch(1);  // Must evict dirty page 0 -> writeback fails.
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kIoError);
  // Retry succeeds once the fault clears, and the dirty data survives.
  auto retry = pool->Fetch(1);
  ASSERT_TRUE(retry.ok());
  retry->Release();
  ASSERT_TRUE(pool->EvictAll().ok());
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(base.Read(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 9);
}

TEST(BufferPoolFaultTest, CloseSurfacesWritebackFailureAndKeepsDirtyPage) {
  MemPageStore base(64);
  FaultInjectingPageStore store(&base);
  for (int i = 0; i < 2; ++i) (void)store.Allocate();
  auto pool = BufferPool::MakeLru(&store, 2);
  {
    auto g = pool->FetchMutable(0);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = 42;
  }
  store.FailNextWrites(1, Status::IoError("close-time write fault"));
  Status s = pool->Close();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // The failed writeback must not have dropped the dirty data: once the
  // fault clears, Close succeeds and the page reaches the store.
  ASSERT_TRUE(pool->Close().ok());
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(base.Read(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 42);
}

TEST(FaultInjectionTest, HealthyBatchKeepsBaseVectoredPath) {
  if (!VectoredIoAvailable()) GTEST_SKIP() << "vectored path not compiled";
  const bool was_vectored = VectoredIoActive();
  ASSERT_TRUE(SetVectoredIo(true));
  const char* path = "/tmp/rtb_fault_batch_test.store";
  auto file = FilePageStore::Create(path);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> buf((*file)->page_size());
  for (int i = 0; i < 8; ++i) {
    auto id = (*file)->Allocate();
    ASSERT_TRUE(id.ok());
    buf[0] = static_cast<uint8_t>(0x40 + i);
    ASSERT_TRUE((*file)->Write(*id, buf.data()).ok());
  }
  FaultInjectingPageStore store(file->get());

  // A poisoned page outside the batch must not degrade the batch to
  // page-at-a-time reads: the base store still coalesces.
  store.FailPage(7, Status::IoError("bad sector"));
  const PageId ids[4] = {1, 2, 3, 4};
  std::vector<uint8_t> out(4 * store.page_size());
  const uint64_t batches_before = store.stats().read_batches;
  ASSERT_TRUE(store.ReadBatch(ids, 4, out.data()).ok());
  EXPECT_GT(store.stats().read_batches, batches_before);
  EXPECT_EQ(out[0], 0x41);
  EXPECT_EQ(out[3 * store.page_size()], 0x44);

  // A batch that does contain the poisoned page fails.
  const PageId poisoned_ids[3] = {5, 6, 7};
  EXPECT_EQ(store.ReadBatch(poisoned_ids, 3, out.data()).code(),
            StatusCode::kIoError);

  // And an armed countdown fails the batch at the faulted page.
  store.FailPage(kInvalidPageId, Status::OK());
  store.FailNextReads(1, Status::IoError("transient"));
  EXPECT_EQ(store.ReadBatch(ids, 4, out.data()).code(),
            StatusCode::kIoError);
  ASSERT_TRUE(store.ReadBatch(ids, 4, out.data()).ok());

  ASSERT_TRUE(store.Close().ok());
  SetVectoredIo(was_vectored);
  std::remove(path);
}

TEST(FaultInjectionTest, HealthyWriteBatchKeepsBaseVectoredPath) {
  if (!VectoredIoAvailable()) GTEST_SKIP() << "vectored path not compiled";
  const bool was_vectored = VectoredIoActive();
  ASSERT_TRUE(SetVectoredIo(true));
  const char* path = "/tmp/rtb_fault_write_batch_test.store";
  auto file = FilePageStore::Create(path);
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 8; ++i) {
    auto id = (*file)->Allocate();
    ASSERT_TRUE(id.ok());
  }
  FaultInjectingPageStore store(file->get());
  ASSERT_TRUE(store.CoalescesBatchWrites());

  // A write-poisoned page outside the batch must not degrade the batch to
  // page-at-a-time writes: the base store still coalesces with pwritev.
  store.FailPageWrites(7, Status::IoError("bad sector"));
  const PageId ids[4] = {1, 2, 3, 4};
  std::vector<uint8_t> data(4 * store.page_size());
  for (int i = 0; i < 4; ++i) {
    data[static_cast<size_t>(i) * store.page_size()] =
        static_cast<uint8_t>(0x60 + i);
  }
  const uint64_t batches_before = store.stats().write_batches;
  ASSERT_TRUE(store.WriteBatch(ids, 4, data.data()).ok());
  EXPECT_GT(store.stats().write_batches, batches_before);
  std::vector<uint8_t> buf(store.page_size());
  ASSERT_TRUE(store.Read(4, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x63);

  // A batch that does contain the poisoned page fails.
  const PageId poisoned_ids[3] = {5, 6, 7};
  std::vector<uint8_t> three(3 * store.page_size());
  EXPECT_EQ(store.WriteBatch(poisoned_ids, 3, three.data()).code(),
            StatusCode::kIoError);

  // And an armed countdown fails the batch at the faulted page.
  store.FailPageWrites(kInvalidPageId, Status::OK());
  store.FailNextWrites(1, Status::IoError("transient"));
  EXPECT_EQ(store.WriteBatch(ids, 4, data.data()).code(),
            StatusCode::kIoError);
  ASSERT_TRUE(store.WriteBatch(ids, 4, data.data()).ok());

  ASSERT_TRUE(store.Close().ok());
  SetVectoredIo(was_vectored);
  std::remove(path);
}

TEST(BufferPoolFaultTest, FlushFaultKeepsAllPagesDirtyForRetry) {
  if (!VectoredIoAvailable()) GTEST_SKIP() << "vectored path not compiled";
  const bool was_vectored = VectoredIoActive();
  ASSERT_TRUE(SetVectoredIo(true));
  const char* path = "/tmp/rtb_fault_flush_test.store";
  auto file = FilePageStore::Create(path);
  ASSERT_TRUE(file.ok());
  FaultInjectingPageStore store(file->get());
  auto pool = BufferPool::MakeLru(&store, 8);
  for (int i = 0; i < 6; ++i) {
    auto g = pool->NewPage();
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = static_cast<uint8_t>(0x70 + i);
  }

  // Fail one page's write mid-batch. The coalesced flush may have written
  // a prefix, but the pool must keep *every* page dirty, so the retry
  // rewrites them all (rewriting an already-written page is idempotent).
  store.FailPageWrites(3, Status::IoError("bad sector"));
  Status flush = pool->FlushAll();
  ASSERT_FALSE(flush.ok());
  store.FailPageWrites(kInvalidPageId, Status::OK());
  ASSERT_TRUE(pool->FlushAll().ok());
  std::vector<uint8_t> buf(store.page_size());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.Read(static_cast<PageId>(i), buf.data()).ok());
    EXPECT_EQ(buf[0], 0x70 + i) << "page " << i;
  }
  ASSERT_TRUE(pool->Close().ok());
  SetVectoredIo(was_vectored);
  std::remove(path);
}

TEST(BufferPoolFaultTest, EvictionClusterWritebackCoalescesAndRecovers) {
  if (!VectoredIoAvailable()) GTEST_SKIP() << "vectored path not compiled";
  const bool was_vectored = VectoredIoActive();
  ASSERT_TRUE(SetVectoredIo(true));
  const char* path = "/tmp/rtb_fault_evict_cluster_test.store";
  auto file = FilePageStore::Create(path);
  ASSERT_TRUE(file.ok());
  FaultInjectingPageStore store(&**file);
  auto pool = BufferPool::MakeLru(&store, 4);
  // Dirty the whole pool with consecutive pages, then force an eviction:
  // the victim's writeback should cluster its dirty neighbors into one
  // vectored batch.
  for (int i = 0; i < 4; ++i) {
    auto g = pool->NewPage();
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = static_cast<uint8_t>(0x50 + i);
  }
  const uint64_t batches_before = store.stats().write_batches;
  auto g = pool->NewPage();  // Evicts one victim, clustering the rest.
  ASSERT_TRUE(g.ok());
  EXPECT_GT(store.stats().write_batches, batches_before);
  // The clustered pages were written as data and are now clean; the store
  // holds their bytes.
  std::vector<uint8_t> buf(store.page_size());
  ASSERT_TRUE(store.Read(2, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x52);
  ASSERT_TRUE(pool->Close().ok());
  SetVectoredIo(was_vectored);
  std::remove(path);
}

class RTreeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(881);
    rects_ = data::GenerateSyntheticRegion(2000, &rng);
    auto built = rtree::BuildRTree(&base_, rtree::RTreeConfig::WithFanout(16),
                                   rects_, rtree::LoadAlgorithm::kHilbertSort);
    ASSERT_TRUE(built.ok());
    built_ = *built;
    store_ = std::make_unique<FaultInjectingPageStore>(&base_);
    pool_ = BufferPool::MakeLru(store_.get(), 8);
    auto tree = rtree::RTree::Open(pool_.get(),
                                   rtree::RTreeConfig::WithFanout(16),
                                   built_.root, built_.height);
    ASSERT_TRUE(tree.ok());
    tree_ = std::make_unique<rtree::RTree>(std::move(*tree));
    ASSERT_TRUE(pool_->EvictAll().ok());
  }

  MemPageStore base_{kDefaultPageSize};
  rtree::BuiltTree built_;
  std::unique_ptr<FaultInjectingPageStore> store_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<rtree::RTree> tree_;
  std::vector<Rect> rects_;
};

TEST_F(RTreeFaultTest, SearchPropagatesIoErrorAndRecovers) {
  store_->FailNextReads(1, Status::IoError("transient"));
  std::vector<rtree::ObjectId> out;
  Status s = tree_->Search(Rect(0.4, 0.4, 0.6, 0.6), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);

  // Same query succeeds after the fault clears, with complete results.
  out.clear();
  ASSERT_TRUE(tree_->Search(Rect(0.4, 0.4, 0.6, 0.6), &out).ok());
  size_t expected = 0;
  for (const Rect& r : rects_) {
    if (r.Intersects(Rect(0.4, 0.4, 0.6, 0.6))) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST_F(RTreeFaultTest, PoisonedLeafFailsOnlyQueriesTouchingIt) {
  // Poison one leaf page; queries in other regions keep working.
  auto summary = rtree::TreeSummary::Extract(&base_, built_.root);
  ASSERT_TRUE(summary.ok());
  PageId poisoned = kInvalidPageId;
  Rect poisoned_mbr;
  for (const auto& node : summary->nodes()) {
    if (node.level == 0) {
      poisoned = node.page;
      poisoned_mbr = node.mbr;
      break;
    }
  }
  ASSERT_NE(poisoned, kInvalidPageId);
  ASSERT_TRUE(pool_->EvictAll().ok());
  store_->FailPage(poisoned, Status::IoError("bad sector"));

  std::vector<rtree::ObjectId> out;
  Status hit = tree_->Search(poisoned_mbr, &out);
  EXPECT_FALSE(hit.ok());

  // A query in a disjoint region avoids the poisoned page entirely.
  Rect elsewhere = poisoned_mbr.Center().x < 0.5
                       ? Rect(0.9, 0.9, 0.95, 0.95)
                       : Rect(0.02, 0.02, 0.05, 0.05);
  out.clear();
  EXPECT_TRUE(tree_->Search(elsewhere, &out).ok());
}

TEST_F(RTreeFaultTest, InsertFailureLeavesTreeReadable) {
  store_->FailNextReads(1, Status::IoError("transient"));
  Status s = tree_->Insert(Rect(0.5, 0.5, 0.51, 0.51), 999999);
  EXPECT_FALSE(s.ok());
  // The tree remains fully readable afterwards.
  std::vector<rtree::ObjectId> out;
  ASSERT_TRUE(tree_->Search(Rect::UnitSquare(), &out).ok());
  EXPECT_GE(out.size(), rects_.size());
}

TEST_F(RTreeFaultTest, KnnPropagatesIoError) {
  store_->FailNextReads(1, Status::IoError("transient"));
  auto got = rtree::SearchKnn(*tree_, Point{0.5, 0.5}, 3);
  EXPECT_FALSE(got.ok());
  auto retry = rtree::SearchKnn(*tree_, Point{0.5, 0.5}, 3);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->size(), 3u);
}

}  // namespace
}  // namespace rtb::storage
