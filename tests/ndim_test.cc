// Tests for the D-dimensional generalization: BoxNd geometry, STR-Nd
// packing, Nd access probabilities, and model-vs-simulation validation in
// 2, 3 and 4 dimensions (the paper's "generalizations to higher dimensions
// are straightforward", made checkable).

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "geom/boxnd.h"
#include "model/access_prob.h"
#include "model/cost_model.h"
#include "model/ndim.h"
#include "rtree/bulk_load.h"
#include "rtree/summary.h"
#include "sim/nd_sim.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::model {
namespace {

using geom::BoxNd;
using geom::PointNd;

template <size_t D>
std::vector<BoxNd<D>> RandomPointsNd(size_t n, Rng* rng) {
  std::vector<BoxNd<D>> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PointNd<D> p;
    for (size_t d = 0; d < D; ++d) p[d] = rng->NextDouble();
    boxes.push_back(BoxNd<D>::FromPoint(p));
  }
  return boxes;
}

// --------------------------------------------------------------------------
// BoxNd geometry
// --------------------------------------------------------------------------

TEST(BoxNdTest, VolumeExtentContainment) {
  BoxNd<3> b{{0.1, 0.2, 0.3}, {0.5, 0.4, 0.9}};
  EXPECT_NEAR(b.Volume(), 0.4 * 0.2 * 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(b.Extent(2), 0.6);
  EXPECT_TRUE(b.Contains(PointNd<3>{0.3, 0.3, 0.5}));
  EXPECT_FALSE(b.Contains(PointNd<3>{0.3, 0.5, 0.5}));
}

TEST(BoxNdTest, EmptyAndUnion) {
  BoxNd<4> e = BoxNd<4>::Empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.Volume(), 0.0);
  BoxNd<4> b{{0, 0, 0, 0}, {0.5, 0.5, 0.5, 0.5}};
  EXPECT_EQ(Union(e, b), b);
  BoxNd<4> c{{0.4, 0.4, 0.4, 0.4}, {1, 1, 1, 1}};
  BoxNd<4> u = Union(b, c);
  EXPECT_EQ(u, BoxNd<4>::UnitCube());
  EXPECT_TRUE(b.Intersects(c));
  BoxNd<4> far{{0.9, 0.9, 0.9, 0.9}, {1, 1, 1, 1}};
  EXPECT_FALSE(b.Intersects(far));
}

TEST(BoxNdTest, MatchesRect2d) {
  // The D=2 specialization must agree with the concrete Rect type.
  Rng rng(801);
  for (int i = 0; i < 500; ++i) {
    double x0 = rng.NextDouble(), x1 = rng.NextDouble();
    double y0 = rng.NextDouble(), y1 = rng.NextDouble();
    geom::Rect r(std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
                 std::max(y0, y1));
    BoxNd<2> b{{r.lo.x, r.lo.y}, {r.hi.x, r.hi.y}};
    EXPECT_DOUBLE_EQ(b.Volume(), r.Area());
    geom::Point p{rng.NextDouble(), rng.NextDouble()};
    EXPECT_EQ(b.Contains(PointNd<2>{p.x, p.y}), r.Contains(p));
  }
}

// --------------------------------------------------------------------------
// PackStrNd
// --------------------------------------------------------------------------

TEST(PackStrNdTest, ShapeMatchesCeilDivision) {
  Rng rng(809);
  auto boxes = RandomPointsNd<3>(40000, &rng);
  auto summary = PackStrNd<3>(std::move(boxes), 25);
  EXPECT_EQ(summary.height, 4);
  // 1600 + 64 + 3 + 1 (same arithmetic as 2-D Table 2).
  EXPECT_EQ(summary.NumNodes(), 1668u);
}

TEST(PackStrNdTest, ParentsContainChildren) {
  Rng rng(811);
  auto boxes = RandomPointsNd<3>(5000, &rng);
  auto summary = PackStrNd<3>(std::move(boxes), 16);
  ASSERT_GT(summary.NumNodes(), 1u);
  EXPECT_EQ(summary.nodes[0].parent, 0xFFFFFFFFu);
  for (size_t j = 1; j < summary.nodes.size(); ++j) {
    const auto& child = summary.nodes[j];
    ASSERT_LT(child.parent, j);  // Preorder.
    const auto& parent = summary.nodes[child.parent];
    EXPECT_EQ(parent.level, child.level + 1);
    // Containment.
    EXPECT_EQ(Union(parent.mbr, child.mbr), parent.mbr);
  }
}

TEST(PackStrNdTest, LevelCountsConsistent) {
  Rng rng(821);
  auto boxes = RandomPointsNd<4>(3000, &rng);
  auto summary = PackStrNd<4>(std::move(boxes), 10);
  std::vector<uint32_t> counts(summary.height, 0);
  for (const auto& node : summary.nodes) {
    ASSERT_LT(node.level, summary.height);
    ++counts[node.level];
  }
  EXPECT_EQ(counts[0], 300u);
  EXPECT_EQ(counts[summary.height - 1], 1u);
  for (size_t l = 1; l < counts.size(); ++l) {
    EXPECT_LT(counts[l], counts[l - 1]);
  }
}

TEST(PackStrNdTest, SingleBoxBecomesLeafRoot) {
  Rng rng(823);
  auto boxes = RandomPointsNd<2>(3, &rng);
  auto summary = PackStrNd<2>(std::move(boxes), 4);
  EXPECT_EQ(summary.height, 1);
  EXPECT_EQ(summary.NumNodes(), 1u);
}

TEST(PackStrNd2dTest, EquivalentQualityToConcreteStrLoader) {
  // The 2-D instantiation should produce trees of quality comparable to
  // the storage-backed STR loader (same algorithm family): total node
  // volume within 25%.
  Rng rng(827);
  auto rects = data::GenerateUniformPoints(20000, &rng);
  storage::MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(50),
                                 rects, rtree::LoadAlgorithm::kStr);
  ASSERT_TRUE(built.ok());
  auto concrete = rtree::TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(concrete.ok());

  std::vector<BoxNd<2>> boxes;
  for (const geom::Rect& r : rects) {
    boxes.push_back(BoxNd<2>{{r.lo.x, r.lo.y}, {r.hi.x, r.hi.y}});
  }
  auto nd = PackStrNd<2>(std::move(boxes), 50);
  EXPECT_EQ(nd.NumNodes(), concrete->NumNodes());
  double nd_volume = 0.0;
  for (const auto& node : nd.nodes) nd_volume += node.mbr.Volume();
  EXPECT_NEAR(nd_volume, concrete->TotalArea(), concrete->TotalArea() * 0.25);
}

// --------------------------------------------------------------------------
// Nd access probabilities + buffer model vs simulation
// --------------------------------------------------------------------------

TEST(NdProbabilityTest, MatchesConcrete2dModel) {
  // For the same boxes and query extents, the Nd formula must equal the
  // concrete 2-D UniformAccessProbability.
  Rng rng(829);
  for (int i = 0; i < 1000; ++i) {
    double x0 = rng.NextDouble() * 0.8, y0 = rng.NextDouble() * 0.8;
    geom::Rect r(x0, y0, x0 + rng.NextDouble() * 0.2,
                 y0 + rng.NextDouble() * 0.2);
    BoxNd<2> b{{r.lo.x, r.lo.y}, {r.hi.x, r.hi.y}};
    double qx = rng.Uniform(0.0, 0.5), qy = rng.Uniform(0.0, 0.5);
    EXPECT_NEAR(UniformAccessProbabilityNd<2>(b, {qx, qy}),
                UniformAccessProbability(r, qx, qy), 1e-12);
  }
}

TEST(NdProbabilityTest, MonteCarloAgrees3d) {
  Rng rng(839);
  BoxNd<3> r{{0.2, 0.1, 0.5}, {0.6, 0.4, 0.9}};
  std::array<double, 3> q{0.15, 0.1, 0.05};
  double p = UniformAccessProbabilityNd<3>(r, q);
  int hits = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    auto query = sim::NextUniformQueryNd<3>(q, &rng);
    if (query.Intersects(r)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.005);
}

template <size_t D>
void ValidateBufferModelNd(uint64_t seed, size_t n, uint32_t fanout,
                           const std::array<double, D>& q, uint64_t buffer,
                           double tolerance) {
  Rng rng(seed);
  auto boxes = RandomPointsNd<D>(n, &rng);
  auto summary = PackStrNd<D>(std::move(boxes), fanout);
  auto probs = UniformAccessProbabilitiesNd<D>(summary, q);
  double predicted = ExpectedDiskAccesses(probs, buffer);

  sim::NdMbrListSimulator<D> simulator(&summary, buffer);
  Rng qrng(seed + 1);
  double simulated = simulator.Run(q, /*warmup=*/20000, /*queries=*/150000,
                                   &qrng);
  EXPECT_NEAR(predicted, simulated,
              std::max(0.03, simulated * tolerance))
      << "D=" << D << " buffer=" << buffer;
}

TEST(NdValidationTest, PointQueries3d) {
  ValidateBufferModelNd<3>(901, 30000, 25, {0.0, 0.0, 0.0}, 100, 0.06);
  ValidateBufferModelNd<3>(903, 30000, 25, {0.0, 0.0, 0.0}, 400, 0.06);
}

TEST(NdValidationTest, RegionQueries3d) {
  ValidateBufferModelNd<3>(907, 30000, 25, {0.1, 0.1, 0.1}, 300, 0.08);
}

TEST(NdValidationTest, PointQueries4d) {
  ValidateBufferModelNd<4>(911, 20000, 20, {0.0, 0.0, 0.0, 0.0}, 200, 0.08);
}

TEST(NdValidationTest, TwoDMatchesConcretePipelineEndToEnd) {
  // Full-circle check: the Nd pipeline instantiated at D=2 must give the
  // same disk-access prediction as the concrete 2-D pipeline on the same
  // tree geometry (exactly equal inputs -> exactly equal model outputs).
  Rng rng(919);
  auto rects = data::GenerateUniformPoints(10000, &rng);
  storage::MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(25),
                                 rects, rtree::LoadAlgorithm::kStr);
  ASSERT_TRUE(built.ok());
  auto concrete = rtree::TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(concrete.ok());

  // Convert the concrete summary's boxes into an Nd summary mirror.
  NdTreeSummary<2> mirror;
  mirror.height = concrete->height();
  for (const rtree::NodeInfo& node : concrete->nodes()) {
    NdNodeInfo<2> info;
    info.mbr = BoxNd<2>{{node.mbr.lo.x, node.mbr.lo.y},
                        {node.mbr.hi.x, node.mbr.hi.y}};
    info.level = node.level;
    info.parent = node.parent;
    mirror.nodes.push_back(info);
  }
  auto nd_probs = UniformAccessProbabilitiesNd<2>(mirror, {0.02, 0.03});
  auto concrete_probs = UniformAccessProbabilities(*concrete, 0.02, 0.03);
  ASSERT_TRUE(concrete_probs.ok());
  ASSERT_EQ(nd_probs.size(), concrete_probs->size());
  for (size_t j = 0; j < nd_probs.size(); ++j) {
    ASSERT_NEAR(nd_probs[j], (*concrete_probs)[j], 1e-12);
  }
  EXPECT_DOUBLE_EQ(ExpectedDiskAccesses(nd_probs, 120),
                   ExpectedDiskAccesses(*concrete_probs, 120));
}

}  // namespace
}  // namespace rtb::model
