// Tests for the bench support library: flags, table formatting/CSV export,
// and the workload/model/simulation shorthands the experiment binaries are
// built from.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/common.h"

namespace rtb::bench {
namespace {

// --------------------------------------------------------------------------
// Flags
// --------------------------------------------------------------------------

TEST(FlagsTest, DefaultsAndOverrides) {
  const char* argv[] = {"prog", "--n=42", "--rate=0.5", "--name=xyz"};
  Flags flags(4, const_cast<char**>(argv),
              {{"n", "7"}, {"rate", "0.1"}, {"name", "abc"}, {"other", "9"}});
  EXPECT_EQ(flags.GetInt("n"), 42u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_EQ(flags.GetInt("other"), 9u);  // Untouched default.
}

TEST(FlagsTest, NoArgsKeepsDefaults) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv), {{"n", "5"}});
  EXPECT_EQ(flags.GetInt("n"), 5u);
}

// --------------------------------------------------------------------------
// Table
// --------------------------------------------------------------------------

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(-0.5, 4), "-0.5000");
  EXPECT_EQ(Table::Int(123456789), "123456789");
}

TEST(TableTest, CsvExportRoundTrips) {
  Table table({"a", "b"});
  table.AddRow({"1", "2.5"});
  table.AddRow({"3", "4.0%"});  // '%' must be stripped for plotting.
  std::string path = ::testing::TempDir() + "/rtb_bench_table.csv";
  std::remove(path.c_str());
  ASSERT_TRUE(table.AppendCsv(path, "mylabel"));

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "label,a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "mylabel,1,2.5");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "mylabel,3,4.0");

  // Appending adds more rows (header repeated per block, by design).
  ASSERT_TRUE(table.AppendCsv(path, "second"));
  int lines = 0;
  std::ifstream again(path);
  while (std::getline(again, line)) ++lines;
  EXPECT_EQ(lines, 6);
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Workload helpers
// --------------------------------------------------------------------------

TEST(WorkloadTest, BuildAndPredictAndSimulateAgree) {
  Rng rng(33);
  auto rects = data::GenerateSyntheticRegion(5000, &rng);
  Workload w = BuildWorkload(rects, 50, rtree::LoadAlgorithm::kHilbertSort);
  EXPECT_EQ(w.label, "HS");
  EXPECT_EQ(w.summary->NumDataEntries(), 5000u);
  EXPECT_EQ(w.centers.size(), 5000u);

  model::QuerySpec spec = model::QuerySpec::UniformPoint();
  double predicted = ModelDiskAccesses(w, spec, 40);
  SimEstimate sim = SimulateDiskAccesses(w, spec, 40, 8, 15000, 77);
  EXPECT_GT(predicted, 0.0);
  EXPECT_NEAR(predicted, sim.mean, std::max(0.03, sim.mean * 0.08));
  EXPECT_GE(sim.ci90_rel, 0.0);
  EXPECT_LT(sim.ci90_rel, 0.05);
}

TEST(WorkloadTest, NamedDatasetsHaveRequestedSizes) {
  auto tiger = MakeTigerData(5, 3000);
  EXPECT_EQ(tiger.size(), 3000u);
  auto cfd = MakeCfdData(5, 2500);
  EXPECT_EQ(cfd.size(), 2500u);
}

}  // namespace
}  // namespace rtb::bench
