// Tests for the bench support library: flags, table formatting/CSV export,
// and the workload/model/simulation shorthands the experiment binaries are
// built from.

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/common.h"

namespace rtb::bench {
namespace {

// --------------------------------------------------------------------------
// Flags
// --------------------------------------------------------------------------

TEST(FlagsTest, DefaultsAndOverrides) {
  const char* argv[] = {"prog", "--n=42", "--rate=0.5", "--name=xyz"};
  Flags flags(4, const_cast<char**>(argv),
              {{"n", "7"}, {"rate", "0.1"}, {"name", "abc"}, {"other", "9"}});
  EXPECT_EQ(flags.GetInt("n"), 42u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_EQ(flags.GetInt("other"), 9u);  // Untouched default.
}

TEST(FlagsTest, NoArgsKeepsDefaults) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv), {{"n", "5"}});
  EXPECT_EQ(flags.GetInt("n"), 5u);
}

// --------------------------------------------------------------------------
// Table
// --------------------------------------------------------------------------

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(-0.5, 4), "-0.5000");
  EXPECT_EQ(Table::Int(123456789), "123456789");
}

TEST(TableTest, CsvExportRoundTrips) {
  Table table({"a", "b"});
  table.AddRow({"1", "2.5"});
  table.AddRow({"3", "4.0%"});  // '%' must be stripped for plotting.
  std::string path = ::testing::TempDir() + "/rtb_bench_table.csv";
  std::remove(path.c_str());
  ASSERT_TRUE(table.AppendCsv(path, "mylabel"));

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "label,a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "mylabel,1,2.5");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "mylabel,3,4.0");

  // Appending adds more rows (header repeated per block, by design).
  ASSERT_TRUE(table.AppendCsv(path, "second"));
  int lines = 0;
  std::ifstream again(path);
  while (std::getline(again, line)) ++lines;
  EXPECT_EQ(lines, 6);
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Workload helpers
// --------------------------------------------------------------------------

TEST(WorkloadTest, BuildAndPredictAndSimulateAgree) {
  Rng rng(33);
  auto rects = data::GenerateSyntheticRegion(5000, &rng);
  Workload w = BuildWorkload(rects, 50, rtree::LoadAlgorithm::kHilbertSort);
  EXPECT_EQ(w.label, "HS");
  EXPECT_EQ(w.summary->NumDataEntries(), 5000u);
  EXPECT_EQ(w.centers.size(), 5000u);

  model::QuerySpec spec = model::QuerySpec::UniformPoint();
  double predicted = ModelDiskAccesses(w, spec, 40);
  SimEstimate sim = SimulateDiskAccesses(w, spec, 40, 8, 15000, 77);
  EXPECT_GT(predicted, 0.0);
  EXPECT_NEAR(predicted, sim.mean, std::max(0.03, sim.mean * 0.08));
  EXPECT_GE(sim.ci90_rel, 0.0);
  EXPECT_LT(sim.ci90_rel, 0.05);
}

TEST(WorkloadTest, NamedDatasetsHaveRequestedSizes) {
  auto tiger = MakeTigerData(5, 3000);
  EXPECT_EQ(tiger.size(), 3000u);
  auto cfd = MakeCfdData(5, 2500);
  EXPECT_EQ(cfd.size(), 2500u);
}

// --------------------------------------------------------------------------
// JsonDict / BenchReport
// --------------------------------------------------------------------------

TEST(JsonDictTest, TypesAndInsertionOrder) {
  JsonDict d;
  d.PutStr("name", "micro");
  d.PutInt("count", 42);
  d.PutNum("rate", 0.5);
  d.PutBool("ok", true);
  d.PutBool("bad", false);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_TRUE(d.Has("rate"));
  EXPECT_FALSE(d.Has("missing"));
  EXPECT_EQ(d.ToString(),
            "{\"name\": \"micro\", \"count\": 42, \"rate\": 0.5, "
            "\"ok\": true, \"bad\": false}");
}

TEST(JsonDictTest, EscapesStrings) {
  JsonDict d;
  d.PutStr("msg", "a\"b\\c\n\td");
  EXPECT_EQ(d.ToString(), "{\"msg\": \"a\\\"b\\\\c\\n\\td\"}");
}

TEST(JsonDictTest, NumbersRoundTripAndNonFiniteIsNull) {
  JsonDict d;
  d.PutNum("pi", 3.141592653589793);
  d.PutNum("inf", std::numeric_limits<double>::infinity());
  d.PutNum("nan", std::numeric_limits<double>::quiet_NaN());
  const std::string json = d.ToString();
  // %.17g preserves every bit of the double.
  EXPECT_NE(json.find("3.141592653589793"), std::string::npos);
  // JSON has no Infinity/NaN literals; they must become null.
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos);
}

TEST(BenchReportTest, SchemaShape) {
  BenchReport report("unit");
  report.meta().PutInt("seed", 7);
  JsonDict& a = report.AddConfig("first");
  a.PutNum("qps", 1000.0);
  JsonDict& b = report.AddConfig("second");
  b.PutInt("hits", 3);
  EXPECT_EQ(report.num_configs(), 2u);

  const std::string json = report.ToJson();
  // The "bench" field is the first thing in the document.
  EXPECT_EQ(json.find("{\n  \"bench\": \"unit\""), 0u);
  EXPECT_NE(json.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"configs\": ["), std::string::npos);
  EXPECT_NE(json.find("{\"config\": \"first\", \"qps\": 1000}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"config\": \"second\", \"hits\": 3}"),
            std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(BenchReportTest, WriteFileRoundTrips) {
  BenchReport report("filetest");
  report.meta().PutStr("note", "x");
  report.AddConfig("only").PutInt("v", 1);
  const std::string path = ::testing::TempDir() + "/rtb_bench_report.json";
  std::remove(path.c_str());
  ASSERT_TRUE(report.WriteFile(path));

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), report.ToJson());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtb::bench
