// Tests for the SIMD node-scan kernel (rtree/scan_kernel.h):
//
//   * property test — every available kernel (scalar, sse2, avx2) returns
//     exactly the slots NodeView::Intersects accepts, on random nodes
//     including empty entries, degenerate point rects, touching edges, and
//     counts crossing the 64-entry validity-word boundary;
//   * dispatch — SetScanKernel caps at BestScanKernel, kScalar always
//     selectable, ActiveScanKernel reflects the choice;
//   * gather — ScanScratch id/level/count passthrough matches the view.
//
// The forced-scalar CI leg (ctest: scan_kernel_test_scalar) runs this same
// binary with RTB_SCAN_KERNEL=scalar, which caps the *initial* kernel; the
// property test then iterates the kernels the hardware offers anyway, so
// both configurations exercise the scalar sweep and the env-var path.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/rtb.h"
#include "rtree/scan_kernel.h"

namespace rtb::rtree {
namespace {

using geom::Rect;

Rect RandomRect(Rng& rng, double max_side) {
  const double x = rng.NextDouble() * (1.0 - max_side);
  const double y = rng.NextDouble() * (1.0 - max_side);
  return Rect(x, y, x + rng.NextDouble() * max_side,
              y + rng.NextDouble() * max_side);
}

// Restores the active kernel on scope exit so tests compose.
class KernelGuard {
 public:
  KernelGuard() : saved_(ActiveScanKernel()) {}
  ~KernelGuard() { SetScanKernel(saved_); }

 private:
  ScanKernel saved_;
};

std::vector<ScanKernel> AvailableKernels() {
  KernelGuard guard;  // Probing mutates the active kernel; restore it.
  std::vector<ScanKernel> kernels;
  for (ScanKernel k : {ScanKernel::kScalar, ScanKernel::kSse2,
                       ScanKernel::kAvx2, ScanKernel::kNeon}) {
    if (SetScanKernel(k)) kernels.push_back(k);
  }
  return kernels;
}

TEST(ScanKernelDispatchTest, ScalarAlwaysSelectable) {
  KernelGuard guard;
  EXPECT_TRUE(SetScanKernel(ScanKernel::kScalar));
  EXPECT_EQ(ActiveScanKernel(), ScanKernel::kScalar);
}

TEST(ScanKernelDispatchTest, BestKernelSelectable) {
  KernelGuard guard;
  EXPECT_TRUE(SetScanKernel(BestScanKernel()));
  EXPECT_EQ(ActiveScanKernel(), BestScanKernel());
}

TEST(ScanKernelDispatchTest, KernelNamesResolve) {
  EXPECT_STREQ(ScanKernelName(ScanKernel::kScalar), "scalar");
  EXPECT_STREQ(ScanKernelName(ScanKernel::kSse2), "sse2");
  EXPECT_STREQ(ScanKernelName(ScanKernel::kAvx2), "avx2");
  EXPECT_STREQ(ScanKernelName(ScanKernel::kNeon), "neon");
}

TEST(ScanKernelDispatchTest, CrossArchKernelsRejected) {
  KernelGuard guard;
#if defined(__x86_64__)
  EXPECT_FALSE(SetScanKernel(ScanKernel::kNeon));
#elif defined(__aarch64__)
  EXPECT_FALSE(SetScanKernel(ScanKernel::kSse2));
  EXPECT_FALSE(SetScanKernel(ScanKernel::kAvx2));
#endif
}

TEST(ScanKernelPropertyTest, AllKernelsMatchNodeViewIntersects) {
  KernelGuard guard;
  Rng rng(202);
  std::vector<uint8_t> page(4096);
  std::vector<uint32_t> matches(NodeCapacity(page.size()));
  ScanScratch scratch;

  for (int trial = 0; trial < 150; ++trial) {
    Node node;
    node.level = static_cast<uint16_t>(rng.NextUint64() % 3);
    // Bias the count toward > 64 so the validity mask's second word and the
    // vector sweeps' tail loops are exercised.
    const size_t count =
        trial % 2 == 0 ? 65 + rng.NextUint64() % 38 : rng.NextUint64() % 65;
    for (size_t i = 0; i < count; ++i) {
      Rect r;
      const uint64_t shape = rng.NextUint64() % 10;
      if (shape == 0) {
        r = Rect::Empty();  // Never matches, in either implementation.
      } else if (shape == 1) {
        const geom::Point p{rng.NextDouble(), rng.NextDouble()};
        r = Rect::FromPoint(p);  // Degenerate but valid.
      } else {
        r = RandomRect(rng, 0.3);
      }
      node.entries.push_back(Entry{r, rng.NextUint64()});
    }
    ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
    auto view = NodeView::Create(page.data(), page.size());
    ASSERT_TRUE(view.ok());

    scratch.Load(*view);
    ASSERT_EQ(scratch.count(), count);
    ASSERT_EQ(scratch.level(), node.level);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(scratch.id(i), node.entries[i].id) << i;
    }

    for (int q = 0; q < 6; ++q) {
      const Rect query =
          q == 0 ? Rect::FromPoint({rng.NextDouble(), rng.NextDouble()})
                 : RandomRect(rng, 0.6);
      std::vector<uint32_t> expected;
      for (size_t i = 0; i < count; ++i) {
        if (view->Intersects(i, query)) {
          expected.push_back(static_cast<uint32_t>(i));
        }
      }
      for (ScanKernel k : AvailableKernels()) {
        ASSERT_TRUE(SetScanKernel(k));
        const size_t n = ScanIntersecting(scratch, query, matches.data());
        const std::vector<uint32_t> got(matches.begin(),
                                        matches.begin() + n);
        ASSERT_EQ(got, expected)
            << "kernel " << ScanKernelName(k) << " trial " << trial
            << " query " << q;
      }
    }
  }
}

TEST(ScanKernelPropertyTest, FullNodeAllMatch) {
  KernelGuard guard;
  // A full fanout-102 node whose every entry contains the query: all slots
  // must come back, in ascending order, across every kernel.
  std::vector<uint8_t> page(4096);
  Node node;
  node.level = 0;
  const size_t count = NodeCapacity(page.size());
  for (size_t i = 0; i < count; ++i) {
    node.entries.push_back(Entry{Rect(0.0, 0.0, 1.0, 1.0), i});
  }
  ASSERT_TRUE(SerializeNode(node, page.size(), page.data()).ok());
  auto view = NodeView::Create(page.data(), page.size());
  ASSERT_TRUE(view.ok());

  ScanScratch scratch;
  scratch.Load(*view);
  std::vector<uint32_t> matches(count);
  const Rect query(0.4, 0.4, 0.5, 0.5);
  for (ScanKernel k : AvailableKernels()) {
    ASSERT_TRUE(SetScanKernel(k));
    ASSERT_EQ(ScanIntersecting(scratch, query, matches.data()), count)
        << ScanKernelName(k);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(matches[i], i);
    }
  }
}

TEST(ScanKernelScratchTest, ReloadShrinksCount) {
  // A scratch reused across pages must not leak state from a bigger node
  // into a smaller one (buffers only grow; count/validity must not).
  KernelGuard guard;
  std::vector<uint8_t> page(4096);
  ScanScratch scratch;
  std::vector<uint32_t> matches(NodeCapacity(page.size()));

  Node big;
  big.level = 0;
  for (size_t i = 0; i < 90; ++i) {
    big.entries.push_back(Entry{Rect(0.0, 0.0, 1.0, 1.0), i});
  }
  ASSERT_TRUE(SerializeNode(big, page.size(), page.data()).ok());
  scratch.Load(*NodeView::Create(page.data(), page.size()));
  ASSERT_EQ(scratch.count(), 90u);

  Node small;
  small.level = 0;
  small.entries.push_back(Entry{Rect(0.0, 0.0, 0.1, 0.1), 7});
  ASSERT_TRUE(SerializeNode(small, page.size(), page.data()).ok());
  scratch.Load(*NodeView::Create(page.data(), page.size()));
  ASSERT_EQ(scratch.count(), 1u);

  const Rect everywhere(0.0, 0.0, 1.0, 1.0);
  for (ScanKernel k : AvailableKernels()) {
    ASSERT_TRUE(SetScanKernel(k));
    ASSERT_EQ(ScanIntersecting(scratch, everywhere, matches.data()), 1u)
        << ScanKernelName(k);
    EXPECT_EQ(matches[0], 0u);
  }
}

}  // namespace
}  // namespace rtb::rtree
