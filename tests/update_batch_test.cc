// Batched-vs-serial equivalence suite for rtree::UpdateBatchExecutor:
//
//   * batch of one — delegates to the serial Insert/Delete, so the whole
//     store image, the BufferStats and the IoStats are byte-identical to a
//     hand-run serial sequence (the same contract batch_size=1 queries
//     have);
//   * randomized mixed oracle — random insert/delete batches checked after
//     every batch against a plain multiset of (rect, id) pairs, with
//     ValidateTree holding throughout (delete victims are drawn from the
//     entries present at batch start, where the semantics are specified);
//   * logical equivalence — the same operation sequence applied batched and
//     tuple-at-a-time yields the same leaf-entry multiset and the same
//     query answers, even though the trees may differ structurally;
//   * structure torture — one huge insert batch into an empty tree (multi
//     -level root growth), batches that dissolve every node (empty-root
//     recovery), and interleaved grow/shrink cycles;
//   * write faults — an injected write fault during a batch leaves the
//     store decodable and the failed pages dirty, so a retried flush
//     completes the batch.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rtb.h"
#include "rtree/update_batch.h"
#include "rtree/validate.h"
#include "storage/fault_injection.h"

namespace rtb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::BufferPool;
using storage::MemPageStore;
using storage::PageId;

Rect RandomRect(Rng& rng, double max_side) {
  const double x = rng.NextDouble() * (1.0 - max_side);
  const double y = rng.NextDouble() * (1.0 - max_side);
  return Rect(x, y, x + rng.NextDouble() * max_side,
              y + rng.NextDouble() * max_side);
}

struct TreeFixture {
  MemPageStore store;
  std::unique_ptr<BufferPool> pool;

  explicit TreeFixture(size_t pool_pages = 256)
      : store(storage::kDefaultPageSize),
        pool(BufferPool::MakeLru(&store, pool_pages)) {}
};

// All leaf entries of the tree, sorted so multisets compare with ==.
std::vector<Entry> LeafEntries(const RTree& tree) {
  std::vector<Entry> out;
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    auto guard = tree.pool()->Fetch(page);
    RTB_CHECK(guard.ok());
    auto view = NodeView::Create(guard->data(), tree.pool()->page_size());
    RTB_CHECK(view.ok());
    for (uint16_t i = 0; i < view->count(); ++i) {
      if (view->is_leaf()) {
        out.push_back(view->entry(i));
      } else {
        stack.push_back(static_cast<PageId>(view->id(i)));
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.id != b.id) return a.id < b.id;
    return a.rect.lo.x < b.rect.lo.x;
  });
  return out;
}

void ExpectValid(TreeFixture& fx, const RTree& tree,
                 const RTreeConfig& config) {
  ASSERT_TRUE(fx.pool->FlushAll().ok());
  ValidationReport report = ValidateTree(&fx.store, tree.root(), config);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "no issues"
                                                   : report.issues.front());
}

TEST(UpdateBatchTest, EmptyBatchIsANoOp) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(8));
  ASSERT_TRUE(tree.ok());
  UpdateBatchExecutor exec(&*tree);
  UpdateBatchStats stats;
  ASSERT_TRUE(exec.Run({}, &stats).ok());
  EXPECT_EQ(stats.passes, 0u);
  EXPECT_EQ(*tree->CountEntries(), 0u);
}

TEST(UpdateBatchTest, RejectsEmptyRectInsert) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(8));
  ASSERT_TRUE(tree.ok());
  UpdateBatchExecutor exec(&*tree);
  const UpdateOp ops[] = {UpdateOp::Insert(Rect(0.1, 0.1, 0.2, 0.2), 1),
                          UpdateOp::Insert(Rect::Empty(), 2)};
  EXPECT_EQ(exec.Run(ops).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(*tree->CountEntries(), 0u);  // Rejected before any mutation.
}

// A batch of one must be the serial path byte for byte: same store image,
// same buffer counters, same I/O counters.
TEST(UpdateBatchTest, BatchOfOneIsByteIdenticalToSerial) {
  const RTreeConfig config = RTreeConfig::WithFanout(8);
  TreeFixture serial_fx;
  TreeFixture batched_fx;
  auto serial_tree = RTree::Create(serial_fx.pool.get(), config);
  auto batched_tree = RTree::Create(batched_fx.pool.get(), config);
  ASSERT_TRUE(serial_tree.ok());
  ASSERT_TRUE(batched_tree.ok());
  UpdateBatchExecutor exec(&*batched_tree);

  Rng rng(7);
  std::vector<UpdateOp> history;
  for (int i = 0; i < 400; ++i) {
    UpdateOp op;
    const bool do_delete = !history.empty() && rng.NextDouble() < 0.3;
    if (do_delete) {
      const UpdateOp& victim =
          history[rng.UniformInt(static_cast<uint64_t>(history.size()))];
      op = UpdateOp::Delete(victim.rect, victim.id);
    } else {
      op = UpdateOp::Insert(RandomRect(rng, 0.05),
                            static_cast<ObjectId>(i));
      history.push_back(op);
    }
    if (op.kind == UpdateOp::Kind::kInsert) {
      ASSERT_TRUE(serial_tree->Insert(op.rect, op.id).ok());
    } else {
      ASSERT_TRUE(serial_tree->Delete(op.rect, op.id).ok());
    }
    ASSERT_TRUE(exec.Run({&op, 1}).ok());
  }

  EXPECT_EQ(serial_tree->root(), batched_tree->root());
  EXPECT_EQ(serial_tree->height(), batched_tree->height());

  const storage::BufferStats& a = serial_fx.pool->stats();
  const storage::BufferStats& b = batched_fx.pool->stats();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.writebacks, b.writebacks);

  ASSERT_TRUE(serial_fx.pool->FlushAll().ok());
  ASSERT_TRUE(batched_fx.pool->FlushAll().ok());
  const storage::IoStats sa = serial_fx.store.stats();
  const storage::IoStats sb = batched_fx.store.stats();
  EXPECT_EQ(sa.reads, sb.reads);
  EXPECT_EQ(sa.writes, sb.writes);
  EXPECT_EQ(sa.allocations, sb.allocations);

  ASSERT_EQ(serial_fx.store.num_pages(), batched_fx.store.num_pages());
  std::vector<uint8_t> pa(serial_fx.store.page_size());
  std::vector<uint8_t> pb(batched_fx.store.page_size());
  for (PageId id = 0; id < serial_fx.store.num_pages(); ++id) {
    ASSERT_TRUE(serial_fx.store.Read(id, pa.data()).ok());
    ASSERT_TRUE(batched_fx.store.Read(id, pb.data()).ok());
    ASSERT_EQ(pa, pb) << "page " << id << " diverged";
  }
}

// Random mixed batches against a plain multiset oracle, validating the
// tree after every batch. Covers splits, condensation and reinsertion
// under every batch size the loop reaches.
TEST(UpdateBatchTest, RandomizedMixedOracle) {
  for (const uint32_t fanout : {4u, 10u}) {
    const RTreeConfig config = RTreeConfig::WithFanout(fanout);
    TreeFixture fx;
    auto tree = RTree::Create(fx.pool.get(), config);
    ASSERT_TRUE(tree.ok());
    UpdateBatchExecutor exec(&*tree);

    Rng rng(fanout * 97 + 1);
    std::vector<std::pair<Rect, ObjectId>> oracle;
    ObjectId next_id = 0;
    UpdateBatchStats stats;
    for (int round = 0; round < 30; ++round) {
      const size_t batch = 1 + rng.UniformInt(97);
      std::vector<UpdateOp> ops;
      // Delete victims come from the batch-start oracle, each at most
      // once, so batched and oracle semantics agree (deleting an entry
      // inserted by the same batch is unspecified).
      const size_t start = oracle.size();
      std::vector<size_t> doomed;
      for (size_t k = 0; k < batch; ++k) {
        const bool do_delete =
            start > 0 && doomed.size() < start && rng.NextDouble() < 0.45;
        if (do_delete) {
          size_t v = rng.UniformInt(static_cast<uint64_t>(start));
          while (std::find(doomed.begin(), doomed.end(), v) != doomed.end()) {
            v = (v + 1) % start;
          }
          doomed.push_back(v);
          ops.push_back(UpdateOp::Delete(oracle[v].first, oracle[v].second));
        } else {
          const Rect r = RandomRect(rng, 0.08);
          ops.push_back(UpdateOp::Insert(r, next_id));
          oracle.emplace_back(r, next_id);
          ++next_id;
        }
      }
      // Apply the deletes to the oracle (descending index keeps the
      // earlier indices stable).
      std::sort(doomed.rbegin(), doomed.rend());
      for (size_t v : doomed) {
        oracle.erase(oracle.begin() + static_cast<ptrdiff_t>(v));
      }

      ASSERT_TRUE(exec.Run(ops, &stats).ok());
      ASSERT_NO_FATAL_FAILURE(ExpectValid(fx, *tree, config));

      std::vector<Entry> expect;
      expect.reserve(oracle.size());
      for (const auto& [r, id] : oracle) expect.push_back(Entry{r, id});
      std::sort(expect.begin(), expect.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.id != b.id) return a.id < b.id;
                  return a.rect.lo.x < b.rect.lo.x;
                });
      ASSERT_EQ(LeafEntries(*tree), expect) << "round " << round;
    }
    EXPECT_EQ(stats.deletes_missing, 0u);
    EXPECT_GT(stats.splits, 0u);
    EXPECT_GT(stats.condensed_nodes, 0u);
  }
}

// The same operation stream, batched vs tuple-at-a-time: same entry
// multiset, same query answers.
TEST(UpdateBatchTest, BatchedMatchesSerialLogically) {
  const RTreeConfig config = RTreeConfig::WithFanout(6);
  TreeFixture serial_fx;
  TreeFixture batched_fx;
  auto serial_tree = RTree::Create(serial_fx.pool.get(), config);
  auto batched_tree = RTree::Create(batched_fx.pool.get(), config);
  ASSERT_TRUE(serial_tree.ok());
  ASSERT_TRUE(batched_tree.ok());
  UpdateBatchExecutor exec(&*batched_tree);

  Rng rng(1234);
  std::vector<std::pair<Rect, ObjectId>> present;
  ObjectId next_id = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<UpdateOp> ops;
    // As above: victims only from the batch-start state.
    const size_t start = present.size();
    std::vector<size_t> doomed;
    for (int k = 0; k < 64; ++k) {
      const bool do_delete =
          start > 0 && doomed.size() < start && rng.NextDouble() < 0.35;
      if (do_delete) {
        size_t v = rng.UniformInt(static_cast<uint64_t>(start));
        while (std::find(doomed.begin(), doomed.end(), v) != doomed.end()) {
          v = (v + 1) % start;
        }
        doomed.push_back(v);
        ops.push_back(
            UpdateOp::Delete(present[v].first, present[v].second));
      } else {
        const Rect r = RandomRect(rng, 0.06);
        ops.push_back(UpdateOp::Insert(r, next_id));
        present.emplace_back(r, next_id);
        ++next_id;
      }
    }
    std::sort(doomed.rbegin(), doomed.rend());
    for (size_t v : doomed) {
      present.erase(present.begin() + static_cast<ptrdiff_t>(v));
    }

    for (const UpdateOp& op : ops) {
      if (op.kind == UpdateOp::Kind::kInsert) {
        ASSERT_TRUE(serial_tree->Insert(op.rect, op.id).ok());
      } else {
        auto found = serial_tree->Delete(op.rect, op.id);
        ASSERT_TRUE(found.ok());
        ASSERT_TRUE(*found);
      }
    }
    ASSERT_TRUE(exec.Run(ops).ok());

    ASSERT_EQ(LeafEntries(*batched_tree), LeafEntries(*serial_tree))
        << "round " << round;
    for (int q = 0; q < 20; ++q) {
      const Rect query = RandomRect(rng, 0.2);
      std::vector<ObjectId> sa, sb;
      ASSERT_TRUE(serial_tree->Search(query, &sa).ok());
      ASSERT_TRUE(batched_tree->Search(query, &sb).ok());
      std::sort(sa.begin(), sa.end());
      std::sort(sb.begin(), sb.end());
      ASSERT_EQ(sb, sa);
    }
  }
}

// One huge batch into an empty tree: the root leaf absorbs everything,
// multi-splits, and the root may grow several levels in one pass.
TEST(UpdateBatchTest, HugeInsertBatchGrowsMultipleLevels) {
  const RTreeConfig config = RTreeConfig::WithFanout(4);
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  UpdateBatchExecutor exec(&*tree);

  Rng rng(5);
  std::vector<UpdateOp> ops;
  for (int i = 0; i < 1000; ++i) {
    ops.push_back(UpdateOp::Insert(RandomRect(rng, 0.02),
                                   static_cast<ObjectId>(i)));
  }
  UpdateBatchStats stats;
  ASSERT_TRUE(exec.Run(ops, &stats).ok());
  EXPECT_GT(tree->height(), 2u);
  EXPECT_EQ(*tree->CountEntries(), 1000u);
  EXPECT_GT(stats.splits, 0u);
  ASSERT_NO_FATAL_FAILURE(ExpectValid(fx, *tree, config));
}

// Deleting everything in one batch dissolves every node, exercising the
// empty-root recovery, and leaves a working empty tree.
TEST(UpdateBatchTest, DeleteEverythingRecoversEmptyRoot) {
  const RTreeConfig config = RTreeConfig::WithFanout(4);
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  UpdateBatchExecutor exec(&*tree);

  Rng rng(17);
  std::vector<UpdateOp> inserts;
  for (int i = 0; i < 300; ++i) {
    inserts.push_back(UpdateOp::Insert(RandomRect(rng, 0.03),
                                       static_cast<ObjectId>(i)));
  }
  ASSERT_TRUE(exec.Run(inserts).ok());
  ASSERT_EQ(*tree->CountEntries(), 300u);

  std::vector<UpdateOp> deletes;
  for (const UpdateOp& op : inserts) {
    deletes.push_back(UpdateOp::Delete(op.rect, op.id));
  }
  UpdateBatchStats stats;
  ASSERT_TRUE(exec.Run(deletes, &stats).ok());
  EXPECT_EQ(stats.deletes_found, 300u);
  EXPECT_EQ(stats.deletes_missing, 0u);
  EXPECT_EQ(*tree->CountEntries(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  ASSERT_NO_FATAL_FAILURE(ExpectValid(fx, *tree, config));

  // The recovered tree keeps working.
  ASSERT_TRUE(exec.Run(inserts).ok());
  EXPECT_EQ(*tree->CountEntries(), 300u);
  ASSERT_NO_FATAL_FAILURE(ExpectValid(fx, *tree, config));
}

// Deletes of entries that never existed are reported missing and leave the
// tree untouched.
TEST(UpdateBatchTest, MissingDeletesAreCounted) {
  const RTreeConfig config = RTreeConfig::WithFanout(8);
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  UpdateBatchExecutor exec(&*tree);

  Rng rng(23);
  std::vector<UpdateOp> ops;
  for (int i = 0; i < 50; ++i) {
    ops.push_back(UpdateOp::Insert(RandomRect(rng, 0.05),
                                   static_cast<ObjectId>(i)));
  }
  ASSERT_TRUE(exec.Run(ops).ok());

  std::vector<UpdateOp> misses;
  for (int i = 0; i < 10; ++i) {
    misses.push_back(
        UpdateOp::Delete(RandomRect(rng, 0.05), 1000 + ObjectId(i)));
  }
  UpdateBatchStats stats;
  ASSERT_TRUE(exec.Run(misses, &stats).ok());
  EXPECT_EQ(stats.deletes_found, 0u);
  EXPECT_EQ(stats.deletes_missing, 10u);
  EXPECT_EQ(*tree->CountEntries(), 50u);
}

// Within one pass each mutated node is pinned mutably exactly once, no
// matter how many operations land on it: a batch of k inserts into a
// one-leaf tree mutates one page.
TEST(UpdateBatchTest, GroupByLeafPinsEachDirtyPageOnce) {
  const RTreeConfig config = RTreeConfig::WithFanout(100);
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  UpdateBatchExecutor exec(&*tree);

  Rng rng(31);
  std::vector<UpdateOp> ops;
  for (int i = 0; i < 50; ++i) {
    ops.push_back(UpdateOp::Insert(RandomRect(rng, 0.05),
                                   static_cast<ObjectId>(i)));
  }
  UpdateBatchStats stats;
  ASSERT_TRUE(exec.Run(ops, &stats).ok());
  EXPECT_EQ(stats.pages_mutated, 1u);  // All 50 fit the one root leaf.
  EXPECT_EQ(stats.inserts, 50u);
}

// An injected write fault during the batch surfaces as an error, the store
// stays decodable, and the failed pages stay dirty so a retried flush
// completes the work.
TEST(UpdateBatchTest, WriteFaultLeavesDirtyPagesForRetry) {
  const RTreeConfig config = RTreeConfig::WithFanout(4);
  MemPageStore base(storage::kDefaultPageSize);
  storage::FaultInjectingPageStore store(&base);
  // A tiny pool forces eviction writebacks mid-batch.
  auto pool = BufferPool::MakeLru(&store, 8);
  auto tree = RTree::Create(pool.get(), config);
  ASSERT_TRUE(tree.ok());
  UpdateBatchExecutor exec(&*tree);

  Rng rng(41);
  std::vector<UpdateOp> ops;
  for (int i = 0; i < 200; ++i) {
    ops.push_back(UpdateOp::Insert(RandomRect(rng, 0.03),
                                   static_cast<ObjectId>(i)));
  }
  store.FailNextWrites(3, Status::IoError("injected write fault"));
  const Status run = exec.Run(ops, nullptr);
  // The batch may or may not hit a writeback depending on eviction timing;
  // either way the pool must still flush cleanly once the fault clears.
  store.FailNextWrites(0, Status::OK());
  ASSERT_TRUE(pool->FlushAll().ok());
  ValidationReport report = ValidateTree(&base, tree->root(), config,
                                         ValidateOptions{});
  if (run.ok()) {
    EXPECT_TRUE(report.ok) << (report.issues.empty()
                                   ? "no issues"
                                   : report.issues.front());
    EXPECT_EQ(*tree->CountEntries(), 200u);
  }
}

}  // namespace
}  // namespace rtb::rtree
