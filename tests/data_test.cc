// Tests for the data-set generators and rectangle file I/O.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/io.h"
#include "data/polygon.h"
#include "geom/point_grid.h"
#include "util/rng.h"

namespace rtb::data {
namespace {

using geom::Point;
using geom::Rect;

// --------------------------------------------------------------------------
// Polygon
// --------------------------------------------------------------------------

TEST(PolygonTest, SquareContainment) {
  Polygon square({{0.2, 0.2}, {0.8, 0.2}, {0.8, 0.8}, {0.2, 0.8}});
  EXPECT_TRUE(square.Contains({0.5, 0.5}));
  EXPECT_FALSE(square.Contains({0.1, 0.5}));
  EXPECT_FALSE(square.Contains({0.9, 0.9}));
  EXPECT_NEAR(square.SignedArea(), 0.36, 1e-12);
  EXPECT_NEAR(square.Perimeter(), 2.4, 1e-12);
}

TEST(PolygonTest, ClockwiseOrientationStillWorks) {
  Polygon square({{0.2, 0.8}, {0.8, 0.8}, {0.8, 0.2}, {0.2, 0.2}});
  EXPECT_LT(square.SignedArea(), 0.0);
  EXPECT_TRUE(square.Contains({0.5, 0.5}));
  // Outward normal must point away from the interior for both orientations.
  Rng rng(503);
  for (int i = 0; i < 50; ++i) {
    auto s = square.SampleSurface(&rng);
    Point outside{s.point.x + s.normal_x * 0.01,
                  s.point.y + s.normal_y * 0.01};
    Point inside{s.point.x - s.normal_x * 0.01,
                 s.point.y - s.normal_y * 0.01};
    EXPECT_FALSE(square.Contains(outside));
    EXPECT_TRUE(square.Contains(inside));
  }
}

TEST(PolygonTest, SurfaceSamplesLieOnBoundary) {
  Polygon tri({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}});
  Rng rng(509);
  for (int i = 0; i < 200; ++i) {
    auto s = tri.SampleSurface(&rng);
    // On one of the edges: y=0, x=0, or x+y=1.
    bool on_edge = std::abs(s.point.y) < 1e-9 ||
                   std::abs(s.point.x) < 1e-9 ||
                   std::abs(s.point.x + s.point.y - 1.0) < 1e-9;
    EXPECT_TRUE(on_edge) << s.point.x << "," << s.point.y;
  }
}

TEST(PolygonTest, TransformScalesRotatesTranslates) {
  Polygon square({{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}});
  Polygon t = square.Transformed(2.0, 0.0, 10.0, 20.0);
  EXPECT_NEAR(t.SignedArea(), 4.0, 1e-12);
  EXPECT_TRUE(t.Contains({11.0, 21.0}));
  // 90-degree rotation maps (1,0) to (0,1).
  Polygon r = square.Transformed(1.0, 3.14159265358979323846 / 2, 0.0, 0.0);
  EXPECT_TRUE(r.Contains({-0.5, 0.5}));
}

// --------------------------------------------------------------------------
// Generators
// --------------------------------------------------------------------------

TEST(GeneratorTest, UniformPointsInUnitSquare) {
  Rng rng(521);
  auto rects = GenerateUniformPoints(5000, &rng);
  ASSERT_EQ(rects.size(), 5000u);
  for (const Rect& r : rects) {
    EXPECT_EQ(r.Area(), 0.0);
    EXPECT_TRUE(Rect::UnitSquare().Contains(r));
  }
}

TEST(GeneratorTest, SyntheticRegionMatchesPaperAreaBudget) {
  // "For a 10,000 rectangle data set, the sum of the rectangle areas is
  // roughly equal to 0.25 of the unit square" (Section 5.1). With side
  // uniform in (0, eps], E[side^2] = eps^2/3, so expected total area is
  // n * eps^2 / 3 = 10000 * 0.0001 / 3 = 1/3 * 0.25/... — verify within 10%
  // of the analytic expectation and the paper's r(n) scaling.
  Rng rng(523);
  auto rects = GenerateSyntheticRegion(10000, &rng);
  double total = 0.0;
  for (const Rect& r : rects) {
    total += r.Area();
    EXPECT_TRUE(Rect::UnitSquare().Contains(r));
    EXPECT_NEAR(r.width(), r.height(), 1e-12);  // Squares.
    EXPECT_LE(r.width(), SyntheticRegionMaxSide());
  }
  const double eps = SyntheticRegionMaxSide();
  const double expected = 10000.0 * eps * eps / 3.0;
  EXPECT_NEAR(total, expected, expected * 0.1);
}

TEST(GeneratorTest, SyntheticRegionScalesLinearlyInCount) {
  Rng rng(541);
  auto small = GenerateSyntheticRegion(10000, &rng);
  auto large = GenerateSyntheticRegion(100000, &rng);
  auto total = [](const std::vector<Rect>& rects) {
    double t = 0;
    for (const Rect& r : rects) t += r.Area();
    return t;
  };
  EXPECT_NEAR(total(large) / total(small), 10.0, 1.0);
}

TEST(GeneratorTest, TigerSurrogateShapeProperties) {
  Rng rng(547);
  TigerParams params;
  params.num_rects = 20000;
  auto rects = GenerateTigerSurrogate(params, &rng);
  ASSERT_EQ(rects.size(), 20000u);
  double max_side = 0.0;
  for (const Rect& r : rects) {
    EXPECT_TRUE(Rect::UnitSquare().Contains(r));
    max_side = std::max({max_side, r.width(), r.height()});
  }
  // Road segments are short.
  EXPECT_LT(max_side, 0.1);

  // Clustered with large empty regions: divide the square into a 10x10
  // grid; a substantial fraction of cells must be (nearly) empty while a
  // few cells hold a large share of the centers.
  auto centers = Centers(rects);
  std::vector<int> cell_counts(100, 0);
  for (const Point& c : centers) {
    int cx = std::min(9, static_cast<int>(c.x * 10));
    int cy = std::min(9, static_cast<int>(c.y * 10));
    ++cell_counts[cy * 10 + cx];
  }
  int empty_cells = 0, heavy_cells = 0;
  for (int count : cell_counts) {
    if (count < 20) ++empty_cells;            // < 0.1% of the data.
    if (count > 400) ++heavy_cells;           // > 2% of the data.
  }
  EXPECT_GE(empty_cells, 30);
  EXPECT_GE(heavy_cells, 5);
}

TEST(GeneratorTest, CfdSurrogateSkewAndEmptyInterior) {
  Rng rng(557);
  CfdParams params;
  params.num_points = 15000;
  auto rects = GenerateCfdSurrogate(params, &rng);
  ASSERT_EQ(rects.size(), 15000u);
  for (const Rect& r : rects) {
    EXPECT_EQ(r.Area(), 0.0);  // Points.
    EXPECT_TRUE(Rect::UnitSquare().Contains(r));
  }
  auto centers = Centers(rects);
  geom::PointGrid grid(centers);
  // Dense near the airfoil: a small box at the wing leading edge must hold
  // far more points than an equal box in the far field.
  uint64_t near_wing = grid.CountInRect(Rect(0.2, 0.48, 0.3, 0.58));
  uint64_t far_field = grid.CountInRect(Rect(0.02, 0.02, 0.12, 0.12));
  EXPECT_GT(near_wing, 20 * std::max<uint64_t>(far_field, 1));
  // The element interiors (the blank "ovalish areas" of paper Fig. 5) hold
  // no grid points at all.
  auto elements = CfdAirfoilElements();
  ASSERT_EQ(elements.size(), 2u);
  for (const Polygon& element : elements) {
    uint64_t inside = 0;
    for (const Point& c : centers) {
      if (element.Contains(c)) ++inside;
    }
    EXPECT_EQ(inside, 0u);
  }
}

TEST(GeneratorTest, GaussianClustersAreClusteredAndSkewed) {
  Rng rng(571);
  ClusterParams params;
  params.num_rects = 12000;
  params.num_clusters = 8;
  params.sigma = 0.02;
  params.zipf = 1.0;
  auto rects = GenerateGaussianClusters(params, &rng);
  ASSERT_EQ(rects.size(), 12000u);
  for (const Rect& r : rects) {
    EXPECT_TRUE(Rect::UnitSquare().Contains(r));
  }
  // Clustered: a 20x20 grid should have most mass in few cells.
  auto centers = Centers(rects);
  std::vector<int> counts(400, 0);
  for (const Point& c : centers) {
    int cx = std::min(19, static_cast<int>(c.x * 20));
    int cy = std::min(19, static_cast<int>(c.y * 20));
    ++counts[cy * 20 + cx];
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  int top20 = 0;
  for (int i = 0; i < 20; ++i) top20 += counts[i];
  EXPECT_GT(top20, 6000);  // Top 5% of cells hold > half the points.
}

TEST(GeneratorTest, GaussianClustersRectSides) {
  Rng rng(577);
  ClusterParams params;
  params.num_rects = 2000;
  params.max_side = 0.01;
  auto rects = GenerateGaussianClusters(params, &rng);
  double max_side = 0.0;
  for (const Rect& r : rects) {
    EXPECT_NEAR(r.width(), r.height(), 1e-12);
    max_side = std::max(max_side, r.width());
    EXPECT_TRUE(Rect::UnitSquare().Contains(r));
  }
  EXPECT_GT(max_side, 0.005);  // Sides actually drawn up to the max.
  EXPECT_LE(max_side, 0.01);
}

TEST(GeneratorTest, GeneratorsAreDeterministic) {
  Rng a(563), b(563);
  TigerParams params;
  params.num_rects = 2000;
  auto r1 = GenerateTigerSurrogate(params, &a);
  auto r2 = GenerateTigerSurrogate(params, &b);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r2[i]);
}

// --------------------------------------------------------------------------
// File I/O
// --------------------------------------------------------------------------

TEST(IoTest, SaveLoadRoundTrip) {
  Rng rng(569);
  auto rects = GenerateSyntheticRegion(500, &rng);
  std::string path = ::testing::TempDir() + "/rtb_io_test.rects";
  ASSERT_TRUE(SaveRects(path, rects).ok());
  auto loaded = LoadRects(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ((*loaded)[i], rects[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  auto loaded = LoadRects("/nonexistent/path/xyz.rects");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IoTest, BadHeaderIsCorruption) {
  std::string path = ::testing::TempDir() + "/rtb_io_bad.rects";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("not-a-header 3\n", f);
    fclose(f);
  }
  auto loaded = LoadRects(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IoTest, TruncatedFileIsCorruption) {
  std::string path = ::testing::TempDir() + "/rtb_io_trunc.rects";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("rtb-rects 5\n0.1 0.1 0.2 0.2\n", f);
    fclose(f);
  }
  auto loaded = LoadRects(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtb::data
