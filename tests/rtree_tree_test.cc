// Tests for the dynamic R-tree: insertion, search correctness against a
// brute-force oracle, deletion with tree condensation, and structural
// invariants after randomized workloads.

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "rtree/rtree.h"
#include "rtree/summary.h"
#include "rtree/validate.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::rtree {
namespace {

using geom::Point;
using geom::Rect;
using storage::BufferPool;
using storage::MemPageStore;

std::vector<ObjectId> BruteForce(const std::vector<Rect>& rects,
                                 const Rect& query) {
  std::vector<ObjectId> out;
  for (size_t i = 0; i < rects.size(); ++i) {
    if (rects[i].Intersects(query)) out.push_back(i);
  }
  return out;
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct TreeFixture {
  MemPageStore store;
  std::unique_ptr<BufferPool> pool;

  explicit TreeFixture(size_t pool_pages = 256)
      : store(storage::kDefaultPageSize),
        pool(BufferPool::MakeLru(&store, pool_pages)) {}
};

TEST(RTreeTest, EmptyTreeSearchFindsNothing) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(10));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height(), 1);
  std::vector<ObjectId> out;
  ASSERT_TRUE(tree->Search(Rect::UnitSquare(), &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(*tree->CountEntries(), 0u);
}

TEST(RTreeTest, SingleInsertIsFindable) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(10));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(Rect(0.4, 0.4, 0.6, 0.6), 42).ok());
  std::vector<ObjectId> out;
  ASSERT_TRUE(tree->SearchPoint(Point{0.5, 0.5}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  out.clear();
  ASSERT_TRUE(tree->SearchPoint(Point{0.1, 0.1}, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, InsertRejectsEmptyRect) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(10));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Insert(Rect::Empty(), 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(RTreeTest, CreateRejectsBadConfig) {
  TreeFixture fx;
  RTreeConfig bad;
  bad.max_entries = 10;
  bad.min_entries = 9;
  EXPECT_FALSE(RTree::Create(fx.pool.get(), bad).ok());
  RTreeConfig too_big = RTreeConfig::WithFanout(4000);  // Page capacity 102.
  EXPECT_FALSE(RTree::Create(fx.pool.get(), too_big).ok());
}

TEST(RTreeTest, GrowsAndStaysValidUnderManyInserts) {
  TreeFixture fx;
  RTreeConfig config = RTreeConfig::WithFanout(8);
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  Rng rng(7);
  auto rects = data::GenerateSyntheticRegion(500, &rng);
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  EXPECT_GT(tree->height(), 2);
  EXPECT_EQ(*tree->CountEntries(), rects.size());
  ASSERT_TRUE(fx.pool->FlushAll().ok());
  ValidationReport report = ValidateTree(&fx.store, tree->root(), config);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.num_data_entries, rects.size());
}

class RTreeOracleTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RTreeOracleTest, SearchMatchesBruteForce) {
  const uint32_t fanout = GetParam();
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(fanout));
  ASSERT_TRUE(tree.ok());
  Rng rng(fanout * 1000 + 11);
  auto rects = data::GenerateSyntheticRegion(400, &rng);
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  // Point queries.
  for (int q = 0; q < 200; ++q) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree->SearchPoint(p, &got).ok());
    EXPECT_EQ(Sorted(got), BruteForce(rects, Rect::FromPoint(p)));
  }
  // Region queries of assorted sizes.
  for (int q = 0; q < 200; ++q) {
    double qx = rng.Uniform(0.0, 0.3), qy = rng.Uniform(0.0, 0.3);
    double x = rng.Uniform(0.0, 1.0 - qx), y = rng.Uniform(0.0, 1.0 - qy);
    Rect query(x, y, x + qx, y + qy);
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree->Search(query, &got).ok());
    EXPECT_EQ(Sorted(got), BruteForce(rects, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeOracleTest,
                         ::testing::Values(4, 8, 16, 50));

TEST(RTreeTest, DuplicateRectsWithDistinctIdsAllRetrieved) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(4));
  ASSERT_TRUE(tree.ok());
  Rect r(0.3, 0.3, 0.4, 0.4);
  for (ObjectId id = 0; id < 20; ++id) {
    ASSERT_TRUE(tree->Insert(r, id).ok());
  }
  std::vector<ObjectId> out;
  ASSERT_TRUE(tree->SearchPoint(Point{0.35, 0.35}, &out).ok());
  EXPECT_EQ(out.size(), 20u);
}

TEST(RTreeTest, DeleteRemovesExactEntryOnly) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(8));
  ASSERT_TRUE(tree.ok());
  Rect a(0.1, 0.1, 0.2, 0.2), b(0.5, 0.5, 0.7, 0.7);
  ASSERT_TRUE(tree->Insert(a, 1).ok());
  ASSERT_TRUE(tree->Insert(b, 2).ok());
  // Wrong id: not found.
  auto miss = tree->Delete(a, 99);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(*miss);
  // Wrong rect: not found.
  miss = tree->Delete(b, 1);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(*miss);
  auto hit = tree->Delete(a, 1);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  std::vector<ObjectId> out;
  ASSERT_TRUE(tree->SearchPoint(Point{0.15, 0.15}, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(*tree->CountEntries(), 1u);
}

TEST(RTreeTest, InsertDeleteChurnKeepsTreeConsistent) {
  TreeFixture fx(512);
  RTreeConfig config = RTreeConfig::WithFanout(8);
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  Rng rng(131);
  auto rects = data::GenerateSyntheticRegion(600, &rng);
  std::set<ObjectId> live;
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
    live.insert(i);
  }
  // Delete a random 70%, interleaved with validation probes.
  std::vector<ObjectId> ids(live.begin(), live.end());
  for (size_t i = 0; i < ids.size(); ++i) {
    std::swap(ids[i], ids[i + rng.UniformInt(ids.size() - i)]);
  }
  for (size_t i = 0; i < ids.size() * 7 / 10; ++i) {
    auto deleted = tree->Delete(rects[ids[i]], ids[i]);
    ASSERT_TRUE(deleted.ok());
    ASSERT_TRUE(*deleted) << "id " << ids[i];
    live.erase(ids[i]);
    if (i % 100 == 0) {
      ASSERT_TRUE(fx.pool->FlushAll().ok());
      ValidationReport report = ValidateTree(&fx.store, tree->root(), config);
      ASSERT_TRUE(report.ok)
          << (report.issues.empty() ? "" : report.issues[0]);
      ASSERT_EQ(report.num_data_entries, live.size());
    }
  }
  // Remaining entries still retrievable.
  EXPECT_EQ(*tree->CountEntries(), live.size());
  std::vector<ObjectId> out;
  ASSERT_TRUE(tree->Search(Rect::UnitSquare(), &out).ok());
  EXPECT_EQ(out.size(), live.size());
  for (ObjectId id : out) EXPECT_TRUE(live.count(id)) << id;
}

TEST(RTreeTest, DeleteEverythingShrinksToEmptyRoot) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(4));
  ASSERT_TRUE(tree.ok());
  Rng rng(137);
  auto rects = data::GenerateUniformPoints(100, &rng);
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  for (size_t i = 0; i < rects.size(); ++i) {
    auto deleted = tree->Delete(rects[i], i);
    ASSERT_TRUE(deleted.ok());
    ASSERT_TRUE(*deleted);
  }
  EXPECT_EQ(*tree->CountEntries(), 0u);
  EXPECT_EQ(tree->height(), 1);
}

TEST(RTreeTest, QueryStatsCountNodeAccesses) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(4));
  ASSERT_TRUE(tree.ok());
  Rng rng(139);
  auto rects = data::GenerateUniformPoints(200, &rng);
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  QueryStats stats;
  std::vector<ObjectId> out;
  ASSERT_TRUE(tree->Search(Rect::UnitSquare(), &out, &stats).ok());
  // A full-space query touches every node; there are at least
  // 200/4 = 50 leaves.
  EXPECT_GE(stats.nodes_accessed, 50u);
}

TEST(RTreeTest, SearchThroughTinyPoolStillCorrect) {
  // Pool of 4 frames on a tree of height 3: heavy eviction during search
  // must not affect results.
  TreeFixture fx(512);
  RTreeConfig config = RTreeConfig::WithFanout(8);
  std::vector<Rect> rects;
  {
    Rng rng(149);
    rects = data::GenerateSyntheticRegion(400, &rng);
  }
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  ASSERT_TRUE(fx.pool->FlushAll().ok());

  auto small_pool = BufferPool::MakeLru(&fx.store, 4);
  auto reopened = RTree::Open(small_pool.get(), config, tree->root(),
                              tree->height());
  ASSERT_TRUE(reopened.ok());
  Rng rng(151);
  for (int q = 0; q < 100; ++q) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    std::vector<ObjectId> got;
    ASSERT_TRUE(reopened->SearchPoint(p, &got).ok());
    EXPECT_EQ(Sorted(got), BruteForce(rects, Rect::FromPoint(p)));
  }
  EXPECT_GT(fx.store.stats().reads, 0u);
}

// --------------------------------------------------------------------------
// R*-tree insertion policy
// --------------------------------------------------------------------------

TEST(RStarTreeTest, OracleCorrectnessUnderRStarInsertion) {
  TreeFixture fx(512);
  RTreeConfig config = RTreeConfig::RStar(8);
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  Rng rng(157);
  auto rects = data::GenerateSyntheticRegion(500, &rng);
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  EXPECT_EQ(*tree->CountEntries(), rects.size());
  for (int q = 0; q < 150; ++q) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree->SearchPoint(p, &got).ok());
    EXPECT_EQ(Sorted(got), BruteForce(rects, Rect::FromPoint(p)));
  }
}

TEST(RStarTreeTest, TreeStaysStructurallyValid) {
  TreeFixture fx(512);
  RTreeConfig config = RTreeConfig::RStar(10);
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  Rng rng(163);
  auto rects = data::GenerateUniformPoints(1200, &rng);
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  ASSERT_TRUE(fx.pool->FlushAll().ok());
  ValidationReport report = ValidateTree(&fx.store, tree->root(), config);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.num_data_entries, rects.size());
}

TEST(RStarTreeTest, DeleteWorksOnRStarTrees) {
  TreeFixture fx(512);
  RTreeConfig config = RTreeConfig::RStar(8);
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  Rng rng(167);
  auto rects = data::GenerateSyntheticRegion(300, &rng);
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  for (size_t i = 0; i < rects.size(); i += 2) {
    auto deleted = tree->Delete(rects[i], i);
    ASSERT_TRUE(deleted.ok());
    EXPECT_TRUE(*deleted);
  }
  EXPECT_EQ(*tree->CountEntries(), rects.size() / 2);
  ASSERT_TRUE(fx.pool->FlushAll().ok());
  ValidationReport report = ValidateTree(&fx.store, tree->root(), config);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(RStarTreeTest, BetterStructureThanGuttmanOnClusteredData) {
  // The R* policies exist to reduce area/overlap; on clustered data the
  // R*-built tree should have a smaller total MBR area (this is what the
  // paper's buffer model would consume to compare the two update policies).
  Rng data_rng(173);
  data::TigerParams params;
  params.num_rects = 4000;
  auto rects = data::GenerateTigerSurrogate(params, &data_rng);

  auto total_area = [&rects](const RTreeConfig& config) {
    TreeFixture fx(512);
    auto tree = RTree::Create(fx.pool.get(), config);
    EXPECT_TRUE(tree.ok());
    for (size_t i = 0; i < rects.size(); ++i) {
      EXPECT_TRUE(tree->Insert(rects[i], i).ok());
    }
    EXPECT_TRUE(fx.pool->FlushAll().ok());
    auto summary =
        TreeSummary::Extract(&fx.store, tree->root());
    EXPECT_TRUE(summary.ok());
    return summary->TotalArea();
  };

  double guttman = total_area(RTreeConfig::WithFanout(16));
  double rstar = total_area(RTreeConfig::RStar(16));
  EXPECT_LT(rstar, guttman);
}

TEST(RStarTreeTest, ForcedReinsertTriggersAndConverges) {
  // With fanout 4 and hundreds of inserts, every level must have seen the
  // overflow treatment; the tree still holds every entry exactly once.
  TreeFixture fx(512);
  RTreeConfig config = RTreeConfig::RStar(4);
  auto tree = RTree::Create(fx.pool.get(), config);
  ASSERT_TRUE(tree.ok());
  Rng rng(179);
  auto rects = data::GenerateUniformPoints(400, &rng);
  for (size_t i = 0; i < rects.size(); ++i) {
    ASSERT_TRUE(tree->Insert(rects[i], i).ok());
  }
  std::vector<ObjectId> all;
  ASSERT_TRUE(tree->Search(Rect::UnitSquare(), &all).ok());
  ASSERT_EQ(all.size(), rects.size());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(RTreeTest, OpenValidatesRootLevel) {
  TreeFixture fx;
  auto tree = RTree::Create(fx.pool.get(), RTreeConfig::WithFanout(10));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(fx.pool->FlushAll().ok());
  auto bad = RTree::Open(fx.pool.get(), RTreeConfig::WithFanout(10),
                         tree->root(), /*height=*/3);
  EXPECT_FALSE(bad.ok());
  auto good = RTree::Open(fx.pool.get(), RTreeConfig::WithFanout(10),
                          tree->root(), /*height=*/1);
  EXPECT_TRUE(good.ok());
}

}  // namespace
}  // namespace rtb::rtree
