// Tests for the unified query-class API (model/query_class.h): the
// partial-match oracle (an open-axis query equals the same query filtered
// post hoc on its fixed axis alone), thread-invariant generator streams
// (one shared generator + per-worker Rng substreams = byte-identical
// rectangles regardless of thread count), shared ownership of data
// centers (a generator must outlive the dataset that produced it),
// cluster/Zipf skew, the generator registry, spec JSON round-trips
// (old-style documents must re-emit byte-identically), and
// measured-vs-predicted validation for the open-axis Eq. 5-6 extension
// and the batched effective-hit-rate model.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "engine/engine.h"
#include "engine/spec.h"
#include "model/access_prob.h"
#include "model/cost_model.h"
#include "model/query_class.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "sim/query_gen.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/macros.h"
#include "util/rng.h"

namespace rtb {
namespace {

using geom::Point;
using geom::Rect;
using model::AxisExtent;
using model::QueryClass;
using rtree::ObjectId;

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// A bulk-loaded tree over uniform points with object ids 0..n-1.
struct TreeFixture {
  std::vector<Rect> rects;
  std::unique_ptr<storage::MemPageStore> store;
  std::unique_ptr<storage::BufferPool> pool;
  rtree::BuiltTree built;
  uint32_t fanout;

  TreeFixture(size_t n, uint32_t fanout, uint64_t seed) : fanout(fanout) {
    Rng rng(seed);
    rects = data::GenerateUniformPoints(n, &rng);
    store = std::make_unique<storage::MemPageStore>();
    auto b = rtree::BuildRTree(store.get(),
                               rtree::RTreeConfig::WithFanout(fanout), rects,
                               rtree::LoadAlgorithm::kHilbertSort);
    RTB_CHECK(b.ok());
    built = *b;
    pool = storage::BufferPool::MakeLru(store.get(), 64);
  }

  Result<rtree::RTree> Open() {
    return rtree::RTree::Open(pool.get(),
                              rtree::RTreeConfig::WithFanout(fanout),
                              built.root, built.height);
  }
};

// --------------------------------------------------------------------------
// Partial match: open-axis queries against the oracle
// --------------------------------------------------------------------------

// An open-axis search through the tree must return exactly the objects a
// full scan keeps when filtering on the fixed axis alone — the open axis
// never constrains, and the traversal must not lose entries on the
// [-inf, +inf] bounds.
TEST(PartialMatchTest, OracleEquivalence) {
  TreeFixture fx(3000, 25, 91);
  auto tree = fx.Open();
  ASSERT_TRUE(tree.ok());

  struct Case {
    QueryClass qc;
    bool x_fixed;  // Which axis constrains.
  };
  const Case cases[] = {{QueryClass::PartialMatchX(0.05), true},
                        {QueryClass::PartialMatchY(0.04), false}};
  for (const Case& c : cases) {
    auto gen = sim::MakeGenerator(c.qc);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      const Rect q = (*gen)->Next(rng);
      // The generated rectangle carries the open-axis encoding.
      if (c.x_fixed) {
        EXPECT_EQ(q.lo.y, -std::numeric_limits<double>::infinity());
        EXPECT_EQ(q.hi.y, std::numeric_limits<double>::infinity());
      } else {
        EXPECT_EQ(q.lo.x, -std::numeric_limits<double>::infinity());
        EXPECT_EQ(q.hi.x, std::numeric_limits<double>::infinity());
      }

      std::vector<ObjectId> got;
      ASSERT_TRUE(tree->Search(q, &got).ok());

      std::vector<ObjectId> expect;
      for (size_t id = 0; id < fx.rects.size(); ++id) {
        const Rect& r = fx.rects[id];
        const bool hit = c.x_fixed
                             ? (r.lo.x <= q.hi.x && r.hi.x >= q.lo.x)
                             : (r.lo.y <= q.hi.y && r.hi.y >= q.lo.y);
        if (hit) expect.push_back(id);
      }
      EXPECT_EQ(Sorted(std::move(got)), expect);
    }
  }
}

// --------------------------------------------------------------------------
// Determinism: one shared generator, per-worker Rng substreams
// --------------------------------------------------------------------------

// Generators are immutable after construction, so the stream worker w
// draws from Rng(seed + w) must be byte-identical whether the workers run
// serially or concurrently on one shared instance. This is the property
// that makes engine runs reproducible across thread counts.
TEST(WorkloadDeterminismTest, GeneratorStreamsAreThreadInvariant) {
  constexpr uint64_t kSeed = 400;
  constexpr int kWorkers = 4;
  constexpr int kDraws = 256;

  auto centers = std::make_shared<const std::vector<Point>>(
      std::vector<Point>{{0.1, 0.1}, {0.4, 0.6}, {0.8, 0.2}, {0.3, 0.9}});
  sim::GeneratorContext ctx;
  ctx.centers = centers;

  const QueryClass classes[] = {
      QueryClass::UniformRegion(0.02, 0.04),
      QueryClass::PartialMatchX(0.05),
      QueryClass::DataDrivenRegion(0.01, 0.03),
      QueryClass::Clustered(0.02, 0.02, {8, 0.03, 1.5, 11}),
  };
  for (const QueryClass& qc : classes) {
    auto gen = sim::MakeGenerator(qc, ctx);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();

    // Serial reference: worker w's substream, drawn on this thread.
    std::vector<std::vector<Rect>> expected(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      Rng rng(kSeed + static_cast<uint64_t>(w));
      for (int i = 0; i < kDraws; ++i) expected[w].push_back((*gen)->Next(rng));
    }

    // The same substreams, drawn concurrently from the one shared instance.
    std::vector<std::vector<Rect>> got(kWorkers);
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        Rng rng(kSeed + static_cast<uint64_t>(w));
        for (int i = 0; i < kDraws; ++i) got[w].push_back((*gen)->Next(rng));
      });
    }
    for (std::thread& t : threads) t.join();

    for (int w = 0; w < kWorkers; ++w) {
      ASSERT_EQ(got[w].size(), expected[w].size());
      EXPECT_EQ(std::memcmp(got[w].data(), expected[w].data(),
                            expected[w].size() * sizeof(Rect)),
                0)
          << "center=" << qc.center << " worker=" << w;
    }
  }
}

// A data-driven generator shares ownership of its center set: the
// generator must keep working after every other handle to the centers is
// gone (ASan turns a dangling read into a hard failure here).
TEST(WorkloadDeterminismTest, DataCentersOutliveTheirSource) {
  const std::vector<Point> originals = {{0.25, 0.25}, {0.75, 0.75}};
  std::unique_ptr<sim::QueryGenerator> gen;
  {
    sim::GeneratorContext ctx;
    ctx.centers = std::make_shared<const std::vector<Point>>(originals);
    auto made = sim::MakeGenerator(QueryClass::DataDrivenRegion(0.1, 0.1), ctx);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    gen = std::move(*made);
  }  // ctx (and the last external shared_ptr) destroyed here.

  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const Point c = gen->Next(rng).Center();
    const bool at_known =
        std::any_of(originals.begin(), originals.end(), [&](const Point& p) {
          return std::abs(c.x - p.x) < 1e-12 && std::abs(c.y - p.y) < 1e-12;
        });
    EXPECT_TRUE(at_known);
  }
}

// --------------------------------------------------------------------------
// Cluster center source: Zipf weights and hotspot concentration
// --------------------------------------------------------------------------

TEST(ClusterWorkloadTest, ZipfWeightsNormalizeAndDecay) {
  const auto flat = model::ZipfWeights(4, 0.0);
  ASSERT_EQ(flat.size(), 4u);
  for (double w : flat) EXPECT_DOUBLE_EQ(w, 0.25);

  const auto skewed = model::ZipfWeights(8, 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < skewed.size(); ++i) {
    sum += skewed[i];
    if (i > 0) EXPECT_LT(skewed[i], skewed[i - 1]);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // w_i ∝ 1/(i+1): the first weight is twice the second.
  EXPECT_NEAR(skewed[0] / skewed[1], 2.0, 1e-12);
}

// With spread = 0 every query lands exactly on a hotspot, so empirical
// pick frequencies must match the Zipf weights — and the generator must
// agree with model::DeriveHotspots on where the hotspots are.
TEST(ClusterWorkloadTest, SkewConcentratesQueriesOnHotspots) {
  model::ClusterParams params{6, 0.0, 2.0, 5};
  const QueryClass qc = QueryClass::Clustered(0.0, 0.0, params);
  auto gen = sim::MakeGenerator(qc);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();

  const std::vector<Point> hotspots = model::DeriveHotspots(params);
  const std::vector<double> weights =
      model::ZipfWeights(params.hotspots, params.skew);

  constexpr int kDraws = 40000;
  std::vector<int> hits(hotspots.size(), 0);
  Rng rng(23);
  for (int i = 0; i < kDraws; ++i) {
    const Point c = (*gen)->Next(rng).Center();
    bool matched = false;
    for (size_t h = 0; h < hotspots.size(); ++h) {
      if (std::abs(c.x - hotspots[h].x) < 1e-12 &&
          std::abs(c.y - hotspots[h].y) < 1e-12) {
        ++hits[h];
        matched = true;
        break;
      }
    }
    ASSERT_TRUE(matched) << "query center not on any derived hotspot";
  }
  for (size_t h = 0; h < hotspots.size(); ++h) {
    const double freq = static_cast<double>(hits[h]) / kDraws;
    EXPECT_NEAR(freq, weights[h], 0.01) << "hotspot " << h;
  }
}

// --------------------------------------------------------------------------
// Generator registry
// --------------------------------------------------------------------------

Result<std::unique_ptr<sim::QueryGenerator>> MakeAlwaysPoint(
    const QueryClass&, const sim::GeneratorContext&) {
  return {std::make_unique<sim::UniformPointGenerator>()};
}

TEST(GeneratorRegistryTest, CustomCenterSourcePlugsIn) {
  ASSERT_TRUE(sim::RegisterGenerator("always-point", &MakeAlwaysPoint).ok());
  EXPECT_TRUE(sim::HasGenerator("always-point"));
  EXPECT_FALSE(sim::GeneratorNeedsCenters("always-point"));

  QueryClass qc;
  qc.center = "always-point";
  auto gen = sim::MakeGenerator(qc);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  Rng rng(3);
  EXPECT_EQ((*gen)->Next(rng).Area(), 0.0);

  // No analytic model registered for it: the engine skips prediction
  // instead of failing the run.
  EXPECT_FALSE(model::HasAnalyticModel("always-point"));

  // The builtins are present, need-centers is per-source, duplicates and
  // unknowns are errors.
  EXPECT_TRUE(sim::HasGenerator("uniform"));
  EXPECT_TRUE(sim::GeneratorNeedsCenters("data"));
  EXPECT_FALSE(sim::GeneratorNeedsCenters("cluster"));
  EXPECT_FALSE(sim::RegisterGenerator("uniform", &MakeAlwaysPoint).ok());
  EXPECT_FALSE(sim::HasGenerator("zipf"));
  QueryClass unknown;
  unknown.center = "zipf";
  EXPECT_FALSE(sim::MakeGenerator(unknown).ok());
}

// --------------------------------------------------------------------------
// Spec JSON: byte-identical round-trips, new keys, diagnostics
// --------------------------------------------------------------------------

// An old-style document (no open axes, no cluster keys) must reach a
// byte-identical fixed point after one parse+emit cycle: re-parsing the
// emitted form and emitting again changes nothing. This is what keeps
// committed specs and baselines stable across the query-class redesign.
TEST(WorkloadSpecTest, SpecJsonReachesByteIdenticalFixedPoint) {
  const char* docs[] = {
      R"({"name": "legacy", "dataset": {"kind": "uniform", "n": 2000},
          "tree": {"fanout": 25},
          "workload": {"classes": [
            {"label": "point", "model": "uniform", "count": 1000},
            {"label": "region", "model": "data",
             "qx": 0.01, "qy": 0.02, "count": 500}]}})",
      R"({"workload": {"classes": [
            {"model": "uniform", "qx": 0.01, "qy": "open"},
            {"model": "cluster", "qx": 0.02, "qy": 0.02, "hotspots": 4,
             "spread": 0.1, "skew": 1.5, "hotspot_seed": 9}]}})",
  };
  for (const char* doc : docs) {
    auto first = engine::ExperimentSpec::FromJson(doc);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    const std::string emitted = first->ToJsonDict().ToString();
    auto second = engine::ExperimentSpec::FromJson(emitted);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(second->ToJsonDict().ToString(), emitted);
  }
}

TEST(WorkloadSpecTest, OpenAxisAndClusterKeysParse) {
  auto spec = engine::ExperimentSpec::FromJson(
      R"({"workload": {"classes": [
            {"model": "uniform", "qx": 0.05, "qy": "open", "count": 10},
            {"model": "cluster", "qx": 0.01, "qy": 0.01,
             "hotspots": 32, "spread": 0.02, "skew": 0.5,
             "hotspot_seed": 77, "count": 10}]}})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const auto& classes = spec->workload.classes;
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].query.x, AxisExtent::Fixed(0.05));
  EXPECT_EQ(classes[0].query.y, AxisExtent::Open());
  EXPECT_EQ(classes[1].query.center, "cluster");
  EXPECT_EQ(classes[1].query.cluster.hotspots, 32u);
  EXPECT_DOUBLE_EQ(classes[1].query.cluster.spread, 0.02);
  EXPECT_DOUBLE_EQ(classes[1].query.cluster.skew, 0.5);
  EXPECT_EQ(classes[1].query.cluster.placement_seed, 77u);

  // Diagnostics keep their field paths.
  auto bad_extent = engine::ExperimentSpec::FromJson(
      R"({"workload": {"classes": [{"qx": "wide"}]}})");
  ASSERT_FALSE(bad_extent.ok());
  EXPECT_NE(bad_extent.status().message().find("qx"), std::string::npos);

  // Cluster keys demand the cluster center source.
  EXPECT_FALSE(engine::ExperimentSpec::FromJson(
                   R"({"workload": {"classes": [
                        {"model": "uniform", "hotspots": 4}]}})")
                   .ok());

  // Mixed update classes cannot have open axes.
  auto mixed_open = engine::ExperimentSpec::FromJson(
      R"({"workload": {"classes": [
            {"model": "uniform", "qx": 0.01, "qy": "open",
             "insert_frac": 0.2}]}})");
  EXPECT_FALSE(mixed_open.ok());
}

// --------------------------------------------------------------------------
// Measured vs predicted: the open-axis Eq. 5-6 extension
// --------------------------------------------------------------------------

// A partial-match class through the full engine: the extended model
// (open axis -> per-axis factor 1 in the node-access probabilities) must
// predict both bufferless node accesses and LRU disk accesses within the
// tolerance band EXPERIMENTS.md established for the closed-axis model.
TEST(PartialMatchModelTest, OpenAxisMeasuredVsPredicted) {
  engine::ExperimentSpec spec;
  spec.name = "partial_match_model";
  spec.dataset.kind = "uniform";
  spec.dataset.n = 20000;
  spec.dataset.seed = 3;
  spec.tree.fanout = 25;
  spec.pool.buffer_pages = 128;
  spec.workload.warmup = 2000;
  engine::QueryClassSpec cls;
  cls.query = QueryClass::PartialMatchX(0.01);
  cls.count = 10000;
  spec.workload.classes.push_back(cls);
  spec.run.seed = 7;

  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const engine::ClassReport& cr = report->classes[0];
  ASSERT_TRUE(cr.model_evaluated);

  const double measured_nodes = cr.run.MeanNodeAccesses();
  const double predicted_nodes = cr.predicted.node_accesses;
  ASSERT_GT(measured_nodes, 0.0);
  EXPECT_LT(std::abs(measured_nodes - predicted_nodes) / measured_nodes, 0.25)
      << "measured " << measured_nodes << " predicted " << predicted_nodes;

  const double measured_disk = cr.run.MeanDiskAccesses();
  const double predicted_disk = cr.predicted.disk_accesses;
  ASSERT_GT(measured_disk, 0.0);
  EXPECT_LT(std::abs(measured_disk - predicted_disk) / measured_disk, 0.25)
      << "measured " << measured_disk << " predicted " << predicted_disk;
}

// --------------------------------------------------------------------------
// The batched effective-hit-rate model
// --------------------------------------------------------------------------

TEST(BatchedModelTest, BatchProbabilitiesCollapseWithinBatch) {
  const std::vector<double> probs = {0.5, 0.1, 0.0, 1.0};
  const auto q1 = model::BatchAccessProbabilities(probs, 1);
  for (size_t j = 0; j < probs.size(); ++j) EXPECT_DOUBLE_EQ(q1[j], probs[j]);

  const auto q4 = model::BatchAccessProbabilities(probs, 4);
  EXPECT_NEAR(q4[0], 1.0 - std::pow(0.5, 4), 1e-12);
  EXPECT_NEAR(q4[1], 1.0 - std::pow(0.9, 4), 1e-12);
  EXPECT_DOUBLE_EQ(q4[2], 0.0);
  EXPECT_DOUBLE_EQ(q4[3], 1.0);

  // Per-query disk accesses shrink as the batch grows (within-batch
  // collapse): each distinct page is fetched once per batch.
  const auto d1 = model::ExpectedBatchedDiskAccesses(probs, 2, 1);
  const auto d16 = model::ExpectedBatchedDiskAccesses(probs, 2, 16);
  EXPECT_LE(d16.disk_accesses, d1.disk_accesses);
  EXPECT_GE(d16.effective_hit_rate, 0.0);
  EXPECT_LE(d16.effective_hit_rate, 1.0);
}

// The engine's batched prediction against a measured batched run: the
// within-batch collapse model must track the measured per-query disk
// accesses of the batched executor on a small pool.
TEST(BatchedModelTest, EffectiveHitRateMatchesMeasuredRun) {
  engine::ExperimentSpec spec;
  spec.name = "batched_model";
  spec.dataset.kind = "uniform";
  spec.dataset.n = 20000;
  spec.dataset.seed = 11;
  spec.tree.fanout = 50;
  spec.pool.buffer_pages = 64;
  spec.workload.warmup = 1000;
  spec.workload.batch_size = 16;
  engine::QueryClassSpec cls;
  cls.query = QueryClass::UniformRegion(0.01, 0.01);
  cls.count = 10000;
  spec.workload.classes.push_back(cls);
  spec.run.seed = 5;

  auto report = engine::Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const engine::ClassReport& cr = report->classes[0];
  ASSERT_TRUE(cr.model_evaluated);
  ASSERT_TRUE(cr.predicted.batched);

  const double measured_disk = cr.run.MeanDiskAccesses();
  const double predicted_disk = cr.predicted.batched_disk_accesses;
  ASSERT_GT(measured_disk, 0.0);
  EXPECT_LT(std::abs(measured_disk - predicted_disk) / measured_disk, 0.30)
      << "measured " << measured_disk << " predicted " << predicted_disk;

  // The serial (per-query) model must overestimate the batched run's disk
  // traffic — that gap is exactly what the batched model corrects.
  EXPECT_LT(predicted_disk, cr.predicted.disk_accesses);
  EXPECT_GT(cr.predicted.effective_hit_rate, 0.0);
  EXPECT_LE(cr.predicted.effective_hit_rate, 1.0);
}

}  // namespace
}  // namespace rtb
