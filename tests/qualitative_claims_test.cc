// Regression tests for the paper's qualitative findings at reduced scale —
// each test encodes one claim from Section 5 (and EXPERIMENTS.md) so the
// reproduction cannot silently drift.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "model/access_prob.h"
#include "model/cost_model.h"
#include "rtree/bulk_load.h"
#include "rtree/summary.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb {
namespace {

using model::QuerySpec;
using rtree::LoadAlgorithm;
using rtree::TreeSummary;
using storage::MemPageStore;

struct BuiltWorkload {
  std::unique_ptr<TreeSummary> summary;
  std::vector<geom::Point> centers;
};

BuiltWorkload Build(const std::vector<geom::Rect>& rects, uint32_t fanout,
                    LoadAlgorithm algo) {
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(fanout),
                                 rects, algo);
  EXPECT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  EXPECT_TRUE(summary.ok());
  BuiltWorkload out;
  out.summary = std::make_unique<TreeSummary>(std::move(*summary));
  out.centers = data::Centers(rects);
  return out;
}

double Ed(const BuiltWorkload& w, const QuerySpec& spec, uint64_t buffer) {
  auto ed = model::PredictDiskAccesses(*w.summary, spec, buffer, &w.centers);
  EXPECT_TRUE(ed.ok());
  return *ed;
}

// Shared TIGER-like workload (smaller than the benches for test speed).
class TigerClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(1998);
    data::TigerParams params;
    params.num_rects = 20000;
    rects_ = new std::vector<geom::Rect>(
        data::GenerateTigerSurrogate(params, &rng));
  }
  static std::vector<geom::Rect>* rects_;
};
std::vector<geom::Rect>* TigerClaims::rects_ = nullptr;

// --------------------------------------------------------------------------
// Figure 6: the buffered metric reverses the TAT/NX region-query ordering.
// --------------------------------------------------------------------------

TEST_F(TigerClaims, Fig6RegionQueryCrossoverExists) {
  BuiltWorkload tat = Build(*rects_, 100, LoadAlgorithm::kTupleAtATime);
  BuiltWorkload nx = Build(*rects_, 100, LoadAlgorithm::kNearestX);
  QuerySpec region = QuerySpec::UniformRegion(0.1, 0.1);
  const uint64_t total = nx.summary->NumNodes();
  // Small buffer: TAT better. Near-full buffer: NX better (or both ~0);
  // a crossover must exist strictly inside the range.
  double tat_small = Ed(tat, region, 2);
  double nx_small = Ed(nx, region, 2);
  EXPECT_LT(tat_small, nx_small);
  bool crossed = false;
  for (uint64_t buffer = 2; buffer <= total; buffer += 4) {
    if (Ed(nx, region, buffer) < Ed(tat, region, buffer)) {
      crossed = true;
      break;
    }
  }
  EXPECT_TRUE(crossed) << "no TAT/NX crossover found";
}

TEST_F(TigerClaims, Fig6HsDominatesForRegionQueries) {
  BuiltWorkload hs = Build(*rects_, 100, LoadAlgorithm::kHilbertSort);
  BuiltWorkload nx = Build(*rects_, 100, LoadAlgorithm::kNearestX);
  BuiltWorkload tat = Build(*rects_, 100, LoadAlgorithm::kTupleAtATime);
  QuerySpec region = QuerySpec::UniformRegion(0.1, 0.1);
  for (uint64_t buffer : {2, 50, 200, 400}) {
    double hs_cost = Ed(hs, region, buffer);
    EXPECT_LE(hs_cost, Ed(nx, region, buffer)) << buffer;
    EXPECT_LE(hs_cost, Ed(tat, region, buffer)) << buffer;
  }
}

// --------------------------------------------------------------------------
// Figure 7: data-driven queries cost more and benefit less from buffer.
// --------------------------------------------------------------------------

TEST_F(TigerClaims, Fig7DataDrivenAboveUniformAndLessBufferSensitive) {
  BuiltWorkload hs = Build(*rects_, 25, LoadAlgorithm::kHilbertSort);
  QuerySpec uniform = QuerySpec::UniformPoint();
  QuerySpec driven = QuerySpec::DataDrivenPoint();
  for (uint64_t buffer : {10, 100, 400}) {
    EXPECT_GT(Ed(hs, driven, buffer), Ed(hs, uniform, buffer)) << buffer;
  }
  double u_ratio = Ed(hs, uniform, 10) / Ed(hs, uniform, 400);
  double d_ratio = Ed(hs, driven, 10) / Ed(hs, driven, 400);
  EXPECT_GT(u_ratio, d_ratio);
}

// --------------------------------------------------------------------------
// Figure 9: bufferless point-query cost saturates; buffered cost grows.
// --------------------------------------------------------------------------

TEST(Fig9Claims, BufferlessFlatButBufferedGrows) {
  auto build_at = [](uint64_t n) {
    Rng rng(1998);
    return Build(data::GenerateSyntheticRegion(n, &rng), 100,
                 LoadAlgorithm::kHilbertSort);
  };
  BuiltWorkload small = build_at(25000);
  BuiltWorkload large = build_at(150000);
  QuerySpec point = QuerySpec::UniformPoint();
  double flat_growth = Ed(large, point, 0) / Ed(small, point, 0);
  double buffered_growth = Ed(large, point, 10) / Ed(small, point, 10);
  // 6x more data: bufferless cost grows < 25%, buffered cost much more.
  EXPECT_LT(flat_growth, 1.25);
  EXPECT_GT(buffered_growth, flat_growth + 0.25);
}

// --------------------------------------------------------------------------
// Figures 10/11: pinning regime boundary.
// --------------------------------------------------------------------------

TEST(PinningClaims, OnlyHelpsWhenPinnedPagesAreLargeFractionOfBuffer) {
  Rng rng(1998);
  auto rects = data::GenerateUniformPoints(250000, &rng);
  BuiltWorkload w = Build(rects, 25, LoadAlgorithm::kHilbertSort);
  auto probs = model::UniformAccessProbabilities(*w.summary, 0.0, 0.0);
  ASSERT_TRUE(probs.ok());

  auto improvement = [&](uint64_t buffer, uint16_t levels) {
    double base = model::ExpectedDiskAccesses(*probs, buffer);
    auto pinned =
        model::ExpectedDiskAccessesPinned(*w.summary, *probs, buffer, levels);
    EXPECT_TRUE(pinned.feasible);
    return (base - pinned.disk_accesses) / base;
  };
  // Pinning 1-2 levels: negligible (paper: identical curves).
  EXPECT_LT(improvement(500, 1), 0.01);
  EXPECT_LT(improvement(500, 2), 0.01);
  // Pinning 3 levels (417 pages) with B=500: large benefit...
  EXPECT_GT(improvement(500, 3), 0.20);
  // ...but with B=2000 (pinned < 1/4 of buffer): negligible again.
  EXPECT_LT(improvement(2000, 3), 0.02);
  // And pinning never hurts anywhere we can evaluate it.
  for (uint64_t buffer : {450, 700, 1200, 2000}) {
    for (uint16_t levels : {1, 2, 3}) {
      EXPECT_GE(improvement(buffer, levels), -1e-9)
          << buffer << "/" << levels;
    }
  }
}

TEST(PinningClaims, BenefitDecaysWithQuerySize) {
  Rng rng(1998);
  auto rects = data::GenerateUniformPoints(250000, &rng);
  BuiltWorkload w = Build(rects, 25, LoadAlgorithm::kHilbertSort);
  auto improvement_at = [&](double qx) {
    auto probs = model::UniformAccessProbabilities(*w.summary, qx, qx);
    EXPECT_TRUE(probs.ok());
    double base = model::ExpectedDiskAccesses(*probs, 500);
    auto pinned =
        model::ExpectedDiskAccessesPinned(*w.summary, *probs, 500, 3);
    EXPECT_TRUE(pinned.feasible);
    return (base - pinned.disk_accesses) / base;
  };
  double at_zero = improvement_at(0.0);
  double at_small = improvement_at(0.05);
  double at_large = improvement_at(0.15);
  // Paper: ~35% at QX=0, decaying with query size.
  EXPECT_GT(at_zero, 0.25);
  EXPECT_LT(at_small, at_zero);
  EXPECT_LT(at_large, at_small + 0.02);
}

// --------------------------------------------------------------------------
// Figure 8 mechanism: CFD uniform queries concentrate on few hot pages.
// --------------------------------------------------------------------------

TEST(CfdClaims, UniformModelHasHotNodesDataDrivenSpreads) {
  Rng rng(1998);
  data::CfdParams params;
  params.num_points = 15000;
  auto rects = data::GenerateCfdSurrogate(params, &rng);
  BuiltWorkload w = Build(rects, 100, LoadAlgorithm::kHilbertSort);
  auto uniform = model::UniformAccessProbabilities(*w.summary, 0.0, 0.0);
  ASSERT_TRUE(uniform.ok());
  auto driven = model::DataDrivenAccessProbabilities(*w.summary, w.centers,
                                                     0.0, 0.0);
  ASSERT_TRUE(driven.ok());

  // Improvement ratio from more buffer is much larger for uniform access.
  double u_ratio = model::ExpectedDiskAccesses(*uniform, 10) /
                   std::max(model::ExpectedDiskAccesses(*uniform, 100), 1e-9);
  double d_ratio = model::ExpectedDiskAccesses(*driven, 10) /
                   std::max(model::ExpectedDiskAccesses(*driven, 100), 1e-9);
  EXPECT_GT(u_ratio, 2.0 * d_ratio);
}

}  // namespace
}  // namespace rtb
