// Kill-during-load crash test: a forked child serves a WAL-backed tree
// (commit-per-drain), the parent pipelines inserts and SIGKILLs the child
// after a prefix of acks. The server replies to an update only after its
// drain's WAL commit, so every acked insert must survive
// FilePageStore::OpenWithRecovery — the committed-prefix contract that
// shows the serving tier composes with the PR 8 durability path. Runs
// under RTB_NO_FSYNC=1: the crash model kills the process, not the kernel,
// so bytes written to the log count as durable.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/serving.h"
#include "rtree/rtree.h"
#include "rtree/validate.h"
#include "storage/buffer_pool.h"
#include "storage/file_page_store.h"
#include "storage/wal.h"
#include "util/rng.h"

namespace rtb::net {
namespace {

using geom::Rect;

struct ChildHello {
  uint16_t port = 0;
  storage::PageId root = 0;
  uint16_t height = 0;
  uint32_t fanout = 0;
};

// Child body: open the durable stack, start the server, report through the
// pipe, serve until killed. Never returns.
[[noreturn]] void RunChild(const std::string& path, int pipe_fd) {
  engine::ExperimentSpec spec;
  spec.name = "server_recovery_child";
  spec.dataset.kind = "uniform";
  spec.dataset.n = 5000;
  spec.dataset.seed = 3;
  spec.tree.fanout = 50;
  spec.pool.buffer_pages = 64;
  spec.storage.backend = "file";
  spec.storage.path = path;
  spec.storage.wal.enabled = true;
  // Commit-per-drain: an acked update is logged-committed, no deferral.
  spec.storage.wal.group_commit_window = 1;

  auto stack = ServingStack::Open(spec);
  if (!stack.ok()) _exit(10);
  ServerOptions options;
  options.max_batch = 8;  // Many small drains => many commit points.
  options.max_wait_us = 200;
  Server server(stack->get(), options);
  if (!server.Start().ok()) _exit(11);

  ChildHello hello;
  hello.port = server.port();
  hello.root = (*stack)->tree()->root();
  hello.height = (*stack)->tree()->height();
  hello.fanout = spec.tree.fanout;
  if (write(pipe_fd, &hello, sizeof hello) != sizeof hello) _exit(12);
  close(pipe_fd);

  server.Serve().ok();  // Runs until SIGKILL.
  _exit(13);
}

TEST(ServerRecoveryTest, KilledServerRecoversCommittedPrefix) {
  if (!storage::WalAvailable()) GTEST_SKIP() << "built without RTB_WAL";
  const std::string path = "/tmp/rtb_server_recovery_test.store";
  const std::string wal_path = path + ".wal";
  std::remove(path.c_str());
  std::remove(wal_path.c_str());

  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(pipe_fds[0]);
    RunChild(path, pipe_fds[1]);
  }
  close(pipe_fds[1]);

  ChildHello hello;
  ASSERT_EQ(read(pipe_fds[0], &hello, sizeof hello),
            static_cast<ssize_t>(sizeof hello))
      << "child failed to start";
  close(pipe_fds[0]);

  // Pipeline a long insert stream; harvest acks until the target, then
  // kill the server mid-load with requests still in flight.
  constexpr size_t kInserts = 400;
  constexpr size_t kAckTarget = 120;
  Rng rng(17);
  std::vector<Rect> rects;
  for (size_t i = 0; i < kInserts; ++i) {
    const double x = rng.NextDouble();
    const double y = rng.NextDouble();
    rects.push_back(Rect(x, y, x, y));
  }

  auto client = Client::Connect(hello.port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < kInserts; ++i) {
    ids.push_back((*client)->QueueInsert(rects[i], 2'000'000 + i));
  }
  ASSERT_TRUE((*client)->Flush().ok());

  size_t acked = 0;
  std::vector<size_t> acked_idx;
  while (acked < kAckTarget) {
    auto reply = (*client)->ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok()) << reply->text;
    // Request ids are 1-based in queue order.
    acked_idx.push_back(reply->request_id - 1);
    ++acked;
  }
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Recover. The log may end in a torn tail (killed mid-drain); the
  // committed prefix must replay cleanly.
  storage::WalRecoveryReport report;
  auto store =
      storage::FilePageStore::OpenWithRecovery(path, wal_path, &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(report.wal_found);
  EXPECT_GT(report.records_scanned, 1u) << "load must have produced commits";

  // The recovered tree is structurally valid and holds the bulk-loaded
  // entries plus every committed insert — in particular all acked ones.
  const auto config = rtree::RTreeConfig::WithFanout(hello.fanout);
  const auto validation = rtree::ValidateTree(store->get(), hello.root,
                                              config,
                                              {.check_min_fill = false});
  ASSERT_TRUE(validation.ok) << (validation.issues.empty()
                                     ? "?"
                                     : validation.issues.front());
  EXPECT_GE(validation.num_data_entries, 5000u + kAckTarget);
  EXPECT_LE(validation.num_data_entries, 5000u + kInserts);

  auto pool = storage::BufferPool::MakeLru(store->get(), 128);
  auto tree = rtree::RTree::Open(pool.get(), config, hello.root,
                                 hello.height);
  ASSERT_TRUE(tree.ok());
  for (const size_t idx : acked_idx) {
    std::vector<rtree::ObjectId> found;
    ASSERT_TRUE(tree->Search(rects[idx], &found).ok());
    const rtree::ObjectId want = 2'000'000 + idx;
    EXPECT_NE(std::find(found.begin(), found.end(), want), found.end())
        << "acked insert " << idx << " lost by recovery";
  }
  ASSERT_TRUE(pool->Close().ok());
  ASSERT_TRUE((*store)->Close().ok());
  std::remove(path.c_str());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace rtb::net
