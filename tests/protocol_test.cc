// Codec tests for the rtb wire protocol (net/protocol.h): round-trips for
// every frame type, byte-at-a-time partial feeds (the short-read case the
// server's DrainInput must handle), malformed/oversized/truncated frames,
// and a fuzz-ish sweep of random byte strings through the decoder — which
// must classify, never crash.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace rtb::net {
namespace {

using geom::Point;
using geom::Rect;

// Decodes exactly one frame from `bytes`, asserting it consumed everything.
Frame MustDecode(const std::vector<uint8_t>& bytes) {
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

TEST(ProtocolTest, SearchRequestRoundTrip) {
  std::vector<uint8_t> buf;
  const Rect rect(0.1, 0.2, 0.3, 0.4);
  AppendSearchRequest(77, rect, &buf);

  const Frame frame = MustDecode(buf);
  Request req;
  ASSERT_TRUE(ParseRequest(frame, &req).ok());
  EXPECT_EQ(req.type, MsgType::kSearch);
  EXPECT_EQ(req.request_id, 77u);
  EXPECT_EQ(req.rect, rect);
}

// The open-axis sentinel (lo = -inf, hi = +inf on an axis) is the only
// legal non-finite SEARCH encoding; every other combination of the four
// bounds drawn from {finite, -inf, +inf, NaN} must be a typed error.
TEST(ProtocolTest, OpenBoundSearchAxes) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

  // Accepted: open x, open y, both open.
  for (const Rect& rect :
       {Rect(-kInf, 0.2, kInf, 0.4), Rect(0.1, -kInf, 0.3, kInf),
        Rect(-kInf, -kInf, kInf, kInf)}) {
    std::vector<uint8_t> buf;
    AppendSearchRequest(11, rect, &buf);
    Request req;
    ASSERT_TRUE(ParseRequest(MustDecode(buf), &req).ok());
    EXPECT_EQ(req.rect, rect);
  }

  // Exhaustive sweep: each of the four bounds independently finite, -inf,
  // +inf, or NaN. Legal iff each axis is fully finite or exactly the
  // (-inf, +inf) sentinel.
  const double kVals[4] = {0.25, -kInf, kInf, kNan};
  auto axis_ok = [](double lo, double hi) {
    return (std::isfinite(lo) && std::isfinite(hi)) ||
           (lo == -kInf && hi == kInf);
  };
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        for (int d = 0; d < 4; ++d) {
          const Rect rect(kVals[a], kVals[b], kVals[c], kVals[d]);
          std::vector<uint8_t> buf;
          AppendSearchRequest(12, rect, &buf);
          Request req;
          const bool want =
              axis_ok(rect.lo.x, rect.hi.x) && axis_ok(rect.lo.y, rect.hi.y);
          EXPECT_EQ(ParseRequest(MustDecode(buf), &req).ok(), want)
              << rect.lo.x << " " << rect.lo.y << " " << rect.hi.x << " "
              << rect.hi.y;
        }
      }
    }
  }
}

TEST(ProtocolTest, KnnRequestRoundTrip) {
  std::vector<uint8_t> buf;
  AppendKnnRequest(5, Point{0.5, 0.25}, 12, &buf);
  Request req;
  ASSERT_TRUE(ParseRequest(MustDecode(buf), &req).ok());
  EXPECT_EQ(req.type, MsgType::kKnn);
  EXPECT_EQ(req.point.x, 0.5);
  EXPECT_EQ(req.point.y, 0.25);
  EXPECT_EQ(req.k, 12u);
}

TEST(ProtocolTest, UpdateRequestRoundTrip) {
  std::vector<uint8_t> buf;
  const Rect rect(0.0, 0.0, 0.1, 0.1);
  AppendInsertRequest(1, rect, 42, &buf);
  AppendDeleteRequest(2, rect, 43, &buf);

  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buf.data(), buf.size(), &frame, &consumed),
            DecodeResult::kFrame);
  Request req;
  ASSERT_TRUE(ParseRequest(frame, &req).ok());
  EXPECT_EQ(req.type, MsgType::kInsert);
  EXPECT_EQ(req.id, 42u);
  EXPECT_EQ(req.rect, rect);

  const size_t first = consumed;
  ASSERT_EQ(DecodeFrame(buf.data() + first, buf.size() - first, &frame,
                        &consumed),
            DecodeResult::kFrame);
  ASSERT_TRUE(ParseRequest(frame, &req).ok());
  EXPECT_EQ(req.type, MsgType::kDelete);
  EXPECT_EQ(req.id, 43u);
}

TEST(ProtocolTest, ReplyRoundTrips) {
  {
    std::vector<uint8_t> buf;
    AppendSearchReply(9, {1, 2, 3}, &buf);
    Reply reply;
    ASSERT_TRUE(ParseReply(MustDecode(buf), &reply).ok());
    EXPECT_TRUE(reply.ok());
    EXPECT_EQ(reply.type, MsgType::kSearch);
    EXPECT_EQ(reply.request_id, 9u);
    EXPECT_EQ(reply.ids, (std::vector<rtree::ObjectId>{1, 2, 3}));
  }
  {
    std::vector<uint8_t> buf;
    AppendKnnReply(10, {{7, 0.5}, {8, 1.5}}, &buf);
    Reply reply;
    ASSERT_TRUE(ParseReply(MustDecode(buf), &reply).ok());
    ASSERT_EQ(reply.neighbors.size(), 2u);
    EXPECT_EQ(reply.neighbors[0].id, 7u);
    EXPECT_EQ(reply.neighbors[1].distance, 1.5);
  }
  {
    std::vector<uint8_t> buf;
    AppendInsertReply(11, &buf);
    Reply reply;
    ASSERT_TRUE(ParseReply(MustDecode(buf), &reply).ok());
    EXPECT_EQ(reply.type, MsgType::kInsert);
  }
  {
    std::vector<uint8_t> buf;
    AppendDeleteReply(12, true, &buf);
    Reply reply;
    ASSERT_TRUE(ParseReply(MustDecode(buf), &reply).ok());
    EXPECT_TRUE(reply.found);
  }
  {
    std::vector<uint8_t> buf;
    AppendStatsReply(13, "{\"x\":1}", &buf);
    Reply reply;
    ASSERT_TRUE(ParseReply(MustDecode(buf), &reply).ok());
    EXPECT_EQ(reply.text, "{\"x\":1}");
  }
}

TEST(ProtocolTest, ErrorReplyCarriesCodeAndMessage) {
  std::vector<uint8_t> buf;
  AppendErrorReply(21, MsgType::kDelete,
                   Status::NotFound("no such entry"), &buf);
  Reply reply;
  ASSERT_TRUE(ParseReply(MustDecode(buf), &reply).ok());
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.type, MsgType::kDelete);
  EXPECT_EQ(reply.status, static_cast<uint8_t>(StatusCode::kNotFound));
  EXPECT_EQ(reply.text, "no such entry");
}

// The server feeds whatever the socket delivered; a frame arriving one
// byte at a time must yield kNeedMore until the last byte lands.
TEST(ProtocolTest, PartialFeedNeedsMoreUntilComplete) {
  std::vector<uint8_t> buf;
  AppendSearchRequest(3, Rect(0, 0, 1, 1), &buf);
  Frame frame;
  size_t consumed = 0;
  for (size_t len = 0; len < buf.size(); ++len) {
    EXPECT_EQ(DecodeFrame(buf.data(), len, &frame, &consumed),
              DecodeResult::kNeedMore)
        << "at prefix length " << len;
  }
  EXPECT_EQ(DecodeFrame(buf.data(), buf.size(), &frame, &consumed),
            DecodeResult::kFrame);
}

TEST(ProtocolTest, MalformedLengthsAreRejected) {
  // frame_len below the prologue: stream unusable.
  std::vector<uint8_t> tiny(4, 0);
  tiny[0] = 4;  // frame_len = 4 < kPrologueBytes.
  Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(tiny.data(), tiny.size(), &frame, &consumed),
            DecodeResult::kMalformed);

  // frame_len above the cap: a hostile allocation request.
  std::vector<uint8_t> huge(4, 0);
  const uint32_t over = static_cast<uint32_t>(kPrologueBytes +
                                              kMaxPayloadBytes + 1);
  std::memcpy(huge.data(), &over, sizeof over);
  EXPECT_EQ(DecodeFrame(huge.data(), huge.size(), &frame, &consumed),
            DecodeResult::kMalformed);
}

TEST(ProtocolTest, TypedPayloadErrorsAreStatusesNotCrashes) {
  // Unknown type.
  {
    std::vector<uint8_t> buf;
    AppendRawFrame(99, 0, 1, nullptr, 0, &buf);
    Request req;
    EXPECT_FALSE(ParseRequest(MustDecode(buf), &req).ok());
  }
  // Truncated SEARCH payload (frames fine, typed size mismatch).
  {
    std::vector<uint8_t> buf;
    const uint8_t partial[16] = {};
    AppendRawFrame(static_cast<uint8_t>(MsgType::kSearch), 0, 2, partial,
                   sizeof partial, &buf);
    Request req;
    EXPECT_FALSE(ParseRequest(MustDecode(buf), &req).ok());
  }
  // Non-finite insert rectangle.
  {
    std::vector<uint8_t> buf;
    const Rect bad(0.0, 0.0, std::numeric_limits<double>::quiet_NaN(), 1.0);
    AppendInsertRequest(3, bad, 7, &buf);
    Request req;
    EXPECT_FALSE(ParseRequest(MustDecode(buf), &req).ok());
  }
  // Empty (lo > hi) insert rectangle — would poison a whole update batch.
  {
    std::vector<uint8_t> buf;
    AppendInsertRequest(4, Rect(0.5, 0.5, 0.1, 0.1), 7, &buf);
    Request req;
    EXPECT_FALSE(ParseRequest(MustDecode(buf), &req).ok());
  }
  // kNN with k == 0.
  {
    std::vector<uint8_t> buf;
    AppendKnnRequest(5, Point{0.5, 0.5}, 0, &buf);
    Request req;
    EXPECT_FALSE(ParseRequest(MustDecode(buf), &req).ok());
  }
  // Reply bit set where a request is expected.
  {
    std::vector<uint8_t> buf;
    AppendSearchReply(6, {}, &buf);
    Request req;
    EXPECT_FALSE(ParseRequest(MustDecode(buf), &req).ok());
  }
  // Search reply whose count disagrees with its payload size.
  {
    std::vector<uint8_t> buf;
    uint8_t payload[12] = {};
    payload[0] = 200;  // Claims 200 ids; carries one.
    AppendRawFrame(static_cast<uint8_t>(MsgType::kSearch) | kReplyBit, 0, 7,
                   payload, sizeof payload, &buf);
    Reply reply;
    EXPECT_FALSE(ParseReply(MustDecode(buf), &reply).ok());
  }
  // kNN reply whose count would wrap the size check in uint32 arithmetic
  // (0x10000000 * 16 == 0 mod 2^32): must be a size mismatch, not a ~4 GB
  // resize plus an out-of-bounds payload read.
  {
    std::vector<uint8_t> buf;
    uint8_t payload[4];
    const uint32_t n = 0x10000000u;
    std::memcpy(payload, &n, sizeof n);
    AppendRawFrame(static_cast<uint8_t>(MsgType::kKnn) | kReplyBit, 0, 8,
                   payload, sizeof payload, &buf);
    Reply reply;
    EXPECT_FALSE(ParseReply(MustDecode(buf), &reply).ok());
    EXPECT_TRUE(reply.neighbors.empty());
  }
}

// Random byte strings through the decoder: every prefix must classify as
// kFrame / kNeedMore / kMalformed without reading out of bounds (ASan is
// the real assertion here), and kFrame must consume a plausible size.
TEST(ProtocolTest, FuzzDecodeNeverCrashes) {
  Rng rng(1998);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = 1 + rng.UniformInt(96);
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(256));
    Frame frame;
    size_t consumed = 0;
    const DecodeResult r =
        DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed);
    if (r == DecodeResult::kFrame) {
      EXPECT_LE(consumed, bytes.size());
      EXPECT_GE(consumed, kLengthBytes + kPrologueBytes);
      // Typed parsing on the fuzzed frame must classify, not crash.
      Request req;
      Reply reply;
      if (frame.type & kReplyBit) {
        ParseReply(frame, &reply).ok();
      } else {
        ParseRequest(frame, &req).ok();
      }
    }
  }
}

// Encoded frames survive a fuzz of split points: any split of the byte
// stream into two reads decodes to the same two frames.
TEST(ProtocolTest, SplitStreamDecodesIdentically) {
  std::vector<uint8_t> buf;
  AppendSearchRequest(1, Rect(0, 0, 0.5, 0.5), &buf);
  AppendInsertRequest(2, Rect(0.1, 0.1, 0.2, 0.2), 9, &buf);

  for (size_t split = 0; split <= buf.size(); ++split) {
    // Feed [0, split) then the rest, as a stateful reader would.
    std::vector<uint8_t> acc(buf.begin(), buf.begin() + split);
    std::vector<uint64_t> ids;
    size_t pos = 0;
    for (int phase = 0; phase < 2; ++phase) {
      while (true) {
        Frame frame;
        size_t consumed = 0;
        const DecodeResult r = DecodeFrame(acc.data() + pos, acc.size() - pos,
                                           &frame, &consumed);
        if (r != DecodeResult::kFrame) break;
        ids.push_back(frame.request_id);
        pos += consumed;
      }
      acc.insert(acc.end(), buf.begin() + split, buf.end());
    }
    EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2})) << "split at " << split;
  }
}

}  // namespace
}  // namespace rtb::net
