// Tests for the access-probability and buffer cost models, including
// Monte-Carlo cross-checks of the closed-form probabilities.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "geom/rect.h"
#include "model/access_prob.h"
#include "model/cost_model.h"
#include "rtree/bulk_load.h"
#include "rtree/summary.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::model {
namespace {

using geom::Point;
using geom::Rect;
using rtree::TreeSummary;
using storage::MemPageStore;

// Builds a summary for a packed tree over `rects`.
TreeSummary MakeSummary(const std::vector<Rect>& rects, uint32_t fanout,
                        rtree::LoadAlgorithm algo) {
  MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(fanout),
                                 rects, algo);
  EXPECT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  EXPECT_TRUE(summary.ok());
  return *summary;
}

// --------------------------------------------------------------------------
// Uniform access probabilities
// --------------------------------------------------------------------------

TEST(UniformAccessTest, PointQueryProbabilityIsArea) {
  // For an MBR inside the unit square, the point-query access probability
  // is exactly its area (Kamel-Faloutsos).
  Rect r(0.2, 0.3, 0.6, 0.7);
  EXPECT_DOUBLE_EQ(UniformAccessProbability(r, 0.0, 0.0), r.Area());
}

TEST(UniformAccessTest, RegionProbabilityClampedToOne) {
  // Paper Fig. 3b: a 0.9 x 0.9 query against a large rectangle must not get
  // probability 1.21.
  Rect r(0.0, 0.0, 0.2, 0.2);
  double p = UniformAccessProbability(r, 0.9, 0.9);
  EXPECT_LE(p, 1.0);
  EXPECT_GT(p, 0.0);
}

TEST(UniformAccessTest, WholeSquareAlwaysAccessed) {
  EXPECT_DOUBLE_EQ(UniformAccessProbability(Rect::UnitSquare(), 0.0, 0.0),
                   1.0);
  EXPECT_DOUBLE_EQ(UniformAccessProbability(Rect::UnitSquare(), 0.5, 0.25),
                   1.0);
}

TEST(UniformAccessTest, MonteCarloAgreesPointQueries) {
  Rng rng(307);
  for (int trial = 0; trial < 20; ++trial) {
    double x = rng.Uniform(0.0, 0.7), y = rng.Uniform(0.0, 0.7);
    Rect r(x, y, x + rng.Uniform(0.01, 0.3), y + rng.Uniform(0.01, 0.3));
    double p = UniformAccessProbability(r, 0.0, 0.0);
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      if (r.Contains(Point{rng.NextDouble(), rng.NextDouble()})) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01) << "trial " << trial;
  }
}

TEST(UniformAccessTest, MonteCarloAgreesRegionQueries) {
  // Draw queries exactly as the simulator does (top-right corner in U') and
  // compare the empirical intersection rate with the model probability,
  // including rectangles that stick out near the boundary.
  Rng rng(311);
  const double qx = 0.2, qy = 0.15;
  for (int trial = 0; trial < 20; ++trial) {
    double x = rng.Uniform(0.0, 0.9), y = rng.Uniform(0.0, 0.9);
    Rect r(x, y, std::min(1.0, x + rng.Uniform(0.01, 0.5)),
           std::min(1.0, y + rng.Uniform(0.01, 0.5)));
    double p = UniformAccessProbability(r, qx, qy);
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      double tx = rng.Uniform(qx, 1.0), ty = rng.Uniform(qy, 1.0);
      Rect query(tx - qx, ty - qy, tx, ty);
      if (query.Intersects(r)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01) << "trial " << trial;
  }
}

TEST(UniformAccessTest, RejectsExtentsOutsideRange) {
  MemPageStore store;
  Rng rng(313);
  auto rects = data::GenerateUniformPoints(100, &rng);
  TreeSummary summary =
      MakeSummary(rects, 10, rtree::LoadAlgorithm::kHilbertSort);
  EXPECT_FALSE(UniformAccessProbabilities(summary, 1.0, 0.0).ok());
  EXPECT_FALSE(UniformAccessProbabilities(summary, -0.1, 0.0).ok());
  EXPECT_TRUE(UniformAccessProbabilities(summary, 0.99, 0.0).ok());
}

TEST(UniformAccessTest, ProbabilitiesAlwaysInUnitInterval) {
  Rng rng(317);
  auto rects = data::GenerateSyntheticRegion(2000, &rng);
  TreeSummary summary =
      MakeSummary(rects, 20, rtree::LoadAlgorithm::kNearestX);
  for (double q : {0.0, 0.01, 0.1, 0.5, 0.9}) {
    auto probs = UniformAccessProbabilities(summary, q, q);
    ASSERT_TRUE(probs.ok());
    for (double p : *probs) {
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0);
    }
  }
}

// --------------------------------------------------------------------------
// Data-driven access probabilities
// --------------------------------------------------------------------------

TEST(DataDrivenAccessTest, PointProbabilityIsCenterFraction) {
  Rng rng(331);
  auto rects = data::GenerateSyntheticRegion(1000, &rng);
  auto centers = data::Centers(rects);
  TreeSummary summary =
      MakeSummary(rects, 10, rtree::LoadAlgorithm::kHilbertSort);
  auto probs = DataDrivenAccessProbabilities(summary, centers, 0.0, 0.0);
  ASSERT_TRUE(probs.ok());
  // Naive recomputation for every node.
  const auto& nodes = summary.nodes();
  for (size_t j = 0; j < nodes.size(); ++j) {
    uint64_t count = 0;
    for (const Point& c : centers) {
      if (nodes[j].mbr.Contains(c)) ++count;
    }
    ASSERT_NEAR((*probs)[j],
                static_cast<double>(count) / centers.size(), 1e-12);
  }
}

TEST(DataDrivenAccessTest, RegionExpansionMatchesNaive) {
  Rng rng(337);
  auto rects = data::GenerateSyntheticRegion(800, &rng);
  auto centers = data::Centers(rects);
  TreeSummary summary =
      MakeSummary(rects, 16, rtree::LoadAlgorithm::kNearestX);
  const double qx = 0.07, qy = 0.035;
  auto probs = DataDrivenAccessProbabilities(summary, centers, qx, qy);
  ASSERT_TRUE(probs.ok());
  const auto& nodes = summary.nodes();
  for (size_t j = 0; j < nodes.size(); ++j) {
    Rect expanded = geom::ExpandAboutCenter(nodes[j].mbr, qx, qy);
    uint64_t count = 0;
    for (const Point& c : centers) {
      if (expanded.Contains(c)) ++count;
    }
    ASSERT_NEAR((*probs)[j],
                static_cast<double>(count) / centers.size(), 1e-12);
  }
}

TEST(DataDrivenAccessTest, RootProbabilityIsOne) {
  // Every data center lies inside the root MBR by construction.
  Rng rng(347);
  auto rects = data::GenerateUniformPoints(500, &rng);
  auto centers = data::Centers(rects);
  TreeSummary summary =
      MakeSummary(rects, 10, rtree::LoadAlgorithm::kHilbertSort);
  auto probs = DataDrivenAccessProbabilities(summary, centers, 0.0, 0.0);
  ASSERT_TRUE(probs.ok());
  EXPECT_DOUBLE_EQ((*probs)[0], 1.0);
}

TEST(DataDrivenAccessTest, RequiresCenters) {
  Rng rng(349);
  auto rects = data::GenerateUniformPoints(100, &rng);
  TreeSummary summary =
      MakeSummary(rects, 10, rtree::LoadAlgorithm::kHilbertSort);
  EXPECT_FALSE(
      AccessProbabilities(summary, QuerySpec::DataDrivenPoint(), nullptr)
          .ok());
  EXPECT_FALSE(DataDrivenAccessProbabilities(summary, {}, 0.0, 0.0).ok());
}

// --------------------------------------------------------------------------
// Bufferless model
// --------------------------------------------------------------------------

TEST(BufferlessModelTest, PointCostEqualsTotalArea) {
  Rng rng(353);
  auto rects = data::GenerateSyntheticRegion(2000, &rng);
  TreeSummary summary =
      MakeSummary(rects, 20, rtree::LoadAlgorithm::kHilbertSort);
  auto probs = UniformAccessProbabilities(summary, 0.0, 0.0);
  ASSERT_TRUE(probs.ok());
  // All MBRs lie inside the unit square, so the corrected model reduces to
  // the plain sum of areas (EP = A).
  EXPECT_NEAR(ExpectedNodeAccesses(*probs), summary.TotalArea(), 1e-9);
  EXPECT_NEAR(KamelFaloutsosClosedForm(summary, 0.0, 0.0),
              summary.TotalArea(), 1e-12);
}

TEST(BufferlessModelTest, ClosedFormMatchesEquationTwo) {
  Rng rng(359);
  auto rects = data::GenerateSyntheticRegion(1000, &rng);
  TreeSummary summary =
      MakeSummary(rects, 20, rtree::LoadAlgorithm::kNearestX);
  double qx = 0.03, qy = 0.05;
  double expected = summary.TotalArea() + qx * summary.TotalYExtent() +
                    qy * summary.TotalXExtent() +
                    static_cast<double>(summary.NumNodes()) * qx * qy;
  EXPECT_DOUBLE_EQ(KamelFaloutsosClosedForm(summary, qx, qy), expected);
  // For small queries and small MBRs the corrected model is close to Eq. 2.
  auto probs = UniformAccessProbabilities(summary, qx, qy);
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR(ExpectedNodeAccesses(*probs), expected, expected * 0.12);
}

// --------------------------------------------------------------------------
// Buffer model
// --------------------------------------------------------------------------

TEST(BufferModelTest, DistinctNodesBoundaryValues) {
  std::vector<double> probs = {0.5, 0.25, 1.0, 0.0};
  // D(0) = 0.
  EXPECT_DOUBLE_EQ(ExpectedDistinctNodes(probs, 0.0), 0.0);
  // D(1) = sum of probabilities (paper: D(1) = A).
  EXPECT_NEAR(ExpectedDistinctNodes(probs, 1.0), 1.75, 1e-12);
  // D(inf) -> number of nodes with p > 0.
  EXPECT_NEAR(ExpectedDistinctNodes(probs, 1e9), 3.0, 1e-6);
}

TEST(BufferModelTest, DistinctNodesMonotone) {
  Rng rng(367);
  std::vector<double> probs;
  for (int i = 0; i < 100; ++i) probs.push_back(rng.NextDouble() * 0.2);
  double prev = -1.0;
  for (double n : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0, 1e4, 1e6}) {
    double d = ExpectedDistinctNodes(probs, n);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(BufferModelTest, NStarIsMinimal) {
  Rng rng(373);
  std::vector<double> probs;
  for (int i = 0; i < 200; ++i) probs.push_back(rng.Uniform(0.001, 0.05));
  for (uint64_t b : {1, 5, 20, 100, 150}) {
    uint64_t n_star = QueriesToFillBuffer(probs, b);
    ASSERT_NE(n_star, kNeverFills);
    EXPECT_GE(ExpectedDistinctNodes(probs, static_cast<double>(n_star)),
              static_cast<double>(b));
    if (n_star > 0) {
      EXPECT_LT(
          ExpectedDistinctNodes(probs, static_cast<double>(n_star - 1)),
          static_cast<double>(b));
    }
  }
}

TEST(BufferModelTest, BufferBiggerThanTreeNeverFills) {
  std::vector<double> probs = {0.5, 0.25, 0.1};
  EXPECT_EQ(QueriesToFillBuffer(probs, 3), kNeverFills);
  EXPECT_EQ(QueriesToFillBuffer(probs, 10), kNeverFills);
  EXPECT_DOUBLE_EQ(ExpectedDiskAccesses(probs, 10), 0.0);
}

TEST(BufferModelTest, ZeroBufferCostsFullAccesses) {
  std::vector<double> probs = {0.5, 0.25, 0.1};
  EXPECT_DOUBLE_EQ(ExpectedDiskAccesses(probs, 0), 0.85);
}

TEST(BufferModelTest, DiskAccessesDecreaseWithBufferSize) {
  Rng rng(379);
  std::vector<double> probs;
  for (int i = 0; i < 500; ++i) probs.push_back(rng.Uniform(0.0005, 0.1));
  double prev = ExpectedNodeAccesses(probs) + 1.0;
  for (uint64_t b : {0, 1, 10, 50, 100, 200, 400, 499}) {
    double ed = ExpectedDiskAccesses(probs, b);
    EXPECT_LE(ed, prev + 1e-9) << "buffer " << b;
    EXPECT_GE(ed, 0.0);
    prev = ed;
  }
}

TEST(BufferModelTest, ContinuousNStarSolvesDistinctNodesExactly) {
  Rng rng(375);
  std::vector<double> probs;
  for (int i = 0; i < 300; ++i) probs.push_back(rng.Uniform(0.001, 0.05));
  for (uint64_t b : {1, 10, 100, 250}) {
    double n_real = QueriesToFillBufferReal(probs, b);
    ASSERT_FALSE(std::isinf(n_real));
    EXPECT_NEAR(ExpectedDistinctNodes(probs, n_real),
                static_cast<double>(b), 1e-6);
    // The integer N* brackets the continuous solution from above.
    uint64_t n_int = QueriesToFillBuffer(probs, b);
    EXPECT_LE(n_real, static_cast<double>(n_int));
    EXPECT_GT(n_real, static_cast<double>(n_int) - 1.0);
  }
}

TEST(BufferModelTest, ContinuousModelBoundsIntegerModelFromAbove) {
  // Rounding N* up can only shrink (1-p)^N, so the integer model never
  // exceeds the continuous one; they agree when the buffer never fills.
  Rng rng(377);
  std::vector<double> probs;
  for (int i = 0; i < 300; ++i) probs.push_back(rng.Uniform(0.001, 0.05));
  for (uint64_t b : {1, 5, 50, 150, 299, 400}) {
    double integer = ExpectedDiskAccesses(probs, b);
    double continuous = ExpectedDiskAccessesContinuous(probs, b);
    EXPECT_GE(continuous + 1e-12, integer) << "buffer " << b;
    // They differ by at most one query's worth of decay.
    EXPECT_LT(continuous - integer, 0.2 * ExpectedNodeAccesses(probs) + 1e-9);
  }
  EXPECT_DOUBLE_EQ(ExpectedDiskAccessesContinuous(probs, 300), 0.0);
}

TEST(BufferModelTest, AlwaysAccessedNodeCostsNothingSteadyState) {
  // A node with p = 1 (e.g. root under data-driven queries) is accessed
  // every query, so it is always resident once warm.
  std::vector<double> probs = {1.0, 0.01, 0.02, 0.03};
  double ed = ExpectedDiskAccesses(probs, 2);
  EXPECT_LT(ed, 0.07);  // Only the small-probability nodes contribute.
}

// --------------------------------------------------------------------------
// Pinning model
// --------------------------------------------------------------------------

class PinningModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(383);
    rects_ = data::GenerateUniformPoints(40000, &rng);
    MemPageStore store;
    auto built = rtree::BuildRTree(&store,
                                   rtree::RTreeConfig::WithFanout(25), rects_,
                                   rtree::LoadAlgorithm::kHilbertSort);
    ASSERT_TRUE(built.ok());
    auto summary = TreeSummary::Extract(&store, built->root);
    ASSERT_TRUE(summary.ok());
    summary_ = std::make_unique<TreeSummary>(*summary);
    auto probs = UniformAccessProbabilities(*summary_, 0.0, 0.0);
    ASSERT_TRUE(probs.ok());
    probs_ = *probs;
  }

  std::vector<Rect> rects_;
  std::unique_ptr<TreeSummary> summary_;
  std::vector<double> probs_;
};

TEST_F(PinningModelTest, ZeroLevelsMatchesPlainModel) {
  auto result = ExpectedDiskAccessesPinned(*summary_, probs_, 200, 0);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.disk_accesses,
                   ExpectedDiskAccesses(probs_, 200));
  EXPECT_EQ(result.pinned_pages, 0u);
}

TEST_F(PinningModelTest, PinnedPageCountsFollowTable2) {
  // Tree levels root-down: 1, 3, 64, 1600.
  EXPECT_EQ(ExpectedDiskAccessesPinned(*summary_, probs_, 2000, 1)
                .pinned_pages,
            1u);
  EXPECT_EQ(ExpectedDiskAccessesPinned(*summary_, probs_, 2000, 2)
                .pinned_pages,
            4u);
  EXPECT_EQ(ExpectedDiskAccessesPinned(*summary_, probs_, 2000, 3)
                .pinned_pages,
            68u);
}

TEST_F(PinningModelTest, InfeasibleWhenPinnedExceedsBuffer) {
  auto result = ExpectedDiskAccessesPinned(*summary_, probs_, 3, 2);
  EXPECT_FALSE(result.feasible);
}

TEST_F(PinningModelTest, PinningNeverHurts) {
  // "Pinning never hurts performance" (Section 5.5) — for every feasible
  // buffer size and level count, pinned ED <= unpinned ED (up to numeric
  // noise).
  for (uint64_t buffer : {80, 200, 500, 1000}) {
    double unpinned = ExpectedDiskAccesses(probs_, buffer);
    for (uint16_t levels = 1; levels <= 3; ++levels) {
      auto pinned =
          ExpectedDiskAccessesPinned(*summary_, probs_, buffer, levels);
      if (!pinned.feasible) continue;
      EXPECT_LE(pinned.disk_accesses, unpinned + 1e-9)
          << "buffer " << buffer << " levels " << levels;
    }
  }
}

TEST_F(PinningModelTest, PinningWholeTreeIsFree) {
  auto result = ExpectedDiskAccessesPinned(*summary_, probs_, 1700, 4);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.pinned_pages, 1668u);
  EXPECT_DOUBLE_EQ(result.disk_accesses, 0.0);
}

TEST(PredictTest, OneCallConvenience) {
  Rng rng(389);
  auto rects = data::GenerateSyntheticRegion(1000, &rng);
  TreeSummary summary =
      MakeSummary(rects, 20, rtree::LoadAlgorithm::kHilbertSort);
  auto ed = PredictDiskAccesses(summary, QuerySpec::UniformPoint(), 20);
  ASSERT_TRUE(ed.ok());
  EXPECT_GT(*ed, 0.0);
  auto centers = data::Centers(rects);
  auto ed2 = PredictDiskAccesses(summary, QuerySpec::DataDrivenRegion(0.01, 0.01),
                                 20, &centers);
  ASSERT_TRUE(ed2.ok());
  EXPECT_GT(*ed2, 0.0);
}

}  // namespace
}  // namespace rtb::model
