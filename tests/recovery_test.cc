// Crash recovery of the durable write path (storage/wal.h +
// FilePageStore::OpenWithRecovery):
//
//   * unit redo/undo — a committed after-image that never reached the store
//     is replayed; an uncommitted stolen page is rolled back through its
//     before-image; a garbage log tail is discarded;
//   * the crash-point property — a deterministic mixed insert/delete
//     workload is crashed at EVERY I/O operation (store reads, writes,
//     allocations, syncs, and WAL sync points share one CrashClock budget),
//     with torn page and torn log writes mixed in. After every crash,
//     OpenWithRecovery must produce a structurally valid tree whose
//     leaf-entry set equals the workload state at the commit boundary the
//     durable log prefix ends on — never a torn hybrid of two batches.
//
// Runs with the DurableSync seam off; a "durable" byte here is a byte that
// reached the log or store file, which is exactly what the simulated crash
// (failing the process, not the kernel) preserves.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/rtb.h"
#include "rtree/update_batch.h"
#include "rtree/validate.h"
#include "storage/fault_injection.h"
#include "storage/file_page_store.h"
#include "storage/wal.h"

namespace rtb::rtree {
namespace {

using geom::Rect;
using storage::BufferPool;
using storage::CrashClock;
using storage::CrashWalHook;
using storage::FaultInjectingPageStore;
using storage::FilePageStore;
using storage::PageId;
using storage::WalReader;
using storage::WalRecord;
using storage::WalRecordType;
using storage::WalRecoveryReport;
using storage::WalWriter;

constexpr size_t kPageSize = 512;
constexpr size_t kPoolPages = 8;  // Tiny on purpose: steals mid-batch.

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_durable_ = storage::DurableSyncActive();
    storage::SetDurableSync(false);
  }
  void TearDown() override { storage::SetDurableSync(was_durable_); }

  std::string Path(const char* name) {
    return ::testing::TempDir() + "/rtb_rec_" + std::to_string(::getpid()) +
           "_" + name;
  }

  bool was_durable_ = false;
};

std::vector<uint8_t> PageBytes(uint8_t seed) {
  std::vector<uint8_t> out(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) {
    out[i] = static_cast<uint8_t>(seed + i);
  }
  return out;
}

TEST_F(RecoveryTest, OpenWithRecoveryWithoutALogIsAPlainOpen) {
  const std::string path = Path("no_log");
  auto store = FilePageStore::Create(path, kPageSize);
  ASSERT_TRUE(store.ok());
  const std::vector<uint8_t> content = PageBytes(1);
  ASSERT_TRUE((*store)->Allocate().ok());
  ASSERT_TRUE((*store)->Write(0, content.data()).ok());
  ASSERT_TRUE((*store)->Close().ok());

  WalRecoveryReport report;
  auto reopened = FilePageStore::OpenWithRecovery(path, path + ".wal",
                                                  &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(report.wal_found);
  std::vector<uint8_t> read(kPageSize);
  ASSERT_TRUE((*reopened)->Read(0, read.data()).ok());
  EXPECT_EQ(read, content);
  ASSERT_TRUE((*reopened)->Close().ok());
}

TEST_F(RecoveryTest, RedoesACommittedImageTheStoreNeverSaw) {
  const std::string path = Path("redo");
  auto store = FilePageStore::Create(path, kPageSize);
  ASSERT_TRUE(store.ok());
  const std::vector<uint8_t> old_content = PageBytes(10);
  const std::vector<uint8_t> new_content = PageBytes(200);
  ASSERT_TRUE((*store)->Allocate().ok());
  ASSERT_TRUE((*store)->Write(0, old_content.data()).ok());
  ASSERT_TRUE((*store)->Sync().ok());

  auto wal = WalWriter::Create(path + ".wal");  // Window 1: commit forces.
  ASSERT_TRUE(wal.ok());
  (*wal)->AppendPageImage(0, new_content.data(), kPageSize);
  ASSERT_TRUE((*wal)->Commit(1).ok());
  // Crash before the no-force pool would ever have written the page: the
  // store still holds the old bytes, only the log has the new ones.
  (*store)->Abandon();
  wal->reset();

  WalRecoveryReport report;
  auto recovered = FilePageStore::OpenWithRecovery(path, path + ".wal",
                                                   &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.wal_found);
  EXPECT_EQ(report.redo_pages, 1u);
  EXPECT_EQ(report.undo_pages, 0u);
  std::vector<uint8_t> read(kPageSize);
  ASSERT_TRUE((*recovered)->Read(0, read.data()).ok());
  EXPECT_EQ(read, new_content);
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST_F(RecoveryTest, UndoesAnUncommittedStolenPage) {
  const std::string path = Path("undo");
  auto store = FilePageStore::Create(path, kPageSize);
  ASSERT_TRUE(store.ok());
  const std::vector<uint8_t> committed = PageBytes(30);
  const std::vector<uint8_t> stolen = PageBytes(140);
  ASSERT_TRUE((*store)->Allocate().ok());
  ASSERT_TRUE((*store)->Write(0, committed.data()).ok());
  ASSERT_TRUE((*store)->Sync().ok());

  auto wal = WalWriter::Create(path + ".wal");
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Checkpoint(1).ok());
  // The steal protocol, by hand: before-image at first dirtying, then the
  // after-image made durable right before the eviction writes the page —
  // and then a crash with no commit in sight.
  (*wal)->AppendBeforeImage(0, committed.data(), kPageSize);
  const storage::Lsn after = (*wal)->AppendPageImage(0, stolen.data(),
                                                     kPageSize);
  ASSERT_TRUE((*wal)->EnsureDurable(after).ok());
  ASSERT_TRUE((*store)->Write(0, stolen.data()).ok());
  (*store)->Abandon();
  wal->reset();

  WalRecoveryReport report;
  auto recovered = FilePageStore::OpenWithRecovery(path, path + ".wal",
                                                   &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.redo_pages, 0u);
  EXPECT_EQ(report.undo_pages, 1u);
  std::vector<uint8_t> read(kPageSize);
  ASSERT_TRUE((*recovered)->Read(0, read.data()).ok());
  EXPECT_EQ(read, committed);  // Rolled back.
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST_F(RecoveryTest, DiscardsAGarbageTailAndTruncatesTheLog) {
  const std::string path = Path("tail");
  auto store = FilePageStore::Create(path, kPageSize);
  ASSERT_TRUE(store.ok());
  const std::vector<uint8_t> content = PageBytes(55);
  ASSERT_TRUE((*store)->Allocate().ok());
  ASSERT_TRUE((*store)->Write(0, content.data()).ok());
  ASSERT_TRUE((*store)->Sync().ok());

  auto wal = WalWriter::Create(path + ".wal");
  ASSERT_TRUE(wal.ok());
  (*wal)->AppendPageImage(0, content.data(), kPageSize);
  ASSERT_TRUE((*wal)->Commit(1).ok());
  ASSERT_TRUE((*wal)->Close().ok());
  {
    // A torn group-commit write: garbage after the last whole record.
    std::FILE* f = std::fopen((path + ".wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[] = "torn torn torn";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  (*store)->Abandon();

  WalRecoveryReport report;
  auto recovered = FilePageStore::OpenWithRecovery(path, path + ".wal",
                                                   &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.tail_torn);
  EXPECT_GT(report.torn_bytes, 0u);
  EXPECT_EQ(report.redo_pages, 1u);
  ASSERT_TRUE((*recovered)->Close().ok());

  // Recovery truncated the log, so a second open has nothing to do.
  WalRecoveryReport second;
  auto again = FilePageStore::OpenWithRecovery(path, path + ".wal", &second);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(second.wal_found);
  EXPECT_FALSE(second.tail_torn);
  EXPECT_EQ(second.records_scanned, 0u);
  ASSERT_TRUE((*again)->Close().ok());
}

// ---------------------------------------------------------------------------
// The crash-point property test.
// ---------------------------------------------------------------------------

Rect ScriptRect(Rng& rng) {
  const double side = 0.004 + rng.NextDouble() * 0.05;
  const double x = rng.NextDouble() * (1.0 - side);
  const double y = rng.NextDouble() * (1.0 - side);
  return Rect(x, y, x + side, y + side);
}

// A deterministic batched workload plus its oracle: the sorted object-id
// set after every committed batch. Delete victims are drawn from entries
// present at batch start (the executor's specified semantics), never from
// same-batch inserts.
struct Script {
  std::vector<std::vector<UpdateOp>> batches;
  std::vector<std::vector<uint64_t>> ids_after;  // [0] = initial empty tree.
};

Script MakeScript(int num_batches, int batch_size, uint64_t seed) {
  Rng rng(seed);
  Script script;
  std::vector<std::pair<uint64_t, Rect>> live;
  uint64_t next_id = 1;
  script.ids_after.emplace_back();
  for (int b = 0; b < num_batches; ++b) {
    std::vector<UpdateOp> ops;
    std::vector<std::pair<uint64_t, Rect>> added;
    std::vector<bool> taken(live.size(), false);
    size_t num_taken = 0;
    for (int k = 0; k < batch_size; ++k) {
      if (rng.NextDouble() < 0.4 && num_taken < live.size()) {
        size_t v = static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(live.size())));
        while (taken[v]) v = (v + 1) % live.size();
        taken[v] = true;
        ++num_taken;
        ops.push_back(UpdateOp::Delete(live[v].second, live[v].first));
      } else {
        const Rect r = ScriptRect(rng);
        ops.push_back(UpdateOp::Insert(r, next_id));
        added.emplace_back(next_id, r);
        ++next_id;
      }
    }
    std::vector<std::pair<uint64_t, Rect>> next_live;
    for (size_t i = 0; i < live.size(); ++i) {
      if (!taken[i]) next_live.push_back(live[i]);
    }
    next_live.insert(next_live.end(), added.begin(), added.end());
    live = std::move(next_live);
    std::vector<uint64_t> ids;
    ids.reserve(live.size());
    for (const auto& [id, rect] : live) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    script.ids_after.push_back(std::move(ids));
    script.batches.push_back(std::move(ops));
  }
  return script;
}

struct CrashCase {
  uint64_t budget = UINT64_MAX;
  bool torn = false;
  uint64_t torn_bytes = 0;
  uint64_t window = 1;
};

struct CrashOutcome {
  bool crashed = false;
  uint64_t ticks_used = 0;    // Meaningful for a clean (uncrashed) run.
  size_t batches_done = 0;
  // Tree meta after batch j (meta[0] = initial tree); on a crash one more
  // entry is appended with the in-memory meta at the crash, which is the
  // batch-complete meta whenever the dying batch's commit record made it
  // into the log (the only case that entry is consulted).
  std::vector<std::pair<PageId, uint16_t>> meta;
};

// Runs the scripted workload against a fresh store + WAL at `path`, with a
// crash armed after setup. On a crash, tears the simulated process down
// the way death does: buffered pages and the dead WAL writer are dropped,
// nothing is flushed, no headers are rewritten.
CrashOutcome RunWorkload(const Script& script, const std::string& path,
                         const CrashCase& cc) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  CrashClock clock;
  CrashWalHook hook(&clock);
  auto store = FilePageStore::Create(path, kPageSize);
  RTB_CHECK(store.ok());
  FaultInjectingPageStore faulty(store->get());
  std::unique_ptr<BufferPool> pool = BufferPool::MakeLru(&faulty, kPoolPages);
  auto tree = RTree::Create(pool.get(), RTreeConfig::WithFanout(8));
  RTB_CHECK(tree.ok());
  WalWriter::Options wopts;
  wopts.group_commit_window = cc.window;
  wopts.fault_hook = &hook;
  auto wal = WalWriter::Create(path + ".wal", wopts);
  RTB_CHECK(wal.ok());
  pool->AttachWal(wal->get());
  RTB_CHECK(pool->WalCheckpoint().ok());  // Durable base: the empty tree.

  CrashOutcome out;
  out.meta.emplace_back(tree->root(), tree->height());

  clock.torn = cc.torn;
  clock.torn_bytes = cc.torn_bytes;
  clock.budget = cc.budget;  // Arm: every I/O from here on ticks.
  faulty.ArmCrash(&clock);

  UpdateBatchExecutor exec(&*tree);
  Status failure = Status::OK();
  for (const std::vector<UpdateOp>& batch : script.batches) {
    failure = exec.Run(batch);
    if (!failure.ok()) break;
    ++out.batches_done;
    out.meta.emplace_back(tree->root(), tree->height());
  }
  if (failure.ok()) {
    // Clean shutdown: checkpoint (flush + store sync + log restart). Under
    // a tight budget the crash can land here too.
    failure = pool->Close();
    if (failure.ok()) failure = (*wal)->Close();
  }
  out.crashed = !failure.ok();
  if (out.crashed) {
    out.meta.emplace_back(tree->root(), tree->height());
    pool->DiscardAll();          // Dirty pages die with the process.
    (void)(*wal)->Close();       // Dead writer; the sticky error is the
    wal->reset();                // crash itself, nothing reaches the log.
    (*store)->Abandon();         // No final header write, no final fsync.
  } else {
    out.ticks_used = cc.budget - clock.budget;
    RTB_CHECK((*store)->Close().ok());
  }
  return out;
}

// What the log's valid prefix says about the durable state.
struct LogSummary {
  bool any_records = false;
  // LSN of the last checkpoint record. The workload writes exactly two
  // checkpoints — at setup (always lsn 1, the log's first record ever) and
  // at clean shutdown (always later) — so this tells them apart.
  storage::Lsn checkpoint_lsn = 0;
  size_t commits_after_checkpoint = 0;
};

LogSummary SummarizeLog(const std::string& wal_path) {
  LogSummary out;
  auto reader = WalReader::Open(wal_path);
  if (!reader.ok()) return out;
  WalRecord rec;
  while ((*reader)->Next(&rec)) {
    out.any_records = true;
    if (rec.type == WalRecordType::kCheckpoint) {
      out.checkpoint_lsn = rec.lsn;
      out.commits_after_checkpoint = 0;
    } else if (rec.type == WalRecordType::kCommit) {
      ++out.commits_after_checkpoint;
    }
  }
  return out;
}

// All leaf object ids of the tree rooted at `root`, read directly from the
// recovered store, sorted for multiset comparison.
std::vector<uint64_t> LeafIds(storage::PageStore* store, PageId root) {
  std::vector<uint64_t> out;
  std::vector<uint8_t> page(store->page_size());
  std::vector<PageId> stack{root};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    RTB_CHECK(store->Read(id, page.data()).ok());
    auto view = NodeView::Create(page.data(), store->page_size());
    RTB_CHECK(view.ok());
    for (uint16_t i = 0; i < view->count(); ++i) {
      if (view->is_leaf()) {
        out.push_back(view->entry(i).id);
      } else {
        stack.push_back(static_cast<PageId>(view->id(i)));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CheckCrashPoint(const Script& script, const std::string& path,
                     const CrashCase& cc) {
  SCOPED_TRACE("budget=" + std::to_string(cc.budget) +
               " torn=" + std::to_string(cc.torn) +
               " torn_bytes=" + std::to_string(cc.torn_bytes) +
               " window=" + std::to_string(cc.window));
  const CrashOutcome out = RunWorkload(script, path, cc);

  const LogSummary log = SummarizeLog(path + ".wal");
  size_t j;
  if (!log.any_records || log.checkpoint_lsn > 1) {
    // The close-time checkpoint got at least as far as truncating the log
    // (record-free file) or writing its record (checkpoint with a
    // post-setup LSN) — either way every batch was flushed and the store
    // header synced before that, so the durable state is the final one.
    ASSERT_EQ(out.batches_done, script.batches.size());
    j = out.batches_done;
  } else {
    // Log still anchored at the setup checkpoint: the durable state is the
    // last batch whose commit record made the valid prefix.
    j = log.commits_after_checkpoint;
  }
  ASSERT_LE(j, out.batches_done + 1);
  ASSERT_LT(j, out.meta.size());

  WalRecoveryReport report;
  auto recovered = FilePageStore::OpenWithRecovery(path, path + ".wal",
                                                   &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  const auto [root, height] = out.meta[j];
  ValidateOptions vopts;
  vopts.check_min_fill = false;  // Condensation mid-history is legitimate.
  const ValidationReport vr = ValidateTree(
      recovered->get(), root, RTreeConfig::WithFanout(8), vopts);
  ASSERT_TRUE(vr.ok) << (vr.issues.empty() ? "no issues" : vr.issues.front());

  EXPECT_EQ(LeafIds(recovered->get(), root), script.ids_after[j])
      << "recovered tree does not match commit boundary " << j;
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST_F(RecoveryTest, EveryCrashPointRecoversToACommittedBoundary) {
  const Script script = MakeScript(/*num_batches=*/12, /*batch_size=*/12,
                                   /*seed=*/1234);
  const std::string path = Path("sweep_w4");
  const CrashOutcome base =
      RunWorkload(script, path, CrashCase{UINT64_MAX, false, 0, 4});
  ASSERT_FALSE(base.crashed);
  ASSERT_EQ(base.batches_done, script.batches.size());
  ASSERT_GT(base.ticks_used, 20u);

  // Crash at every single I/O operation of the deterministic run, with a
  // torn dying write (page- and log-tears alike) every third point.
  for (uint64_t b = 0; b < base.ticks_used; ++b) {
    CrashCase cc;
    cc.budget = b;
    cc.window = 4;
    cc.torn = b % 3 == 0;
    cc.torn_bytes = 1 + (b * 53) % kPageSize;
    CheckCrashPoint(script, path, cc);
  }
}

TEST_F(RecoveryTest, CrashSweepWithForcedCommits) {
  const Script script = MakeScript(/*num_batches=*/6, /*batch_size=*/10,
                                   /*seed=*/77);
  const std::string path = Path("sweep_w1");
  const CrashOutcome base =
      RunWorkload(script, path, CrashCase{UINT64_MAX, false, 0, 1});
  ASSERT_FALSE(base.crashed);

  // Window 1 syncs far more often; sample every other crash point.
  for (uint64_t b = 0; b < base.ticks_used; b += 2) {
    CrashCase cc;
    cc.budget = b;
    cc.window = 1;
    cc.torn = b % 2 == 0;
    cc.torn_bytes = 1 + (b * 131) % (kPageSize / 2);
    CheckCrashPoint(script, path, cc);
  }
}

TEST_F(RecoveryTest, CleanShutdownLeavesNothingToRecover) {
  const Script script = MakeScript(/*num_batches=*/4, /*batch_size=*/8,
                                   /*seed=*/5);
  const std::string path = Path("clean");
  const CrashOutcome out =
      RunWorkload(script, path, CrashCase{UINT64_MAX, false, 0, 8});
  ASSERT_FALSE(out.crashed);

  WalRecoveryReport report;
  auto recovered = FilePageStore::OpenWithRecovery(path, path + ".wal",
                                                   &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(report.wal_found);
  EXPECT_EQ(report.redo_pages, 0u);
  EXPECT_EQ(report.undo_pages, 0u);
  const auto [root, height] = out.meta.back();
  EXPECT_EQ(LeafIds(recovered->get(), root), script.ids_after.back());
  ASSERT_TRUE((*recovered)->Close().ok());
}

}  // namespace
}  // namespace rtb::rtree
