// Tests for the shared report library: the JSON emitter (JsonDict /
// BenchReport, including the nested-object support the engine's run report
// uses) and the JsonValue parser that reads experiment specs. Every
// emitter test round-trips through the parser, so the two halves are
// checked against each other.

#include <string>

#include <gtest/gtest.h>

#include "report/json.h"

namespace rtb::report {
namespace {

TEST(JsonValueTest, ParsesPrimitives) {
  auto v = JsonValue::Parse("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  v = JsonValue::Parse("true");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_bool());
  EXPECT_TRUE(v->boolean());

  v = JsonValue::Parse("false");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->boolean());

  v = JsonValue::Parse("-12.5e2");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_number());
  EXPECT_DOUBLE_EQ(v->number(), -1250.0);

  v = JsonValue::Parse("\"hello\"");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_string());
  EXPECT_EQ(v->str(), "hello");
}

TEST(JsonValueTest, ParsesNestedStructures) {
  auto v = JsonValue::Parse(
      R"({"a": 1, "b": [true, {"c": "x"}], "d": {"e": []}})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->members().size(), 3u);

  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->number(), 1.0);

  const JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array().size(), 2u);
  EXPECT_TRUE(b->array()[0].boolean());
  const JsonValue* c = b->array()[1].Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->str(), "x");

  const JsonValue* e = v->Find("d")->Find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->is_array());
  EXPECT_TRUE(e->array().empty());

  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonValueTest, DecodesStringEscapes) {
  auto v = JsonValue::Parse(R"("a\"b\\c\nd\teAé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str(), "a\"b\\c\nd\teA\xC3\xA9");
}

TEST(JsonValueTest, PreservesMemberOrder) {
  auto v = JsonValue::Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "z");
  EXPECT_EQ(v->members()[1].first, "a");
  EXPECT_EQ(v->members()[2].first, "m");
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("{a: 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad \\x escape\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"trunc \\u00").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("truth").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());
  EXPECT_FALSE(JsonValue::Parse("{} {}").ok());
  EXPECT_FALSE(JsonValue::Parse("1e999").ok());  // Non-finite.
}

TEST(JsonValueTest, ErrorsCarryByteOffsets) {
  auto v = JsonValue::Parse("{\"a\": blob}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("offset 6"), std::string::npos)
      << v.status().ToString();
}

TEST(JsonValueTest, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(JsonValue::Parse(deep).ok());

  std::string shallow = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(JsonValue::Parse(shallow).ok());
}

TEST(JsonDictTest, EmitsAllFieldTypes) {
  JsonDict d;
  d.PutStr("s", "a \"quoted\"\nvalue");
  d.PutNum("n", 0.1);
  d.PutInt("i", 18446744073709551615ull);
  d.PutBool("b", true);
  EXPECT_TRUE(d.Has("s"));
  EXPECT_FALSE(d.Has("missing"));
  EXPECT_EQ(d.size(), 4u);

  auto v = JsonValue::Parse(d.ToString());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("s")->str(), "a \"quoted\"\nvalue");
  EXPECT_DOUBLE_EQ(v->Find("n")->number(), 0.1);
  EXPECT_TRUE(v->Find("b")->boolean());
}

TEST(JsonDictTest, NumbersUseShortestRoundTrip) {
  // Human-readable decimals must print as written, not as their 17-digit
  // expansion (0.03 used to render as 0.029999999999999999).
  JsonDict d;
  d.PutNum("a", 0.03);
  d.PutNum("b", 0.1);
  d.PutNum("c", 12.5);
  d.PutNum("d", 1.0 / 3.0);
  const std::string text = d.ToString();
  EXPECT_NE(text.find("\"a\": 0.03,"), std::string::npos) << text;
  EXPECT_NE(text.find("\"b\": 0.1,"), std::string::npos) << text;
  EXPECT_NE(text.find("\"c\": 12.5,"), std::string::npos) << text;
  EXPECT_EQ(text.find("0.029999999999999999"), std::string::npos) << text;
}

TEST(JsonDictTest, ShortestFormStillRoundTripsExactly) {
  // Whatever the chosen precision, parsing the emitted text must recover
  // the identical double — including values that need all 17 digits.
  const double cases[] = {0.03, 0.1, 1.0 / 3.0, 0.1 + 0.2, 1e-300,
                          123456789.123456789, 2.2250738585072014e-308,
                          -0.0, 6.02214076e23, 0.029999999999999999};
  for (double expected : cases) {
    JsonDict d;
    d.PutNum("v", expected);
    auto v = JsonValue::Parse(d.ToString());
    ASSERT_TRUE(v.ok()) << d.ToString();
    const double got = v->Find("v")->number();
    EXPECT_EQ(got, expected) << d.ToString();
  }
}

TEST(JsonDictTest, NestsDictsAndArrays) {
  JsonDict inner;
  inner.PutInt("x", 1);
  JsonDict a, b;
  a.PutStr("id", "a");
  b.PutStr("id", "b");

  JsonDict doc;
  doc.PutDict("inner", inner);
  doc.PutDictArray("list", {a, b});
  doc.PutDictArray("empty", {});

  auto v = JsonValue::Parse(doc.ToString());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->Find("inner")->Find("x")->number(), 1.0);
  ASSERT_EQ(v->Find("list")->array().size(), 2u);
  EXPECT_EQ(v->Find("list")->array()[1].Find("id")->str(), "b");
  EXPECT_TRUE(v->Find("empty")->array().empty());
}

TEST(BenchReportTest, DocumentParses) {
  BenchReport report("unit");
  report.meta().PutInt("seed", 7);
  JsonDict& cfg = report.AddConfig("base");
  cfg.PutNum("metric", 1.5);
  ASSERT_EQ(report.num_configs(), 1u);

  auto v = JsonValue::Parse(report.ToJson());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("bench")->str(), "unit");
  ASSERT_NE(v->Find("configs"), nullptr);
  ASSERT_EQ(v->Find("configs")->array().size(), 1u);
  EXPECT_EQ(v->Find("configs")->array()[0].Find("config")->str(), "base");
}

}  // namespace
}  // namespace rtb::report
