// Tests for ShardedBufferPool: shard routing and capacity split, serial
// equivalence at one shard, aggregate-stat consistency, and multi-threaded
// hammer tests (run these under -DRTB_SANITIZE=thread to certify the
// locking; see DESIGN.md).

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/sharded_buffer_pool.h"
#include "util/rng.h"

namespace rtb::storage {
namespace {

constexpr size_t kPageSize = 64;

// Allocates `n` pages whose first byte is their id (mod 256).
std::unique_ptr<MemPageStore> MakeStore(int n) {
  auto store = std::make_unique<MemPageStore>(kPageSize);
  for (int i = 0; i < n; ++i) {
    auto id = store->Allocate();
    EXPECT_TRUE(id.ok());
    std::vector<uint8_t> data(kPageSize, 0);
    data[0] = static_cast<uint8_t>(*id);
    EXPECT_TRUE(store->Write(*id, data.data()).ok());
  }
  store->ResetStats();
  return store;
}

TEST(ShardedBufferPoolTest, FetchRoundTripAcrossShards) {
  auto store = MakeStore(64);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 32, 4);
  EXPECT_EQ(pool->num_shards(), 4u);
  EXPECT_EQ(pool->capacity(), 32u);
  for (PageId p = 0; p < 64; ++p) {
    auto g = pool->Fetch(p);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->data()[0], static_cast<uint8_t>(p));
  }
  BufferStats stats = pool->AggregateStats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_EQ(stats.requests, stats.hits + stats.misses);
}

TEST(ShardedBufferPoolTest, ShardCountRoundsDownToPowerOfTwo) {
  auto store = MakeStore(8);
  // 6 requested -> 4 (floor power of two).
  auto pool = ShardedBufferPool::MakeLru(store.get(), 32, 6);
  EXPECT_EQ(pool->num_shards(), 4u);
  // Shards never outnumber frames: capacity 3 caps 16 requested shards at 2.
  auto tiny = ShardedBufferPool::MakeLru(store.get(), 3, 16);
  EXPECT_EQ(tiny->num_shards(), 2u);
  EXPECT_EQ(tiny->capacity(), 3u);
}

TEST(ShardedBufferPoolTest, DefaultShardCountCappedByCapacity) {
  auto store = MakeStore(8);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 4);  // 0 = auto.
  EXPECT_EQ(pool->num_shards(), 4u);
  auto big = ShardedBufferPool::MakeLru(store.get(), 1024);
  EXPECT_EQ(big->num_shards(), ShardedBufferPool::kDefaultShards);
}

TEST(ShardedBufferPoolTest, SingleShardMatchesSerialPoolExactly) {
  // With one shard the pool is a mutex around one BufferPool, so any access
  // sequence produces identical counters to the serial pool.
  auto store_a = MakeStore(32);
  auto store_b = MakeStore(32);
  auto serial = BufferPool::MakeLru(store_a.get(), 8);
  auto sharded = ShardedBufferPool::MakeLru(store_b.get(), 8, 1);
  ASSERT_EQ(sharded->num_shards(), 1u);
  Rng rng(1998);
  for (int step = 0; step < 4000; ++step) {
    PageId p = static_cast<PageId>(rng.UniformInt(32));
    auto ga = serial->Fetch(p);
    auto gb = sharded->Fetch(p);
    ASSERT_TRUE(ga.ok());
    ASSERT_TRUE(gb.ok());
    ASSERT_EQ(ga->data()[0], gb->data()[0]);
  }
  BufferStats a = serial->AggregateStats();
  BufferStats b = sharded->AggregateStats();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(store_a->stats().reads, store_b->stats().reads);
}

TEST(ShardedBufferPoolTest, DirtyPagesWrittenBackThroughShards) {
  auto store = MakeStore(16);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 8, 4);
  for (PageId p = 0; p < 16; ++p) {
    auto g = pool->FetchMutable(p);
    ASSERT_TRUE(g.ok());
    g->mutable_data()[1] = static_cast<uint8_t>(0xA0 + p);
  }
  ASSERT_TRUE(pool->FlushAll().ok());
  ASSERT_TRUE(pool->EvictAll().ok());
  std::vector<uint8_t> buf(kPageSize);
  for (PageId p = 0; p < 16; ++p) {
    ASSERT_TRUE(store->Read(p, buf.data()).ok());
    EXPECT_EQ(buf[1], static_cast<uint8_t>(0xA0 + p)) << "page " << p;
    EXPECT_FALSE(pool->Contains(p));
  }
}

TEST(ShardedBufferPoolTest, NewPageRoutesToOwningShard) {
  auto store = MakeStore(0);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 16, 4);
  std::set<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    auto g = pool->NewPage();
    ASSERT_TRUE(g.ok());
    g->mutable_data()[0] = static_cast<uint8_t>(g->page_id());
    ids.insert(g->page_id());
  }
  EXPECT_EQ(ids.size(), 8u);  // Distinct ids.
  ASSERT_TRUE(pool->FlushAll().ok());
  std::vector<uint8_t> buf(kPageSize);
  for (PageId p : ids) {
    ASSERT_TRUE(store->Read(p, buf.data()).ok());
    EXPECT_EQ(buf[0], static_cast<uint8_t>(p));
  }
}

TEST(ShardedBufferPoolTest, PermanentPinsSurvivePressureAndEvictAll) {
  auto store = MakeStore(64);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 16, 4);
  ASSERT_TRUE(pool->PinPermanently(0).ok());
  ASSERT_TRUE(pool->PinPermanently(1).ok());
  EXPECT_EQ(pool->num_permanent_pins(), 2u);
  for (PageId p = 2; p < 64; ++p) {
    auto g = pool->Fetch(p);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_TRUE(pool->Contains(0));
  EXPECT_TRUE(pool->Contains(1));
  ASSERT_TRUE(pool->EvictAll().ok());
  EXPECT_TRUE(pool->Contains(0));
  EXPECT_TRUE(pool->Contains(1));
  ASSERT_TRUE(pool->UnpinPermanently(0).ok());
  ASSERT_TRUE(pool->UnpinPermanently(1).ok());
  EXPECT_EQ(pool->num_permanent_pins(), 0u);
}

TEST(ShardedBufferPoolTest, ShardStatsSumToAggregate) {
  auto store = MakeStore(64);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 16, 4);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto g = pool->Fetch(static_cast<PageId>(rng.UniformInt(64)));
    ASSERT_TRUE(g.ok());
  }
  BufferStats sum;
  for (const BufferStats& s : pool->ShardStats()) sum += s;
  BufferStats agg = pool->AggregateStats();
  EXPECT_EQ(sum.requests, agg.requests);
  EXPECT_EQ(sum.hits, agg.hits);
  EXPECT_EQ(sum.misses, agg.misses);
  EXPECT_EQ(sum.evictions, agg.evictions);
  EXPECT_EQ(agg.requests, 1000u);
  pool->ResetStats();
  EXPECT_EQ(pool->AggregateStats().requests, 0u);
}

// --------------------------------------------------------------------------
// Concurrency hammer tests. Thread counts deliberately exceed hardware
// concurrency so the scheduler forces interleavings even on small machines.
// --------------------------------------------------------------------------

TEST(ShardedBufferPoolConcurrencyTest, ConcurrentFetchReleaseCountsAreExact) {
  constexpr int kPages = 256;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  auto store = MakeStore(kPages);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 128, 8);

  // A couple of permanently pinned "root" pages, touched by every thread.
  ASSERT_TRUE(pool->PinPermanently(0).ok());
  ASSERT_TRUE(pool->PinPermanently(1).ok());
  // Pinning itself fetches; start the ledger after it.
  pool->ResetStats();
  store->ResetStats();

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        PageId p = static_cast<PageId>(rng.UniformInt(kPages));
        auto g = pool->Fetch(p);
        if (!g.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Read under the pin; the first byte is the page id.
        if (g->data()[0] != static_cast<uint8_t>(p)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 3 == 0) g->Release();  // Otherwise released by destructor.
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  // After the join, the merged ledger must balance exactly: every request
  // is either a hit or a miss, and every miss hit the store.
  BufferStats stats = pool->AggregateStats();
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.requests, stats.hits + stats.misses);
  EXPECT_EQ(stats.misses, store->stats().reads);
  // Pinned pages were never evicted under contention.
  EXPECT_TRUE(pool->Contains(0));
  EXPECT_TRUE(pool->Contains(1));
  EXPECT_EQ(pool->num_permanent_pins(), 2u);
}

TEST(ShardedBufferPoolConcurrencyTest, ConcurrentWritersToDisjointPages) {
  // Each thread mutates its own page range through the shared pool; after a
  // flush the store must hold every thread's last write (this would race —
  // and TSan would flag it — if pins or the shard locks were broken).
  constexpr int kThreads = 8;
  constexpr int kPagesPerThread = 16;
  constexpr int kRounds = 500;
  auto store = MakeStore(kThreads * kPagesPerThread);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 64, 8);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      Rng rng(50 + static_cast<uint64_t>(t));
      for (int i = 0; i < kRounds; ++i) {
        PageId p = static_cast<PageId>(
            t * kPagesPerThread +
            static_cast<int>(rng.UniformInt(kPagesPerThread)));
        auto g = pool->FetchMutable(p);
        ASSERT_TRUE(g.ok());
        g->mutable_data()[2] = static_cast<uint8_t>(t + 1);
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_TRUE(pool->FlushAll().ok());
  std::vector<uint8_t> buf(kPageSize);
  for (int t = 0; t < kThreads; ++t) {
    // Every page a thread touched carries that thread's tag or is untouched.
    for (int i = 0; i < kPagesPerThread; ++i) {
      PageId p = static_cast<PageId>(t * kPagesPerThread + i);
      ASSERT_TRUE(store->Read(p, buf.data()).ok());
      EXPECT_TRUE(buf[2] == 0 || buf[2] == static_cast<uint8_t>(t + 1))
          << "page " << p << " tagged by wrong thread: " << int{buf[2]};
    }
  }
}

TEST(ShardedBufferPoolConcurrencyTest, GuardsReleasableOnOtherThreads) {
  // PageGuards may migrate across threads: pins are atomic and release
  // re-takes the owning shard's lock, so handing a guard to another thread
  // to drop is safe.
  auto store = MakeStore(32);
  auto pool = ShardedBufferPool::MakeLru(store.get(), 16, 4);
  std::vector<PageGuard> guards;
  for (PageId p = 0; p < 8; ++p) {
    auto g = pool->Fetch(p);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(*g));
  }
  std::thread releaser([&guards] {
    for (auto& g : guards) g.Release();
  });
  releaser.join();
  // All pins dropped: EvictAll succeeds (it refuses while guards are held).
  EXPECT_TRUE(pool->EvictAll().ok());
}

}  // namespace
}  // namespace rtb::storage
