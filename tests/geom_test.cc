// Tests for the geometry kernel: Rect operations, the paper's expansion
// constructions, the Hilbert curve, and PointGrid range counting.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "geom/hilbert.h"
#include "geom/point.h"
#include "geom/point_grid.h"
#include "geom/rect.h"
#include "util/rng.h"

namespace rtb::geom {
namespace {

Rect RandomRect(Rng* rng) {
  double x0 = rng->NextDouble(), x1 = rng->NextDouble();
  double y0 = rng->NextDouble(), y1 = rng->NextDouble();
  return Rect(std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
              std::max(y0, y1));
}

// --------------------------------------------------------------------------
// Rect basics
// --------------------------------------------------------------------------

TEST(RectTest, AreaAndPerimeter) {
  Rect r(0.1, 0.2, 0.5, 0.8);
  EXPECT_DOUBLE_EQ(r.Area(), 0.4 * 0.6);
  EXPECT_DOUBLE_EQ(r.Perimeter(), 2.0 * (0.4 + 0.6));
  EXPECT_DOUBLE_EQ(r.XExtent(), 0.4);
  EXPECT_DOUBLE_EQ(r.YExtent(), 0.6);
}

TEST(RectTest, EmptyRect) {
  Rect e = Rect::Empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Intersects(Rect::UnitSquare()));
  EXPECT_FALSE(e.Contains(Point{0.5, 0.5}));
}

TEST(RectTest, DegeneratePointRectIsValid) {
  Rect p = Rect::FromPoint(Point{0.3, 0.7});
  EXPECT_FALSE(p.is_empty());
  EXPECT_EQ(p.Area(), 0.0);
  EXPECT_TRUE(p.Contains(Point{0.3, 0.7}));
  EXPECT_TRUE(p.Intersects(Rect(0.0, 0.0, 0.3, 0.7)));  // Corner touch.
}

TEST(RectTest, ContainsPointBoundaryInclusive) {
  Rect r(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(r.Contains(Point{0.0, 0.0}));
  EXPECT_TRUE(r.Contains(Point{1.0, 1.0}));
  EXPECT_FALSE(r.Contains(Point{1.0000001, 0.5}));
}

TEST(RectTest, ContainsRect) {
  Rect outer(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(outer.Contains(Rect(0.2, 0.2, 0.8, 0.8)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect(0.5, 0.5, 1.1, 0.9)));
  EXPECT_TRUE(outer.Contains(Rect::Empty()));
  EXPECT_FALSE(Rect::Empty().Contains(outer));
}

TEST(RectTest, IntersectsSymmetricAndEdgeTouching) {
  Rect a(0.0, 0.0, 0.5, 0.5);
  Rect b(0.5, 0.5, 1.0, 1.0);  // Touches at one corner.
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  Rect c(0.6, 0.0, 1.0, 0.4);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(RectTest, UnionIsSmallestEnclosing) {
  Rect a(0.1, 0.1, 0.3, 0.3);
  Rect b(0.2, 0.0, 0.6, 0.2);
  Rect u = Union(a, b);
  EXPECT_EQ(u, Rect(0.1, 0.0, 0.6, 0.3));
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
}

TEST(RectTest, UnionWithEmptyIsIdentity) {
  Rect a(0.1, 0.1, 0.3, 0.3);
  EXPECT_EQ(Union(a, Rect::Empty()), a);
  EXPECT_EQ(Union(Rect::Empty(), a), a);
}

TEST(RectTest, IntersectionOfOverlapping) {
  Rect a(0.0, 0.0, 0.5, 0.5);
  Rect b(0.25, 0.25, 1.0, 1.0);
  EXPECT_EQ(Intersection(a, b), Rect(0.25, 0.25, 0.5, 0.5));
  EXPECT_TRUE(Intersection(a, Rect(0.6, 0.6, 1.0, 1.0)).is_empty());
}

TEST(RectTest, EnlargementZeroWhenContained) {
  Rect base(0.0, 0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(Enlargement(base, Rect(0.2, 0.2, 0.4, 0.4)), 0.0);
  EXPECT_GT(Enlargement(Rect(0.0, 0.0, 0.5, 0.5), Rect(0.9, 0.9, 1.0, 1.0)),
            0.0);
}

TEST(RectTest, ExtendTopRightMatchesPaperConstruction) {
  // Fig. 2: Q intersects R iff Q's top-right corner is inside R extended by
  // qx, qy beyond its top-right corner.
  Rng rng(41);
  for (int trial = 0; trial < 2000; ++trial) {
    Rect r = RandomRect(&rng);
    double qx = rng.Uniform(0.0, 0.4), qy = rng.Uniform(0.0, 0.4);
    double tx = rng.NextDouble(), ty = rng.NextDouble();
    Rect query(tx - qx, ty - qy, tx, ty);
    Rect extended = ExtendTopRight(r, qx, qy);
    EXPECT_EQ(query.Intersects(r), extended.Contains(Point{tx, ty}))
        << "trial " << trial;
  }
}

TEST(RectTest, ExpandAboutCenterMatchesPaperConstruction) {
  // Fig. 4: a qx x qy query centered at c intersects R iff c is inside R
  // expanded by qx (resp. qy) about its center.
  Rng rng(43);
  for (int trial = 0; trial < 2000; ++trial) {
    Rect r = RandomRect(&rng);
    double qx = rng.Uniform(0.0, 0.4), qy = rng.Uniform(0.0, 0.4);
    Point c{rng.NextDouble(), rng.NextDouble()};
    Rect query(c.x - qx / 2, c.y - qy / 2, c.x + qx / 2, c.y + qy / 2);
    Rect expanded = ExpandAboutCenter(r, qx, qy);
    EXPECT_EQ(query.Intersects(r), expanded.Contains(c)) << "trial " << trial;
  }
}

TEST(RectTest, CenterIsMidpoint) {
  Rect r(0.2, 0.4, 0.6, 1.0);
  EXPECT_DOUBLE_EQ(r.Center().x, 0.4);
  EXPECT_DOUBLE_EQ(r.Center().y, 0.7);
}

// Property sweep: union is commutative, associative, and monotone.
TEST(RectPropertyTest, UnionAlgebra) {
  Rng rng(47);
  for (int trial = 0; trial < 500; ++trial) {
    Rect a = RandomRect(&rng), b = RandomRect(&rng), c = RandomRect(&rng);
    EXPECT_EQ(Union(a, b), Union(b, a));
    EXPECT_EQ(Union(Union(a, b), c), Union(a, Union(b, c)));
    EXPECT_GE(Union(a, b).Area(), std::max(a.Area(), b.Area()));
  }
}

// --------------------------------------------------------------------------
// Hilbert curve
// --------------------------------------------------------------------------

class HilbertOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(HilbertOrderTest, BijectionOnFullGrid) {
  const int order = GetParam();
  HilbertCurve2D curve(order);
  if (curve.num_cells() > 1u << 16) GTEST_SKIP() << "grid too large";
  std::vector<bool> seen(curve.num_cells(), false);
  for (uint32_t x = 0; x < curve.side(); ++x) {
    for (uint32_t y = 0; y < curve.side(); ++y) {
      uint64_t d = curve.XYToIndex(x, y);
      ASSERT_LT(d, curve.num_cells());
      ASSERT_FALSE(seen[d]) << "duplicate index " << d;
      seen[d] = true;
      uint32_t rx, ry;
      curve.IndexToXY(d, &rx, &ry);
      ASSERT_EQ(rx, x);
      ASSERT_EQ(ry, y);
    }
  }
}

TEST_P(HilbertOrderTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of the Hilbert curve: it visits every cell once
  // and consecutive cells are 4-adjacent.
  const int order = GetParam();
  HilbertCurve2D curve(order);
  if (curve.num_cells() > 1u << 16) GTEST_SKIP() << "grid too large";
  uint32_t px, py;
  curve.IndexToXY(0, &px, &py);
  for (uint64_t d = 1; d < curve.num_cells(); ++d) {
    uint32_t x, y;
    curve.IndexToXY(d, &x, &y);
    uint32_t manhattan = (x > px ? x - px : px - x) +
                         (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertOrderTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(HilbertTest, HighOrderRoundTripSampled) {
  HilbertCurve2D curve(16);
  Rng rng(53);
  for (int i = 0; i < 5000; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.UniformInt(curve.side()));
    uint32_t y = static_cast<uint32_t>(rng.UniformInt(curve.side()));
    uint64_t d = curve.XYToIndex(x, y);
    uint32_t rx, ry;
    curve.IndexToXY(d, &rx, &ry);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
  }
}

TEST(HilbertTest, PointToIndexHandlesBoundaries) {
  HilbertCurve2D curve(8);
  // Clamped corners must be valid indices.
  EXPECT_LT(curve.PointToIndex(Point{0.0, 0.0}), curve.num_cells());
  EXPECT_LT(curve.PointToIndex(Point{1.0, 1.0}), curve.num_cells());
  EXPECT_LT(curve.PointToIndex(Point{-3.0, 5.0}), curve.num_cells());
}

TEST(HilbertTest, NearPairsCloserOnCurveThanRandomPairs) {
  // The HS loader relies on the curve's locality: points that are close in
  // the plane are, on average, far closer along the curve than arbitrary
  // point pairs. (The converse need not hold, so this compares medians of
  // near pairs vs random pairs.)
  HilbertCurve2D curve(10);
  Rng rng(59);
  const int n = 3000;
  std::vector<double> near_gaps, random_gaps;
  for (int i = 0; i < n; ++i) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    Point q{std::clamp(p.x + 0.002, 0.0, 1.0),
            std::clamp(p.y + 0.002, 0.0, 1.0)};
    Point r{rng.NextDouble(), rng.NextDouble()};
    near_gaps.push_back(
        std::abs(static_cast<double>(curve.PointToIndex(p)) -
                 static_cast<double>(curve.PointToIndex(q))));
    random_gaps.push_back(
        std::abs(static_cast<double>(curve.PointToIndex(p)) -
                 static_cast<double>(curve.PointToIndex(r))));
  }
  auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  EXPECT_LT(median(near_gaps) * 100.0, median(random_gaps));
}

// --------------------------------------------------------------------------
// PointGrid
// --------------------------------------------------------------------------

uint64_t NaiveCount(const std::vector<Point>& points, const Rect& r) {
  uint64_t c = 0;
  for (const Point& p : points) {
    if (r.Contains(p)) ++c;
  }
  return c;
}

TEST(PointGridTest, MatchesNaiveCountOnRandomQueries) {
  Rng rng(61);
  std::vector<Point> points;
  for (int i = 0; i < 5000; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  PointGrid grid(points);
  for (int trial = 0; trial < 500; ++trial) {
    Rect r = RandomRect(&rng);
    ASSERT_EQ(grid.CountInRect(r), NaiveCount(points, r)) << "trial " << trial;
  }
}

TEST(PointGridTest, MatchesNaiveOnClusteredPoints) {
  Rng rng(67);
  std::vector<Point> points;
  for (int i = 0; i < 3000; ++i) {
    // Tight cluster plus sparse background.
    if (i % 10 == 0) {
      points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    } else {
      points.push_back(Point{0.5 + rng.NextGaussian() * 0.01,
                             0.5 + rng.NextGaussian() * 0.01});
    }
  }
  PointGrid grid(points);
  for (int trial = 0; trial < 300; ++trial) {
    Rect r = RandomRect(&rng);
    ASSERT_EQ(grid.CountInRect(r), NaiveCount(points, r));
  }
  // Tiny rectangles around the cluster center exercise boundary cells.
  for (int trial = 0; trial < 300; ++trial) {
    double cx = 0.5 + rng.NextGaussian() * 0.01;
    double cy = 0.5 + rng.NextGaussian() * 0.01;
    Rect r(cx - 0.003, cy - 0.003, cx + 0.003, cy + 0.003);
    ASSERT_EQ(grid.CountInRect(r), NaiveCount(points, r));
  }
}

// Exactness must hold for any grid resolution, including degenerate ones.
class PointGridResolutionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PointGridResolutionTest, ExactAtAnyResolution) {
  Rng rng(68 + GetParam());
  std::vector<Point> points;
  for (int i = 0; i < 1500; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  PointGrid grid(points, GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    Rect r = RandomRect(&rng);
    ASSERT_EQ(grid.CountInRect(r), NaiveCount(points, r))
        << "resolution " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, PointGridResolutionTest,
                         ::testing::Values(1, 2, 3, 7, 64, 500));

TEST(PointGridTest, QueriesBeyondBoundsAndEmpty) {
  std::vector<Point> points = {{0.5, 0.5}, {0.25, 0.75}};
  PointGrid grid(points);
  EXPECT_EQ(grid.CountInRect(Rect(-5, -5, 5, 5)), 2u);
  EXPECT_EQ(grid.CountInRect(Rect(2, 2, 3, 3)), 0u);
  EXPECT_EQ(grid.CountInRect(Rect::Empty()), 0u);
}

TEST(PointGridTest, DegenerateAllCollinear) {
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back(Point{0.5, i / 100.0});
  }
  PointGrid grid(points);
  EXPECT_EQ(grid.CountInRect(Rect(0.5, 0.0, 0.5, 1.0)), 100u);
  EXPECT_EQ(grid.CountInRect(Rect(0.4, 0.0, 0.45, 1.0)), 0u);
  EXPECT_EQ(grid.CountInRect(Rect(0.0, 0.0, 1.0, 0.495)), 50u);
}

TEST(PointGridTest, ExplicitCellCounts) {
  std::vector<Point> points = {{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5},
                               {0.5, 0.5}, {0.500001, 0.5}};
  PointGrid grid(points, 4);
  EXPECT_EQ(grid.CountInRect(Rect(0.45, 0.45, 0.55, 0.55)), 3u);
  EXPECT_EQ(grid.CountInRect(Rect(0.0, 0.0, 0.2, 0.2)), 1u);
  EXPECT_EQ(grid.CountInRect(Rect(0.0, 0.0, 1.0, 1.0)), 5u);
}

}  // namespace
}  // namespace rtb::geom
