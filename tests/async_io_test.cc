// Tests for the async read engine (storage/async_io.h) and the staged
// two-phase multi-get it powers (PageCache::BeginFetchBatch /
// FinishFetchBatch): correct bytes through every backend, BufferStats
// byte-identity with the synchronous FetchBatch path, error propagation
// with full pin unwind, abandoned batches leaking nothing, and identical
// query results from the double-buffered batch executor. Runs under the
// `async` ctest label twice — RTB_ASYNC_IO=sync and =1 — so both sides of
// the runtime seam stay honest.

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "rtree/batch.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::storage {
namespace {

using geom::Rect;

// Restores the seam state on scope exit so tests compose in one process.
class AsyncIoGuard {
 public:
  explicit AsyncIoGuard(bool on) : was_(AsyncIoActive()) { SetAsyncIo(on); }
  ~AsyncIoGuard() { SetAsyncIo(was_); }

 private:
  bool was_;
};

// A store of `pages` pages; page p is filled with byte p.
std::unique_ptr<MemPageStore> MakeFilledStore(size_t pages,
                                              size_t page_size = 64) {
  auto store = std::make_unique<MemPageStore>(page_size);
  std::vector<uint8_t> buf(page_size);
  for (size_t p = 0; p < pages; ++p) {
    auto id = store->Allocate();
    EXPECT_TRUE(id.ok());
    std::fill(buf.begin(), buf.end(), static_cast<uint8_t>(p));
    EXPECT_TRUE(store->Write(*id, buf.data()).ok());
  }
  return store;
}

TEST(AsyncReadEngineTest, ReadsPagesIntoDestinations) {
  if (!AsyncIoAvailable()) GTEST_SKIP() << "engine not compiled";
  auto store = MakeFilledStore(8);
  std::vector<uint8_t> dst(3 * store->page_size());
  std::vector<AsyncReadEngine::Request> reqs;
  // Deliberately unsorted: the engine sorts by page id internally, but must
  // land each page in its request's destination.
  reqs.push_back({5, dst.data()});
  reqs.push_back({1, dst.data() + store->page_size()});
  reqs.push_back({7, dst.data() + 2 * store->page_size()});
  auto job = AsyncReadEngine::Instance().Submit(store.get(), std::move(reqs));
  ASSERT_TRUE(AsyncReadEngine::Instance().Wait(job).ok());
  EXPECT_EQ(dst[0], 5);
  EXPECT_EQ(dst[store->page_size()], 1);
  EXPECT_EQ(dst[2 * store->page_size()], 7);
}

TEST(AsyncReadEngineTest, WaitSurfacesReadError) {
  if (!AsyncIoAvailable()) GTEST_SKIP() << "engine not compiled";
  auto base = MakeFilledStore(4);
  FaultInjectingPageStore store(base.get());
  store.FailPage(2, Status::IoError("bad sector"));
  std::vector<uint8_t> dst(2 * store.page_size());
  std::vector<AsyncReadEngine::Request> reqs;
  reqs.push_back({1, dst.data()});
  reqs.push_back({2, dst.data() + store.page_size()});
  auto job = AsyncReadEngine::Instance().Submit(&store, std::move(reqs));
  Status s = AsyncReadEngine::Instance().Wait(job);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(AsyncReadEngineTest, StatsCountJobsAndPages) {
  if (!AsyncIoAvailable()) GTEST_SKIP() << "engine not compiled";
  auto store = MakeFilledStore(4);
  const AsyncIoStats before = AsyncReadEngine::Instance().stats();
  std::vector<uint8_t> dst(2 * store->page_size());
  std::vector<AsyncReadEngine::Request> reqs;
  reqs.push_back({0, dst.data()});
  reqs.push_back({3, dst.data() + store->page_size()});
  auto job = AsyncReadEngine::Instance().Submit(store.get(), std::move(reqs));
  ASSERT_TRUE(AsyncReadEngine::Instance().Wait(job).ok());
  const AsyncIoStats d = AsyncReadEngine::Instance().stats().Delta(before);
  EXPECT_EQ(d.jobs, 1u);
  EXPECT_EQ(d.pages, 2u);
  EXPECT_EQ(d.waits_ready + d.waits_blocked, 1u);
}

TEST(AsyncIoSeamTest, SetAsyncIoTogglesWhenAvailable) {
  const bool was = AsyncIoActive();
  if (AsyncIoAvailable()) {
    EXPECT_TRUE(SetAsyncIo(true));
    EXPECT_TRUE(AsyncIoActive());
    EXPECT_STRNE(AsyncIoBackendName(), "sync");
  } else {
    EXPECT_FALSE(SetAsyncIo(true));
    EXPECT_FALSE(AsyncIoActive());
  }
  EXPECT_TRUE(SetAsyncIo(false));
  EXPECT_FALSE(AsyncIoActive());
  EXPECT_STREQ(AsyncIoBackendName(), "sync");
  SetAsyncIo(was);
}

// Replays the same batched fetch sequence through FetchBatch on one pool
// and Begin/Finish on another; with `async` routed through the engine the
// BufferStats and data must still be byte-identical — misses are counted at
// Begin in presentation order, exactly like the synchronous path.
void ExpectTwoPhaseMatchesFetchBatch(bool async) {
  AsyncIoGuard guard(async);
  auto sync_store = MakeFilledStore(16);
  auto staged_store = MakeFilledStore(16);
  auto sync_pool = BufferPool::MakeLru(sync_store.get(), 4);
  auto staged_pool = BufferPool::MakeLru(staged_store.get(), 4);

  const std::vector<std::vector<PageId>> windows = {
      {0, 1, 2}, {2, 3, 1}, {9, 10}, {0, 9, 15}, {4}, {15, 14, 13}};
  for (const auto& w : windows) {
    auto plain = sync_pool->FetchBatch(w.data(), w.size());
    ASSERT_TRUE(plain.ok());

    auto pending = staged_pool->BeginFetchBatch(w.data(), w.size());
    ASSERT_TRUE(pending.ok());
    auto staged = staged_pool->FinishFetchBatch(std::move(*pending));
    ASSERT_TRUE(staged.ok());

    ASSERT_EQ(plain->size(), staged->size());
    for (size_t k = 0; k < w.size(); ++k) {
      EXPECT_EQ(std::memcmp((*plain)[k].data(), (*staged)[k].data(),
                            sync_store->page_size()),
                0)
          << "window page " << w[k];
    }
  }

  const BufferStats a = sync_pool->AggregateStats();
  const BufferStats b = staged_pool->AggregateStats();
  EXPECT_EQ(b.requests, a.requests);
  EXPECT_EQ(b.hits, a.hits);
  EXPECT_EQ(b.misses, a.misses);
  EXPECT_EQ(b.evictions, a.evictions);
  EXPECT_EQ(b.writebacks, a.writebacks);
  EXPECT_EQ(staged_store->stats().reads, sync_store->stats().reads);
}

TEST(TwoPhaseFetchTest, SyncSeamIsByteIdenticalToFetchBatch) {
  ExpectTwoPhaseMatchesFetchBatch(/*async=*/false);
}

TEST(TwoPhaseFetchTest, AsyncSeamIsByteIdenticalToFetchBatch) {
  if (!AsyncIoAvailable()) GTEST_SKIP() << "engine not compiled";
  ExpectTwoPhaseMatchesFetchBatch(/*async=*/true);
}

TEST(TwoPhaseFetchTest, FinishErrorUnwindsAllPins) {
  if (!AsyncIoAvailable()) GTEST_SKIP() << "engine not compiled";
  AsyncIoGuard guard(true);
  auto base = MakeFilledStore(8);
  FaultInjectingPageStore store(base.get());
  auto pool = BufferPool::MakeLru(&store, 4);

  store.FailNextReads(1, Status::IoError("transient"));
  const PageId w[3] = {0, 1, 2};
  auto pending = pool->BeginFetchBatch(w, 3);
  ASSERT_TRUE(pending.ok());
  auto got = pool->FinishFetchBatch(std::move(*pending));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);

  // Every pin was unwound: the pool can hold four fresh pages...
  std::vector<PageGuard> guards;
  for (PageId id = 4; id < 8; ++id) {
    auto g = pool->Fetch(id);
    ASSERT_TRUE(g.ok()) << "page " << id;
    guards.push_back(std::move(*g));
  }
  for (auto& g : guards) g.Release();
  // ...and the faulted window is fetchable once the fault clears.
  auto retry = pool->FetchBatch(w, 3);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ((*retry)[1].data()[0], 1);
}

TEST(TwoPhaseFetchTest, AbandonedBatchLeaksNothing) {
  if (!AsyncIoAvailable()) GTEST_SKIP() << "engine not compiled";
  AsyncIoGuard guard(true);
  auto store = MakeFilledStore(8);
  auto pool = BufferPool::MakeLru(store.get(), 4);
  {
    const PageId w[3] = {0, 1, 2};
    auto pending = pool->BeginFetchBatch(w, 3);
    ASSERT_TRUE(pending.ok());
    // Dropped without Finish: the destructor waits out the read and
    // releases every pin.
  }
  std::vector<PageGuard> guards;
  for (PageId id = 4; id < 8; ++id) {
    auto g = pool->Fetch(id);
    ASSERT_TRUE(g.ok()) << "page " << id;
    guards.push_back(std::move(*g));
  }
}

// The double-buffered executor must return exactly the synchronous
// executor's results for the identical query stream.
TEST(BatchExecutorAsyncTest, AsyncAndSyncResultsAgree) {
  if (!AsyncIoAvailable()) GTEST_SKIP() << "engine not compiled";
  Rng rng(4242);
  auto rects = data::GenerateSyntheticRegion(3000, &rng);
  MemPageStore store(kDefaultPageSize);
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(32),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto pool = BufferPool::MakeLru(&store, 24);
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(32),
                                 built->root, built->height);
  ASSERT_TRUE(tree.ok());

  std::vector<Rect> queries;
  Rng qrng(17);
  for (int i = 0; i < 64; ++i) {
    const double x = qrng.NextDouble() * 0.9;
    const double y = qrng.NextDouble() * 0.9;
    queries.emplace_back(x, y, x + 0.05, y + 0.05);
  }

  rtree::BatchExecutor executor(&*tree);
  std::vector<std::vector<rtree::ObjectId>> sync_results;
  {
    AsyncIoGuard guard(false);
    ASSERT_TRUE(executor.Run(queries, &sync_results, nullptr).ok());
  }
  std::vector<std::vector<rtree::ObjectId>> async_results;
  {
    AsyncIoGuard guard(true);
    ASSERT_TRUE(executor.Run(queries, &async_results, nullptr).ok());
  }
  ASSERT_EQ(sync_results.size(), async_results.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto a = sync_results[q];
    auto b = async_results[q];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "query " << q;
  }
}

}  // namespace
}  // namespace rtb::storage
