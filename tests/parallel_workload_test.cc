// Tests for the parallel path of the unified workload runner: threads == 1
// must be byte-identical to the serial stream, query slices must cover the
// stream exactly, and multi-threaded runs against a ShardedBufferPool must
// produce a balanced ledger. The multi-threaded cases also serve as
// data-race probes under -DRTB_SANITIZE=thread.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "sim/query_gen.h"
#include "sim/runner.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/sharded_buffer_pool.h"
#include "util/rng.h"

namespace rtb::sim {
namespace {

// Table 1 configuration, scaled down: uniform points, fanout 25, uniform
// point queries.
struct Fixture {
  std::unique_ptr<storage::MemPageStore> store;
  rtree::BuiltTree built;

  static Fixture Make(size_t points, uint64_t seed) {
    Fixture f;
    f.store = std::make_unique<storage::MemPageStore>();
    Rng rng(seed);
    auto rects = data::GenerateUniformPoints(points, &rng);
    auto built = rtree::BuildRTree(f.store.get(),
                                   rtree::RTreeConfig::WithFanout(25), rects,
                                   rtree::LoadAlgorithm::kHilbertSort);
    EXPECT_TRUE(built.ok());
    f.built = *built;
    f.store->ResetStats();
    return f;
  }

  rtree::RTree OpenTree(storage::PageCache* pool) const {
    auto tree = rtree::RTree::Open(pool,
                                   rtree::RTreeConfig::WithFanout(25),
                                   built.root, built.height);
    EXPECT_TRUE(tree.ok());
    return std::move(*tree);
  }
};

constexpr uint64_t kSeed = 1998;
constexpr uint64_t kWarmup = 2000;
constexpr uint64_t kQueries = 10000;

TEST(ParallelWorkloadTest, OneThreadIsByteIdenticalToSerialRunner) {
  Fixture f = Fixture::Make(10000, kSeed);
  UniformPointGenerator gen;

  // Serial reference: RunWorkload with Rng(kSeed).
  auto serial_pool = storage::BufferPool::MakeLru(f.store.get(), 50);
  rtree::RTree serial_tree = f.OpenTree(serial_pool.get());
  Rng rng(kSeed);
  auto serial = RunWorkload(&serial_tree, f.store.get(), &gen, &rng, kWarmup,
                            kQueries);
  ASSERT_TRUE(serial.ok());
  storage::BufferStats serial_stats = serial_pool->AggregateStats();
  f.store->ResetStats();

  // Parallel runner, one worker, same pool type, same seed.
  auto pool = storage::BufferPool::MakeLru(f.store.get(), 50);
  rtree::RTree tree = f.OpenTree(pool.get());
  WorkloadOptions options;
  options.threads = 1;
  options.base_seed = kSeed;
  options.warmup = kWarmup;
  options.queries = kQueries;
  auto parallel = RunWorkload(&tree, f.store.get(), &gen, options);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(parallel->queries, serial->queries);
  EXPECT_EQ(parallel->disk_accesses, serial->disk_accesses);
  EXPECT_EQ(parallel->node_accesses, serial->node_accesses);
  ASSERT_EQ(parallel->per_worker.size(), 1u);
  EXPECT_EQ(parallel->per_worker[0].node_accesses, serial->node_accesses);
  // The buffer pool saw the identical reference stream.
  storage::BufferStats stats = pool->AggregateStats();
  EXPECT_EQ(stats.requests, serial_stats.requests);
  EXPECT_EQ(stats.hits, serial_stats.hits);
  EXPECT_EQ(stats.misses, serial_stats.misses);
}

TEST(ParallelWorkloadTest, OneThreadOnSingleShardPoolMatchesSerial) {
  // threads == 1 over a one-shard ShardedBufferPool also reproduces the
  // serial counts: the shard is a mutex around the same BufferPool logic.
  Fixture f = Fixture::Make(10000, kSeed);
  UniformPointGenerator gen;

  auto serial_pool = storage::BufferPool::MakeLru(f.store.get(), 50);
  rtree::RTree serial_tree = f.OpenTree(serial_pool.get());
  Rng rng(kSeed);
  auto serial = RunWorkload(&serial_tree, f.store.get(), &gen, &rng, kWarmup,
                            kQueries);
  ASSERT_TRUE(serial.ok());
  f.store->ResetStats();

  auto pool = storage::ShardedBufferPool::MakeLru(f.store.get(), 50, 1);
  rtree::RTree tree = f.OpenTree(pool.get());
  WorkloadOptions options;
  options.threads = 1;
  options.base_seed = kSeed;
  options.warmup = kWarmup;
  options.queries = kQueries;
  auto parallel = RunWorkload(&tree, f.store.get(), &gen, options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->queries, serial->queries);
  EXPECT_EQ(parallel->disk_accesses, serial->disk_accesses);
  EXPECT_EQ(parallel->node_accesses, serial->node_accesses);
}

TEST(ParallelWorkloadTest, RunsAreReproducibleAcrossInvocations) {
  // A parallel run is a pure function of (tree, options): per-worker
  // counters must be identical run-to-run even with 4 workers racing on the
  // shared pool (disk totals can differ only through scheduling-dependent
  // cache interleaving — per-worker node counts cannot).
  Fixture f = Fixture::Make(10000, kSeed);
  UniformPointGenerator gen;
  auto run_once = [&f, &gen] {
    auto pool = storage::ShardedBufferPool::MakeLru(f.store.get(), 50, 4);
    rtree::RTree tree = f.OpenTree(pool.get());
    WorkloadOptions options;
    options.threads = 4;
    options.base_seed = kSeed;
    options.warmup = kWarmup;
    options.queries = kQueries;
    auto r = RunWorkload(&tree, f.store.get(), &gen, options);
    EXPECT_TRUE(r.ok());
    f.store->ResetStats();
    return std::move(*r);
  };
  WorkloadResult a = run_once();
  WorkloadResult b = run_once();
  ASSERT_EQ(a.per_worker.size(), 4u);
  ASSERT_EQ(b.per_worker.size(), 4u);
  for (size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(a.per_worker[w].queries, b.per_worker[w].queries) << w;
    EXPECT_EQ(a.per_worker[w].node_accesses, b.per_worker[w].node_accesses)
        << w;
  }
  EXPECT_EQ(a.queries, kQueries);
  EXPECT_EQ(a.node_accesses, b.node_accesses);
}

TEST(ParallelWorkloadTest, QuerySlicesCoverStreamExactly) {
  // Uneven splits: 10 queries over 4 workers -> slices 3,3,2,2.
  Fixture f = Fixture::Make(2000, kSeed);
  UniformPointGenerator gen;
  auto pool = storage::ShardedBufferPool::MakeLru(f.store.get(), 20, 4);
  rtree::RTree tree = f.OpenTree(pool.get());
  WorkloadOptions options;
  options.threads = 4;
  options.base_seed = kSeed;
  options.warmup = 3;
  options.queries = 10;
  auto r = RunWorkload(&tree, f.store.get(), &gen, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->per_worker.size(), 4u);
  EXPECT_EQ(r->per_worker[0].queries, 3u);
  EXPECT_EQ(r->per_worker[1].queries, 3u);
  EXPECT_EQ(r->per_worker[2].queries, 2u);
  EXPECT_EQ(r->per_worker[3].queries, 2u);
  EXPECT_EQ(r->queries, 10u);
}

TEST(ParallelWorkloadTest, MultiThreadLedgerBalances) {
  Fixture f = Fixture::Make(10000, kSeed);
  UniformPointGenerator gen;
  auto pool = storage::ShardedBufferPool::MakeLru(f.store.get(), 50, 8);
  rtree::RTree tree = f.OpenTree(pool.get());
  WorkloadOptions options;
  options.threads = 8;
  options.base_seed = kSeed;
  options.warmup = kWarmup;
  options.queries = kQueries;
  auto r = RunWorkload(&tree, f.store.get(), &gen, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->queries, kQueries);
  EXPECT_GT(r->node_accesses, 0u);
  // Merged pool counters balance, and every miss is a store read (warm-up
  // included on both sides of the equation).
  storage::BufferStats stats = pool->AggregateStats();
  EXPECT_EQ(stats.requests, stats.hits + stats.misses);
  EXPECT_EQ(stats.misses, f.store->stats().reads);
  // Reduced totals equal the per-worker sums.
  uint64_t queries = 0, nodes = 0;
  for (const WorkerResult& w : r->per_worker) {
    queries += w.queries;
    nodes += w.node_accesses;
  }
  EXPECT_EQ(queries, r->queries);
  EXPECT_EQ(nodes, r->node_accesses);
}

TEST(ParallelWorkloadTest, PinnedLevelsSurviveParallelTraffic) {
  // PinTopLevels + parallel queries: the pinned root region must still be
  // resident after a contended run (the fig10/fig11 pinning experiments
  // depend on this invariant).
  Fixture f = Fixture::Make(10000, kSeed);
  auto pool = storage::ShardedBufferPool::MakeLru(f.store.get(), 50, 4);
  rtree::RTree tree = f.OpenTree(pool.get());
  auto summary = rtree::TreeSummary::Extract(f.store.get(), f.built.root);
  ASSERT_TRUE(summary.ok());
  ASSERT_TRUE(PinTopLevels(pool.get(), *summary, 1).ok());
  ASSERT_EQ(pool->num_permanent_pins(), 1u);
  f.store->ResetStats();

  UniformPointGenerator gen;
  WorkloadOptions options;
  options.threads = 4;
  options.base_seed = kSeed;
  options.warmup = 500;
  options.queries = 5000;
  auto r = RunWorkload(&tree, f.store.get(), &gen, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(pool->Contains(f.built.root));
  EXPECT_EQ(pool->num_permanent_pins(), 1u);
}

TEST(ParallelWorkloadTest, RejectsZeroThreads) {
  Fixture f = Fixture::Make(2000, kSeed);
  auto pool = storage::ShardedBufferPool::MakeLru(f.store.get(), 20, 2);
  rtree::RTree tree = f.OpenTree(pool.get());
  UniformPointGenerator gen;
  WorkloadOptions options;
  options.threads = 0;
  options.queries = 10;
  auto r = RunWorkload(&tree, f.store.get(), &gen, options);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace rtb::sim
