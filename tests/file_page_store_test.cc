// Failure-path and batch-read tests for the file-backed store: corrupt or
// truncated files must fail Open with a precise status, a file that lost
// its tail must fail ReadBatch mid-batch (not fabricate zeros), injected
// faults must land mid-batch through the buffer pool without leaking
// frames, and the vectored (preadv) path must be byte-identical to the
// scalar pread fallback. Runs twice under ctest: once with the default
// runtime dispatch and once with RTB_VECTORED_IO=scalar.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/file_page_store.h"
#include "storage/page_store.h"

namespace rtb::storage {
namespace {

class FilePageStoreFailureTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    // The vectored and scalar ctest variants run this binary concurrently;
    // the pid keeps their store files disjoint.
    return ::testing::TempDir() + "/rtb_fpsf_" + std::to_string(::getpid()) +
           "_" + name;
  }

  // A store of `pages` pages at `path`; page p is filled with byte p.
  std::unique_ptr<FilePageStore> MakeStore(const std::string& path,
                                           size_t pages,
                                           size_t page_size = 128) {
    auto store = FilePageStore::Create(path, page_size);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    for (size_t p = 0; p < pages; ++p) {
      auto id = (*store)->Allocate();
      EXPECT_TRUE(id.ok());
      std::vector<uint8_t> data(page_size, static_cast<uint8_t>(p));
      EXPECT_TRUE((*store)->Write(*id, data.data()).ok());
    }
    (*store)->ResetStats();
    return std::move(*store);
  }

  // Overwrites 4 bytes at `offset` in `path`.
  void Patch(const std::string& path, std::streamoff offset, uint32_t value) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(offset);
    f.write(reinterpret_cast<const char*>(&value), sizeof(value));
    ASSERT_TRUE(f.good());
  }
};

TEST_F(FilePageStoreFailureTest, OpenFailsOnTruncatedHeader) {
  const std::string path = Path("short_header");
  {
    std::ofstream f(path, std::ios::binary);
    f << "RTBS";  // Valid magic prefix, but the header ends here.
  }
  auto opened = FilePageStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  EXPECT_NE(opened.status().ToString().find("truncated header"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, OpenFailsOnUnsupportedVersion) {
  const std::string path = Path("bad_version");
  MakeStore(path, 1).reset();  // Destructor syncs a valid file.
  Patch(path, /*offset=*/4, /*version=*/99);
  auto opened = FilePageStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotSupported);
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, OpenFailsOnImplausibleHeaderFields) {
  const std::string path = Path("zero_page_size");
  MakeStore(path, 1).reset();
  Patch(path, /*offset=*/8, /*page_size=*/0);
  auto opened = FilePageStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, ReadBatchRejectsUnallocatedPageUpfront) {
  const std::string path = Path("bounds");
  auto store = MakeStore(path, 3);
  std::vector<uint8_t> out(3 * 128);
  const PageId ids[] = {0, 1, 7};
  EXPECT_EQ(store->ReadBatch(ids, 3, out.data()).code(),
            StatusCode::kNotFound);
  // Validation happens before any I/O: nothing was counted.
  EXPECT_EQ(store->stats().reads, 0u);
  store.reset();
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, ReadBatchMatchesPerPageReads) {
  const std::string path = Path("batch_bytes");
  auto store = MakeStore(path, 12);
  // A consecutive window, as the batch executor's sorted frontiers produce.
  const PageId ids[] = {3, 4, 5, 6, 7};
  std::vector<uint8_t> batched(5 * 128);
  ASSERT_TRUE(store->ReadBatch(ids, 5, batched.data()).ok());
  for (size_t k = 0; k < 5; ++k) {
    std::vector<uint8_t> single(128);
    ASSERT_TRUE(store->Read(ids[k], single.data()).ok());
    EXPECT_EQ(std::memcmp(single.data(), batched.data() + k * 128, 128), 0)
        << "page " << ids[k];
  }
  const IoStats stats = store->stats();
  // Per-page read accounting is identical in both modes (5 + 5 reads);
  // only the syscall shape differs.
  EXPECT_EQ(stats.reads, 10u);
  if (VectoredIoActive()) {
    EXPECT_EQ(stats.read_batches, 1u);
    EXPECT_EQ(stats.batch_pages, 5u);
    EXPECT_EQ(stats.ReadSyscalls(), 6u);  // 1 preadv + 5 singles.
  } else {
    EXPECT_EQ(stats.read_batches, 0u);
    EXPECT_EQ(stats.batch_pages, 0u);
    EXPECT_EQ(stats.ReadSyscalls(), 10u);
  }
  store.reset();
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, ScatteredIdsNeverCoalesce) {
  const std::string path = Path("scattered");
  auto store = MakeStore(path, 8);
  const PageId ids[] = {0, 2, 4, 6};  // Runs of length one.
  std::vector<uint8_t> out(4 * 128);
  ASSERT_TRUE(store->ReadBatch(ids, 4, out.data()).ok());
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(out[k * 128], static_cast<uint8_t>(ids[k]));
  }
  EXPECT_EQ(store->stats().read_batches, 0u);
  EXPECT_EQ(store->stats().reads, 4u);
  store.reset();
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, VectoredAndScalarBytesAgree) {
  const std::string path = Path("seam");
  auto store = MakeStore(path, 10);
  const PageId ids[] = {1, 2, 3, 4, 8, 9};
  const bool initial = VectoredIoActive();

  ASSERT_TRUE(SetVectoredIo(false));
  std::vector<uint8_t> scalar(6 * 128);
  ASSERT_TRUE(store->ReadBatch(ids, 6, scalar.data()).ok());
  EXPECT_EQ(store->stats().read_batches, 0u);

  if (VectoredIoAvailable()) {
    ASSERT_TRUE(SetVectoredIo(true));
    store->ResetStats();
    std::vector<uint8_t> vectored(6 * 128);
    ASSERT_TRUE(store->ReadBatch(ids, 6, vectored.data()).ok());
    EXPECT_EQ(scalar, vectored);
    // Two runs ({1..4}, {8,9}) coalesce; per-page reads stay 6.
    EXPECT_EQ(store->stats().reads, 6u);
    EXPECT_EQ(store->stats().read_batches, 2u);
    EXPECT_EQ(store->stats().batch_pages, 6u);
  } else {
    // A scalar-only binary must refuse to enable the path.
    EXPECT_FALSE(SetVectoredIo(true));
  }
  SetVectoredIo(initial);
  store.reset();
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, ReadBatchFailsOnTruncatedData) {
  const std::string path = Path("short_data");
  MakeStore(path, 4).reset();  // Header records 4 pages.
  // Chop the file mid-way through the last page: the header still promises
  // 4 pages, but the bytes are gone. Both read paths must report the short
  // read instead of fabricating data.
  const uintmax_t full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 64);
  auto reopened = FilePageStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_pages(), 4u);
  const PageId ids[] = {0, 1, 2, 3};
  std::vector<uint8_t> out(4 * 128);
  Status batch = (*reopened)->ReadBatch(ids, 4, out.data());
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.code(), StatusCode::kIoError);
  // The scalar single-page read agrees.
  EXPECT_EQ((*reopened)->Read(3, out.data()).code(), StatusCode::kIoError);
  reopened->reset();
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, AllocateFaultSurfacesThroughNewPage) {
  const std::string path = Path("alloc_fault");
  auto base = MakeStore(path, 0);
  FaultInjectingPageStore store(base.get());
  auto pool = BufferPool::MakeLru(&store, 4);

  store.FailNextAllocations(1, Status::IoError("disk full"));
  auto failed = pool->NewPage();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);

  // The pool recovers once the fault clears: the next allocation succeeds
  // and no frame leaked from the failed attempt.
  auto page = pool->NewPage();
  ASSERT_TRUE(page.ok());
  page->Release();
  EXPECT_TRUE(pool->FlushAll().ok());
  EXPECT_TRUE(pool->EvictAll().ok());
  pool.reset();
  base.reset();
  std::remove(path.c_str());
}

TEST_F(FilePageStoreFailureTest, MidBatchFaultThroughFetchBatchLeaksNothing) {
  const std::string path = Path("midbatch_fault");
  auto base = MakeStore(path, 6);
  FaultInjectingPageStore store(base.get());
  auto pool = BufferPool::MakeLru(&store, 8);

  // Poison the middle page of the window: the wrapper degrades the batch to
  // per-page reads, so the failure lands after page 0 was read — exactly
  // mid-batch.
  store.FailPage(1, Status::IoError("bad sector"));
  const PageId ids[] = {0, 1, 2};
  auto failed = pool->FetchBatch(ids, 3);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  // The unwind uninstalled every staged frame — nothing resident, nothing
  // pinned.
  EXPECT_FALSE(pool->Contains(0));
  EXPECT_FALSE(pool->Contains(1));
  EXPECT_FALSE(pool->Contains(2));
  EXPECT_TRUE(pool->EvictAll().ok());

  // Clearing the fault makes the same window fetchable.
  store.FailPage(kInvalidPageId, Status::OK());
  auto guards = pool->FetchBatch(ids, 3);
  ASSERT_TRUE(guards.ok());
  ASSERT_EQ(guards->size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ((*guards)[k].data()[0], static_cast<uint8_t>(ids[k]));
  }
  guards->clear();
  EXPECT_TRUE(pool->EvictAll().ok());
  pool.reset();
  base.reset();
  std::remove(path.c_str());
}

// The batch-first API contract: FetchBatch must count exactly what a
// Fetch-per-page loop counts, on both the pool and the store, for any mix
// of hits, misses, duplicates and evictions. Two identical stores and
// pools run the same windows — one through the PageCache base-class loop,
// one through the overridden staged path — and every counter must match.
TEST_F(FilePageStoreFailureTest, CloseFlushesAndIsIdempotent) {
  const std::string path = Path("close");
  {
    auto store = MakeStore(path, 3);
    ASSERT_TRUE(store->Close().ok());
    // Idempotent: a second Close on an already-closed store is a no-op.
    ASSERT_TRUE(store->Close().ok());
    // The store must not be used for I/O afterwards.
    std::vector<uint8_t> buf(store->page_size());
    EXPECT_FALSE(store->Read(0, buf.data()).ok());
  }
  // The header reached the disk through Close: the file reopens cleanly
  // with all pages intact.
  auto reopened = FilePageStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_pages(), 3u);
  std::vector<uint8_t> buf((*reopened)->page_size());
  ASSERT_TRUE((*reopened)->Read(2, buf.data()).ok());
  EXPECT_EQ(buf[0], 2);
  std::remove(path.c_str());
}

TEST(FetchBatchIdentityTest, StatsAreByteIdenticalToLoopFetch) {
  constexpr size_t kPageSize = 64;
  constexpr size_t kPages = 16;
  auto fill = [](MemPageStore* store) {
    for (size_t p = 0; p < kPages; ++p) {
      auto id = store->Allocate();
      ASSERT_TRUE(id.ok());
      std::vector<uint8_t> data(kPageSize, static_cast<uint8_t>(p));
      ASSERT_TRUE(store->Write(*id, data.data()).ok());
    }
    store->ResetStats();
  };
  MemPageStore loop_store(kPageSize);
  MemPageStore batch_store(kPageSize);
  fill(&loop_store);
  fill(&batch_store);
  auto loop_pool = BufferPool::MakeLru(&loop_store, 6);
  auto batch_pool = BufferPool::MakeLru(&batch_store, 6);

  // Windows with repeats, re-fetches (hits) and capacity pressure
  // (evictions), including a descending elevator window.
  const std::vector<std::vector<PageId>> windows = {
      {0, 1, 2, 3}, {2, 3, 4, 5}, {5, 5, 6}, {9, 8, 7, 6},
      {10, 11, 12, 13}, {0, 1, 2}, {15, 14, 13, 12},
  };
  for (const std::vector<PageId>& w : windows) {
    auto loop_guards =
        loop_pool->PageCache::FetchBatch(w.data(), w.size());
    auto batch_guards = batch_pool->FetchBatch(w.data(), w.size());
    ASSERT_TRUE(loop_guards.ok());
    ASSERT_TRUE(batch_guards.ok());
    ASSERT_EQ(loop_guards->size(), batch_guards->size());
    for (size_t k = 0; k < w.size(); ++k) {
      EXPECT_EQ(std::memcmp((*loop_guards)[k].data(),
                            (*batch_guards)[k].data(), kPageSize),
                0);
    }
  }

  const BufferStats loop_stats = loop_pool->AggregateStats();
  const BufferStats batch_stats = batch_pool->AggregateStats();
  EXPECT_EQ(batch_stats.requests, loop_stats.requests);
  EXPECT_EQ(batch_stats.hits, loop_stats.hits);
  EXPECT_EQ(batch_stats.misses, loop_stats.misses);
  EXPECT_EQ(batch_stats.evictions, loop_stats.evictions);
  EXPECT_EQ(batch_stats.writebacks, loop_stats.writebacks);

  // MemPageStore has no vectored path: its default ReadBatch loops Read, so
  // the store counters are byte-identical too.
  const IoStats loop_io = loop_store.stats();
  const IoStats batch_io = batch_store.stats();
  EXPECT_EQ(batch_io.reads, loop_io.reads);
  EXPECT_EQ(batch_io.read_batches, 0u);
  EXPECT_EQ(loop_io.read_batches, 0u);
  EXPECT_EQ(batch_io.ReadSyscalls(), loop_io.ReadSyscalls());
}

}  // namespace
}  // namespace rtb::storage
