#!/bin/sh
# Smoke test for the query-hot-path benchmark: runs a tiny configuration
# end to end and checks the emitted JSON report is schema-complete. Keeps
# the perf-trajectory harness honest — a bench that stops emitting a metric
# breaks here, not in a later PR's before/after comparison.
set -e

BENCH="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

JSON="$WORK/report.json"
"$BENCH" --points=2000 --queries=200 --warmup=50 --threads=2 \
    --json="$JSON" > "$WORK/stdout.txt"
test -s "$JSON"

# The human-readable table went to stdout.
grep -q "speedup" "$WORK/stdout.txt"

# Top-level metadata.
grep -q '"bench": "micro_query_hotpath"' "$JSON"
grep -q '"seed": ' "$JSON"
grep -q '"points": 2000' "$JSON"
grep -q '"tree_pages": ' "$JSON"
grep -q '"configs": \[' "$JSON"

# All four serial configs plus the threaded one are present.
grep -q '"config": "point_resident_serial"' "$JSON"
grep -q '"config": "region_resident_serial"' "$JSON"
grep -q '"config": "point_buffered_serial"' "$JSON"
grep -q '"config": "region_buffered_serial"' "$JSON"
grep -q '"config": "point_resident_threads2"' "$JSON"

# Every serial config carries the live and baseline metrics the perf
# trajectory compares across PRs.
for key in queries_per_sec baseline_queries_per_sec speedup_vs_baseline \
    ns_per_node_visit nodes_per_query hit_rate baseline_hit_rate \
    allocs_per_query; do
  test "$(grep -c "\"$key\": " "$JSON")" -ge 4
done

# The document is well-formed JSON with numeric (non-null) speedups.
python3 - "$JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
serial = [c for c in doc["configs"] if c["threads"] == 1]
assert len(serial) == 4, serial
for c in serial:
    assert isinstance(c["speedup_vs_baseline"], (int, float)), c
    assert isinstance(c["allocs_per_query"], (int, float)), c
EOF

echo "bench smoke test passed"
