// End-to-end tests for the coalescing server (net/server.h): wire-level
// round-trips, the coalescing determinism contract (N concurrent clients
// produce the same node accesses and BufferStats as one offline
// BatchExecutor run over the same request multiset), backpressure,
// protocol-error handling on a live socket, and the graceful-shutdown
// fix-path (drain + WAL checkpoint + PR 8 close order => a clean,
// nothing-to-redo log under OpenWithRecovery).
//
// The serve loop runs on a std::thread; clients run on the test thread (or
// their own). Everything joins before stats are read, so the suite is
// TSan-clean by construction — the only cross-thread edges are the socket
// and Server::RequestShutdown's atomic + self-pipe.

#include "net/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/serving.h"
#include "rtree/batch.h"
#include "rtree/validate.h"
#include "storage/buffer_pool.h"
#include "storage/file_page_store.h"
#include "util/rng.h"

namespace rtb::net {
namespace {

using geom::Point;
using geom::Rect;

engine::ExperimentSpec SmallSpec(uint64_t n = 2000, uint64_t pool_pages = 16) {
  engine::ExperimentSpec spec;
  spec.name = "server_test";
  spec.dataset.kind = "uniform";
  spec.dataset.n = n;
  spec.dataset.seed = 7;
  spec.tree.fanout = 25;
  spec.pool.buffer_pages = pool_pages;
  spec.run.seed = 1;
  return spec;
}

// Starts `server` on a background thread; the destructor (or Stop) shuts
// it down and joins.
class ServeThread {
 public:
  explicit ServeThread(Server* server) : server_(server) {
    thread_ = std::thread([this] { status_ = server_->Serve(); });
  }
  ~ServeThread() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_->RequestShutdown();
      thread_.join();
    }
  }

  const Status& status() const { return status_; }

 private:
  Server* server_;
  std::thread thread_;
  Status status_;
};

std::vector<Rect> MakeQueries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double x = rng.NextDouble() * 0.95;
    const double y = rng.NextDouble() * 0.95;
    queries.push_back(Rect(x, y, x + 0.03, y + 0.03));
  }
  return queries;
}

TEST(ServerTest, RoundTripsEveryRequestType) {
  auto stack = ServingStack::Open(SmallSpec());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  ServerOptions options;
  options.max_batch = 8;
  options.max_wait_us = 200;
  Server server(stack->get(), options);
  ASSERT_TRUE(server.Start().ok());
  ServeThread serving(&server);

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Insert a recognizable point, search it, kNN it, delete it, re-delete
  // (must miss), and fetch stats.
  const Rect probe(0.111, 0.222, 0.111, 0.222);
  ASSERT_TRUE((*client)->Insert(probe, 999'999).ok());

  auto found = (*client)->Search(Rect(0.11, 0.22, 0.112, 0.223));
  ASSERT_TRUE(found.ok());
  EXPECT_NE(std::find(found->begin(), found->end(), 999'999), found->end());

  const uint64_t knn_id = (*client)->QueueKnn(Point{0.111, 0.222}, 1);
  auto knn = (*client)->WaitFor(knn_id);
  ASSERT_TRUE(knn.ok());
  ASSERT_TRUE(knn->ok());
  ASSERT_EQ(knn->neighbors.size(), 1u);
  EXPECT_EQ(knn->neighbors[0].id, 999'999u);
  EXPECT_EQ(knn->neighbors[0].distance, 0.0);

  auto deleted = (*client)->Delete(probe, 999'999);
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(*deleted);
  deleted = (*client)->Delete(probe, 999'999);
  ASSERT_TRUE(deleted.ok());
  EXPECT_FALSE(*deleted);

  const uint64_t stats_id = (*client)->QueueStats();
  auto stats = (*client)->WaitFor(stats_id);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok());
  EXPECT_NE(stats->text.find("\"report\": \"rtb-serve\""), std::string::npos);
  EXPECT_NE(stats->text.find("\"hit_rate\""), std::string::npos);

  serving.Stop();
  EXPECT_TRUE(serving.status().ok()) << serving.status().ToString();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.deletes, 2u);
  EXPECT_EQ(s.searches, 1u);
  EXPECT_EQ(s.knns, 1u);
  EXPECT_EQ(s.stats_requests, 1u);
  EXPECT_EQ(s.replies_sent, 6u);
  ASSERT_TRUE((*stack)->Close().ok());
}

// An open-bound SEARCH (partial match: one axis lo=-inf, hi=+inf) must be
// served, must equal the same query with the open axis widened to the full
// data domain, and the capability must be advertised in STATS so clients
// can probe before sending frames old servers reject.
TEST(ServerTest, OpenBoundSearchServedAndAdvertised) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto stack = ServingStack::Open(SmallSpec());
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  Server server(stack->get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ServeThread serving(&server);

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // The dataset lives in [0,1]^2, so a finite query spanning the whole x
  // domain is an oracle for the open-x encoding.
  auto open_x = (*client)->Search(Rect(-kInf, 0.4, kInf, 0.45));
  ASSERT_TRUE(open_x.ok()) << open_x.status().ToString();
  auto full_x = (*client)->Search(Rect(0.0, 0.4, 1.0, 0.45));
  ASSERT_TRUE(full_x.ok());
  std::sort(open_x->begin(), open_x->end());
  std::sort(full_x->begin(), full_x->end());
  EXPECT_FALSE(open_x->empty());
  EXPECT_EQ(*open_x, *full_x);

  // A lone infinity is still a typed error, and the connection survives it.
  const uint64_t bad_id =
      (*client)->QueueSearch(Rect(0.1, 0.2, kInf, 0.4));
  auto bad = (*client)->WaitFor(bad_id);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ok());

  const uint64_t stats_id = (*client)->QueueStats();
  auto stats = (*client)->WaitFor(stats_id);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok());
  EXPECT_NE(stats->text.find("\"capabilities\": 1"), std::string::npos);

  serving.Stop();
  EXPECT_TRUE(serving.status().ok()) << serving.status().ToString();
  ASSERT_TRUE((*stack)->Close().ok());
}

// The tentpole contract: N concurrent pipelining clients against a small
// pool produce exactly the node accesses and BufferStats of ONE offline
// BatchExecutor run over the same query multiset. The server is configured
// so the whole multiset coalesces into a single drain (max_batch == total,
// effectively infinite wait); within one batch the executor's sorted
// frontier makes the counters independent of arrival order, which is the
// only thing the threads leave unspecified.
TEST(ServerTest, CoalescedStatsMatchOfflineBatchRun) {
  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 32;
  constexpr size_t kTotal = kClients * kPerClient;

  const auto spec = SmallSpec(/*n=*/4000, /*pool_pages=*/12);
  std::vector<std::vector<Rect>> per_client;
  for (size_t c = 0; c < kClients; ++c) {
    per_client.push_back(MakeQueries(kPerClient, 100 + c));
  }

  // Offline oracle: same spec, one executor, one batch of the multiset.
  rtree::BatchStats offline_stats;
  storage::BufferStats offline_pool;
  std::vector<size_t> offline_result_sizes;
  {
    auto stack = ServingStack::Open(spec);
    ASSERT_TRUE(stack.ok());
    std::vector<Rect> all;
    for (const auto& qs : per_client) {
      all.insert(all.end(), qs.begin(), qs.end());
    }
    rtree::BatchExecutor exec((*stack)->tree());
    std::vector<std::vector<rtree::ObjectId>> results;
    ASSERT_TRUE(exec.Run(std::span<const Rect>(all), &results,
                         &offline_stats).ok());
    offline_pool = (*stack)->pool()->AggregateStats();
    for (const auto& r : results) offline_result_sizes.push_back(r.size());
    ASSERT_TRUE((*stack)->Close().ok());
  }

  // Served: the same multiset from 8 threads, coalesced into one drain.
  auto stack = ServingStack::Open(spec);
  ASSERT_TRUE(stack.ok());
  ServerOptions options;
  options.max_batch = kTotal;
  options.max_wait_us = 60'000'000;  // Only the batch bound may trip.
  Server server(stack->get(), options);
  ASSERT_TRUE(server.Start().ok());
  ServeThread serving(&server);

  std::vector<size_t> served_result_sizes(kTotal);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect(server.port());
      ASSERT_TRUE(client.ok());
      std::vector<uint64_t> ids;
      for (const Rect& q : per_client[c]) {
        ids.push_back((*client)->QueueSearch(q));
      }
      ASSERT_TRUE((*client)->Flush().ok());
      for (size_t i = 0; i < ids.size(); ++i) {
        auto reply = (*client)->WaitFor(ids[i]);
        ASSERT_TRUE(reply.ok());
        ASSERT_TRUE(reply->ok());
        served_result_sizes[c * kPerClient + i] = reply->ids.size();
      }
    });
  }
  for (auto& t : threads) t.join();
  serving.Stop();
  ASSERT_TRUE(serving.status().ok());

  const ServerStats s = server.stats();
  EXPECT_EQ(s.requests_admitted, kTotal);
  EXPECT_EQ(s.batches, 1u) << "the whole multiset must coalesce";
  EXPECT_EQ(s.search_batch.node_accesses, offline_stats.node_accesses);
  EXPECT_EQ(s.search_batch.page_visits, offline_stats.page_visits);

  const storage::BufferStats served_pool = (*stack)->pool()->AggregateStats();
  EXPECT_EQ(served_pool.requests, offline_pool.requests);
  EXPECT_EQ(served_pool.hits, offline_pool.hits);
  EXPECT_EQ(served_pool.misses, offline_pool.misses);
  EXPECT_EQ(served_pool.evictions, offline_pool.evictions);

  // Result multiset sanity: per-query result sizes line up 1:1 (each
  // client's queries are answered in its own submission order).
  std::vector<size_t> sorted_served = served_result_sizes;
  std::sort(sorted_served.begin(), sorted_served.end());
  std::vector<size_t> sorted_offline = offline_result_sizes;
  std::sort(sorted_offline.begin(), sorted_offline.end());
  EXPECT_EQ(sorted_served, sorted_offline);
  ASSERT_TRUE((*stack)->Close().ok());
}

// With many small drains instead of one big one, BufferStats legitimately
// differ (batch boundaries change eviction decisions) but summed logical
// node accesses and per-query results must not.
TEST(ServerTest, NodeAccessesAreBatchBoundaryIndependent) {
  const auto spec = SmallSpec(/*n=*/3000, /*pool_pages=*/12);
  const auto queries = MakeQueries(96, 42);

  rtree::BatchStats offline_stats;
  std::vector<std::vector<rtree::ObjectId>> offline_results;
  {
    auto stack = ServingStack::Open(spec);
    ASSERT_TRUE(stack.ok());
    rtree::BatchExecutor exec((*stack)->tree());
    ASSERT_TRUE(exec.Run(std::span<const Rect>(queries), &offline_results,
                         &offline_stats).ok());
    ASSERT_TRUE((*stack)->Close().ok());
  }

  auto stack = ServingStack::Open(spec);
  ASSERT_TRUE(stack.ok());
  ServerOptions options;
  options.max_batch = 7;  // Forces ragged batch boundaries.
  options.max_wait_us = 100;
  Server server(stack->get(), options);
  ASSERT_TRUE(server.Start().ok());
  ServeThread serving(&server);

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  std::vector<uint64_t> ids;
  for (const Rect& q : queries) ids.push_back((*client)->QueueSearch(q));
  ASSERT_TRUE((*client)->Flush().ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto reply = (*client)->WaitFor(ids[i]);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok());
    std::vector<rtree::ObjectId> sorted = reply->ids;
    std::sort(sorted.begin(), sorted.end());
    std::vector<rtree::ObjectId> expect = offline_results[i];
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(sorted, expect) << "query " << i;
  }
  serving.Stop();
  ASSERT_TRUE(serving.status().ok());

  const ServerStats s = server.stats();
  EXPECT_GT(s.batches, 1u);
  EXPECT_EQ(s.search_batch.node_accesses, offline_stats.node_accesses);
  ASSERT_TRUE((*stack)->Close().ok());
}

// A connection pipelining far past max_inflight must be paused and
// resumed — every request still answered, pauses observed.
TEST(ServerTest, BackpressurePausesAndResumes) {
  auto stack = ServingStack::Open(SmallSpec());
  ASSERT_TRUE(stack.ok());
  ServerOptions options;
  options.max_batch = 16;
  options.max_wait_us = 200;
  options.max_inflight = 8;
  Server server(stack->get(), options);
  ASSERT_TRUE(server.Start().ok());
  ServeThread serving(&server);

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  constexpr size_t kRequests = 300;
  const auto queries = MakeQueries(kRequests, 5);
  std::vector<uint64_t> ids;
  for (const Rect& q : queries) ids.push_back((*client)->QueueSearch(q));
  ASSERT_TRUE((*client)->Flush().ok());
  size_t answered = 0;
  for (const uint64_t id : ids) {
    auto reply = (*client)->WaitFor(id);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok());
    ++answered;
  }
  EXPECT_EQ(answered, kRequests);
  serving.Stop();
  ASSERT_TRUE(serving.status().ok());

  const ServerStats s = server.stats();
  EXPECT_EQ(s.searches, kRequests);
  EXPECT_GT(s.pauses, 0u) << "a 300-deep pipeline must trip max_inflight=8";
  ASSERT_TRUE((*stack)->Close().ok());
}

// Typed protocol errors keep the connection alive; a malformed header
// closes it (after an error reply) without taking the server down.
TEST(ServerTest, ProtocolErrorsOverTheWire) {
  auto stack = ServingStack::Open(SmallSpec());
  ASSERT_TRUE(stack.ok());
  ServerOptions options;
  options.max_wait_us = 200;
  Server server(stack->get(), options);
  ASSERT_TRUE(server.Start().ok());
  ServeThread serving(&server);

  {
    auto client = Client::Connect(server.port());
    ASSERT_TRUE(client.ok());
    // Unknown type: typed error reply, connection continues.
    std::vector<uint8_t> raw;
    AppendRawFrame(42, 0, 7, nullptr, 0, &raw);
    (*client)->QueueRaw(raw);
    ASSERT_TRUE((*client)->Flush().ok());
    auto reply = (*client)->ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_FALSE(reply->ok());
    EXPECT_EQ(reply->request_id, 7u);
    // The same connection still serves valid requests.
    auto found = (*client)->Search(Rect(0.4, 0.4, 0.45, 0.45));
    EXPECT_TRUE(found.ok());

    // An empty-rect insert is refused at parse time with a typed error.
    const uint64_t bad = (*client)->QueueInsert(Rect(0.9, 0.9, 0.1, 0.1), 5);
    auto bad_reply = (*client)->WaitFor(bad);
    ASSERT_TRUE(bad_reply.ok());
    EXPECT_FALSE(bad_reply->ok());
    EXPECT_EQ(bad_reply->status,
              static_cast<uint8_t>(StatusCode::kInvalidArgument));
  }
  {
    auto client = Client::Connect(server.port());
    ASSERT_TRUE(client.ok());
    // Oversized length prefix: one error reply (id 0), then disconnect.
    std::vector<uint8_t> evil(8, 0xFF);
    (*client)->QueueRaw(evil);
    ASSERT_TRUE((*client)->Flush().ok());
    auto reply = (*client)->ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_FALSE(reply->ok());
    EXPECT_EQ(reply->request_id, 0u);
    auto eof = (*client)->ReadReply();
    EXPECT_FALSE(eof.ok());
    EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  }
  // The server survived both and still serves fresh connections.
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Search(Rect(0.2, 0.2, 0.25, 0.25)).ok());

  serving.Stop();
  ASSERT_TRUE(serving.status().ok());
  const ServerStats s = server.stats();
  EXPECT_GE(s.protocol_errors, 2u);
  EXPECT_EQ(s.malformed_disconnects, 1u);
  ASSERT_TRUE((*stack)->Close().ok());
}

// Regression for the deferred-close rework: a client that provokes a burst
// of parse-error replies (each one triggers a FlushOutput mid-DrainInput)
// and then resets the connection (SO_LINGER 0 => RST on close) used to
// make FlushOutput destroy the Connection while DrainInput and
// HandleReadable still held the pointer — a use-after-free the ASan server
// leg watches for. The server must just drop the connection and keep
// serving. The RST's arrival relative to the server's reads is inherently
// racy, so several rounds alternate reset-close with plain close (which
// also RSTs once unread replies are pending).
TEST(ServerTest, ResetDuringErrorBurstSurvives) {
  auto stack = ServingStack::Open(SmallSpec());
  ASSERT_TRUE(stack.ok());
  ServerOptions options;
  options.max_wait_us = 100;
  Server server(stack->get(), options);
  ASSERT_TRUE(server.Start().ok());
  ServeThread serving(&server);

  for (int round = 0; round < 16; ++round) {
    auto client = Client::Connect(server.port());
    ASSERT_TRUE(client.ok());
    std::vector<uint8_t> raw;
    for (uint64_t i = 0; i < 64; ++i) {
      AppendRawFrame(42, 0, i + 1, nullptr, 0, &raw);  // Unknown type.
      AppendSearchRequest(1000 + i, Rect(0.1, 0.1, 0.2, 0.2), &raw);
    }
    (*client)->QueueRaw(raw);
    ASSERT_TRUE((*client)->Flush().ok());
    if (round % 2 == 0) {
      const linger hard{1, 0};
      setsockopt((*client)->fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
    }
    // ~Client closes without reading a single reply.
  }

  // The server survived every reset and still serves fresh connections.
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Search(Rect(0.2, 0.2, 0.25, 0.25)).ok());

  serving.Stop();
  ASSERT_TRUE(serving.status().ok()) << serving.status().ToString();
  ASSERT_TRUE((*stack)->Close().ok());
}

// Graceful shutdown under a durable spec: updates over the wire, shutdown
// (drain + reply flush), PR 8 close order. Reopening with OpenWithRecovery
// must find a checkpoint-only log — nothing to redo, nothing to undo.
TEST(ServerTest, GracefulShutdownLeavesCleanWal) {
  if (!storage::WalAvailable()) GTEST_SKIP() << "built without RTB_WAL";
  const std::string path = "/tmp/rtb_server_test_wal.store";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  engine::ExperimentSpec spec = SmallSpec(/*n=*/2000, /*pool_pages=*/32);
  spec.storage.backend = "file";
  spec.storage.path = path;
  spec.storage.wal.enabled = true;
  spec.storage.wal.group_commit_window = 4;

  storage::PageId root = 0;
  uint16_t height = 0;
  {
    auto stack = ServingStack::Open(spec);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ServerOptions options;
    options.max_batch = 16;
    options.max_wait_us = 200;
    Server server(stack->get(), options);
    ASSERT_TRUE(server.Start().ok());
    ServeThread serving(&server);

    auto client = Client::Connect(server.port());
    ASSERT_TRUE(client.ok());
    Rng rng(11);
    std::vector<uint64_t> ids;
    for (uint64_t i = 0; i < 64; ++i) {
      const double x = rng.NextDouble();
      const double y = rng.NextDouble();
      ids.push_back(
          (*client)->QueueInsert(Rect(x, y, x, y), 1'000'000 + i));
    }
    ASSERT_TRUE((*client)->Flush().ok());
    for (const uint64_t id : ids) {
      auto reply = (*client)->WaitFor(id);
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(reply->ok());
    }

    serving.Stop();
    ASSERT_TRUE(serving.status().ok());
    root = (*stack)->tree()->root();
    height = (*stack)->tree()->height();
    ASSERT_TRUE((*stack)->Close().ok());
  }

  storage::WalRecoveryReport report;
  auto store =
      storage::FilePageStore::OpenWithRecovery(path, path + ".wal", &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(report.wal_found);
  EXPECT_FALSE(report.tail_torn);
  EXPECT_EQ(report.records_scanned, 1u) << "checkpoint-only log expected";
  EXPECT_EQ(report.redo_pages, 0u);
  EXPECT_EQ(report.undo_pages, 0u);

  const auto validation = rtree::ValidateTree(
      store->get(), root, rtree::RTreeConfig::WithFanout(spec.tree.fanout),
      {.check_min_fill = false});
  EXPECT_TRUE(validation.ok);
  EXPECT_EQ(validation.num_data_entries, 2000u + 64u);
  (void)height;
  ASSERT_TRUE((*store)->Close().ok());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace rtb::net
