// Tests for SharedBatchExecutor (rtree/shared_batch.h): the collective,
// cross-worker shared frontier must return exactly the serial Search
// results for every worker's queries, count the same global node accesses
// as the single-frontier BatchExecutor over the merged query set, tolerate
// empty per-worker slices, and abort collectively (same error on every
// worker) on an injected I/O fault. Also drives the runner integration
// (WorkloadOptions::shared_frontier). Labeled `concurrency` (run it under
// TSan) and `async` (run it with the read seam on and off).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "rtree/batch.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "rtree/shared_batch.h"
#include "sim/query_gen.h"
#include "sim/runner.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page_store.h"
#include "storage/sharded_buffer_pool.h"
#include "util/rng.h"

namespace rtb::rtree {
namespace {

using geom::Rect;

std::vector<Rect> MakeQueries(size_t n, uint64_t seed, double side = 0.05) {
  std::vector<Rect> queries;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble() * (1.0 - side);
    const double y = rng.NextDouble() * (1.0 - side);
    queries.emplace_back(x, y, x + side, y + side);
  }
  return queries;
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class SharedFrontierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(9001);
    rects_ = data::GenerateSyntheticRegion(4000, &rng);
    auto built = BuildRTree(&store_, RTreeConfig::WithFanout(32), rects_,
                            LoadAlgorithm::kHilbertSort);
    ASSERT_TRUE(built.ok());
    built_ = *built;
  }

  Result<RTree> OpenTree(storage::PageCache* pool) {
    return RTree::Open(pool, RTreeConfig::WithFanout(32), built_.root,
                       built_.height);
  }

  // Serial ground truth through a private pool, sorted per query.
  std::vector<std::vector<ObjectId>> SerialResults(
      const std::vector<Rect>& queries) {
    auto pool = storage::BufferPool::MakeLru(&store_, 32);
    auto tree = OpenTree(pool.get());
    EXPECT_TRUE(tree.ok());
    std::vector<std::vector<ObjectId>> out(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_TRUE(tree->Search(queries[q], &out[q]).ok());
      out[q] = Sorted(std::move(out[q]));
    }
    return out;
  }

  storage::MemPageStore store_{storage::kDefaultPageSize};
  std::vector<Rect> rects_;
  BuiltTree built_;
};

TEST_F(SharedFrontierTest, SingleWorkerMatchesSerialSearch) {
  auto pool = storage::BufferPool::MakeLru(&store_, 32);
  auto tree = OpenTree(pool.get());
  ASSERT_TRUE(tree.ok());
  const std::vector<Rect> queries = MakeQueries(60, 7);
  const auto expected = SerialResults(queries);

  SharedBatchExecutor executor(&*tree, 1);
  std::vector<std::vector<ObjectId>> results;
  BatchStats stats;
  ASSERT_TRUE(executor.Run(0, queries, &results, &stats).ok());
  ASSERT_EQ(results.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(Sorted(results[q]), expected[q]) << "query " << q;
  }
  EXPECT_GT(stats.node_accesses, 0u);
}

TEST_F(SharedFrontierTest, WorkersMatchSerialAndCountersMatchBatched) {
  constexpr uint32_t kWorkers = 3;
  const std::vector<Rect> all = MakeQueries(90, 11);
  const auto expected = SerialResults(all);

  // Global node accesses must equal BatchExecutor over the merged set: the
  // shared frontier holds the same (page, query) items, only claimed by
  // different threads.
  uint64_t batched_nodes = 0;
  {
    auto pool = storage::BufferPool::MakeLru(&store_, 64);
    auto tree = OpenTree(pool.get());
    ASSERT_TRUE(tree.ok());
    BatchExecutor executor(&*tree);
    std::vector<std::vector<ObjectId>> results;
    BatchStats stats;
    ASSERT_TRUE(executor.Run(all, &results, &stats).ok());
    batched_nodes = stats.node_accesses;
  }

  auto pool = storage::ShardedBufferPool::MakeLru(&store_, 64);
  auto tree = OpenTree(pool.get());
  ASSERT_TRUE(tree.ok());
  SharedBatchExecutor executor(&*tree, kWorkers);

  // Uneven slices on purpose (30 is divisible by 3; 90 split 40/40/10 is
  // not what SliceSize would do, but any split must work).
  const size_t cuts[kWorkers + 1] = {0, 40, 80, 90};
  std::vector<std::vector<std::vector<ObjectId>>> results(kWorkers);
  std::vector<BatchStats> stats(kWorkers);
  std::vector<Status> statuses(kWorkers, Status::OK());
  {
    std::vector<std::thread> threads;
    for (uint32_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        std::span<const Rect> slice(all.data() + cuts[w],
                                    cuts[w + 1] - cuts[w]);
        statuses[w] = executor.Run(w, slice, &results[w], &stats[w]);
      });
    }
    for (auto& t : threads) t.join();
  }
  uint64_t shared_nodes = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    ASSERT_TRUE(statuses[w].ok()) << "worker " << w;
    shared_nodes += stats[w].node_accesses;
    for (size_t q = 0; q < results[w].size(); ++q) {
      EXPECT_EQ(Sorted(results[w][q]), expected[cuts[w] + q])
          << "worker " << w << " query " << q;
    }
  }
  EXPECT_EQ(shared_nodes, batched_nodes);
}

TEST_F(SharedFrontierTest, EmptySlicesStillParticipate) {
  constexpr uint32_t kWorkers = 2;
  const std::vector<Rect> queries = MakeQueries(20, 13);
  const auto expected = SerialResults(queries);

  auto pool = storage::ShardedBufferPool::MakeLru(&store_, 32);
  auto tree = OpenTree(pool.get());
  ASSERT_TRUE(tree.ok());
  SharedBatchExecutor executor(&*tree, kWorkers);

  std::vector<std::vector<ObjectId>> full, empty;
  Status s0, s1;
  {
    std::thread other([&] {
      s1 = executor.Run(1, std::span<const Rect>(), &empty, nullptr);
    });
    s0 = executor.Run(0, queries, &full, nullptr);
    other.join();
  }
  ASSERT_TRUE(s0.ok()) << s0.ToString();
  ASSERT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_TRUE(empty.empty());
  ASSERT_EQ(full.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(Sorted(full[q]), expected[q]) << "query " << q;
  }
}

TEST_F(SharedFrontierTest, ErrorAbortsAllWorkersWithSameStatus) {
  constexpr uint32_t kWorkers = 2;
  storage::FaultInjectingPageStore faulty(&store_);
  auto pool = storage::ShardedBufferPool::MakeLru(&faulty, 32);
  auto tree = OpenTree(pool.get());
  ASSERT_TRUE(tree.ok());
  SharedBatchExecutor executor(&*tree, kWorkers);
  const std::vector<Rect> queries = MakeQueries(40, 17, /*side=*/0.3);

  // Fail plenty of reads so the fault fires no matter which worker claims
  // the window that reads next.
  faulty.FailNextReads(1000000, Status::IoError("disk gone"));
  std::vector<std::vector<std::vector<ObjectId>>> results(kWorkers);
  std::vector<Status> statuses(kWorkers, Status::OK());
  {
    std::vector<std::thread> threads;
    for (uint32_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        std::span<const Rect> slice(queries.data() + w * 20, 20);
        statuses[w] = executor.Run(w, slice, &results[w], nullptr);
      });
    }
    for (auto& t : threads) t.join();
  }
  for (uint32_t w = 0; w < kWorkers; ++w) {
    EXPECT_FALSE(statuses[w].ok()) << "worker " << w;
    EXPECT_EQ(statuses[w].code(), StatusCode::kIoError);
  }

  // And the same executor recovers for a clean collective round.
  faulty.FailNextReads(0, Status::OK());
  const auto expected = SerialResults(queries);
  {
    std::vector<std::thread> threads;
    for (uint32_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        std::span<const Rect> slice(queries.data() + w * 20, 20);
        statuses[w] = executor.Run(w, slice, &results[w], nullptr);
      });
    }
    for (auto& t : threads) t.join();
  }
  for (uint32_t w = 0; w < kWorkers; ++w) {
    ASSERT_TRUE(statuses[w].ok()) << "worker " << w;
    for (size_t q = 0; q < 20; ++q) {
      EXPECT_EQ(Sorted(results[w][q]), expected[w * 20 + q])
          << "worker " << w << " query " << q;
    }
  }
}

TEST_F(SharedFrontierTest, RunWorkloadSharedMatchesPrivateFrontierCounters) {
  sim::UniformRegionGenerator gen(0.05, 0.05);

  sim::WorkloadOptions options;
  options.threads = 2;
  options.base_seed = 3;
  options.warmup = 40;
  options.queries = 200;
  options.batch_size = 32;

  auto run = [&](bool shared) -> sim::WorkloadResult {
    auto pool = storage::ShardedBufferPool::MakeLru(&store_, 48);
    auto tree = OpenTree(pool.get());
    EXPECT_TRUE(tree.ok());
    options.shared_frontier = shared;
    auto result = sim::RunWorkload(&*tree, &store_, &gen, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  };

  const sim::WorkloadResult base = run(false);
  const sim::WorkloadResult shared = run(true);
  EXPECT_EQ(shared.queries, base.queries);
  // Same query streams, same per-(page, query) dedup semantics: the global
  // logical work is identical; only page pinning is arranged differently.
  EXPECT_EQ(shared.node_accesses, base.node_accesses);
  EXPECT_GT(shared.node_accesses, 0u);
}

TEST(SharedFrontierValidationTest, RequiresBatchSizeAtLeastTwo) {
  storage::MemPageStore store(storage::kDefaultPageSize);
  Rng rng(1);
  auto rects = data::GenerateSyntheticRegion(500, &rng);
  auto built = BuildRTree(&store, RTreeConfig::WithFanout(16), rects,
                          LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto pool = storage::BufferPool::MakeLru(&store, 16);
  auto tree = RTree::Open(pool.get(), RTreeConfig::WithFanout(16),
                          built->root, built->height);
  ASSERT_TRUE(tree.ok());

  sim::UniformRegionGenerator gen(0.05, 0.05);
  sim::WorkloadOptions options;
  options.threads = 1;
  options.queries = 10;
  options.batch_size = 1;
  options.shared_frontier = true;
  auto result = sim::RunWorkload(&*tree, &store, &gen, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rtb::rtree
