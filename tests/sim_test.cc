// Tests for the query generators, the MBR-list LRU simulator, and the
// end-to-end workload runner (cross-checking simulator vs real execution).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "model/access_prob.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "rtree/summary.h"
#include "sim/lru_sim.h"
#include "sim/query_gen.h"
#include "sim/runner.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace rtb::sim {
namespace {

using geom::Point;
using geom::Rect;
using rtree::TreeSummary;
using storage::MemPageStore;

// --------------------------------------------------------------------------
// Query generators
// --------------------------------------------------------------------------

TEST(QueryGenTest, UniformPointsAreDegenerateAndInSquare) {
  UniformPointGenerator gen;
  Rng rng(401);
  for (int i = 0; i < 1000; ++i) {
    Rect q = gen.Next(rng);
    EXPECT_EQ(q.Area(), 0.0);
    EXPECT_TRUE(Rect::UnitSquare().Contains(q));
  }
}

TEST(QueryGenTest, UniformRegionsFitInsideSquareWithExactSize) {
  UniformRegionGenerator gen(0.25, 0.1);
  Rng rng(409);
  for (int i = 0; i < 1000; ++i) {
    Rect q = gen.Next(rng);
    EXPECT_NEAR(q.width(), 0.25, 1e-12);
    EXPECT_NEAR(q.height(), 0.1, 1e-12);
    EXPECT_TRUE(Rect::UnitSquare().Contains(q));
  }
}

TEST(QueryGenTest, UniformRegionTopRightCornerCoversUPrime) {
  // The top-right corner must reach both extremes of U' = [qx,1] x [qy,1].
  UniformRegionGenerator gen(0.5, 0.5);
  Rng rng(419);
  double min_x = 1.0, max_x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    Rect q = gen.Next(rng);
    min_x = std::min(min_x, q.hi.x);
    max_x = std::max(max_x, q.hi.x);
  }
  EXPECT_LT(min_x, 0.52);
  EXPECT_GT(max_x, 0.98);
}

TEST(QueryGenTest, DataDrivenCentersOnDataPoints) {
  auto centers = std::make_shared<const std::vector<Point>>(
      std::vector<Point>{{0.25, 0.25}, {0.75, 0.75}});
  DataDrivenGenerator gen(centers, 0.1, 0.2);
  Rng rng(421);
  for (int i = 0; i < 100; ++i) {
    Rect q = gen.Next(rng);
    Point c = q.Center();
    bool at_first = std::abs(c.x - 0.25) < 1e-12 &&
                    std::abs(c.y - 0.25) < 1e-12;
    bool at_second = std::abs(c.x - 0.75) < 1e-12 &&
                     std::abs(c.y - 0.75) < 1e-12;
    EXPECT_TRUE(at_first || at_second);
    EXPECT_NEAR(q.width(), 0.1, 1e-12);
    EXPECT_NEAR(q.height(), 0.2, 1e-12);
  }
}

TEST(QueryGenTest, FactoryMatchesSpecs) {
  Rng rng(431);
  std::vector<Point> centers = {{0.5, 0.5}};
  auto point_gen = MakeGenerator(model::QuerySpec::UniformPoint());
  ASSERT_TRUE(point_gen.ok());
  EXPECT_EQ((*point_gen)->Next(rng).Area(), 0.0);
  auto region_gen = MakeGenerator(model::QuerySpec::UniformRegion(0.1, 0.1));
  ASSERT_TRUE(region_gen.ok());
  EXPECT_NEAR((*region_gen)->Next(rng).width(), 0.1, 1e-12);
  auto dd_gen =
      MakeGenerator(model::QuerySpec::DataDrivenPoint(), &centers);
  ASSERT_TRUE(dd_gen.ok());
  EXPECT_EQ((*dd_gen)->Next(rng).Center().x, 0.5);
  EXPECT_FALSE(MakeGenerator(model::QuerySpec::DataDrivenPoint()).ok());
}

// --------------------------------------------------------------------------
// MbrListSimulator on a handcrafted tree
// --------------------------------------------------------------------------

// Builds a tiny real tree with fanout 2 over four well-separated points so
// the traversal pattern is fully predictable:
//   leaves: L0 = {(.1,.1)}, L1 = {(.9,.1)}, ... actually 2 points per leaf.
struct TinyTree {
  MemPageStore store;
  std::unique_ptr<TreeSummary> summary;

  TinyTree() {
    std::vector<Rect> rects = {
        Rect::FromPoint({0.1, 0.1}), Rect::FromPoint({0.15, 0.15}),
        Rect::FromPoint({0.9, 0.9}), Rect::FromPoint({0.95, 0.95})};
    auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(2),
                                   rects, rtree::LoadAlgorithm::kNearestX);
    EXPECT_TRUE(built.ok());
    auto s = TreeSummary::Extract(&store, built->root);
    EXPECT_TRUE(s.ok());
    summary = std::make_unique<TreeSummary>(*s);
  }
};

TEST(MbrListSimulatorTest, ColdQueryMissesWarmQueryHits) {
  TinyTree tiny;
  SimOptions options;
  options.buffer_pages = 10;  // Holds the whole 3-node tree.
  MbrListSimulator sim(tiny.summary.get(), options);
  Rect q = Rect::FromPoint({0.12, 0.12});
  uint64_t nodes = 0;
  uint64_t cold = sim.ExecuteQuery(q, &nodes);
  EXPECT_EQ(cold, 2u);  // Root + one leaf, both cold.
  EXPECT_EQ(nodes, 2u);
  uint64_t warm = sim.ExecuteQuery(q, nullptr);
  EXPECT_EQ(warm, 0u);
}

TEST(MbrListSimulatorTest, MissedQueryTouchesNothingByDefault) {
  TinyTree tiny;
  SimOptions options;
  options.buffer_pages = 10;
  MbrListSimulator sim(tiny.summary.get(), options);
  // Query in empty space: root MBR does not contain it.
  Rect q = Rect::FromPoint({0.5, 0.02});
  uint64_t nodes = 0;
  EXPECT_EQ(sim.ExecuteQuery(q, &nodes), 0u);
  EXPECT_EQ(nodes, 0u);

  SimOptions real;
  real.buffer_pages = 10;
  real.always_access_root = true;
  MbrListSimulator sim_real(tiny.summary.get(), real);
  nodes = 0;
  EXPECT_EQ(sim_real.ExecuteQuery(q, &nodes), 1u);  // Root read anyway.
  EXPECT_EQ(nodes, 1u);
}

TEST(MbrListSimulatorTest, LruEvictionWithTinyBuffer) {
  TinyTree tiny;
  SimOptions options;
  options.buffer_pages = 1;  // Root evicts leaf and vice versa.
  MbrListSimulator sim(tiny.summary.get(), options);
  Rect q = Rect::FromPoint({0.12, 0.12});
  EXPECT_EQ(sim.ExecuteQuery(q, nullptr), 2u);  // Both cold.
  // Buffer now holds only the leaf (last touched). Repeat: root misses,
  // evicts leaf; leaf misses again.
  EXPECT_EQ(sim.ExecuteQuery(q, nullptr), 2u);
}

TEST(MbrListSimulatorTest, ZeroBufferAllAccessesMiss) {
  TinyTree tiny;
  SimOptions options;
  options.buffer_pages = 0;
  MbrListSimulator sim(tiny.summary.get(), options);
  Rect q = Rect::FromPoint({0.12, 0.12});
  EXPECT_EQ(sim.ExecuteQuery(q, nullptr), 2u);
  EXPECT_EQ(sim.ExecuteQuery(q, nullptr), 2u);
}

TEST(MbrListSimulatorTest, PinnedRootNeverCostsDiskAccess) {
  TinyTree tiny;
  SimOptions options;
  options.buffer_pages = 2;
  options.pinned_levels = 1;
  MbrListSimulator sim(tiny.summary.get(), options);
  EXPECT_EQ(sim.pinned_pages(), 1u);
  Rect q = Rect::FromPoint({0.12, 0.12});
  EXPECT_EQ(sim.ExecuteQuery(q, nullptr), 1u);  // Only the leaf is cold.
  EXPECT_EQ(sim.ExecuteQuery(q, nullptr), 0u);
}

TEST(MbrListSimulatorTest, InfeasiblePinningReported) {
  TinyTree tiny;
  SimOptions options;
  options.buffer_pages = 1;
  options.pinned_levels = 2;  // Needs 3 pages.
  MbrListSimulator sim(tiny.summary.get(), options);
  UniformPointGenerator gen;
  Rng rng(433);
  auto result = sim.Run(&gen, &rng, 2, 10);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MbrListSimulatorTest, RunProducesBatchStatistics) {
  Rng data_rng(439);
  MemPageStore store;
  auto rects = data::GenerateSyntheticRegion(2000, &data_rng);
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(20),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  SimOptions options;
  options.buffer_pages = 20;
  MbrListSimulator sim(&*summary, options);
  UniformPointGenerator gen;
  Rng rng(443);
  auto result = sim.Run(&gen, &rng, 10, 2000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries_measured, 20000u);
  EXPECT_EQ(result->disk_access_batches.num_batches(), 10u);
  EXPECT_GT(result->mean_disk_accesses, 0.0);
  EXPECT_GE(result->mean_node_accesses, result->mean_disk_accesses);
  EXPECT_GT(result->warmup_used, 0u);
}

// --------------------------------------------------------------------------
// Simulator vs real execution
// --------------------------------------------------------------------------

class SimVsRealTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimVsRealTest, IdenticalDiskAccessCounts) {
  // The MBR-list simulator with always_access_root=true must agree *exactly*
  // with real R-tree execution through a real LRU buffer pool on the same
  // query stream. (Caveat: real recursion pins the root-to-leaf path, so
  // victim selection can differ from plain LRU when one query touches at
  // least as many pages as the pool holds — buffers here are sized above
  // the per-query working set.)
  const uint64_t buffer = GetParam();
  Rng data_rng(457);
  MemPageStore store;
  rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(16);
  auto rects = data::GenerateSyntheticRegion(3000, &data_rng);
  auto built = rtree::BuildRTree(&store, config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  store.ResetStats();

  // Pre-generate a fixed query stream so both sides see identical queries.
  std::vector<Rect> queries;
  Rng qrng(461);
  UniformRegionGenerator gen(0.02, 0.02);
  for (int i = 0; i < 4000; ++i) queries.push_back(gen.Next(qrng));

  SimOptions options;
  options.buffer_pages = buffer;
  options.always_access_root = true;
  MbrListSimulator sim(&*summary, options);
  uint64_t sim_accesses = 0;
  for (const Rect& q : queries) {
    sim_accesses += sim.ExecuteQuery(q, nullptr);
  }

  auto pool = storage::BufferPool::MakeLru(&store, buffer);
  auto tree = rtree::RTree::Open(pool.get(), config, built->root,
                                 built->height);
  ASSERT_TRUE(tree.ok());
  // Open() fetched the root; drop it so both sides start cold.
  ASSERT_TRUE(pool->EvictAll().ok());
  store.ResetStats();
  std::vector<rtree::ObjectId> sink;
  for (const Rect& q : queries) {
    sink.clear();
    ASSERT_TRUE(tree->Search(q, &sink).ok());
  }
  EXPECT_EQ(sim_accesses, store.stats().reads) << "buffer " << buffer;
}

INSTANTIATE_TEST_SUITE_P(Buffers, SimVsRealTest,
                         ::testing::Values(12, 25, 50, 200));

TEST(SimVsRealTest, TinyPoolStillExecutesQueries) {
  // A pool of exactly tree height frames is the minimum a recursive search
  // needs (the whole path stays pinned).
  Rng data_rng(457);
  MemPageStore store;
  rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(16);
  auto rects = data::GenerateSyntheticRegion(3000, &data_rng);
  auto built = rtree::BuildRTree(&store, config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto pool = storage::BufferPool::MakeLru(&store, built->height);
  auto tree = rtree::RTree::Open(pool.get(), config, built->root,
                                 built->height);
  ASSERT_TRUE(tree.ok());
  Rng qrng(461);
  UniformRegionGenerator gen(0.02, 0.02);
  std::vector<rtree::ObjectId> sink;
  for (int i = 0; i < 200; ++i) {
    sink.clear();
    ASSERT_TRUE(tree->Search(gen.Next(qrng), &sink).ok());
  }
}

TEST(SimVsRealTest, PinnedSimulatorMatchesPinnedPool) {
  // With the top levels pinned on both sides, simulator and real execution
  // must still agree exactly on disk accesses.
  Rng data_rng(467);
  MemPageStore store;
  rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(16);
  auto rects = data::GenerateSyntheticRegion(3000, &data_rng);
  auto built = rtree::BuildRTree(&store, config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());

  std::vector<Rect> queries;
  Rng qrng(479);
  UniformRegionGenerator gen(0.02, 0.02);
  for (int i = 0; i < 3000; ++i) queries.push_back(gen.Next(qrng));

  const uint64_t buffer = 40;
  const uint16_t pinned_levels = 2;

  SimOptions options;
  options.buffer_pages = buffer;
  options.pinned_levels = pinned_levels;
  options.always_access_root = true;
  MbrListSimulator sim(&*summary, options);
  uint64_t sim_accesses = 0;
  for (const Rect& q : queries) sim_accesses += sim.ExecuteQuery(q, nullptr);

  auto pool = storage::BufferPool::MakeLru(&store, buffer);
  ASSERT_TRUE(PinTopLevels(pool.get(), *summary, pinned_levels).ok());
  auto tree = rtree::RTree::Open(pool.get(), config, built->root,
                                 built->height);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(pool->EvictAll().ok());
  store.ResetStats();
  // Pinned pages were loaded before ResetStats, so they are free for the
  // pool exactly as they are for the simulator.
  std::vector<rtree::ObjectId> sink;
  for (const Rect& q : queries) {
    sink.clear();
    ASSERT_TRUE(tree->Search(q, &sink).ok());
  }
  EXPECT_EQ(sim_accesses, store.stats().reads);
}

TEST(RunnerTest, PinTopLevelsMakesThemFree) {
  Rng data_rng(463);
  MemPageStore store;
  rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(10);
  auto rects = data::GenerateUniformPoints(2000, &data_rng);
  auto built = rtree::BuildRTree(&store, config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  store.ResetStats();

  auto pool = storage::BufferPool::MakeLru(&store, 40);
  ASSERT_TRUE(PinTopLevels(pool.get(), *summary, 2).ok());
  EXPECT_EQ(pool->num_permanent_pins(), summary->PagesInTopLevels(2));

  auto tree = rtree::RTree::Open(pool.get(), config, built->root,
                                 built->height);
  ASSERT_TRUE(tree.ok());
  UniformPointGenerator gen;
  Rng rng(467);
  auto result = RunWorkload(&*tree, &store, &gen, &rng, /*warmup=*/500,
                            /*queries=*/500);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->node_accesses, 0u);
  // With the top 2 levels pinned and a warm buffer, per-query disk
  // accesses should be modest (only leaf level misses).
  EXPECT_LT(result->MeanDiskAccesses(), result->MeanNodeAccesses());
}

TEST(RunnerTest, PinTooManyLevelsFails) {
  Rng data_rng(479);
  MemPageStore store;
  rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(10);
  auto rects = data::GenerateUniformPoints(2000, &data_rng);
  auto built = rtree::BuildRTree(&store, config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  ASSERT_TRUE(built.ok());
  auto summary = TreeSummary::Extract(&store, built->root);
  ASSERT_TRUE(summary.ok());
  auto pool = storage::BufferPool::MakeLru(&store, 4);
  Status s = PinTopLevels(pool.get(), *summary, summary->height());
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace rtb::sim
