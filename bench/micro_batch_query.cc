// micro_batch_query — batched (level-synchronous) query execution vs. the
// serial per-query loop, with and without the SIMD node-scan kernel.
//
// Two buffer regimes, both on the uniform-region workload:
//
//   * resident — the pool holds the whole tree, so the measurement isolates
//     CPU cost: guard churn per node visit (batching pins each distinct
//     page once per batch) and the entry sweep (scalar NodeView::Intersects
//     vs. the runtime-dispatched SIMD kernel over the gathered SoA
//     scratch). Rows: serial, batched+scalar, batched+SIMD; the acceptance
//     criterion is batched+SIMD >= 1.3x serial queries/sec.
//   * smallbuf — a pool of --small_buffer_pages frames (default 40, a few
//     percent of the tree), the paper's buffer-starved regime. Here the
//     interesting number is buffer behavior, reported two ways:
//       - pool_hit_rate: hits/requests at the pool interface. Batching
//         *lowers* this by construction — the easy repeat requests never
//         reach the pool (a page shared by k queries of a batch is
//         requested once), so the denominator loses mostly-hits.
//       - effective_hit_rate: 1 - disk_reads/node_accesses, the fraction
//         of logical node visits served without touching disk. This is the
//         number comparable across execution strategies — same
//         denominator, and exactly 1 - (paper's cost metric)/visit. The
//         acceptance criterion is batched effective_hit_rate > serial
//         effective_hit_rate at batch_size >= 64.
//
// Every mode replays the identical query stream (generators draw one Rng
// value per query, independent of batching) and the result-id checksums are
// asserted equal, so the rows differ only in execution strategy.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "rtree/batch.h"
#include "rtree/scan_kernel.h"

namespace rtb::bench {
namespace {

using geom::Rect;

struct Measurement {
  double queries_per_sec = 0.0;
  double nodes_per_query = 0.0;
  double pool_hit_rate = 0.0;
  double effective_hit_rate = 0.0;
  double disk_reads_per_query = 0.0;
  uint64_t node_accesses = 0;
  uint64_t result_count = 0;  // Checksum: total ids returned.
};

// Runs `queries` region queries (after `warmup` unmeasured ones) against a
// fresh pool of `buffer_pages` frames. `batch_size <= 1` is the serial
// RTree::Search loop; otherwise the BatchExecutor runs chunks of
// `batch_size`. `kernel` caps the scan kernel for the batched path (the
// serial path always uses the scalar NodeView sweep).
Measurement RunMode(const Workload& w, sim::QueryGenerator* gen,
                    uint64_t buffer_pages, uint64_t seed, uint64_t warmup,
                    uint64_t queries, uint64_t batch_size,
                    rtree::ScanKernel kernel) {
  auto pool = storage::BufferPool::MakeLru(w.store.get(), buffer_pages);
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(w.fanout),
                                 w.tree.root, w.tree.height);
  RTB_CHECK(tree.ok());
  RTB_CHECK(rtree::SetScanKernel(kernel) ||
            kernel == rtree::ScanKernel::kScalar);

  Rng rng(seed);
  Measurement m;
  rtree::BatchExecutor executor(&*tree);
  std::vector<Rect> batch;
  std::vector<std::vector<rtree::ObjectId>> results;
  std::vector<rtree::ObjectId> sink;

  // One phase pass: runs `n` queries; only counts when `measure` is set.
  rtree::QueryStats serial_stats;
  rtree::BatchStats batch_stats;
  auto run_phase = [&](uint64_t n, bool measure) {
    if (batch_size <= 1) {
      for (uint64_t i = 0; i < n; ++i) {
        sink.clear();
        RTB_CHECK(tree->Search(gen->Next(rng), &sink,
                               measure ? &serial_stats : nullptr)
                      .ok());
        if (measure) m.result_count += sink.size();
      }
      return;
    }
    uint64_t done = 0;
    while (done < n) {
      const uint64_t chunk = std::min(batch_size, n - done);
      batch.clear();
      for (uint64_t i = 0; i < chunk; ++i) batch.push_back(gen->Next(rng));
      RTB_CHECK(executor.Run(batch, &results,
                             measure ? &batch_stats : nullptr)
                    .ok());
      if (measure) {
        for (const auto& r : results) m.result_count += r.size();
      }
      done += chunk;
    }
  };

  run_phase(warmup, /*measure=*/false);
  pool->ResetStats();
  const auto start = std::chrono::steady_clock::now();
  run_phase(queries, /*measure=*/true);
  const auto end = std::chrono::steady_clock::now();

  const double seconds = std::chrono::duration<double>(end - start).count();
  const storage::BufferStats buffer = pool->AggregateStats();
  m.node_accesses =
      batch_size <= 1 ? serial_stats.nodes_accessed : batch_stats.node_accesses;
  m.queries_per_sec =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  m.nodes_per_query = queries > 0 ? static_cast<double>(m.node_accesses) /
                                        static_cast<double>(queries)
                                  : 0.0;
  m.pool_hit_rate = buffer.HitRate();
  m.effective_hit_rate =
      m.node_accesses > 0
          ? 1.0 - static_cast<double>(buffer.misses) /
                      static_cast<double>(m.node_accesses)
          : 0.0;
  m.disk_reads_per_query =
      queries > 0 ? static_cast<double>(buffer.misses) /
                        static_cast<double>(queries)
                  : 0.0;
  return m;
}

void EmitRow(JsonDict& row, const Measurement& m, const Measurement& serial,
             uint64_t buffer_pages, uint64_t batch_size,
             rtree::ScanKernel kernel) {
  row.PutInt("buffer_pages", buffer_pages);
  row.PutInt("batch_size", batch_size);
  row.PutStr("kernel",
             batch_size <= 1 ? "none" : rtree::ScanKernelName(kernel));
  row.PutNum("queries_per_sec", m.queries_per_sec);
  row.PutNum("speedup_vs_serial", serial.queries_per_sec > 0.0
                                      ? m.queries_per_sec /
                                            serial.queries_per_sec
                                      : 0.0);
  row.PutNum("nodes_per_query", m.nodes_per_query);
  row.PutNum("pool_hit_rate", m.pool_hit_rate);
  row.PutNum("effective_hit_rate", m.effective_hit_rate);
  row.PutNum("serial_effective_hit_rate", serial.effective_hit_rate);
  row.PutNum("disk_reads_per_query", m.disk_reads_per_query);
  row.PutInt("result_count", m.result_count);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "100"},
               {"queries", "40000"},
               {"warmup", "4000"},
               {"region_side", "0.03"},
               {"batch", "1024"},
               {"small_buffer_pages", "40"},
               {"json", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t queries = flags.GetInt("queries");
  const uint64_t warmup = flags.GetInt("warmup");
  const uint64_t batch = std::max<uint64_t>(2, flags.GetInt("batch"));
  const double region_side = flags.GetDouble("region_side");
  const uint64_t small_buffer = flags.GetInt("small_buffer_pages");
  const rtree::ScanKernel best = rtree::BestScanKernel();

  Banner("micro: batched query execution",
         "level-synchronous batches + SIMD node scan vs. the serial loop; " +
             Table::Int(flags.GetInt("points")) + " uniform points, fanout " +
             Table::Int(flags.GetInt("fanout")) + ", batch " +
             Table::Int(batch),
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  Workload w = BuildWorkload(rects,
                             static_cast<uint32_t>(flags.GetInt("fanout")),
                             rtree::LoadAlgorithm::kHilbertSort);
  const uint64_t total_pages = w.summary->NumNodes();

  BenchReport report("micro_batch_query");
  report.meta().PutInt("seed", seed);
  report.meta().PutInt("points", flags.GetInt("points"));
  report.meta().PutInt("fanout", flags.GetInt("fanout"));
  report.meta().PutInt("tree_pages", total_pages);
  report.meta().PutInt("tree_height", w.tree.height);
  report.meta().PutInt("queries", queries);
  report.meta().PutInt("warmup", warmup);
  report.meta().PutNum("region_side", region_side);
  report.meta().PutInt("small_buffer_pages", small_buffer);
  report.meta().PutStr("best_kernel", rtree::ScanKernelName(best));

  Table table({"config", "batch", "kernel", "queries/s", "speedup",
               "pool hit", "effective hit", "reads/query"});
  auto add = [&](const std::string& name, const Measurement& m,
                 const Measurement& serial, uint64_t buffer_pages,
                 uint64_t batch_size, rtree::ScanKernel kernel) {
    EmitRow(report.AddConfig(name), m, serial, buffer_pages, batch_size,
            kernel);
    table.AddRow(
        {name, Table::Int(batch_size),
         batch_size <= 1 ? "-" : std::string(rtree::ScanKernelName(kernel)),
         Table::Num(m.queries_per_sec, 0),
         Table::Num(m.queries_per_sec /
                        std::max(serial.queries_per_sec, 1e-9),
                    2) +
             "x",
         Table::Num(100.0 * m.pool_hit_rate, 2) + "%",
         Table::Num(100.0 * m.effective_hit_rate, 2) + "%",
         Table::Num(m.disk_reads_per_query, 3)});
  };

  sim::UniformRegionGenerator gen(region_side, region_side);
  const uint64_t query_seed = seed + 17;

  // Resident regime: pure CPU comparison.
  const Measurement res_serial =
      RunMode(w, &gen, total_pages, query_seed, warmup, queries,
              /*batch_size=*/1, rtree::ScanKernel::kScalar);
  const Measurement res_scalar =
      RunMode(w, &gen, total_pages, query_seed, warmup, queries, batch,
              rtree::ScanKernel::kScalar);
  const Measurement res_simd = RunMode(w, &gen, total_pages, query_seed,
                                       warmup, queries, batch, best);
  RTB_CHECK(res_scalar.result_count == res_serial.result_count);
  RTB_CHECK(res_simd.result_count == res_serial.result_count);
  add("region_resident_serial", res_serial, res_serial, total_pages, 1,
      rtree::ScanKernel::kScalar);
  add("region_resident_batched_scalar", res_scalar, res_serial, total_pages,
      batch, rtree::ScanKernel::kScalar);
  add("region_resident_batched_simd", res_simd, res_serial, total_pages,
      batch, best);

  // Buffer-starved regime: hit-rate comparison from batch 64 up.
  const Measurement small_serial =
      RunMode(w, &gen, small_buffer, query_seed, warmup, queries,
              /*batch_size=*/1, rtree::ScanKernel::kScalar);
  add("region_smallbuf_serial", small_serial, small_serial, small_buffer, 1,
      rtree::ScanKernel::kScalar);
  std::vector<uint64_t> small_batches = {64, batch, batch * 4};
  std::sort(small_batches.begin(), small_batches.end());
  small_batches.erase(
      std::unique(small_batches.begin(), small_batches.end()),
      small_batches.end());
  for (uint64_t b : small_batches) {
    const Measurement m = RunMode(w, &gen, small_buffer, query_seed, warmup,
                                  queries, b, best);
    RTB_CHECK(m.result_count == small_serial.result_count);
    add("region_smallbuf_batched" + Table::Int(b), m, small_serial,
        small_buffer, b, best);
  }

  table.Print();
  if (!report.WriteFile(flags.GetString("json"))) return 1;
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
