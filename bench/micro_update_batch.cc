// micro_update_batch — batched vs. tuple-at-a-time updates on a
// file-backed store, and vectored (pwritev) vs. scalar dirty-page
// writeback.
//
// One insert/delete op stream (50/50 mix; deletes target surviving
// bulk-load entries, so the stream is independent of flush timing) is
// precomputed once and replayed against a freshly bulk-loaded tree per
// row. Every row drains through UpdateBatchExecutor and flushes the pool
// after each drain, so dirty pages reach the store once per drain:
//
//   * serial_scalar    — drain size 1 (the executor delegates to
//                        RTree::Insert/Delete, Guttman's algorithms): every
//                        update re-pins and rewrites its whole root-to-leaf
//                        path, one pwrite per dirty page.
//   * batched_scalar   — drain size `batch`: group-by-leaf application pins
//                        each touched page once per batch, so a leaf
//                        receiving k updates is written back once, not k
//                        times. Still one pwrite per page.
//   * batched_vectored — same, with the pool's sorted flush handed to
//                        FilePageStore::WriteBatch, which coalesces runs of
//                        consecutive page ids into pwritev.
//
// Reported per measured op: pool pin requests (the pin-economy claim),
// page writes (the paper's disk-write metric), and write syscalls
// (writes - batch_pages + batches; the number the two batching layers
// shrink). Rows are checked to leave the same number of data entries and
// a structurally valid tree. The acceptance criterion (asserted at batch
// >= 64 when pwritev is available): batched_vectored uses <= half the
// write syscalls per op of serial_scalar.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench/common.h"
#include "rtree/update_batch.h"
#include "rtree/validate.h"

namespace rtb::bench {
namespace {

using geom::Rect;
using rtree::UpdateOp;

struct Measurement {
  double updates_per_sec = 0.0;
  double pins_per_op = 0.0;
  double writes_per_op = 0.0;
  double syscalls_per_op = 0.0;
  double pages_per_batch = 0.0;
  uint64_t writes = 0;
  uint64_t write_batches = 0;
  uint64_t write_syscalls = 0;
  uint64_t entries = 0;        // Checksum: data entries after the run.
  uint64_t deletes_found = 0;  // Checksum: every delete must land.
};

// Precomputes the shared op stream. Deletes draw victims from the
// not-yet-deleted bulk-load entries only (ids are dataset indexes, the
// BuildRTree contract); inserts get fresh ids above the dataset range and
// never become victims, so the stream replays identically regardless of
// how a row batches it.
std::vector<UpdateOp> MakeOps(uint64_t n, const std::vector<Rect>& rects,
                              Rng* rng) {
  std::vector<uint32_t> ledger(rects.size());
  std::iota(ledger.begin(), ledger.end(), 0u);
  std::vector<UpdateOp> ops;
  ops.reserve(n);
  uint64_t next_id = uint64_t{1} << 40;
  for (uint64_t i = 0; i < n; ++i) {
    const double x = rng->NextDouble();
    const double y = rng->NextDouble();
    if (!ledger.empty() && rng->NextDouble() < 0.5) {
      const uint64_t v = rng->UniformInt(ledger.size());
      const uint32_t idx = ledger[v];
      ledger[v] = ledger.back();
      ledger.pop_back();
      ops.push_back(UpdateOp::Delete(rects[idx], idx));
    } else {
      ops.push_back(UpdateOp::Insert(Rect{{x, y}, {x, y}}, next_id++));
    }
  }
  return ops;
}

// Replays `ops` against a fresh bulk load of `rects`, draining the
// executor and flushing the pool every `drain` ops. Store and pool
// counters are reset after warm-up, so the reported I/O covers the
// measured ops only.
Measurement RunVariant(const std::string& path, const std::vector<Rect>& rects,
                       const std::vector<UpdateOp>& ops, uint32_t fanout,
                       bool vectored, uint64_t drain, uint64_t buffer_pages,
                       uint64_t warmup) {
  RTB_CHECK(storage::SetVectoredIo(vectored) || !vectored);
  std::remove(path.c_str());
  auto store = storage::FilePageStore::Create(path);
  RTB_CHECK(store.ok());
  const auto config = rtree::RTreeConfig::WithFanout(fanout);
  auto built = rtree::BuildRTree(store->get(), config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  RTB_CHECK(built.ok());

  Measurement m;
  double seconds = 0.0;
  {
    auto pool = storage::BufferPool::MakeLru(store->get(), buffer_pages);
    auto tree = rtree::RTree::Open(pool.get(), config, built->root,
                                   built->height);
    RTB_CHECK(tree.ok());
    rtree::UpdateBatchExecutor executor(&*tree);
    rtree::UpdateBatchStats ustats;

    auto run_phase = [&](size_t begin, size_t end) {
      size_t done = begin;
      while (done < end) {
        const size_t chunk = std::min<size_t>(drain, end - done);
        const Status s = executor.Run(
            std::span<const UpdateOp>(ops.data() + done, chunk), &ustats);
        RTB_CHECK(s.ok());
        RTB_CHECK(pool->FlushAll().ok());
        done += chunk;
      }
    };

    run_phase(0, warmup);
    store->get()->ResetStats();
    pool->ResetStats();
    ustats = rtree::UpdateBatchStats{};
    const auto start = std::chrono::steady_clock::now();
    run_phase(warmup, ops.size());
    const auto end = std::chrono::steady_clock::now();
    seconds = std::chrono::duration<double>(end - start).count();

    m.pins_per_op = static_cast<double>(pool->stats().requests);
    m.deletes_found = ustats.deletes_found;
    RTB_CHECK(pool->Close().ok());
  }

  const storage::IoStats io = store->get()->stats();
  const auto report = rtree::ValidateTree(store->get(), built->root, config,
                                          {.check_min_fill = false});
  RTB_CHECK(report.ok);
  m.entries = report.num_data_entries;
  m.writes = io.writes;
  m.write_batches = io.write_batches;
  m.write_syscalls = io.WriteSyscalls();
  m.pages_per_batch = io.PagesPerWriteBatch();
  const double n = static_cast<double>(ops.size() - warmup);
  m.updates_per_sec = seconds > 0.0 ? n / seconds : 0.0;
  m.pins_per_op = n > 0 ? m.pins_per_op / n : 0.0;
  m.writes_per_op = n > 0 ? static_cast<double>(io.writes) / n : 0.0;
  m.syscalls_per_op = n > 0 ? static_cast<double>(m.write_syscalls) / n : 0.0;
  store->reset();  // Close before unlinking.
  std::remove(path.c_str());
  return m;
}

void EmitRow(JsonDict& row, const Measurement& m, const Measurement& serial) {
  row.PutNum("updates_per_sec", m.updates_per_sec);
  row.PutNum("pins_per_op", m.pins_per_op);
  row.PutNum("writes_per_op", m.writes_per_op);
  row.PutNum("write_syscalls_per_op", m.syscalls_per_op);
  row.PutNum("syscall_reduction_vs_serial",
             m.syscalls_per_op > 0.0 ? serial.syscalls_per_op / m.syscalls_per_op
                                     : 0.0);
  row.PutInt("writes", m.writes);
  row.PutInt("write_batches", m.write_batches);
  row.PutInt("write_syscalls", m.write_syscalls);
  row.PutNum("pages_per_write_batch", m.pages_per_batch);
  row.PutInt("entries_after", m.entries);
  row.PutInt("deletes_found", m.deletes_found);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "100"},
               {"updates", "12000"},
               {"warmup", "2000"},
               {"batch", "128"},
               {"buffer_pages", "64"},
               {"path", "/tmp/rtb_micro_update_batch.store"},
               {"json", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t updates = flags.GetInt("updates");
  const uint64_t warmup = std::min<uint64_t>(flags.GetInt("warmup"), updates);
  const uint64_t batch = std::max<uint64_t>(2, flags.GetInt("batch"));
  const uint64_t buffer_pages = flags.GetInt("buffer_pages");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  const std::string path = flags.GetString("path");

  Banner("micro: batched updates",
         "group-by-leaf batches + pwritev flush vs. tuple-at-a-time; " +
             Table::Int(flags.GetInt("points")) + " uniform points, fanout " +
             Table::Int(fanout) + ", " + Table::Int(buffer_pages) +
             "-page pool, batch " + Table::Int(batch),
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  Rng op_rng(seed + 17);
  const auto ops = MakeOps(updates, rects, &op_rng);
  const uint64_t n_deletes = static_cast<uint64_t>(std::count_if(
      ops.begin(), ops.end(),
      [](const UpdateOp& op) { return op.kind == UpdateOp::Kind::kDelete; }));

  BenchReport report("micro_update_batch");
  report.meta().PutInt("seed", seed);
  report.meta().PutInt("points", flags.GetInt("points"));
  report.meta().PutInt("fanout", fanout);
  report.meta().PutInt("updates", updates);
  report.meta().PutInt("warmup", warmup);
  report.meta().PutInt("inserts", updates - n_deletes);
  report.meta().PutInt("deletes", n_deletes);
  report.meta().PutInt("buffer_pages", buffer_pages);
  report.meta().PutInt("batch", batch);
  report.meta().PutBool("vectored_available",
                        storage::VectoredIoAvailable());

  Table table({"config", "updates/s", "pins/op", "writes/op", "syscalls/op",
               "pages/batch"});
  auto add = [&](const std::string& name, const Measurement& m,
                 const Measurement& serial) {
    EmitRow(report.AddConfig(name), m, serial);
    table.AddRow({name, Table::Num(m.updates_per_sec, 0),
                  Table::Num(m.pins_per_op, 2), Table::Num(m.writes_per_op, 3),
                  Table::Num(m.syscalls_per_op, 3),
                  Table::Num(m.pages_per_batch, 2)});
  };

  const Measurement serial = RunVariant(path, rects, ops, fanout,
                                        /*vectored=*/false, /*drain=*/1,
                                        buffer_pages, warmup);
  add("serial_scalar", serial, serial);

  const Measurement batched = RunVariant(path, rects, ops, fanout,
                                         /*vectored=*/false, batch,
                                         buffer_pages, warmup);
  RTB_CHECK(batched.entries == serial.entries);
  RTB_CHECK(batched.deletes_found == serial.deletes_found);
  add("batched_scalar", batched, serial);

  if (storage::VectoredIoAvailable()) {
    const Measurement vectored = RunVariant(path, rects, ops, fanout,
                                            /*vectored=*/true, batch,
                                            buffer_pages, warmup);
    RTB_CHECK(vectored.entries == serial.entries);
    RTB_CHECK(vectored.deletes_found == serial.deletes_found);
    RTB_CHECK(vectored.write_batches > 0);
    add("batched_vectored", vectored, serial);
    // The PR's acceptance bar: >= 2x fewer write syscalls than
    // tuple-at-a-time once batches reach 64 ops.
    if (batch >= 64) {
      RTB_CHECK(vectored.syscalls_per_op * 2.0 <= serial.syscalls_per_op);
    }
  }

  table.Print();
  if (!report.WriteFile(flags.GetString("json"))) return 1;
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
