// Figure 6 — Sensitivity to buffer size, Long Beach (TIGER) data.
//
// Disk accesses per query vs buffer size (2..500 pages) for trees built by
// TAT, NX and HS with 100 rectangles per node. Left plot: uniform point
// queries; right plot: 1% region queries (0.1 x 0.1).
//
// Paper findings to check in the output:
//  * Point queries: TAT worst at all buffer sizes, HS best; TAT benefits
//    ~linearly from buffer, HS gets most of its benefit early ("knee").
//  * Region queries: TAT beats NX at small buffers, but the curves CROSS at
//    a moderate buffer size (~200 in the paper) — the qualitative-ordering
//    reversal that motivates the whole buffer model.

#include <cstdio>
#include <string>

#include "bench/common.h"

namespace rtb::bench {
namespace {

constexpr uint64_t kBuffers[] = {2,   5,   10,  25,  50,  75,  100, 150,
                                 200, 250, 300, 350, 400, 450, 500};

void PrintSweep(const char* title, const Workload& tat, const Workload& nx,
                const Workload& hs, const model::QuerySpec& spec,
                const std::string& csv, const std::string& csv_label) {
  std::printf("\n%s\n", title);
  Table table({"buffer", "TAT", "NX", "HS"});
  for (uint64_t buffer : kBuffers) {
    table.AddRow({Table::Int(buffer),
                  Table::Num(ModelDiskAccesses(tat, spec, buffer), 4),
                  Table::Num(ModelDiskAccesses(nx, spec, buffer), 4),
                  Table::Num(ModelDiskAccesses(hs, spec, buffer), 4)});
  }
  table.Print();
  if (!csv.empty()) table.AppendCsv(csv, csv_label);
}

// Reports the buffer size where NX first beats TAT (the paper's crossover).
void ReportCrossover(const Workload& tat, const Workload& nx,
                     const model::QuerySpec& spec) {
  for (uint64_t buffer = 2; buffer <= 500; ++buffer) {
    if (ModelDiskAccesses(nx, spec, buffer) <
        ModelDiskAccesses(tat, spec, buffer)) {
      std::printf(
          "\nTAT/NX crossover (region queries): NX becomes better at buffer "
          "= %llu pages (paper: ~200).\n",
          static_cast<unsigned long long>(buffer));
      return;
    }
  }
  std::printf("\nTAT/NX crossover: none found in [2, 500].\n");
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"}, {"rects", "53145"}, {"fanout", "100"},
               {"csv", ""}});
  const uint64_t seed = flags.GetInt("seed");

  Banner("Figure 6: sensitivity to buffer size (TIGER data)",
         "disk accesses vs buffer size; TIGER surrogate, " +
             Table::Int(flags.GetInt("rects")) + " rects, fanout " +
             Table::Int(flags.GetInt("fanout")) +
             "; left: point queries, right: 1% region queries",
         seed);

  auto rects = MakeTigerData(seed, flags.GetInt("rects"));
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  Workload tat = BuildWorkload(rects, fanout,
                               rtree::LoadAlgorithm::kTupleAtATime);
  Workload nx = BuildWorkload(rects, fanout, rtree::LoadAlgorithm::kNearestX);
  Workload hs = BuildWorkload(rects, fanout,
                              rtree::LoadAlgorithm::kHilbertSort);
  std::printf("\nTree sizes: TAT %zu nodes, NX %zu nodes, HS %zu nodes\n",
              tat.summary->NumNodes(), nx.summary->NumNodes(),
              hs.summary->NumNodes());

  const std::string csv = flags.GetString("csv");
  PrintSweep("Left: uniform point queries (disk accesses/query)", tat, nx, hs,
             model::QuerySpec::UniformPoint(), csv, "fig6_point");
  model::QuerySpec region = model::QuerySpec::UniformRegion(0.1, 0.1);
  PrintSweep("Right: 1% region queries, 0.1 x 0.1 (disk accesses/query)",
             tat, nx, hs, region, csv, "fig6_region");
  ReportCrossover(tat, nx, region);
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
