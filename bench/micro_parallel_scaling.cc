// micro_parallel_scaling — query throughput and hit rate vs. thread count.
//
// Not a paper figure: this bench characterizes the concurrent
// query-execution layer (ShardedBufferPool + the unified workload runner)
// on the Table 1 workload (40,000 uniform points, fanout 25, uniform point
// queries). It reports, per thread count:
//
//   * throughput (queries/second over the measured phase) and speedup
//     relative to the one-thread run on the same sharded pool,
//   * mean disk accesses per query and the merged buffer hit rate — these
//     quantify how far per-shard LRU drifts from the serial global-LRU
//     reference stream the analytical model assumes.
//
// Every row is one declarative ExperimentSpec executed by engine::Run —
// the same pipeline `rtb_cli run` drives. The first row's serial spec
// (threads=1, shards=0) selects the single-threaded BufferPool; its counts
// are bit-identical to sim::RunWorkload. Speedups are hardware-dependent:
// expect ~linear scaling up to the physical core count (a single-core
// machine shows ~1x for every row).

#include <cinttypes>
#include <cstdio>
#include <thread>

#include "bench/common.h"

namespace rtb::bench {
namespace {

// The Table 1 workload as a spec, parameterized by worker/shard counts.
engine::ExperimentSpec MakeSpec(const Flags& flags, uint32_t threads,
                                uint64_t shards) {
  engine::ExperimentSpec spec;
  spec.name = "micro_parallel_scaling";
  spec.dataset.kind = "uniform";
  spec.dataset.n = flags.GetInt("points");
  spec.dataset.seed = flags.GetInt("seed");
  spec.tree.fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  spec.tree.algo = "HS";
  spec.pool.buffer_pages = flags.GetInt("buffer");
  spec.pool.shards = shards;
  spec.workload.warmup = flags.GetInt("warmup");
  engine::QueryClassSpec cls;
  cls.label = "point";
  cls.count = flags.GetInt("queries");
  spec.workload.classes.push_back(cls);
  spec.run.threads = threads;
  spec.run.seed = flags.GetInt("seed");
  spec.run.evaluate_model = false;
  return spec;
}

engine::RunReport MustRun(const engine::ExperimentSpec& spec) {
  auto report = engine::Run(spec);
  RTB_CHECK(report.ok());
  return std::move(*report);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "25"},
               {"buffer", "100"},
               {"warmup", "20000"},
               {"queries", "200000"},
               {"max_threads", "8"},
               {"shards", "0"},
               {"csv", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t buffer = flags.GetInt("buffer");
  const uint64_t warmup = flags.GetInt("warmup");
  const uint64_t queries = flags.GetInt("queries");
  const uint32_t max_threads =
      static_cast<uint32_t>(flags.GetInt("max_threads"));
  const size_t shards = flags.GetInt("shards");

  Banner("micro: parallel query scaling",
         "throughput and hit rate vs. thread count; " +
             Table::Int(flags.GetInt("points")) + " uniform points, fanout " +
             Table::Int(flags.GetInt("fanout")) + ", buffer " +
             Table::Int(buffer) + " pages, " + Table::Int(queries) +
             " point queries (" + Table::Int(warmup) + " warm-up)",
         seed);
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  Table table({"threads", "pool", "queries/s", "speedup", "disk/query",
               "hit rate"});

  // Serial reference: the paper's single-threaded BufferPool, driven
  // through the engine (bit-identical to sim::RunWorkload).
  engine::RunReport serial =
      MustRun(MakeSpec(flags, /*threads=*/1, /*shards=*/0));
  table.AddRow({"1", "serial",
                Table::Num(serial.total.QueriesPerSecond(), 0),
                "(reference)",
                Table::Num(serial.total.MeanDiskAccesses(), 4),
                Table::Num(100.0 * serial.buffer.HitRate(), 2) + "%"});

  // Every scaling row runs the same sharded pool structure, so the series
  // isolates the effect of the worker count.
  const uint64_t scaling_shards =
      shards == 0 ? storage::ShardedBufferPool::kDefaultShards : shards;
  double base_qps = 0.0;
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    engine::RunReport est = MustRun(MakeSpec(flags, threads, scaling_shards));
    const double qps = est.total.QueriesPerSecond();
    if (threads == 1) base_qps = qps;
    table.AddRow({Table::Int(threads), "sharded", Table::Num(qps, 0),
                  base_qps > 0.0 ? Table::Num(qps / base_qps, 2) + "x"
                                 : "n/a",
                  Table::Num(est.total.MeanDiskAccesses(), 4),
                  Table::Num(100.0 * est.buffer.HitRate(), 2) + "%"});
  }
  table.Print();
  if (!flags.GetString("csv").empty()) {
    table.AppendCsv(flags.GetString("csv"), "micro_parallel_scaling");
  }

  std::printf(
      "\nNotes: per-shard LRU tracks the serial pool's hit rate closely\n"
      "(the model's serial reference stream stays valid); speedup is bound\n"
      "by physical cores and by contention on the shards holding the root\n"
      "and its children.\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
