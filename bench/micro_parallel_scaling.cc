// micro_parallel_scaling — query throughput and hit rate vs. thread count.
//
// Not a paper figure: this bench characterizes the concurrent
// query-execution layer (ShardedBufferPool + ParallelRunner) on the
// Table 1 workload (40,000 uniform points, fanout 25, uniform point
// queries). It reports, per thread count:
//
//   * throughput (queries/second over the measured phase) and speedup
//     relative to the one-thread run on the same sharded pool,
//   * mean disk accesses per query and the merged buffer hit rate — these
//     quantify how far per-shard LRU drifts from the serial global-LRU
//     reference stream the analytical model assumes.
//
// The first row executes the serial single-threaded BufferPool as the
// baseline; its counts are bit-identical to sim::RunWorkload. Speedups are
// hardware-dependent: expect ~linear scaling up to the physical core count
// (a single-core machine shows ~1x for every row).

#include <cinttypes>
#include <cstdio>
#include <thread>

#include "bench/common.h"

namespace rtb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "25"},
               {"buffer", "100"},
               {"warmup", "20000"},
               {"queries", "200000"},
               {"max_threads", "8"},
               {"shards", "0"},
               {"csv", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t buffer = flags.GetInt("buffer");
  const uint64_t warmup = flags.GetInt("warmup");
  const uint64_t queries = flags.GetInt("queries");
  const uint32_t max_threads =
      static_cast<uint32_t>(flags.GetInt("max_threads"));
  const size_t shards = flags.GetInt("shards");

  Banner("micro: parallel query scaling",
         "throughput and hit rate vs. thread count; " +
             Table::Int(flags.GetInt("points")) + " uniform points, fanout " +
             Table::Int(flags.GetInt("fanout")) + ", buffer " +
             Table::Int(buffer) + " pages, " + Table::Int(queries) +
             " point queries (" + Table::Int(warmup) + " warm-up)",
         seed);
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  Workload w = BuildWorkload(rects, static_cast<uint32_t>(
                                        flags.GetInt("fanout")),
                             rtree::LoadAlgorithm::kHilbertSort);
  const model::QuerySpec spec = model::QuerySpec::UniformPoint();

  Table table({"threads", "pool", "queries/s", "speedup", "disk/query",
               "hit rate"});

  // Serial reference: the paper's single-threaded BufferPool, exercised by
  // the parallel runner with one worker (bit-identical to sim::RunWorkload).
  ParallelEstimate serial =
      RunParallelQueries(w, spec, buffer, /*threads=*/1, /*shards=*/0,
                         warmup, queries, seed);
  table.AddRow({"1", "serial", Table::Num(serial.run.QueriesPerSecond(), 0),
                "(reference)",
                Table::Num(serial.run.total.MeanDiskAccesses(), 4),
                Table::Num(100.0 * serial.buffer.HitRate(), 2) + "%"});

  // Every scaling row runs the same sharded pool structure, so the series
  // isolates the effect of the worker count.
  const size_t scaling_shards =
      shards == 0 ? storage::ShardedBufferPool::kDefaultShards : shards;
  double base_qps = 0.0;
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    ParallelEstimate est = RunParallelQueries(w, spec, buffer, threads,
                                              scaling_shards, warmup,
                                              queries, seed);
    const double qps = est.run.QueriesPerSecond();
    if (threads == 1) base_qps = qps;
    table.AddRow({Table::Int(threads), "sharded", Table::Num(qps, 0),
                  base_qps > 0.0 ? Table::Num(qps / base_qps, 2) + "x"
                                 : "n/a",
                  Table::Num(est.run.total.MeanDiskAccesses(), 4),
                  Table::Num(100.0 * est.buffer.HitRate(), 2) + "%"});
  }
  table.Print();
  if (!flags.GetString("csv").empty()) {
    table.AppendCsv(flags.GetString("csv"), "micro_parallel_scaling");
  }

  std::printf(
      "\nNotes: per-shard LRU tracks the serial pool's hit rate closely\n"
      "(the model's serial reference stream stays valid); speedup is bound\n"
      "by physical cores and by contention on the shards holding the root\n"
      "and its children.\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
