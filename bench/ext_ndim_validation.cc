// Extension — Table 1 in three and four dimensions.
//
// The paper states its model generalizes to higher dimensions (Section 3).
// This bench repeats the Table-1 validation methodology with D-dimensional
// uniform point data, STR-Nd packed trees, the D-dimensional access
// probabilities and the (dimension-free) buffer model, against a
// D-dimensional LRU simulator.

#include <array>
#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

template <size_t D>
void ValidateDim(uint64_t seed, size_t n, uint32_t fanout, uint32_t batches,
                 uint64_t batch_size) {
  Rng rng(seed);
  std::vector<geom::BoxNd<D>> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    geom::PointNd<D> p;
    for (size_t d = 0; d < D; ++d) p[d] = rng.NextDouble();
    boxes.push_back(geom::BoxNd<D>::FromPoint(p));
  }
  auto summary = model::PackStrNd<D>(std::move(boxes), fanout);
  std::array<double, D> point_query{};
  auto probs = model::UniformAccessProbabilitiesNd<D>(summary, point_query);

  std::printf("\nD = %zu: %zu points, fanout %u -> %zu nodes\n", D, n,
              fanout, summary.NumNodes());
  Table table({"buffer", "simulation", "model", "% diff"});
  for (uint64_t buffer : {10, 50, 100, 200, 400, 600}) {
    double predicted = model::ExpectedDiskAccesses(probs, buffer);
    sim::NdMbrListSimulator<D> simulator(&summary, buffer);
    Rng qrng(seed + buffer);
    double simulated = simulator.Run(point_query, /*warmup=*/20000,
                                     static_cast<uint64_t>(batches) *
                                         batch_size,
                                     &qrng);
    double pct = simulated != 0.0
                     ? 100.0 * (predicted - simulated) / simulated
                     : 0.0;
    table.AddRow({Table::Int(buffer), Table::Num(simulated, 4),
                  Table::Num(predicted, 4), Table::Num(pct, 2) + "%"});
  }
  table.Print();
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "25"},
               {"batches", "10"},
               {"batch_size", "30000"}});
  const uint64_t seed = flags.GetInt("seed");

  Banner("Extension: buffer-model validation in higher dimensions",
         "uniform point data, STR-Nd packed trees, uniform point queries "
         "(paper Section 3: 'generalizations ... are straightforward')",
         seed);

  const size_t n = flags.GetInt("points");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  const uint32_t batches = static_cast<uint32_t>(flags.GetInt("batches"));
  const uint64_t batch_size = flags.GetInt("batch_size");
  ValidateDim<2>(seed, n, fanout, batches, batch_size);
  ValidateDim<3>(seed, n, fanout, batches, batch_size);
  ValidateDim<4>(seed, n, fanout, batches, batch_size);
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
