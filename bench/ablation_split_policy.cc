// Ablation (beyond the paper) — Guttman split heuristic for the TAT loader.
//
// The paper's TAT uses the quadratic split. This bench builds TAT trees
// with the quadratic and the linear heuristic over the same data and
// evaluates both under the buffer model, showing how much of TAT's
// disadvantage is attributable to the split policy.

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

Workload BuildTat(const std::vector<geom::Rect>& rects,
                  const rtree::RTreeConfig& config, std::string label) {
  Workload w;
  w.store = std::make_unique<storage::MemPageStore>();
  auto built = rtree::BuildRTree(w.store.get(), config, rects,
                                 rtree::LoadAlgorithm::kTupleAtATime);
  RTB_CHECK(built.ok());
  w.tree = *built;
  auto summary = rtree::TreeSummary::Extract(w.store.get(), built->root);
  RTB_CHECK(summary.ok());
  w.summary = std::make_unique<rtree::TreeSummary>(std::move(*summary));
  w.centers = data::Centers(rects);
  w.label = std::move(label);
  return w;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"}, {"rects", "20000"}, {"fanout", "50"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));

  Banner("Ablation: quadratic vs linear split for TAT (beyond the paper)",
         "TIGER surrogate (" + Table::Int(flags.GetInt("rects")) +
             " rects), fanout " + Table::Int(fanout) +
             ", uniform point + 1% region queries under the buffer model",
         seed);

  auto rects = MakeTigerData(seed, flags.GetInt("rects"));
  Workload quad = BuildTat(
      rects, rtree::RTreeConfig::WithFanout(fanout), "TAT/quadratic");
  Workload lin = BuildTat(
      rects,
      rtree::RTreeConfig::WithFanout(fanout, rtree::SplitPolicy::kLinear),
      "TAT/linear");
  Workload rstar =
      BuildTat(rects, rtree::RTreeConfig::RStar(fanout), "TAT/R*");
  Workload hs = BuildWorkload(rects, fanout,
                              rtree::LoadAlgorithm::kHilbertSort);

  std::printf("\nStructure:\n");
  Table shape({"tree", "nodes", "total MBR area", "mean fill"});
  for (const Workload* w : {&quad, &lin, &rstar, &hs}) {
    shape.AddRow({w->label, Table::Int(w->summary->NumNodes()),
                  Table::Num(w->summary->TotalArea(), 3),
                  Table::Num(w->summary->MeanEntriesPerNode(), 1)});
  }
  shape.Print();

  for (auto [name, spec] :
       {std::pair<const char*, model::QuerySpec>{
            "uniform point queries", model::QuerySpec::UniformPoint()},
        {"1% region queries", model::QuerySpec::UniformRegion(0.1, 0.1)}}) {
    std::printf("\nDisk accesses per query — %s\n", name);
    Table table({"buffer", "TAT/quadratic", "TAT/linear", "TAT/R*",
                 "HS (reference)"});
    for (uint64_t buffer : {10, 50, 100, 200, 400}) {
      table.AddRow({Table::Int(buffer),
                    Table::Num(ModelDiskAccesses(quad, spec, buffer), 4),
                    Table::Num(ModelDiskAccesses(lin, spec, buffer), 4),
                    Table::Num(ModelDiskAccesses(rstar, spec, buffer), 4),
                    Table::Num(ModelDiskAccesses(hs, spec, buffer), 4)});
    }
    table.Print();
  }
  std::printf(
      "\nThe R* policies (paper ref [1]) reduce total area/overlap, which\n"
      "the buffer model converts directly into fewer disk accesses — the\n"
      "exact use the paper proposes for its model (Section 1).\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
