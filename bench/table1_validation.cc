// Table 1 — Validation: average number of disk accesses per uniform point
// query, for model vs LRU simulation, on the paper's 1,668-node trees.
//
// Paper setup (Section 4): three R-trees of 1,668 nodes each built by three
// packing algorithms over the same data; six buffer sizes per tree;
// confidence intervals from batch means (20 x 1,000,000 queries); all
// model-vs-simulation differences under 2%.
//
// Reproduction: 40,000 uniform points packed with node size 25 give exactly
// 1,668 nodes (1600 + 64 + 3 + 1); the three packing loaders are NX, HS and
// STR. Default run uses 20 x 100,000 queries per cell; pass
// --batch_size=1000000 for the paper-scale run.

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "25"},
               {"batches", "20"},
               {"batch_size", "100000"},
               {"csv", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint32_t batches = static_cast<uint32_t>(flags.GetInt("batches"));
  const uint64_t batch_size = flags.GetInt("batch_size");

  Banner("Table 1: model-vs-simulation validation",
         "avg disk accesses per uniform point query; " +
             Table::Int(flags.GetInt("points")) + " uniform points, fanout " +
             Table::Int(flags.GetInt("fanout")) + ", " +
             Table::Int(batches) + " batches x " + Table::Int(batch_size) +
             " queries",
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  const uint64_t buffers[] = {10, 50, 100, 200, 400, 600};

  for (auto algo : {rtree::LoadAlgorithm::kNearestX,
                    rtree::LoadAlgorithm::kHilbertSort,
                    rtree::LoadAlgorithm::kStr}) {
    Workload w = BuildWorkload(rects, fanout, algo);
    std::printf("\nTree: %s (%zu nodes, height %u)\n", w.label.c_str(),
                w.summary->NumNodes(), w.tree.height);
    Table table({"buffer", "simulation", "model", "% diff", "model(cont)",
                 "% diff", "sim 90% CI"});
    auto probs = model::UniformAccessProbabilities(*w.summary, 0.0, 0.0);
    RTB_CHECK(probs.ok());
    for (uint64_t buffer : buffers) {
      model::QuerySpec spec = model::QuerySpec::UniformPoint();
      double predicted = ModelDiskAccesses(w, spec, buffer);
      double continuous = model::ExpectedDiskAccessesContinuous(*probs,
                                                                buffer);
      SimEstimate sim = SimulateDiskAccesses(w, spec, buffer, batches,
                                             batch_size, seed + buffer);
      auto pct = [&sim](double v) {
        return sim.mean != 0.0 ? 100.0 * (v - sim.mean) / sim.mean : 0.0;
      };
      table.AddRow({Table::Int(buffer), Table::Num(sim.mean, 4),
                    Table::Num(predicted, 4),
                    Table::Num(pct(predicted), 2) + "%",
                    Table::Num(continuous, 4),
                    Table::Num(pct(continuous), 2) + "%",
                    "+/-" + Table::Num(100.0 * sim.ci90_rel, 2) + "%"});
    }
    table.Print();
    if (!flags.GetString("csv").empty()) {
      table.AppendCsv(flags.GetString("csv"),
                      "table1_" + w.label);
    }
  }
  std::printf(
      "\nPaper: all differences within 2%% (less than the simulation CI).\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
