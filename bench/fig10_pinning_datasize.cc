// Figure 10 — Effect of pinning: disk accesses vs data size for HS trees.
//
// Synthetic point data 40,000-250,000, node size 25 (the 4-level trees of
// Table 2), uniform point queries, buffers of 500 / 1,000 / 2,000 pages.
// Curves: pinning 0, 1, or 2 levels (all identical — plotted once) vs
// pinning the first 3 levels.
//
// Paper findings: pinning <= 2 levels changes nothing (LRU keeps those hot
// pages resident anyway); pinning 3 levels helps only when the pinned page
// count is at least ~half the buffer (e.g. 250,000 rects, B=500: 417 pages
// pinned -> 53% fewer accesses; 80,000 rects: 135 pages -> ~4%).

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

constexpr uint64_t kSizes[] = {40000, 80000, 120000, 160000, 200000, 250000};

int Run(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "1998"}, {"fanout", "25"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));

  Banner("Figure 10: effect of pinning vs data size (HS trees)",
         "uniform point queries, node size " + Table::Int(fanout) +
             "; pin {0,1,2} levels vs pin 3 levels",
         seed);

  for (uint64_t buffer : {500, 1000, 2000}) {
    std::printf("\nBuffer = %llu pages\n",
                static_cast<unsigned long long>(buffer));
    Table table({"rects", "pin 0-2 levels", "pin 3 levels", "pinned pages",
                 "improvement"});
    for (uint64_t n : kSizes) {
      Rng rng(seed);
      auto rects = data::GenerateUniformPoints(n, &rng);
      Workload w = BuildWorkload(rects, fanout,
                                 rtree::LoadAlgorithm::kHilbertSort);
      auto probs = model::UniformAccessProbabilities(*w.summary, 0.0, 0.0);
      RTB_CHECK(probs.ok());

      // Pinning 0, 1 and 2 levels is indistinguishable (verified: values
      // agree to model precision), so print one column for all three.
      double base =
          model::ExpectedDiskAccessesPinned(*w.summary, *probs, buffer, 0)
              .disk_accesses;
      for (uint16_t levels : {1, 2}) {
        auto r = model::ExpectedDiskAccessesPinned(*w.summary, *probs,
                                                   buffer, levels);
        RTB_CHECK(r.feasible);
        RTB_CHECK(std::abs(r.disk_accesses - base) < 0.05 * base + 1e-6);
      }
      auto pinned3 =
          model::ExpectedDiskAccessesPinned(*w.summary, *probs, buffer, 3);
      if (!pinned3.feasible) {
        table.AddRow({Table::Int(n), Table::Num(base, 4), "infeasible",
                      Table::Int(pinned3.pinned_pages), "-"});
        continue;
      }
      double improvement =
          base > 0 ? 100.0 * (base - pinned3.disk_accesses) / base : 0.0;
      table.AddRow({Table::Int(n), Table::Num(base, 4),
                    Table::Num(pinned3.disk_accesses, 4),
                    Table::Int(pinned3.pinned_pages),
                    Table::Num(improvement, 1) + "%"});
    }
    table.Print();
  }
  std::printf(
      "\nPaper: pinning 3 levels matters only when pinned pages >= ~half the "
      "buffer (53%% saving at 250k/B=500, ~4%% at 80k/B=500, ~none at "
      "B=2000).\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
