// Figure 9 — Disk accesses versus data size, synthetic region data.
//
// NX and HS trees over 10,000-300,000 uniformly placed squares (fanout
// 100), uniform point queries (the bufferless point-query cost is the total
// MBR area, which saturates once the tree covers the square -- producing
// the paper's misleading flat curve). Three panels:
//   top-left:  bufferless metric (expected nodes visited) vs data size;
//   top-right: disk accesses with buffer = 10;
//   bottom:    disk accesses with buffer = 300.
//
// Paper finding: the bufferless metric barely grows past ~25,000 rectangles
// (querying a 300,000-rect tree "looks" no more expensive than a
// 25,000-rect one) — a query optimizer trap. With a buffer modeled, the
// real growth in cost with tree size reappears.

#include <cstdio>
#include <string>

#include "bench/common.h"

namespace rtb::bench {
namespace {

constexpr uint64_t kSizes[] = {10000, 25000,  50000,  100000,
                               150000, 200000, 250000, 300000};

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"}, {"fanout", "100"}, {"q", "0.0"}});
  const uint64_t seed = flags.GetInt("seed");
  const double q = flags.GetDouble("q");

  Banner("Figure 9: disk accesses vs data size (synthetic region data)",
         "NX and HS, fanout " + Table::Int(flags.GetInt("fanout")) +
             (q == 0.0 ? std::string(", uniform point queries")
                       : ", " + Table::Num(q, 2) + " x " + Table::Num(q, 2) +
                             " region queries"),
         seed);

  model::QuerySpec spec = q == 0.0 ? model::QuerySpec::UniformPoint()
                                   : model::QuerySpec::UniformRegion(q, q);
  Table nodes({"rects", "NX nodes visited", "HS nodes visited"});
  Table b10({"rects", "NX disk (B=10)", "HS disk (B=10)"});
  Table b300({"rects", "NX disk (B=300)", "HS disk (B=300)"});

  for (uint64_t n : kSizes) {
    Rng rng(seed);
    auto rects = data::GenerateSyntheticRegion(n, &rng);
    const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
    Workload nx = BuildWorkload(rects, fanout,
                                rtree::LoadAlgorithm::kNearestX);
    Workload hs = BuildWorkload(rects, fanout,
                                rtree::LoadAlgorithm::kHilbertSort);

    auto nodes_visited = [&spec](const Workload& w) {
      auto probs = model::AccessProbabilities(*w.summary, spec);
      RTB_CHECK(probs.ok());
      return model::ExpectedNodeAccesses(*probs);
    };
    nodes.AddRow({Table::Int(n), Table::Num(nodes_visited(nx), 2),
                  Table::Num(nodes_visited(hs), 2)});
    b10.AddRow({Table::Int(n),
                Table::Num(ModelDiskAccesses(nx, spec, 10), 2),
                Table::Num(ModelDiskAccesses(hs, spec, 10), 2)});
    b300.AddRow({Table::Int(n),
                 Table::Num(ModelDiskAccesses(nx, spec, 300), 2),
                 Table::Num(ModelDiskAccesses(hs, spec, 300), 2)});
  }

  std::printf("\nTop left: no buffer — expected nodes visited per query\n");
  nodes.Print();
  std::printf("\nTop right: disk accesses per query, buffer = 10\n");
  b10.Print();
  std::printf("\nBottom: disk accesses per query, buffer = 300\n");
  b300.Print();
  std::printf(
      "\nPaper: the bufferless curve flattens (misleading); buffered curves "
      "keep growing with data size.\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
