// Figure 8 — Uniform vs data-driven queries, CFD data.
//
// Same methodology as Figure 7 on the highly skewed CFD grid. Paper
// findings: the data-driven curve again dominates (queries always land in
// the dense region); under the uniform model a handful of huge MBRs are
// "hot", so small buffers capture them and the improvement ratio explodes
// (>20x; absolute accesses drop to ~0.06/query by a buffer of 100).

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

constexpr uint64_t kBuffers[] = {10,  25,  50,  75,  100, 150, 200,
                                 250, 300, 350, 400, 450, 500};

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"}, {"points", "52510"}, {"fanout", "25"}});
  const uint64_t seed = flags.GetInt("seed");

  Banner("Figure 8: uniform vs data-driven queries (CFD data)",
         "point queries on the HS tree, fanout " +
             Table::Int(flags.GetInt("fanout")) + "; CFD surrogate, " +
             Table::Int(flags.GetInt("points")) + " grid points",
         seed);

  auto rects = MakeCfdData(seed, flags.GetInt("points"));
  Workload hs = BuildWorkload(rects,
                              static_cast<uint32_t>(flags.GetInt("fanout")),
                              rtree::LoadAlgorithm::kHilbertSort);

  model::QuerySpec uniform = model::QuerySpec::UniformPoint();
  model::QuerySpec data_driven = model::QuerySpec::DataDrivenPoint();

  std::printf("\nLeft: disk accesses per query vs buffer size\n");
  Table left({"buffer", "uniform", "data-driven"});
  double uniform_at_10 = ModelDiskAccesses(hs, uniform, 10);
  double dd_at_10 = ModelDiskAccesses(hs, data_driven, 10);
  for (uint64_t buffer : kBuffers) {
    left.AddRow({Table::Int(buffer),
                 Table::Num(ModelDiskAccesses(hs, uniform, buffer), 4),
                 Table::Num(ModelDiskAccesses(hs, data_driven, buffer), 4)});
  }
  left.Print();

  std::printf(
      "\nRight: improvement ratio accesses(B=10)/accesses(B=N) vs N\n");
  Table right({"buffer", "uniform", "data-driven"});
  for (uint64_t buffer : kBuffers) {
    double u = ModelDiskAccesses(hs, uniform, buffer);
    double d = ModelDiskAccesses(hs, data_driven, buffer);
    right.AddRow({Table::Int(buffer),
                  Table::Num(u > 0 ? uniform_at_10 / u : 0.0, 3),
                  Table::Num(d > 0 ? dd_at_10 / d : 0.0, 3)});
  }
  right.Print();

  double u100 = ModelDiskAccesses(hs, uniform, 100);
  std::printf(
      "\nUniform accesses at B=100: %.4f/query (paper: ~0.06 — ratios above "
      "20x are 'not particularly relevant' at such tiny absolutes).\n",
      u100);
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
