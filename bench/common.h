// Shared infrastructure for the paper-experiment benches: dataset/tree
// construction, model/simulation shorthands, aligned table printing, and a
// tiny --flag=value command-line parser.
//
// Every bench prints (a) the experiment's provenance (paper figure/table,
// workload, parameters, seed) and (b) the series the paper plots, as an
// aligned text table — one bench binary per table/figure, per DESIGN.md.

#ifndef RTB_BENCH_COMMON_H_
#define RTB_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rtb.h"
#include "report/json.h"

namespace rtb::bench {

/// Minimal command-line flags: --name=value. Unrecognized flags abort with
/// a message listing supported names.
class Flags {
 public:
  Flags(int argc, char** argv,
        std::map<std::string, std::string> defaults);

  uint64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  std::string GetString(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

/// A tree built for an experiment: page store + summary + provenance.
struct Workload {
  std::unique_ptr<storage::MemPageStore> store;
  rtree::BuiltTree tree;
  std::unique_ptr<rtree::TreeSummary> summary;
  std::vector<geom::Point> centers;  // Data centers (data-driven queries).
  std::string label;
  uint32_t fanout = 0;  // Node capacity the tree was built with.
};

/// Builds `rects` into a tree with the given loader and extracts its
/// summary. Aborts (RTB_CHECK) on failure: benches treat build errors as
/// fatal configuration mistakes.
Workload BuildWorkload(const std::vector<geom::Rect>& rects, uint32_t fanout,
                       rtree::LoadAlgorithm algo);

/// Named datasets used across the benches.
std::vector<geom::Rect> MakeTigerData(uint64_t seed, size_t n = 53145);
std::vector<geom::Rect> MakeCfdData(uint64_t seed, size_t n = 52510);

/// Model shorthand: expected disk accesses for a workload/spec/buffer.
double ModelDiskAccesses(const Workload& w, const model::QuerySpec& spec,
                         uint64_t buffer_pages);

/// Simulation shorthand: batch-means LRU simulation (paper Section 4).
struct SimEstimate {
  double mean = 0.0;
  double ci90_rel = 0.0;  // Relative 90% confidence half-width.
};
SimEstimate SimulateDiskAccesses(const Workload& w,
                                 const model::QuerySpec& spec,
                                 uint64_t buffer_pages, uint32_t batches,
                                 uint64_t batch_size, uint64_t seed);

/// Execution shorthand: runs a real query workload against `w`'s tree
/// through a fresh buffer pool, fanned out over `threads` workers.
/// `shards == 0` with `threads == 1` uses the serial single-threaded
/// BufferPool (the paper's configuration, bit-reproducible); otherwise a
/// ShardedBufferPool with `shards` stripes (0 = auto) is used. Returns the
/// reduced workload result plus the pool's merged hit/miss counters over
/// the whole run (warm-up included).
struct ParallelEstimate {
  sim::WorkloadResult run;
  storage::BufferStats buffer;
};
ParallelEstimate RunParallelQueries(const Workload& w,
                                    const model::QuerySpec& spec,
                                    uint64_t buffer_pages, uint32_t threads,
                                    size_t shards, uint64_t warmup,
                                    uint64_t queries, uint64_t seed);

/// Aligned fixed-width table printer with optional CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  /// Appends the table as CSV to `path` (with the headers, prefixed by an
  /// optional `label` column), for plotting. Returns false on I/O failure.
  bool AppendCsv(const std::string& path, const std::string& label) const;

  /// Formats a double with `digits` fractional digits.
  static std::string Num(double v, int digits = 3);
  static std::string Int(uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard bench banner (figure id, description, seed).
void Banner(const std::string& experiment, const std::string& description,
            uint64_t seed);

// --------------------------------------------------------------------------
// Machine-readable benchmark output (the repo's perf trajectory)
// --------------------------------------------------------------------------

// The JSON emitter lives in the shared report library (report/json.h) so
// the experiment engine can reuse it; benches keep their historical
// bench::JsonDict / bench::BenchReport names as aliases.
using JsonDict = report::JsonDict;
using BenchReport = report::BenchReport;

}  // namespace rtb::bench

#endif  // RTB_BENCH_COMMON_H_
