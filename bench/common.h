// Shared infrastructure for the paper-experiment benches: dataset/tree
// construction, model/simulation shorthands, aligned table printing, and a
// tiny --flag=value command-line parser.
//
// Every bench prints (a) the experiment's provenance (paper figure/table,
// workload, parameters, seed) and (b) the series the paper plots, as an
// aligned text table — one bench binary per table/figure, per DESIGN.md.

#ifndef RTB_BENCH_COMMON_H_
#define RTB_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rtb.h"

namespace rtb::bench {

/// Minimal command-line flags: --name=value. Unrecognized flags abort with
/// a message listing supported names.
class Flags {
 public:
  Flags(int argc, char** argv,
        std::map<std::string, std::string> defaults);

  uint64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  std::string GetString(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

/// A tree built for an experiment: page store + summary + provenance.
struct Workload {
  std::unique_ptr<storage::MemPageStore> store;
  rtree::BuiltTree tree;
  std::unique_ptr<rtree::TreeSummary> summary;
  std::vector<geom::Point> centers;  // Data centers (data-driven queries).
  std::string label;
  uint32_t fanout = 0;  // Node capacity the tree was built with.
};

/// Builds `rects` into a tree with the given loader and extracts its
/// summary. Aborts (RTB_CHECK) on failure: benches treat build errors as
/// fatal configuration mistakes.
Workload BuildWorkload(const std::vector<geom::Rect>& rects, uint32_t fanout,
                       rtree::LoadAlgorithm algo);

/// Named datasets used across the benches.
std::vector<geom::Rect> MakeTigerData(uint64_t seed, size_t n = 53145);
std::vector<geom::Rect> MakeCfdData(uint64_t seed, size_t n = 52510);

/// Model shorthand: expected disk accesses for a workload/spec/buffer.
double ModelDiskAccesses(const Workload& w, const model::QuerySpec& spec,
                         uint64_t buffer_pages);

/// Simulation shorthand: batch-means LRU simulation (paper Section 4).
struct SimEstimate {
  double mean = 0.0;
  double ci90_rel = 0.0;  // Relative 90% confidence half-width.
};
SimEstimate SimulateDiskAccesses(const Workload& w,
                                 const model::QuerySpec& spec,
                                 uint64_t buffer_pages, uint32_t batches,
                                 uint64_t batch_size, uint64_t seed);

/// Execution shorthand: runs a real query workload against `w`'s tree
/// through a fresh buffer pool, fanned out over `threads` workers.
/// `shards == 0` with `threads == 1` uses the serial single-threaded
/// BufferPool (the paper's configuration, bit-reproducible); otherwise a
/// ShardedBufferPool with `shards` stripes (0 = auto) is used. Returns the
/// reduced workload result plus the pool's merged hit/miss counters over
/// the whole run (warm-up included).
struct ParallelEstimate {
  sim::ParallelResult run;
  storage::BufferStats buffer;
};
ParallelEstimate RunParallelQueries(const Workload& w,
                                    const model::QuerySpec& spec,
                                    uint64_t buffer_pages, uint32_t threads,
                                    size_t shards, uint64_t warmup,
                                    uint64_t queries, uint64_t seed);

/// Aligned fixed-width table printer with optional CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  /// Appends the table as CSV to `path` (with the headers, prefixed by an
  /// optional `label` column), for plotting. Returns false on I/O failure.
  bool AppendCsv(const std::string& path, const std::string& label) const;

  /// Formats a double with `digits` fractional digits.
  static std::string Num(double v, int digits = 3);
  static std::string Int(uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard bench banner (figure id, description, seed).
void Banner(const std::string& experiment, const std::string& description,
            uint64_t seed);

// --------------------------------------------------------------------------
// Machine-readable benchmark output (the repo's perf trajectory)
// --------------------------------------------------------------------------

/// An insertion-ordered flat JSON object of string/number/bool fields.
/// Distinct method names per type sidestep the const char* -> bool overload
/// trap.
class JsonDict {
 public:
  void PutStr(const std::string& key, const std::string& value);
  void PutNum(const std::string& key, double value);   // %.17g round-trip.
  void PutInt(const std::string& key, uint64_t value);
  void PutBool(const std::string& key, bool value);

  bool Has(const std::string& key) const;
  size_t size() const { return fields_.size(); }

  /// {"k": v, ...} with keys in insertion order and strings escaped.
  std::string ToString() const;

 private:
  // Value is pre-rendered JSON; strings are escaped+quoted at Put time.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The JSON document a benchmark emits: top-level metadata (bench name,
/// seed, workload parameters) plus one result object per measured
/// configuration. Written as BENCH_<name>.json so every perf PR can record
/// its before/after numbers in a diffable, machine-readable form.
///
/// Schema:
///   {
///     "bench": "<name>",
///     <metadata fields...>,
///     "configs": [ {"config": "<label>", <metric fields...>}, ... ]
///   }
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Top-level metadata fields.
  JsonDict& meta() { return meta_; }

  /// Appends a config-result object (its "config" field is `label`) and
  /// returns it for metric Puts. References stay valid for the report's
  /// lifetime.
  JsonDict& AddConfig(const std::string& label);

  size_t num_configs() const { return configs_.size(); }

  /// The full document.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; empty path means "BENCH_<name>.json" in the
  /// current directory. Prints the destination and returns false on I/O
  /// failure.
  bool WriteFile(const std::string& path = "") const;

 private:
  std::string name_;
  JsonDict meta_;
  std::vector<std::unique_ptr<JsonDict>> configs_;
};

}  // namespace rtb::bench

#endif  // RTB_BENCH_COMMON_H_
