// micro_file_io — vectored (preadv) vs. scalar (pread-per-page) reads on a
// file-backed store, under the batched query executor with a cold, small
// buffer pool.
//
// The tree is bulk-loaded into a FilePageStore, so every pool miss is a
// real positioned read against the file. The batch executor hands each
// fetch window's miss set to the pool page-id-sorted; the serial pool
// forwards it to FilePageStore::ReadBatch, which coalesces each run of
// consecutive ids into one preadv. The bench runs the identical query
// stream twice through the runtime seam (SetVectoredIo) — once scalar,
// once vectored — and reports:
//
//   * reads/query          — per-page read count; identical in both rows
//                            by construction (the accounting is
//                            page-granular either way).
//   * syscalls/query       — reads - batch_pages + read_batches, per
//                            query; the number the vectored path shrinks.
//   * read_batches, pages/batch — how often runs coalesced and how wide.
//
// Result-id checksums are asserted equal across the rows, so they differ
// only in syscall shape. The acceptance criterion is syscalls/query
// (vectored) < syscalls/query (scalar).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "rtree/batch.h"

namespace rtb::bench {
namespace {

using geom::Rect;

struct Measurement {
  double queries_per_sec = 0.0;
  double reads_per_query = 0.0;
  double syscalls_per_query = 0.0;
  double pages_per_batch = 0.0;
  uint64_t reads = 0;
  uint64_t read_batches = 0;
  uint64_t batch_pages = 0;
  uint64_t result_count = 0;  // Checksum: total ids returned.
};

// Runs the batched workload against a fresh cold pool over `store`, with
// the vectored seam set to `vectored`. The store counters are reset after
// warm-up, so the reported I/O is the measured phase only.
Measurement RunVariant(storage::FilePageStore* store,
                       const rtree::BuiltTree& built, uint32_t fanout,
                       bool vectored, uint64_t buffer_pages, uint64_t seed,
                       uint64_t warmup, uint64_t queries,
                       uint64_t batch_size, double region_side) {
  RTB_CHECK(storage::SetVectoredIo(vectored) || !vectored);
  auto pool = storage::BufferPool::MakeLru(store, buffer_pages);
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(fanout),
                                 built.root, built.height);
  RTB_CHECK(tree.ok());

  sim::UniformRegionGenerator gen(region_side, region_side);
  Rng rng(seed);
  Measurement m;
  rtree::BatchExecutor executor(&*tree);
  std::vector<Rect> batch;
  std::vector<std::vector<rtree::ObjectId>> results;

  auto run_phase = [&](uint64_t n, bool measure) {
    uint64_t done = 0;
    while (done < n) {
      const uint64_t chunk = std::min(batch_size, n - done);
      batch.clear();
      for (uint64_t i = 0; i < chunk; ++i) batch.push_back(gen.Next(rng));
      RTB_CHECK(executor.Run(batch, &results, nullptr).ok());
      if (measure) {
        for (const auto& r : results) m.result_count += r.size();
      }
      done += chunk;
    }
  };

  run_phase(warmup, /*measure=*/false);
  store->ResetStats();
  const auto start = std::chrono::steady_clock::now();
  run_phase(queries, /*measure=*/true);
  const auto end = std::chrono::steady_clock::now();

  const double seconds = std::chrono::duration<double>(end - start).count();
  const storage::IoStats io = store->stats();
  m.reads = io.reads;
  m.read_batches = io.read_batches;
  m.batch_pages = io.batch_pages;
  m.pages_per_batch = io.PagesPerBatch();
  m.queries_per_sec =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  const double q = static_cast<double>(queries);
  m.reads_per_query = q > 0 ? static_cast<double>(io.reads) / q : 0.0;
  m.syscalls_per_query =
      q > 0 ? static_cast<double>(io.ReadSyscalls()) / q : 0.0;
  return m;
}

void EmitRow(JsonDict& row, const Measurement& m, const Measurement& scalar,
             bool vectored) {
  row.PutStr("io_path", vectored ? "vectored" : "scalar");
  row.PutNum("queries_per_sec", m.queries_per_sec);
  row.PutNum("reads_per_query", m.reads_per_query);
  row.PutNum("syscalls_per_query", m.syscalls_per_query);
  row.PutNum("syscall_reduction_vs_scalar",
             m.syscalls_per_query > 0.0
                 ? scalar.syscalls_per_query / m.syscalls_per_query
                 : 0.0);
  row.PutInt("reads", m.reads);
  row.PutInt("read_batches", m.read_batches);
  row.PutInt("batch_pages", m.batch_pages);
  row.PutNum("pages_per_batch", m.pages_per_batch);
  row.PutInt("result_count", m.result_count);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "100"},
               {"queries", "20000"},
               {"warmup", "2000"},
               {"region_side", "0.03"},
               {"batch", "256"},
               {"buffer_pages", "40"},
               {"path", "/tmp/rtb_micro_file_io.store"},
               {"json", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t queries = flags.GetInt("queries");
  const uint64_t warmup = flags.GetInt("warmup");
  const uint64_t batch = std::max<uint64_t>(2, flags.GetInt("batch"));
  const uint64_t buffer_pages = flags.GetInt("buffer_pages");
  const double region_side = flags.GetDouble("region_side");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  const std::string path = flags.GetString("path");

  Banner("micro: file-store vectored I/O",
         "preadv-coalesced vs. per-page reads on a file-backed tree; " +
             Table::Int(flags.GetInt("points")) + " uniform points, fanout " +
             Table::Int(fanout) + ", " + Table::Int(buffer_pages) +
             "-page pool, batch " + Table::Int(batch),
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  auto store = storage::FilePageStore::Create(path);
  RTB_CHECK(store.ok());
  auto built = rtree::BuildRTree(store->get(),
                                 rtree::RTreeConfig::WithFanout(fanout),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  RTB_CHECK(built.ok());
  auto summary = rtree::TreeSummary::Extract(store->get(), built->root);
  RTB_CHECK(summary.ok());

  BenchReport report("micro_file_io");
  report.meta().PutInt("seed", seed);
  report.meta().PutInt("points", flags.GetInt("points"));
  report.meta().PutInt("fanout", fanout);
  report.meta().PutInt("tree_pages", summary->NumNodes());
  report.meta().PutInt("tree_height", built->height);
  report.meta().PutInt("queries", queries);
  report.meta().PutInt("warmup", warmup);
  report.meta().PutNum("region_side", region_side);
  report.meta().PutInt("buffer_pages", buffer_pages);
  report.meta().PutInt("batch", batch);
  report.meta().PutBool("vectored_available",
                        storage::VectoredIoAvailable());

  Table table({"config", "queries/s", "reads/query", "syscalls/query",
               "batches", "pages/batch"});
  auto add = [&](const std::string& name, const Measurement& m,
                 const Measurement& scalar, bool vectored) {
    EmitRow(report.AddConfig(name), m, scalar, vectored);
    table.AddRow({name, Table::Num(m.queries_per_sec, 0),
                  Table::Num(m.reads_per_query, 3),
                  Table::Num(m.syscalls_per_query, 3),
                  Table::Int(m.read_batches),
                  Table::Num(m.pages_per_batch, 2)});
  };

  const uint64_t query_seed = seed + 17;
  const Measurement scalar =
      RunVariant(store->get(), *built, fanout, /*vectored=*/false,
                 buffer_pages, query_seed, warmup, queries, batch,
                 region_side);
  add("file_scalar_pread", scalar, scalar, false);

  if (storage::VectoredIoAvailable()) {
    const Measurement vectored =
        RunVariant(store->get(), *built, fanout, /*vectored=*/true,
                   buffer_pages, query_seed, warmup, queries, batch,
                   region_side);
    RTB_CHECK(vectored.result_count == scalar.result_count);
    RTB_CHECK(vectored.reads == scalar.reads);
    add("file_vectored_preadv", vectored, scalar, true);
  }

  table.Print();
  store->reset();  // Close before unlinking.
  std::remove(path.c_str());
  if (!report.WriteFile(flags.GetString("json"))) return 1;
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
