// Ablation (beyond the paper) — STR vs the paper's loaders under buffering.
//
// The paper cites STR (its authors' ICDE'97 packing algorithm, ref [7]) but
// evaluates TAT/NX/HS. This bench adds STR to the Figure-6 style buffer
// sweep on both TIGER-like and synthetic region data.

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

void Sweep(const char* title, const std::vector<geom::Rect>& rects,
           uint32_t fanout, const model::QuerySpec& spec) {
  Workload nx = BuildWorkload(rects, fanout, rtree::LoadAlgorithm::kNearestX);
  Workload hs = BuildWorkload(rects, fanout,
                              rtree::LoadAlgorithm::kHilbertSort);
  Workload str = BuildWorkload(rects, fanout, rtree::LoadAlgorithm::kStr);
  std::printf("\n%s\n", title);
  Table table({"buffer", "NX", "HS", "STR"});
  for (uint64_t buffer : {2, 10, 25, 50, 100, 200, 300, 400, 500}) {
    table.AddRow({Table::Int(buffer),
                  Table::Num(ModelDiskAccesses(nx, spec, buffer), 4),
                  Table::Num(ModelDiskAccesses(hs, spec, buffer), 4),
                  Table::Num(ModelDiskAccesses(str, spec, buffer), 4)});
  }
  table.Print();
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"}, {"rects", "53145"}, {"fanout", "100"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));

  Banner("Ablation: STR vs NX vs HS under buffering (beyond the paper)",
         "fanout " + Table::Int(fanout) +
             "; point and 1% region queries on two data sets",
         seed);

  auto tiger = MakeTigerData(seed, flags.GetInt("rects"));
  Sweep("TIGER surrogate — uniform point queries", tiger, fanout,
        model::QuerySpec::UniformPoint());
  Sweep("TIGER surrogate — 1% region queries", tiger, fanout,
        model::QuerySpec::UniformRegion(0.1, 0.1));

  Rng rng(seed);
  auto region = data::GenerateSyntheticRegion(100000, &rng);
  Sweep("Synthetic region (100k) — 1% region queries", region, fanout,
        model::QuerySpec::UniformRegion(0.1, 0.1));
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
