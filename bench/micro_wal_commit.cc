// micro_wal_commit — group commit on the durable write path.
//
// One mixed insert/delete op stream is replayed through the batched update
// executor against a file-backed store, once per group-commit window. The
// pool runs no-force with the WAL attached, so each drained batch costs
// one commit record and — depending on the window — a fraction of a
// durability point (writev + fdatasync):
//
//   * wal_off   — the PR-7 write path untouched: no log, no commit
//                 records, flush only at close. The overhead baseline.
//   * window_1  — commit-per-batch: every drained batch pays its own
//                 sync point, the classical force-log-at-commit cost.
//   * window_8+ — group commit: sync points amortize over the window, so
//                 fsyncs/commit drops toward 1/window (evictions that
//                 force the log early keep it above the ideal).
//
// Reported per config: committed batches per second, fsyncs per commit
// (WalStats counts durability points even when RTB_NO_FSYNC suppresses
// the syscall, so the metric is stable on CI), and log bytes per commit.
// The acceptance criterion (asserted when the WAL is compiled in): a
// window >= 8 reaches at most half the fsyncs per commit of window 1.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "rtree/update_batch.h"
#include "rtree/validate.h"
#include "storage/file_page_store.h"
#include "storage/wal.h"

namespace rtb::bench {
namespace {

using geom::Rect;
using rtree::UpdateOp;

struct Measurement {
  double batches_per_sec = 0.0;
  double commits_per_sec = 0.0;
  double fsyncs_per_commit = 0.0;
  double wal_bytes_per_commit = 0.0;
  uint64_t commits = 0;
  uint64_t fsyncs = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t entries = 0;  // Checksum: rows must agree.
};

// The same batch-friendly op mix the update bench uses: inserts with fresh
// ids, deletes drawn from surviving earlier inserts so every delete lands.
std::vector<UpdateOp> MakeOps(uint64_t n, Rng* rng) {
  std::vector<UpdateOp> ops;
  ops.reserve(n);
  std::vector<std::pair<uint64_t, Rect>> live;
  uint64_t next_id = 1;
  for (uint64_t i = 0; i < n; ++i) {
    if (!live.empty() && rng->NextDouble() < 0.35) {
      const uint64_t v = rng->UniformInt(live.size());
      ops.push_back(UpdateOp::Delete(live[v].second, live[v].first));
      live[v] = live.back();
      live.pop_back();
    } else {
      const double x = rng->NextDouble();
      const double y = rng->NextDouble();
      const Rect r{{x, y}, {x, y}};
      ops.push_back(UpdateOp::Insert(r, next_id));
      live.emplace_back(next_id, r);
      ++next_id;
    }
  }
  return ops;
}

// Replays `ops` in `batch`-sized drains against a fresh tree, with a WAL
// at the given group-commit window (0 = no WAL). Timing covers the
// post-warm-up drains only.
Measurement RunVariant(const std::string& path,
                       const std::vector<UpdateOp>& ops, uint32_t fanout,
                       uint64_t window, uint64_t batch, uint64_t buffer_pages,
                       uint64_t warmup_ops) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  auto store = storage::FilePageStore::Create(path);
  RTB_CHECK(store.ok());
  const auto config = rtree::RTreeConfig::WithFanout(fanout);

  Measurement m;
  double seconds = 0.0;
  {
    auto pool = storage::BufferPool::MakeLru(store->get(), buffer_pages);
    auto tree = rtree::RTree::Create(pool.get(), config);
    RTB_CHECK(tree.ok());
    std::unique_ptr<storage::WalWriter> wal;
    if (window > 0) {
      RTB_CHECK(store->get()->Sync().ok());
      storage::WalWriter::Options wopts;
      wopts.group_commit_window = window;
      auto created = storage::WalWriter::Create(path + ".wal", wopts);
      RTB_CHECK(created.ok());
      wal = std::move(*created);
      pool->AttachWal(wal.get());
      RTB_CHECK(pool->WalCheckpoint().ok());
    }
    rtree::UpdateBatchExecutor executor(&*tree);

    auto run_phase = [&](size_t begin, size_t end) {
      size_t done = begin;
      while (done < end) {
        const size_t chunk = std::min<size_t>(batch, end - done);
        RTB_CHECK(executor
                      .Run(std::span<const UpdateOp>(ops.data() + done, chunk))
                      .ok());
        done += chunk;
      }
    };

    run_phase(0, warmup_ops);
    const storage::WalStats warm =
        wal != nullptr ? wal->stats() : storage::WalStats{};
    const auto start = std::chrono::steady_clock::now();
    run_phase(warmup_ops, ops.size());
    const auto end = std::chrono::steady_clock::now();
    seconds = std::chrono::duration<double>(end - start).count();

    if (wal != nullptr) {
      const storage::WalStats total = wal->stats();
      m.commits = total.commits - warm.commits;
      m.fsyncs = total.fsyncs - warm.fsyncs;
      m.wal_records = total.records - warm.records;
      m.wal_bytes = total.bytes - warm.bytes;
    }
    RTB_CHECK(pool->Close().ok());
    if (wal != nullptr) RTB_CHECK(wal->Close().ok());

    const auto report =
        rtree::ValidateTree(store->get(), tree->root(), config,
                            {.check_min_fill = false});
    RTB_CHECK(report.ok);
    m.entries = report.num_data_entries;
  }

  const uint64_t measured_ops = ops.size() - warmup_ops;
  const double batches =
      static_cast<double>((measured_ops + batch - 1) / batch);
  m.batches_per_sec = seconds > 0.0 ? batches / seconds : 0.0;
  m.commits_per_sec =
      seconds > 0.0 ? static_cast<double>(m.commits) / seconds : 0.0;
  m.fsyncs_per_commit =
      m.commits > 0 ? static_cast<double>(m.fsyncs) / m.commits : 0.0;
  m.wal_bytes_per_commit =
      m.commits > 0 ? static_cast<double>(m.wal_bytes) / m.commits : 0.0;
  RTB_CHECK(store->get()->Close().ok());
  store->reset();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return m;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"ops", "24000"},
               {"warmup", "4000"},
               {"batch", "64"},
               {"fanout", "50"},
               // Sized to hold the working tree: evictions would force the
               // log early (steal) and mask the window's effect on fsyncs.
               {"buffer_pages", "1024"},
               {"path", "/tmp/rtb_micro_wal_commit.store"},
               {"json", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t n_ops = flags.GetInt("ops");
  const uint64_t batch = std::max<uint64_t>(1, flags.GetInt("batch"));
  const uint64_t warmup =
      std::min<uint64_t>(flags.GetInt("warmup"), n_ops) / batch * batch;
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  const uint64_t buffer_pages = flags.GetInt("buffer_pages");
  const std::string path = flags.GetString("path");

  Banner("micro: WAL group commit",
         "fsyncs per committed batch vs. group-commit window; " +
             Table::Int(n_ops) + " mixed updates in drains of " +
             Table::Int(batch) + ", fanout " + Table::Int(fanout) + ", " +
             Table::Int(buffer_pages) + "-page no-force pool",
         seed);

  Rng rng(seed + 23);
  const auto ops = MakeOps(n_ops, &rng);

  BenchReport report("micro_wal_commit");
  report.meta().PutInt("seed", seed);
  report.meta().PutInt("ops", n_ops);
  report.meta().PutInt("warmup", warmup);
  report.meta().PutInt("batch", batch);
  report.meta().PutInt("fanout", fanout);
  report.meta().PutInt("buffer_pages", buffer_pages);
  report.meta().PutBool("wal_available", storage::WalAvailable());
  report.meta().PutBool("durable_sync", storage::DurableSyncActive());

  Table table({"config", "batches/s", "commits/s", "fsyncs/commit",
               "log bytes/commit"});
  auto add = [&](const std::string& name, const Measurement& m) {
    JsonDict& row = report.AddConfig(name);
    row.PutNum("batches_per_sec", m.batches_per_sec);
    row.PutNum("commits_per_sec", m.commits_per_sec);
    row.PutNum("fsyncs_per_commit", m.fsyncs_per_commit);
    row.PutNum("wal_bytes_per_commit", m.wal_bytes_per_commit);
    row.PutInt("commits", m.commits);
    row.PutInt("fsyncs", m.fsyncs);
    row.PutInt("wal_records", m.wal_records);
    row.PutInt("wal_bytes", m.wal_bytes);
    row.PutInt("entries_after", m.entries);
    table.AddRow({name, Table::Num(m.batches_per_sec, 0),
                  Table::Num(m.commits_per_sec, 0),
                  Table::Num(m.fsyncs_per_commit, 3),
                  Table::Num(m.wal_bytes_per_commit, 0)});
  };

  const Measurement off =
      RunVariant(path, ops, fanout, /*window=*/0, batch, buffer_pages, warmup);
  add("wal_off", off);

  if (storage::WalAvailable()) {
    Measurement window1;
    for (const uint64_t window : {uint64_t{1}, uint64_t{8}, uint64_t{32}}) {
      const Measurement m = RunVariant(path, ops, fanout, window, batch,
                                       buffer_pages, warmup);
      RTB_CHECK(m.entries == off.entries);
      RTB_CHECK(m.commits > 0);
      add("window_" + Table::Int(window), m);
      if (window == 1) {
        window1 = m;
      } else if (window >= 8) {
        // The PR's acceptance bar: group commit amortizes sync points at
        // least 2x versus commit-per-batch.
        RTB_CHECK(m.fsyncs_per_commit * 2.0 <= window1.fsyncs_per_commit);
      }
    }
  } else {
    std::printf("(binary built without RTB_WAL; windowed rows skipped)\n");
  }

  table.Print();
  if (!report.WriteFile(flags.GetString("json"))) return 1;
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
