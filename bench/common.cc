#include "bench/common.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rtb::bench {

Flags::Flags(int argc, char** argv,
             std::map<std::string, std::string> defaults)
    : values_(std::move(defaults)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      std::exit(2);
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "flags take the form --name=value: %s\n",
                   arg.c_str());
      std::exit(2);
    }
    std::string name = arg.substr(2, eq - 2);
    if (values_.find(name) == values_.end()) {
      std::fprintf(stderr, "unknown flag --%s; supported:", name.c_str());
      for (const auto& [k, v] : values_) {
        std::fprintf(stderr, " --%s(=%s)", k.c_str(), v.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    values_[name] = arg.substr(eq + 1);
  }
}

uint64_t Flags::GetInt(const std::string& name) const {
  auto it = values_.find(name);
  RTB_CHECK(it != values_.end());
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  auto it = values_.find(name);
  RTB_CHECK(it != values_.end());
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name) const {
  auto it = values_.find(name);
  RTB_CHECK(it != values_.end());
  return it->second;
}

Workload BuildWorkload(const std::vector<geom::Rect>& rects, uint32_t fanout,
                       rtree::LoadAlgorithm algo) {
  Workload w;
  w.store = std::make_unique<storage::MemPageStore>();
  auto built = rtree::BuildRTree(w.store.get(),
                                 rtree::RTreeConfig::WithFanout(fanout),
                                 rects, algo);
  RTB_CHECK(built.ok());
  w.tree = *built;
  auto summary = rtree::TreeSummary::Extract(w.store.get(), built->root);
  RTB_CHECK(summary.ok());
  w.summary = std::make_unique<rtree::TreeSummary>(std::move(*summary));
  w.centers = data::Centers(rects);
  w.store->ResetStats();
  w.label = std::string(rtree::LoadAlgorithmName(algo));
  w.fanout = fanout;
  return w;
}

std::vector<geom::Rect> MakeTigerData(uint64_t seed, size_t n) {
  Rng rng(seed);
  data::TigerParams params;
  params.num_rects = n;
  return data::GenerateTigerSurrogate(params, &rng);
}

std::vector<geom::Rect> MakeCfdData(uint64_t seed, size_t n) {
  Rng rng(seed);
  data::CfdParams params;
  params.num_points = n;
  return data::GenerateCfdSurrogate(params, &rng);
}

double ModelDiskAccesses(const Workload& w, const model::QuerySpec& spec,
                         uint64_t buffer_pages) {
  auto ed = model::PredictDiskAccesses(*w.summary, spec, buffer_pages,
                                       &w.centers);
  RTB_CHECK(ed.ok());
  return *ed;
}

SimEstimate SimulateDiskAccesses(const Workload& w,
                                 const model::QuerySpec& spec,
                                 uint64_t buffer_pages, uint32_t batches,
                                 uint64_t batch_size, uint64_t seed) {
  sim::SimOptions options;
  options.buffer_pages = buffer_pages;
  sim::MbrListSimulator simulator(w.summary.get(), options);
  auto gen = sim::MakeGenerator(spec, &w.centers);
  RTB_CHECK(gen.ok());
  Rng rng(seed);
  auto result = simulator.Run(gen->get(), &rng, batches, batch_size);
  RTB_CHECK(result.ok());
  SimEstimate est;
  est.mean = result->mean_disk_accesses;
  est.ci90_rel = result->mean_disk_accesses > 0
                     ? result->ci_halfwidth_90 / result->mean_disk_accesses
                     : 0.0;
  return est;
}

ParallelEstimate RunParallelQueries(const Workload& w,
                                    const model::QuerySpec& spec,
                                    uint64_t buffer_pages, uint32_t threads,
                                    size_t shards, uint64_t warmup,
                                    uint64_t queries, uint64_t seed) {
  std::unique_ptr<storage::PageCache> pool;
  if (threads == 1 && shards == 0) {
    pool = storage::BufferPool::MakeLru(w.store.get(), buffer_pages);
  } else {
    pool = storage::ShardedBufferPool::MakeLru(w.store.get(), buffer_pages,
                                               shards);
  }
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(w.fanout),
                                 w.tree.root, w.tree.height);
  RTB_CHECK(tree.ok());
  auto gen = sim::MakeGenerator(spec, &w.centers);
  RTB_CHECK(gen.ok());
  sim::ParallelOptions options;
  options.threads = threads;
  options.base_seed = seed;
  options.warmup = warmup;
  options.queries = queries;
  auto run = sim::RunParallelWorkload(&*tree, w.store.get(), gen->get(),
                                      options);
  RTB_CHECK(run.ok());
  ParallelEstimate est;
  est.run = std::move(*run);
  est.buffer = pool->AggregateStats();
  return est;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  RTB_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf(" ");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 1;
  for (size_t w : widths) total += w + 1;
  std::printf("  ");
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

bool Table::AppendCsv(const std::string& path,
                      const std::string& label) const {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  auto write_row = [f, &label](const std::vector<std::string>& cells,
                               const char* first) {
    std::fprintf(f, "%s", first[0] ? first : label.c_str());
    for (const std::string& cell : cells) {
      // Cells are numbers/short words; strip the cosmetic '%' and '+/-'.
      std::string clean = cell;
      if (!clean.empty() && clean.back() == '%') clean.pop_back();
      std::fprintf(f, ",%s", clean.c_str());
    }
    std::fprintf(f, "\n");
  };
  write_row(headers_, "label");
  for (const auto& row : rows_) write_row(row, "");
  std::fclose(f);
  return true;
}

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNum(double v) {
  // %.17g round-trips IEEE doubles; JSON has no inf/nan, so clamp those to
  // null (a bench emitting them is a bug the smoke test will catch).
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void JsonDict::PutStr(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, JsonEscape(value));
}

void JsonDict::PutNum(const std::string& key, double value) {
  fields_.emplace_back(key, JsonNum(value));
}

void JsonDict::PutInt(const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  fields_.emplace_back(key, buf);
}

void JsonDict::PutBool(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

bool JsonDict::Has(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return true;
  }
  return false;
}

std::string JsonDict::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonEscape(fields_[i].first) + ": " + fields_[i].second;
  }
  out += "}";
  return out;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  meta_.PutStr("bench", name_);
}

JsonDict& BenchReport::AddConfig(const std::string& label) {
  configs_.push_back(std::make_unique<JsonDict>());
  configs_.back()->PutStr("config", label);
  return *configs_.back();
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n";
  const std::string meta = meta_.ToString();
  // Splice the meta fields (sans braces) into the top-level object.
  out += "  " + meta.substr(1, meta.size() - 2) + ",\n";
  out += "  \"configs\": [\n";
  for (size_t i = 0; i < configs_.size(); ++i) {
    out += "    " + configs_[i]->ToString();
    if (i + 1 < configs_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchReport::WriteFile(const std::string& path) const {
  const std::string dest =
      path.empty() ? "BENCH_" + name_ + ".json" : path;
  std::FILE* f = std::fopen(dest.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", dest.c_str());
    return false;
  }
  const std::string doc = ToJson();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  std::printf("\nwrote %s\n", dest.c_str());
  return ok;
}

void Banner(const std::string& experiment, const std::string& description,
            uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  %s\n", description.c_str());
  std::printf("  paper: Leutenegger & Lopez, \"The Effect of Buffering on the\n");
  std::printf("         Performance of R-Trees\" (ICDE 1998 / TKDE 2000)\n");
  std::printf("  seed: %" PRIu64 "\n", seed);
  std::printf("==============================================================\n");
}

}  // namespace rtb::bench
