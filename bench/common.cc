#include "bench/common.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rtb::bench {

Flags::Flags(int argc, char** argv,
             std::map<std::string, std::string> defaults)
    : values_(std::move(defaults)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      std::exit(2);
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "flags take the form --name=value: %s\n",
                   arg.c_str());
      std::exit(2);
    }
    std::string name = arg.substr(2, eq - 2);
    if (values_.find(name) == values_.end()) {
      std::fprintf(stderr, "unknown flag --%s; supported:", name.c_str());
      for (const auto& [k, v] : values_) {
        std::fprintf(stderr, " --%s(=%s)", k.c_str(), v.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
    values_[name] = arg.substr(eq + 1);
  }
}

uint64_t Flags::GetInt(const std::string& name) const {
  auto it = values_.find(name);
  RTB_CHECK(it != values_.end());
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  auto it = values_.find(name);
  RTB_CHECK(it != values_.end());
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name) const {
  auto it = values_.find(name);
  RTB_CHECK(it != values_.end());
  return it->second;
}

Workload BuildWorkload(const std::vector<geom::Rect>& rects, uint32_t fanout,
                       rtree::LoadAlgorithm algo) {
  Workload w;
  w.store = std::make_unique<storage::MemPageStore>();
  auto built = rtree::BuildRTree(w.store.get(),
                                 rtree::RTreeConfig::WithFanout(fanout),
                                 rects, algo);
  RTB_CHECK(built.ok());
  w.tree = *built;
  auto summary = rtree::TreeSummary::Extract(w.store.get(), built->root);
  RTB_CHECK(summary.ok());
  w.summary = std::make_unique<rtree::TreeSummary>(std::move(*summary));
  w.centers = data::Centers(rects);
  w.store->ResetStats();
  w.label = std::string(rtree::LoadAlgorithmName(algo));
  w.fanout = fanout;
  return w;
}

std::vector<geom::Rect> MakeTigerData(uint64_t seed, size_t n) {
  Rng rng(seed);
  data::TigerParams params;
  params.num_rects = n;
  return data::GenerateTigerSurrogate(params, &rng);
}

std::vector<geom::Rect> MakeCfdData(uint64_t seed, size_t n) {
  Rng rng(seed);
  data::CfdParams params;
  params.num_points = n;
  return data::GenerateCfdSurrogate(params, &rng);
}

double ModelDiskAccesses(const Workload& w, const model::QuerySpec& spec,
                         uint64_t buffer_pages) {
  auto ed = model::PredictDiskAccesses(*w.summary, spec, buffer_pages,
                                       &w.centers);
  RTB_CHECK(ed.ok());
  return *ed;
}

SimEstimate SimulateDiskAccesses(const Workload& w,
                                 const model::QuerySpec& spec,
                                 uint64_t buffer_pages, uint32_t batches,
                                 uint64_t batch_size, uint64_t seed) {
  sim::SimOptions options;
  options.buffer_pages = buffer_pages;
  sim::MbrListSimulator simulator(w.summary.get(), options);
  auto gen = sim::MakeGenerator(spec, &w.centers);
  RTB_CHECK(gen.ok());
  Rng rng(seed);
  auto result = simulator.Run(gen->get(), &rng, batches, batch_size);
  RTB_CHECK(result.ok());
  SimEstimate est;
  est.mean = result->mean_disk_accesses;
  est.ci90_rel = result->mean_disk_accesses > 0
                     ? result->ci_halfwidth_90 / result->mean_disk_accesses
                     : 0.0;
  return est;
}

ParallelEstimate RunParallelQueries(const Workload& w,
                                    const model::QuerySpec& spec,
                                    uint64_t buffer_pages, uint32_t threads,
                                    size_t shards, uint64_t warmup,
                                    uint64_t queries, uint64_t seed) {
  std::unique_ptr<storage::PageCache> pool;
  if (threads == 1 && shards == 0) {
    pool = storage::BufferPool::MakeLru(w.store.get(), buffer_pages);
  } else {
    pool = storage::ShardedBufferPool::MakeLru(w.store.get(), buffer_pages,
                                               shards);
  }
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(w.fanout),
                                 w.tree.root, w.tree.height);
  RTB_CHECK(tree.ok());
  auto gen = sim::MakeGenerator(spec, &w.centers);
  RTB_CHECK(gen.ok());
  sim::WorkloadOptions options;
  options.threads = threads;
  options.base_seed = seed;
  options.warmup = warmup;
  options.queries = queries;
  auto run = sim::RunWorkload(&*tree, w.store.get(), gen->get(), options);
  RTB_CHECK(run.ok());
  ParallelEstimate est;
  est.run = std::move(*run);
  est.buffer = pool->AggregateStats();
  return est;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  RTB_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf(" ");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 1;
  for (size_t w : widths) total += w + 1;
  std::printf("  ");
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

bool Table::AppendCsv(const std::string& path,
                      const std::string& label) const {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  auto write_row = [f, &label](const std::vector<std::string>& cells,
                               const char* first) {
    std::fprintf(f, "%s", first[0] ? first : label.c_str());
    for (const std::string& cell : cells) {
      // Cells are numbers/short words; strip the cosmetic '%' and '+/-'.
      std::string clean = cell;
      if (!clean.empty() && clean.back() == '%') clean.pop_back();
      std::fprintf(f, ",%s", clean.c_str());
    }
    std::fprintf(f, "\n");
  };
  write_row(headers_, "label");
  for (const auto& row : rows_) write_row(row, "");
  std::fclose(f);
  return true;
}

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void Banner(const std::string& experiment, const std::string& description,
            uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  %s\n", description.c_str());
  std::printf("  paper: Leutenegger & Lopez, \"The Effect of Buffering on the\n");
  std::printf("         Performance of R-Trees\" (ICDE 1998 / TKDE 2000)\n");
  std::printf("  seed: %" PRIu64 "\n", seed);
  std::printf("==============================================================\n");
}

}  // namespace rtb::bench
