// Figure 5 — The CFD data set (rendering data).
//
// The paper plots a 5,088-node version of the CFD grid: the full data set
// on the left and a blow-up of the centroid on the right, with the wing
// elements visible as blank "ovalish areas". This bench regenerates that
// figure's data: it writes the sampled points (full set and center detail)
// as rect files and prints a coarse ASCII density map plus the density
// statistics the paper describes ("dense in areas of great change ...
// sparse in areas of little change").

#include <cmath>
#include <cstdio>
#include <string>

#include "bench/common.h"

namespace rtb::bench {
namespace {

void AsciiDensity(const std::vector<geom::Rect>& rects, geom::Rect window,
                  int cols, int rows) {
  std::vector<int> counts(static_cast<size_t>(cols) * rows, 0);
  for (const geom::Rect& r : rects) {
    geom::Point c = r.Center();
    if (!window.Contains(c)) continue;
    int cx = std::min(cols - 1, static_cast<int>((c.x - window.lo.x) /
                                                 window.width() * cols));
    int cy = std::min(rows - 1, static_cast<int>((c.y - window.lo.y) /
                                                 window.height() * rows));
    ++counts[static_cast<size_t>(cy) * cols + cx];
  }
  int max_count = 1;
  for (int c : counts) max_count = std::max(max_count, c);
  const char* shades = " .:-=+*#%@";
  for (int y = rows - 1; y >= 0; --y) {
    std::printf("  |");
    for (int x = 0; x < cols; ++x) {
      int c = counts[static_cast<size_t>(y) * cols + x];
      int shade = c == 0 ? 0
                         : 1 + static_cast<int>(8.0 * std::log1p(c) /
                                                std::log1p(max_count));
      std::printf("%c", shades[std::min(shade, 9)]);
    }
    std::printf("|\n");
  }
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "5088"},
               {"out", "cfd_dataset"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t n = flags.GetInt("points");

  Banner("Figure 5: the CFD data set",
         "surrogate grid around a two-element airfoil, " + Table::Int(n) +
             " points (paper renders 5,088; experiments use 52,510)",
         seed);

  auto rects = MakeCfdData(seed, n);
  std::string full_path = flags.GetString("out") + "_full.rects";
  std::string detail_path = flags.GetString("out") + "_detail.rects";
  RTB_CHECK(data::SaveRects(full_path, rects).ok());

  geom::Rect detail(0.15, 0.38, 0.95, 0.68);
  std::vector<geom::Rect> center;
  for (const geom::Rect& r : rects) {
    if (detail.Contains(r.Center())) center.push_back(r);
  }
  RTB_CHECK(data::SaveRects(detail_path, center).ok());

  std::printf("\nLeft: full data set (unit square), log-density map\n");
  AsciiDensity(rects, geom::Rect::UnitSquare(), 64, 24);
  std::printf("\nRight: detail of center (%0.2f..%0.2f x %0.2f..%0.2f)\n",
              detail.lo.x, detail.hi.x, detail.lo.y, detail.hi.y);
  AsciiDensity(rects, detail, 64, 24);

  std::printf("\nPoint dumps: %s (%zu pts), %s (%zu pts)\n",
              full_path.c_str(), rects.size(), detail_path.c_str(),
              center.size());
  std::printf(
      "Skew statistics: %.1f%% of points lie within the detail window "
      "covering %.1f%% of the domain.\n",
      100.0 * static_cast<double>(center.size()) /
          static_cast<double>(rects.size()),
      100.0 * detail.Area());
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
