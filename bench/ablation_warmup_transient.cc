// Ablation (paper Section 3.3 foundations) — the buffer warm-up transient.
//
// The buffer model rests on the Bhide-Dan-Dias observation that the LRU
// steady-state hit probability is close to the hit probability when the
// buffer first fills. This bench makes that visible: it prints the modeled
// transient ED(N) next to the measured per-window disk accesses of a cold-
// started simulator, marks N*, and compares three steady-state estimates
// (transient at N*, the paper's integer model, the continuous refinement)
// to the simulated steady state.

#include <algorithm>
#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "25"},
               {"buffer", "200"},
               {"runs", "200"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t buffer = flags.GetInt("buffer");
  const int runs = static_cast<int>(flags.GetInt("runs"));

  Banner("Ablation: buffer warm-up transient (Bhide-Dan-Dias)",
         Table::Int(flags.GetInt("points")) +
             " uniform points, fanout " + Table::Int(flags.GetInt("fanout")) +
             ", buffer " + Table::Int(buffer) + ", uniform point queries, " +
             Table::Int(runs) + " cold starts averaged",
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  Workload w = BuildWorkload(rects,
                             static_cast<uint32_t>(flags.GetInt("fanout")),
                             rtree::LoadAlgorithm::kHilbertSort);
  auto probs = model::UniformAccessProbabilities(*w.summary, 0.0, 0.0);
  RTB_CHECK(probs.ok());

  const uint64_t n_star = model::QueriesToFillBuffer(*probs, buffer);
  std::printf("\nN* (queries to fill the buffer): %llu\n",
              static_cast<unsigned long long>(n_star));

  // Measurement windows spanning warm-up and beyond.
  std::vector<std::pair<uint64_t, uint64_t>> windows;
  uint64_t edge = 0;
  for (uint64_t next : {8, 20, 50, 120, 300, 700, 1500, 3000, 6000}) {
    windows.push_back({edge, next});
    edge = next;
  }

  std::vector<double> measured(windows.size(), 0.0);
  sim::SimOptions options;
  options.buffer_pages = buffer;
  sim::UniformPointGenerator gen;
  for (int run = 0; run < runs; ++run) {
    sim::MbrListSimulator simulator(w.summary.get(), options);
    Rng qrng(seed + 17 * run + 1);
    uint64_t q = 0;
    for (size_t i = 0; i < windows.size(); ++i) {
      uint64_t misses = 0;
      for (; q < windows[i].second; ++q) {
        misses += simulator.ExecuteQuery(gen.Next(qrng), nullptr);
      }
      measured[i] += static_cast<double>(misses) /
                     static_cast<double>(windows[i].second -
                                         windows[i].first) /
                     runs;
    }
  }

  Table table({"queries", "model ED(N)", "measured", "note"});
  for (size_t i = 0; i < windows.size(); ++i) {
    double mid = (static_cast<double>(windows[i].first) +
                  static_cast<double>(windows[i].second)) /
                 2.0;
    // Past N* the model plateaus at the steady state.
    double n = std::min(mid, static_cast<double>(n_star));
    auto point = model::WarmupTransient(*probs, {n});
    std::string note =
        windows[i].first >= n_star
            ? "steady state"
            : (windows[i].second > n_star ? "buffer fills here" : "warming");
    table.AddRow({Table::Int(windows[i].first) + ".." +
                      Table::Int(windows[i].second),
                  Table::Num(point[0].disk_accesses, 4),
                  Table::Num(measured[i], 4), note});
  }
  table.Print();

  std::printf("\nSteady-state estimates:\n");
  std::printf("  paper model (integer N*):   %.4f\n",
              model::ExpectedDiskAccesses(*probs, buffer));
  std::printf("  continuous-N* refinement:   %.4f\n",
              model::ExpectedDiskAccessesContinuous(*probs, buffer));
  std::printf("  simulated (last window):    %.4f\n", measured.back());
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
