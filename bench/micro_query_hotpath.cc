// micro_query_hotpath — the query read path, measured where the paper says
// it matters: the buffer-hit case.
//
// The paper's cost metric is disk accesses, so a buffered R-tree spends the
// bulk of every query visiting nodes that are already resident; that visit
// must be nearly free. This bench times exactly that path, in four serial
// configurations (point/region queries x 100%-resident/buffer-constrained
// pools) and optionally fanned out over worker threads, and emits a
// machine-readable BENCH_micro_query_hotpath.json so future perf PRs can
// prove their delta against the recorded trajectory.
//
// Every serial configuration is measured twice:
//
//   * "legacy" — the pre-change read path, reproduced here verbatim: a
//     recursive search that holds each PageGuard across the recursion and
//     DeserializeNode's every visited node into a heap-allocated entry
//     vector, against a replica of the pre-change buffer pool (std::list
//     LRU with one list-node alloc/free per page access, unordered_map page
//     table probed on every fetch and every unpin). This is the baseline
//     the >= 2x acceptance criterion refers to, re-measured on the same
//     machine and workload.
//   * the live RTree::Search — explicit-stack traversal over zero-copy
//     NodeViews.
//
// Reported per config: queries/sec (both paths, plus the speedup),
// ns/node-visit, buffer hit rate over the measured phase, and heap
// allocations per query on the measuring thread (util/alloc_counter); the
// zero-copy path's steady-state count must be ~0 for point queries (the
// only allocations left are result-vector growth).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "util/alloc_counter.h"

namespace rtb::bench {
namespace {

using geom::Rect;
using storage::PageCache;
using storage::PageGuard;
using storage::PageId;

// The pre-change LRU policy (replacement.cc @ PR 1), reproduced so the
// baseline pool pays the same heap traffic the pre-change BufferPool paid:
// the recency order lived in a std::list, so every access — hits included —
// erased and re-allocated a list node. Eviction order is identical to the
// current intrusive-list LruPolicy, so both paths see the same hit/miss
// stream; only the bookkeeping cost differs.
class LegacyListLruPolicy final : public storage::ReplacementPolicy {
 public:
  explicit LegacyListLruPolicy(size_t capacity) : entries_(capacity) {}

  void RecordAccess(storage::FrameId frame) override {
    Entry& e = entries_[frame];
    if (e.tracked) order_.erase(e.pos);
    order_.push_front(frame);
    e.pos = order_.begin();
    e.tracked = true;
  }

  void SetEvictable(storage::FrameId frame, bool evictable) override {
    Entry& e = entries_[frame];
    if (e.evictable == evictable) return;
    e.evictable = evictable;
    num_evictable_ += evictable ? 1 : static_cast<size_t>(-1);
  }

  bool Evict(storage::FrameId* victim) override {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (entries_[*it].evictable) {
        *victim = *it;
        Remove(*it);
        return true;
      }
    }
    return false;
  }

  void Remove(storage::FrameId frame) override {
    Entry& e = entries_[frame];
    if (!e.tracked) return;
    if (e.evictable) --num_evictable_;
    order_.erase(e.pos);
    e = Entry{};
  }

  size_t NumEvictable() const override { return num_evictable_; }
  std::string_view name() const override { return "LRU(list)"; }

 private:
  struct Entry {
    bool tracked = false;
    bool evictable = false;
    std::list<storage::FrameId>::iterator pos;
  };
  std::list<storage::FrameId> order_;
  std::vector<Entry> entries_;
  size_t num_evictable_ = 0;
};

// A read-only replica of the pre-change BufferPool (buffer_pool.cc @ PR 1):
// std::unordered_map page table (node-per-entry, pointer-chasing find),
// the allocating list LRU above, and Unpin re-probing the table by page id.
// Together with LegacySearchRec below this reproduces the complete
// pre-change read path, so "baseline" numbers measure the code this PR
// replaced, on the same machine and workload. Mutation entry points are not
// reproduced (the bench only queries).
class LegacyBufferPool final : public storage::PageCache {
 public:
  LegacyBufferPool(storage::PageStore* store, size_t capacity)
      : store_(store),
        capacity_(capacity),
        policy_(capacity),
        buffer_(capacity * store->page_size()),
        frames_(capacity) {
    free_frames_.reserve(capacity);
    for (size_t f = capacity; f > 0; --f) {
      free_frames_.push_back(static_cast<storage::FrameId>(f - 1));
    }
  }

  size_t capacity() const override { return capacity_; }
  size_t page_size() const override { return store_->page_size(); }

  Result<PageGuard> Fetch(PageId id) override {
    ++stats_.requests;
    auto it = page_table_.find(id);
    storage::FrameId f;
    if (it != page_table_.end()) {
      ++stats_.hits;
      f = it->second;
      FrameMeta& meta = frames_[f];
      if (meta.pin_count++ == 0) policy_.SetEvictable(f, false);
      policy_.RecordAccess(f);
    } else {
      ++stats_.misses;
      if (!free_frames_.empty()) {
        f = free_frames_.back();
        free_frames_.pop_back();
      } else {
        RTB_CHECK(policy_.Evict(&f));
        page_table_.erase(frames_[f].page_id);
        ++stats_.evictions;
      }
      RTB_CHECK(store_->Read(id, FrameData(f)).ok());
      frames_[f] = FrameMeta{id, 1};
      page_table_[id] = f;
      policy_.RecordAccess(f);
      policy_.SetEvictable(f, false);
    }
    return PageGuard(this, storage::Frame{id, FrameData(f), f},
                     /*mark_dirty=*/false);
  }

  Result<PageGuard> FetchMutable(PageId) override { RTB_CHECK(false); }
  Result<PageGuard> NewPage() override { RTB_CHECK(false); }
  Status PinPermanently(PageId) override { RTB_CHECK(false); }
  Status UnpinPermanently(PageId) override { RTB_CHECK(false); }
  size_t num_permanent_pins() const override { return 0; }
  Status FlushAll() override { return Status::OK(); }
  Status EvictAll() override { RTB_CHECK(false); }

  bool Contains(PageId id) const override {
    return page_table_.find(id) != page_table_.end();
  }

  storage::BufferStats AggregateStats() const override { return stats_; }
  void ResetStats() override { stats_ = storage::BufferStats{}; }

 private:
  struct FrameMeta {
    PageId page_id = storage::kInvalidPageId;
    uint32_t pin_count = 0;
  };

  // The pre-change Unpin: a page-table probe per release.
  void Unpin(const storage::Frame& frame, bool) override {
    auto it = page_table_.find(frame.page_id);
    RTB_CHECK(it != page_table_.end());
    FrameMeta& meta = frames_[it->second];
    RTB_CHECK(meta.pin_count > 0);
    if (--meta.pin_count == 0) policy_.SetEvictable(it->second, true);
  }

  uint8_t* FrameData(storage::FrameId f) {
    return buffer_.data() + static_cast<size_t>(f) * page_size();
  }

  storage::PageStore* store_;
  size_t capacity_;
  LegacyListLruPolicy policy_;
  std::vector<uint8_t> buffer_;
  std::vector<FrameMeta> frames_;
  std::vector<storage::FrameId> free_frames_;
  std::unordered_map<PageId, storage::FrameId> page_table_;
  storage::BufferStats stats_;
};

// The pre-NodeView read path (rtree.cc @ PR 1), kept here as the measured
// baseline: guard held across recursion, DeserializeNode per visit.
Status LegacySearchRec(PageCache* pool, PageId page, const Rect& query,
                       std::vector<rtree::ObjectId>* out,
                       rtree::QueryStats* stats) {
  RTB_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(page));
  if (stats != nullptr) ++stats->nodes_accessed;
  RTB_ASSIGN_OR_RETURN(rtree::Node node,
                       rtree::DeserializeNode(guard.data(),
                                              pool->page_size()));
  for (const rtree::Entry& e : node.entries) {
    if (!e.rect.Intersects(query)) continue;
    if (node.is_leaf()) {
      out->push_back(e.id);
    } else {
      RTB_RETURN_IF_ERROR(LegacySearchRec(pool, static_cast<PageId>(e.id),
                                          query, out, stats));
    }
  }
  return Status::OK();
}

struct SerialMeasurement {
  double queries_per_sec = 0.0;
  double ns_per_node_visit = 0.0;
  double nodes_per_query = 0.0;
  double hit_rate = 0.0;
  double allocs_per_query = 0.0;
  uint64_t result_count = 0;  // Checksum: total ids returned.
};

// Runs `queries` queries from a fresh Rng(seed) against `tree` through
// `pool`, after `warmup` unmeasured queries. `legacy` selects the baseline
// read path.
SerialMeasurement RunSerial(rtree::RTree* tree, PageCache* pool,
                            sim::QueryGenerator* gen, uint64_t seed,
                            uint64_t warmup, uint64_t queries, bool legacy) {
  std::vector<rtree::ObjectId> sink;
  Rng rng(seed);
  for (uint64_t i = 0; i < warmup; ++i) {
    sink.clear();
    Status s = legacy ? LegacySearchRec(pool, tree->root(), gen->Next(rng),
                                        &sink, nullptr)
                      : tree->Search(gen->Next(rng), &sink);
    RTB_CHECK(s.ok());
  }

  pool->ResetStats();
  rtree::QueryStats stats;
  SerialMeasurement m;
  util::ScopedAllocationCounter allocs;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < queries; ++i) {
    sink.clear();
    Status s = legacy ? LegacySearchRec(pool, tree->root(), gen->Next(rng),
                                        &sink, &stats)
                      : tree->Search(gen->Next(rng), &sink, &stats);
    RTB_CHECK(s.ok());
    m.result_count += sink.size();
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t allocations = allocs.delta();

  const double seconds =
      std::chrono::duration<double>(end - start).count();
  const storage::BufferStats buffer = pool->AggregateStats();
  m.queries_per_sec =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  m.nodes_per_query = queries > 0 ? static_cast<double>(stats.nodes_accessed) /
                                        static_cast<double>(queries)
                                  : 0.0;
  m.ns_per_node_visit =
      stats.nodes_accessed > 0
          ? seconds * 1e9 / static_cast<double>(stats.nodes_accessed)
          : 0.0;
  m.hit_rate = buffer.HitRate();
  m.allocs_per_query =
      queries > 0
          ? static_cast<double>(allocations) / static_cast<double>(queries)
          : 0.0;
  return m;
}

void EmitSerial(JsonDict& row, const SerialMeasurement& live,
                const SerialMeasurement& legacy) {
  row.PutNum("queries_per_sec", live.queries_per_sec);
  row.PutNum("baseline_queries_per_sec", legacy.queries_per_sec);
  row.PutNum("speedup_vs_baseline",
             legacy.queries_per_sec > 0.0
                 ? live.queries_per_sec / legacy.queries_per_sec
                 : 0.0);
  row.PutNum("ns_per_node_visit", live.ns_per_node_visit);
  row.PutNum("baseline_ns_per_node_visit", legacy.ns_per_node_visit);
  row.PutNum("nodes_per_query", live.nodes_per_query);
  row.PutNum("hit_rate", live.hit_rate);
  row.PutNum("baseline_hit_rate", legacy.hit_rate);
  row.PutNum("allocs_per_query", live.allocs_per_query);
  row.PutNum("baseline_allocs_per_query", legacy.allocs_per_query);
  row.PutInt("result_count", live.result_count);
}

int Run(int argc, char** argv) {
  // Default fanout 100 ~ a full 4096-byte page (102 40-byte entries fit
  // after the 16-byte header), the paper's node-per-disk-page layout.
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "100"},
               {"queries", "40000"},
               {"warmup", "5000"},
               {"region_side", "0.03"},
               {"small_buffer_frac", "0.1"},
               {"threads", "1"},
               {"shards", "0"},
               {"json", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t queries = flags.GetInt("queries");
  const uint64_t warmup = flags.GetInt("warmup");
  const double region_side = flags.GetDouble("region_side");
  const uint32_t threads = static_cast<uint32_t>(flags.GetInt("threads"));

  Banner("micro: query hot path",
         "zero-copy NodeView read path vs. the deserializing baseline; " +
             Table::Int(flags.GetInt("points")) + " uniform points, fanout " +
             Table::Int(flags.GetInt("fanout")),
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  Workload w = BuildWorkload(
      rects, static_cast<uint32_t>(flags.GetInt("fanout")),
      rtree::LoadAlgorithm::kHilbertSort);
  const uint64_t total_pages = w.summary->NumNodes();
  const uint64_t small_buffer = std::max<uint64_t>(
      8, static_cast<uint64_t>(flags.GetDouble("small_buffer_frac") *
                               static_cast<double>(total_pages)));

  BenchReport report("micro_query_hotpath");
  report.meta().PutInt("seed", seed);
  report.meta().PutInt("points", flags.GetInt("points"));
  report.meta().PutInt("fanout", flags.GetInt("fanout"));
  report.meta().PutInt("tree_pages", total_pages);
  report.meta().PutInt("tree_height", w.tree.height);
  report.meta().PutInt("queries", queries);
  report.meta().PutInt("warmup", warmup);
  report.meta().PutNum("region_side", region_side);
  report.meta().PutInt("small_buffer_pages", small_buffer);

  Table table({"config", "queries/s", "baseline q/s", "speedup",
               "ns/visit", "hit rate", "allocs/query"});

  sim::UniformPointGenerator point_gen;
  sim::UniformRegionGenerator region_gen(region_side, region_side);
  struct SerialConfig {
    const char* name;
    sim::QueryGenerator* gen;
    uint64_t buffer_pages;
  };
  const SerialConfig configs[] = {
      {"point_resident_serial", &point_gen, total_pages},
      {"region_resident_serial", &region_gen, total_pages},
      {"point_buffered_serial", &point_gen, small_buffer},
      {"region_buffered_serial", &region_gen, small_buffer},
  };

  for (const SerialConfig& c : configs) {
    // Fresh pool + tree per path so neither measurement inherits residency.
    // The legacy path also runs on the legacy pool so its numbers reproduce
    // the pre-change storage stack, not just the pre-change traversal.
    auto run_path = [&](bool legacy) {
      std::unique_ptr<storage::PageCache> pool;
      if (legacy) {
        pool = std::make_unique<LegacyBufferPool>(w.store.get(),
                                                  c.buffer_pages);
      } else {
        pool = storage::BufferPool::MakeLru(w.store.get(), c.buffer_pages);
      }
      auto tree = rtree::RTree::Open(
          pool.get(), rtree::RTreeConfig::WithFanout(w.fanout), w.tree.root,
          w.tree.height);
      RTB_CHECK(tree.ok());
      return RunSerial(&*tree, pool.get(), c.gen, seed + 17, warmup,
                       queries, legacy);
    };
    SerialMeasurement legacy = run_path(true);
    SerialMeasurement live = run_path(false);
    RTB_CHECK(live.result_count == legacy.result_count);

    JsonDict& row = report.AddConfig(c.name);
    row.PutInt("buffer_pages", c.buffer_pages);
    row.PutInt("threads", 1);
    EmitSerial(row, live, legacy);
    table.AddRow({c.name, Table::Num(live.queries_per_sec, 0),
                  Table::Num(legacy.queries_per_sec, 0),
                  Table::Num(live.queries_per_sec /
                                 std::max(legacy.queries_per_sec, 1e-9),
                             2) +
                      "x",
                  Table::Num(live.ns_per_node_visit, 1),
                  Table::Num(100.0 * live.hit_rate, 2) + "%",
                  Table::Num(live.allocs_per_query, 3)});
  }

  // Threaded configuration: the same resident point workload through the
  // sharded pool. Allocations are per-thread and workers allocate on their
  // own stacks, so the alloc column is not meaningful here; hit rate and
  // throughput are.
  if (threads > 1) {
    ParallelEstimate est = RunParallelQueries(
        w, model::QuerySpec::UniformPoint(), total_pages, threads,
        flags.GetInt("shards"), warmup, queries, seed + 17);
    JsonDict& row =
        report.AddConfig("point_resident_threads" + Table::Int(threads));
    row.PutInt("buffer_pages", total_pages);
    row.PutInt("threads", threads);
    row.PutNum("queries_per_sec", est.run.QueriesPerSecond());
    row.PutNum("nodes_per_query", est.run.MeanNodeAccesses());
    row.PutNum("hit_rate", est.buffer.HitRate());
    table.AddRow({"point_resident_threads" + Table::Int(threads),
                  Table::Num(est.run.QueriesPerSecond(), 0), "-", "-", "-",
                  Table::Num(100.0 * est.buffer.HitRate(), 2) + "%", "-"});
  }

  table.Print();
  if (!report.WriteFile(flags.GetString("json"))) return 1;
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
