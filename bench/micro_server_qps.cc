// micro_server_qps — cross-connection batch coalescing under load.
//
// An in-process rtb_server serves a file-backed tree through a cold,
// deliberately small buffer pool (<= 64 frames against a multi-thousand
// page tree). A load generator opens hundreds of pipelined connections and
// pushes the same query multiset through two server configurations:
//
//   * batch_1   — the admission loop drains every request by itself:
//                 request/reply serving with no cross-request locality,
//                 the classical one-query-at-a-time baseline.
//   * coalesced — requests admitted within the window drain as one
//                 BatchExecutor run: the sorted shared frontier turns
//                 concurrent queries touching the same pages into single
//                 pool requests, so the effective hit rate climbs with
//                 load instead of being fixed by the pool size.
//
// Reported per config: wall-clock QPS, effective batch size, pool hit
// rate, and node accesses per query. The acceptance criterion (asserted):
// under a deep pipeline the coalesced server reaches at least 1.5x the
// QPS of batch_1 on the identical workload — buffering the *requests*
// buys back what the tiny page buffer cannot.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "net/client.h"
#include "net/server.h"
#include "net/serving.h"
#include "storage/buffer_pool.h"

namespace rtb::bench {
namespace {

using geom::Rect;

struct Measurement {
  double qps = 0.0;
  double seconds = 0.0;
  uint64_t queries = 0;
  double effective_batch = 0.0;
  uint64_t batches = 0;
  double hit_rate = 0.0;
  double effective_hit_rate = 0.0;
  uint64_t pool_requests = 0;
  uint64_t pool_misses = 0;
  uint64_t node_accesses = 0;
  double node_accesses_per_query = 0.0;
  uint64_t results = 0;  // Checksum: rows must agree.
};

// The serving workload: `conns * per_conn` small region queries, the same
// multiset for every variant (rects depend only on seed and index).
std::vector<Rect> MakeQueries(uint64_t count, uint64_t seed, double extent) {
  Rng rng(seed);
  std::vector<Rect> queries;
  queries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const double x = rng.NextDouble() * (1.0 - extent);
    const double y = rng.NextDouble() * (1.0 - extent);
    queries.push_back(Rect(x, y, x + extent, y + extent));
  }
  return queries;
}

Measurement RunVariant(const engine::ExperimentSpec& spec, uint32_t max_batch,
                       uint64_t max_wait_us, uint64_t conns, uint64_t per_conn,
                       uint64_t threads, const std::vector<Rect>& queries) {
  std::remove(spec.storage.path.c_str());
  auto stack = net::ServingStack::Open(spec);
  RTB_CHECK(stack.ok());

  net::ServerOptions options;
  options.max_batch = max_batch;
  options.max_wait_us = max_wait_us;
  net::Server server(stack->get(), options);
  RTB_CHECK(server.Start().ok());
  std::thread serve_thread([&server] { RTB_CHECK(server.Serve().ok()); });

  // Connect everything up front (serially, cheap); time only the load.
  std::vector<std::unique_ptr<net::Client>> clients;
  clients.reserve(conns);
  for (uint64_t c = 0; c < conns; ++c) {
    auto client = net::Client::Connect(server.port());
    RTB_CHECK(client.ok());
    clients.push_back(std::move(*client));
  }
  const storage::BufferStats cold = (*stack)->pool()->AggregateStats();

  std::vector<uint64_t> results_per_thread(threads, 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> loaders;
  for (uint64_t t = 0; t < threads; ++t) {
    loaders.emplace_back([&, t] {
      // Each loader owns a contiguous slice of connections: queue the full
      // pipeline on every connection first (that is what piles requests
      // into one admission window), then harvest replies.
      uint64_t found = 0;
      for (uint64_t c = t; c < conns; c += threads) {
        net::Client* client = clients[c].get();
        for (uint64_t q = 0; q < per_conn; ++q) {
          client->QueueSearch(queries[c * per_conn + q]);
        }
        RTB_CHECK(client->Flush().ok());
      }
      for (uint64_t c = t; c < conns; c += threads) {
        net::Client* client = clients[c].get();
        for (uint64_t q = 0; q < per_conn; ++q) {
          auto reply = client->ReadReply();
          RTB_CHECK(reply.ok());
          RTB_CHECK(reply->ok());
          found += reply->ids.size();
        }
      }
      results_per_thread[t] = found;
    });
  }
  for (auto& thread : loaders) thread.join();
  const auto end = std::chrono::steady_clock::now();

  server.RequestShutdown();
  serve_thread.join();

  Measurement m;
  m.seconds = std::chrono::duration<double>(end - start).count();
  m.queries = conns * per_conn;
  m.qps = m.seconds > 0.0 ? static_cast<double>(m.queries) / m.seconds : 0.0;
  const net::ServerStats s = server.stats();
  RTB_CHECK(s.searches == m.queries);
  m.effective_batch = s.EffectiveBatch();
  m.batches = s.batches;
  m.node_accesses = s.search_batch.node_accesses;
  m.node_accesses_per_query =
      static_cast<double>(m.node_accesses) / static_cast<double>(m.queries);
  const storage::BufferStats warm = (*stack)->pool()->AggregateStats();
  m.pool_requests = warm.requests - cold.requests;
  m.pool_misses = warm.misses - cold.misses;
  m.hit_rate = m.pool_requests > 0
                   ? 1.0 - static_cast<double>(m.pool_misses) /
                               static_cast<double>(m.pool_requests)
                   : 0.0;
  // The number that scales with load: of all *logical* node accesses the
  // query multiset performed, how many were absorbed by buffering — the
  // page buffer's hits plus the shared frontier's cross-query dedup. For
  // batch_1 this equals the raw pool hit rate (one pool request per
  // logical access); coalescing pushes it up without adding a frame.
  m.effective_hit_rate =
      m.node_accesses > 0 ? 1.0 - static_cast<double>(m.pool_misses) /
                                      static_cast<double>(m.node_accesses)
                          : 0.0;
  for (const uint64_t r : results_per_thread) m.results += r;

  clients.clear();
  RTB_CHECK((*stack)->Close().ok());
  std::remove(spec.storage.path.c_str());
  std::remove((spec.storage.path + ".wal").c_str());
  return m;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"n", "60000"},
               {"fanout", "50"},
               // The point of the experiment: a pool far smaller than the
               // tree, so per-request serving misses constantly.
               {"buffer_pages", "64"},
               {"conns", "256"},
               {"per_conn", "16"},
               {"threads", "8"},
               {"extent", "0.02"},
               {"max_batch", "256"},
               {"max_wait_us", "1000"},
               {"path", "/tmp/rtb_micro_server_qps.store"},
               {"json", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t conns = std::max<uint64_t>(1, flags.GetInt("conns"));
  const uint64_t per_conn = std::max<uint64_t>(1, flags.GetInt("per_conn"));
  const uint64_t threads =
      std::min<uint64_t>(std::max<uint64_t>(1, flags.GetInt("threads")), conns);
  const double extent = flags.GetDouble("extent");

  engine::ExperimentSpec spec;
  spec.name = "micro_server_qps";
  spec.dataset.kind = "uniform";
  spec.dataset.n = flags.GetInt("n");
  spec.dataset.seed = seed + 7;
  spec.tree.fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  spec.pool.buffer_pages = flags.GetInt("buffer_pages");
  spec.storage.backend = "file";
  spec.storage.path = flags.GetString("path");

  Banner("micro: server QPS under coalescing",
         Table::Int(conns) + " pipelined connections x " +
             Table::Int(per_conn) + " queries against a " +
             Table::Int(spec.dataset.n) + "-object file-backed tree, cold " +
             Table::Int(spec.pool.buffer_pages) + "-frame pool",
         seed);

  const auto queries = MakeQueries(conns * per_conn, seed + 31, extent);

  BenchReport report("micro_server_qps");
  report.meta().PutInt("seed", seed);
  report.meta().PutInt("n", spec.dataset.n);
  report.meta().PutInt("fanout", spec.tree.fanout);
  report.meta().PutInt("buffer_pages", spec.pool.buffer_pages);
  report.meta().PutInt("conns", conns);
  report.meta().PutInt("per_conn", per_conn);
  report.meta().PutInt("threads", threads);
  report.meta().PutNum("extent", extent);

  Table table({"config", "qps", "eff. batch", "eff. hit rate", "nodes/query"});
  auto add = [&](const std::string& name, const Measurement& m) {
    JsonDict& row = report.AddConfig(name);
    row.PutNum("queries_per_sec", m.qps);
    row.PutNum("seconds", m.seconds);
    row.PutInt("queries", m.queries);
    row.PutNum("effective_batch", m.effective_batch);
    row.PutInt("batches", m.batches);
    row.PutNum("hit_rate", m.hit_rate);
    row.PutNum("effective_hit_rate", m.effective_hit_rate);
    row.PutInt("pool_requests", m.pool_requests);
    row.PutInt("pool_misses", m.pool_misses);
    row.PutInt("node_accesses", m.node_accesses);
    row.PutNum("node_accesses_per_query", m.node_accesses_per_query);
    row.PutInt("results", m.results);
    table.AddRow({name, Table::Num(m.qps, 0), Table::Num(m.effective_batch, 1),
                  Table::Num(m.effective_hit_rate, 3),
                  Table::Num(m.node_accesses_per_query, 1)});
  };

  const Measurement batch1 = RunVariant(
      spec, /*max_batch=*/1, /*max_wait_us=*/0, conns, per_conn, threads,
      queries);
  add("batch_1", batch1);

  const Measurement coalesced = RunVariant(
      spec, static_cast<uint32_t>(flags.GetInt("max_batch")),
      flags.GetInt("max_wait_us"), conns, per_conn, threads, queries);
  add("coalesced", coalesced);

  table.Print();

  // Identical multiset, identical tree: the total result volume must match
  // exactly. The frontier dedup means coalescing does *fewer* pool
  // requests, not a higher ratio on the same denominator — the honest
  // comparison is absolute disk reads, which must not grow.
  RTB_CHECK(coalesced.results == batch1.results);
  RTB_CHECK(coalesced.effective_batch > 1.0);
  RTB_CHECK(coalesced.pool_misses <= batch1.pool_misses);
  RTB_CHECK(coalesced.effective_hit_rate >= batch1.effective_hit_rate);
  // The PR's acceptance bar: coalescing buys at least 1.5x throughput on a
  // deep pipeline over a cold, undersized pool.
  RTB_CHECK(coalesced.qps >= 1.5 * batch1.qps);

  if (!report.WriteFile(flags.GetString("json"))) return 1;
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
