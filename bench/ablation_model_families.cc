// Ablation (beyond the paper) — the three model families side by side.
//
// The paper situates itself among three modeling approaches:
//   1. Kamel-Faloutsos / Pagel et al.: bufferless, needs real MBRs;
//   2. Theodoridis-Sellis: bufferless, fully analytical (no tree needed);
//   3. this paper: buffer-aware, needs real MBRs (hybrid).
// This library implements all three plus a fourth combination the paper
// does not explore: feeding the *analytical* tree prediction into the
// buffer model — a fully analytical disk-access estimate. This bench lines
// all four up against simulation on uniform data (the analytical models'
// home turf).

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "25"},
               {"batches", "10"},
               {"batch_size", "30000"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t n = flags.GetInt("points");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));

  Banner("Ablation: model families (KF bufferless, T-S analytical, buffer "
         "model, fully-analytical buffer model)",
         Table::Int(n) + " uniform points, fanout " + Table::Int(fanout) +
             ", HS tree, uniform point queries",
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(n, &rng);
  Workload w = BuildWorkload(rects, fanout,
                             rtree::LoadAlgorithm::kHilbertSort);
  auto hybrid_probs = model::UniformAccessProbabilities(*w.summary, 0.0, 0.0);
  RTB_CHECK(hybrid_probs.ok());
  auto analytic_probs = model::AnalyticAccessProbabilities(
      model::DataStats{n, 0.0, 0.0}, static_cast<double>(fanout), 0.0, 0.0);
  RTB_CHECK(analytic_probs.ok());

  std::printf("\nBufferless expected node accesses per point query:\n");
  std::printf("  Kamel-Faloutsos (real MBRs):     %.4f\n",
              model::ExpectedNodeAccesses(*hybrid_probs));
  std::printf("  Theodoridis-Sellis (no tree):    %.4f\n",
              model::ExpectedNodeAccesses(*analytic_probs));

  std::printf("\nDisk accesses per query (buffer-aware):\n");
  Table table({"buffer", "simulated", "buffer model", "fully analytical"});
  for (uint64_t buffer : {10, 50, 100, 200, 400, 800}) {
    SimEstimate sim = SimulateDiskAccesses(
        w, model::QuerySpec::UniformPoint(), buffer,
        static_cast<uint32_t>(flags.GetInt("batches")),
        flags.GetInt("batch_size"), seed + buffer);
    table.AddRow({Table::Int(buffer), Table::Num(sim.mean, 4),
                  Table::Num(model::ExpectedDiskAccesses(*hybrid_probs,
                                                         buffer),
                             4),
                  Table::Num(model::ExpectedDiskAccesses(*analytic_probs,
                                                         buffer),
                             4)});
  }
  table.Print();
  std::printf(
      "\nThe fully analytical column needs only (N, fanout) — no tree, no\n"
      "MBRs — at the cost of accuracy outside uniform data.\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
