// Ablation (beyond the paper) — Buffer replacement policy.
//
// The paper's model covers LRU only. This bench runs the same workload
// end-to-end (real R-tree queries through a real buffer pool) under LRU,
// FIFO, CLOCK, LFU and RANDOM, and prints measured disk accesses next to
// the LRU model prediction. It quantifies (a) how much the conclusions
// depend on the policy choice and (b) how well the LRU model approximates
// the other policies.

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"rects", "53145"},
               {"fanout", "100"},
               {"queries", "100000"},
               {"warmup", "20000"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t queries = flags.GetInt("queries");
  const uint64_t warmup = flags.GetInt("warmup");

  Banner("Ablation: buffer replacement policy (beyond the paper)",
         "TIGER surrogate, HS tree, fanout " +
             Table::Int(flags.GetInt("fanout")) +
             ", uniform point queries, end-to-end execution",
         seed);

  auto rects = MakeTigerData(seed, flags.GetInt("rects"));
  Workload w = BuildWorkload(rects,
                             static_cast<uint32_t>(flags.GetInt("fanout")),
                             rtree::LoadAlgorithm::kHilbertSort);
  rtree::RTreeConfig config =
      rtree::RTreeConfig::WithFanout(
          static_cast<uint32_t>(flags.GetInt("fanout")));

  const storage::PolicyKind kinds[] = {
      storage::PolicyKind::kLru,  storage::PolicyKind::kClock,
      storage::PolicyKind::kFifo, storage::PolicyKind::kLfu,
      storage::PolicyKind::kLruK, storage::PolicyKind::kRandom};

  Table table({"buffer", "LRU model", "LRU", "CLOCK", "FIFO", "LFU",
               "LRU-2", "RANDOM"});
  for (uint64_t buffer : {10, 50, 100, 200, 400}) {
    std::vector<std::string> row;
    row.push_back(Table::Int(buffer));
    row.push_back(Table::Num(
        ModelDiskAccesses(w, model::QuerySpec::UniformPoint(), buffer), 4));
    for (storage::PolicyKind kind : kinds) {
      storage::BufferPool pool(w.store.get(), buffer,
                               storage::MakePolicy(kind, buffer, seed));
      auto tree = rtree::RTree::Open(&pool, config, w.tree.root,
                                     w.tree.height);
      RTB_CHECK(tree.ok());
      RTB_CHECK(pool.EvictAll().ok());
      w.store->ResetStats();
      sim::UniformPointGenerator gen;
      Rng rng(seed + buffer);
      auto result = sim::RunWorkload(&*tree, w.store.get(), &gen, &rng,
                                     warmup, queries);
      RTB_CHECK(result.ok());
      row.push_back(Table::Num(result->MeanDiskAccesses(), 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nNote: end-to-end execution always reads the root, so measured "
      "values sit slightly above the MBR-filter model at tiny buffers.\n");

  // ----- Scan resistance: point queries with periodic full-tree scans. ---
  // A full scan floods plain LRU (it evicts the hot upper levels); LRU-2's
  // backward-K distance shrugs it off. Metric: disk accesses per point
  // query, not counting the scans' own reads.
  std::printf(
      "\nScan-resistance: 1 full-tree scan injected every %u point "
      "queries\n",
      50u);
  Table scan_table({"buffer", "LRU", "CLOCK", "LFU", "LRU-2"});
  for (uint64_t buffer : {50, 100, 200}) {
    std::vector<std::string> row{Table::Int(buffer)};
    for (storage::PolicyKind kind :
         {storage::PolicyKind::kLru, storage::PolicyKind::kClock,
          storage::PolicyKind::kLfu, storage::PolicyKind::kLruK}) {
      storage::BufferPool pool(w.store.get(), buffer,
                               storage::MakePolicy(kind, buffer, seed));
      auto tree = rtree::RTree::Open(&pool, config, w.tree.root,
                                     w.tree.height);
      RTB_CHECK(tree.ok());
      RTB_CHECK(pool.EvictAll().ok());
      Rng rng(seed + buffer + 31);
      sim::UniformPointGenerator gen;
      std::vector<rtree::ObjectId> sink;
      // Warm up with the mixed pattern, then measure.
      uint64_t point_disk = 0, points_measured = 0;
      const uint64_t total = 20000, warm = 5000;
      for (uint64_t i = 0; i < total; ++i) {
        if (i % 50 == 49) {
          sink.clear();
          RTB_CHECK(tree->Search(geom::Rect::UnitSquare(), &sink).ok());
          continue;
        }
        uint64_t before = w.store->stats().reads;
        sink.clear();
        RTB_CHECK(tree->Search(gen.Next(rng), &sink).ok());
        if (i >= warm) {
          point_disk += w.store->stats().reads - before;
          ++points_measured;
        }
      }
      row.push_back(Table::Num(
          static_cast<double>(point_disk) /
              static_cast<double>(points_measured),
          4));
    }
    scan_table.AddRow(std::move(row));
  }
  scan_table.Print();
  std::printf(
      "\nUnder scan pollution, frequency/backward-K policies (LFU, LRU-2) "
      "hold their hot set while LRU and CLOCK re-fault it after every "
      "scan.\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
