// Table 2 — Number of nodes per level for the deep trees used in the
// pinning study (Section 5.5): synthetic point data sets of 40,000-250,000
// points, node size 25, giving 4-level R-trees.

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "1998"}, {"fanout", "25"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));

  Banner("Table 2: number of nodes per level",
         "synthetic point data, node size " + Table::Int(fanout) +
             ", HS-packed 4-level trees",
         seed);

  Table table({"data size", "level 0 (root)", "level 1", "level 2",
               "level 3 (leaves)", "total"});
  for (uint64_t n : {40000, 80000, 120000, 160000, 200000, 250000}) {
    Rng rng(seed);
    auto rects = data::GenerateUniformPoints(n, &rng);
    Workload w = BuildWorkload(rects, fanout,
                               rtree::LoadAlgorithm::kHilbertSort);
    RTB_CHECK(w.tree.height == 4);
    table.AddRow({Table::Int(n), Table::Int(w.summary->NodesAtPaperLevel(0)),
                  Table::Int(w.summary->NodesAtPaperLevel(1)),
                  Table::Int(w.summary->NodesAtPaperLevel(2)),
                  Table::Int(w.summary->NodesAtPaperLevel(3)),
                  Table::Int(w.summary->NumNodes())});
  }
  table.Print();
  std::printf(
      "\nPaper: e.g. 40,000 points -> 1600/64/3/1 (1,668 nodes total).\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
