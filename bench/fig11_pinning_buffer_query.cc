// Figure 11 — When does pinning pay off?
//
// Left: disk accesses vs buffer size on the Long Beach (TIGER) data with a
// Hilbert-packed tree of 25 keys per node, uniform point queries. Pinning
// 0/1/2 levels is one curve; pinning 3 levels is the other. Pinning helps
// only in a window of buffer sizes just above the pinned page count; below
// that the third level cannot be pinned at all.
//
// Right: percentage improvement of pinning (relative to no pinning) as the
// region query side QX grows from 0 to 0.15, on 250,000 synthetic points
// with a 500-page buffer (pin 3 levels and pin 2 levels curves). Larger
// queries retrieve so many leaves that the pinned upper levels stop
// mattering (paper: 35% at QX=0 for three levels, shrinking with QX).

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"}, {"rects", "53145"}, {"fanout", "25"},
               {"points", "250000"}, {"buffer", "500"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));

  Banner("Figure 11: pinning vs buffer size and query size",
         "left: TIGER surrogate, HS, fanout " + Table::Int(fanout) +
             ", point queries; right: " + Table::Int(flags.GetInt("points")) +
             " synthetic points, buffer " + Table::Int(flags.GetInt("buffer")),
         seed);

  // ----- Left: buffer-size sweep on the TIGER tree. -----
  {
    auto rects = MakeTigerData(seed, flags.GetInt("rects"));
    Workload w = BuildWorkload(rects, fanout,
                               rtree::LoadAlgorithm::kHilbertSort);
    auto probs = model::UniformAccessProbabilities(*w.summary, 0.0, 0.0);
    RTB_CHECK(probs.ok());
    std::printf("\nTree: %zu nodes, height %u; pages in top 3 levels: %llu\n",
                w.summary->NumNodes(), w.tree.height,
                static_cast<unsigned long long>(
                    w.summary->PagesInTopLevels(3)));
    std::printf("\nLeft: disk accesses vs buffer size (point queries)\n");
    Table table({"buffer", "pin 0-2 levels", "pin 3 levels"});
    for (uint64_t buffer : {25, 50, 75, 100, 150, 200, 300, 400, 500, 750,
                            1000, 1500, 2000}) {
      double base =
          model::ExpectedDiskAccessesPinned(*w.summary, *probs, buffer, 0)
              .disk_accesses;
      auto pin3 =
          model::ExpectedDiskAccessesPinned(*w.summary, *probs, buffer, 3);
      table.AddRow({Table::Int(buffer), Table::Num(base, 4),
                    pin3.feasible ? Table::Num(pin3.disk_accesses, 4)
                                  : "infeasible"});
    }
    table.Print();
  }

  // ----- Right: query-size sweep on 250k synthetic points. -----
  {
    Rng rng(seed);
    auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
    Workload w = BuildWorkload(rects, fanout,
                               rtree::LoadAlgorithm::kHilbertSort);
    const uint64_t buffer = flags.GetInt("buffer");
    std::printf(
        "\nRight: %% improvement of pinning vs region query side QX "
        "(buffer = %llu)\n",
        static_cast<unsigned long long>(buffer));
    Table table({"QX", "pin 2 levels", "pin 3 levels"});
    for (double qx : {0.0, 0.01, 0.025, 0.05, 0.075, 0.1, 0.125, 0.15}) {
      auto probs = model::UniformAccessProbabilities(*w.summary, qx, qx);
      RTB_CHECK(probs.ok());
      double base =
          model::ExpectedDiskAccessesPinned(*w.summary, *probs, buffer, 0)
              .disk_accesses;
      auto improvement = [&](uint16_t levels) -> std::string {
        auto r = model::ExpectedDiskAccessesPinned(*w.summary, *probs,
                                                   buffer, levels);
        if (!r.feasible) return "infeasible";
        double pct = base > 0
                         ? 100.0 * (base - r.disk_accesses) / base
                         : 0.0;
        return Table::Num(pct, 2) + "%";
      };
      table.AddRow({Table::Num(qx, 3), improvement(2), improvement(3)});
    }
    table.Print();
    std::printf(
        "\nPaper: ~35%% for 3 levels at QX=0, decaying as QX grows; pinning "
        "2 levels does ~nothing at QX=0 and gains only marginally with "
        "QX.\n");
  }
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
