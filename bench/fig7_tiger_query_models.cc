// Figure 7 — Uniform vs data-driven queries, Long Beach (TIGER) data.
//
// Left: disk accesses per point query vs buffer size, under the uniform
// query model and the data-driven query model (HS tree, fanout 100). The
// data-driven curve sits ABOVE the uniform curve: Long Beach has large
// empty regions, so uniform queries are often pruned at the root while
// data-driven queries always land on data.
//
// Right: the improvement ratio accesses(buffer=10)/accesses(buffer=N) as N
// grows. Uniform queries benefit more from added buffer (paper: 3.91x at
// N=500 vs 2.86x for data-driven) because the uniform model concentrates
// accesses on "hot" large-MBR nodes that caching captures.

#include <cstdio>

#include "bench/common.h"

namespace rtb::bench {
namespace {

constexpr uint64_t kBuffers[] = {10,  25,  50,  75,  100, 150, 200,
                                 250, 300, 350, 400, 450, 500};

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"}, {"rects", "53145"}, {"fanout", "25"}});
  const uint64_t seed = flags.GetInt("seed");

  Banner("Figure 7: uniform vs data-driven queries (TIGER data)",
         "point queries on the HS tree, fanout " +
             Table::Int(flags.GetInt("fanout")),
         seed);

  auto rects = MakeTigerData(seed, flags.GetInt("rects"));
  Workload hs = BuildWorkload(rects,
                              static_cast<uint32_t>(flags.GetInt("fanout")),
                              rtree::LoadAlgorithm::kHilbertSort);

  model::QuerySpec uniform = model::QuerySpec::UniformPoint();
  model::QuerySpec data_driven = model::QuerySpec::DataDrivenPoint();

  std::printf("\nLeft: disk accesses per query vs buffer size\n");
  Table left({"buffer", "uniform", "data-driven"});
  double uniform_at_10 = ModelDiskAccesses(hs, uniform, 10);
  double dd_at_10 = ModelDiskAccesses(hs, data_driven, 10);
  for (uint64_t buffer : kBuffers) {
    left.AddRow({Table::Int(buffer),
                 Table::Num(ModelDiskAccesses(hs, uniform, buffer), 4),
                 Table::Num(ModelDiskAccesses(hs, data_driven, buffer), 4)});
  }
  left.Print();

  std::printf(
      "\nRight: improvement ratio accesses(B=10)/accesses(B=N) vs N\n");
  Table right({"buffer", "uniform", "data-driven"});
  for (uint64_t buffer : kBuffers) {
    double u = ModelDiskAccesses(hs, uniform, buffer);
    double d = ModelDiskAccesses(hs, data_driven, buffer);
    right.AddRow({Table::Int(buffer),
                  Table::Num(u > 0 ? uniform_at_10 / u : 0.0, 3),
                  Table::Num(d > 0 ? dd_at_10 / d : 0.0, 3)});
  }
  right.Print();

  double u500 = ModelDiskAccesses(hs, uniform, 500);
  double d500 = ModelDiskAccesses(hs, data_driven, 500);
  std::printf(
      "\nSpeedup from B=10 to B=500: uniform %.2fx, data-driven %.2fx "
      "(paper: 3.91x vs 2.86x; expect uniform > data-driven).\n",
      u500 > 0 ? uniform_at_10 / u500 : 0.0,
      d500 > 0 ? dd_at_10 / d500 : 0.0);
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
