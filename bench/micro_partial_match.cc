// micro_partial_match — partial-match (open-axis) queries vs. full-extent
// region queries, serial and batched, with the extended analytic model
// alongside.
//
// A partial-match query fixes one axis (a slab of width qx) and leaves the
// other open (the wire/generator encoding is [-inf, +inf]); the extended
// Eq. 5-6 model scores an open axis with a per-axis factor of 1 in the
// node-access probabilities. Rows:
//
//   * full_rect_serial     — qx x qx region queries, the closed-axis
//                            baseline (and model sanity anchor),
//   * partial_x_serial     — x fixed, y open: a vertical slab,
//   * partial_y_serial     — y fixed, x open: a horizontal slab,
//   * partial_x_batched<N> — the same slab class through the batched
//                            executor (within-batch page collapse).
//
// Every row reports measured queries/sec (the bench-gate throughput key),
// nodes and disk reads per query, and the model's prediction for both;
// the serial rows RTB_CHECK the model within a generous guard band so a
// model regression fails the bench rather than silently drifting.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "rtree/batch.h"

namespace rtb::bench {
namespace {

using geom::Rect;
using model::QueryClass;

struct Measurement {
  double queries_per_sec = 0.0;
  double nodes_per_query = 0.0;
  double disk_reads_per_query = 0.0;
  uint64_t result_count = 0;  // Checksum: total ids returned.
};

// Runs `queries` queries from `qc` (after `warmup` unmeasured ones)
// against a fresh LRU pool of `buffer_pages` frames. `batch_size <= 1` is
// the serial RTree::Search loop; otherwise the BatchExecutor runs chunks
// of `batch_size`.
Measurement RunMode(const Workload& w, const QueryClass& qc,
                    uint64_t buffer_pages, uint64_t seed, uint64_t warmup,
                    uint64_t queries, uint64_t batch_size) {
  auto pool = storage::BufferPool::MakeLru(w.store.get(), buffer_pages);
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(w.fanout),
                                 w.tree.root, w.tree.height);
  RTB_CHECK(tree.ok());
  auto gen = sim::MakeGenerator(qc, &w.centers);
  RTB_CHECK(gen.ok());

  Rng rng(seed);
  Measurement m;
  rtree::QueryStats serial_stats;
  rtree::BatchStats batch_stats;
  rtree::BatchExecutor executor(&*tree);
  std::vector<Rect> batch;
  std::vector<std::vector<rtree::ObjectId>> results;
  std::vector<rtree::ObjectId> sink;

  auto run_phase = [&](uint64_t n, bool measure) {
    if (batch_size <= 1) {
      for (uint64_t i = 0; i < n; ++i) {
        sink.clear();
        RTB_CHECK(tree->Search((*gen)->Next(rng), &sink,
                               measure ? &serial_stats : nullptr)
                      .ok());
        if (measure) m.result_count += sink.size();
      }
      return;
    }
    uint64_t done = 0;
    while (done < n) {
      const uint64_t chunk = std::min(batch_size, n - done);
      batch.clear();
      for (uint64_t i = 0; i < chunk; ++i) batch.push_back((*gen)->Next(rng));
      RTB_CHECK(executor.Run(batch, &results,
                             measure ? &batch_stats : nullptr)
                    .ok());
      if (measure) {
        for (const auto& r : results) m.result_count += r.size();
      }
      done += chunk;
    }
  };

  run_phase(warmup, /*measure=*/false);
  pool->ResetStats();
  const auto start = std::chrono::steady_clock::now();
  run_phase(queries, /*measure=*/true);
  const auto end = std::chrono::steady_clock::now();

  const double seconds = std::chrono::duration<double>(end - start).count();
  const uint64_t node_accesses = batch_size <= 1
                                     ? serial_stats.nodes_accessed
                                     : batch_stats.node_accesses;
  const storage::BufferStats buffer = pool->AggregateStats();
  m.queries_per_sec =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  m.nodes_per_query = queries > 0 ? static_cast<double>(node_accesses) /
                                        static_cast<double>(queries)
                                  : 0.0;
  m.disk_reads_per_query =
      queries > 0 ? static_cast<double>(buffer.misses) /
                        static_cast<double>(queries)
                  : 0.0;
  return m;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "60000"},
               {"fanout", "50"},
               {"queries", "20000"},
               {"warmup", "2000"},
               {"qx", "0.01"},
               {"buffer", "128"},
               {"batch", "64"},
               {"model_tolerance", "0.35"},
               {"json", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t queries = flags.GetInt("queries");
  const uint64_t warmup = flags.GetInt("warmup");
  const uint64_t buffer = flags.GetInt("buffer");
  const uint64_t batch = std::max<uint64_t>(2, flags.GetInt("batch"));
  const double qx = flags.GetDouble("qx");
  const double tolerance = flags.GetDouble("model_tolerance");

  Banner("micro: partial-match queries",
         "open-axis slabs vs. full-extent regions, measured vs. the "
         "extended Eq. 5-6 model; " +
             Table::Int(flags.GetInt("points")) + " uniform points, fanout " +
             Table::Int(flags.GetInt("fanout")) + ", qx " + Table::Num(qx, 3),
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  Workload w = BuildWorkload(rects,
                             static_cast<uint32_t>(flags.GetInt("fanout")),
                             rtree::LoadAlgorithm::kHilbertSort);

  BenchReport report("micro_partial_match");
  report.meta().PutInt("seed", seed);
  report.meta().PutInt("points", flags.GetInt("points"));
  report.meta().PutInt("fanout", flags.GetInt("fanout"));
  report.meta().PutInt("tree_pages", w.summary->NumNodes());
  report.meta().PutInt("queries", queries);
  report.meta().PutInt("warmup", warmup);
  report.meta().PutNum("qx", qx);
  report.meta().PutInt("buffer_pages", buffer);
  report.meta().PutInt("batch", batch);

  Table table({"config", "queries/s", "nodes/query", "model nodes",
               "reads/query", "model reads"});
  const uint64_t query_seed = seed + 17;

  struct Row {
    std::string name;
    QueryClass qc;
    uint64_t batch_size;
    bool check_model;  // Serial rows guard the model's accuracy.
  };
  const Row rows[] = {
      {"full_rect_serial", QueryClass::UniformRegion(qx, qx), 1, true},
      {"partial_x_serial", QueryClass::PartialMatchX(qx), 1, true},
      {"partial_y_serial", QueryClass::PartialMatchY(qx), 1, true},
      {"partial_x_batched" + Table::Int(batch), QueryClass::PartialMatchX(qx),
       batch, false},
  };
  for (const Row& r : rows) {
    const Measurement m =
        RunMode(w, r.qc, buffer, query_seed, warmup, queries, r.batch_size);

    auto probs = model::AccessProbabilities(*w.summary, r.qc, &w.centers);
    RTB_CHECK(probs.ok());
    const double model_nodes = model::ExpectedNodeAccesses(*probs);
    const double model_reads = ModelDiskAccesses(w, r.qc, buffer);

    JsonDict& row = report.AddConfig(r.name);
    row.PutInt("batch_size", r.batch_size);
    row.PutNum("queries_per_sec", m.queries_per_sec);
    row.PutNum("nodes_per_query", m.nodes_per_query);
    row.PutNum("model_nodes_per_query", model_nodes);
    row.PutNum("disk_reads_per_query", m.disk_reads_per_query);
    row.PutNum("model_disk_reads_per_query", model_reads);
    row.PutInt("result_count", m.result_count);

    table.AddRow({r.name, Table::Num(m.queries_per_sec, 0),
                  Table::Num(m.nodes_per_query, 3),
                  Table::Num(model_nodes, 3),
                  Table::Num(m.disk_reads_per_query, 3),
                  Table::Num(model_reads, 3)});

    if (r.check_model) {
      // A broken open-axis model shows up as a factor-level error, far
      // outside this band; the band itself absorbs MBR-independence noise.
      RTB_CHECK(m.nodes_per_query > 0.0);
      RTB_CHECK(std::abs(m.nodes_per_query - model_nodes) /
                    m.nodes_per_query <=
                tolerance);
      RTB_CHECK(m.disk_reads_per_query > 0.0);
      RTB_CHECK(std::abs(m.disk_reads_per_query - model_reads) /
                    m.disk_reads_per_query <=
                tolerance);
    }
  }

  table.Print();
  if (!report.WriteFile(flags.GetString("json"))) return 1;
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
