// Microbenchmarks (google-benchmark) for the library's hot paths: geometry
// kernels, Hilbert encoding, range counting, buffer pool access, R-tree
// search, the LRU simulator, and model evaluation.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/rtb.h"

namespace rtb {
namespace {

using geom::Point;
using geom::Rect;

void BM_RectIntersects(benchmark::State& state) {
  Rng rng(1);
  std::vector<Rect> rects;
  for (int i = 0; i < 1024; ++i) {
    double x = rng.NextDouble() * 0.9, y = rng.NextDouble() * 0.9;
    rects.push_back(Rect(x, y, x + 0.05, y + 0.05));
  }
  Rect query(0.4, 0.4, 0.6, 0.6);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rects[i++ & 1023].Intersects(query));
  }
}
BENCHMARK(BM_RectIntersects);

void BM_HilbertEncode(benchmark::State& state) {
  geom::HilbertCurve2D curve(static_cast<int>(state.range(0)));
  Rng rng(2);
  std::vector<Point> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.PointToIndex(points[i++ & 1023]));
  }
}
BENCHMARK(BM_HilbertEncode)->Arg(8)->Arg(16)->Arg(24);

void BM_PointGridCount(benchmark::State& state) {
  Rng rng(3);
  std::vector<Point> points;
  for (int64_t i = 0; i < state.range(0); ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  geom::PointGrid grid(points);
  size_t i = 0;
  std::vector<Rect> queries;
  for (int q = 0; q < 256; ++q) {
    double x = rng.NextDouble() * 0.8, y = rng.NextDouble() * 0.8;
    queries.push_back(Rect(x, y, x + 0.1, y + 0.1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.CountInRect(queries[i++ & 255]));
  }
}
BENCHMARK(BM_PointGridCount)->Arg(10000)->Arg(100000);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  storage::MemPageStore store(4096);
  for (int i = 0; i < 64; ++i) (void)*store.Allocate();
  auto pool = storage::BufferPool::MakeLru(&store, 64);
  for (storage::PageId p = 0; p < 64; ++p) (void)*pool->Fetch(p);
  storage::PageId p = 0;
  for (auto _ : state) {
    auto guard = pool->Fetch(p);
    benchmark::DoNotOptimize(guard->data());
    p = (p + 1) & 63;
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchMiss(benchmark::State& state) {
  storage::MemPageStore store(4096);
  for (int i = 0; i < 4096; ++i) (void)*store.Allocate();
  auto pool = storage::BufferPool::MakeLru(&store, 16);
  storage::PageId p = 0;
  for (auto _ : state) {
    auto guard = pool->Fetch(p);
    benchmark::DoNotOptimize(guard->data());
    p = (p + 17) & 4095;  // Stride defeats the 16-page pool.
  }
}
BENCHMARK(BM_BufferPoolFetchMiss);

struct SearchFixtureState {
  storage::MemPageStore store;
  rtree::BuiltTree built;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<rtree::RTree> tree;
  std::unique_ptr<rtree::TreeSummary> summary;

  explicit SearchFixtureState(size_t n) {
    Rng rng(4);
    auto rects = data::GenerateSyntheticRegion(n, &rng);
    auto b = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(100),
                               rects, rtree::LoadAlgorithm::kHilbertSort);
    built = *b;
    pool = storage::BufferPool::MakeLru(&store, 4096);
    auto t = rtree::RTree::Open(pool.get(), rtree::RTreeConfig::WithFanout(100),
                                built.root, built.height);
    tree = std::make_unique<rtree::RTree>(std::move(*t));
    auto s = rtree::TreeSummary::Extract(&store, built.root);
    summary = std::make_unique<rtree::TreeSummary>(std::move(*s));
  }
};

void BM_RTreeSearchPoint(benchmark::State& state) {
  static SearchFixtureState* fx =
      new SearchFixtureState(100000);  // Shared; never freed (benchmark).
  Rng rng(5);
  std::vector<rtree::ObjectId> out;
  for (auto _ : state) {
    out.clear();
    Point p{rng.NextDouble(), rng.NextDouble()};
    benchmark::DoNotOptimize(fx->tree->SearchPoint(p, &out));
  }
}
BENCHMARK(BM_RTreeSearchPoint);

void BM_RTreeSearchRegion1Pct(benchmark::State& state) {
  static SearchFixtureState* fx = new SearchFixtureState(100000);
  Rng rng(6);
  sim::UniformRegionGenerator gen(0.1, 0.1);
  std::vector<rtree::ObjectId> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(fx->tree->Search(gen.Next(rng), &out));
  }
}
BENCHMARK(BM_RTreeSearchRegion1Pct);

void BM_SimulatorPointQuery(benchmark::State& state) {
  static SearchFixtureState* fx = new SearchFixtureState(100000);
  sim::SimOptions options;
  options.buffer_pages = 100;
  sim::MbrListSimulator sim(fx->summary.get(), options);
  Rng rng(7);
  sim::UniformPointGenerator gen;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.ExecuteQuery(gen.Next(rng), nullptr));
  }
}
BENCHMARK(BM_SimulatorPointQuery);

void BM_ModelUniformProbs(benchmark::State& state) {
  static SearchFixtureState* fx = new SearchFixtureState(100000);
  for (auto _ : state) {
    auto probs = model::UniformAccessProbabilities(*fx->summary, 0.01, 0.01);
    benchmark::DoNotOptimize(probs);
  }
}
BENCHMARK(BM_ModelUniformProbs);

void BM_ModelBufferSolve(benchmark::State& state) {
  static SearchFixtureState* fx = new SearchFixtureState(100000);
  auto probs = *model::UniformAccessProbabilities(*fx->summary, 0.0, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ExpectedDiskAccesses(probs, 200));
  }
}
BENCHMARK(BM_ModelBufferSolve);

void BM_QuadraticSplit(benchmark::State& state) {
  Rng rng(8);
  std::vector<rtree::Entry> entries;
  for (uint64_t i = 0; i <= 100; ++i) {
    double x = rng.NextDouble() * 0.95, y = rng.NextDouble() * 0.95;
    entries.push_back(rtree::Entry{Rect(x, y, x + 0.02, y + 0.02), i});
  }
  rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtree::QuadraticSplit(entries, config));
  }
}
BENCHMARK(BM_QuadraticSplit);

void BM_KnnSearch(benchmark::State& state) {
  static SearchFixtureState* fx = new SearchFixtureState(100000);
  Rng rng(10);
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Point p{rng.NextDouble(), rng.NextDouble()};
    benchmark::DoNotOptimize(rtree::SearchKnn(*fx->tree, p, k));
  }
}
BENCHMARK(BM_KnnSearch)->Arg(1)->Arg(10)->Arg(100);

void BM_GuttmanInsert(benchmark::State& state) {
  storage::MemPageStore store;
  auto pool = storage::BufferPool::MakeLru(&store, 256);
  auto tree = std::move(*rtree::RTree::Create(
      pool.get(), rtree::RTreeConfig::WithFanout(50)));
  Rng rng(11);
  uint64_t id = 0;
  for (auto _ : state) {
    double x = rng.NextDouble() * 0.99, y = rng.NextDouble() * 0.99;
    benchmark::DoNotOptimize(
        tree.Insert(Rect(x, y, x + 0.005, y + 0.005), id++));
  }
}
BENCHMARK(BM_GuttmanInsert);

void BM_RStarInsert(benchmark::State& state) {
  storage::MemPageStore store;
  auto pool = storage::BufferPool::MakeLru(&store, 256);
  auto tree = std::move(
      *rtree::RTree::Create(pool.get(), rtree::RTreeConfig::RStar(50)));
  Rng rng(12);
  uint64_t id = 0;
  for (auto _ : state) {
    double x = rng.NextDouble() * 0.99, y = rng.NextDouble() * 0.99;
    benchmark::DoNotOptimize(
        tree.Insert(Rect(x, y, x + 0.005, y + 0.005), id++));
  }
}
BENCHMARK(BM_RStarInsert);

void BM_PackStrNd3(benchmark::State& state) {
  Rng rng(13);
  std::vector<geom::BoxNd<3>> boxes;
  for (int64_t i = 0; i < state.range(0); ++i) {
    geom::PointNd<3> p{rng.NextDouble(), rng.NextDouble(),
                       rng.NextDouble()};
    boxes.push_back(geom::BoxNd<3>::FromPoint(p));
  }
  for (auto _ : state) {
    auto copy = boxes;
    benchmark::DoNotOptimize(model::PackStrNd<3>(std::move(copy), 25));
  }
}
BENCHMARK(BM_PackStrNd3)->Arg(40000)->Unit(benchmark::kMillisecond);

void BM_BulkLoadHilbert100k(benchmark::State& state) {
  Rng rng(9);
  auto rects = data::GenerateSyntheticRegion(100000, &rng);
  for (auto _ : state) {
    storage::MemPageStore store;
    auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(100),
                                   rects, rtree::LoadAlgorithm::kHilbertSort);
    benchmark::DoNotOptimize(built);
  }
}
BENCHMARK(BM_BulkLoadHilbert100k)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rtb

BENCHMARK_MAIN();
