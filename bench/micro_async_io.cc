// micro_async_io — double-buffered (async read-ahead) vs. synchronous
// batched fetches, on a file-backed tree behind a latency-injecting store.
//
// The machine this runs on serves FilePageStore reads from page cache in
// microseconds, which would hide exactly the cost the async engine exists
// to overlap. SlowPageStore restores the paper's disk model: every I/O
// *operation* (one Read call, one ReadBatch call) pays a fixed seek
// latency, independent of its size. The sync executor pays that latency on
// the query thread between window scans; the async executor submits window
// N+1's miss set to the read engine before scanning window N, so the seek
// sleeps concurrently with the scan.
//
// The identical query stream runs twice through the runtime seam
// (SetAsyncIo) against cold pools, and the rows report:
//
//   * queries/s       — the gated metric; async should win.
//   * overlap_ratio   — fraction of Wait() calls that found the read
//                       already complete (1.0 = perfectly hidden I/O).
//   * jobs, pages, max_inflight — submission shape of the engine.
//
// Result-id checksums are asserted equal across the rows: the two paths
// return the same answers and differ only in when reads are issued (and,
// marginally, in eviction timing — the async executor pins two smaller
// windows instead of one larger one).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "rtree/batch.h"
#include "storage/async_io.h"

namespace rtb::bench {
namespace {

using geom::Rect;

// Delegating PageStore that charges a fixed latency per I/O operation —
// the paper's seek-dominated disk, where a vectored run of consecutive
// pages still costs one positioning delay. Deliberately does not expose
// direct_read_source(): the io_uring backend would bypass the wrapper and
// read at page-cache speed, voiding the model.
class SlowPageStore final : public storage::PageStore {
 public:
  SlowPageStore(storage::PageStore* base, uint64_t latency_us)
      : base_(base), latency_(std::chrono::microseconds(latency_us)) {}

  size_t page_size() const override { return base_->page_size(); }
  storage::PageId num_pages() const override { return base_->num_pages(); }
  Result<storage::PageId> Allocate() override { return base_->Allocate(); }

  Status Read(storage::PageId id, uint8_t* out) override {
    std::this_thread::sleep_for(latency_);
    return base_->Read(id, out);
  }
  Status ReadBatch(const storage::PageId* ids, size_t n,
                   uint8_t* out) override {
    std::this_thread::sleep_for(latency_);
    return base_->ReadBatch(ids, n, out);
  }
  bool CoalescesBatchReads() const override {
    return base_->CoalescesBatchReads();
  }
  Status Write(storage::PageId id, const uint8_t* data) override {
    return base_->Write(id, data);
  }
  Status Close() override { return base_->Close(); }
  storage::IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  storage::PageStore* base_;
  std::chrono::microseconds latency_;
};

struct Measurement {
  double queries_per_sec = 0.0;
  double overlap_ratio = 0.0;
  uint64_t reads = 0;
  uint64_t jobs = 0;
  uint64_t pages = 0;
  uint64_t max_inflight = 0;
  uint64_t result_count = 0;  // Checksum: total ids returned.
};

// Runs the batched workload against a fresh cold pool over `store` with the
// async seam set to `use_async`. Store counters reset after warm-up; the
// async-engine counters are a delta across the measured phase.
Measurement RunVariant(storage::PageStore* store,
                       const rtree::BuiltTree& built, uint32_t fanout,
                       bool use_async, uint64_t buffer_pages, uint64_t seed,
                       uint64_t warmup, uint64_t queries,
                       uint64_t batch_size, double region_side) {
  storage::SetAsyncIo(use_async);
  auto pool = storage::BufferPool::MakeLru(store, buffer_pages);
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(fanout),
                                 built.root, built.height);
  RTB_CHECK(tree.ok());

  sim::UniformRegionGenerator gen(region_side, region_side);
  Rng rng(seed);
  Measurement m;
  rtree::BatchExecutor executor(&*tree);
  std::vector<Rect> batch;
  std::vector<std::vector<rtree::ObjectId>> results;

  auto run_phase = [&](uint64_t n, bool measure) {
    uint64_t done = 0;
    while (done < n) {
      const uint64_t chunk = std::min(batch_size, n - done);
      batch.clear();
      for (uint64_t i = 0; i < chunk; ++i) batch.push_back(gen.Next(rng));
      RTB_CHECK(executor.Run(batch, &results, nullptr).ok());
      if (measure) {
        for (const auto& r : results) m.result_count += r.size();
      }
      done += chunk;
    }
  };

  run_phase(warmup, /*measure=*/false);
  store->ResetStats();
  const storage::AsyncIoStats before =
      storage::AsyncReadEngine::Instance().stats();
  const auto start = std::chrono::steady_clock::now();
  run_phase(queries, /*measure=*/true);
  const auto end = std::chrono::steady_clock::now();
  const storage::AsyncIoStats io =
      storage::AsyncReadEngine::Instance().stats().Delta(before);

  const double seconds = std::chrono::duration<double>(end - start).count();
  m.queries_per_sec =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  m.overlap_ratio = io.OverlapRatio();
  m.reads = store->stats().reads;
  m.jobs = io.jobs;
  m.pages = io.pages;
  m.max_inflight = io.max_inflight;
  storage::SetAsyncIo(false);
  return m;
}

void EmitRow(JsonDict& row, const Measurement& m, const Measurement& sync,
             bool use_async) {
  row.PutStr("io_mode", use_async ? "async" : "sync");
  row.PutNum("queries_per_sec", m.queries_per_sec);
  row.PutNum("speedup_vs_sync", sync.queries_per_sec > 0.0
                                    ? m.queries_per_sec / sync.queries_per_sec
                                    : 0.0);
  row.PutNum("overlap_ratio", m.overlap_ratio);
  row.PutInt("reads", m.reads);
  row.PutInt("submit_batches", m.jobs);
  row.PutInt("submit_pages", m.pages);
  row.PutInt("max_inflight", m.max_inflight);
  row.PutInt("result_count", m.result_count);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"points", "40000"},
               {"fanout", "100"},
               {"queries", "12288"},
               {"warmup", "2048"},
               {"region_side", "0.08"},
               {"batch", "4096"},
               {"buffer_pages", "64"},
               {"latency_us", "10"},
               {"path", "/tmp/rtb_micro_async_io.store"},
               {"json", ""}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t queries = flags.GetInt("queries");
  const uint64_t warmup = flags.GetInt("warmup");
  const uint64_t batch = std::max<uint64_t>(2, flags.GetInt("batch"));
  const uint64_t buffer_pages = flags.GetInt("buffer_pages");
  const uint64_t latency_us = flags.GetInt("latency_us");
  const double region_side = flags.GetDouble("region_side");
  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  const std::string path = flags.GetString("path");

  Banner("micro: async read-ahead",
         "double-buffered vs. synchronous batch fetches behind a " +
             Table::Int(latency_us) + "us-per-op store; " +
             Table::Int(flags.GetInt("points")) + " uniform points, " +
             Table::Int(buffer_pages) + "-page pool, batch " +
             Table::Int(batch),
         seed);

  Rng rng(seed);
  auto rects = data::GenerateUniformPoints(flags.GetInt("points"), &rng);
  auto store = storage::FilePageStore::Create(path);
  RTB_CHECK(store.ok());
  auto built = rtree::BuildRTree(store->get(),
                                 rtree::RTreeConfig::WithFanout(fanout),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  RTB_CHECK(built.ok());
  SlowPageStore slow(store->get(), latency_us);

  BenchReport report("micro_async_io");
  report.meta().PutInt("seed", seed);
  report.meta().PutInt("points", flags.GetInt("points"));
  report.meta().PutInt("fanout", fanout);
  report.meta().PutInt("tree_height", built->height);
  report.meta().PutInt("queries", queries);
  report.meta().PutInt("warmup", warmup);
  report.meta().PutNum("region_side", region_side);
  report.meta().PutInt("buffer_pages", buffer_pages);
  report.meta().PutInt("batch", batch);
  report.meta().PutInt("latency_us", latency_us);
  report.meta().PutBool("async_available", storage::AsyncIoAvailable());

  Table table({"config", "queries/s", "speedup", "overlap", "submits",
               "max_inflight"});
  auto add = [&](const std::string& name, const Measurement& m,
                 const Measurement& sync, bool use_async) {
    EmitRow(report.AddConfig(name), m, sync, use_async);
    table.AddRow({name, Table::Num(m.queries_per_sec, 0),
                  Table::Num(sync.queries_per_sec > 0.0
                                 ? m.queries_per_sec / sync.queries_per_sec
                                 : 0.0,
                             2),
                  Table::Num(m.overlap_ratio, 2), Table::Int(m.jobs),
                  Table::Int(m.max_inflight)});
  };

  const uint64_t query_seed = seed + 17;
  const Measurement sync =
      RunVariant(&slow, *built, fanout, /*use_async=*/false, buffer_pages,
                 query_seed, warmup, queries, batch, region_side);
  add("fetch_sync", sync, sync, false);

  if (storage::AsyncIoAvailable()) {
    const Measurement async =
        RunVariant(&slow, *built, fanout, /*use_async=*/true, buffer_pages,
                   query_seed, warmup, queries, batch, region_side);
    // Results must be identical; read counts may differ slightly (the async
    // executor pins two smaller windows, shifting eviction timing), which
    // the reported `reads` column makes visible.
    RTB_CHECK(async.result_count == sync.result_count);
    add("fetch_async", async, sync, true);
  }

  table.Print();
  store->reset();  // Close before unlinking.
  std::remove(path.c_str());
  if (!report.WriteFile(flags.GetString("json"))) return 1;
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
