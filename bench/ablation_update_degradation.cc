// Ablation (the paper's stated application, Section 1) — using the buffer
// model to evaluate update policies over time.
//
// "The model can be used to evaluate the quality of any R-tree update
// operation, such as various node splitting and tree restructuring
// policies, as measured by query performance on the resulting tree."
//
// This bench does exactly that: it bulk-loads a packed tree, then applies
// rounds of 50/50 insert/delete churn maintained by (a) Guttman quadratic
// and (b) the R* policy, and after each round reports the structural decay
// (node count, total MBR area) and the model-predicted disk accesses per
// point query for a fixed buffer.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"

namespace rtb::bench {
namespace {

struct ChurnState {
  storage::MemPageStore store;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<rtree::RTree> tree;
  std::vector<geom::Rect> live;        // Rect of each live object.
  std::vector<rtree::ObjectId> ids;    // Parallel ids.
  rtree::ObjectId next_id = 0;
};

void InitChurn(ChurnState* state, const rtree::RTreeConfig& config,
               const std::vector<geom::Rect>& rects) {
  auto built = rtree::BuildRTree(&state->store, config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  RTB_CHECK(built.ok());
  state->pool = storage::BufferPool::MakeLru(&state->store, 512);
  auto tree = rtree::RTree::Open(state->pool.get(), config, built->root,
                                 built->height);
  RTB_CHECK(tree.ok());
  state->tree = std::make_unique<rtree::RTree>(std::move(*tree));
  state->live = rects;
  state->ids.resize(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    state->ids[i] = static_cast<rtree::ObjectId>(i);
  }
  state->next_id = rects.size();
}

// One churn round: `ops` deletes of random live objects, each followed by
// an insert of a fresh rectangle (constant cardinality).
void ChurnRound(ChurnState* state, size_t ops, Rng* rng,
                const data::ClusterParams& params) {
  auto fresh = data::GenerateGaussianClusters(params, rng);
  size_t fresh_i = 0;
  for (size_t op = 0; op < ops; ++op) {
    size_t victim = rng->UniformInt(state->live.size());
    auto deleted =
        state->tree->Delete(state->live[victim], state->ids[victim]);
    RTB_CHECK(deleted.ok() && *deleted);
    geom::Rect replacement = fresh[fresh_i++ % fresh.size()];
    RTB_CHECK(state->tree->Insert(replacement, state->next_id).ok());
    state->live[victim] = replacement;
    state->ids[victim] = state->next_id++;
  }
  RTB_CHECK(state->pool->FlushAll().ok());
}

struct Snapshot {
  size_t nodes = 0;
  double area = 0.0;
  double disk_accesses = 0.0;
};

Snapshot Measure(ChurnState* state, uint64_t buffer) {
  auto summary =
      rtree::TreeSummary::Extract(&state->store, state->tree->root());
  RTB_CHECK(summary.ok());
  auto probs = model::UniformAccessProbabilities(*summary, 0.0, 0.0);
  RTB_CHECK(probs.ok());
  return Snapshot{summary->NumNodes(), summary->TotalArea(),
                  model::ExpectedDiskAccesses(*probs, buffer)};
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "1998"},
               {"rects", "20000"},
               {"fanout", "32"},
               {"rounds", "6"},
               {"ops_per_round", "4000"},
               {"buffer", "100"}});
  const uint64_t seed = flags.GetInt("seed");
  const uint64_t buffer = flags.GetInt("buffer");
  const size_t ops = flags.GetInt("ops_per_round");
  const int rounds = static_cast<int>(flags.GetInt("rounds"));

  Banner("Ablation: update-policy degradation under churn",
         Table::Int(flags.GetInt("rects")) +
             " clustered rects, fanout " + Table::Int(flags.GetInt("fanout")) +
             "; rounds of " + Table::Int(ops) +
             " delete+insert pairs; model-predicted point-query disk "
             "accesses at B=" +
             Table::Int(buffer),
         seed);

  data::ClusterParams params;
  params.num_rects = flags.GetInt("rects");
  params.max_side = 0.004;
  Rng data_rng(seed);
  auto rects = data::GenerateGaussianClusters(params, &data_rng);

  const uint32_t fanout = static_cast<uint32_t>(flags.GetInt("fanout"));
  ChurnState guttman, rstar;
  InitChurn(&guttman, rtree::RTreeConfig::WithFanout(fanout), rects);
  InitChurn(&rstar, rtree::RTreeConfig::RStar(fanout), rects);

  data::ClusterParams churn_params = params;
  churn_params.num_rects = ops;

  Table table({"churned ops", "Guttman nodes", "Guttman area",
               "Guttman ED", "R* nodes", "R* area", "R* ED"});
  Rng g_rng(seed + 1), r_rng(seed + 1);
  for (int round = 0; round <= rounds; ++round) {
    Snapshot g = Measure(&guttman, buffer);
    Snapshot r = Measure(&rstar, buffer);
    table.AddRow({Table::Int(static_cast<uint64_t>(round) * ops),
                  Table::Int(g.nodes), Table::Num(g.area, 3),
                  Table::Num(g.disk_accesses, 4), Table::Int(r.nodes),
                  Table::Num(r.area, 3), Table::Num(r.disk_accesses, 4)});
    if (round < rounds) {
      ChurnRound(&guttman, ops, &g_rng, churn_params);
      ChurnRound(&rstar, ops, &r_rng, churn_params);
    }
  }
  table.Print();
  std::printf(
      "\nBoth trees start packed (HS). Churn degrades them toward their\n"
      "maintainer's steady-state quality; the ED column turns that decay\n"
      "into the paper's metric — disk accesses per query.\n");
  return 0;
}

}  // namespace
}  // namespace rtb::bench

int main(int argc, char** argv) { return rtb::bench::Run(argc, argv); }
