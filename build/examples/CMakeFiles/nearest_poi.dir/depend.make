# Empty dependencies file for nearest_poi.
# This may be replaced when dependencies are built.
