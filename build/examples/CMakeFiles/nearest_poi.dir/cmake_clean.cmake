file(REMOVE_RECURSE
  "CMakeFiles/nearest_poi.dir/nearest_poi.cpp.o"
  "CMakeFiles/nearest_poi.dir/nearest_poi.cpp.o.d"
  "nearest_poi"
  "nearest_poi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearest_poi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
