file(REMOVE_RECURSE
  "CMakeFiles/cfd_hotspots.dir/cfd_hotspots.cpp.o"
  "CMakeFiles/cfd_hotspots.dir/cfd_hotspots.cpp.o.d"
  "cfd_hotspots"
  "cfd_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
