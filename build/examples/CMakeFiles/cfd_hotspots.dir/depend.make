# Empty dependencies file for cfd_hotspots.
# This may be replaced when dependencies are built.
