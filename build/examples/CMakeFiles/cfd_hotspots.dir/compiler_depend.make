# Empty compiler generated dependencies file for cfd_hotspots.
# This may be replaced when dependencies are built.
