file(REMOVE_RECURSE
  "CMakeFiles/buffer_planning.dir/buffer_planning.cpp.o"
  "CMakeFiles/buffer_planning.dir/buffer_planning.cpp.o.d"
  "buffer_planning"
  "buffer_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
