file(REMOVE_RECURSE
  "CMakeFiles/gis_road_index.dir/gis_road_index.cpp.o"
  "CMakeFiles/gis_road_index.dir/gis_road_index.cpp.o.d"
  "gis_road_index"
  "gis_road_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_road_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
