# Empty compiler generated dependencies file for gis_road_index.
# This may be replaced when dependencies are built.
