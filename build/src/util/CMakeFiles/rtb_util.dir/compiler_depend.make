# Empty compiler generated dependencies file for rtb_util.
# This may be replaced when dependencies are built.
