file(REMOVE_RECURSE
  "CMakeFiles/rtb_util.dir/batch_stats.cc.o"
  "CMakeFiles/rtb_util.dir/batch_stats.cc.o.d"
  "CMakeFiles/rtb_util.dir/rng.cc.o"
  "CMakeFiles/rtb_util.dir/rng.cc.o.d"
  "CMakeFiles/rtb_util.dir/status.cc.o"
  "CMakeFiles/rtb_util.dir/status.cc.o.d"
  "librtb_util.a"
  "librtb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
