file(REMOVE_RECURSE
  "librtb_util.a"
)
