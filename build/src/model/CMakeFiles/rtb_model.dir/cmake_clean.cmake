file(REMOVE_RECURSE
  "CMakeFiles/rtb_model.dir/access_prob.cc.o"
  "CMakeFiles/rtb_model.dir/access_prob.cc.o.d"
  "CMakeFiles/rtb_model.dir/analytic_tree.cc.o"
  "CMakeFiles/rtb_model.dir/analytic_tree.cc.o.d"
  "CMakeFiles/rtb_model.dir/cost_model.cc.o"
  "CMakeFiles/rtb_model.dir/cost_model.cc.o.d"
  "CMakeFiles/rtb_model.dir/warmup.cc.o"
  "CMakeFiles/rtb_model.dir/warmup.cc.o.d"
  "librtb_model.a"
  "librtb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
