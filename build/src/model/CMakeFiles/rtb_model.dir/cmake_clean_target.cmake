file(REMOVE_RECURSE
  "librtb_model.a"
)
