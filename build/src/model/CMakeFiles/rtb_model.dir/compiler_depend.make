# Empty compiler generated dependencies file for rtb_model.
# This may be replaced when dependencies are built.
