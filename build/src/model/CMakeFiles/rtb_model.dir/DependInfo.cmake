
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/access_prob.cc" "src/model/CMakeFiles/rtb_model.dir/access_prob.cc.o" "gcc" "src/model/CMakeFiles/rtb_model.dir/access_prob.cc.o.d"
  "/root/repo/src/model/analytic_tree.cc" "src/model/CMakeFiles/rtb_model.dir/analytic_tree.cc.o" "gcc" "src/model/CMakeFiles/rtb_model.dir/analytic_tree.cc.o.d"
  "/root/repo/src/model/cost_model.cc" "src/model/CMakeFiles/rtb_model.dir/cost_model.cc.o" "gcc" "src/model/CMakeFiles/rtb_model.dir/cost_model.cc.o.d"
  "/root/repo/src/model/warmup.cc" "src/model/CMakeFiles/rtb_model.dir/warmup.cc.o" "gcc" "src/model/CMakeFiles/rtb_model.dir/warmup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtree/CMakeFiles/rtb_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rtb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
