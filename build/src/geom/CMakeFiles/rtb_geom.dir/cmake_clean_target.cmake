file(REMOVE_RECURSE
  "librtb_geom.a"
)
