# Empty compiler generated dependencies file for rtb_geom.
# This may be replaced when dependencies are built.
