
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/hilbert.cc" "src/geom/CMakeFiles/rtb_geom.dir/hilbert.cc.o" "gcc" "src/geom/CMakeFiles/rtb_geom.dir/hilbert.cc.o.d"
  "/root/repo/src/geom/point_grid.cc" "src/geom/CMakeFiles/rtb_geom.dir/point_grid.cc.o" "gcc" "src/geom/CMakeFiles/rtb_geom.dir/point_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
