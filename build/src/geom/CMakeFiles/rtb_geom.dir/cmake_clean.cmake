file(REMOVE_RECURSE
  "CMakeFiles/rtb_geom.dir/hilbert.cc.o"
  "CMakeFiles/rtb_geom.dir/hilbert.cc.o.d"
  "CMakeFiles/rtb_geom.dir/point_grid.cc.o"
  "CMakeFiles/rtb_geom.dir/point_grid.cc.o.d"
  "librtb_geom.a"
  "librtb_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
