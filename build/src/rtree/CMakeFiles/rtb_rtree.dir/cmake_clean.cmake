file(REMOVE_RECURSE
  "CMakeFiles/rtb_rtree.dir/bulk_load.cc.o"
  "CMakeFiles/rtb_rtree.dir/bulk_load.cc.o.d"
  "CMakeFiles/rtb_rtree.dir/knn.cc.o"
  "CMakeFiles/rtb_rtree.dir/knn.cc.o.d"
  "CMakeFiles/rtb_rtree.dir/node.cc.o"
  "CMakeFiles/rtb_rtree.dir/node.cc.o.d"
  "CMakeFiles/rtb_rtree.dir/rtree.cc.o"
  "CMakeFiles/rtb_rtree.dir/rtree.cc.o.d"
  "CMakeFiles/rtb_rtree.dir/split.cc.o"
  "CMakeFiles/rtb_rtree.dir/split.cc.o.d"
  "CMakeFiles/rtb_rtree.dir/summary.cc.o"
  "CMakeFiles/rtb_rtree.dir/summary.cc.o.d"
  "CMakeFiles/rtb_rtree.dir/validate.cc.o"
  "CMakeFiles/rtb_rtree.dir/validate.cc.o.d"
  "librtb_rtree.a"
  "librtb_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
