# Empty dependencies file for rtb_rtree.
# This may be replaced when dependencies are built.
