file(REMOVE_RECURSE
  "librtb_rtree.a"
)
