# Empty dependencies file for rtb_storage.
# This may be replaced when dependencies are built.
