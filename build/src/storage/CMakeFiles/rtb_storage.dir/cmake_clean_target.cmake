file(REMOVE_RECURSE
  "librtb_storage.a"
)
