file(REMOVE_RECURSE
  "CMakeFiles/rtb_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/rtb_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/rtb_storage.dir/file_page_store.cc.o"
  "CMakeFiles/rtb_storage.dir/file_page_store.cc.o.d"
  "CMakeFiles/rtb_storage.dir/page_store.cc.o"
  "CMakeFiles/rtb_storage.dir/page_store.cc.o.d"
  "CMakeFiles/rtb_storage.dir/replacement.cc.o"
  "CMakeFiles/rtb_storage.dir/replacement.cc.o.d"
  "CMakeFiles/rtb_storage.dir/sharded_buffer_pool.cc.o"
  "CMakeFiles/rtb_storage.dir/sharded_buffer_pool.cc.o.d"
  "librtb_storage.a"
  "librtb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
