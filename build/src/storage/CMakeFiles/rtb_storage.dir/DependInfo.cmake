
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/rtb_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/rtb_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/file_page_store.cc" "src/storage/CMakeFiles/rtb_storage.dir/file_page_store.cc.o" "gcc" "src/storage/CMakeFiles/rtb_storage.dir/file_page_store.cc.o.d"
  "/root/repo/src/storage/page_store.cc" "src/storage/CMakeFiles/rtb_storage.dir/page_store.cc.o" "gcc" "src/storage/CMakeFiles/rtb_storage.dir/page_store.cc.o.d"
  "/root/repo/src/storage/replacement.cc" "src/storage/CMakeFiles/rtb_storage.dir/replacement.cc.o" "gcc" "src/storage/CMakeFiles/rtb_storage.dir/replacement.cc.o.d"
  "/root/repo/src/storage/sharded_buffer_pool.cc" "src/storage/CMakeFiles/rtb_storage.dir/sharded_buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/rtb_storage.dir/sharded_buffer_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
