# Empty dependencies file for rtb_sim.
# This may be replaced when dependencies are built.
