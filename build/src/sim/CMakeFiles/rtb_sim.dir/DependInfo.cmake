
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/lru_sim.cc" "src/sim/CMakeFiles/rtb_sim.dir/lru_sim.cc.o" "gcc" "src/sim/CMakeFiles/rtb_sim.dir/lru_sim.cc.o.d"
  "/root/repo/src/sim/parallel_runner.cc" "src/sim/CMakeFiles/rtb_sim.dir/parallel_runner.cc.o" "gcc" "src/sim/CMakeFiles/rtb_sim.dir/parallel_runner.cc.o.d"
  "/root/repo/src/sim/query_gen.cc" "src/sim/CMakeFiles/rtb_sim.dir/query_gen.cc.o" "gcc" "src/sim/CMakeFiles/rtb_sim.dir/query_gen.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/rtb_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/rtb_sim.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/rtb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/rtb_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rtb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
