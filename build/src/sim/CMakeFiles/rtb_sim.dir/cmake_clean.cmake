file(REMOVE_RECURSE
  "CMakeFiles/rtb_sim.dir/lru_sim.cc.o"
  "CMakeFiles/rtb_sim.dir/lru_sim.cc.o.d"
  "CMakeFiles/rtb_sim.dir/parallel_runner.cc.o"
  "CMakeFiles/rtb_sim.dir/parallel_runner.cc.o.d"
  "CMakeFiles/rtb_sim.dir/query_gen.cc.o"
  "CMakeFiles/rtb_sim.dir/query_gen.cc.o.d"
  "CMakeFiles/rtb_sim.dir/runner.cc.o"
  "CMakeFiles/rtb_sim.dir/runner.cc.o.d"
  "librtb_sim.a"
  "librtb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
