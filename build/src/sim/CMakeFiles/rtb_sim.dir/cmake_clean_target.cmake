file(REMOVE_RECURSE
  "librtb_sim.a"
)
