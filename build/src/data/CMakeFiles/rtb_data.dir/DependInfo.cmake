
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cfd.cc" "src/data/CMakeFiles/rtb_data.dir/cfd.cc.o" "gcc" "src/data/CMakeFiles/rtb_data.dir/cfd.cc.o.d"
  "/root/repo/src/data/clusters.cc" "src/data/CMakeFiles/rtb_data.dir/clusters.cc.o" "gcc" "src/data/CMakeFiles/rtb_data.dir/clusters.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/rtb_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/rtb_data.dir/io.cc.o.d"
  "/root/repo/src/data/polygon.cc" "src/data/CMakeFiles/rtb_data.dir/polygon.cc.o" "gcc" "src/data/CMakeFiles/rtb_data.dir/polygon.cc.o.d"
  "/root/repo/src/data/tiger.cc" "src/data/CMakeFiles/rtb_data.dir/tiger.cc.o" "gcc" "src/data/CMakeFiles/rtb_data.dir/tiger.cc.o.d"
  "/root/repo/src/data/uniform.cc" "src/data/CMakeFiles/rtb_data.dir/uniform.cc.o" "gcc" "src/data/CMakeFiles/rtb_data.dir/uniform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/rtb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
