file(REMOVE_RECURSE
  "librtb_data.a"
)
