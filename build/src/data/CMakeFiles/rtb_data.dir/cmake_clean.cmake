file(REMOVE_RECURSE
  "CMakeFiles/rtb_data.dir/cfd.cc.o"
  "CMakeFiles/rtb_data.dir/cfd.cc.o.d"
  "CMakeFiles/rtb_data.dir/clusters.cc.o"
  "CMakeFiles/rtb_data.dir/clusters.cc.o.d"
  "CMakeFiles/rtb_data.dir/io.cc.o"
  "CMakeFiles/rtb_data.dir/io.cc.o.d"
  "CMakeFiles/rtb_data.dir/polygon.cc.o"
  "CMakeFiles/rtb_data.dir/polygon.cc.o.d"
  "CMakeFiles/rtb_data.dir/tiger.cc.o"
  "CMakeFiles/rtb_data.dir/tiger.cc.o.d"
  "CMakeFiles/rtb_data.dir/uniform.cc.o"
  "CMakeFiles/rtb_data.dir/uniform.cc.o.d"
  "librtb_data.a"
  "librtb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
