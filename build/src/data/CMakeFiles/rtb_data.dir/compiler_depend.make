# Empty compiler generated dependencies file for rtb_data.
# This may be replaced when dependencies are built.
