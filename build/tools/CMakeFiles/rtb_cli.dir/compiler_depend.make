# Empty compiler generated dependencies file for rtb_cli.
# This may be replaced when dependencies are built.
