file(REMOVE_RECURSE
  "CMakeFiles/rtb_cli.dir/rtb_cli.cc.o"
  "CMakeFiles/rtb_cli.dir/rtb_cli.cc.o.d"
  "rtb_cli"
  "rtb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
