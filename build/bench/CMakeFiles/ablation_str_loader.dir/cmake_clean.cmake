file(REMOVE_RECURSE
  "CMakeFiles/ablation_str_loader.dir/ablation_str_loader.cc.o"
  "CMakeFiles/ablation_str_loader.dir/ablation_str_loader.cc.o.d"
  "ablation_str_loader"
  "ablation_str_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_str_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
