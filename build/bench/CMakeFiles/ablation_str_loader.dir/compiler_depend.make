# Empty compiler generated dependencies file for ablation_str_loader.
# This may be replaced when dependencies are built.
