file(REMOVE_RECURSE
  "CMakeFiles/fig5_cfd_dataset.dir/fig5_cfd_dataset.cc.o"
  "CMakeFiles/fig5_cfd_dataset.dir/fig5_cfd_dataset.cc.o.d"
  "fig5_cfd_dataset"
  "fig5_cfd_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cfd_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
