file(REMOVE_RECURSE
  "CMakeFiles/ablation_warmup_transient.dir/ablation_warmup_transient.cc.o"
  "CMakeFiles/ablation_warmup_transient.dir/ablation_warmup_transient.cc.o.d"
  "ablation_warmup_transient"
  "ablation_warmup_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warmup_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
