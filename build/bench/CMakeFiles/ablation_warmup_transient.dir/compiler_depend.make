# Empty compiler generated dependencies file for ablation_warmup_transient.
# This may be replaced when dependencies are built.
