# Empty dependencies file for fig9_data_size.
# This may be replaced when dependencies are built.
