file(REMOVE_RECURSE
  "CMakeFiles/rtb_bench_common.dir/common.cc.o"
  "CMakeFiles/rtb_bench_common.dir/common.cc.o.d"
  "librtb_bench_common.a"
  "librtb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
