# Empty compiler generated dependencies file for rtb_bench_common.
# This may be replaced when dependencies are built.
