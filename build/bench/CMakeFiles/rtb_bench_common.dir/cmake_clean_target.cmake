file(REMOVE_RECURSE
  "librtb_bench_common.a"
)
