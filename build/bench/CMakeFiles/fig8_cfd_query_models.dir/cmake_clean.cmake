file(REMOVE_RECURSE
  "CMakeFiles/fig8_cfd_query_models.dir/fig8_cfd_query_models.cc.o"
  "CMakeFiles/fig8_cfd_query_models.dir/fig8_cfd_query_models.cc.o.d"
  "fig8_cfd_query_models"
  "fig8_cfd_query_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cfd_query_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
