# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_cfd_query_models.
