# Empty compiler generated dependencies file for fig8_cfd_query_models.
# This may be replaced when dependencies are built.
