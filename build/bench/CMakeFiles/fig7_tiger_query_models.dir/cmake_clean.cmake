file(REMOVE_RECURSE
  "CMakeFiles/fig7_tiger_query_models.dir/fig7_tiger_query_models.cc.o"
  "CMakeFiles/fig7_tiger_query_models.dir/fig7_tiger_query_models.cc.o.d"
  "fig7_tiger_query_models"
  "fig7_tiger_query_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tiger_query_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
