# Empty dependencies file for fig7_tiger_query_models.
# This may be replaced when dependencies are built.
