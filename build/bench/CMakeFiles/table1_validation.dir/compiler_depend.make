# Empty compiler generated dependencies file for table1_validation.
# This may be replaced when dependencies are built.
