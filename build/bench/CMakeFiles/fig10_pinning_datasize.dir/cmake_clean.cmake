file(REMOVE_RECURSE
  "CMakeFiles/fig10_pinning_datasize.dir/fig10_pinning_datasize.cc.o"
  "CMakeFiles/fig10_pinning_datasize.dir/fig10_pinning_datasize.cc.o.d"
  "fig10_pinning_datasize"
  "fig10_pinning_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pinning_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
