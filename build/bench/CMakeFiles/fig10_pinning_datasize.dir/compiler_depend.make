# Empty compiler generated dependencies file for fig10_pinning_datasize.
# This may be replaced when dependencies are built.
