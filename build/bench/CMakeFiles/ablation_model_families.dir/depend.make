# Empty dependencies file for ablation_model_families.
# This may be replaced when dependencies are built.
