file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_families.dir/ablation_model_families.cc.o"
  "CMakeFiles/ablation_model_families.dir/ablation_model_families.cc.o.d"
  "ablation_model_families"
  "ablation_model_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
