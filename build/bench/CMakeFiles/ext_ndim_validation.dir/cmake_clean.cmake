file(REMOVE_RECURSE
  "CMakeFiles/ext_ndim_validation.dir/ext_ndim_validation.cc.o"
  "CMakeFiles/ext_ndim_validation.dir/ext_ndim_validation.cc.o.d"
  "ext_ndim_validation"
  "ext_ndim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ndim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
