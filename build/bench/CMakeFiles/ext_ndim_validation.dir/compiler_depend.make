# Empty compiler generated dependencies file for ext_ndim_validation.
# This may be replaced when dependencies are built.
