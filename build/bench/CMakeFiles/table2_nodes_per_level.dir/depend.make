# Empty dependencies file for table2_nodes_per_level.
# This may be replaced when dependencies are built.
