file(REMOVE_RECURSE
  "CMakeFiles/table2_nodes_per_level.dir/table2_nodes_per_level.cc.o"
  "CMakeFiles/table2_nodes_per_level.dir/table2_nodes_per_level.cc.o.d"
  "table2_nodes_per_level"
  "table2_nodes_per_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_nodes_per_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
