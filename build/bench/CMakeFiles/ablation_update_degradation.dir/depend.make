# Empty dependencies file for ablation_update_degradation.
# This may be replaced when dependencies are built.
