file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_degradation.dir/ablation_update_degradation.cc.o"
  "CMakeFiles/ablation_update_degradation.dir/ablation_update_degradation.cc.o.d"
  "ablation_update_degradation"
  "ablation_update_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
