file(REMOVE_RECURSE
  "CMakeFiles/fig6_buffer_sensitivity.dir/fig6_buffer_sensitivity.cc.o"
  "CMakeFiles/fig6_buffer_sensitivity.dir/fig6_buffer_sensitivity.cc.o.d"
  "fig6_buffer_sensitivity"
  "fig6_buffer_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_buffer_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
