# Empty compiler generated dependencies file for fig6_buffer_sensitivity.
# This may be replaced when dependencies are built.
