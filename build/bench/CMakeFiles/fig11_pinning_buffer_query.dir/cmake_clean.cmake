file(REMOVE_RECURSE
  "CMakeFiles/fig11_pinning_buffer_query.dir/fig11_pinning_buffer_query.cc.o"
  "CMakeFiles/fig11_pinning_buffer_query.dir/fig11_pinning_buffer_query.cc.o.d"
  "fig11_pinning_buffer_query"
  "fig11_pinning_buffer_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pinning_buffer_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
