# Empty compiler generated dependencies file for fig11_pinning_buffer_query.
# This may be replaced when dependencies are built.
