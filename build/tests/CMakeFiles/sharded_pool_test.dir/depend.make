# Empty dependencies file for sharded_pool_test.
# This may be replaced when dependencies are built.
