file(REMOVE_RECURSE
  "CMakeFiles/sharded_pool_test.dir/sharded_pool_test.cc.o"
  "CMakeFiles/sharded_pool_test.dir/sharded_pool_test.cc.o.d"
  "sharded_pool_test"
  "sharded_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
