file(REMOVE_RECURSE
  "CMakeFiles/ndim_test.dir/ndim_test.cc.o"
  "CMakeFiles/ndim_test.dir/ndim_test.cc.o.d"
  "ndim_test"
  "ndim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
