# Empty dependencies file for ndim_test.
# This may be replaced when dependencies are built.
