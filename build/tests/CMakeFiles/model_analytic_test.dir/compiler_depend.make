# Empty compiler generated dependencies file for model_analytic_test.
# This may be replaced when dependencies are built.
