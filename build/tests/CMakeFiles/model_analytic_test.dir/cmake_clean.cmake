file(REMOVE_RECURSE
  "CMakeFiles/model_analytic_test.dir/model_analytic_test.cc.o"
  "CMakeFiles/model_analytic_test.dir/model_analytic_test.cc.o.d"
  "model_analytic_test"
  "model_analytic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_analytic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
