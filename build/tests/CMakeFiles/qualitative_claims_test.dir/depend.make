# Empty dependencies file for qualitative_claims_test.
# This may be replaced when dependencies are built.
