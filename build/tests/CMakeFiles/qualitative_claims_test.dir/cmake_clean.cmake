file(REMOVE_RECURSE
  "CMakeFiles/qualitative_claims_test.dir/qualitative_claims_test.cc.o"
  "CMakeFiles/qualitative_claims_test.dir/qualitative_claims_test.cc.o.d"
  "qualitative_claims_test"
  "qualitative_claims_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualitative_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
