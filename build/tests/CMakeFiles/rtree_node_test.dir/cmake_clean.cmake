file(REMOVE_RECURSE
  "CMakeFiles/rtree_node_test.dir/rtree_node_test.cc.o"
  "CMakeFiles/rtree_node_test.dir/rtree_node_test.cc.o.d"
  "rtree_node_test"
  "rtree_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
