file(REMOVE_RECURSE
  "CMakeFiles/rtree_tree_test.dir/rtree_tree_test.cc.o"
  "CMakeFiles/rtree_tree_test.dir/rtree_tree_test.cc.o.d"
  "rtree_tree_test"
  "rtree_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
