# Empty dependencies file for rtree_tree_test.
# This may be replaced when dependencies are built.
