
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_runner_test.cc" "tests/CMakeFiles/parallel_runner_test.dir/parallel_runner_test.cc.o" "gcc" "tests/CMakeFiles/parallel_runner_test.dir/parallel_runner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rtb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rtb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/rtb_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rtb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
