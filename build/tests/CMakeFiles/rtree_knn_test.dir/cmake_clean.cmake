file(REMOVE_RECURSE
  "CMakeFiles/rtree_knn_test.dir/rtree_knn_test.cc.o"
  "CMakeFiles/rtree_knn_test.dir/rtree_knn_test.cc.o.d"
  "rtree_knn_test"
  "rtree_knn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
