# Empty dependencies file for rtree_knn_test.
# This may be replaced when dependencies are built.
