# Empty compiler generated dependencies file for rtree_bulk_test.
# This may be replaced when dependencies are built.
