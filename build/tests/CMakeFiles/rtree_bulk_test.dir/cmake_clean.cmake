file(REMOVE_RECURSE
  "CMakeFiles/rtree_bulk_test.dir/rtree_bulk_test.cc.o"
  "CMakeFiles/rtree_bulk_test.dir/rtree_bulk_test.cc.o.d"
  "rtree_bulk_test"
  "rtree_bulk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_bulk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
