// Scientific-data scenario: querying an unstructured CFD grid.
//
//   $ ./build/examples/cfd_hotspots
//
// Researchers probe the flow field around a wing: queries concentrate where
// the mesh is dense (the paper's data-driven access model). This example
// indexes a CFD-style point cloud, contrasts the uniform and data-driven
// assumptions, and uses per-node access probabilities to list the "hot"
// pages — showing why the uniform assumption makes small buffers look far
// more effective than they will be for real (data-driven) usage.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/rtb.h"

int main() {
  using namespace rtb;

  Rng rng(31415);
  data::CfdParams params;
  auto rects = data::GenerateCfdSurrogate(params, &rng);
  auto centers = data::Centers(rects);
  std::printf("CFD grid: %zu points around a two-element airfoil\n",
              rects.size());

  storage::MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(100),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto summary = rtree::TreeSummary::Extract(&store, built->root);
  std::printf("index: %zu pages, height %u\n\n", summary->NumNodes(),
              built->height);

  // Probe queries: 1% x 1% windows centered on mesh nodes (data-driven) vs
  // uniformly placed (the naive assumption).
  auto uniform =
      model::AccessProbabilities(*summary,
                                 model::QuerySpec::UniformRegion(0.01, 0.01));
  auto driven = model::AccessProbabilities(
      *summary, model::QuerySpec::DataDrivenRegion(0.01, 0.01), &centers);

  std::printf("expected pages touched per probe: uniform %.2f, "
              "data-driven %.2f\n",
              model::ExpectedNodeAccesses(*uniform),
              model::ExpectedNodeAccesses(*driven));

  std::printf("\ndisk accesses per probe vs buffer size:\n");
  std::printf("  %8s %10s %12s\n", "buffer", "uniform", "data-driven");
  for (uint64_t buffer : {8, 16, 32, 64, 128, 256}) {
    std::printf("  %8llu %10.4f %12.4f\n",
                static_cast<unsigned long long>(buffer),
                model::ExpectedDiskAccesses(*uniform, buffer),
                model::ExpectedDiskAccesses(*driven, buffer));
  }

  // Hot pages under each assumption: top 5 leaf probabilities.
  auto top5 = [&](const std::vector<double>& probs, const char* label) {
    std::vector<std::pair<double, size_t>> ranked;
    for (size_t j = 0; j < probs.size(); ++j) {
      if (summary->nodes()[j].level == 0) ranked.push_back({probs[j], j});
    }
    std::partial_sort(ranked.begin(), ranked.begin() + 5, ranked.end(),
                      std::greater<>());
    std::printf("\nhottest leaf pages (%s):\n", label);
    for (int i = 0; i < 5; ++i) {
      const auto& node = summary->nodes()[ranked[i].second];
      std::printf("  page %4u  p=%.4f  mbr=(%.3f,%.3f)-(%.3f,%.3f)\n",
                  node.page, ranked[i].first, node.mbr.lo.x, node.mbr.lo.y,
                  node.mbr.hi.x, node.mbr.hi.y);
    }
  };
  top5(*uniform, "uniform assumption — a few huge sparse MBRs");
  top5(*driven, "data-driven — pages at the wing surface");

  std::printf(
      "\nUnder the uniform assumption a handful of large empty-space MBRs\n"
      "absorb most probes, so a tiny cache looks sufficient; real\n"
      "(data-driven) probes spread across the dense wing-surface pages and\n"
      "need a much larger buffer — the paper's Fig. 8 in miniature.\n");
  return 0;
}
