// Capacity-planning scenario: how much buffer does an index need, and
// should any levels be pinned?
//
//   $ ./build/examples/buffer_planning
//
// A DBA has a latency budget: at most 0.5 disk reads per point query
// against a 250k-point index. The paper's buffer model answers, without
// running a single query:
//   * the minimum LRU buffer size that meets the budget, under both the
//     uniform and the data-driven query assumption;
//   * whether pinning the top levels lets a smaller buffer meet it
//     (Section 5.5: only when pinned pages are within ~2x of the buffer).

#include <cstdio>
#include <vector>

#include "core/rtb.h"

namespace {

// Smallest buffer meeting `budget` expected disk accesses (model is
// monotone decreasing in B, so binary search applies).
uint64_t MinBufferForBudget(const std::vector<double>& probs, double budget,
                            uint64_t max_buffer) {
  uint64_t lo = 0, hi = max_buffer;
  if (rtb::model::ExpectedDiskAccesses(probs, hi) > budget) return hi + 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (rtb::model::ExpectedDiskAccesses(probs, mid) <= budget) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace

int main() {
  using namespace rtb;
  const double kBudget = 0.5;  // Disk accesses per query.

  Rng rng(1234);
  auto rects = data::GenerateUniformPoints(250000, &rng);
  storage::MemPageStore store;
  auto built = rtree::BuildRTree(&store, rtree::RTreeConfig::WithFanout(25),
                                 rects, rtree::LoadAlgorithm::kHilbertSort);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto summary = rtree::TreeSummary::Extract(&store, built->root);
  auto centers = data::Centers(rects);

  std::printf("index: %zu pages, %u levels; per-level (root down):",
              summary->NumNodes(), summary->height());
  for (uint16_t l = 0; l < summary->height(); ++l) {
    std::printf(" %u", summary->NodesAtPaperLevel(l));
  }
  std::printf("\nlatency budget: %.2f disk accesses per point query\n\n",
              kBudget);

  const uint64_t total = summary->NumNodes();
  for (auto [name, spec] :
       {std::pair<const char*, model::QuerySpec>{
            "uniform", model::QuerySpec::UniformPoint()},
        {"data-driven", model::QuerySpec::DataDrivenPoint()}}) {
    auto probs = model::AccessProbabilities(*summary, spec, &centers);
    if (!probs.ok()) {
      std::fprintf(stderr, "%s\n", probs.status().ToString().c_str());
      return 1;
    }
    uint64_t need = MinBufferForBudget(*probs, kBudget, total);
    std::printf("%-12s queries: minimum buffer %llu pages (%.1f%% of the "
                "index)\n",
                name, static_cast<unsigned long long>(need),
                100.0 * static_cast<double>(need) /
                    static_cast<double>(total));

    // Does pinning beat plain LRU at that buffer size, or allow less?
    for (uint16_t levels = 1; levels < summary->height(); ++levels) {
      auto pinned = model::ExpectedDiskAccessesPinned(*summary, *probs, need,
                                                      levels);
      if (!pinned.feasible) continue;
      double plain = model::ExpectedDiskAccesses(*probs, need);
      std::printf("    pin %u level(s) (%llu pages): %.4f vs %.4f unpinned\n",
                  levels, static_cast<unsigned long long>(pinned.pinned_pages),
                  pinned.disk_accesses, plain);
    }
  }

  std::printf(
      "\nPlanning takeaways (match paper Sections 5.4-5.5): data-driven\n"
      "workloads need more buffer for the same budget on skew-free data,\n"
      "and pinning only pays when the pinned level is a sizable fraction\n"
      "of the buffer.\n");
  return 0;
}
