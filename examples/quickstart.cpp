// Quickstart: build an R-tree, run queries through a buffer pool, and
// predict disk accesses with the paper's buffer model.
//
//   $ ./build/examples/quickstart
//
// Walks through the library's core loop:
//   1. generate data,
//   2. bulk-load an R-tree into a paged store,
//   3. open it behind an LRU buffer pool and run queries,
//   4. extract the tree summary and compare the analytical prediction
//      against what the buffer pool actually measured.

#include <cstdio>
#include <vector>

#include "core/rtb.h"

int main() {
  using namespace rtb;

  // 1. Data: 20,000 small squares, uniformly placed (paper Section 5.1).
  Rng rng(42);
  std::vector<geom::Rect> rects = data::GenerateSyntheticRegion(20000, &rng);
  std::printf("generated %zu rectangles\n", rects.size());

  // 2. Bulk-load a Hilbert-packed R-tree with 100 entries per node. Pages
  //    land in an in-memory page store that counts every disk access.
  storage::MemPageStore store;
  rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(100);
  auto built = rtree::BuildRTree(&store, config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("built HS tree: %u nodes, height %u\n", built->num_nodes,
              built->height);

  // 3. Query through a 50-page LRU buffer pool.
  store.ResetStats();
  auto pool = storage::BufferPool::MakeLru(&store, 50);
  auto tree = rtree::RTree::Open(pool.get(), config, built->root,
                                 built->height);
  if (!tree.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }

  // One region query, inspected in detail...
  std::vector<rtree::ObjectId> results;
  geom::Rect window(0.40, 0.40, 0.45, 0.45);
  rtree::QueryStats stats;
  if (Status s = tree->Search(window, &results, &stats); !s.ok()) {
    std::fprintf(stderr, "search failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("query %.2fx%.2f window: %zu results, %llu nodes visited\n",
              window.width(), window.height(), results.size(),
              static_cast<unsigned long long>(stats.nodes_accessed));

  // ...then a workload of 100,000 random point queries.
  store.ResetStats();
  pool->ResetStats();
  sim::UniformPointGenerator gen;
  Rng query_rng(7);
  const int kQueries = 100000;
  for (int i = 0; i < kQueries; ++i) {
    results.clear();
    (void)tree->SearchPoint(
        geom::Point{query_rng.NextDouble(), query_rng.NextDouble()},
        &results);
  }
  double measured = static_cast<double>(store.stats().reads) / kQueries;
  std::printf("\nworkload: %d point queries through a %zu-page pool\n",
              kQueries, pool->capacity());
  std::printf("  buffer hit rate: %.1f%%\n", 100.0 * pool->stats().HitRate());
  std::printf("  measured disk accesses/query: %.4f\n", measured);

  // 4. The paper's buffer model predicts that number from the tree's MBRs
  //    alone — no simulation needed.
  auto summary = rtree::TreeSummary::Extract(&store, built->root);
  auto predicted = model::PredictDiskAccesses(
      *summary, model::QuerySpec::UniformPoint(), pool->capacity());
  std::printf("  model-predicted accesses/query: %.4f\n", *predicted);
  std::printf(
      "\n(the model counts the root only when its MBR covers the query;\n"
      " real execution always reads it, so the measurement sits slightly\n"
      " above the prediction)\n");
  return 0;
}
