// GIS scenario: choosing a loading algorithm for a road-segment index.
//
//   $ ./build/examples/gis_road_index [path/to/file.rects]
//
// A mapping service indexes ~53k road-segment MBRs (a TIGER-style data set;
// pass a real extract in rtb-rects format to use your own). Memory for the
// index cache is limited. The example builds the index with all four
// loading algorithms and uses the paper's buffer model to answer the
// question the paper poses: which loader is best *for a given buffer
// size* — showing that the bufferless "nodes visited" ranking can mislead.

#include <cstdio>
#include <string>
#include <vector>

#include "core/rtb.h"

namespace {

struct Candidate {
  std::string name;
  std::unique_ptr<rtb::storage::MemPageStore> store;
  std::unique_ptr<rtb::rtree::TreeSummary> summary;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rtb;

  // Load or synthesize the road data.
  std::vector<geom::Rect> rects;
  if (argc > 1) {
    auto loaded = data::LoadRects(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    rects = std::move(*loaded);
    std::printf("loaded %zu rectangles from %s\n", rects.size(), argv[1]);
  } else {
    Rng rng(2718);
    data::TigerParams params;
    rects = data::GenerateTigerSurrogate(params, &rng);
    std::printf("synthesized %zu road-segment MBRs (TIGER surrogate)\n",
                rects.size());
  }

  const rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(100);
  std::vector<Candidate> candidates;
  for (auto algo : {rtree::LoadAlgorithm::kTupleAtATime,
                    rtree::LoadAlgorithm::kNearestX,
                    rtree::LoadAlgorithm::kHilbertSort,
                    rtree::LoadAlgorithm::kStr}) {
    Candidate c;
    c.name = std::string(rtree::LoadAlgorithmName(algo));
    c.store = std::make_unique<storage::MemPageStore>();
    auto built = rtree::BuildRTree(c.store.get(), config, rects, algo);
    if (!built.ok()) {
      std::fprintf(stderr, "%s build failed: %s\n", c.name.c_str(),
                   built.status().ToString().c_str());
      return 1;
    }
    auto summary = rtree::TreeSummary::Extract(c.store.get(), built->root);
    c.summary = std::make_unique<rtree::TreeSummary>(std::move(*summary));
    candidates.push_back(std::move(c));
  }

  // Map viewport queries: small region queries, 0.5% of the map each.
  const model::QuerySpec viewport = model::QuerySpec::UniformRegion(0.07,
                                                                    0.07);

  std::printf("\n%-6s %8s %12s", "loader", "pages", "bufferless");
  for (uint64_t buffer : {16, 64, 256, 1024}) {
    std::printf(" %9s%-4llu", "B=", static_cast<unsigned long long>(buffer));
  }
  std::printf("\n");
  for (const Candidate& c : candidates) {
    auto probs = model::AccessProbabilities(*c.summary, viewport);
    std::printf("%-6s %8zu %12.2f", c.name.c_str(), c.summary->NumNodes(),
                model::ExpectedNodeAccesses(*probs));
    for (uint64_t buffer : {16, 64, 256, 1024}) {
      std::printf(" %13.3f",
                  model::ExpectedDiskAccesses(*probs, buffer));
    }
    std::printf("\n");
  }

  // Pick the winner per memory budget.
  std::printf("\nrecommended loader by cache budget:\n");
  for (uint64_t buffer : {16, 64, 256, 1024}) {
    const Candidate* best = nullptr;
    double best_cost = 0.0;
    for (const Candidate& c : candidates) {
      auto probs = model::AccessProbabilities(*c.summary, viewport);
      double cost = model::ExpectedDiskAccesses(*probs, buffer);
      if (best == nullptr || cost < best_cost) {
        best = &c;
        best_cost = cost;
      }
    }
    std::printf("  %4llu pages -> %s (%.3f disk accesses per viewport)\n",
                static_cast<unsigned long long>(buffer), best->name.c_str(),
                best_cost);
  }
  std::printf(
      "\nThe bufferless column ranks loaders by nodes visited; the buffered\n"
      "columns are what the user actually waits for. When they disagree,\n"
      "trust the buffered ranking (the paper's central point).\n");
  return 0;
}
