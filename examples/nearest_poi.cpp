// Nearest points of interest: k-nearest-neighbor search on the road index.
//
//   $ ./build/examples/nearest_poi
//
// A navigation feature: given a user location, find the k closest indexed
// segments. Demonstrates SearchKnn (best-first branch-and-bound) and shows
// that kNN, like region search, runs through the buffer pool — so the
// paper's disk-access lens applies to it too: repeated nearby kNN probes
// (a panning map view) become cheap once the relevant pages are cached.

#include <algorithm>
#include <cstdio>

#include "core/rtb.h"

int main() {
  using namespace rtb;

  Rng rng(20260704);
  data::TigerParams params;
  params.num_rects = 30000;
  auto rects = data::GenerateTigerSurrogate(params, &rng);

  storage::MemPageStore store;
  rtree::RTreeConfig config = rtree::RTreeConfig::WithFanout(64);
  auto built = rtree::BuildRTree(&store, config, rects,
                                 rtree::LoadAlgorithm::kHilbertSort);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  store.ResetStats();
  auto pool = storage::BufferPool::MakeLru(&store, 24);
  auto tree = rtree::RTree::Open(pool.get(), config, built->root,
                                 built->height);
  if (!tree.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }

  // One detailed probe.
  geom::Point user{0.42, 0.57};
  rtree::QueryStats stats;
  auto nearest = rtree::SearchKnn(*tree, user, 5, &stats);
  if (!nearest.ok()) {
    std::fprintf(stderr, "knn failed: %s\n",
                 nearest.status().ToString().c_str());
    return 1;
  }
  std::printf("5 nearest road segments to (%.2f, %.2f) "
              "(%llu of %u nodes touched):\n",
              user.x, user.y,
              static_cast<unsigned long long>(stats.nodes_accessed),
              built->num_nodes);
  for (const rtree::Neighbor& n : *nearest) {
    std::printf("  object %6llu  distance %.5f  mbr=(%.3f,%.3f)-(%.3f,%.3f)\n",
                static_cast<unsigned long long>(n.id), n.distance,
                n.rect.lo.x, n.rect.lo.y, n.rect.hi.x, n.rect.hi.y);
  }

  // A panning session: 2,000 probes drifting across the map. The buffer
  // absorbs most of the locality.
  store.ResetStats();
  pool->ResetStats();
  geom::Point cursor{0.2, 0.2};
  Rng drift(99);
  for (int i = 0; i < 2000; ++i) {
    cursor.x = std::clamp(cursor.x + drift.Uniform(-0.01, 0.012), 0.0, 1.0);
    cursor.y = std::clamp(cursor.y + drift.Uniform(-0.01, 0.012), 0.0, 1.0);
    auto result = rtree::SearchKnn(*tree, cursor, 5);
    if (!result.ok()) {
      std::fprintf(stderr, "knn failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "\npanning session: 2000 5-NN probes, buffer hit rate %.1f%%, "
      "%.3f disk accesses per probe\n",
      100.0 * pool->stats().HitRate(),
      static_cast<double>(store.stats().reads) / 2000.0);
  return 0;
}
