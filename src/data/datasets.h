// Data-set generators matching Section 5.1 of the paper.
//
//  * Synthetic Point: points uniform over the unit square.
//  * Synthetic Region: squares with side uniform in (0, eps],
//    eps = 2*sqrt(0.25/10000) = 0.01, so 10,000 rectangles cover ~0.25 of
//    the unit square in total area and 100,000 cover ~2.5x.
//  * TIGER surrogate: the paper uses the Long Beach TIGER file (53,145
//    road-segment MBRs). That file is not redistributable here, so
//    GenerateTigerSurrogate synthesizes a road map with the properties the
//    paper's analysis relies on: many small, thin, spatially clustered
//    rectangles and large empty regions.
//  * CFD surrogate: the paper uses a 52,510-node unstructured grid around a
//    Boeing 737 wing cross-section with flaps deployed (original data link
//    is defunct). GenerateCfdSurrogate samples points around a two-element
//    airfoil with density decaying by a power law in the distance to the
//    nearest surface and the element interiors kept empty — reproducing the
//    extreme skew and blank "ovalish areas" of the original (Fig. 5).
//
// All generators are deterministic in the supplied Rng and produce
// rectangles inside the unit square.

#ifndef RTB_DATA_DATASETS_H_
#define RTB_DATA_DATASETS_H_

#include <cstddef>
#include <vector>

#include "data/polygon.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "util/rng.h"

namespace rtb::data {

/// Uniformly distributed points (degenerate rectangles).
std::vector<geom::Rect> GenerateUniformPoints(size_t n, Rng* rng);

/// Maximum square side of the Synthetic Region data set,
/// 2*sqrt(0.25/10000) = 0.01 (paper Section 5.1).
double SyntheticRegionMaxSide();

/// Uniformly placed squares with side uniform in (0, SyntheticRegionMaxSide].
std::vector<geom::Rect> GenerateSyntheticRegion(size_t n, Rng* rng);

/// Parameters of the TIGER/Long Beach surrogate.
struct TigerParams {
  size_t num_rects = 53145;     // Long Beach rectangle count.
  uint32_t num_cities = 12;     // Clustered urban areas.
  double min_city_radius = 0.05;
  double max_city_radius = 0.20;
  double highway_fraction = 0.15;  // Share of rects on inter-city roads.
  double jitter = 0.002;           // Cross-track jitter of road segments.
};

/// Synthetic road map: street-grid random walks inside clustered "cities"
/// plus inter-city highway polylines; each road segment contributes its MBR.
std::vector<geom::Rect> GenerateTigerSurrogate(const TigerParams& params,
                                               Rng* rng);

/// Parameters of the CFD surrogate.
struct CfdParams {
  size_t num_points = 52510;     // Node count of the paper's grid.
  double far_field_fraction = 0.03;  // Points scattered over the domain.
  double near_distance = 0.0015;     // Distance scale of the dense layer.
  double decay_exponent = 1.6;       // Power-law tail of the distance.
};

/// Unstructured-grid surrogate: points around a two-element airfoil (main
/// wing + deployed flap), dense at the surfaces, sparse away from them,
/// empty inside the elements.
std::vector<geom::Rect> GenerateCfdSurrogate(const CfdParams& params,
                                             Rng* rng);

/// The two airfoil elements (main wing, then flap) used by the CFD
/// surrogate. Every generated grid point lies outside both; useful for
/// plotting and for asserting the interiors stay empty.
std::vector<Polygon> CfdAirfoilElements();

/// Center points of a rectangle set (the data-driven query model and
/// generator consume these).
std::vector<geom::Point> Centers(const std::vector<geom::Rect>& rects);

/// Fisher-Yates shuffle. The structured generators emit rectangles in
/// spatially correlated order (street by street, surface by surface);
/// shuffling makes data-file order neutral so order-sensitive consumers
/// (the TAT loader) reflect their algorithm, not the generator.
void Shuffle(std::vector<geom::Rect>* rects, Rng* rng);

/// Parameters of the Gaussian-cluster generator.
struct ClusterParams {
  size_t num_rects = 10000;
  uint32_t num_clusters = 10;
  /// Standard deviation of each cluster (same in x and y).
  double sigma = 0.03;
  /// Cluster-size skew: cluster i receives weight (i+1)^-zipf. 0 = equal
  /// sizes; ~1 = heavily skewed (a few dominant clusters).
  double zipf = 0.8;
  /// Rectangle side, uniform in (0, max_side]; 0 = point data.
  double max_side = 0.0;
};

/// Gaussian clusters with Zipf-skewed populations — the classic "clustered"
/// workload of R-tree studies. Output order is shuffled; all rectangles are
/// clamped inside the unit square.
std::vector<geom::Rect> GenerateGaussianClusters(const ClusterParams& params,
                                                 Rng* rng);

}  // namespace rtb::data

#endif  // RTB_DATA_DATASETS_H_
