// Simple polygon utilities used by the data-set generators: containment
// tests (ray casting) and uniform sampling along the boundary with outward
// normals. The CFD surrogate builds airfoil cross-sections as polygons and
// samples mesh points at power-law distances from their surfaces.

#ifndef RTB_DATA_POLYGON_H_
#define RTB_DATA_POLYGON_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "util/rng.h"

namespace rtb::data {

/// A closed simple polygon (vertices in order; the edge from back() to
/// front() closes it).
class Polygon {
 public:
  /// Requires at least 3 vertices.
  explicit Polygon(std::vector<geom::Point> vertices);

  const std::vector<geom::Point>& vertices() const { return vertices_; }

  /// Signed area (positive for counter-clockwise orientation).
  double SignedArea() const;

  /// Total boundary length.
  double Perimeter() const { return total_length_; }

  /// Axis-parallel bounding box.
  geom::Rect BoundingBox() const { return bbox_; }

  /// True when `p` is strictly inside (ray-casting; boundary points may go
  /// either way, which the generators tolerate).
  bool Contains(geom::Point p) const;

  /// A point uniformly distributed along the boundary, plus the outward
  /// unit normal at that point.
  struct SurfaceSample {
    geom::Point point;
    double normal_x = 0.0;
    double normal_y = 0.0;
  };
  SurfaceSample SampleSurface(Rng* rng) const;

  /// Returns a copy scaled by `s`, rotated by `radians` (about the origin),
  /// then translated by (dx, dy) — in that order.
  Polygon Transformed(double s, double radians, double dx, double dy) const;

 private:
  std::vector<geom::Point> vertices_;
  std::vector<double> cumulative_length_;  // Edge i ends at [i].
  double total_length_ = 0.0;
  geom::Rect bbox_;
  bool ccw_ = true;
};

}  // namespace rtb::data

#endif  // RTB_DATA_POLYGON_H_
