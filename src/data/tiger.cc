// TIGER/Long Beach surrogate generator.
//
// TIGER line files store road segments; indexing them stores one thin MBR
// per segment. Structurally the Long Beach set is (i) heavily clustered —
// dense street grids in urban areas — and (ii) mostly empty elsewhere,
// which is exactly what drives the paper's Section 5.4 observations. The
// surrogate reproduces that: it lays out a handful of "cities" with
// street-grid random walks plus a sparse web of inter-city highways, and
// emits the MBR of every road segment.

#include <algorithm>
#include <cmath>

#include "data/datasets.h"
#include "util/macros.h"

namespace rtb::data {
namespace {

using geom::Point;
using geom::Rect;

constexpr double kPi = 3.14159265358979323846;

Point ClampToUnit(Point p) {
  return Point{std::clamp(p.x, 0.0, 1.0), std::clamp(p.y, 0.0, 1.0)};
}

// MBR of the segment (a, b), clamped to the unit square.
Rect SegmentMbr(Point a, Point b) {
  a = ClampToUnit(a);
  b = ClampToUnit(b);
  return Rect(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
              std::max(a.y, b.y));
}

struct City {
  Point center;
  double radius;
};

// One street: an axis-biased random walk emitting `max_segments` segment
// MBRs (fewer if it drifts too far from the city).
void EmitStreet(const City& city, double jitter, size_t max_segments,
                Rng* rng, std::vector<Rect>* out) {
  // Start near the center (Gaussian, so downtown is densest).
  Point p{city.center.x + rng->NextGaussian() * city.radius * 0.45,
          city.center.y + rng->NextGaussian() * city.radius * 0.45};
  // Streets are mostly axis-aligned with occasional diagonals.
  double angle;
  double r = rng->NextDouble();
  if (r < 0.45) {
    angle = rng->NextDouble() < 0.5 ? 0.0 : kPi;
  } else if (r < 0.9) {
    angle = rng->NextDouble() < 0.5 ? kPi / 2 : -kPi / 2;
  } else {
    angle = rng->Uniform(0.0, 2 * kPi);
  }
  const double step = city.radius / 25.0;
  for (size_t s = 0; s < max_segments; ++s) {
    Point q{p.x + std::cos(angle) * step + rng->Uniform(-jitter, jitter),
            p.y + std::sin(angle) * step + rng->Uniform(-jitter, jitter)};
    out->push_back(SegmentMbr(p, q));
    p = q;
    double dx = p.x - city.center.x;
    double dy = p.y - city.center.y;
    if (dx * dx + dy * dy > city.radius * city.radius) break;
    // Occasional 90-degree turns keep the grid texture.
    if (rng->NextDouble() < 0.12) {
      angle += (rng->NextDouble() < 0.5 ? 1.0 : -1.0) * kPi / 2;
    }
  }
}

// A highway: a jittered polyline between two city centers.
void EmitHighway(Point from, Point to, double jitter, Rng* rng,
                 std::vector<Rect>* out, size_t budget) {
  // TIGER chains break roads into short block-level segments (~100 m, i.e.
  // ~0.006 normalized for a county-sized extent).
  double dist = std::hypot(to.x - from.x, to.y - from.y);
  size_t steps = std::max<size_t>(2, static_cast<size_t>(dist / 0.006));
  steps = std::min(steps, budget);
  Point p = from;
  for (size_t s = 1; s <= steps && out->size() < out->capacity(); ++s) {
    double t = static_cast<double>(s) / static_cast<double>(steps);
    Point q{from.x + t * (to.x - from.x) + rng->Uniform(-jitter, jitter),
            from.y + t * (to.y - from.y) + rng->Uniform(-jitter, jitter)};
    out->push_back(SegmentMbr(p, q));
    p = q;
  }
}

}  // namespace

std::vector<Rect> GenerateTigerSurrogate(const TigerParams& params,
                                         Rng* rng) {
  RTB_CHECK(params.num_cities >= 2);
  RTB_CHECK(params.highway_fraction >= 0.0 && params.highway_fraction < 1.0);

  std::vector<City> cities(params.num_cities);
  for (City& city : cities) {
    // Centers concentrate toward the middle so the discs overlap into one
    // contiguous metro area (Long Beach is a single urbanized region) with
    // empty margins (ocean/port).
    city.center = Point{rng->Uniform(0.22, 0.78), rng->Uniform(0.22, 0.78)};
    // Log-uniform radii: a couple of metropolises, several towns.
    double u = rng->NextDouble();
    city.radius = params.min_city_radius *
                  std::pow(params.max_city_radius / params.min_city_radius, u);
  }
  // City weight ~ radius^2 (area), so big cities hold most streets.
  std::vector<double> cumulative_weight(cities.size());
  double acc = 0.0;
  for (size_t i = 0; i < cities.size(); ++i) {
    acc += cities[i].radius * cities[i].radius;
    cumulative_weight[i] = acc;
  }

  std::vector<Rect> rects;
  rects.reserve(params.num_rects);

  // Highways first (they are the smaller share).
  const size_t highway_quota = static_cast<size_t>(
      params.highway_fraction * static_cast<double>(params.num_rects));
  while (rects.size() < highway_quota) {
    size_t a = rng->UniformInt(cities.size());
    size_t b = rng->UniformInt(cities.size());
    if (a == b) continue;
    EmitHighway(cities[a].center, cities[b].center, params.jitter, rng,
                &rects, highway_quota - rects.size());
  }

  // City streets fill the remainder.
  while (rects.size() < params.num_rects) {
    double pick = rng->Uniform(0.0, acc);
    size_t idx = static_cast<size_t>(
        std::lower_bound(cumulative_weight.begin(), cumulative_weight.end(),
                         pick) -
        cumulative_weight.begin());
    if (idx >= cities.size()) idx = cities.size() - 1;
    size_t remaining = params.num_rects - rects.size();
    EmitStreet(cities[idx], params.jitter, std::min<size_t>(remaining, 24),
               rng, &rects);
  }
  rects.resize(params.num_rects);
  // Streets were emitted consecutively; neutralize file order.
  Shuffle(&rects, rng);
  return rects;
}

}  // namespace rtb::data
