// CFD unstructured-grid surrogate.
//
// The paper's grid models MACH 0.2 flow over a Boeing 737 wing cross
// section with flaps out: "Nodes are dense in areas of great change in the
// solution ... and sparse in areas of little change", and the wing interior
// shows as blank oval areas (Fig. 5). The surrogate builds a two-element
// airfoil (NACA-style main element plus a deployed flap) and samples grid
// nodes at power-law distances from the nearest surface, rejecting points
// inside either element.

#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "data/polygon.h"
#include "util/macros.h"

namespace rtb::data {
namespace {

using geom::Point;
using geom::Rect;

constexpr double kPi = 3.14159265358979323846;

// NACA 4-digit airfoil polygon with unit chord from (0,0) to (1,0).
// m = max camber, p = camber position, t = thickness. `samples` points per
// surface.
Polygon MakeNacaAirfoil(double m, double p, double t, int samples) {
  auto thickness = [t](double x) {
    // Closed trailing edge variant (-0.1036 last coefficient).
    return 5.0 * t *
           (0.2969 * std::sqrt(x) - 0.1260 * x - 0.3516 * x * x +
            0.2843 * x * x * x - 0.1036 * x * x * x * x);
  };
  auto camber = [m, p](double x) {
    if (m == 0.0) return 0.0;
    if (x < p) return m / (p * p) * (2.0 * p * x - x * x);
    return m / ((1.0 - p) * (1.0 - p)) *
           ((1.0 - 2.0 * p) + 2.0 * p * x - x * x);
  };
  auto camber_slope = [m, p](double x) {
    if (m == 0.0) return 0.0;
    if (x < p) return 2.0 * m / (p * p) * (p - x);
    return 2.0 * m / ((1.0 - p) * (1.0 - p)) * (p - x);
  };

  std::vector<Point> vertices;
  vertices.reserve(static_cast<size_t>(2 * samples));
  // Upper surface, trailing edge -> leading edge (cosine spacing).
  for (int i = 0; i < samples; ++i) {
    double beta = kPi * static_cast<double>(i) / (samples - 1);
    double x = 0.5 * (1.0 + std::cos(beta));  // 1 -> 0.
    double theta = std::atan(camber_slope(x));
    double yt = thickness(x);
    vertices.push_back(Point{x - yt * std::sin(theta),
                             camber(x) + yt * std::cos(theta)});
  }
  // Lower surface, leading edge -> trailing edge (skip duplicated ends).
  for (int i = 1; i < samples - 1; ++i) {
    double beta = kPi * static_cast<double>(i) / (samples - 1);
    double x = 0.5 * (1.0 - std::cos(beta));  // 0 -> 1.
    double theta = std::atan(camber_slope(x));
    double yt = thickness(x);
    vertices.push_back(Point{x + yt * std::sin(theta),
                             camber(x) - yt * std::cos(theta)});
  }
  return Polygon(std::move(vertices));
}

}  // namespace

std::vector<Polygon> CfdAirfoilElements() {
  Polygon base = MakeNacaAirfoil(0.02, 0.4, 0.12, 80);
  std::vector<Polygon> elements;
  // Main element: chord 0.5, slight nose-down attitude, centered-left.
  elements.push_back(base.Transformed(0.5, -4.0 * kPi / 180.0, 0.24, 0.52));
  // Flap: chord 0.16, deflected 28 degrees, tucked under the trailing edge
  // (landing configuration).
  elements.push_back(base.Transformed(0.16, -28.0 * kPi / 180.0, 0.70, 0.455));
  return elements;
}

std::vector<Rect> GenerateCfdSurrogate(const CfdParams& params, Rng* rng) {
  RTB_CHECK(params.far_field_fraction >= 0.0 &&
            params.far_field_fraction < 1.0);
  std::vector<Polygon> polys = CfdAirfoilElements();
  const Polygon& main_element = polys[0];
  const Polygon& flap = polys[1];

  const Polygon* elements[2] = {&main_element, &flap};
  auto inside_any = [&elements](Point p) {
    return elements[0]->Contains(p) || elements[1]->Contains(p);
  };

  std::vector<Rect> rects;
  rects.reserve(params.num_points);

  const size_t far_quota = static_cast<size_t>(
      params.far_field_fraction * static_cast<double>(params.num_points));

  // Far-field nodes: coarse, spread over the whole domain.
  while (rects.size() < far_quota) {
    Point p{rng->NextDouble(), rng->NextDouble()};
    if (inside_any(p)) continue;
    rects.push_back(Rect::FromPoint(p));
  }

  // Boundary-layer and wake nodes: pick a surface point (the flap gets a
  // share proportional to its perimeter, weighted up — real meshes resolve
  // the slot flow finely), then step away along the normal by a power-law
  // distance.
  const double main_perimeter = main_element.Perimeter();
  const double flap_perimeter = flap.Perimeter() * 2.5;
  const double total_weight = main_perimeter + flap_perimeter;
  while (rects.size() < params.num_points) {
    const Polygon* element =
        rng->Uniform(0.0, total_weight) < main_perimeter ? elements[0]
                                                         : elements[1];
    Polygon::SurfaceSample sample = element->SampleSurface(rng);
    // d = d0 * (u^{-1/k} - 1): dense for u near 1, heavy tail for small u.
    double u = rng->NextDouble();
    if (u <= 0.0) continue;
    double d = params.near_distance *
               (std::pow(u, -1.0 / params.decay_exponent) - 1.0);
    if (d > 0.6) continue;  // Tail cap: keep the cloud near the airfoil.
    // Jitter the direction slightly so layers are not perfectly shells.
    double jitter_angle = rng->NextGaussian() * 0.12;
    double ca = std::cos(jitter_angle), sa = std::sin(jitter_angle);
    double nx = sample.normal_x * ca - sample.normal_y * sa;
    double ny = sample.normal_x * sa + sample.normal_y * ca;
    Point p{sample.point.x + nx * d, sample.point.y + ny * d};
    if (p.x < 0.0 || p.x > 1.0 || p.y < 0.0 || p.y > 1.0) continue;
    if (inside_any(p)) continue;
    rects.push_back(Rect::FromPoint(p));
  }
  // Far-field points were emitted first; neutralize file order.
  Shuffle(&rects, rng);
  return rects;
}

}  // namespace rtb::data
