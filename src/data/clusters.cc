#include <algorithm>
#include <cmath>
#include <vector>

#include "data/datasets.h"
#include "util/macros.h"

namespace rtb::data {

using geom::Point;
using geom::Rect;

std::vector<Rect> GenerateGaussianClusters(const ClusterParams& params,
                                           Rng* rng) {
  RTB_CHECK(params.num_clusters >= 1);
  RTB_CHECK(params.sigma > 0.0);
  RTB_CHECK(params.zipf >= 0.0);
  RTB_CHECK(params.max_side >= 0.0 && params.max_side < 1.0);

  struct Cluster {
    Point center;
    double cumulative_weight;
  };
  std::vector<Cluster> clusters(params.num_clusters);
  double acc = 0.0;
  for (uint32_t i = 0; i < params.num_clusters; ++i) {
    // Keep centers away from the border so most mass stays inside.
    clusters[i].center = Point{rng->Uniform(0.1, 0.9),
                               rng->Uniform(0.1, 0.9)};
    acc += std::pow(static_cast<double>(i + 1), -params.zipf);
    clusters[i].cumulative_weight = acc;
  }

  std::vector<Rect> rects;
  rects.reserve(params.num_rects);
  while (rects.size() < params.num_rects) {
    double pick = rng->Uniform(0.0, acc);
    auto it = std::lower_bound(
        clusters.begin(), clusters.end(), pick,
        [](const Cluster& c, double v) { return c.cumulative_weight < v; });
    if (it == clusters.end()) --it;
    Point c{it->center.x + rng->NextGaussian() * params.sigma,
            it->center.y + rng->NextGaussian() * params.sigma};
    double side =
        params.max_side > 0.0 ? rng->Uniform(0.0, params.max_side) : 0.0;
    double x0 = c.x - side / 2.0, y0 = c.y - side / 2.0;
    Rect r(std::clamp(x0, 0.0, 1.0 - side),
           std::clamp(y0, 0.0, 1.0 - side), 0.0, 0.0);
    r.hi = Point{r.lo.x + side, r.lo.y + side};
    if (c.x < 0.0 || c.x > 1.0 || c.y < 0.0 || c.y > 1.0) continue;
    rects.push_back(r);
  }
  Shuffle(&rects, rng);
  return rects;
}

}  // namespace rtb::data
