// Plain-text rectangle file I/O.
//
// Format: one header line "rtb-rects <count>", then one rectangle per line
// as "lo.x lo.y hi.x hi.y" with full double precision. This lets users feed
// real data sets (e.g. an actual TIGER extract) into the library and lets
// the benches dump the data they generated.

#ifndef RTB_DATA_IO_H_
#define RTB_DATA_IO_H_

#include <string>
#include <vector>

#include "geom/rect.h"
#include "util/result.h"

namespace rtb::data {

/// Writes `rects` to `path`, overwriting.
Status SaveRects(const std::string& path,
                 const std::vector<geom::Rect>& rects);

/// Reads a rectangle file written by SaveRects (or hand-made in the same
/// format).
Result<std::vector<geom::Rect>> LoadRects(const std::string& path);

}  // namespace rtb::data

#endif  // RTB_DATA_IO_H_
