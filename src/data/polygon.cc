#include "data/polygon.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace rtb::data {

using geom::Point;
using geom::Rect;

Polygon::Polygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  RTB_CHECK(vertices_.size() >= 3);
  const size_t n = vertices_.size();
  cumulative_length_.resize(n);
  bbox_ = Rect::Empty();
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    acc += std::hypot(b.x - a.x, b.y - a.y);
    cumulative_length_[i] = acc;
    bbox_ = geom::Union(bbox_, Rect::FromPoint(a));
  }
  total_length_ = acc;
  ccw_ = SignedArea() > 0.0;
}

double Polygon::SignedArea() const {
  double acc = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    acc += a.x * b.y - b.x * a.y;
  }
  return acc / 2.0;
}

bool Polygon::Contains(Point p) const {
  if (!bbox_.Contains(p)) return false;
  // Ray casting toward +x.
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

Polygon::SurfaceSample Polygon::SampleSurface(Rng* rng) const {
  double target = rng->Uniform(0.0, total_length_);
  auto it = std::lower_bound(cumulative_length_.begin(),
                             cumulative_length_.end(), target);
  size_t i = static_cast<size_t>(it - cumulative_length_.begin());
  if (i >= vertices_.size()) i = vertices_.size() - 1;
  const Point& a = vertices_[i];
  const Point& b = vertices_[(i + 1) % vertices_.size()];
  double edge_start = i == 0 ? 0.0 : cumulative_length_[i - 1];
  double edge_len = cumulative_length_[i] - edge_start;
  double t = edge_len > 0.0 ? (target - edge_start) / edge_len : 0.0;

  SurfaceSample sample;
  sample.point = Point{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
  // Edge direction -> outward normal (right of travel for CCW polygons).
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  double len = std::hypot(dx, dy);
  if (len == 0.0) len = 1.0;
  double nx = dy / len;
  double ny = -dx / len;
  if (!ccw_) {
    nx = -nx;
    ny = -ny;
  }
  sample.normal_x = nx;
  sample.normal_y = ny;
  return sample;
}

Polygon Polygon::Transformed(double s, double radians, double dx,
                             double dy) const {
  const double c = std::cos(radians);
  const double sn = std::sin(radians);
  std::vector<Point> out;
  out.reserve(vertices_.size());
  for (const Point& v : vertices_) {
    double x = v.x * s;
    double y = v.y * s;
    out.push_back(Point{x * c - y * sn + dx, x * sn + y * c + dy});
  }
  return Polygon(std::move(out));
}

}  // namespace rtb::data
