#include "data/io.h"

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace rtb::data {

Status SaveRects(const std::string& path,
                 const std::vector<geom::Rect>& rects) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "rtb-rects " << rects.size() << "\n";
  out << std::setprecision(17);
  for (const geom::Rect& r : rects) {
    out << r.lo.x << ' ' << r.lo.y << ' ' << r.hi.x << ' ' << r.hi.y << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<std::vector<geom::Rect>> LoadRects(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic;
  uint64_t count = 0;
  if (!(in >> magic >> count) || magic != "rtb-rects") {
    return Status::Corruption(path + ": missing 'rtb-rects <count>' header");
  }
  std::vector<geom::Rect> rects;
  rects.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    geom::Rect r;
    if (!(in >> r.lo.x >> r.lo.y >> r.hi.x >> r.hi.y)) {
      return Status::Corruption(path + ": truncated at rectangle " +
                                std::to_string(i));
    }
    if (r.is_empty()) {
      return Status::Corruption(path + ": rectangle " + std::to_string(i) +
                                " has lo > hi");
    }
    rects.push_back(r);
  }
  return rects;
}

}  // namespace rtb::data
