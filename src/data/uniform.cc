#include <cmath>

#include "data/datasets.h"

namespace rtb::data {

using geom::Point;
using geom::Rect;

std::vector<Rect> GenerateUniformPoints(size_t n, Rng* rng) {
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rects.push_back(
        Rect::FromPoint(Point{rng->NextDouble(), rng->NextDouble()}));
  }
  return rects;
}

double SyntheticRegionMaxSide() { return 2.0 * std::sqrt(0.25 / 10000.0); }

std::vector<Rect> GenerateSyntheticRegion(size_t n, Rng* rng) {
  const double eps = SyntheticRegionMaxSide();
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double side = rng->Uniform(0.0, eps);
    // Place the square fully inside the unit square.
    double x = rng->Uniform(0.0, 1.0 - side);
    double y = rng->Uniform(0.0, 1.0 - side);
    rects.push_back(Rect(x, y, x + side, y + side));
  }
  return rects;
}

void Shuffle(std::vector<Rect>* rects, Rng* rng) {
  for (size_t i = rects->size(); i > 1; --i) {
    std::swap((*rects)[i - 1], (*rects)[rng->UniformInt(i)]);
  }
}

std::vector<Point> Centers(const std::vector<Rect>& rects) {
  std::vector<Point> centers;
  centers.reserve(rects.size());
  for (const Rect& r : rects) centers.push_back(r.Center());
  return centers;
}

}  // namespace rtb::data
