#include "model/access_prob.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/point_grid.h"
#include "util/macros.h"

namespace rtb::model {

using geom::Point;
using geom::Rect;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One axis's factor of the uniform model: the probability that a query
/// with this extent overlaps [lo, hi] on the axis. Always in [0, 1] —
/// Cx <= 1-q because min(1, hi+q) <= 1 and max(lo, q) >= q.
double UniformAxisFactor(double lo, double hi, const AxisExtent& ax) {
  if (ax.open) return 1.0;
  const double q = ax.length;
  const double c = std::min(1.0, hi + q) - std::max(lo, q);
  if (c <= 0.0) return 0.0;
  return c / (1.0 - q);
}

/// The interval of query centers on one axis that reach [lo, hi]: the node
/// interval expanded by half the extent per side, or the whole axis when
/// the axis is open.
void ExpandedInterval(double lo, double hi, const AxisExtent& ax,
                      double* out_lo, double* out_hi) {
  if (ax.open) {
    *out_lo = -kInf;
    *out_hi = kInf;
    return;
  }
  *out_lo = lo - ax.length / 2.0;
  *out_hi = hi + ax.length / 2.0;
}

/// Gaussian mass of [a, b] for N(mu, sigma^2); the indicator of mu in
/// [a, b] when sigma == 0. An open axis passes (a, b) = (-inf, inf), for
/// which erf gives exactly 1.
double GaussianMass(double a, double b, double mu, double sigma) {
  if (sigma <= 0.0) return (mu >= a && mu <= b) ? 1.0 : 0.0;
  const double inv = 1.0 / (sigma * std::sqrt(2.0));
  return 0.5 * (std::erf((b - mu) * inv) - std::erf((a - mu) * inv));
}

Status CheckUniformExtents(const QueryClass& qc) {
  const bool x_ok = qc.x.open || (qc.x.length >= 0.0 && qc.x.length < 1.0);
  const bool y_ok = qc.y.open || (qc.y.length >= 0.0 && qc.y.length < 1.0);
  if (!x_ok || !y_ok) {
    return Status::InvalidArgument(
        "query extents must lie in [0, 1) for the uniform model");
  }
  return Status::OK();
}

}  // namespace

double UniformAccessProbability(const Rect& r, double qx, double qy) {
  RTB_DCHECK(qx >= 0.0 && qx < 1.0 && qy >= 0.0 && qy < 1.0);
  if (r.is_empty()) return 0.0;
  // C = min(1, c + qx) - max(a, qx), D = min(1, d + qy) - max(b, qy)
  // (paper Section 3.1), i.e. the overlap of the extended rectangle
  // R' = <(a,b),(c+qx,d+qy)> with U' = [qx,1] x [qy,1], normalized by
  // area(U') = (1-qx)(1-qy).
  const double c_term = std::min(1.0, r.hi.x + qx) - std::max(r.lo.x, qx);
  const double d_term = std::min(1.0, r.hi.y + qy) - std::max(r.lo.y, qy);
  if (c_term <= 0.0 || d_term <= 0.0) return 0.0;
  double p = (c_term * d_term) / ((1.0 - qx) * (1.0 - qy));
  return std::clamp(p, 0.0, 1.0);
}

double UniformAccessProbability(const Rect& r, const AxisExtent& x,
                                const AxisExtent& y) {
  if (!x.open && !y.open) {
    // Evaluate the closed-axis case through the exact legacy expression so
    // fixed-extent predictions stay bit-identical across the redesign.
    return UniformAccessProbability(r, x.length, y.length);
  }
  if (r.is_empty()) return 0.0;
  const double p = UniformAxisFactor(r.lo.x, r.hi.x, x) *
                   UniformAxisFactor(r.lo.y, r.hi.y, y);
  return std::clamp(p, 0.0, 1.0);
}

Result<std::vector<double>> UniformAccessProbabilities(
    const rtree::TreeSummary& summary, const QueryClass& qc) {
  RTB_RETURN_IF_ERROR(CheckUniformExtents(qc));
  std::vector<double> probs;
  probs.reserve(summary.NumNodes());
  for (const rtree::NodeInfo& node : summary.nodes()) {
    probs.push_back(UniformAccessProbability(node.mbr, qc.x, qc.y));
  }
  return probs;
}

Result<std::vector<double>> UniformAccessProbabilities(
    const rtree::TreeSummary& summary, double qx, double qy) {
  if (qx < 0.0 || qx >= 1.0 || qy < 0.0 || qy >= 1.0) {
    return Status::InvalidArgument(
        "query extents must lie in [0, 1) for the uniform model");
  }
  return UniformAccessProbabilities(summary,
                                    QueryClass::UniformRegion(qx, qy));
}

Result<std::vector<double>> DataDrivenAccessProbabilities(
    const rtree::TreeSummary& summary, const std::vector<Point>& centers,
    const QueryClass& qc) {
  if ((!qc.x.open && qc.x.length < 0.0) ||
      (!qc.y.open && qc.y.length < 0.0)) {
    return Status::InvalidArgument("query extents must be non-negative");
  }
  if (centers.empty()) {
    return Status::InvalidArgument(
        "data-driven model needs at least one data center");
  }
  geom::PointGrid grid(centers);
  const double n = static_cast<double>(centers.size());
  std::vector<double> probs;
  probs.reserve(summary.NumNodes());
  for (const rtree::NodeInfo& node : summary.nodes()) {
    Rect expanded = node.mbr;
    ExpandedInterval(node.mbr.lo.x, node.mbr.hi.x, qc.x, &expanded.lo.x,
                     &expanded.hi.x);
    ExpandedInterval(node.mbr.lo.y, node.mbr.hi.y, qc.y, &expanded.lo.y,
                     &expanded.hi.y);
    probs.push_back(static_cast<double>(grid.CountInRect(expanded)) / n);
  }
  return probs;
}

Result<std::vector<double>> DataDrivenAccessProbabilities(
    const rtree::TreeSummary& summary, const std::vector<Point>& centers,
    double qx, double qy) {
  return DataDrivenAccessProbabilities(summary, centers,
                                       QueryClass::DataDrivenRegion(qx, qy));
}

Result<std::vector<double>> ClusterAccessProbabilities(
    const rtree::TreeSummary& summary, const QueryClass& qc) {
  RTB_RETURN_IF_ERROR(qc.Validate());
  const std::vector<Point> hotspots = DeriveHotspots(qc.cluster);
  const std::vector<double> weights =
      ZipfWeights(qc.cluster.hotspots, qc.cluster.skew);
  const double sigma = qc.cluster.spread;
  std::vector<double> probs;
  probs.reserve(summary.NumNodes());
  for (const rtree::NodeInfo& node : summary.nodes()) {
    if (node.mbr.is_empty()) {
      probs.push_back(0.0);
      continue;
    }
    double ax, bx, ay, by;
    ExpandedInterval(node.mbr.lo.x, node.mbr.hi.x, qc.x, &ax, &bx);
    ExpandedInterval(node.mbr.lo.y, node.mbr.hi.y, qc.y, &ay, &by);
    double p = 0.0;
    for (size_t i = 0; i < hotspots.size(); ++i) {
      p += weights[i] * GaussianMass(ax, bx, hotspots[i].x, sigma) *
           GaussianMass(ay, by, hotspots[i].y, sigma);
    }
    probs.push_back(std::clamp(p, 0.0, 1.0));
  }
  return probs;
}

bool HasAnalyticModel(const std::string& center) {
  return center == kCenterUniform || center == kCenterData ||
         center == kCenterCluster;
}

Result<std::vector<double>> AccessProbabilities(
    const rtree::TreeSummary& summary, const QueryClass& qc,
    const std::vector<Point>* centers) {
  if (qc.center == kCenterUniform) {
    return UniformAccessProbabilities(summary, qc);
  }
  if (qc.center == kCenterData) {
    if (centers == nullptr) {
      return Status::InvalidArgument(
          "data-driven model requires data centers");
    }
    return DataDrivenAccessProbabilities(summary, *centers, qc);
  }
  if (qc.center == kCenterCluster) {
    return ClusterAccessProbabilities(summary, qc);
  }
  return Status::InvalidArgument("no analytic model for query center '" +
                                 qc.center + "'");
}

}  // namespace rtb::model
