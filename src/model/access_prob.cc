#include "model/access_prob.h"

#include <algorithm>
#include <cmath>

#include "geom/point_grid.h"
#include "util/macros.h"

namespace rtb::model {

using geom::Point;
using geom::Rect;

double UniformAccessProbability(const Rect& r, double qx, double qy) {
  RTB_DCHECK(qx >= 0.0 && qx < 1.0 && qy >= 0.0 && qy < 1.0);
  if (r.is_empty()) return 0.0;
  // C = min(1, c + qx) - max(a, qx), D = min(1, d + qy) - max(b, qy)
  // (paper Section 3.1), i.e. the overlap of the extended rectangle
  // R' = <(a,b),(c+qx,d+qy)> with U' = [qx,1] x [qy,1], normalized by
  // area(U') = (1-qx)(1-qy).
  const double c_term = std::min(1.0, r.hi.x + qx) - std::max(r.lo.x, qx);
  const double d_term = std::min(1.0, r.hi.y + qy) - std::max(r.lo.y, qy);
  if (c_term <= 0.0 || d_term <= 0.0) return 0.0;
  double p = (c_term * d_term) / ((1.0 - qx) * (1.0 - qy));
  return std::clamp(p, 0.0, 1.0);
}

Result<std::vector<double>> UniformAccessProbabilities(
    const rtree::TreeSummary& summary, double qx, double qy) {
  if (qx < 0.0 || qx >= 1.0 || qy < 0.0 || qy >= 1.0) {
    return Status::InvalidArgument(
        "query extents must lie in [0, 1) for the uniform model");
  }
  std::vector<double> probs;
  probs.reserve(summary.NumNodes());
  for (const rtree::NodeInfo& node : summary.nodes()) {
    probs.push_back(UniformAccessProbability(node.mbr, qx, qy));
  }
  return probs;
}

Result<std::vector<double>> DataDrivenAccessProbabilities(
    const rtree::TreeSummary& summary, const std::vector<Point>& centers,
    double qx, double qy) {
  if (qx < 0.0 || qy < 0.0) {
    return Status::InvalidArgument("query extents must be non-negative");
  }
  if (centers.empty()) {
    return Status::InvalidArgument(
        "data-driven model needs at least one data center");
  }
  geom::PointGrid grid(centers);
  const double n = static_cast<double>(centers.size());
  std::vector<double> probs;
  probs.reserve(summary.NumNodes());
  for (const rtree::NodeInfo& node : summary.nodes()) {
    Rect expanded = geom::ExpandAboutCenter(node.mbr, qx, qy);
    probs.push_back(static_cast<double>(grid.CountInRect(expanded)) / n);
  }
  return probs;
}

Result<std::vector<double>> AccessProbabilities(
    const rtree::TreeSummary& summary, const QuerySpec& spec,
    const std::vector<Point>* centers) {
  switch (spec.model) {
    case QueryModel::kUniform:
      return UniformAccessProbabilities(summary, spec.qx, spec.qy);
    case QueryModel::kDataDriven:
      if (centers == nullptr) {
        return Status::InvalidArgument(
            "data-driven model requires data centers");
      }
      return DataDrivenAccessProbabilities(summary, *centers, spec.qx,
                                           spec.qy);
  }
  return Status::InvalidArgument("unknown query model");
}

}  // namespace rtb::model
