// Fully analytical R-tree cost model in the style of Theodoridis & Sellis
// (PODS 1996), paper ref [14]: predicts query cost from data-set statistics
// alone — no tree needs to exist, unlike the Kamel-Faloutsos / buffer model
// pipeline, which takes the real per-node MBRs as input.
//
// Assumes uniformly distributed data in the unit square. A packed tree over
// N rectangles with effective fanout f has N/f leaves; under uniformity a
// level-i node (leaf = 0) covers about f^{i+1}/N of the square, so its MBR
// side is sqrt(f^{i+1}/N), inflated at the leaf level by the average data
// rectangle extent. Expected node accesses for a qx x qy query follow the
// Kamel-Faloutsos region form per level:
//   EP = sum_i N_i * (s_i + qx) * (s_i + qy).
//
// The model deliberately trades accuracy for zero inputs; tests quantify
// its error against the hybrid model on data it is meant for (uniform
// points and the synthetic-region squares of Section 5.1).

#ifndef RTB_MODEL_ANALYTIC_TREE_H_
#define RTB_MODEL_ANALYTIC_TREE_H_

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace rtb::model {

/// Data-set statistics the analytical model consumes.
struct DataStats {
  uint64_t num_rects = 0;
  double avg_x_extent = 0.0;  // Mean rectangle width.
  double avg_y_extent = 0.0;  // Mean rectangle height.
};

/// Predicted shape of a packed R-tree.
struct PredictedTree {
  uint16_t height = 0;                  // Number of levels.
  std::vector<uint64_t> level_counts;   // Nodes per level, leaf = index 0.
  std::vector<double> level_side;       // Predicted MBR side per level.

  uint64_t TotalNodes() const {
    uint64_t total = 0;
    for (uint64_t c : level_counts) total += c;
    return total;
  }
};

/// Predicts the shape of a tree packed with `effective_fanout` entries per
/// node (pass capacity * utilization; packed loaders fill ~100%).
Result<PredictedTree> PredictTreeShape(const DataStats& stats,
                                       double effective_fanout);

/// Expected nodes accessed by a uniform qx x qy region query (point query
/// when both are zero), from data statistics alone.
Result<double> AnalyticExpectedNodeAccesses(const DataStats& stats,
                                            double effective_fanout,
                                            double qx, double qy);

/// Per-node access probabilities for the *predicted* tree (every node at a
/// level shares its level's probability). These can be fed straight into
/// the buffer model (ExpectedDiskAccesses), yielding a fully analytical
/// disk-access prediction with no tree built at all.
Result<std::vector<double>> AnalyticAccessProbabilities(
    const DataStats& stats, double effective_fanout, double qx, double qy);

}  // namespace rtb::model

#endif  // RTB_MODEL_ANALYTIC_TREE_H_
