// The paper's cost models: bufferless expected node accesses (Kamel-
// Faloutsos / Pagel et al., Section 3.1) and the new LRU buffer model
// (Section 3.3), including the pinned-top-levels variant.

#ifndef RTB_MODEL_COST_MODEL_H_
#define RTB_MODEL_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "model/access_prob.h"
#include "rtree/summary.h"
#include "util/result.h"

namespace rtb::model {

/// Bufferless model: the expected number of nodes accessed per query is the
/// sum of the per-node access probabilities. For uniform point queries this
/// is exactly the sum of MBR areas (EP_T(0,0) = A).
double ExpectedNodeAccesses(const std::vector<double>& probs);

/// Kamel-Faloutsos closed form (Eq. 2), *without* the boundary correction:
/// EP_T(qx,qy) = A + qx*Ly + qy*Lx + M*qx*qy. Provided for comparison with
/// the corrected model; they agree as MBRs and queries shrink relative to
/// the unit square.
double KamelFaloutsosClosedForm(const rtree::TreeSummary& summary, double qx,
                                double qy);

/// Expected number of distinct nodes accessed in N queries (Eq. 5):
/// D(N) = M - sum_j (1 - p_j)^N. N may be fractional (the derivation is
/// continuous in N); D is increasing with D(0) = 0 and D(1) = sum p_j.
double ExpectedDistinctNodes(const std::vector<double>& probs, double n);

/// N*: the smallest integer N with D(N) >= B, found by binary search
/// (Section 3.3). Returns 0 when B == 0. When the buffer can hold every
/// node that is ever accessed (B >= #nodes with p > 0), D(N) never reaches
/// B and the buffer never fills: returns kNeverFills.
inline constexpr uint64_t kNeverFills = UINT64_MAX;
uint64_t QueriesToFillBuffer(const std::vector<double>& probs,
                             uint64_t buffer_pages);

/// Expected disk accesses per query at steady state (Eq. 6):
/// ED = sum_j p_j * (1 - p_j)^{N*}. Zero when the buffer never fills (every
/// touched node eventually stays resident).
double ExpectedDiskAccesses(const std::vector<double>& probs,
                            uint64_t buffer_pages);

/// Continuous relaxation of N*: the real-valued N solving D(N) = B (found
/// by bisection within [N*-1, N*]). Returns +infinity when the buffer never
/// fills. D(N) is smooth in N, so nothing in the derivation requires an
/// integer; rounding N* up makes the paper's model slightly optimistic at
/// very small N* (see ExpectedDiskAccessesContinuous).
double QueriesToFillBufferReal(const std::vector<double>& probs,
                               uint64_t buffer_pages);

/// Refinement beyond the paper: Eq. 6 evaluated at the real-valued N*.
/// Identical to ExpectedDiskAccesses in the limit of large N*; at small
/// buffers (N* of a few queries) it removes about half of the integer
/// model's underestimate against simulation.
double ExpectedDiskAccessesContinuous(const std::vector<double>& probs,
                                      uint64_t buffer_pages);

/// Result of the pinned-levels model (Section 3.3 last paragraph, Section
/// 5.5).
struct PinnedModelResult {
  bool feasible = false;     // False when pinned pages exceed the buffer.
  uint64_t pinned_pages = 0;  // Pages in the pinned top levels.
  double disk_accesses = 0.0;
};

/// Buffer model with the top `pinned_levels` levels of the tree pinned:
/// those pages are always buffer-resident (never a disk access), the buffer
/// available to the rest of the tree shrinks to B - pinned_pages, and the
/// pinned nodes are omitted from the model sums. `probs` must be in
/// summary-node order. pinned_levels = 0 reduces to ExpectedDiskAccesses.
PinnedModelResult ExpectedDiskAccessesPinned(
    const rtree::TreeSummary& summary, const std::vector<double>& probs,
    uint64_t buffer_pages, uint16_t pinned_levels);

/// Per-node probability that a batch of `batch_size` i.i.d. queries
/// accesses the node at least once: q_j = 1 - (1 - p_j)^Q. The batched
/// executor (rtree/batch.h) pins each distinct page once per batch, so at
/// batch granularity the workload behaves like a stream of "batch queries"
/// with these access probabilities — Eq. 5-6 apply verbatim with p -> q.
std::vector<double> BatchAccessProbabilities(const std::vector<double>& probs,
                                             uint64_t batch_size);

/// First-cut buffer model for the batched executor.
struct BatchedModelResult {
  /// Expected distinct pages pinned per batch (sum of q_j) — the batch's
  /// pool requests after within-batch collapse.
  double batch_node_accesses = 0.0;
  /// Expected steady-state disk accesses per query: Eq. 6 over the q_j
  /// (misses per batch) divided by the batch size.
  double disk_accesses = 0.0;
  /// Predicted effective hit rate, 1 - disk_accesses / EP, where EP is the
  /// bufferless per-query node accesses. Comparable to the measured
  /// 1 - disk_reads/node_accesses of bench/micro_batch_query: within-batch
  /// collapse makes repeated pages free, so this rises with batch size
  /// even on a pool too small for Eq. 5's distinct-page window.
  double effective_hit_rate = 0.0;
};

/// Applies Eq. 5-6 at batch granularity (see BatchAccessProbabilities):
/// N*_B is the number of *batches* filling the buffer, misses per batch is
/// sum_j q_j (1-q_j)^{N*_B}, and per-query disk accesses divide by the
/// batch size. batch_size <= 1 reduces exactly to ExpectedDiskAccesses.
BatchedModelResult ExpectedBatchedDiskAccesses(
    const std::vector<double>& probs, uint64_t buffer_pages,
    uint64_t batch_size);

/// One-call convenience: access probabilities + buffer model.
/// `centers` is required for data-driven specs.
Result<double> PredictDiskAccesses(const rtree::TreeSummary& summary,
                                   const QuerySpec& spec,
                                   uint64_t buffer_pages,
                                   const std::vector<geom::Point>* centers =
                                       nullptr);

}  // namespace rtb::model

#endif  // RTB_MODEL_COST_MODEL_H_
