// Per-node access probabilities (paper Sections 3.1 and 3.2).
//
// Given the MBRs of all nodes of a tree, these functions compute, for each
// node j, the probability A^Q_j that a random query accesses it, under the
// three query models of the paper:
//
//  * Uniform point queries: A_j = area(R_j ∩ U) — the Kamel-Faloutsos
//    observation that a node is visited iff the query point falls in its
//    MBR.
//  * Uniform region queries of size qx x qy: the query's top-right corner is
//    uniform over U' = [qx,1] x [qy,1] (so the whole query fits in the unit
//    square), and A_j = area(R'_j ∩ U') / area(U') where R' extends R by qx
//    and qy beyond its top-right corner — the paper's boundary-corrected
//    model, A_j = C*D / ((1-qx)(1-qy)).
//  * Data-driven queries: the query is centered at a uniformly chosen data
//    center, and A_j is the fraction of data centers that fall inside R_j
//    expanded by qx (resp. qy) about its center (Eq. 4; point queries are
//    the qx=qy=0 case).

#ifndef RTB_MODEL_ACCESS_PROB_H_
#define RTB_MODEL_ACCESS_PROB_H_

#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/summary.h"
#include "util/result.h"

namespace rtb::model {

/// Which of the paper's query distributions is being modeled.
enum class QueryModel { kUniform, kDataDriven };

/// A query workload: distribution plus region extent (0 x 0 = point query).
struct QuerySpec {
  QueryModel model = QueryModel::kUniform;
  double qx = 0.0;
  double qy = 0.0;

  static QuerySpec UniformPoint() { return QuerySpec{}; }
  static QuerySpec UniformRegion(double qx, double qy) {
    return QuerySpec{QueryModel::kUniform, qx, qy};
  }
  static QuerySpec DataDrivenPoint() {
    return QuerySpec{QueryModel::kDataDriven, 0.0, 0.0};
  }
  static QuerySpec DataDrivenRegion(double qx, double qy) {
    return QuerySpec{QueryModel::kDataDriven, qx, qy};
  }

  bool is_point() const { return qx == 0.0 && qy == 0.0; }
};

/// Probability that a uniform qx x qy region query (point query when both
/// are 0) accesses a node with MBR `r`. Boundary-corrected per Section 3.1.
/// Requires 0 <= qx < 1 and 0 <= qy < 1.
double UniformAccessProbability(const geom::Rect& r, double qx, double qy);

/// Access probabilities for every node in `summary` under uniform queries,
/// in summary node order.
Result<std::vector<double>> UniformAccessProbabilities(
    const rtree::TreeSummary& summary, double qx, double qy);

/// Access probabilities for every node under the data-driven model, where
/// `centers` are the data rectangle centers (Section 3.2). Runtime is
/// ~O(#nodes * boundary + #points) via a counting grid.
Result<std::vector<double>> DataDrivenAccessProbabilities(
    const rtree::TreeSummary& summary, const std::vector<geom::Point>& centers,
    double qx, double qy);

/// Dispatches on spec.model. For kDataDriven, `centers` must be non-null.
Result<std::vector<double>> AccessProbabilities(
    const rtree::TreeSummary& summary, const QuerySpec& spec,
    const std::vector<geom::Point>* centers = nullptr);

}  // namespace rtb::model

#endif  // RTB_MODEL_ACCESS_PROB_H_
