// Per-node access probabilities (paper Sections 3.1 and 3.2, extended).
//
// Given the MBRs of all nodes of a tree, these functions compute, for each
// node j, the probability A^Q_j that a random query accesses it, under the
// query classes of model/query_class.h:
//
//  * Uniform centers: the query's anchor is uniform over the unit square.
//    Point queries give A_j = area(R_j ∩ U) (Kamel-Faloutsos); qx x qy
//    regions use the paper's boundary-corrected model. The probability
//    factors per axis, A_j = Cx_j/(1-qx) * Cy_j/(1-qy) with
//    Cx_j = min(1, hi+qx) - max(lo, qx), which is what lets an *open* axis
//    drop out of the product: an open axis always overlaps the node, so its
//    factor is 1 and a partial-match query's access probability is the
//    remaining fixed axis's factor alone (the Eq. 5-6 extension).
//  * Data centers: the query is centered at a uniformly chosen data center,
//    and A_j is the fraction of data centers inside R_j expanded by qx/2
//    (resp. qy/2) per side (Eq. 4); an open axis expands to the whole axis.
//  * Cluster centers: the center is hotspot i (Zipf weight w_i) plus a
//    N(0, spread^2) offset per axis, so per hotspot the axis factor is the
//    Gaussian mass of the expanded MBR interval,
//    Φ((b-μ)/σ) - Φ((a-μ)/σ), and A_j = Σ_i w_i * fx_i * fy_i exactly
//    (the generator does not clamp centers to the unit square, and neither
//    does the model).

#ifndef RTB_MODEL_ACCESS_PROB_H_
#define RTB_MODEL_ACCESS_PROB_H_

#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "model/query_class.h"
#include "rtree/summary.h"
#include "util/result.h"

namespace rtb::model {

/// Compatibility alias: the legacy QuerySpec vocabulary (UniformPoint,
/// DataDrivenRegion, ...) lives on as QueryClass factories.
using QuerySpec = QueryClass;

/// Probability that a uniform qx x qy region query (point query when both
/// are 0) accesses a node with MBR `r`. Boundary-corrected per Section 3.1.
/// Requires 0 <= qx < 1 and 0 <= qy < 1.
double UniformAccessProbability(const geom::Rect& r, double qx, double qy);

/// Per-axis form of the same model, with open-axis support: an open axis
/// contributes factor 1 (the slab always overlaps the node on that axis).
double UniformAccessProbability(const geom::Rect& r, const AxisExtent& x,
                                const AxisExtent& y);

/// Access probabilities for every node in `summary` under uniform queries,
/// in summary node order.
Result<std::vector<double>> UniformAccessProbabilities(
    const rtree::TreeSummary& summary, const QueryClass& qc);
Result<std::vector<double>> UniformAccessProbabilities(
    const rtree::TreeSummary& summary, double qx, double qy);

/// Access probabilities for every node under the data-driven model, where
/// `centers` are the data rectangle centers (Section 3.2). Runtime is
/// ~O(#nodes * boundary + #points) via a counting grid.
Result<std::vector<double>> DataDrivenAccessProbabilities(
    const rtree::TreeSummary& summary, const std::vector<geom::Point>& centers,
    const QueryClass& qc);
Result<std::vector<double>> DataDrivenAccessProbabilities(
    const rtree::TreeSummary& summary, const std::vector<geom::Point>& centers,
    double qx, double qy);

/// Access probabilities under the clustered-hotspot model (exact Gaussian
/// mixture; see file comment). Hotspots are derived from qc.cluster via
/// DeriveHotspots, identically to the generator.
Result<std::vector<double>> ClusterAccessProbabilities(
    const rtree::TreeSummary& summary, const QueryClass& qc);

/// True when `center` names a center source AccessProbabilities can model
/// analytically ("uniform", "data", "cluster"). Custom generator
/// registrations (sim/query_gen.h) have no analytic model; the engine skips
/// prediction for them.
bool HasAnalyticModel(const std::string& center);

/// Dispatches on qc.center. For "data", `centers` must be non-null.
Result<std::vector<double>> AccessProbabilities(
    const rtree::TreeSummary& summary, const QueryClass& qc,
    const std::vector<geom::Point>* centers = nullptr);

}  // namespace rtb::model

#endif  // RTB_MODEL_ACCESS_PROB_H_
