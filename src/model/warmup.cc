#include "model/warmup.h"

#include <cmath>

#include "model/cost_model.h"
#include "util/macros.h"

namespace rtb::model {

std::vector<WarmupPoint> WarmupTransient(const std::vector<double>& probs,
                                         const std::vector<double>& at) {
  std::vector<WarmupPoint> out;
  out.reserve(at.size());
  for (double n : at) {
    RTB_CHECK(n >= 0.0);
    WarmupPoint point;
    point.queries = n;
    point.distinct_nodes = ExpectedDistinctNodes(probs, n);
    double ed = 0.0;
    for (double p : probs) {
      if (p <= 0.0 || p >= 1.0) continue;
      ed += p * std::exp(n * std::log1p(-p));
    }
    point.disk_accesses = ed;
    out.push_back(point);
  }
  return out;
}

std::vector<WarmupPoint> WarmupTransientGeometric(
    const std::vector<double>& probs, double max_queries, int samples) {
  RTB_CHECK(max_queries >= 1.0 && samples >= 2);
  std::vector<double> at;
  at.reserve(static_cast<size_t>(samples));
  double ratio = std::pow(max_queries, 1.0 / (samples - 1));
  double n = 1.0;
  for (int i = 0; i < samples; ++i) {
    double rounded = std::floor(n + 0.5);
    if (at.empty() || rounded > at.back()) at.push_back(rounded);
    n *= ratio;
  }
  return WarmupTransient(probs, at);
}

}  // namespace rtb::model
