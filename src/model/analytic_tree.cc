#include "model/analytic_tree.h"

#include <algorithm>
#include <cmath>

namespace rtb::model {
namespace {

Status ValidateInputs(const DataStats& stats, double effective_fanout) {
  if (stats.num_rects == 0) {
    return Status::InvalidArgument("data set must be non-empty");
  }
  if (stats.avg_x_extent < 0.0 || stats.avg_y_extent < 0.0) {
    return Status::InvalidArgument("extents must be non-negative");
  }
  if (effective_fanout <= 1.0) {
    return Status::InvalidArgument("effective fanout must exceed 1");
  }
  return Status::OK();
}

}  // namespace

Result<PredictedTree> PredictTreeShape(const DataStats& stats,
                                       double effective_fanout) {
  RTB_RETURN_IF_ERROR(ValidateInputs(stats, effective_fanout));
  PredictedTree tree;
  const double n = static_cast<double>(stats.num_rects);
  const double f = effective_fanout;

  double entries_at_level = n;  // Entries to be grouped at this level.
  for (;;) {
    uint64_t nodes = static_cast<uint64_t>(std::ceil(entries_at_level / f));
    nodes = std::max<uint64_t>(nodes, 1);
    tree.level_counts.push_back(nodes);
    // Under uniformity a node's subtree covers nodes^-1 of the square; its
    // MBR is roughly the square of that area.
    double side = std::sqrt(1.0 / static_cast<double>(nodes));
    side = std::min(side, 1.0);
    if (tree.level_side.empty()) {
      // Leaf MBRs are inflated by the average data-rectangle extent.
      side = std::min(side + (stats.avg_x_extent + stats.avg_y_extent) / 2.0,
                      1.0);
    }
    tree.level_side.push_back(side);
    if (nodes == 1) break;
    entries_at_level = static_cast<double>(nodes);
  }
  tree.height = static_cast<uint16_t>(tree.level_counts.size());
  return tree;
}

Result<double> AnalyticExpectedNodeAccesses(const DataStats& stats,
                                            double effective_fanout,
                                            double qx, double qy) {
  RTB_ASSIGN_OR_RETURN(std::vector<double> probs,
                       AnalyticAccessProbabilities(stats, effective_fanout,
                                                   qx, qy));
  double sum = 0.0;
  for (double p : probs) sum += p;
  return sum;
}

Result<std::vector<double>> AnalyticAccessProbabilities(
    const DataStats& stats, double effective_fanout, double qx, double qy) {
  if (qx < 0.0 || qx >= 1.0 || qy < 0.0 || qy >= 1.0) {
    return Status::InvalidArgument("query extents must lie in [0, 1)");
  }
  RTB_ASSIGN_OR_RETURN(PredictedTree tree,
                       PredictTreeShape(stats, effective_fanout));
  std::vector<double> probs;
  probs.reserve(tree.TotalNodes());
  for (uint16_t level = 0; level < tree.height; ++level) {
    const double s = tree.level_side[level];
    // Kamel-Faloutsos extended-rectangle probability for an s x s MBR,
    // normalized by the admissible corner region (Section 3.1) and clamped.
    double p = ((s + qx) * (s + qy)) / ((1.0 - qx) * (1.0 - qy));
    p = std::clamp(p, 0.0, 1.0);
    for (uint64_t j = 0; j < tree.level_counts[level]; ++j) {
      probs.push_back(p);
    }
  }
  return probs;
}

}  // namespace rtb::model
