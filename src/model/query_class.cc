#include "model/query_class.h"

#include <cmath>

#include "util/rng.h"

namespace rtb::model {

namespace {

Status BadAxis(const char* axis, const char* what) {
  return Status::InvalidArgument(std::string("query class: ") + axis + " " +
                                 what);
}

Status ValidateAxis(const AxisExtent& ax, bool uniform_center,
                    const char* name) {
  if (ax.open) return Status::OK();
  if (!std::isfinite(ax.length) || ax.length < 0.0) {
    return BadAxis(name, "extent must be finite and >= 0");
  }
  if (uniform_center && ax.length >= 1.0) {
    // The uniform model anchors the query inside the unit square; an
    // extent >= 1 cannot fit.
    return BadAxis(name, "extent must be < 1 for uniform centers");
  }
  return Status::OK();
}

}  // namespace

Status QueryClass::Validate() const {
  const bool uniform_center = center == kCenterUniform;
  RTB_RETURN_IF_ERROR(ValidateAxis(x, uniform_center, "x"));
  RTB_RETURN_IF_ERROR(ValidateAxis(y, uniform_center, "y"));
  if (center == kCenterCluster) {
    if (cluster.hotspots == 0) {
      return Status::InvalidArgument(
          "query class: cluster needs at least one hotspot");
    }
    if (!std::isfinite(cluster.spread) || cluster.spread < 0.0) {
      return Status::InvalidArgument(
          "query class: cluster spread must be finite and >= 0");
    }
    if (!std::isfinite(cluster.skew) || cluster.skew < 0.0) {
      return Status::InvalidArgument(
          "query class: cluster skew must be finite and >= 0");
    }
  }
  return Status::OK();
}

std::vector<double> ZipfWeights(uint32_t k, double skew) {
  std::vector<double> weights(k, 0.0);
  double total = 0.0;
  for (uint32_t i = 0; i < k; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + 1.0, -skew);
    total += weights[i];
  }
  for (double& w : weights) w /= total;
  return weights;
}

std::vector<geom::Point> DeriveHotspots(const ClusterParams& params) {
  Rng rng(params.placement_seed);
  std::vector<geom::Point> hotspots;
  hotspots.reserve(params.hotspots);
  for (uint32_t i = 0; i < params.hotspots; ++i) {
    const double hx = rng.NextDouble();
    const double hy = rng.NextDouble();
    hotspots.push_back(geom::Point{hx, hy});
  }
  return hotspots;
}

}  // namespace rtb::model
