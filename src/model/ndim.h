// D-dimensional generalization of the paper's model pipeline (Section 3:
// "Generalizations to higher dimensions are straightforward").
//
//  * PackStrNd builds the geometric skeleton of a packed R-tree over
//    D-dimensional boxes using recursive Sort-Tile ordering (STR
//    generalizes to any dimension, unlike the 2-D Hilbert sort used by HS).
//    It produces exactly what the paper's models consume: the list of node
//    MBRs at every level, with parent links.
//  * UniformAccessProbabilitiesNd is the boundary-corrected access
//    probability of Section 3.1 with the product taken over D dimensions.
//  * The buffer model itself (cost_model.h) is dimension-free: feed it
//    these probabilities unchanged.
//
// Everything here is header-only (templates over D); tests instantiate
// D = 2 (cross-checked against the concrete 2-D pipeline), 3 and 4.

#ifndef RTB_MODEL_NDIM_H_
#define RTB_MODEL_NDIM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geom/boxnd.h"
#include "util/macros.h"

namespace rtb::model {

/// One node of a packed D-dimensional tree skeleton.
template <size_t D>
struct NdNodeInfo {
  geom::BoxNd<D> mbr;
  uint16_t level = 0;          // Leaf = 0.
  uint32_t parent = 0xFFFFFFFFu;
};

/// Geometric skeleton of a packed tree: nodes in preorder (root first).
template <size_t D>
struct NdTreeSummary {
  std::vector<NdNodeInfo<D>> nodes;
  uint16_t height = 0;

  size_t NumNodes() const { return nodes.size(); }
};

namespace ndim_internal {

// A node under construction: its MBR plus the indices of its children in
// the level below (empty for leaves — their children are data boxes, which
// are not nodes). Child indices survive the sort-tiling of their own level
// because they point into the already-frozen level below.
template <size_t D>
struct BuildNode {
  geom::BoxNd<D> mbr;
  std::vector<uint32_t> children;
};

// Recursive sort-tile over [begin, end) of `nodes`: orders them so that
// consecutive runs of `group` elements are spatially coherent. Splits along
// `dim` into ceil(pages^(1/remaining))-sized slabs, recursing with the next
// dimension inside each slab.
template <size_t D>
void SortTile(std::vector<BuildNode<D>>* nodes, size_t begin, size_t end,
              size_t group, size_t dim) {
  const size_t count = end - begin;
  if (count <= group || dim >= D) return;
  std::sort(nodes->begin() + static_cast<ptrdiff_t>(begin),
            nodes->begin() + static_cast<ptrdiff_t>(end),
            [dim](const BuildNode<D>& a, const BuildNode<D>& b) {
              return a.mbr.Center()[dim] < b.mbr.Center()[dim];
            });
  if (dim + 1 >= D) return;
  const size_t pages = (count + group - 1) / group;
  const double remaining = static_cast<double>(D - dim);
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::pow(static_cast<double>(pages), 1.0 / remaining)));
  // Slabs hold a whole number of `group`-sized pages so that no page
  // straddles a slab boundary (matches the concrete 2-D STR's s*n slabs).
  const size_t pages_per_slab = (pages + slabs - 1) / slabs;
  const size_t slab_size = pages_per_slab * group;
  for (size_t s = begin; s < end; s += slab_size) {
    SortTile(nodes, s, std::min(s + slab_size, end), group, dim + 1);
  }
}

}  // namespace ndim_internal

/// Packs `boxes` into a tree skeleton with `fanout` entries per node using
/// recursive sort-tile ordering at every level. Requires fanout >= 2.
template <size_t D>
NdTreeSummary<D> PackStrNd(std::vector<geom::BoxNd<D>> boxes,
                           uint32_t fanout) {
  RTB_CHECK(fanout >= 2);
  using ndim_internal::BuildNode;

  // Treat the input boxes as the pseudo-level below the leaves.
  std::vector<BuildNode<D>> current;
  current.reserve(boxes.size());
  for (const geom::BoxNd<D>& b : boxes) {
    current.push_back(BuildNode<D>{b, {}});
  }

  // Build node levels bottom-up; each stored level is frozen in the exact
  // order its parents group it.
  std::vector<std::vector<BuildNode<D>>> levels;
  bool grouping_data = true;
  for (;;) {
    if (current.size() <= fanout) {
      // One node swallows everything: for the data level that is the
      // leaf-root; otherwise it is the root over the previous level.
      BuildNode<D> root;
      root.mbr = geom::BoxNd<D>::Empty();
      for (uint32_t i = 0; i < current.size(); ++i) {
        root.mbr = geom::Union(root.mbr, current[i].mbr);
        if (!grouping_data) root.children.push_back(i);
      }
      if (!grouping_data) {
        levels.push_back(std::move(current));
      }
      levels.push_back({std::move(root)});
      break;
    }
    ndim_internal::SortTile(&current, 0, current.size(),
                            static_cast<size_t>(fanout), 0);
    std::vector<BuildNode<D>> parents;
    parents.reserve((current.size() + fanout - 1) / fanout);
    for (size_t i = 0; i < current.size();
         i += static_cast<size_t>(fanout)) {
      size_t end = std::min(i + static_cast<size_t>(fanout), current.size());
      BuildNode<D> parent;
      parent.mbr = geom::BoxNd<D>::Empty();
      for (size_t j = i; j < end; ++j) {
        parent.mbr = geom::Union(parent.mbr, current[j].mbr);
        if (!grouping_data) parent.children.push_back(static_cast<uint32_t>(j));
      }
      parents.push_back(std::move(parent));
    }
    if (!grouping_data) {
      levels.push_back(std::move(current));
    }
    current = std::move(parents);
    grouping_data = false;
  }

  NdTreeSummary<D> summary;
  summary.height = static_cast<uint16_t>(levels.size());

  // Emit preorder from the root (levels.back()[0]).
  struct Emitter {
    const std::vector<std::vector<BuildNode<D>>>* levels;
    NdTreeSummary<D>* out;

    void Emit(size_t level_index, size_t node, uint32_t parent) {
      uint32_t my_index = static_cast<uint32_t>(out->nodes.size());
      const BuildNode<D>& build = (*levels)[level_index][node];
      NdNodeInfo<D> info;
      info.mbr = build.mbr;
      info.level = static_cast<uint16_t>(level_index);
      info.parent = parent;
      out->nodes.push_back(info);
      for (uint32_t child : build.children) {
        Emit(level_index - 1, child, my_index);
      }
    }
  };
  Emitter emitter{&levels, &summary};
  emitter.Emit(levels.size() - 1, 0, 0xFFFFFFFFu);
  return summary;
}

/// Boundary-corrected uniform access probability in D dimensions: the
/// query's "upper corner" is uniform over prod_d [q_d, 1], and node R is
/// accessed iff that corner falls in R extended by q_d per dimension,
/// intersected with the admissible region (Section 3.1 generalized).
template <size_t D>
double UniformAccessProbabilityNd(const geom::BoxNd<D>& r,
                                  const std::array<double, D>& q) {
  if (r.is_empty()) return 0.0;
  double p = 1.0;
  for (size_t d = 0; d < D; ++d) {
    RTB_DCHECK(q[d] >= 0.0 && q[d] < 1.0);
    double term = std::min(1.0, r.hi[d] + q[d]) - std::max(r.lo[d], q[d]);
    if (term <= 0.0) return 0.0;
    p *= term / (1.0 - q[d]);
  }
  return std::clamp(p, 0.0, 1.0);
}

/// Access probabilities for every node of an Nd summary, in node order.
/// Feed the result directly into ExpectedDiskAccesses (cost_model.h).
template <size_t D>
std::vector<double> UniformAccessProbabilitiesNd(
    const NdTreeSummary<D>& summary, const std::array<double, D>& q) {
  std::vector<double> probs;
  probs.reserve(summary.NumNodes());
  for (const NdNodeInfo<D>& node : summary.nodes) {
    probs.push_back(UniformAccessProbabilityNd(node.mbr, q));
  }
  return probs;
}

}  // namespace rtb::model

#endif  // RTB_MODEL_NDIM_H_
