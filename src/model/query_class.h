// The unified query-class description.
//
// One QueryClass value describes a query workload for every layer of the
// system: the spec parser (engine/spec.h), the query generators
// (sim/query_gen.h), the analytic model (model/access_prob.h,
// model/cost_model.h), engine reports, rtb_cli, and the wire protocol's
// open-bound SEARCH encoding. It factors a class into three independent
// choices:
//
//  * a center source — where query rectangles land:
//      "uniform"  corner-anchored uniform placement (Section 3.1),
//      "data"     centered on a uniformly chosen data-rectangle center
//                 (Section 3.2, Eq. 4),
//      "cluster"  centered near one of k Zipf-weighted Gaussian hotspots
//                 (skewed workloads; beyond the paper);
//  * a per-axis extent, where an axis is either Fixed(length) or Open() —
//    an open axis is unconstrained, turning the query into a partial-match
//    query (one-dimensional slab) in the sense of the quadtree literature;
//  * for "cluster", the hotspot parameters (count, spread, skew, placement
//    seed), which both the generator and the analytic model derive the
//    same hotspot set from.
//
// model::QuerySpec is an alias of QueryClass kept for compatibility; the
// old factory names (UniformPoint, DataDrivenRegion, ...) construct the
// equivalent QueryClass values.

#ifndef RTB_MODEL_QUERY_CLASS_H_
#define RTB_MODEL_QUERY_CLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "util/result.h"

namespace rtb::model {

// Canonical center-source names (QueryClass::center, spec "model" field).
inline constexpr char kCenterUniform[] = "uniform";
inline constexpr char kCenterData[] = "data";
inline constexpr char kCenterCluster[] = "cluster";

/// One axis of a query: a fixed extent, or open (unconstrained — the query
/// spans the whole axis, encoded as [-inf, +inf] on generated rectangles).
struct AxisExtent {
  double length = 0.0;
  bool open = false;

  static AxisExtent Fixed(double length) { return AxisExtent{length, false}; }
  static AxisExtent Open() { return AxisExtent{0.0, true}; }

  bool is_point() const { return !open && length == 0.0; }

  friend bool operator==(const AxisExtent& a, const AxisExtent& b) {
    return a.open == b.open && (a.open || a.length == b.length);
  }
};

/// Hotspot parameters for the "cluster" center source. Query centers are
/// drawn by picking hotspot i with Zipf-like probability w_i ∝ 1/(i+1)^skew
/// and adding an isotropic Gaussian offset of standard deviation `spread`
/// per axis. The hotspot locations themselves are uniform in the unit
/// square, derived deterministically from `placement_seed` — independent of
/// the per-worker query streams, so every worker (and the analytic model)
/// sees the same hotspot set.
struct ClusterParams {
  uint32_t hotspots = 16;
  double spread = 0.05;
  double skew = 1.0;            // 0 = uniform over hotspots.
  uint64_t placement_seed = 1;

  friend bool operator==(const ClusterParams& a, const ClusterParams& b) {
    return a.hotspots == b.hotspots && a.spread == b.spread &&
           a.skew == b.skew && a.placement_seed == b.placement_seed;
  }
};

/// The unified query-class description (see file comment).
struct QueryClass {
  std::string center = kCenterUniform;
  AxisExtent x;
  AxisExtent y;
  ClusterParams cluster;  // Consulted only when center == "cluster".

  // --- Factories (the first four are the legacy QuerySpec vocabulary). ---
  static QueryClass UniformPoint() { return QueryClass{}; }
  static QueryClass UniformRegion(double qx, double qy) {
    return QueryClass{kCenterUniform, AxisExtent::Fixed(qx),
                      AxisExtent::Fixed(qy), {}};
  }
  static QueryClass DataDrivenPoint() {
    return QueryClass{kCenterData, {}, {}, {}};
  }
  static QueryClass DataDrivenRegion(double qx, double qy) {
    return QueryClass{kCenterData, AxisExtent::Fixed(qx),
                      AxisExtent::Fixed(qy), {}};
  }
  /// Partial-match on x: the x extent is fixed (a vertical slab of width
  /// qx), y is open.
  static QueryClass PartialMatchX(double qx,
                                  const std::string& center = kCenterUniform) {
    return QueryClass{center, AxisExtent::Fixed(qx), AxisExtent::Open(), {}};
  }
  /// Partial-match on y: the y extent is fixed, x is open.
  static QueryClass PartialMatchY(double qy,
                                  const std::string& center = kCenterUniform) {
    return QueryClass{center, AxisExtent::Open(), AxisExtent::Fixed(qy), {}};
  }
  static QueryClass Clustered(double qx, double qy,
                              const ClusterParams& params = {}) {
    return QueryClass{kCenterCluster, AxisExtent::Fixed(qx),
                      AxisExtent::Fixed(qy), params};
  }

  bool is_point() const { return x.is_point() && y.is_point(); }
  bool has_open_axis() const { return x.open || y.open; }

  /// Structural checks every consumer shares: finite non-negative fixed
  /// extents (uniform centers additionally require them < 1 so the query
  /// fits in the unit square), and sane cluster parameters when the center
  /// source is "cluster". Consumers layer their own checks on top (the
  /// spec engine rejects unknown center sources, mixed classes reject open
  /// axes, ...).
  Status Validate() const;
};

/// Normalized Zipf-like weights w_i ∝ 1/(i+1)^skew for i in [0, k).
/// skew == 0 gives the uniform distribution over hotspots.
std::vector<double> ZipfWeights(uint32_t k, double skew);

/// The hotspot locations for `params`: `hotspots` points uniform in the
/// unit square drawn from an Rng seeded with `placement_seed`. Both the
/// cluster generator and the cluster analytic model call this, which is
/// what keeps measured and predicted describing the same workload.
std::vector<geom::Point> DeriveHotspots(const ClusterParams& params);

}  // namespace rtb::model

#endif  // RTB_MODEL_QUERY_CLASS_H_
