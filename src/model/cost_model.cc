#include "model/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstddef>

#include "util/macros.h"

namespace rtb::model {

double ExpectedNodeAccesses(const std::vector<double>& probs) {
  double sum = 0.0;
  for (double p : probs) sum += p;
  return sum;
}

double KamelFaloutsosClosedForm(const rtree::TreeSummary& summary, double qx,
                                double qy) {
  return summary.TotalArea() + qx * summary.TotalYExtent() +
         qy * summary.TotalXExtent() +
         static_cast<double>(summary.NumNodes()) * qx * qy;
}

double ExpectedDistinctNodes(const std::vector<double>& probs, double n) {
  RTB_DCHECK(n >= 0.0);
  double sum = 0.0;
  for (double p : probs) {
    // 1 - (1-p)^n, computed stably for small p via expm1/log1p.
    if (p >= 1.0) {
      sum += n > 0.0 ? 1.0 : 0.0;
    } else if (p > 0.0) {
      sum += -std::expm1(n * std::log1p(-p));
    }
  }
  return sum;
}

uint64_t QueriesToFillBuffer(const std::vector<double>& probs,
                             uint64_t buffer_pages) {
  if (buffer_pages == 0) return 0;
  // D(N) -> #nodes with p > 0 as N -> inf; if the buffer can hold all of
  // them, it never fills.
  size_t reachable = 0;
  for (double p : probs) {
    if (p > 0.0) ++reachable;
  }
  if (buffer_pages >= reachable) return kNeverFills;

  const double target = static_cast<double>(buffer_pages);
  // Exponential search for an upper bound, then binary search for the
  // smallest N with D(N) >= B.
  uint64_t hi = 1;
  while (ExpectedDistinctNodes(probs, static_cast<double>(hi)) < target) {
    RTB_CHECK(hi < (uint64_t{1} << 62));
    hi *= 2;
  }
  uint64_t lo = hi / 2;  // D(lo) < target (or lo == 0).
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (ExpectedDistinctNodes(probs, static_cast<double>(mid)) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

double ExpectedDiskAccesses(const std::vector<double>& probs,
                            uint64_t buffer_pages) {
  uint64_t n_star = QueriesToFillBuffer(probs, buffer_pages);
  if (n_star == kNeverFills) return 0.0;
  double sum = 0.0;
  const double n = static_cast<double>(n_star);
  for (double p : probs) {
    if (p <= 0.0) continue;
    if (p >= 1.0) continue;  // Always resident once the buffer is warm.
    sum += p * std::exp(n * std::log1p(-p));
  }
  return sum;
}

double QueriesToFillBufferReal(const std::vector<double>& probs,
                               uint64_t buffer_pages) {
  uint64_t n_star = QueriesToFillBuffer(probs, buffer_pages);
  if (n_star == kNeverFills) {
    return std::numeric_limits<double>::infinity();
  }
  if (n_star == 0) return 0.0;
  const double target = static_cast<double>(buffer_pages);
  double lo = static_cast<double>(n_star - 1);
  double hi = static_cast<double>(n_star);
  for (int iter = 0; iter < 60; ++iter) {
    double mid = (lo + hi) / 2.0;
    if (ExpectedDistinctNodes(probs, mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double ExpectedDiskAccessesContinuous(const std::vector<double>& probs,
                                      uint64_t buffer_pages) {
  double n = QueriesToFillBufferReal(probs, buffer_pages);
  if (std::isinf(n)) return 0.0;
  double sum = 0.0;
  for (double p : probs) {
    if (p <= 0.0 || p >= 1.0) continue;
    sum += p * std::exp(n * std::log1p(-p));
  }
  return sum;
}

PinnedModelResult ExpectedDiskAccessesPinned(
    const rtree::TreeSummary& summary, const std::vector<double>& probs,
    uint64_t buffer_pages, uint16_t pinned_levels) {
  RTB_CHECK(probs.size() == summary.NumNodes());
  PinnedModelResult result;
  result.pinned_pages = summary.PagesInTopLevels(pinned_levels);
  if (result.pinned_pages > buffer_pages) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;

  if (pinned_levels == 0) {
    result.disk_accesses = ExpectedDiskAccesses(probs, buffer_pages);
    return result;
  }

  // Nodes at paper levels [0, pinned_levels) — i.e. internal levels
  // >= height - pinned_levels — are pinned: always hits, out of the model.
  const uint16_t height = summary.height();
  const int min_unpinned_exclusive = height - pinned_levels;  // May be <= 0.
  std::vector<double> rest;
  rest.reserve(probs.size());
  const auto& nodes = summary.nodes();
  for (size_t j = 0; j < nodes.size(); ++j) {
    if (static_cast<int>(nodes[j].level) >= min_unpinned_exclusive) continue;
    rest.push_back(probs[j]);
  }
  const uint64_t effective_buffer = buffer_pages - result.pinned_pages;
  if (effective_buffer == 0) {
    // No frames left for unpinned pages: every access to them goes to disk.
    result.disk_accesses = ExpectedNodeAccesses(rest);
    return result;
  }
  result.disk_accesses = ExpectedDiskAccesses(rest, effective_buffer);
  return result;
}

std::vector<double> BatchAccessProbabilities(const std::vector<double>& probs,
                                             uint64_t batch_size) {
  const double q = static_cast<double>(batch_size);
  std::vector<double> batched;
  batched.reserve(probs.size());
  for (double p : probs) {
    if (p <= 0.0) {
      batched.push_back(0.0);
    } else if (p >= 1.0) {
      batched.push_back(1.0);
    } else {
      // 1 - (1-p)^Q, computed stably for small p via expm1/log1p.
      batched.push_back(-std::expm1(q * std::log1p(-p)));
    }
  }
  return batched;
}

BatchedModelResult ExpectedBatchedDiskAccesses(
    const std::vector<double>& probs, uint64_t buffer_pages,
    uint64_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  BatchedModelResult result;
  const std::vector<double> batched =
      BatchAccessProbabilities(probs, batch_size);
  result.batch_node_accesses = ExpectedNodeAccesses(batched);
  const double misses_per_batch =
      ExpectedDiskAccesses(batched, buffer_pages);
  result.disk_accesses = misses_per_batch / static_cast<double>(batch_size);
  const double ep = ExpectedNodeAccesses(probs);
  result.effective_hit_rate =
      ep > 0.0 ? std::min(1.0, std::max(0.0, 1.0 - result.disk_accesses / ep))
               : 0.0;
  return result;
}

Result<double> PredictDiskAccesses(const rtree::TreeSummary& summary,
                                   const QuerySpec& spec,
                                   uint64_t buffer_pages,
                                   const std::vector<geom::Point>* centers) {
  RTB_ASSIGN_OR_RETURN(std::vector<double> probs,
                       AccessProbabilities(summary, spec, centers));
  return ExpectedDiskAccesses(probs, buffer_pages);
}

}  // namespace rtb::model
