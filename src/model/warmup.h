// Buffer warm-up transient (Bhide-Dan-Dias, paper ref [2]).
//
// While the buffer is filling, the probability that node j is resident
// after N queries is 1 - (1 - p_j)^N, so the expected disk accesses of the
// (N+1)-th query are ED(N) = sum_j p_j (1 - p_j)^N. The paper's key
// borrowed insight (Section 3.3) is that the steady-state value is well
// approximated by ED at N* — the moment the buffer first becomes full.
// These helpers expose the whole transient so the claim itself can be
// plotted and tested, not just used.

#ifndef RTB_MODEL_WARMUP_H_
#define RTB_MODEL_WARMUP_H_

#include <cstdint>
#include <vector>

namespace rtb::model {

/// One point of the warm-up transient.
struct WarmupPoint {
  double queries = 0.0;          // N.
  double distinct_nodes = 0.0;   // D(N): expected buffer occupancy.
  double disk_accesses = 0.0;    // ED(N): expected misses of query N+1.
};

/// Evaluates the transient at the given query counts.
std::vector<WarmupPoint> WarmupTransient(const std::vector<double>& probs,
                                         const std::vector<double>& at);

/// Evaluates the transient at `samples` geometrically spaced points from 1
/// to `max_queries` (inclusive; duplicates removed).
std::vector<WarmupPoint> WarmupTransientGeometric(
    const std::vector<double>& probs, double max_queries, int samples);

}  // namespace rtb::model

#endif  // RTB_MODEL_WARMUP_H_
