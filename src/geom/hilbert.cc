#include "geom/hilbert.h"

#include <algorithm>

namespace rtb::geom {
namespace {

// Rotates/flips a quadrant so the curve orientation is correct. Classic
// iterative formulation (Warren, "Hacker's Delight" / Wikipedia d2xy-xy2d).
void Rot(uint64_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = static_cast<uint32_t>(n - 1 - *x);
      *y = static_cast<uint32_t>(n - 1 - *y);
    }
    std::swap(*x, *y);
  }
}

}  // namespace

uint64_t HilbertCurve2D::XYToIndex(uint32_t x, uint32_t y) const {
  RTB_DCHECK(x < side() && y < side());
  uint64_t d = 0;
  for (uint64_t s = side() / 2; s > 0; s /= 2) {
    uint32_t rx = (x & s) > 0 ? 1 : 0;
    uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    Rot(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertCurve2D::IndexToXY(uint64_t d, uint32_t* x, uint32_t* y) const {
  RTB_DCHECK(d < num_cells());
  uint64_t t = d;
  *x = 0;
  *y = 0;
  for (uint64_t s = 1; s < side(); s *= 2) {
    uint32_t rx = 1 & static_cast<uint32_t>(t / 2);
    uint32_t ry = 1 & static_cast<uint32_t>(t ^ rx);
    Rot(s, x, y, rx, ry);
    *x += static_cast<uint32_t>(s * rx);
    *y += static_cast<uint32_t>(s * ry);
    t /= 4;
  }
}

uint64_t HilbertCurve2D::PointToIndex(Point p) const {
  double cx = std::clamp(p.x, 0.0, 1.0);
  double cy = std::clamp(p.y, 0.0, 1.0);
  // Quantize so that 1.0 maps to the last cell, not one past it.
  uint64_t n = side();
  auto quantize = [n](double v) -> uint32_t {
    uint64_t q = static_cast<uint64_t>(v * static_cast<double>(n));
    if (q >= n) q = n - 1;
    return static_cast<uint32_t>(q);
  };
  return XYToIndex(quantize(cx), quantize(cy));
}

}  // namespace rtb::geom
