#include "geom/point_grid.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace rtb::geom {

PointGrid::PointGrid(const std::vector<Point>& points,
                     uint32_t cells_per_side) {
  if (cells_per_side == 0) {
    cells_per_side = static_cast<uint32_t>(
        std::max(1.0, std::sqrt(static_cast<double>(points.size()))));
  }
  side_ = cells_per_side;

  bounds_ = Rect::Empty();
  for (const Point& p : points) {
    bounds_ = Union(bounds_, Rect::FromPoint(p));
  }
  if (bounds_.is_empty()) bounds_ = Rect::UnitSquare();
  // Guard against zero extents (all points collinear).
  double w = bounds_.width() > 0.0 ? bounds_.width() : 1.0;
  double h = bounds_.height() > 0.0 ? bounds_.height() : 1.0;
  cell_w_ = w / side_;
  cell_h_ = h / side_;

  // Counting sort of points into cells.
  const size_t num_cells = static_cast<size_t>(side_) * side_;
  std::vector<uint32_t> counts(num_cells, 0);
  std::vector<uint32_t> cell_of(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    uint32_t c = CellY(points[i].y) * side_ + CellX(points[i].x);
    cell_of[i] = c;
    ++counts[c];
  }
  starts_.assign(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) starts_[c + 1] = starts_[c] + counts[c];
  points_.resize(points.size());
  std::vector<uint32_t> cursor(starts_.begin(), starts_.end() - 1);
  for (size_t i = 0; i < points.size(); ++i) {
    points_[cursor[cell_of[i]]++] = points[i];
  }

  // Per-row prefix sums of cell counts for O(1) full-run counting.
  row_prefix_.assign(static_cast<size_t>(side_) * (side_ + 1), 0);
  for (uint32_t cy = 0; cy < side_; ++cy) {
    uint64_t acc = 0;
    for (uint32_t cx = 0; cx < side_; ++cx) {
      row_prefix_[static_cast<size_t>(cy) * (side_ + 1) + cx] = acc;
      acc += counts[static_cast<size_t>(cy) * side_ + cx];
    }
    row_prefix_[static_cast<size_t>(cy) * (side_ + 1) + side_] = acc;
  }
}

uint32_t PointGrid::CellX(double x) const {
  double t = (x - bounds_.lo.x) / cell_w_;
  // Clamp in double before the cast: t may be +/-inf (open-axis query
  // rectangles) or exceed uint32 range, where the cast itself would be UB.
  if (!(t >= 0.0)) return 0;
  if (t >= static_cast<double>(side_)) return side_ - 1;
  return static_cast<uint32_t>(t);
}

uint32_t PointGrid::CellY(double y) const {
  double t = (y - bounds_.lo.y) / cell_h_;
  if (!(t >= 0.0)) return 0;
  if (t >= static_cast<double>(side_)) return side_ - 1;
  return static_cast<uint32_t>(t);
}

uint64_t PointGrid::CountInRect(const Rect& rect) const {
  if (rect.is_empty() || !rect.Intersects(bounds_)) return 0;
  const uint32_t cx0 = CellX(rect.lo.x);
  const uint32_t cx1 = CellX(rect.hi.x);
  const uint32_t cy0 = CellY(rect.lo.y);
  const uint32_t cy1 = CellY(rect.hi.y);

  uint64_t total = 0;
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    // A cell is "interior" when the query covers it entirely; interior runs
    // are counted via prefix sums, boundary cells are scanned.
    const bool row_interior =
        rect.lo.y <= bounds_.lo.y + cy * cell_h_ &&
        rect.hi.y >= bounds_.lo.y + (cy + 1) * cell_h_;
    uint32_t scan_begin = cx0, scan_end = cx1;
    if (row_interior && cx1 > cx0 + 1) {
      // Columns strictly inside the x-range may still touch the query edge;
      // interior columns are (cx0, cx1) exclusive when the query spans the
      // full cell width there — always true for columns between cx0 and cx1.
      const size_t base = static_cast<size_t>(cy) * (side_ + 1);
      total += row_prefix_[base + cx1] - row_prefix_[base + cx0 + 1];
      // Scan just the two boundary columns.
      for (uint32_t cx : {cx0, cx1}) {
        const size_t cell = static_cast<size_t>(cy) * side_ + cx;
        for (uint32_t i = starts_[cell]; i < starts_[cell + 1]; ++i) {
          if (rect.Contains(points_[i])) ++total;
        }
      }
      continue;
    }
    for (uint32_t cx = scan_begin; cx <= scan_end; ++cx) {
      const size_t cell = static_cast<size_t>(cy) * side_ + cx;
      for (uint32_t i = starts_[cell]; i < starts_[cell + 1]; ++i) {
        if (rect.Contains(points_[i])) ++total;
      }
    }
  }
  return total;
}

}  // namespace rtb::geom
