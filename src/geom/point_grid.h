// PointGrid: exact orthogonal range counting over a static point set.
//
// The data-driven access model (paper Section 3.2) needs, for every node
// MBR, the number of data centers inside the expanded MBR — naively
// O(#nodes x #points). PointGrid buckets the points into a uniform grid with
// per-column prefix sums: cells fully covered by the query rectangle are
// counted in O(1) per cell run, and only boundary cells are scanned, so
// counts stay exact.

#ifndef RTB_GEOM_POINT_GRID_H_
#define RTB_GEOM_POINT_GRID_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace rtb::geom {

/// Immutable spatial index for counting points in axis-parallel rectangles
/// (closed containment, matching Rect::Contains).
class PointGrid {
 public:
  /// Builds over `points`. `cells_per_side` 0 picks ~sqrt(#points)
  /// automatically. The grid covers the bounding box of the points; queries
  /// may extend beyond it.
  explicit PointGrid(const std::vector<Point>& points,
                     uint32_t cells_per_side = 0);

  /// Number of indexed points inside `rect` (boundary inclusive).
  uint64_t CountInRect(const Rect& rect) const;

  size_t num_points() const { return points_.size(); }

 private:
  // Cell index helpers; coordinates clamp to the grid.
  uint32_t CellX(double x) const;
  uint32_t CellY(double y) const;

  uint32_t side_ = 1;
  Rect bounds_;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  // Points bucketed by cell, concatenated row-major; cell (cx, cy) owns
  // [starts_[cy*side_+cx], starts_[cy*side_+cx+1]).
  std::vector<Point> points_;
  std::vector<uint32_t> starts_;
  // prefix_[cy*(side_+1)+cx] = #points in row cy, columns [0, cx).
  std::vector<uint64_t> row_prefix_;
};

}  // namespace rtb::geom

#endif  // RTB_GEOM_POINT_GRID_H_
