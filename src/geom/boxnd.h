// D-dimensional axis-parallel boxes.
//
// The paper notes "generalizations to higher dimensions are
// straightforward" (Section 3); this header makes that concrete. The buffer
// model (model/cost_model.h) is already dimension-free — it consumes plain
// access-probability vectors — so all the dimension-specific pieces are the
// geometry here, the access probabilities and packing in model/ndim.h, and
// the simulator in sim/nd_sim.h. The production 2-D path keeps its own
// concrete Rect type (simpler call sites, no templates in the storage
// engine).

#ifndef RTB_GEOM_BOXND_H_
#define RTB_GEOM_BOXND_H_

#include <algorithm>
#include <array>
#include <cstddef>

#include "util/macros.h"

namespace rtb::geom {

/// A point in D dimensions.
template <size_t D>
using PointNd = std::array<double, D>;

/// A closed axis-parallel box in D dimensions.
template <size_t D>
struct BoxNd {
  PointNd<D> lo{};
  PointNd<D> hi{};

  /// The identity for Union: contains nothing.
  static BoxNd Empty() {
    BoxNd b;
    for (size_t d = 0; d < D; ++d) {
      b.lo[d] = 1.0;
      b.hi[d] = -1.0;
    }
    return b;
  }

  static BoxNd FromPoint(const PointNd<D>& p) { return BoxNd{p, p}; }

  /// The unit hypercube [0,1]^D.
  static BoxNd UnitCube() {
    BoxNd b;
    for (size_t d = 0; d < D; ++d) {
      b.lo[d] = 0.0;
      b.hi[d] = 1.0;
    }
    return b;
  }

  bool is_empty() const {
    for (size_t d = 0; d < D; ++d) {
      if (lo[d] > hi[d]) return true;
    }
    return false;
  }

  double Extent(size_t dim) const {
    RTB_DCHECK(dim < D);
    return is_empty() ? 0.0 : hi[dim] - lo[dim];
  }

  double Volume() const {
    if (is_empty()) return 0.0;
    double v = 1.0;
    for (size_t d = 0; d < D; ++d) v *= hi[d] - lo[d];
    return v;
  }

  PointNd<D> Center() const {
    PointNd<D> c;
    for (size_t d = 0; d < D; ++d) c[d] = (lo[d] + hi[d]) / 2.0;
    return c;
  }

  bool Contains(const PointNd<D>& p) const {
    for (size_t d = 0; d < D; ++d) {
      if (p[d] < lo[d] || p[d] > hi[d]) return false;
    }
    return true;
  }

  bool Intersects(const BoxNd& other) const {
    if (is_empty() || other.is_empty()) return false;
    for (size_t d = 0; d < D; ++d) {
      if (lo[d] > other.hi[d] || other.lo[d] > hi[d]) return false;
    }
    return true;
  }
};

template <size_t D>
bool operator==(const BoxNd<D>& a, const BoxNd<D>& b) {
  return a.lo == b.lo && a.hi == b.hi;
}

/// Minimum bounding box of two boxes.
template <size_t D>
BoxNd<D> Union(const BoxNd<D>& a, const BoxNd<D>& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  BoxNd<D> out;
  for (size_t d = 0; d < D; ++d) {
    out.lo[d] = std::min(a.lo[d], b.lo[d]);
    out.hi[d] = std::max(a.hi[d], b.hi[d]);
  }
  return out;
}

}  // namespace rtb::geom

#endif  // RTB_GEOM_BOXND_H_
