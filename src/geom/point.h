// 2-D point on the (normalized) data space.

#ifndef RTB_GEOM_POINT_H_
#define RTB_GEOM_POINT_H_

namespace rtb::geom {

/// A point in the plane. The paper normalizes all data to the unit square
/// U = [0,1] x [0,1]; nothing in the geometry kernel enforces that, but the
/// models in src/model assume it.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline bool operator==(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y;
}

}  // namespace rtb::geom

#endif  // RTB_GEOM_POINT_H_
