// Axis-parallel rectangles and the operations the R-tree and the analytical
// models need: area, perimeter extents, intersection, MBR union, and the two
// query-expansion constructions from the paper (corner-anchored for the
// uniform model of Section 3.1, center-anchored for the data-driven model of
// Section 3.2).

#ifndef RTB_GEOM_RECT_H_
#define RTB_GEOM_RECT_H_

#include <algorithm>

#include "geom/point.h"
#include "util/macros.h"

namespace rtb::geom {

/// A closed axis-parallel rectangle <(lo.x, lo.y), (hi.x, hi.y)>.
///
/// Degenerate rectangles (zero width and/or height) are valid and represent
/// points and segments; the paper's point data sets store them. An empty
/// rectangle (no points at all) is represented by Rect::Empty() and
/// recognized by is_empty().
struct Rect {
  Point lo;
  Point hi;

  Rect() = default;
  Rect(Point lo_in, Point hi_in) : lo(lo_in), hi(hi_in) {}
  Rect(double x0, double y0, double x1, double y1)
      : lo{x0, y0}, hi{x1, y1} {}

  /// The identity for MBR union: contains nothing, Union(Empty, r) == r.
  static Rect Empty() {
    return Rect(1.0, 1.0, -1.0, -1.0);
  }

  /// A degenerate rectangle covering exactly one point.
  static Rect FromPoint(Point p) { return Rect(p, p); }

  /// The unit square U = [0,1]^2 that all paper data sets are normalized to.
  static Rect UnitSquare() { return Rect(0.0, 0.0, 1.0, 1.0); }

  bool is_empty() const { return lo.x > hi.x || lo.y > hi.y; }

  /// True when lo <= hi in both dimensions (i.e. not Empty()).
  bool is_valid() const { return !is_empty(); }

  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }

  double Area() const { return is_empty() ? 0.0 : width() * height(); }

  /// Half-perimeter extents: the model sums x-extents (Lx) and y-extents (Ly)
  /// separately, so expose them individually.
  double XExtent() const { return is_empty() ? 0.0 : width(); }
  double YExtent() const { return is_empty() ? 0.0 : height(); }
  double Perimeter() const {
    return is_empty() ? 0.0 : 2.0 * (width() + height());
  }

  Point Center() const {
    return Point{(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }

  /// True when `p` lies in the closed rectangle.
  bool Contains(Point p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// True when `other` is fully inside this rectangle (closed containment).
  bool Contains(const Rect& other) const {
    if (other.is_empty()) return true;
    if (is_empty()) return false;
    return other.lo.x >= lo.x && other.hi.x <= hi.x && other.lo.y >= lo.y &&
           other.hi.y <= hi.y;
  }

  /// Closed intersection test: touching edges count as intersecting, matching
  /// the R-tree convention that a query retrieves every rectangle it touches.
  bool Intersects(const Rect& other) const {
    if (is_empty() || other.is_empty()) return false;
    return lo.x <= other.hi.x && other.lo.x <= hi.x && lo.y <= other.hi.y &&
           other.lo.y <= hi.y;
  }
};

inline bool operator==(const Rect& a, const Rect& b) {
  return a.lo == b.lo && a.hi == b.hi;
}

/// Minimum bounding rectangle of two rectangles.
inline Rect Union(const Rect& a, const Rect& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return Rect(std::min(a.lo.x, b.lo.x), std::min(a.lo.y, b.lo.y),
              std::max(a.hi.x, b.hi.x), std::max(a.hi.y, b.hi.y));
}

/// Geometric intersection; Rect::Empty() when disjoint.
inline Rect Intersection(const Rect& a, const Rect& b) {
  if (!a.Intersects(b)) return Rect::Empty();
  return Rect(std::max(a.lo.x, b.lo.x), std::max(a.lo.y, b.lo.y),
              std::min(a.hi.x, b.hi.x), std::min(a.hi.y, b.hi.y));
}

/// Area by which `base` must grow to enclose `add`; the Guttman insertion
/// heuristics minimize this enlargement.
inline double Enlargement(const Rect& base, const Rect& add) {
  return Union(base, add).Area() - base.Area();
}

/// The paper's corner-anchored extension (Section 3.1, Fig. 2): a region
/// query Q of size qx x qy intersects R = <(a,b),(c,d)> iff Q's top-right
/// corner lies inside R' = <(a,b),(c+qx, d+qy)>.
inline Rect ExtendTopRight(const Rect& r, double qx, double qy) {
  RTB_DCHECK(qx >= 0.0 && qy >= 0.0);
  if (r.is_empty()) return r;
  return Rect(r.lo.x, r.lo.y, r.hi.x + qx, r.hi.y + qy);
}

/// The paper's center-anchored expansion (Section 3.2, Fig. 4): R grown by qx
/// (resp. qy) units in total on dimension x (resp. y) keeping the center
/// fixed. A qx x qy query centered at c intersects R iff c is inside the
/// expanded rectangle.
inline Rect ExpandAboutCenter(const Rect& r, double qx, double qy) {
  RTB_DCHECK(qx >= 0.0 && qy >= 0.0);
  if (r.is_empty()) return r;
  return Rect(r.lo.x - qx / 2.0, r.lo.y - qy / 2.0, r.hi.x + qx / 2.0,
              r.hi.y + qy / 2.0);
}

}  // namespace rtb::geom

#endif  // RTB_GEOM_RECT_H_
