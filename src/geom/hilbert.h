// 2-D Hilbert space-filling curve.
//
// The HS loading algorithm (Kamel-Faloutsos, "On Packing R-Trees") sorts
// rectangle centers by their position along a Hilbert curve over a 2^k x 2^k
// grid. HilbertCurve2D maps between grid cells and curve positions in both
// directions; both maps are exact bijections, which the property tests
// verify.

#ifndef RTB_GEOM_HILBERT_H_
#define RTB_GEOM_HILBERT_H_

#include <cstdint>

#include "geom/point.h"
#include "util/macros.h"

namespace rtb::geom {

/// Hilbert curve over the 2^order x 2^order grid. `order` may be 1..31;
/// the curve index fits in 62 bits.
class HilbertCurve2D {
 public:
  /// Default order 16 gives a 65536^2 grid — ample resolution for data sets
  /// of a few hundred thousand rectangles.
  explicit HilbertCurve2D(int order = 16) : order_(order) {
    RTB_CHECK(order >= 1 && order <= 31);
  }

  int order() const { return order_; }

  /// Grid side length (2^order).
  uint64_t side() const { return uint64_t{1} << order_; }

  /// Number of cells on the curve (side^2).
  uint64_t num_cells() const { return side() * side(); }

  /// Distance along the curve of grid cell (x, y). Requires x, y < side().
  uint64_t XYToIndex(uint32_t x, uint32_t y) const;

  /// Inverse of XYToIndex. Requires d < num_cells().
  void IndexToXY(uint64_t d, uint32_t* x, uint32_t* y) const;

  /// Curve index of a point in the unit square; coordinates are clamped to
  /// [0, 1] first, then quantized to the grid.
  uint64_t PointToIndex(Point p) const;

 private:
  int order_;
};

}  // namespace rtb::geom

#endif  // RTB_GEOM_HILBERT_H_
