#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "rtree/knn.h"
#include "util/macros.h"

namespace rtb::net {
namespace {

constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// Bucket index for the log-scale latency histogram: two buckets per
// doubling of microseconds.
size_t LatencyBucket(uint64_t us) {
  if (us == 0) return 0;
  const int bits = 63 - __builtin_clzll(us);
  const size_t half = (us >> (bits > 0 ? bits - 1 : 0)) & 1;
  const size_t idx = static_cast<size_t>(bits) * 2 + half;
  return std::min(idx, size_t{63});
}

// Representative value (bucket midpoint) for percentile reporting.
double BucketValueUs(size_t idx) {
  const double lo = idx == 0 ? 0.0 : std::exp2(static_cast<double>(idx) / 2.0);
  const double hi = std::exp2(static_cast<double>(idx + 1) / 2.0);
  return (lo + hi) / 2.0;
}

double Percentile(const uint64_t* hist, size_t buckets, uint64_t total,
                  double p) {
  if (total == 0) return 0.0;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets; ++i) {
    seen += hist[i];
    if (seen >= target) return BucketValueUs(i);
  }
  return BucketValueUs(buckets - 1);
}

}  // namespace

Server::Server(ServingStack* stack, ServerOptions options)
    : stack_(stack), options_(options) {
  options_.max_batch = std::max<uint32_t>(1, options_.max_batch);
  options_.max_inflight = std::max<uint32_t>(1, options_.max_inflight);
  options_.max_queue = std::max(options_.max_queue, options_.max_batch);
  search_exec_ = std::make_unique<rtree::BatchExecutor>(stack->tree());
  update_exec_ = std::make_unique<rtree::UpdateBatchExecutor>(stack->tree());
}

Server::~Server() {
  for (auto& [fd, conn] : conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  conns_.clear();
  for (auto& [fd, conn] : dead_conns_) close(fd);
  dead_conns_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

Status Server::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, options_.backlog) < 0) return Errno("listen");

  socklen_t len = sizeof addr;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) < 0) return Errno("pipe2");

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_pipe_[0];
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) < 0) {
    return Errno("epoll_ctl(wake pipe)");
  }
  return Status::OK();
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // A full pipe already guarantees a pending wakeup, so EAGAIN is fine.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], &byte, 1);
}

Status Server::Serve() {
  epoll_event events[128];
  while (true) {
    const bool stopping = shutdown_requested_.load(std::memory_order_acquire);
    // The coalescing window: with requests queued, sleep only until the
    // oldest one's deadline; idle, sleep until a socket or the wake pipe
    // fires. Shutdown drains whatever is queued immediately.
    int timeout_ms = -1;
    if (!queue_.empty()) {
      if (stopping || queue_.size() >= options_.max_batch) {
        timeout_ms = 0;
      } else {
        const auto deadline =
            queue_.front().admitted + std::chrono::microseconds(
                                          options_.max_wait_us);
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          timeout_ms = 0;
        } else {
          const auto left = std::chrono::duration_cast<std::chrono::
              milliseconds>(deadline - now).count();
          // Round up so a sub-millisecond remainder does not busy-spin.
          timeout_ms = static_cast<int>(left) + 1;
        }
      }
    }

    const int n =
        epoll_wait(epoll_fd_, events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_pipe_[0]) {
        char buf[64];
        while (read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        if (!shutdown_requested_.load(std::memory_order_acquire)) {
          RTB_RETURN_IF_ERROR(HandleAccept());
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed by an earlier event.
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(fd);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      if (conns_.find(fd) == conns_.end()) continue;
      if (events[i].events & EPOLLIN) HandleReadable(conn);
    }

    // Drain when a window bound tripped (or on the shutdown path).
    const bool stop_now =
        shutdown_requested_.load(std::memory_order_acquire);
    while (queue_.size() >= options_.max_batch ||
           (!queue_.empty() &&
            (stop_now ||
             std::chrono::steady_clock::now() - queue_.front().admitted >=
                 std::chrono::microseconds(options_.max_wait_us)))) {
      RTB_RETURN_IF_ERROR(ExecuteDrain());
    }

    if (stop_now) {
      while (!queue_.empty()) RTB_RETURN_IF_ERROR(ExecuteDrain());
      // Flush remaining replies with blocking-ish retries, then leave.
      // Snapshot the fds first: FlushOutput can close (and so erase) a
      // connection, which would invalidate a live conns_ iterator.
      std::vector<int> fds;
      fds.reserve(conns_.size());
      for (auto& [fd, conn] : conns_) fds.push_back(fd);
      for (const int fd : fds) {
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Connection* conn = it->second.get();
        int spins = 0;
        while (conn->fd >= 0 && conn->out_off < conn->out.size() &&
               spins++ < 10000) {
          FlushOutput(conn);
        }
      }
      fds.clear();
      for (auto& [fd, conn] : conns_) fds.push_back(fd);
      for (const int fd : fds) CloseConnection(fd);
      ReapDeadConnections();
      return Status::OK();
    }
    ReapDeadConnections();
  }
}

Status Server::HandleAccept() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      if (errno == EINTR) continue;
      if (errno == ECONNABORTED) continue;  // That one died in the backlog.
      if (errno == EMFILE || errno == ENFILE) {
        // Fd exhaustion: the unaccepted connection keeps EPOLLIN asserted
        // on the listener (level-triggered), so polling it again would
        // busy-spin. Stop watching it until a connection close frees an fd
        // (ReapDeadConnections re-arms).
        if (!accept_paused_) {
          accept_paused_ = true;
          epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        }
        return Status::OK();
      }
      return Errno("accept4");
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    conns_[fd] = std::move(conn);
    ++stats_.connections_accepted;
  }
}

void Server::HandleReadable(Connection* conn) {
  // DrainInput below can close the connection (fd < 0 afterwards; the
  // object stays valid until ReapDeadConnections).
  while (conn->fd >= 0 && !conn->paused && !conn->closing) {
    const size_t at = conn->in.size();
    conn->in.resize(at + kReadChunk);
    const ssize_t n = read(conn->fd, conn->in.data() + at, kReadChunk);
    if (n > 0) {
      conn->in.resize(at + static_cast<size_t>(n));
      DrainInput(conn);
      if (static_cast<size_t>(n) < kReadChunk) return;
      continue;
    }
    conn->in.resize(at);
    if (n == 0) {
      // Peer closed its write side. Finish flushing replies, then close.
      if (conn->out_off < conn->out.size() || conn->inflight > 0) {
        conn->closing = true;
        UpdateReadInterest(conn);
      } else {
        CloseConnection(conn->fd);
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn->fd);
    return;
  }
}

void Server::DrainInput(Connection* conn) {
  size_t pos = 0;
  while (conn->fd >= 0 && !conn->closing) {
    if (conn->paused) break;
    Frame frame;
    size_t consumed = 0;
    const DecodeResult r = DecodeFrame(conn->in.data() + pos,
                                      conn->in.size() - pos, &frame,
                                      &consumed);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kMalformed) {
      // Framing lost: one error reply (request id 0 — the real id is
      // unknowable) and a flush-then-close.
      ++stats_.malformed_disconnects;
      AppendErrorReply(0, MsgType::kStats,
                       Status::InvalidArgument("malformed frame header"),
                       &conn->out);
      ++stats_.replies_sent;
      conn->closing = true;
      conn->in.clear();
      UpdateReadInterest(conn);
      FlushOutput(conn);
      return;
    }
    pos += consumed;
    ++stats_.frames_received;
    Request req;
    const Status parsed = ParseRequest(frame, &req);
    if (!parsed.ok()) {
      ++stats_.protocol_errors;
      const MsgType t = (frame.type & kReplyBit) == 0 &&
                                frame.type >=
                                    static_cast<uint8_t>(MsgType::kSearch) &&
                                frame.type <=
                                    static_cast<uint8_t>(MsgType::kStats)
                            ? static_cast<MsgType>(frame.type)
                            : MsgType::kStats;
      AppendErrorReply(frame.request_id, t, parsed, &conn->out);
      ++stats_.replies_sent;
      FlushOutput(conn);
      if (conn->fd < 0) return;
      continue;
    }
    queue_.push_back(Pending{conn->fd, req, std::chrono::steady_clock::now()});
    ++conn->inflight;
    ++stats_.requests_admitted;
    if (conn->inflight >= options_.max_inflight ||
        queue_.size() >= options_.max_queue) {
      UpdateReadInterest(conn);
      if (queue_.size() >= options_.max_queue) RecomputeAllReadInterest();
    }
  }
  if (pos > 0) conn->in.erase(conn->in.begin(), conn->in.begin() + pos);
}

void Server::HandleWritable(Connection* conn) { FlushOutput(conn); }

void Server::FlushOutput(Connection* conn) {
  if (conn->fd < 0) return;  // Already closed by a caller up the stack.
  while (conn->out_off < conn->out.size()) {
    // MSG_NOSIGNAL: a peer that reset the connection must surface as EPIPE
    // (close the conn), not as a process-killing SIGPIPE.
    const ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                           conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLOUT | (conn->paused ? 0u : uint32_t{EPOLLIN});
        ev.data.fd = conn->fd;
        epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      }
      return;
    }
    CloseConnection(conn->fd);
    return;
  }
  // Fully flushed: reclaim the buffer and drop EPOLLOUT interest.
  conn->out.clear();
  conn->out_off = 0;
  if (conn->want_write) {
    conn->want_write = false;
    epoll_event ev{};
    ev.events = conn->paused ? 0u : uint32_t{EPOLLIN};
    ev.data.fd = conn->fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
  if (conn->closing && conn->inflight == 0) CloseConnection(conn->fd);
}

void Server::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Abandon this connection's queued requests (replies would have nowhere
  // to go); the drained stats only count executed requests.
  if (it->second->inflight > 0) {
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [fd](const Pending& p) { return p.fd == fd; }),
                 queue_.end());
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // Deferred close: mark the object dead and park it until the end of the
  // event-loop iteration. Callers holding `conn` across a FlushOutput /
  // DrainInput that closed it see fd < 0 instead of freed memory, and the
  // kernel cannot hand the fd number to a new accept this iteration.
  it->second->fd = -1;
  dead_conns_.emplace_back(fd, std::move(it->second));
  conns_.erase(it);
  ++stats_.connections_closed;
}

void Server::ReapDeadConnections() {
  if (dead_conns_.empty()) return;
  for (auto& [fd, conn] : dead_conns_) close(fd);
  dead_conns_.clear();
  // Fds were just freed: resume accepting if EMFILE/ENFILE paused it.
  if (accept_paused_) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
      accept_paused_ = false;
    }
  }
}

void Server::UpdateReadInterest(Connection* conn) {
  const bool should_pause = conn->closing ||
                            conn->inflight >= options_.max_inflight ||
                            queue_.size() >= options_.max_queue;
  if (should_pause == conn->paused) return;
  conn->paused = should_pause;
  if (should_pause) ++stats_.pauses;
  epoll_event ev{};
  ev.events = (conn->paused ? 0u : uint32_t{EPOLLIN}) |
              (conn->want_write ? uint32_t{EPOLLOUT} : 0u);
  ev.data.fd = conn->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  // A resumed connection may already hold complete frames read before the
  // pause; level-triggered epoll only reports fresh socket bytes, so the
  // buffered backlog has to be decoded here or it would never drain.
  if (!conn->paused && !conn->closing && !conn->in.empty()) DrainInput(conn);
}

void Server::RecomputeAllReadInterest() {
  // Snapshot the fds: UpdateReadInterest on a resumed connection re-enters
  // DrainInput, which can close (erase) connections mid-iteration.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    auto it = conns_.find(fd);
    if (it != conns_.end()) UpdateReadInterest(it->second.get());
  }
}

void Server::RecordLatency(std::chrono::steady_clock::time_point admitted,
                           std::chrono::steady_clock::time_point now) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now - admitted)
          .count();
  ++latency_hist_[LatencyBucket(static_cast<uint64_t>(std::max<int64_t>(
      0, us)))];
  ++stats_.latency.samples;
}

Status Server::ExecuteDrain() {
  const size_t take = std::min<size_t>(queue_.size(), options_.max_batch);
  if (take == 0) return Status::OK();
  ++stats_.batches;

  drain_updates_.clear();
  drain_searches_.clear();
  drain_knns_.clear();
  drain_stats_.clear();
  for (size_t i = 0; i < take; ++i) {
    switch (queue_[i].req.type) {
      case MsgType::kInsert:
      case MsgType::kDelete:
        drain_updates_.push_back(i);
        break;
      case MsgType::kSearch:
        drain_searches_.push_back(i);
        break;
      case MsgType::kKnn:
        drain_knns_.push_back(i);
        break;
      case MsgType::kStats:
        drain_stats_.push_back(i);
        break;
    }
  }

  auto conn_of = [this](int fd) -> Connection* {
    auto it = conns_.find(fd);
    return it == conns_.end() ? nullptr : it->second.get();
  };
  auto replied = [&](const Pending& p, Connection* conn,
                     std::chrono::steady_clock::time_point now) {
    if (conn != nullptr) {
      ++stats_.replies_sent;
      if (conn->inflight > 0) --conn->inflight;
    }
    RecordLatency(p.admitted, now);
  };

  // 1. Updates: one executor run in arrival order; the run WAL-commits
  // (when a log is attached) before returning, so replies encoded after it
  // acknowledge logged-committed state.
  if (!drain_updates_.empty()) {
    update_ops_.clear();
    update_found_.assign(drain_updates_.size(), 0);
    for (const size_t i : drain_updates_) {
      const Request& req = queue_[i].req;
      if (req.type == MsgType::kInsert) {
        update_ops_.push_back(rtree::UpdateOp::Insert(req.rect, req.id));
        ++stats_.inserts;
      } else {
        update_ops_.push_back(rtree::UpdateOp::Delete(req.rect, req.id));
        ++stats_.deletes;
      }
    }
    const Status run = update_exec_->Run(
        std::span<const rtree::UpdateOp>(update_ops_), &stats_.update_batch,
        &update_found_);
    const auto now = std::chrono::steady_clock::now();
    for (size_t u = 0; u < drain_updates_.size(); ++u) {
      const Pending& p = queue_[drain_updates_[u]];
      Connection* conn = conn_of(p.fd);
      if (conn != nullptr) {
        if (!run.ok()) {
          AppendErrorReply(p.req.request_id, p.req.type, run, &conn->out);
          ++stats_.protocol_errors;
        } else if (p.req.type == MsgType::kInsert) {
          AppendInsertReply(p.req.request_id, &conn->out);
        } else {
          AppendDeleteReply(p.req.request_id, update_found_[u] != 0,
                            &conn->out);
        }
      }
      replied(p, conn, now);
    }
    // An executor error can leave the tree partially updated; that is the
    // serial-update contract too, and the error went back to the clients.
  }

  // 2. Searches: one level-synchronous batch over every rectangle.
  if (!drain_searches_.empty()) {
    search_rects_.clear();
    for (const size_t i : drain_searches_) {
      search_rects_.push_back(queue_[i].req.rect);
    }
    search_results_.clear();
    const Status run = search_exec_->Run(
        std::span<const geom::Rect>(search_rects_), &search_results_,
        &stats_.search_batch);
    const auto now = std::chrono::steady_clock::now();
    for (size_t s = 0; s < drain_searches_.size(); ++s) {
      const Pending& p = queue_[drain_searches_[s]];
      Connection* conn = conn_of(p.fd);
      if (conn != nullptr) {
        if (!run.ok()) {
          AppendErrorReply(p.req.request_id, MsgType::kSearch, run,
                           &conn->out);
          ++stats_.protocol_errors;
        } else if (sizeof(uint32_t) +
                       search_results_[s].size() * sizeof(uint64_t) >
                   kMaxPayloadBytes) {
          AppendErrorReply(
              p.req.request_id, MsgType::kSearch,
              Status::ResourceExhausted("search result exceeds frame cap"),
              &conn->out);
          ++stats_.protocol_errors;
        } else {
          AppendSearchReply(p.req.request_id, search_results_[s], &conn->out);
        }
      }
      replied(p, conn, now);
      ++stats_.searches;
    }
  }

  // 3. kNN: serial best-first searches (they share the warmed pool).
  for (const size_t i : drain_knns_) {
    const Pending& p = queue_[i];
    Connection* conn = conn_of(p.fd);
    auto result = rtree::SearchKnn(*stack_->tree(), p.req.point, p.req.k);
    const auto now = std::chrono::steady_clock::now();
    if (conn != nullptr) {
      if (!result.ok()) {
        AppendErrorReply(p.req.request_id, MsgType::kKnn, result.status(),
                         &conn->out);
        ++stats_.protocol_errors;
      } else {
        std::vector<WireNeighbor> neighbors;
        neighbors.reserve(result->size());
        for (const rtree::Neighbor& nb : *result) {
          neighbors.push_back(WireNeighbor{nb.id, nb.distance});
        }
        AppendKnnReply(p.req.request_id, neighbors, &conn->out);
      }
    }
    replied(p, conn, now);
    ++stats_.knns;
  }

  // 4. STATS: answered after the drain's work so the counters include it.
  for (const size_t i : drain_stats_) {
    const Pending& p = queue_[i];
    Connection* conn = conn_of(p.fd);
    const auto now = std::chrono::steady_clock::now();
    ++stats_.stats_requests;
    if (conn != nullptr) {
      AppendStatsReply(p.req.request_id, StatsJson().ToString(), &conn->out);
    }
    replied(p, conn, now);
  }

  queue_.erase(queue_.begin(), queue_.begin() + take);

  // Fan the replies out and re-admit paused readers.
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* conn = (it++)->second.get();
    if (!conn->out.empty()) FlushOutput(conn);
  }
  RecomputeAllReadInterest();
  return Status::OK();
}

report::JsonDict Server::StatsJson() const {
  report::JsonDict doc;
  doc.PutStr("report", "rtb-serve");
  // Optional-feature bitmask (net/protocol.h): clients probe this before
  // sending frames old servers would reject, e.g. open-bound SEARCH.
  doc.PutInt("capabilities", kServerCapabilities);
  report::JsonDict server;
  server.PutInt("connections_accepted", stats_.connections_accepted);
  server.PutInt("connections_closed", stats_.connections_closed);
  server.PutInt("frames_received", stats_.frames_received);
  server.PutInt("replies_sent", stats_.replies_sent);
  server.PutInt("protocol_errors", stats_.protocol_errors);
  server.PutInt("malformed_disconnects", stats_.malformed_disconnects);
  server.PutInt("requests_admitted", stats_.requests_admitted);
  server.PutInt("batches", stats_.batches);
  server.PutNum("effective_batch", stats_.EffectiveBatch());
  server.PutInt("searches", stats_.searches);
  server.PutInt("knns", stats_.knns);
  server.PutInt("inserts", stats_.inserts);
  server.PutInt("deletes", stats_.deletes);
  server.PutInt("stats_requests", stats_.stats_requests);
  server.PutInt("pauses", stats_.pauses);
  server.PutNum("latency_p50_us",
                Percentile(latency_hist_, kLatencyBuckets,
                           stats_.latency.samples, 0.50));
  server.PutNum("latency_p99_us",
                Percentile(latency_hist_, kLatencyBuckets,
                           stats_.latency.samples, 0.99));
  server.PutInt("latency_samples", stats_.latency.samples);
  doc.PutDict("server", std::move(server));

  report::JsonDict batch;
  batch.PutInt("search_node_accesses", stats_.search_batch.node_accesses);
  batch.PutInt("search_page_visits", stats_.search_batch.page_visits);
  batch.PutInt("update_inserts", stats_.update_batch.inserts);
  batch.PutInt("update_deletes_found", stats_.update_batch.deletes_found);
  batch.PutInt("update_deletes_missing", stats_.update_batch.deletes_missing);
  batch.PutInt("update_node_accesses", stats_.update_batch.node_accesses);
  batch.PutInt("update_pages_mutated", stats_.update_batch.pages_mutated);
  doc.PutDict("executor", std::move(batch));

  const storage::BufferStats bs = stack_->pool()->AggregateStats();
  report::JsonDict pool;
  pool.PutInt("requests", bs.requests);
  pool.PutInt("hits", bs.hits);
  pool.PutInt("misses", bs.misses);
  pool.PutInt("evictions", bs.evictions);
  pool.PutInt("writebacks", bs.writebacks);
  pool.PutNum("hit_rate", bs.HitRate());
  doc.PutDict("pool", std::move(pool));

  if (stack_->wal_active()) {
    const storage::WalStats ws = stack_->wal_stats();
    report::JsonDict wal;
    wal.PutInt("records", ws.records);
    wal.PutInt("bytes", ws.bytes);
    wal.PutInt("commits", ws.commits);
    wal.PutInt("fsyncs", ws.fsyncs);
    doc.PutDict("wal", std::move(wal));
  }
  return doc;
}

}  // namespace rtb::net
