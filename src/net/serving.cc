#include "net/serving.h"

#include <utility>

#include "sim/runner.h"
#include "storage/async_io.h"
#include "storage/file_page_store.h"
#include "storage/replacement.h"
#include "util/macros.h"

namespace rtb::net {

Result<std::unique_ptr<ServingStack>> ServingStack::Open(
    const engine::ExperimentSpec& spec) {
  engine::ExperimentSpec effective = spec;
  if (effective.workload.classes.empty()) {
    // Serving takes its queries from the wire; satisfy Validate()'s
    // at-least-one-class requirement with a placeholder that never runs.
    engine::QueryClassSpec cls;
    cls.label = "serving";
    cls.count = 1;
    effective.workload.classes.push_back(cls);
  }
  RTB_RETURN_IF_ERROR(effective.Validate());
  if (effective.storage.wal.enabled && !storage::WalAvailable()) {
    return Status::InvalidArgument(
        "storage.wal.enabled, but this binary was built without RTB_WAL");
  }
  storage::SetVectoredIo(effective.storage.vectored_io);
  storage::SetAsyncIo(effective.storage.async_io);

  auto stack = std::unique_ptr<ServingStack>(new ServingStack());
  stack->spec_ = effective;
  RTB_ASSIGN_OR_RETURN(stack->prepared_, engine::PrepareTree(effective));

  RTB_ASSIGN_OR_RETURN(storage::PolicyKind kind,
                       engine::ParsePolicyKind(effective.pool.policy));
  const uint64_t pages = effective.pool.buffer_pages;
  // The admission loop executes every batch on one thread, so the serial
  // pool applies regardless of client count — that is what makes the
  // coalescing determinism test possible.
  stack->pool_ = std::make_unique<storage::BufferPool>(
      stack->prepared_.store.get(), pages,
      storage::MakePolicy(kind, pages, effective.run.seed));

  if (effective.pool.pinned_levels > 0) {
    RTB_RETURN_IF_ERROR(sim::PinTopLevels(stack->pool_.get(),
                                          *stack->prepared_.summary,
                                          effective.pool.pinned_levels));
  }

  const bool use_wal =
      effective.storage.wal.enabled ||
      (storage::WalActive() && effective.storage.backend == "file" &&
       effective.tree.index.empty());
  if (use_wal) {
    RTB_RETURN_IF_ERROR(stack->prepared_.store->Sync());
    storage::WalWriter::Options wopts;
    wopts.group_commit_window = effective.storage.wal.group_commit_window;
    const std::string wal_path = effective.storage.wal.path.empty()
                                     ? effective.storage.path + ".wal"
                                     : effective.storage.wal.path;
    RTB_ASSIGN_OR_RETURN(stack->wal_,
                         storage::WalWriter::Create(wal_path, wopts));
    RTB_RETURN_IF_ERROR(
        stack->wal_->Checkpoint(stack->prepared_.store->num_pages()));
    stack->pool_->AttachWal(stack->wal_.get());
  }

  RTB_ASSIGN_OR_RETURN(
      rtree::RTree tree,
      rtree::RTree::Open(
          stack->pool_.get(),
          rtree::RTreeConfig::WithFanout(stack->prepared_.meta.fanout),
          stack->prepared_.meta.root, stack->prepared_.meta.height));
  stack->tree_.emplace(std::move(tree));
  return stack;
}

ServingStack::~ServingStack() { Close().ok(); }

Status ServingStack::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  // PR 8 order: the pool's Close checkpoints through the attached WAL
  // (flush dirty pages WAL-first, sync the store, truncate the log), then
  // the writer and the store release their descriptors.
  RTB_RETURN_IF_ERROR(pool_->Close());
  if (wal_ != nullptr) RTB_RETURN_IF_ERROR(wal_->Close());
  RTB_RETURN_IF_ERROR(prepared_.store->Close());
  return Status::OK();
}

}  // namespace rtb::net
