#include "net/client.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace rtb::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (errno == EINTR) continue;
    const Status s = Errno("connect");
    close(fd);
    return s;
  }
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

uint64_t Client::QueueSearch(const geom::Rect& rect) {
  const uint64_t id = next_id_++;
  AppendSearchRequest(id, rect, &sendbuf_);
  return id;
}

uint64_t Client::QueueKnn(geom::Point p, uint32_t k) {
  const uint64_t id = next_id_++;
  AppendKnnRequest(id, p, k, &sendbuf_);
  return id;
}

uint64_t Client::QueueInsert(const geom::Rect& rect, rtree::ObjectId oid) {
  const uint64_t id = next_id_++;
  AppendInsertRequest(id, rect, oid, &sendbuf_);
  return id;
}

uint64_t Client::QueueDelete(const geom::Rect& rect, rtree::ObjectId oid) {
  const uint64_t id = next_id_++;
  AppendDeleteRequest(id, rect, oid, &sendbuf_);
  return id;
}

uint64_t Client::QueueStats() {
  const uint64_t id = next_id_++;
  AppendStatsRequest(id, &sendbuf_);
  return id;
}

void Client::QueueRaw(const std::vector<uint8_t>& bytes) {
  sendbuf_.insert(sendbuf_.end(), bytes.begin(), bytes.end());
}

Status Client::Flush() {
  size_t off = 0;
  while (off < sendbuf_.size()) {
    // MSG_NOSIGNAL: a server that dropped the connection must surface as
    // an EPIPE status, not a process-killing SIGPIPE.
    const ssize_t n = send(fd_, sendbuf_.data() + off,
                           sendbuf_.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      // A 0-byte write leaves errno stale; report it as a closed peer
      // rather than whatever error message errno happens to hold.
      return Status::IoError("write: connection closed (0-byte write)");
    }
    if (errno == EINTR) continue;
    return Errno("write");
  }
  sendbuf_.clear();
  return Status::OK();
}

Result<Reply> Client::ReadReply() {
  while (true) {
    Frame frame;
    size_t consumed = 0;
    const DecodeResult r =
        DecodeFrame(recvbuf_.data() + recv_pos_, recvbuf_.size() - recv_pos_,
                    &frame, &consumed);
    if (r == DecodeResult::kFrame) {
      Reply reply;
      const Status parsed = ParseReply(frame, &reply);
      recv_pos_ += consumed;
      // Compact once the consumed prefix dominates the buffer.
      if (recv_pos_ > recvbuf_.size() / 2) {
        recvbuf_.erase(recvbuf_.begin(),
                       recvbuf_.begin() + static_cast<ptrdiff_t>(recv_pos_));
        recv_pos_ = 0;
      }
      RTB_RETURN_IF_ERROR(parsed);
      return reply;
    }
    if (r == DecodeResult::kMalformed) {
      return Status::Corruption("malformed reply frame from server");
    }
    uint8_t chunk[64 * 1024];
    const ssize_t n = read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      recvbuf_.insert(recvbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      if (recvbuf_.size() - recv_pos_ > 0) {
        return Status::IoError("connection closed mid-frame");
      }
      return Status::NotFound("connection closed");
    }
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

Result<Reply> Client::WaitFor(uint64_t id) {
  for (size_t i = 0; i < parked_.size(); ++i) {
    if (parked_[i].request_id == id) {
      Reply reply = std::move(parked_[i]);
      parked_.erase(parked_.begin() + static_cast<ptrdiff_t>(i));
      return reply;
    }
  }
  RTB_RETURN_IF_ERROR(Flush());
  while (true) {
    RTB_ASSIGN_OR_RETURN(Reply reply, ReadReply());
    if (reply.request_id == id) return reply;
    parked_.push_back(std::move(reply));
  }
}

Result<std::vector<rtree::ObjectId>> Client::Search(const geom::Rect& rect) {
  const uint64_t id = QueueSearch(rect);
  RTB_ASSIGN_OR_RETURN(Reply reply, WaitFor(id));
  if (!reply.ok()) {
    return Status(static_cast<StatusCode>(reply.status), reply.text);
  }
  return std::move(reply.ids);
}

Result<bool> Client::Delete(const geom::Rect& rect, rtree::ObjectId oid) {
  const uint64_t id = QueueDelete(rect, oid);
  RTB_ASSIGN_OR_RETURN(Reply reply, WaitFor(id));
  if (!reply.ok()) {
    return Status(static_cast<StatusCode>(reply.status), reply.text);
  }
  return reply.found;
}

Status Client::Insert(const geom::Rect& rect, rtree::ObjectId oid) {
  const uint64_t id = QueueInsert(rect, oid);
  RTB_ASSIGN_OR_RETURN(Reply reply, WaitFor(id));
  if (!reply.ok()) {
    return Status(static_cast<StatusCode>(reply.status), reply.text);
  }
  return Status::OK();
}

void Client::ShutdownWrite() { shutdown(fd_, SHUT_WR); }

}  // namespace rtb::net
