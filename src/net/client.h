// A blocking, pipelining client for the rtb wire protocol — the load side
// of tests/server_test.cc and bench/micro_server_qps. Queue any number of
// requests (each gets a fresh request id), Flush() them in one write
// stream, then collect replies as they arrive; replies may come back in
// any order, keyed by request id. Short reads/writes and EINTR are
// retried, same discipline as FilePageStore's pread loop.

#ifndef RTB_NET_CLIENT_H_
#define RTB_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "util/result.h"

namespace rtb::net {

class Client {
 public:
  /// Connects (blocking) to 127.0.0.1:`port`.
  static Result<std::unique_ptr<Client>> Connect(uint16_t port);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  ~Client();

  /// Queue one request into the send buffer; returns its request id.
  uint64_t QueueSearch(const geom::Rect& rect);
  uint64_t QueueKnn(geom::Point p, uint32_t k);
  uint64_t QueueInsert(const geom::Rect& rect, rtree::ObjectId id);
  uint64_t QueueDelete(const geom::Rect& rect, rtree::ObjectId id);
  uint64_t QueueStats();

  /// Appends pre-encoded frame bytes verbatim (protocol robustness tests).
  void QueueRaw(const std::vector<uint8_t>& bytes);

  /// Writes the whole send buffer to the socket (retrying short writes).
  Status Flush();

  /// Blocks until one complete reply frame arrives and decodes it.
  /// kIoError on EOF mid-frame; clean EOF before any frame byte returns
  /// NotFound("connection closed") so tests can assert disconnects.
  Result<Reply> ReadReply();

  /// Flush + read until the reply for `id` arrives; replies for other ids
  /// received on the way are buffered and returned by later calls.
  Result<Reply> WaitFor(uint64_t id);

  /// Convenience round-trips (flush + wait).
  Result<std::vector<rtree::ObjectId>> Search(const geom::Rect& rect);
  Result<bool> Delete(const geom::Rect& rect, rtree::ObjectId id);
  Status Insert(const geom::Rect& rect, rtree::ObjectId id);

  /// Half-close the write side (server sees EOF, flushes, closes).
  void ShutdownWrite();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> sendbuf_;
  std::vector<uint8_t> recvbuf_;
  size_t recv_pos_ = 0;  // Consumed prefix of recvbuf_.
  std::vector<Reply> parked_;  // Replies read past the one WaitFor wanted.
};

}  // namespace rtb::net

#endif  // RTB_NET_CLIENT_H_
