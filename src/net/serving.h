// ServingStack: the storage/tree sandwich a long-running rtb_server
// process executes against, materialized from the same declarative
// ExperimentSpec the engine uses.
//
// Open() runs engine::PrepareTree (build the dataset into a store, or open
// a persistent index), fronts the store with the paper's serial BufferPool
// — the server's admission loop is single-threaded, so the serial pool's
// bit-reproducible counters carry over to serving — pins the requested top
// levels, and, when the spec enables it, starts the WAL the way engine::Run
// does: sync the bulk-loaded store, create the log, write a checkpoint
// describing that durable base, attach the writer to the pool (no-force
// discipline from then on).
//
// Close() tears down in the PR 8 order — pool (checkpoints when a WAL is
// attached), then wal, then store — so a graceful server shutdown leaves a
// clean, nothing-to-redo log (tests/server_test.cc asserts this via
// OpenWithRecovery).

#ifndef RTB_NET_SERVING_H_
#define RTB_NET_SERVING_H_

#include <memory>
#include <optional>

#include "engine/engine.h"
#include "engine/spec.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"
#include "util/result.h"

namespace rtb::net {

/// The open tree + pool + optional WAL a Server executes against. Move-only;
/// single-threaded like the serial pool it holds.
class ServingStack {
 public:
  /// Materializes the spec. Serving ignores the workload section (queries
  /// come from the wire), so a spec with no query classes is accepted — a
  /// placeholder class is injected before validation.
  static Result<std::unique_ptr<ServingStack>> Open(
      const engine::ExperimentSpec& spec);

  ServingStack(const ServingStack&) = delete;
  ServingStack& operator=(const ServingStack&) = delete;

  /// Close() with the error dropped, for abandoned stacks.
  ~ServingStack();

  /// Flush + checkpoint + release, in the pool -> wal -> store order.
  /// Idempotent.
  Status Close();

  rtree::RTree* tree() { return &*tree_; }
  storage::PageCache* pool() { return pool_.get(); }
  storage::PageStore* store() { return prepared_.store.get(); }
  bool wal_active() const { return wal_ != nullptr; }
  storage::WalStats wal_stats() const {
    return wal_ != nullptr ? wal_->stats() : storage::WalStats{};
  }
  const engine::ExperimentSpec& spec() const { return spec_; }
  const engine::IndexMeta& meta() const { return prepared_.meta; }

 private:
  ServingStack() = default;

  engine::ExperimentSpec spec_;
  engine::PreparedTree prepared_;
  std::unique_ptr<storage::PageCache> pool_;
  std::unique_ptr<storage::WalWriter> wal_;
  std::optional<rtree::RTree> tree_;
  bool closed_ = false;
};

}  // namespace rtb::net

#endif  // RTB_NET_SERVING_H_
