#include "net/protocol.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/status.h"

namespace rtb::net {
namespace {

// Little-endian scalar writers/readers. memcpy keeps them alignment-safe;
// the build targets little-endian hosts (same assumption FilePageStore
// makes for page headers), so no byte swapping.
void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof v);
  std::memcpy(out->data() + at, &v, sizeof v);
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof v);
  std::memcpy(out->data() + at, &v, sizeof v);
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof v);
  std::memcpy(out->data() + at, &v, sizeof v);
}

void PutF64(double v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof v);
  std::memcpy(out->data() + at, &v, sizeof v);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

double GetF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// Writes the frame length + prologue for a payload of `payload_len` bytes.
void PutHeader(uint8_t type, uint8_t status, uint64_t request_id,
               size_t payload_len, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(kPrologueBytes + payload_len), out);
  out->push_back(type);
  out->push_back(status);
  PutU16(0, out);
  PutU64(request_id, out);
}

// Request payload sizes, by type.
constexpr size_t kSearchReqBytes = 4 * sizeof(double);
constexpr size_t kKnnReqBytes = 2 * sizeof(double) + sizeof(uint32_t);
constexpr size_t kUpdateReqBytes = 4 * sizeof(double) + sizeof(uint64_t);

geom::Rect ReadRect(const uint8_t* p) {
  return geom::Rect(GetF64(p), GetF64(p + 8), GetF64(p + 16), GetF64(p + 24));
}

bool FiniteRect(const geom::Rect& r) {
  return std::isfinite(r.lo.x) && std::isfinite(r.lo.y) &&
         std::isfinite(r.hi.x) && std::isfinite(r.hi.y);
}

// One SEARCH axis is either fully finite or the open-bound sentinel
// (lo = -inf, hi = +inf, the partial-match encoding). A lone infinity,
// a reversed sentinel, or a NaN is garbage and is rejected.
bool SearchAxisOk(double lo, double hi) {
  if (std::isfinite(lo) && std::isfinite(hi)) return true;
  return lo == -std::numeric_limits<double>::infinity() &&
         hi == std::numeric_limits<double>::infinity();
}

void PutRect(const geom::Rect& r, std::vector<uint8_t>* out) {
  PutF64(r.lo.x, out);
  PutF64(r.lo.y, out);
  PutF64(r.hi.x, out);
  PutF64(r.hi.y, out);
}

}  // namespace

DecodeResult DecodeFrame(const uint8_t* data, size_t len, Frame* out,
                         size_t* consumed) {
  if (len < kLengthBytes) return DecodeResult::kNeedMore;
  const uint32_t frame_len = GetU32(data);
  if (frame_len < kPrologueBytes ||
      frame_len > kPrologueBytes + kMaxPayloadBytes) {
    return DecodeResult::kMalformed;
  }
  const size_t total = kLengthBytes + frame_len;
  if (len < total) return DecodeResult::kNeedMore;
  const uint8_t* p = data + kLengthBytes;
  out->type = p[0];
  out->status = p[1];
  // p[2..3] reserved, ignored.
  out->request_id = GetU64(p + 4);
  out->payload = p + kPrologueBytes;
  out->payload_len = frame_len - kPrologueBytes;
  *consumed = total;
  return DecodeResult::kFrame;
}

Status ParseRequest(const Frame& frame, Request* out) {
  if (frame.type & kReplyBit) {
    return Status::InvalidArgument("reply frame where a request was expected");
  }
  out->request_id = frame.request_id;
  const uint8_t* p = frame.payload;
  switch (frame.type) {
    case static_cast<uint8_t>(MsgType::kSearch):
      if (frame.payload_len != kSearchReqBytes) {
        return Status::InvalidArgument("SEARCH payload must be 32 bytes");
      }
      out->type = MsgType::kSearch;
      out->rect = ReadRect(p);
      if (!SearchAxisOk(out->rect.lo.x, out->rect.hi.x) ||
          !SearchAxisOk(out->rect.lo.y, out->rect.hi.y)) {
        return Status::InvalidArgument(
            "SEARCH rect has non-finite coords (open axis is lo=-inf, "
            "hi=+inf)");
      }
      return Status::OK();
    case static_cast<uint8_t>(MsgType::kKnn):
      if (frame.payload_len != kKnnReqBytes) {
        return Status::InvalidArgument("KNN payload must be 20 bytes");
      }
      out->type = MsgType::kKnn;
      out->point = geom::Point{GetF64(p), GetF64(p + 8)};
      out->k = GetU32(p + 16);
      if (!std::isfinite(out->point.x) || !std::isfinite(out->point.y)) {
        return Status::InvalidArgument("KNN point has non-finite coords");
      }
      if (out->k == 0) {
        return Status::InvalidArgument("KNN k must be >= 1");
      }
      return Status::OK();
    case static_cast<uint8_t>(MsgType::kInsert):
    case static_cast<uint8_t>(MsgType::kDelete):
      if (frame.payload_len != kUpdateReqBytes) {
        return Status::InvalidArgument("update payload must be 40 bytes");
      }
      out->type = static_cast<MsgType>(frame.type);
      out->rect = ReadRect(p);
      out->id = GetU64(p + 32);
      // Refuse garbage geometry at the boundary: an empty-rect insert
      // would make UpdateBatchExecutor reject the whole coalesced batch.
      if (!FiniteRect(out->rect) || out->rect.is_empty()) {
        return Status::InvalidArgument("update rect empty or non-finite");
      }
      return Status::OK();
    case static_cast<uint8_t>(MsgType::kStats):
      if (frame.payload_len != 0) {
        return Status::InvalidArgument("STATS payload must be empty");
      }
      out->type = MsgType::kStats;
      return Status::OK();
    default:
      return Status::InvalidArgument("unknown request type " +
                                     std::to_string(frame.type));
  }
}

Status ParseReply(const Frame& frame, Reply* out) {
  if (!(frame.type & kReplyBit)) {
    return Status::InvalidArgument("request frame where a reply was expected");
  }
  const uint8_t base = frame.type & static_cast<uint8_t>(~kReplyBit);
  if (base < static_cast<uint8_t>(MsgType::kSearch) ||
      base > static_cast<uint8_t>(MsgType::kStats)) {
    return Status::InvalidArgument("unknown reply type " +
                                   std::to_string(frame.type));
  }
  out->type = static_cast<MsgType>(base);
  out->status = frame.status;
  out->request_id = frame.request_id;
  out->ids.clear();
  out->neighbors.clear();
  out->found = false;
  out->text.clear();
  const uint8_t* p = frame.payload;
  if (frame.status != 0) {
    out->text.assign(reinterpret_cast<const char*>(p), frame.payload_len);
    return Status::OK();
  }
  switch (out->type) {
    case MsgType::kSearch: {
      if (frame.payload_len < sizeof(uint32_t)) {
        return Status::InvalidArgument("SEARCH reply shorter than its count");
      }
      const uint32_t n = GetU32(p);
      if (frame.payload_len !=
          sizeof(uint32_t) + static_cast<size_t>(n) * sizeof(uint64_t)) {
        return Status::InvalidArgument("SEARCH reply size/count mismatch");
      }
      out->ids.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        out->ids[i] = GetU64(p + 4 + i * 8);
      }
      return Status::OK();
    }
    case MsgType::kKnn: {
      if (frame.payload_len < sizeof(uint32_t)) {
        return Status::InvalidArgument("KNN reply shorter than its count");
      }
      // size_t arithmetic: `n * 16` in uint32 would wrap for a corrupt
      // n >= 2^28 and pass the check with a 4-byte payload, making the
      // resize/read below run far past the frame.
      const uint32_t n = GetU32(p);
      if (frame.payload_len !=
          sizeof(uint32_t) + static_cast<size_t>(n) * 16) {
        return Status::InvalidArgument("KNN reply size/count mismatch");
      }
      out->neighbors.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        out->neighbors[i].id = GetU64(p + 4 + i * 16);
        out->neighbors[i].distance = GetF64(p + 4 + i * 16 + 8);
      }
      return Status::OK();
    }
    case MsgType::kInsert:
      if (frame.payload_len != 0) {
        return Status::InvalidArgument("INSERT reply must be empty");
      }
      return Status::OK();
    case MsgType::kDelete:
      if (frame.payload_len != 1) {
        return Status::InvalidArgument("DELETE reply must be 1 byte");
      }
      out->found = p[0] != 0;
      return Status::OK();
    case MsgType::kStats:
      out->text.assign(reinterpret_cast<const char*>(p), frame.payload_len);
      return Status::OK();
  }
  return Status::InvalidArgument("unreachable reply type");
}

void AppendSearchRequest(uint64_t request_id, const geom::Rect& rect,
                         std::vector<uint8_t>* out) {
  PutHeader(static_cast<uint8_t>(MsgType::kSearch), 0, request_id,
            kSearchReqBytes, out);
  PutRect(rect, out);
}

void AppendKnnRequest(uint64_t request_id, geom::Point p, uint32_t k,
                      std::vector<uint8_t>* out) {
  PutHeader(static_cast<uint8_t>(MsgType::kKnn), 0, request_id, kKnnReqBytes,
            out);
  PutF64(p.x, out);
  PutF64(p.y, out);
  PutU32(k, out);
}

void AppendInsertRequest(uint64_t request_id, const geom::Rect& rect,
                         rtree::ObjectId id, std::vector<uint8_t>* out) {
  PutHeader(static_cast<uint8_t>(MsgType::kInsert), 0, request_id,
            kUpdateReqBytes, out);
  PutRect(rect, out);
  PutU64(id, out);
}

void AppendDeleteRequest(uint64_t request_id, const geom::Rect& rect,
                         rtree::ObjectId id, std::vector<uint8_t>* out) {
  PutHeader(static_cast<uint8_t>(MsgType::kDelete), 0, request_id,
            kUpdateReqBytes, out);
  PutRect(rect, out);
  PutU64(id, out);
}

void AppendStatsRequest(uint64_t request_id, std::vector<uint8_t>* out) {
  PutHeader(static_cast<uint8_t>(MsgType::kStats), 0, request_id, 0, out);
}

void AppendSearchReply(uint64_t request_id,
                       const std::vector<rtree::ObjectId>& ids,
                       std::vector<uint8_t>* out) {
  const size_t payload = sizeof(uint32_t) + ids.size() * sizeof(uint64_t);
  PutHeader(static_cast<uint8_t>(MsgType::kSearch) | kReplyBit, 0, request_id,
            payload, out);
  PutU32(static_cast<uint32_t>(ids.size()), out);
  for (const rtree::ObjectId id : ids) PutU64(id, out);
}

void AppendKnnReply(uint64_t request_id,
                    const std::vector<WireNeighbor>& neighbors,
                    std::vector<uint8_t>* out) {
  const size_t payload = sizeof(uint32_t) + neighbors.size() * 16;
  PutHeader(static_cast<uint8_t>(MsgType::kKnn) | kReplyBit, 0, request_id,
            payload, out);
  PutU32(static_cast<uint32_t>(neighbors.size()), out);
  for (const WireNeighbor& n : neighbors) {
    PutU64(n.id, out);
    PutF64(n.distance, out);
  }
}

void AppendInsertReply(uint64_t request_id, std::vector<uint8_t>* out) {
  PutHeader(static_cast<uint8_t>(MsgType::kInsert) | kReplyBit, 0, request_id,
            0, out);
}

void AppendDeleteReply(uint64_t request_id, bool found,
                       std::vector<uint8_t>* out) {
  PutHeader(static_cast<uint8_t>(MsgType::kDelete) | kReplyBit, 0, request_id,
            1, out);
  out->push_back(found ? 1 : 0);
}

void AppendStatsReply(uint64_t request_id, const std::string& json,
                      std::vector<uint8_t>* out) {
  const size_t len = std::min(json.size(), kMaxPayloadBytes);
  PutHeader(static_cast<uint8_t>(MsgType::kStats) | kReplyBit, 0, request_id,
            len, out);
  out->insert(out->end(), json.data(), json.data() + len);
}

void AppendErrorReply(uint64_t request_id, MsgType type, const Status& status,
                      std::vector<uint8_t>* out) {
  const std::string& msg = status.message();
  const size_t len = std::min(msg.size(), kMaxPayloadBytes);
  const uint8_t code = status.ok()
                           ? static_cast<uint8_t>(StatusCode::kInvalidArgument)
                           : static_cast<uint8_t>(status.code());
  PutHeader(static_cast<uint8_t>(type) | kReplyBit, code, request_id, len,
            out);
  out->insert(out->end(), msg.data(), msg.data() + len);
}

void AppendRawFrame(uint8_t type, uint8_t status, uint64_t request_id,
                    const uint8_t* payload, size_t payload_len,
                    std::vector<uint8_t>* out) {
  PutHeader(type, status, request_id, payload_len, out);
  if (payload_len > 0) out->insert(out->end(), payload, payload + payload_len);
}

}  // namespace rtb::net
