// The rtb_server admission/coalescing loop.
//
// One thread runs everything: an epoll(7) loop accepts connections, reads
// pipelined frames (net/protocol.h) into per-connection buffers, and parks
// each decoded request in an admission queue. The queue drains into ONE
// executor run when either bound of the coalescing window trips —
// `max_batch` requests are waiting, or the oldest has waited `max_wait_us`
// — so the effective batch size, and with it the effective buffer hit rate
// (DESIGN.md §10), scales with *server load* rather than with any single
// client's pipelining depth. A drain executes in a fixed order:
//
//   1. updates   — one UpdateBatchExecutor::Run over every INSERT/DELETE
//                  in arrival order; with a WAL attached the run commits
//                  (group-commit window applies) before any reply is
//                  encoded, so an acked update is logged-committed;
//   2. searches  — one BatchExecutor::Run over every SEARCH rectangle,
//                  observing this drain's updates;
//   3. kNN       — serially (best-first search does not batch);
//   4. stats     — answered from the counters after 1-3.
//
// Replies are encoded into per-connection output buffers and flushed with
// nonblocking writes (EPOLLOUT on short writes), out-of-order across
// request ids by construction.
//
// Backpressure is a two-level pause/resume state machine on EPOLLIN
// interest:
//   * per-connection: a connection with `max_inflight` unanswered requests
//     stops being read until a drain answers some;
//   * global: when the admission queue reaches `max_queue` no connection
//     is read until the next drain.
// Paused connections keep their already-buffered bytes; nothing is dropped.
//
// Shutdown: RequestShutdown() (async-signal-safe — it writes one byte to a
// self-pipe) makes Serve() stop accepting, drain the admission queue
// through the normal executor path, flush every reply, close the
// connections and return. The caller then closes the ServingStack in the
// PR 8 pool -> wal -> store order.

#ifndef RTB_NET_SERVER_H_
#define RTB_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "net/serving.h"
#include "report/json.h"
#include "rtree/batch.h"
#include "rtree/update_batch.h"
#include "util/result.h"

namespace rtb::net {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port()).
  uint16_t port = 0;
  /// Coalescing window: a drain fires at `max_batch` admitted requests ...
  uint32_t max_batch = 256;
  /// ... or when the oldest admitted request has waited this long.
  uint64_t max_wait_us = 500;
  /// Per-connection inflight bound (requests admitted or queued but not
  /// yet replied); reads pause at the bound.
  uint32_t max_inflight = 1024;
  /// Global admission-queue bound; all reads pause at the bound.
  uint32_t max_queue = 4096;
  /// listen(2) backlog.
  int backlog = 256;
};

/// p50/p99 request latency from a log-scale microsecond histogram
/// (admission to reply-encoded; the flush to the socket is not included).
struct LatencySummary {
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t samples = 0;
};

/// Global counters over the server's lifetime.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t replies_sent = 0;       // Encoded reply frames.
  uint64_t protocol_errors = 0;    // Typed error replies sent.
  uint64_t malformed_disconnects = 0;
  uint64_t requests_admitted = 0;
  uint64_t batches = 0;            // Admission drains executed.
  uint64_t searches = 0;
  uint64_t knns = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t stats_requests = 0;
  uint64_t pauses = 0;             // Read-pause transitions (either level).
  rtree::BatchStats search_batch;  // BatchExecutor accumulation.
  rtree::UpdateBatchStats update_batch;
  LatencySummary latency;

  double EffectiveBatch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests_admitted) /
                              static_cast<double>(batches);
  }
};

class Server {
 public:
  /// `stack` is not owned and must outlive the server.
  Server(ServingStack* stack, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:port, listens, and sets up epoll + the shutdown pipe.
  Status Start();

  /// The bound port (valid after Start; equals options.port unless 0).
  uint16_t port() const { return port_; }

  /// Runs the admission loop until RequestShutdown(). Returns OK after a
  /// graceful drain; an error only for unrecoverable executor/epoll
  /// failures (per-connection socket errors just close that connection).
  Status Serve();

  /// Async-signal-safe shutdown trigger (usable from a signal handler and
  /// from other threads).
  void RequestShutdown();

  /// Snapshot of the global counters. Single-threaded like Serve(); call
  /// between Serve() returning, or from within the serving thread.
  ServerStats stats() const { return stats_; }

  /// The STATS reply document: server counters plus the stack's
  /// BufferStats (hit rate) and WAL counters.
  report::JsonDict StatsJson() const;

 private:
  struct Connection {
    int fd = -1;
    std::vector<uint8_t> in;    // Unconsumed received bytes.
    std::vector<uint8_t> out;   // Encoded, not yet written reply bytes.
    size_t out_off = 0;         // Prefix of `out` already written.
    uint32_t inflight = 0;      // Admitted, not yet replied.
    bool paused = false;        // EPOLLIN interest removed.
    bool want_write = false;    // EPOLLOUT interest registered.
    bool closing = false;       // Close after the out buffer flushes.
  };

  struct Pending {
    int fd = -1;  // Owning connection (key into conns_).
    Request req;
    std::chrono::steady_clock::time_point admitted;
  };

  // Epoll loop bodies.
  Status HandleAccept();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  // Decodes every complete frame in conn->in; admits requests, encodes
  // typed error replies, or marks the connection closing on a malformed
  // header.
  void DrainInput(Connection* conn);
  // Nonblocking flush of conn->out; registers/unregisters EPOLLOUT.
  void FlushOutput(Connection* conn);
  // Marks the connection dead (fd = -1, erased from conns_, queued requests
  // abandoned) and parks it in dead_conns_. The close(2) and destruction
  // happen in ReapDeadConnections() so that callers up the stack can keep
  // dereferencing `conn` (checking fd < 0), and so the kernel cannot reuse
  // the fd number for a new connection within the same event batch.
  void CloseConnection(int fd);
  // Closes and destroys dead connections; re-arms the listener if accept
  // was paused on fd exhaustion. Called once per event-loop iteration.
  void ReapDeadConnections();

  // Executes the admission queue as one coalesced drain (the fixed
  // updates -> searches -> kNN -> stats order above), encodes the replies
  // and flushes each touched connection.
  Status ExecuteDrain();

  // Pause/resume reads (per-connection and global); no-ops when already in
  // the requested state.
  void UpdateReadInterest(Connection* conn);
  void RecomputeAllReadInterest();

  void RecordLatency(std::chrono::steady_clock::time_point admitted,
                     std::chrono::steady_clock::time_point now);

  ServingStack* stack_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};
  // Listener removed from the epoll set after EMFILE/ENFILE (re-added when
  // a connection close frees an fd); level-triggered epoll would otherwise
  // busy-spin on the pending connection we cannot accept.
  bool accept_paused_ = false;

  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  // Connections closed this iteration: (os fd still open, dead object).
  std::vector<std::pair<int, std::unique_ptr<Connection>>> dead_conns_;
  std::vector<Pending> queue_;
  std::unique_ptr<rtree::BatchExecutor> search_exec_;
  std::unique_ptr<rtree::UpdateBatchExecutor> update_exec_;

  ServerStats stats_;
  // Log-scale (power-of-sqrt2) microsecond histogram behind the latency
  // percentiles.
  static constexpr size_t kLatencyBuckets = 64;
  uint64_t latency_hist_[kLatencyBuckets] = {};

  // Reused scratch for ExecuteDrain.
  std::vector<size_t> drain_updates_;
  std::vector<size_t> drain_searches_;
  std::vector<size_t> drain_knns_;
  std::vector<size_t> drain_stats_;
  std::vector<geom::Rect> search_rects_;
  std::vector<std::vector<rtree::ObjectId>> search_results_;
  std::vector<rtree::UpdateOp> update_ops_;
  std::vector<uint8_t> update_found_;
};

}  // namespace rtb::net

#endif  // RTB_NET_SERVER_H_
