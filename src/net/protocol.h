// The rtb wire protocol: length-prefixed binary frames for pipelined
// request/reply serving (net/server.h).
//
// A frame is
//
//   u32 frame_len        bytes that follow this field (prologue + payload)
//   u8  type             MsgType; replies set kReplyBit
//   u8  status           0 in requests; replies: 0 = OK, else StatusCode
//   u16 reserved         0 on the wire, ignored on receipt
//   u64 request_id       echoed verbatim in the reply
//   u8  payload[...]     typed per MsgType (below)
//
// all little-endian. frame_len >= kProloguebytes always; payloads are capped
// at kMaxPayloadBytes so a hostile length prefix cannot make the server
// buffer gigabytes. Request ids are chosen by the client (any value; echoing
// them is what makes out-of-order replies routable), and a connection may
// have any number of frames in flight — the server replies per admission
// drain, not per frame.
//
// Payloads:
//
//   SEARCH  request   4 f64: lo.x lo.y hi.x hi.y
//                     an axis is *open* (partial match: it does not
//                     constrain the query) when encoded as the sentinel
//                     lo = -inf, hi = +inf; otherwise both bounds must be
//                     finite. Any other non-finite combination is a typed
//                     error — which is also what pre-capability servers
//                     reply to the sentinel, so a client can probe with
//                     STATS "capabilities" (kCapOpenBoundSearch) first.
//           reply     u32 n, then n u64 object ids
//   KNN     request   2 f64: x y, then u32 k
//           reply     u32 n, then n x (u64 id, f64 distance)
//   INSERT  request   4 f64 rect, u64 object id
//           reply     empty
//   DELETE  request   4 f64 rect, u64 object id
//           reply     u8 found (1 when the entry existed)
//   STATS   request   empty
//           reply     UTF-8 JSON document (the server's rtb-serve stats)
//   error   reply     UTF-8 message; `status` carries the StatusCode
//
// Error handling contract (tests/protocol_test.cc): a frame whose *header*
// is unusable — frame_len below the prologue size or above the cap — means
// the byte stream can no longer be trusted, so the peer sends one error
// reply with request id 0 and closes (DecodeResult::kMalformed). A frame
// that frames correctly but fails typed parsing (unknown type, payload
// size mismatch, non-finite update geometry) yields a typed error reply
// carrying the frame's request id, and the connection continues — the
// length prefix kept the stream in sync. Nothing in this layer aborts.

#ifndef RTB_NET_PROTOCOL_H_
#define RTB_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/node.h"
#include "util/result.h"

namespace rtb::net {

/// Bytes between the length field and the payload: type, status, reserved,
/// request id.
inline constexpr size_t kPrologueBytes = 12;

/// Bytes of the length field itself.
inline constexpr size_t kLengthBytes = 4;

/// Hard cap on one frame's payload. Large enough for a ~128k-id search
/// reply; small enough that a hostile length prefix cannot balloon a
/// connection buffer.
inline constexpr size_t kMaxPayloadBytes = size_t{1} << 20;

enum class MsgType : uint8_t {
  kSearch = 1,
  kKnn = 2,
  kInsert = 3,
  kDelete = 4,
  kStats = 5,
};

/// Set on the type byte of every reply frame.
inline constexpr uint8_t kReplyBit = 0x80;

/// Capability bits advertised in the STATS reply's "capabilities" field
/// (a u64 rendered as a JSON number). Old servers omit the field, which
/// reads as 0 — no optional features.
inline constexpr uint64_t kCapOpenBoundSearch = uint64_t{1} << 0;

/// The capability set this build of the server advertises.
inline constexpr uint64_t kServerCapabilities = kCapOpenBoundSearch;

/// A decoded but not yet interpreted frame. `payload` points into the
/// caller's buffer and is only valid until that buffer changes.
struct Frame {
  uint8_t type = 0;
  uint8_t status = 0;
  uint64_t request_id = 0;
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
};

enum class DecodeResult {
  kFrame,     // *out holds a frame; *consumed bytes were used.
  kNeedMore,  // The buffer holds a frame prefix; read more bytes.
  kMalformed, // The header is unusable; the stream cannot be resynced.
};

/// Extracts one frame from [data, data+len). On kFrame, `*consumed` is the
/// total frame size (length field included) and `*out` points into `data`.
/// kMalformed means the length prefix itself is invalid (frame_len below
/// the prologue or above the payload cap) — the caller should error out and
/// close, because frame boundaries are lost.
DecodeResult DecodeFrame(const uint8_t* data, size_t len, Frame* out,
                         size_t* consumed);

/// One typed request (the server's admission unit).
struct Request {
  MsgType type = MsgType::kSearch;
  uint64_t request_id = 0;
  geom::Rect rect;             // kSearch / kInsert / kDelete.
  geom::Point point{0.0, 0.0}; // kKnn.
  uint32_t k = 0;              // kKnn.
  rtree::ObjectId id = 0;      // kInsert / kDelete.
};

/// Interprets a request frame. InvalidArgument on an unknown type, a
/// payload whose size does not match the type, or an insert/delete whose
/// rectangle has non-finite coordinates or is empty (lo > hi) — mutating
/// the tree with garbage geometry is refused at the boundary. The
/// connection may continue after the typed error reply; framing was intact.
Status ParseRequest(const Frame& frame, Request* out);

/// One kNN hit on the wire.
struct WireNeighbor {
  rtree::ObjectId id = 0;
  double distance = 0.0;
};

/// A decoded reply (client side; servers encode directly).
struct Reply {
  MsgType type = MsgType::kSearch; // The request's type (kReplyBit stripped).
  uint8_t status = 0;              // 0 = OK, else a StatusCode value.
  uint64_t request_id = 0;
  std::vector<rtree::ObjectId> ids;     // kSearch.
  std::vector<WireNeighbor> neighbors;  // kKnn.
  bool found = false;                   // kDelete.
  std::string text;                     // kStats JSON, or the error message.

  bool ok() const { return status == 0; }
};

/// Interprets a reply frame (must have kReplyBit set).
Status ParseReply(const Frame& frame, Reply* out);

// --- Encoders. All append to `out`; none can fail. -----------------------

void AppendSearchRequest(uint64_t request_id, const geom::Rect& rect,
                         std::vector<uint8_t>* out);
void AppendKnnRequest(uint64_t request_id, geom::Point p, uint32_t k,
                      std::vector<uint8_t>* out);
void AppendInsertRequest(uint64_t request_id, const geom::Rect& rect,
                         rtree::ObjectId id, std::vector<uint8_t>* out);
void AppendDeleteRequest(uint64_t request_id, const geom::Rect& rect,
                         rtree::ObjectId id, std::vector<uint8_t>* out);
void AppendStatsRequest(uint64_t request_id, std::vector<uint8_t>* out);

void AppendSearchReply(uint64_t request_id,
                       const std::vector<rtree::ObjectId>& ids,
                       std::vector<uint8_t>* out);
void AppendKnnReply(uint64_t request_id,
                    const std::vector<WireNeighbor>& neighbors,
                    std::vector<uint8_t>* out);
void AppendInsertReply(uint64_t request_id, std::vector<uint8_t>* out);
void AppendDeleteReply(uint64_t request_id, bool found,
                       std::vector<uint8_t>* out);
void AppendStatsReply(uint64_t request_id, const std::string& json,
                      std::vector<uint8_t>* out);

/// An error reply: `type` is the failing request's type (kReplyBit is added
/// here), `status` must be non-OK. Messages longer than the payload cap are
/// truncated rather than producing an unsendable frame.
void AppendErrorReply(uint64_t request_id, MsgType type, const Status& status,
                      std::vector<uint8_t>* out);

/// Generic encoder used by tests to exercise the decoder against arbitrary
/// type/status/payload combinations.
void AppendRawFrame(uint8_t type, uint8_t status, uint64_t request_id,
                    const uint8_t* payload, size_t payload_len,
                    std::vector<uint8_t>* out);

}  // namespace rtb::net

#endif  // RTB_NET_PROTOCOL_H_
