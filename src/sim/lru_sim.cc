#include "sim/lru_sim.h"

#include <string>

#include "util/macros.h"

namespace rtb::sim {

MbrListSimulator::MbrListSimulator(const rtree::TreeSummary* summary,
                                   SimOptions options)
    : summary_(summary), options_(options) {
  RTB_CHECK(summary_ != nullptr && summary_->NumNodes() > 0);
  const auto& nodes = summary_->nodes();

  children_.resize(nodes.size());
  for (uint32_t j = 1; j < nodes.size(); ++j) {
    RTB_CHECK(nodes[j].parent != rtree::kNoParent &&
              nodes[j].parent < nodes.size());
    children_[nodes[j].parent].push_back(j);
  }

  pinned_.assign(nodes.size(), false);
  pinned_pages_ = summary_->PagesInTopLevels(options_.pinned_levels);
  if (pinned_pages_ > options_.buffer_pages) {
    feasible_ = false;
    return;
  }
  if (options_.pinned_levels > 0) {
    const int min_pinned_level =
        static_cast<int>(summary_->height()) - options_.pinned_levels;
    for (uint32_t j = 0; j < nodes.size(); ++j) {
      if (static_cast<int>(nodes[j].level) >= min_pinned_level) {
        pinned_[j] = true;
      }
    }
  }
  effective_buffer_ = options_.buffer_pages - pinned_pages_;
}

void MbrListSimulator::ResetBuffer() {
  lru_list_.clear();
  lru_map_.clear();
}

void MbrListSimulator::Touch(uint32_t node_index, uint64_t* disk_accesses) {
  if (pinned_[node_index]) return;  // Always buffer-resident.
  auto it = lru_map_.find(node_index);
  if (it != lru_map_.end()) {
    // Hit: move to MRU position.
    lru_list_.splice(lru_list_.begin(), lru_list_, it->second);
    return;
  }
  ++*disk_accesses;
  if (effective_buffer_ == 0) return;  // No frames: miss every time.
  lru_list_.push_front(node_index);
  lru_map_[node_index] = lru_list_.begin();
  if (lru_map_.size() > effective_buffer_) {
    uint32_t victim = lru_list_.back();
    lru_list_.pop_back();
    lru_map_.erase(victim);
  }
}

void MbrListSimulator::Visit(uint32_t node_index, const geom::Rect& query,
                             uint64_t* disk_accesses,
                             uint64_t* node_accesses) {
  if (node_accesses != nullptr) ++*node_accesses;
  Touch(node_index, disk_accesses);
  const auto& nodes = summary_->nodes();
  for (uint32_t child : children_[node_index]) {
    if (nodes[child].mbr.Intersects(query)) {
      Visit(child, query, disk_accesses, node_accesses);
    }
  }
}

uint64_t MbrListSimulator::ExecuteQuery(const geom::Rect& query,
                                        uint64_t* node_accesses) {
  uint64_t disk_accesses = 0;
  const bool root_matches = summary_->nodes()[0].mbr.Intersects(query);
  if (root_matches) {
    Visit(0, query, &disk_accesses, node_accesses);
  } else if (options_.always_access_root) {
    if (node_accesses != nullptr) ++*node_accesses;
    Touch(0, &disk_accesses);
  }
  return disk_accesses;
}

Result<SimResult> MbrListSimulator::Run(QueryGenerator* gen, Rng* rng,
                                        uint32_t num_batches,
                                        uint64_t batch_size) {
  if (!feasible_) {
    return Status::InvalidArgument(
        "pinned levels need " + std::to_string(pinned_pages_) +
        " pages but the buffer holds only " +
        std::to_string(options_.buffer_pages));
  }
  if (num_batches == 0 || batch_size == 0) {
    return Status::InvalidArgument("need at least one batch and one query");
  }

  SimResult result;

  // Warm-up.
  if (options_.warmup_queries > 0) {
    for (uint64_t i = 0; i < options_.warmup_queries; ++i) {
      ExecuteQuery(gen->Next(*rng), nullptr);
    }
    result.warmup_used = options_.warmup_queries;
  } else {
    // Automatic: until the buffer fills (paper's steady-state criterion) or
    // a long miss-free streak shows everything reachable is cached.
    uint64_t streak = 0;
    const uint64_t kStreakTarget = 1000;
    uint64_t used = 0;
    while (used < options_.max_auto_warmup && !BufferFull() &&
           streak < kStreakTarget) {
      uint64_t misses = ExecuteQuery(gen->Next(*rng), nullptr);
      streak = misses == 0 ? streak + 1 : 0;
      ++used;
    }
    result.warmup_used = used;
  }

  uint64_t total_node_accesses = 0;
  for (uint32_t b = 0; b < num_batches; ++b) {
    uint64_t batch_disk = 0;
    for (uint64_t q = 0; q < batch_size; ++q) {
      batch_disk += ExecuteQuery(gen->Next(*rng), &total_node_accesses);
    }
    result.disk_access_batches.AddBatch(static_cast<double>(batch_disk) /
                                        static_cast<double>(batch_size));
  }
  result.queries_measured = static_cast<uint64_t>(num_batches) * batch_size;
  result.mean_disk_accesses = result.disk_access_batches.Mean();
  result.mean_node_accesses =
      static_cast<double>(total_node_accesses) /
      static_cast<double>(result.queries_measured);
  result.ci_halfwidth_90 = result.disk_access_batches.HalfWidth(0.90);
  return result;
}

}  // namespace rtb::sim
