// End-to-end workload runner: executes real R-tree queries through a real
// buffer pool and reports actual disk accesses. Used to cross-validate the
// MBR-list simulator and to run the replacement-policy ablations (the
// analytical model only covers LRU).

#ifndef RTB_SIM_RUNNER_H_
#define RTB_SIM_RUNNER_H_

#include <cstdint>

#include "rtree/rtree.h"
#include "rtree/summary.h"
#include "sim/query_gen.h"
#include "storage/buffer_pool.h"
#include "util/result.h"
#include "util/rng.h"

namespace rtb::sim {

/// Results of an end-to-end run.
struct WorkloadResult {
  uint64_t queries = 0;
  uint64_t disk_accesses = 0;  // Store reads during the measured phase.
  uint64_t node_accesses = 0;  // Logical node visits.

  double MeanDiskAccesses() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(disk_accesses) /
                              static_cast<double>(queries);
  }
  double MeanNodeAccesses() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(node_accesses) /
                              static_cast<double>(queries);
  }
};

/// Permanently pins the pages of the top `levels` levels of the tree
/// described by `summary` into `pool`. Fails with ResourceExhausted when
/// they do not fit.
Status PinTopLevels(storage::PageCache* pool,
                    const rtree::TreeSummary& summary, uint16_t levels);

/// Runs `warmup + queries` queries from `gen` against `tree`; only the last
/// `queries` are measured. Disk accesses are taken from the tree's page
/// store counters (reset around the measured phase).
Result<WorkloadResult> RunWorkload(rtree::RTree* tree,
                                   storage::PageStore* store,
                                   QueryGenerator* gen, Rng* rng,
                                   uint64_t warmup, uint64_t queries);

}  // namespace rtb::sim

#endif  // RTB_SIM_RUNNER_H_
