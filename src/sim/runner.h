// End-to-end workload runner: executes real R-tree queries through a real
// buffer pool and reports actual disk accesses. Used to cross-validate the
// MBR-list simulator, to run the replacement-policy ablations (the
// analytical model only covers LRU), and as the single execution path of
// the experiment engine (engine/engine.h).
//
// One executor serves every configuration:
//
//   * threads == 1 runs the paper's serial query stream on the calling
//     thread — the exact instruction sequence (same RNG stream, same query
//     order) of the historical serial runner, so its counters are
//     byte-identical to every result published before the unification.
//   * threads > 1 fans the stream out over worker threads; worker w draws
//     its queries from an independent RNG substream seeded base_seed + w,
//     so a run is a pure function of (tree, options) regardless of thread
//     scheduling. The tree's page cache must then be internally
//     synchronized (ShardedBufferPool).
//
// Phases: all workers first run their slice of the warm-up queries; after a
// join barrier the store's read counter is snapshotted; then all workers
// run their measured slice. Disk accesses are the store-read delta across
// the measured phase.

#ifndef RTB_SIM_RUNNER_H_
#define RTB_SIM_RUNNER_H_

#include <cstdint>
#include <vector>

#include "rtree/rtree.h"
#include "rtree/summary.h"
#include "sim/query_gen.h"
#include "storage/buffer_pool.h"
#include "util/result.h"
#include "util/rng.h"

namespace rtb::sim {

/// Logical counters of one worker's slice of a run. Disk accesses are only
/// meaningful in the reduced WorkloadResult view: the page cache is shared,
/// so misses cannot be attributed to a single worker.
struct WorkerResult {
  uint64_t queries = 0;
  uint64_t node_accesses = 0;
};

/// Results of an end-to-end run — the one result type shared by the serial
/// path, the parallel path and the experiment engine.
struct WorkloadResult {
  uint64_t queries = 0;        // All operations (searches + updates).
  uint64_t disk_accesses = 0;  // Store reads during the measured phase.
  uint64_t node_accesses = 0;  // Logical node visits.
  // Mixed-workload breakdown (zero for pure query runs). `deletes` counts
  // delete operations issued; a delete whose victim was already removed by
  // an earlier class over the same ledger is still counted here.
  uint64_t searches = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  double warmup_seconds = 0.0;   // Wall time of the warm-up phase.
  double elapsed_seconds = 0.0;  // Wall time of the measured phase.
  /// Per-worker breakdown; one entry per worker (a single entry for serial
  /// runs).
  std::vector<WorkerResult> per_worker;

  double MeanDiskAccesses() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(disk_accesses) /
                              static_cast<double>(queries);
  }
  double MeanNodeAccesses() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(node_accesses) /
                              static_cast<double>(queries);
  }
  double QueriesPerSecond() const {
    return elapsed_seconds > 0.0
               ? static_cast<double>(queries) / elapsed_seconds
               : 0.0;
  }
};

/// Configuration for a run.
struct WorkloadOptions {
  uint32_t threads = 1;    // Worker count; 1 is the paper's serial stream.
  uint64_t base_seed = 1;  // Worker w uses Rng(base_seed + w).
  uint64_t warmup = 0;     // Warm-up queries, split across workers.
  uint64_t queries = 0;    // Measured queries, split across workers.
  /// Queries executed together through rtree::BatchExecutor (level-
  /// synchronous, page-ordered traversal). <= 1 runs the classic serial
  /// per-query loop — the exact instruction sequence of the historical
  /// runner, so all published counters stay valid. Query generation order
  /// is identical in both modes (the generators draw a fixed number of RNG
  /// values per query), so a batched run sees the same query stream.
  uint64_t batch_size = 1;
  /// Lift the per-worker frontiers into one page-ordered work queue shared
  /// by all workers (rtree::SharedBatchExecutor): duplicate page visits
  /// coalesce across threads, not just within a batch. Requires
  /// batch_size >= 2. Workers then execute their rounds collectively, so a
  /// worker with an exhausted slice still participates with an empty batch;
  /// node-access counts are global per round and attributed to worker 0.
  /// The query stream per worker is unchanged.
  bool shared_frontier = false;
  /// Mixed insert/delete/search workload. Each operation first draws its
  /// rectangle from the generator, then a uniform double u classifies it:
  /// u < insert_frac inserts the rectangle with a fresh id;
  /// u < insert_frac + delete_frac deletes a uniformly chosen entry from
  /// the present-entry ledger (degrading to an insert while the ledger is
  /// empty); otherwise it is a search. Both fractions 0 (the default) is
  /// the pure query workload, whose RNG stream and counters are unchanged.
  /// Mixed runs mutate the tree, so they require threads == 1 and no
  /// shared frontier; searches then run through the classic serial loop
  /// regardless of batch_size.
  double insert_frac = 0.0;
  double delete_frac = 0.0;
  /// Updates buffered per rtree::UpdateBatchExecutor batch (group-by-leaf
  /// application, vectored dirty-page writeback). <= 1 applies each update
  /// tuple-at-a-time through RTree::Insert / RTree::Delete — Guttman's
  /// Delete/FindLeaf/CondenseTree — the batched path's equivalence oracle.
  /// Searches are never buffered: they execute in stream order against the
  /// tree as of the last drained update batch.
  uint64_t update_batch_size = 1;
  /// Seeds the present-entry ledger for delete victims: the rectangles the
  /// tree was built from, whose object ids are their indexes (the
  /// bulk-load contract). Required when delete_frac > 0.
  const std::vector<geom::Rect>* dataset = nullptr;
  /// Ids for fresh inserts count up from here; runs of different classes
  /// over one tree use disjoint bases so their entries never collide.
  uint64_t insert_id_base = uint64_t{1} << 40;
};

/// Permanently pins the pages of the top `levels` levels of the tree
/// described by `summary` into `pool`. Fails with ResourceExhausted when
/// they do not fit.
Status PinTopLevels(storage::PageCache* pool,
                    const rtree::TreeSummary& summary, uint16_t levels);

/// Runs `options.warmup + options.queries` queries from `gen` against
/// `tree`, fanned out over `options.threads` workers; only the measured
/// phase is counted. The generator must be stateless across Next() calls
/// (all generators in query_gen.h are); the tree's page cache must be
/// thread-safe when threads > 1. Queries are split evenly; worker w
/// executes ceil-or-floor(queries / threads) of them with its own RNG
/// substream. Disk accesses are taken from the tree's page store counters.
Result<WorkloadResult> RunWorkload(rtree::RTree* tree,
                                   storage::PageStore* store,
                                   QueryGenerator* gen,
                                   const WorkloadOptions& options);

/// Legacy serial entry point: a thin wrapper over the unified executor that
/// draws every query from the caller's `rng` (whose state advances), on the
/// calling thread.
Result<WorkloadResult> RunWorkload(rtree::RTree* tree,
                                   storage::PageStore* store,
                                   QueryGenerator* gen, Rng* rng,
                                   uint64_t warmup, uint64_t queries);

}  // namespace rtb::sim

#endif  // RTB_SIM_RUNNER_H_
