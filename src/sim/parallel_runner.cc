#include "sim/parallel_runner.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

namespace rtb::sim {

namespace {

// Queries assigned to worker `w` out of `total` split over `threads`.
uint64_t SliceSize(uint64_t total, uint32_t threads, uint32_t w) {
  return total / threads + (w < total % threads ? 1 : 0);
}

// Runs `fn(w)` on `threads` workers and joins. Worker 0 runs on the calling
// thread, so a single-threaded run never leaves the caller's thread and is
// instruction-identical to a plain loop.
template <typename Fn>
void FanOut(uint32_t threads, Fn&& fn) {
  std::vector<std::thread> pool;
  pool.reserve(threads > 0 ? threads - 1 : 0);
  for (uint32_t w = 1; w < threads; ++w) {
    pool.emplace_back([&fn, w] { fn(w); });
  }
  fn(0);
  for (std::thread& t : pool) t.join();
}

}  // namespace

Result<ParallelResult> RunParallelWorkload(rtree::RTree* tree,
                                           storage::PageStore* store,
                                           QueryGenerator* gen,
                                           const ParallelOptions& options) {
  RTB_CHECK(tree != nullptr && store != nullptr && gen != nullptr);
  if (options.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  const uint32_t threads = options.threads;

  // Per-worker deterministic RNG substreams; each worker keeps one stream
  // across the warm-up and measured phases, like the serial runner does.
  std::vector<Rng> rngs;
  rngs.reserve(threads);
  for (uint32_t w = 0; w < threads; ++w) {
    rngs.emplace_back(options.base_seed + w);
  }

  std::vector<Status> statuses(threads, Status::OK());
  ParallelResult result;
  result.per_worker.assign(threads, WorkloadResult{});

  // Phase 1: warm-up (not measured).
  FanOut(threads, [&](uint32_t w) {
    std::vector<rtree::ObjectId> sink;
    const uint64_t n = SliceSize(options.warmup, threads, w);
    for (uint64_t i = 0; i < n; ++i) {
      sink.clear();
      Status s = tree->Search(gen->Next(rngs[w]), &sink);
      if (!s.ok()) {
        statuses[w] = std::move(s);
        return;
      }
    }
  });
  for (Status& s : statuses) {
    RTB_RETURN_IF_ERROR(std::move(s));
    s = Status::OK();
  }

  // The join above is the barrier: every warm-up query's disk reads are in
  // the counter before the snapshot.
  const uint64_t reads_before = store->stats().reads;
  const auto start = std::chrono::steady_clock::now();

  // Phase 2: measured queries.
  FanOut(threads, [&](uint32_t w) {
    std::vector<rtree::ObjectId> sink;
    rtree::QueryStats stats;
    const uint64_t n = SliceSize(options.queries, threads, w);
    for (uint64_t i = 0; i < n; ++i) {
      sink.clear();
      Status s = tree->Search(gen->Next(rngs[w]), &sink, &stats);
      if (!s.ok()) {
        statuses[w] = std::move(s);
        return;
      }
    }
    result.per_worker[w].queries = n;
    result.per_worker[w].node_accesses = stats.nodes_accessed;
  });
  for (Status& s : statuses) {
    RTB_RETURN_IF_ERROR(std::move(s));
  }

  const auto end = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  for (const WorkloadResult& w : result.per_worker) {
    result.total.queries += w.queries;
    result.total.node_accesses += w.node_accesses;
  }
  result.total.disk_accesses = store->stats().reads - reads_before;
  return result;
}

}  // namespace rtb::sim
