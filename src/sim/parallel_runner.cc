#include "sim/parallel_runner.h"

namespace rtb::sim {

Result<WorkloadResult> RunParallelWorkload(rtree::RTree* tree,
                                           storage::PageStore* store,
                                           QueryGenerator* gen,
                                           const WorkloadOptions& options) {
  return RunWorkload(tree, store, gen, options);
}

}  // namespace rtb::sim
