// Query generators matching the paper's workloads.
//
//  * Uniform point queries: a point uniform over the unit square.
//  * Uniform region queries of size qx x qy whose top-right corner is
//    uniform over U' = [qx,1] x [qy,1], so the query fits inside the unit
//    square (Section 3.1, Fig. 3).
//  * Data-driven queries: a qx x qy rectangle centered at a uniformly chosen
//    data-rectangle center (Section 3.2); qx = qy = 0 gives data-driven
//    point queries.

#ifndef RTB_SIM_QUERY_GEN_H_
#define RTB_SIM_QUERY_GEN_H_

#include <memory>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "model/access_prob.h"
#include "util/result.h"
#include "util/rng.h"

namespace rtb::sim {

/// Produces a stream of query rectangles. Implementations are deterministic
/// functions of the Rng stream.
class QueryGenerator {
 public:
  virtual ~QueryGenerator() = default;

  /// Draws the next query rectangle.
  virtual geom::Rect Next(Rng& rng) = 0;
};

/// Uniform point queries over the unit square.
class UniformPointGenerator final : public QueryGenerator {
 public:
  geom::Rect Next(Rng& rng) override;
};

/// Uniform qx x qy region queries contained in the unit square.
class UniformRegionGenerator final : public QueryGenerator {
 public:
  /// Requires 0 <= qx < 1, 0 <= qy < 1 (qx = qy = 0 degenerates to points).
  UniformRegionGenerator(double qx, double qy);

  geom::Rect Next(Rng& rng) override;

 private:
  double qx_;
  double qy_;
};

/// qx x qy queries centered at a uniformly chosen data center. The centers
/// vector is referenced, not copied; it must outlive the generator.
class DataDrivenGenerator final : public QueryGenerator {
 public:
  DataDrivenGenerator(const std::vector<geom::Point>* centers, double qx,
                      double qy);

  geom::Rect Next(Rng& rng) override;

 private:
  const std::vector<geom::Point>* centers_;
  double qx_;
  double qy_;
};

/// Builds the generator matching a model::QuerySpec so simulations and the
/// analytical model describe the same workload. For data-driven specs,
/// `centers` must be non-null and outlive the generator.
Result<std::unique_ptr<QueryGenerator>> MakeGenerator(
    const model::QuerySpec& spec,
    const std::vector<geom::Point>* centers = nullptr);

}  // namespace rtb::sim

#endif  // RTB_SIM_QUERY_GEN_H_
