// Query generators for the unified query classes (model/query_class.h).
//
//  * Uniform centers: point queries uniform over the unit square; qx x qy
//    region queries whose top-right corner is uniform over
//    U' = [qx,1] x [qy,1], so the query fits inside the unit square
//    (Section 3.1, Fig. 3). An open axis emits [-inf, +inf] — the query
//    constrains only the fixed axes (partial match).
//  * Data centers: a qx x qy rectangle centered at a uniformly chosen
//    data-rectangle center (Section 3.2); qx = qy = 0 gives data-driven
//    point queries.
//  * Cluster centers: the center is a Zipf-weighted hotspot plus a
//    Gaussian offset (skewed workloads); hotspot placement is derived from
//    the class's placement seed, identically to the analytic model.
//
// Generators are constructed through a registry keyed by the class's
// center-source name, so new center sources plug in without touching this
// file. All generators are immutable after construction: Next() reads only
// the caller's Rng, so one generator instance is safely shared across
// worker threads, each drawing from its own substream — which is what
// makes worker streams byte-identical regardless of thread count.
//
// Center-set lifetime: generators that sample data centers share ownership
// of the vector (shared_ptr), so a spec-built generator cannot dangle when
// the dataset that produced it is rebuilt or freed mid-run. Call sites
// whose centers provably outlive the generator (benches with stack-owned
// workloads) may use GeneratorContext::Borrowing.

#ifndef RTB_SIM_QUERY_GEN_H_
#define RTB_SIM_QUERY_GEN_H_

#include <memory>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "model/access_prob.h"
#include "model/query_class.h"
#include "util/result.h"
#include "util/rng.h"

namespace rtb::sim {

/// Produces a stream of query rectangles. Implementations are deterministic
/// functions of the Rng stream and hold no mutable state, so one instance
/// may be shared across threads (each with its own Rng).
class QueryGenerator {
 public:
  virtual ~QueryGenerator() = default;

  /// Draws the next query rectangle.
  virtual geom::Rect Next(Rng& rng) = 0;
};

/// Everything a generator factory may need beyond the QueryClass itself.
struct GeneratorContext {
  /// Data-rectangle centers, shared with the generator ("data" centers).
  std::shared_ptr<const std::vector<geom::Point>> centers;

  /// Wraps a caller-owned vector without taking ownership (aliasing
  /// shared_ptr with a no-op deleter). The caller guarantees `centers`
  /// outlives every generator built from this context.
  static GeneratorContext Borrowing(const std::vector<geom::Point>* centers);
};

/// Uniform point queries over the unit square.
class UniformPointGenerator final : public QueryGenerator {
 public:
  geom::Rect Next(Rng& rng) override;
};

/// Uniform region queries contained in the unit square; open axes emit
/// [-inf, +inf].
class UniformRegionGenerator final : public QueryGenerator {
 public:
  /// Requires 0 <= qx < 1, 0 <= qy < 1 (qx = qy = 0 degenerates to points).
  UniformRegionGenerator(double qx, double qy);
  /// Open-axis aware form; fixed extents must be in [0, 1).
  UniformRegionGenerator(model::AxisExtent x, model::AxisExtent y);

  geom::Rect Next(Rng& rng) override;

 private:
  model::AxisExtent x_;
  model::AxisExtent y_;
};

/// Queries centered at a uniformly chosen data center. Shares ownership of
/// the center set; open axes emit [-inf, +inf].
class DataDrivenGenerator final : public QueryGenerator {
 public:
  DataDrivenGenerator(std::shared_ptr<const std::vector<geom::Point>> centers,
                      model::AxisExtent x, model::AxisExtent y);
  DataDrivenGenerator(std::shared_ptr<const std::vector<geom::Point>> centers,
                      double qx, double qy);

  geom::Rect Next(Rng& rng) override;

 private:
  std::shared_ptr<const std::vector<geom::Point>> centers_;
  model::AxisExtent x_;
  model::AxisExtent y_;
};

/// Queries centered near Zipf-weighted Gaussian hotspots (skewed
/// workloads). The hotspot table and Zipf CDF are fixed at construction
/// (model::DeriveHotspots / model::ZipfWeights), so the instance is
/// immutable and thread-shareable like every other generator.
class ClusterHotspotGenerator final : public QueryGenerator {
 public:
  explicit ClusterHotspotGenerator(const model::QueryClass& qc);

  geom::Rect Next(Rng& rng) override;

  const std::vector<geom::Point>& hotspots() const { return hotspots_; }

 private:
  model::AxisExtent x_;
  model::AxisExtent y_;
  double spread_;
  std::vector<geom::Point> hotspots_;
  std::vector<double> cdf_;  // Cumulative Zipf weights over hotspot ranks.
};

/// A factory building a generator for one center source.
using GeneratorFactory = Result<std::unique_ptr<QueryGenerator>> (*)(
    const model::QueryClass& qc, const GeneratorContext& ctx);

/// Registers a center source under `center`. The builtins ("uniform",
/// "data", "cluster") are pre-registered; registering a name twice is an
/// error. `needs_centers` declares that the factory requires ctx.centers,
/// which the spec engine uses to materialize data centers up front.
Status RegisterGenerator(const std::string& center, GeneratorFactory factory,
                         bool needs_centers = false);

/// True when `center` names a registered center source.
bool HasGenerator(const std::string& center);

/// True when `center` is registered and its factory requires ctx.centers.
bool GeneratorNeedsCenters(const std::string& center);

/// Builds the generator matching a query class through the registry, so
/// simulations and the analytical model describe the same workload.
Result<std::unique_ptr<QueryGenerator>> MakeGenerator(
    const model::QueryClass& qc, const GeneratorContext& ctx = {});

/// Borrowing convenience for call sites whose centers outlive the
/// generator (the legacy signature): equivalent to passing
/// GeneratorContext::Borrowing(centers).
Result<std::unique_ptr<QueryGenerator>> MakeGenerator(
    const model::QueryClass& qc, const std::vector<geom::Point>* centers);

}  // namespace rtb::sim

#endif  // RTB_SIM_QUERY_GEN_H_
