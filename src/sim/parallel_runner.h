// Parallel workload runner: partitions a query stream across a pool of
// worker threads that execute real R-tree queries through a shared,
// thread-safe page cache (ShardedBufferPool).
//
// Determinism: worker w draws its queries from an independent RNG substream
// seeded `base_seed + w`, so a run is a pure function of
// (tree, options) regardless of thread scheduling. With threads == 1 the
// runner executes the exact instruction sequence of the serial RunWorkload
// (same RNG stream, same query order), so its WorkloadResult is
// byte-identical to the serial runner's on the same tree and pool
// configuration.
//
// Phases: all workers first run their slice of the warm-up queries; after a
// join barrier the store's read counter is snapshotted; then all workers
// run their measured slice. Disk accesses are the store-read delta across
// the measured phase, exactly as in the serial runner.

#ifndef RTB_SIM_PARALLEL_RUNNER_H_
#define RTB_SIM_PARALLEL_RUNNER_H_

#include <cstdint>
#include <vector>

#include "rtree/rtree.h"
#include "sim/query_gen.h"
#include "sim/runner.h"
#include "storage/page_store.h"
#include "util/result.h"

namespace rtb::sim {

/// Configuration for a parallel run.
struct ParallelOptions {
  uint32_t threads = 1;    // Worker count; 1 reproduces the serial runner.
  uint64_t base_seed = 1;  // Worker w uses Rng(base_seed + w).
  uint64_t warmup = 0;     // Warm-up queries, split across workers.
  uint64_t queries = 0;    // Measured queries, split across workers.
};

/// Results of a parallel run.
struct ParallelResult {
  WorkloadResult total;  // Reduced over all workers.
  /// Per-worker counters (disk accesses are only meaningful in the reduced
  /// view: the page cache is shared, so misses cannot be attributed to a
  /// single worker).
  std::vector<WorkloadResult> per_worker;
  double elapsed_seconds = 0.0;  // Wall time of the measured phase.

  double QueriesPerSecond() const {
    return elapsed_seconds > 0.0
               ? static_cast<double>(total.queries) / elapsed_seconds
               : 0.0;
  }
};

/// Runs `options.warmup + options.queries` queries from `gen` against
/// `tree`, fanned out over `options.threads` workers. The generator must be
/// stateless across Next() calls (all generators in query_gen.h are); the
/// tree's page cache must be thread-safe when threads > 1
/// (ShardedBufferPool). Queries are split evenly; worker w executes
/// ceil-or-floor(queries / threads) of them with its own RNG substream.
Result<ParallelResult> RunParallelWorkload(rtree::RTree* tree,
                                           storage::PageStore* store,
                                           QueryGenerator* gen,
                                           const ParallelOptions& options);

}  // namespace rtb::sim

#endif  // RTB_SIM_PARALLEL_RUNNER_H_
