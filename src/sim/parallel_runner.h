// Legacy parallel-runner entry point. The unified executor in sim/runner.h
// subsumed this layer (one code path for serial and parallel runs, one
// WorkloadResult type); RunParallelWorkload and its option/result names are
// kept as thin compatibility wrappers.

#ifndef RTB_SIM_PARALLEL_RUNNER_H_
#define RTB_SIM_PARALLEL_RUNNER_H_

#include "sim/runner.h"

namespace rtb::sim {

/// Historical names for the unified option/result types.
using ParallelOptions = WorkloadOptions;
using ParallelResult = WorkloadResult;

/// Thin wrapper over RunWorkload(tree, store, gen, options).
Result<WorkloadResult> RunParallelWorkload(rtree::RTree* tree,
                                           storage::PageStore* store,
                                           QueryGenerator* gen,
                                           const WorkloadOptions& options);

}  // namespace rtb::sim

#endif  // RTB_SIM_PARALLEL_RUNNER_H_
