#include "sim/query_gen.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "util/macros.h"

namespace rtb::sim {

using geom::Point;
using geom::Rect;
using model::AxisExtent;
using model::QueryClass;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool ValidFixedExtent(const AxisExtent& ax) {
  return ax.open || (ax.length >= 0.0 && ax.length < 1.0);
}

Result<std::unique_ptr<QueryGenerator>> MakeUniform(
    const QueryClass& qc, const GeneratorContext& /*ctx*/) {
  if (qc.is_point()) {
    return std::unique_ptr<QueryGenerator>(new UniformPointGenerator());
  }
  if (!ValidFixedExtent(qc.x) || !ValidFixedExtent(qc.y)) {
    return Status::InvalidArgument("region extents must be < 1");
  }
  return std::unique_ptr<QueryGenerator>(
      new UniformRegionGenerator(qc.x, qc.y));
}

Result<std::unique_ptr<QueryGenerator>> MakeDataDriven(
    const QueryClass& qc, const GeneratorContext& ctx) {
  if (ctx.centers == nullptr || ctx.centers->empty()) {
    return Status::InvalidArgument(
        "data-driven generator requires data centers");
  }
  return std::unique_ptr<QueryGenerator>(
      new DataDrivenGenerator(ctx.centers, qc.x, qc.y));
}

Result<std::unique_ptr<QueryGenerator>> MakeCluster(
    const QueryClass& qc, const GeneratorContext& /*ctx*/) {
  RTB_RETURN_IF_ERROR(qc.Validate());
  return std::unique_ptr<QueryGenerator>(new ClusterHotspotGenerator(qc));
}

struct RegistryEntry {
  GeneratorFactory factory = nullptr;
  bool needs_centers = false;
};

std::map<std::string, RegistryEntry>& Registry() {
  static std::map<std::string, RegistryEntry>* registry = [] {
    auto* r = new std::map<std::string, RegistryEntry>();
    (*r)[model::kCenterUniform] = {&MakeUniform, false};
    (*r)[model::kCenterData] = {&MakeDataDriven, true};
    (*r)[model::kCenterCluster] = {&MakeCluster, false};
    return r;
  }();
  return *registry;
}

}  // namespace

GeneratorContext GeneratorContext::Borrowing(
    const std::vector<Point>* centers) {
  GeneratorContext ctx;
  if (centers != nullptr) {
    // Aliasing shared_ptr: no ownership, no deleter — the caller keeps the
    // vector alive.
    ctx.centers = std::shared_ptr<const std::vector<Point>>(
        std::shared_ptr<const std::vector<Point>>(), centers);
  }
  return ctx;
}

Rect UniformPointGenerator::Next(Rng& rng) {
  return Rect::FromPoint(Point{rng.NextDouble(), rng.NextDouble()});
}

UniformRegionGenerator::UniformRegionGenerator(double qx, double qy)
    : UniformRegionGenerator(AxisExtent::Fixed(qx), AxisExtent::Fixed(qy)) {}

UniformRegionGenerator::UniformRegionGenerator(AxisExtent x, AxisExtent y)
    : x_(x), y_(y) {
  RTB_CHECK(ValidFixedExtent(x_) && ValidFixedExtent(y_));
}

Rect UniformRegionGenerator::Next(Rng& rng) {
  // Per fixed axis, the top-right corner is uniform over [q, 1] (the
  // paper's anchored placement); an open axis spans the whole axis and
  // consumes no draw, so the fixed axes' streams are unchanged by opening
  // the other axis.
  double lo_x = -kInf, hi_x = kInf;
  if (!x_.open) {
    hi_x = rng.Uniform(x_.length, 1.0);
    lo_x = hi_x - x_.length;
  }
  double lo_y = -kInf, hi_y = kInf;
  if (!y_.open) {
    hi_y = rng.Uniform(y_.length, 1.0);
    lo_y = hi_y - y_.length;
  }
  return Rect(lo_x, lo_y, hi_x, hi_y);
}

DataDrivenGenerator::DataDrivenGenerator(
    std::shared_ptr<const std::vector<Point>> centers, AxisExtent x,
    AxisExtent y)
    : centers_(std::move(centers)), x_(x), y_(y) {
  RTB_CHECK(centers_ != nullptr && !centers_->empty());
  RTB_CHECK(x_.open || x_.length >= 0.0);
  RTB_CHECK(y_.open || y_.length >= 0.0);
}

DataDrivenGenerator::DataDrivenGenerator(
    std::shared_ptr<const std::vector<Point>> centers, double qx, double qy)
    : DataDrivenGenerator(std::move(centers), AxisExtent::Fixed(qx),
                          AxisExtent::Fixed(qy)) {}

Rect DataDrivenGenerator::Next(Rng& rng) {
  const Point& c = (*centers_)[rng.UniformInt(centers_->size())];
  const double lo_x = x_.open ? -kInf : c.x - x_.length / 2.0;
  const double hi_x = x_.open ? kInf : c.x + x_.length / 2.0;
  const double lo_y = y_.open ? -kInf : c.y - y_.length / 2.0;
  const double hi_y = y_.open ? kInf : c.y + y_.length / 2.0;
  return Rect(lo_x, lo_y, hi_x, hi_y);
}

ClusterHotspotGenerator::ClusterHotspotGenerator(const QueryClass& qc)
    : x_(qc.x),
      y_(qc.y),
      spread_(qc.cluster.spread),
      hotspots_(model::DeriveHotspots(qc.cluster)) {
  RTB_CHECK(!hotspots_.empty());
  const std::vector<double> weights =
      model::ZipfWeights(qc.cluster.hotspots, qc.cluster.skew);
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += w;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;  // Guard against accumulated rounding.
}

Rect ClusterHotspotGenerator::Next(Rng& rng) {
  // Fixed draw order — one uniform for the hotspot rank, two Gaussians for
  // the center offset — keeps the stream identical for any axis
  // open/fixed combination.
  const double u = rng.NextDouble();
  size_t h = static_cast<size_t>(
      std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  if (h >= hotspots_.size()) h = hotspots_.size() - 1;
  const double cx = hotspots_[h].x + spread_ * rng.NextGaussian();
  const double cy = hotspots_[h].y + spread_ * rng.NextGaussian();
  // Center-anchored like the data-driven generator; no clamping to the
  // unit square, which is what keeps the Gaussian-mixture model exact.
  const double lo_x = x_.open ? -kInf : cx - x_.length / 2.0;
  const double hi_x = x_.open ? kInf : cx + x_.length / 2.0;
  const double lo_y = y_.open ? -kInf : cy - y_.length / 2.0;
  const double hi_y = y_.open ? kInf : cy + y_.length / 2.0;
  return Rect(lo_x, lo_y, hi_x, hi_y);
}

Status RegisterGenerator(const std::string& center, GeneratorFactory factory,
                         bool needs_centers) {
  if (factory == nullptr) {
    return Status::InvalidArgument("generator factory must be non-null");
  }
  auto [it, inserted] =
      Registry().emplace(center, RegistryEntry{factory, needs_centers});
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("generator '" + center +
                                   "' is already registered");
  }
  return Status::OK();
}

bool HasGenerator(const std::string& center) {
  return Registry().count(center) != 0;
}

bool GeneratorNeedsCenters(const std::string& center) {
  auto it = Registry().find(center);
  return it != Registry().end() && it->second.needs_centers;
}

Result<std::unique_ptr<QueryGenerator>> MakeGenerator(
    const QueryClass& qc, const GeneratorContext& ctx) {
  auto it = Registry().find(qc.center);
  if (it == Registry().end()) {
    return Status::InvalidArgument("unknown query center '" + qc.center +
                                   "' (no registered generator)");
  }
  return it->second.factory(qc, ctx);
}

Result<std::unique_ptr<QueryGenerator>> MakeGenerator(
    const QueryClass& qc, const std::vector<Point>* centers) {
  return MakeGenerator(qc, GeneratorContext::Borrowing(centers));
}

}  // namespace rtb::sim
