#include "sim/query_gen.h"

#include "util/macros.h"

namespace rtb::sim {

using geom::Point;
using geom::Rect;

Rect UniformPointGenerator::Next(Rng& rng) {
  return Rect::FromPoint(Point{rng.NextDouble(), rng.NextDouble()});
}

UniformRegionGenerator::UniformRegionGenerator(double qx, double qy)
    : qx_(qx), qy_(qy) {
  RTB_CHECK(qx >= 0.0 && qx < 1.0 && qy >= 0.0 && qy < 1.0);
}

Rect UniformRegionGenerator::Next(Rng& rng) {
  // Top-right corner uniform over U' = [qx,1] x [qy,1].
  double tr_x = rng.Uniform(qx_, 1.0);
  double tr_y = rng.Uniform(qy_, 1.0);
  return Rect(tr_x - qx_, tr_y - qy_, tr_x, tr_y);
}

DataDrivenGenerator::DataDrivenGenerator(const std::vector<Point>* centers,
                                         double qx, double qy)
    : centers_(centers), qx_(qx), qy_(qy) {
  RTB_CHECK(centers_ != nullptr && !centers_->empty());
  RTB_CHECK(qx >= 0.0 && qy >= 0.0);
}

Rect DataDrivenGenerator::Next(Rng& rng) {
  const Point& c = (*centers_)[rng.UniformInt(centers_->size())];
  return Rect(c.x - qx_ / 2.0, c.y - qy_ / 2.0, c.x + qx_ / 2.0,
              c.y + qy_ / 2.0);
}

Result<std::unique_ptr<QueryGenerator>> MakeGenerator(
    const model::QuerySpec& spec, const std::vector<Point>* centers) {
  switch (spec.model) {
    case model::QueryModel::kUniform:
      if (spec.is_point()) {
        return std::unique_ptr<QueryGenerator>(new UniformPointGenerator());
      }
      if (spec.qx >= 1.0 || spec.qy >= 1.0) {
        return Status::InvalidArgument("region extents must be < 1");
      }
      return std::unique_ptr<QueryGenerator>(
          new UniformRegionGenerator(spec.qx, spec.qy));
    case model::QueryModel::kDataDriven:
      if (centers == nullptr || centers->empty()) {
        return Status::InvalidArgument(
            "data-driven generator requires data centers");
      }
      return std::unique_ptr<QueryGenerator>(
          new DataDrivenGenerator(centers, spec.qx, spec.qy));
  }
  return Status::InvalidArgument("unknown query model");
}

}  // namespace rtb::sim
