// MbrListSimulator: the paper's validation simulator (Section 4).
//
// "The simulation models an LRU buffer and, like the model, takes as input
// the list of the MBRs for all nodes at all levels. It then generates random
// ... queries ... and checks each node's MBR [for intersection]. If the MBR
// does [intersect], the node is requested from the buffer pool."
//
// The simulator walks the real tree structure (children of pruned nodes are
// never touched — for a consistent R-tree the visited set is identical to
// the MBR filter the paper describes, but the walk issues requests in true
// depth-first traversal order and costs O(visited) instead of O(M) per
// query). Note one paper fidelity detail: the root is requested only when
// its MBR matches the query; a production R-tree always reads the root.
// `SimOptions::always_access_root` toggles the production behaviour for
// cross-checking against real query execution.

#ifndef RTB_SIM_LRU_SIM_H_
#define RTB_SIM_LRU_SIM_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "geom/rect.h"
#include "rtree/summary.h"
#include "sim/query_gen.h"
#include "util/batch_stats.h"
#include "util/result.h"
#include "util/rng.h"

namespace rtb::sim {

/// Simulation parameters.
struct SimOptions {
  uint64_t buffer_pages = 100;

  /// Pin the top `pinned_levels` levels of the tree: those pages never cost
  /// a disk access and reduce the buffer available to the rest.
  uint16_t pinned_levels = 0;

  /// When true, every query requests the root even if its MBR misses the
  /// query (what a real R-tree does). Default false = paper behaviour.
  bool always_access_root = false;

  /// Queries executed before measurement starts. 0 = automatic: run until
  /// the buffer fills (the paper's steady-state criterion), until a miss-
  /// free streak indicates everything reachable is cached, or until the
  /// warm-up cap.
  uint64_t warmup_queries = 0;

  /// Upper bound on automatic warm-up.
  uint64_t max_auto_warmup = 500000;
};

/// Aggregate results of a simulation run.
struct SimResult {
  double mean_disk_accesses = 0.0;  // Per query, measured after warm-up.
  double mean_node_accesses = 0.0;  // Buffer-independent metric.
  double ci_halfwidth_90 = 0.0;     // On mean_disk_accesses.
  uint64_t queries_measured = 0;
  uint64_t warmup_used = 0;
  BatchMeans disk_access_batches;
};

/// LRU buffer simulation over a TreeSummary.
class MbrListSimulator {
 public:
  /// `summary` must outlive the simulator.
  MbrListSimulator(const rtree::TreeSummary* summary, SimOptions options);

  /// Runs `num_batches` x `batch_size` measured queries (after warm-up),
  /// drawing queries from `gen`. Returns InvalidArgument when the pinned
  /// levels do not fit in the buffer.
  Result<SimResult> Run(QueryGenerator* gen, Rng* rng, uint32_t num_batches,
                        uint64_t batch_size);

  /// Executes one query against the current buffer state; returns the
  /// number of disk accesses it caused. `node_accesses`, when non-null, is
  /// incremented per node visited. Exposed for tests.
  uint64_t ExecuteQuery(const geom::Rect& query, uint64_t* node_accesses);

  /// Buffer currently full? (Excludes pinned pages.)
  bool BufferFull() const { return lru_map_.size() >= effective_buffer_; }

  /// Resets the buffer to empty (pinned pages stay pinned).
  void ResetBuffer();

  uint64_t pinned_pages() const { return pinned_pages_; }

 private:
  void Touch(uint32_t node_index, uint64_t* disk_accesses);
  void Visit(uint32_t node_index, const geom::Rect& query,
             uint64_t* disk_accesses, uint64_t* node_accesses);

  const rtree::TreeSummary* summary_;
  SimOptions options_;
  uint64_t effective_buffer_ = 0;
  uint64_t pinned_pages_ = 0;
  bool feasible_ = true;
  std::vector<bool> pinned_;                  // Per node index.
  std::vector<std::vector<uint32_t>> children_;
  // LRU state: list front = most recent; map node index -> list position.
  std::list<uint32_t> lru_list_;
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> lru_map_;
};

}  // namespace rtb::sim

#endif  // RTB_SIM_LRU_SIM_H_
