// D-dimensional LRU buffer simulation, mirroring sim/lru_sim.h for the
// NdTreeSummary skeletons of model/ndim.h. Used to validate the
// higher-dimensional generalization of the buffer model the same way
// Section 4 validates the 2-D case.

#ifndef RTB_SIM_ND_SIM_H_
#define RTB_SIM_ND_SIM_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "geom/boxnd.h"
#include "model/ndim.h"
#include "util/macros.h"
#include "util/rng.h"

namespace rtb::sim {

/// Uniform D-dimensional region query whose upper corner is uniform over
/// prod_d [q_d, 1] (point query when all extents are zero).
template <size_t D>
geom::BoxNd<D> NextUniformQueryNd(const std::array<double, D>& q, Rng* rng) {
  geom::BoxNd<D> box;
  for (size_t d = 0; d < D; ++d) {
    RTB_DCHECK(q[d] >= 0.0 && q[d] < 1.0);
    double corner = rng->Uniform(q[d], 1.0);
    box.lo[d] = corner - q[d];
    box.hi[d] = corner;
  }
  return box;
}

/// LRU simulation over an Nd tree skeleton (paper Section 4, generalized).
/// Pruned subtrees are never visited; the root is requested only when its
/// MBR matches the query (the paper's convention).
template <size_t D>
class NdMbrListSimulator {
 public:
  NdMbrListSimulator(const model::NdTreeSummary<D>* summary,
                     uint64_t buffer_pages)
      : summary_(summary), buffer_pages_(buffer_pages) {
    RTB_CHECK(summary_ != nullptr && !summary_->nodes.empty());
    children_.resize(summary_->nodes.size());
    for (uint32_t j = 1; j < summary_->nodes.size(); ++j) {
      RTB_CHECK(summary_->nodes[j].parent < j);
      children_[summary_->nodes[j].parent].push_back(j);
    }
  }

  /// Executes one query; returns its disk accesses.
  uint64_t ExecuteQuery(const geom::BoxNd<D>& query) {
    uint64_t disk = 0;
    if (summary_->nodes[0].mbr.Intersects(query)) {
      Visit(0, query, &disk);
    }
    return disk;
  }

  /// Mean disk accesses over `queries` uniform queries of extent `q`,
  /// measured after `warmup` queries.
  double Run(const std::array<double, D>& q, uint64_t warmup,
             uint64_t queries, Rng* rng) {
    for (uint64_t i = 0; i < warmup; ++i) {
      ExecuteQuery(NextUniformQueryNd<D>(q, rng));
    }
    uint64_t disk = 0;
    for (uint64_t i = 0; i < queries; ++i) {
      disk += ExecuteQuery(NextUniformQueryNd<D>(q, rng));
    }
    return static_cast<double>(disk) / static_cast<double>(queries);
  }

 private:
  void Touch(uint32_t node, uint64_t* disk) {
    auto it = lru_map_.find(node);
    if (it != lru_map_.end()) {
      lru_list_.splice(lru_list_.begin(), lru_list_, it->second);
      return;
    }
    ++*disk;
    if (buffer_pages_ == 0) return;
    lru_list_.push_front(node);
    lru_map_[node] = lru_list_.begin();
    if (lru_map_.size() > buffer_pages_) {
      lru_map_.erase(lru_list_.back());
      lru_list_.pop_back();
    }
  }

  void Visit(uint32_t node, const geom::BoxNd<D>& query, uint64_t* disk) {
    Touch(node, disk);
    for (uint32_t child : children_[node]) {
      if (summary_->nodes[child].mbr.Intersects(query)) {
        Visit(child, query, disk);
      }
    }
  }

  const model::NdTreeSummary<D>* summary_;
  uint64_t buffer_pages_;
  std::vector<std::vector<uint32_t>> children_;
  std::list<uint32_t> lru_list_;
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> lru_map_;
};

}  // namespace rtb::sim

#endif  // RTB_SIM_ND_SIM_H_
