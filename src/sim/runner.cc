#include "sim/runner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "rtree/batch.h"
#include "rtree/shared_batch.h"
#include "rtree/update_batch.h"

namespace rtb::sim {

namespace {

// Queries assigned to worker `w` out of `total` split over `threads`.
uint64_t SliceSize(uint64_t total, uint32_t threads, uint32_t w) {
  return total / threads + (w < total % threads ? 1 : 0);
}

// Runs `fn(w)` on `threads` workers and joins. Worker 0 runs on the calling
// thread, so a single-threaded run never leaves the caller's thread and is
// instruction-identical to a plain loop.
template <typename Fn>
void FanOut(uint32_t threads, Fn&& fn) {
  std::vector<std::thread> pool;
  pool.reserve(threads > 0 ? threads - 1 : 0);
  for (uint32_t w = 1; w < threads; ++w) {
    pool.emplace_back([&fn, w] { fn(w); });
  }
  fn(0);
  for (std::thread& t : pool) t.join();
}

// The mixed insert/delete/search stream (options.insert_frac /
// delete_frac > 0). Serial by contract: updates mutate the tree, and the
// paper's buffering questions for updates are about write clustering, not
// thread scaling. Per operation the generator's rectangle is drawn first,
// then one uniform double classifies the operation, so insert/delete/search
// streams of the same seed share their rectangle sequence. Updates are
// buffered and drained through rtree::UpdateBatchExecutor every
// `update_batch_size` operations (<= 1 applies them tuple-at-a-time via
// RTree::Insert / RTree::Delete); searches execute in stream order against
// the tree as of the last drain. Delete victims are drawn from a ledger of
// present entries — seeded from the dataset the tree was built from, fed
// by drained inserts — so a batched delete never targets a same-batch
// insert (that ordering is unspecified, see update_batch.h).
Result<WorkloadResult> ExecuteMixed(rtree::RTree* tree,
                                    storage::PageStore* store,
                                    QueryGenerator* gen, Rng* rng,
                                    const WorkloadOptions& options) {
  RTB_CHECK(tree != nullptr && store != nullptr && gen != nullptr &&
            rng != nullptr);
  if (options.insert_frac < 0.0 || options.delete_frac < 0.0 ||
      options.insert_frac + options.delete_frac > 1.0) {
    return Status::InvalidArgument(
        "insert_frac/delete_frac must be in [0, 1] with sum <= 1");
  }
  if (options.shared_frontier) {
    return Status::InvalidArgument(
        "mixed update workloads do not support shared_frontier");
  }
  if (options.delete_frac > 0.0 && options.dataset == nullptr) {
    return Status::InvalidArgument(
        "delete_frac > 0 needs options.dataset to seed the ledger");
  }

  struct Present {
    geom::Rect rect;
    rtree::ObjectId id;
  };
  std::vector<Present> ledger;
  if (options.dataset != nullptr) {
    ledger.reserve(options.dataset->size());
    for (size_t i = 0; i < options.dataset->size(); ++i) {
      ledger.push_back(
          {(*options.dataset)[i], static_cast<rtree::ObjectId>(i)});
    }
  }
  std::vector<Present> staged;  // Inserts buffered but not yet drained.
  uint64_t next_id = options.insert_id_base;
  rtree::UpdateBatchExecutor updater(tree);
  std::vector<rtree::UpdateOp> buffer;
  const uint64_t flush_at = std::max<uint64_t>(1, options.update_batch_size);

  // Applies the buffered updates. `counters` is null during warm-up.
  auto drain = [&](WorkloadResult* counters) -> Status {
    if (!buffer.empty()) {
      if (options.update_batch_size <= 1) {
        for (const rtree::UpdateOp& op : buffer) {
          if (op.kind == rtree::UpdateOp::Kind::kInsert) {
            RTB_RETURN_IF_ERROR(tree->Insert(op.rect, op.id));
          } else {
            RTB_RETURN_IF_ERROR(tree->Delete(op.rect, op.id).status());
          }
        }
        // The serial path commits per drain too (the executor path commits
        // inside Run); a no-op when the pool has no WAL attached.
        RTB_RETURN_IF_ERROR(tree->pool()->WalCommit());
      } else {
        rtree::UpdateBatchStats ustats;
        RTB_RETURN_IF_ERROR(updater.Run(buffer, &ustats));
        if (counters != nullptr) {
          counters->node_accesses += ustats.node_accesses;
        }
      }
      buffer.clear();
    }
    // Only now do the buffer's inserts become delete victims: a batched
    // delete locates against the batch-start tree.
    ledger.insert(ledger.end(), staged.begin(), staged.end());
    staged.clear();
    return Status::OK();
  };

  auto run_phase = [&](uint64_t n, WorkloadResult* counters) -> Status {
    std::vector<rtree::ObjectId> sink;
    rtree::QueryStats qstats;
    for (uint64_t i = 0; i < n; ++i) {
      const geom::Rect q = gen->Next(*rng);
      const double u = rng->NextDouble();
      const bool wants_update = u < options.insert_frac + options.delete_frac;
      const bool is_delete =
          wants_update && u >= options.insert_frac && !ledger.empty();
      if (is_delete) {
        const size_t v = static_cast<size_t>(rng->UniformInt(ledger.size()));
        buffer.push_back(rtree::UpdateOp::Delete(ledger[v].rect,
                                                 ledger[v].id));
        ledger[v] = ledger.back();
        ledger.pop_back();
        if (counters != nullptr) ++counters->deletes;
      } else if (wants_update) {  // Insert; empty-ledger deletes degrade.
        buffer.push_back(rtree::UpdateOp::Insert(q, next_id));
        staged.push_back({q, next_id});
        ++next_id;
        if (counters != nullptr) ++counters->inserts;
      } else {
        sink.clear();
        RTB_RETURN_IF_ERROR(tree->Search(
            q, &sink, counters != nullptr ? &qstats : nullptr));
        if (counters != nullptr) ++counters->searches;
      }
      if (buffer.size() >= flush_at) RTB_RETURN_IF_ERROR(drain(counters));
    }
    RTB_RETURN_IF_ERROR(drain(counters));
    if (counters != nullptr) counters->node_accesses += qstats.nodes_accessed;
    return Status::OK();
  };

  WorkloadResult result;
  result.per_worker.assign(1, WorkerResult{});

  const auto warmup_start = std::chrono::steady_clock::now();
  RTB_RETURN_IF_ERROR(run_phase(options.warmup, nullptr));
  const uint64_t reads_before = store->stats().reads;
  const auto start = std::chrono::steady_clock::now();
  result.warmup_seconds =
      std::chrono::duration<double>(start - warmup_start).count();

  RTB_RETURN_IF_ERROR(run_phase(options.queries, &result));
  const auto end = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  result.queries = options.queries;
  result.per_worker[0].queries = options.queries;
  result.per_worker[0].node_accesses = result.node_accesses;
  result.disk_accesses = store->stats().reads - reads_before;
  return result;
}

// The one executor behind both public entry points. `rngs[w]` is worker w's
// stream: borrowed from the caller for the legacy serial path, freshly
// seeded substreams for the options path.
Result<WorkloadResult> ExecuteWorkload(rtree::RTree* tree,
                                       storage::PageStore* store,
                                       QueryGenerator* gen,
                                       const std::vector<Rng*>& rngs,
                                       uint64_t warmup, uint64_t queries,
                                       uint64_t batch_size,
                                       bool shared_frontier) {
  RTB_CHECK(tree != nullptr && store != nullptr && gen != nullptr);
  const uint32_t threads = static_cast<uint32_t>(rngs.size());
  if (threads == 0) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (shared_frontier && batch_size < 2) {
    return Status::InvalidArgument(
        "shared_frontier requires batch_size >= 2");
  }

  std::vector<Status> statuses(threads, Status::OK());
  WorkloadResult result;
  result.per_worker.assign(threads, WorkerResult{});

  // One shared executor for both phases: its elevator sweep alternates
  // across every Run of the whole workload, like BatchExecutor's does
  // within a worker.
  std::optional<rtree::SharedBatchExecutor> shared;
  if (shared_frontier) shared.emplace(tree, threads);

  // Worker w's slice of a phase: its share of `total` queries drawn from
  // its RNG stream, in the same order in every mode (the generators consume
  // a fixed number of draws per query). batch_size <= 1 keeps the
  // historical per-query loop verbatim; larger batches route through the
  // level-synchronous executor — per-worker frontiers by default, the one
  // shared frontier when requested. Node-access counts go to *nodes when
  // non-null (the measured phase).
  auto run_slice = [&](uint32_t w, uint64_t total, uint64_t* nodes)
      -> Status {
    const uint64_t n = SliceSize(total, threads, w);
    if (shared.has_value()) {
      rtree::BatchStats stats;
      std::vector<geom::Rect> batch;
      std::vector<std::vector<rtree::ObjectId>> results;
      batch.reserve(batch_size);
      // SharedBatchExecutor::Run is collective, so every worker must make
      // the same number of calls: round the *largest* slice (worker 0's)
      // up to whole batches, and keep participating with an empty batch
      // once this worker's slice is exhausted.
      const uint64_t rounds =
          (SliceSize(total, threads, 0) + batch_size - 1) / batch_size;
      uint64_t done = 0;
      for (uint64_t r = 0; r < rounds; ++r) {
        const uint64_t k = std::min<uint64_t>(batch_size, n - done);
        batch.clear();
        for (uint64_t i = 0; i < k; ++i) {
          batch.push_back(gen->Next(*rngs[w]));
        }
        RTB_RETURN_IF_ERROR(shared->Run(w, batch, &results, &stats));
        done += k;
      }
      if (nodes != nullptr) *nodes = stats.node_accesses;
      return Status::OK();
    }
    if (batch_size <= 1) {
      std::vector<rtree::ObjectId> sink;
      rtree::QueryStats stats;
      rtree::QueryStats* stats_arg = nodes != nullptr ? &stats : nullptr;
      for (uint64_t i = 0; i < n; ++i) {
        sink.clear();
        RTB_RETURN_IF_ERROR(tree->Search(gen->Next(*rngs[w]), &sink,
                                         stats_arg));
      }
      if (nodes != nullptr) *nodes = stats.nodes_accessed;
      return Status::OK();
    }
    rtree::BatchExecutor executor(tree);
    rtree::BatchStats stats;
    std::vector<geom::Rect> batch;
    std::vector<std::vector<rtree::ObjectId>> results;
    batch.reserve(batch_size);
    for (uint64_t done = 0; done < n;) {
      const uint64_t k = std::min<uint64_t>(batch_size, n - done);
      batch.clear();
      for (uint64_t i = 0; i < k; ++i) batch.push_back(gen->Next(*rngs[w]));
      RTB_RETURN_IF_ERROR(executor.Run(batch, &results, &stats));
      done += k;
    }
    if (nodes != nullptr) *nodes = stats.node_accesses;
    return Status::OK();
  };

  // Phase 1: warm-up (not measured).
  const auto warmup_start = std::chrono::steady_clock::now();
  FanOut(threads, [&](uint32_t w) {
    Status s = run_slice(w, warmup, nullptr);
    if (!s.ok()) statuses[w] = std::move(s);
  });
  for (Status& s : statuses) {
    RTB_RETURN_IF_ERROR(std::move(s));
    s = Status::OK();
  }

  // The join above is the barrier: every warm-up query's disk reads are in
  // the counter before the snapshot.
  const uint64_t reads_before = store->stats().reads;
  const auto start = std::chrono::steady_clock::now();
  result.warmup_seconds =
      std::chrono::duration<double>(start - warmup_start).count();

  // Phase 2: measured queries.
  FanOut(threads, [&](uint32_t w) {
    uint64_t nodes = 0;
    Status s = run_slice(w, queries, &nodes);
    if (!s.ok()) {
      statuses[w] = std::move(s);
      return;
    }
    result.per_worker[w].queries = SliceSize(queries, threads, w);
    result.per_worker[w].node_accesses = nodes;
  });
  for (Status& s : statuses) {
    RTB_RETURN_IF_ERROR(std::move(s));
  }

  const auto end = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  for (const WorkerResult& w : result.per_worker) {
    result.queries += w.queries;
    result.node_accesses += w.node_accesses;
  }
  result.disk_accesses = store->stats().reads - reads_before;
  return result;
}

}  // namespace

Status PinTopLevels(storage::PageCache* pool,
                    const rtree::TreeSummary& summary, uint16_t levels) {
  if (levels == 0) return Status::OK();
  const int min_pinned_level = static_cast<int>(summary.height()) - levels;
  for (const rtree::NodeInfo& node : summary.nodes()) {
    if (static_cast<int>(node.level) >= min_pinned_level) {
      RTB_RETURN_IF_ERROR(pool->PinPermanently(node.page));
    }
  }
  return Status::OK();
}

Result<WorkloadResult> RunWorkload(rtree::RTree* tree,
                                   storage::PageStore* store,
                                   QueryGenerator* gen,
                                   const WorkloadOptions& options) {
  if (options.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (options.insert_frac > 0.0 || options.delete_frac > 0.0) {
    if (options.threads != 1) {
      return Status::InvalidArgument(
          "mixed update workloads require threads == 1");
    }
    Rng rng(options.base_seed);
    return ExecuteMixed(tree, store, gen, &rng, options);
  }
  // Per-worker deterministic RNG substreams; each worker keeps one stream
  // across the warm-up and measured phases.
  std::vector<Rng> rngs;
  rngs.reserve(options.threads);
  for (uint32_t w = 0; w < options.threads; ++w) {
    rngs.emplace_back(options.base_seed + w);
  }
  std::vector<Rng*> rng_ptrs;
  rng_ptrs.reserve(options.threads);
  for (Rng& rng : rngs) rng_ptrs.push_back(&rng);
  return ExecuteWorkload(tree, store, gen, rng_ptrs, options.warmup,
                         options.queries, options.batch_size,
                         options.shared_frontier);
}

Result<WorkloadResult> RunWorkload(rtree::RTree* tree,
                                   storage::PageStore* store,
                                   QueryGenerator* gen, Rng* rng,
                                   uint64_t warmup, uint64_t queries) {
  RTB_CHECK(rng != nullptr);
  return ExecuteWorkload(tree, store, gen, {rng}, warmup, queries,
                         /*batch_size=*/1, /*shared_frontier=*/false);
}

}  // namespace rtb::sim
