#include "sim/runner.h"

#include <vector>

namespace rtb::sim {

Status PinTopLevels(storage::PageCache* pool,
                    const rtree::TreeSummary& summary, uint16_t levels) {
  if (levels == 0) return Status::OK();
  const int min_pinned_level = static_cast<int>(summary.height()) - levels;
  for (const rtree::NodeInfo& node : summary.nodes()) {
    if (static_cast<int>(node.level) >= min_pinned_level) {
      RTB_RETURN_IF_ERROR(pool->PinPermanently(node.page));
    }
  }
  return Status::OK();
}

Result<WorkloadResult> RunWorkload(rtree::RTree* tree,
                                   storage::PageStore* store,
                                   QueryGenerator* gen, Rng* rng,
                                   uint64_t warmup, uint64_t queries) {
  std::vector<rtree::ObjectId> sink;
  for (uint64_t i = 0; i < warmup; ++i) {
    sink.clear();
    RTB_RETURN_IF_ERROR(tree->Search(gen->Next(*rng), &sink));
  }

  const uint64_t reads_before = store->stats().reads;
  WorkloadResult result;
  rtree::QueryStats stats;
  for (uint64_t i = 0; i < queries; ++i) {
    sink.clear();
    RTB_RETURN_IF_ERROR(tree->Search(gen->Next(*rng), &sink, &stats));
  }
  result.queries = queries;
  result.node_accesses = stats.nodes_accessed;
  result.disk_accesses = store->stats().reads - reads_before;
  return result;
}

}  // namespace rtb::sim
