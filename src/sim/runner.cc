#include "sim/runner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "rtree/batch.h"
#include "rtree/shared_batch.h"

namespace rtb::sim {

namespace {

// Queries assigned to worker `w` out of `total` split over `threads`.
uint64_t SliceSize(uint64_t total, uint32_t threads, uint32_t w) {
  return total / threads + (w < total % threads ? 1 : 0);
}

// Runs `fn(w)` on `threads` workers and joins. Worker 0 runs on the calling
// thread, so a single-threaded run never leaves the caller's thread and is
// instruction-identical to a plain loop.
template <typename Fn>
void FanOut(uint32_t threads, Fn&& fn) {
  std::vector<std::thread> pool;
  pool.reserve(threads > 0 ? threads - 1 : 0);
  for (uint32_t w = 1; w < threads; ++w) {
    pool.emplace_back([&fn, w] { fn(w); });
  }
  fn(0);
  for (std::thread& t : pool) t.join();
}

// The one executor behind both public entry points. `rngs[w]` is worker w's
// stream: borrowed from the caller for the legacy serial path, freshly
// seeded substreams for the options path.
Result<WorkloadResult> ExecuteWorkload(rtree::RTree* tree,
                                       storage::PageStore* store,
                                       QueryGenerator* gen,
                                       const std::vector<Rng*>& rngs,
                                       uint64_t warmup, uint64_t queries,
                                       uint64_t batch_size,
                                       bool shared_frontier) {
  RTB_CHECK(tree != nullptr && store != nullptr && gen != nullptr);
  const uint32_t threads = static_cast<uint32_t>(rngs.size());
  if (threads == 0) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (shared_frontier && batch_size < 2) {
    return Status::InvalidArgument(
        "shared_frontier requires batch_size >= 2");
  }

  std::vector<Status> statuses(threads, Status::OK());
  WorkloadResult result;
  result.per_worker.assign(threads, WorkerResult{});

  // One shared executor for both phases: its elevator sweep alternates
  // across every Run of the whole workload, like BatchExecutor's does
  // within a worker.
  std::optional<rtree::SharedBatchExecutor> shared;
  if (shared_frontier) shared.emplace(tree, threads);

  // Worker w's slice of a phase: its share of `total` queries drawn from
  // its RNG stream, in the same order in every mode (the generators consume
  // a fixed number of draws per query). batch_size <= 1 keeps the
  // historical per-query loop verbatim; larger batches route through the
  // level-synchronous executor — per-worker frontiers by default, the one
  // shared frontier when requested. Node-access counts go to *nodes when
  // non-null (the measured phase).
  auto run_slice = [&](uint32_t w, uint64_t total, uint64_t* nodes)
      -> Status {
    const uint64_t n = SliceSize(total, threads, w);
    if (shared.has_value()) {
      rtree::BatchStats stats;
      std::vector<geom::Rect> batch;
      std::vector<std::vector<rtree::ObjectId>> results;
      batch.reserve(batch_size);
      // SharedBatchExecutor::Run is collective, so every worker must make
      // the same number of calls: round the *largest* slice (worker 0's)
      // up to whole batches, and keep participating with an empty batch
      // once this worker's slice is exhausted.
      const uint64_t rounds =
          (SliceSize(total, threads, 0) + batch_size - 1) / batch_size;
      uint64_t done = 0;
      for (uint64_t r = 0; r < rounds; ++r) {
        const uint64_t k = std::min<uint64_t>(batch_size, n - done);
        batch.clear();
        for (uint64_t i = 0; i < k; ++i) {
          batch.push_back(gen->Next(*rngs[w]));
        }
        RTB_RETURN_IF_ERROR(shared->Run(w, batch, &results, &stats));
        done += k;
      }
      if (nodes != nullptr) *nodes = stats.node_accesses;
      return Status::OK();
    }
    if (batch_size <= 1) {
      std::vector<rtree::ObjectId> sink;
      rtree::QueryStats stats;
      rtree::QueryStats* stats_arg = nodes != nullptr ? &stats : nullptr;
      for (uint64_t i = 0; i < n; ++i) {
        sink.clear();
        RTB_RETURN_IF_ERROR(tree->Search(gen->Next(*rngs[w]), &sink,
                                         stats_arg));
      }
      if (nodes != nullptr) *nodes = stats.nodes_accessed;
      return Status::OK();
    }
    rtree::BatchExecutor executor(tree);
    rtree::BatchStats stats;
    std::vector<geom::Rect> batch;
    std::vector<std::vector<rtree::ObjectId>> results;
    batch.reserve(batch_size);
    for (uint64_t done = 0; done < n;) {
      const uint64_t k = std::min<uint64_t>(batch_size, n - done);
      batch.clear();
      for (uint64_t i = 0; i < k; ++i) batch.push_back(gen->Next(*rngs[w]));
      RTB_RETURN_IF_ERROR(executor.Run(batch, &results, &stats));
      done += k;
    }
    if (nodes != nullptr) *nodes = stats.node_accesses;
    return Status::OK();
  };

  // Phase 1: warm-up (not measured).
  const auto warmup_start = std::chrono::steady_clock::now();
  FanOut(threads, [&](uint32_t w) {
    Status s = run_slice(w, warmup, nullptr);
    if (!s.ok()) statuses[w] = std::move(s);
  });
  for (Status& s : statuses) {
    RTB_RETURN_IF_ERROR(std::move(s));
    s = Status::OK();
  }

  // The join above is the barrier: every warm-up query's disk reads are in
  // the counter before the snapshot.
  const uint64_t reads_before = store->stats().reads;
  const auto start = std::chrono::steady_clock::now();
  result.warmup_seconds =
      std::chrono::duration<double>(start - warmup_start).count();

  // Phase 2: measured queries.
  FanOut(threads, [&](uint32_t w) {
    uint64_t nodes = 0;
    Status s = run_slice(w, queries, &nodes);
    if (!s.ok()) {
      statuses[w] = std::move(s);
      return;
    }
    result.per_worker[w].queries = SliceSize(queries, threads, w);
    result.per_worker[w].node_accesses = nodes;
  });
  for (Status& s : statuses) {
    RTB_RETURN_IF_ERROR(std::move(s));
  }

  const auto end = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  for (const WorkerResult& w : result.per_worker) {
    result.queries += w.queries;
    result.node_accesses += w.node_accesses;
  }
  result.disk_accesses = store->stats().reads - reads_before;
  return result;
}

}  // namespace

Status PinTopLevels(storage::PageCache* pool,
                    const rtree::TreeSummary& summary, uint16_t levels) {
  if (levels == 0) return Status::OK();
  const int min_pinned_level = static_cast<int>(summary.height()) - levels;
  for (const rtree::NodeInfo& node : summary.nodes()) {
    if (static_cast<int>(node.level) >= min_pinned_level) {
      RTB_RETURN_IF_ERROR(pool->PinPermanently(node.page));
    }
  }
  return Status::OK();
}

Result<WorkloadResult> RunWorkload(rtree::RTree* tree,
                                   storage::PageStore* store,
                                   QueryGenerator* gen,
                                   const WorkloadOptions& options) {
  if (options.threads == 0) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  // Per-worker deterministic RNG substreams; each worker keeps one stream
  // across the warm-up and measured phases.
  std::vector<Rng> rngs;
  rngs.reserve(options.threads);
  for (uint32_t w = 0; w < options.threads; ++w) {
    rngs.emplace_back(options.base_seed + w);
  }
  std::vector<Rng*> rng_ptrs;
  rng_ptrs.reserve(options.threads);
  for (Rng& rng : rngs) rng_ptrs.push_back(&rng);
  return ExecuteWorkload(tree, store, gen, rng_ptrs, options.warmup,
                         options.queries, options.batch_size,
                         options.shared_frontier);
}

Result<WorkloadResult> RunWorkload(rtree::RTree* tree,
                                   storage::PageStore* store,
                                   QueryGenerator* gen, Rng* rng,
                                   uint64_t warmup, uint64_t queries) {
  RTB_CHECK(rng != nullptr);
  return ExecuteWorkload(tree, store, gen, {rng}, warmup, queries,
                         /*batch_size=*/1, /*shared_frontier=*/false);
}

}  // namespace rtb::sim
