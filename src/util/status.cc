#include "util/status.h"

namespace rtb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace rtb
