#include "util/rng.h"

#include <cmath>

namespace rtb {

uint64_t Rng::UniformInt(uint64_t n) {
  RTB_DCHECK(n > 0);
  // Lemire 2019: multiply-shift with rejection of the biased low range.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = (0ULL - n) % n;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  // Box-Muller. Guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace rtb
