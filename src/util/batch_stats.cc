#include "util/batch_stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace rtb {
namespace {

// Student-t upper quantiles t_{alpha/2, df} for two-sided confidence levels.
// Rows: df 1..30, then the normal limit is used. Columns: 90%, 95%, 99%.
constexpr double kT90[30] = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr double kT95[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
constexpr double kT99[30] = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};

double TQuantile(size_t df, double confidence_level) {
  const double* table;
  double limit;  // Normal quantile, used for df > 30.
  if (confidence_level >= 0.985) {
    table = kT99;
    limit = 2.576;
  } else if (confidence_level <= 0.925) {
    table = kT90;
    limit = 1.645;
  } else {
    table = kT95;
    limit = 1.960;
  }
  if (df == 0) return 0.0;
  if (df <= 30) return table[df - 1];
  return limit;
}

}  // namespace

double BatchMeans::Mean() const {
  if (batches_.empty()) return 0.0;
  double sum = 0.0;
  for (double b : batches_) sum += b;
  return sum / static_cast<double>(batches_.size());
}

double BatchMeans::Variance() const {
  size_t n = batches_.size();
  if (n < 2) return 0.0;
  double mean = Mean();
  double ss = 0.0;
  for (double b : batches_) {
    double d = b - mean;
    ss += d * d;
  }
  return ss / static_cast<double>(n - 1);
}

double BatchMeans::HalfWidth(double confidence_level) const {
  size_t n = batches_.size();
  if (n < 2) return 0.0;
  double t = TQuantile(n - 1, confidence_level);
  return t * std::sqrt(Variance() / static_cast<double>(n));
}

double BatchMeans::RelativeHalfWidth(double confidence_level) const {
  double mean = Mean();
  if (mean == 0.0) return 0.0;
  return HalfWidth(confidence_level) / mean;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

}  // namespace rtb
