// Result<T>: value-or-Status, the library's exception-free return channel.

#ifndef RTB_UTIL_RESULT_H_
#define RTB_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/macros.h"
#include "util/status.h"

namespace rtb {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Accessing the value of an errored Result is a programming error
/// (checked via RTB_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;` in a Result-returning function.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    RTB_CHECK(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    RTB_CHECK(ok());
    return *value_;
  }
  T& value() & {
    RTB_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    RTB_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

// Propagates the error of a Result-yielding expression, otherwise assigns its
// value to `lhs` (which must be a declaration or assignable lvalue).
#define RTB_ASSIGN_OR_RETURN(lhs, expr)                 \
  RTB_ASSIGN_OR_RETURN_IMPL_(                           \
      RTB_STATUS_MACROS_CONCAT_(_rtb_result, __LINE__), lhs, expr)

#define RTB_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define RTB_STATUS_MACROS_CONCAT_(x, y) RTB_STATUS_MACROS_CONCAT_INNER_(x, y)

#define RTB_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

}  // namespace rtb

#endif  // RTB_UTIL_RESULT_H_
