// Counting replacements for the global allocation functions; see
// util/alloc_counter.h. Kept malloc-backed so sanitizer runtimes (which
// intercept malloc/free, not the C++ operators) still see every
// allocation.

#include "util/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace rtb::util {

namespace detail {

thread_local uint64_t t_allocations = 0;

void* CountedAlloc(std::size_t size) {
  ++t_allocations;
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocNoThrow(std::size_t size) noexcept {
  ++t_allocations;
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  ++t_allocations;
  if (size == 0) size = align;
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace detail

uint64_t AllocationCount() { return detail::t_allocations; }

}  // namespace rtb::util

void* operator new(std::size_t size) {
  return rtb::util::detail::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return rtb::util::detail::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return rtb::util::detail::CountedAllocNoThrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return rtb::util::detail::CountedAllocNoThrow(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return rtb::util::detail::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return rtb::util::detail::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
