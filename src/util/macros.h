// Internal assertion and convenience macros for the rtb library.
//
// Library code reports recoverable errors through rtb::Status (see
// util/status.h) and reserves these macros for programming errors: an
// RTB_DCHECK that fires means the caller violated a documented precondition.

#ifndef RTB_UTIL_MACROS_H_
#define RTB_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `condition` is false. Enabled in all build
// types: the library is a research artifact and silent memory corruption is
// far more expensive than the branch.
#define RTB_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "RTB_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

// Debug-only variant. Compiles to nothing when NDEBUG is defined.
#ifdef NDEBUG
#define RTB_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define RTB_DCHECK(condition) RTB_CHECK(condition)
#endif

// Propagates a non-OK Status from an expression that yields one.
#define RTB_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::rtb::Status _rtb_status = (expr);        \
    if (!_rtb_status.ok()) return _rtb_status; \
  } while (false)

#endif  // RTB_UTIL_MACROS_H_
