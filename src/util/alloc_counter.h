// Thread-local heap-allocation counting, used to prove hot paths are
// allocation-free.
//
// Linking util/alloc_counter.cc into a binary (it is part of rtb_util, and
// pulled in whenever AllocationCount is referenced) replaces the global
// operator new/delete with counting wrappers around malloc/free. Each call
// to any replaceable operator new increments a thread-local counter; a
// ScopedAllocationCounter snapshots it so a test or bench can assert how
// many allocations a region performed on the calling thread.
//
// The counter is per-thread: allocations made by other threads (e.g.
// parallel-runner workers) are invisible to the thread that opened the
// scope. Overhead is one thread-local increment per allocation, cheap
// enough that the paper benches link it unconditionally.

#ifndef RTB_UTIL_ALLOC_COUNTER_H_
#define RTB_UTIL_ALLOC_COUNTER_H_

#include <cstdint>

namespace rtb::util {

/// Number of operator-new calls made by the calling thread since it
/// started. Monotonic; only deltas are meaningful.
uint64_t AllocationCount();

/// Snapshot-and-delta helper: counts the allocations the calling thread
/// performs between construction and delta().
class ScopedAllocationCounter {
 public:
  ScopedAllocationCounter() : start_(AllocationCount()) {}

  /// Allocations on this thread since construction.
  uint64_t delta() const { return AllocationCount() - start_; }

 private:
  uint64_t start_;
};

}  // namespace rtb::util

#endif  // RTB_UTIL_ALLOC_COUNTER_H_
