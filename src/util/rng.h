// Deterministic random number generation for experiments.
//
// Every randomized component in the library takes an explicit seed so runs
// are reproducible; there is no global RNG state. Rng wraps a SplitMix64
// state update (fast, tiny, passes BigCrush when used as a mixer) with
// convenience samplers for the distributions the paper's workloads need.

#ifndef RTB_UTIL_RNG_H_
#define RTB_UTIL_RNG_H_

#include <cstdint>

#include "util/macros.h"

namespace rtb {

/// A small, fast, deterministic 64-bit PRNG (SplitMix64).
///
/// Copyable: copying forks the stream (both copies produce the same future
/// sequence), which property tests exploit.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds give (practically) independent
  /// streams; the same seed always gives the same stream.
  explicit Rng(uint64_t seed) : state_(seed) {}

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    // 53 random mantissa bits.
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi) {
    RTB_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double NextGaussian();

  /// Derives an independent child generator; useful for giving each
  /// experiment cell its own stream.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  uint64_t state_;
};

}  // namespace rtb

#endif  // RTB_UTIL_RNG_H_
