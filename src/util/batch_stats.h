// Batch-means estimation with confidence intervals.
//
// The paper collects simulation estimates using "batch means with 20 batches
// of 1,000,000 queries each, resulting in confidence intervals of less than
// 3 percent at a 90 percent confidence level" (Section 4). BatchMeans
// implements that estimator: feed it one mean per batch and it reports the
// grand mean and a Student-t confidence half-width.

#ifndef RTB_UTIL_BATCH_STATS_H_
#define RTB_UTIL_BATCH_STATS_H_

#include <cstddef>
#include <vector>

namespace rtb {

/// Accumulates per-batch means and produces a confidence interval for the
/// grand mean.
class BatchMeans {
 public:
  BatchMeans() = default;

  /// Records the mean of one batch.
  void AddBatch(double batch_mean) { batches_.push_back(batch_mean); }

  size_t num_batches() const { return batches_.size(); }

  /// Grand mean over all batches; 0 when empty.
  double Mean() const;

  /// Sample variance of the batch means; 0 with fewer than two batches.
  double Variance() const;

  /// Half-width of the confidence interval at the given level (e.g. 0.90).
  /// Uses Student's t quantile with num_batches()-1 degrees of freedom;
  /// returns 0 with fewer than two batches. Supported levels: 0.90, 0.95,
  /// 0.99 (others fall back to 0.95).
  double HalfWidth(double confidence_level) const;

  /// HalfWidth / Mean; 0 when the mean is 0. The paper reports this as
  /// "confidence intervals of less than 3 percent".
  double RelativeHalfWidth(double confidence_level) const;

 private:
  std::vector<double> batches_;
};

/// Simple running mean/min/max/variance accumulator (Welford).
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);

  size_t count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rtb

#endif  // RTB_UTIL_BATCH_STATS_H_
