// Error handling for the rtb library.
//
// Following the conventions of large C++ database codebases (Arrow, RocksDB,
// Google style), the library does not throw exceptions. Fallible operations
// return rtb::Status, or rtb::Result<T> when they also produce a value.

#ifndef RTB_UTIL_STATUS_H_
#define RTB_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

#include "util/macros.h"

namespace rtb {

// Machine-readable error category. Kept intentionally small; the message
// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kCorruption,
  kIoError,
  kNotSupported,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success/error value. The OK status carries no message
/// and no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk (use the default constructor for success).
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    RTB_DCHECK(code_ != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace rtb

#endif  // RTB_UTIL_STATUS_H_
