#include "report/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rtb::report {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNum(double v) {
  // JSON has no inf/nan, so clamp those to null (a report emitting them is
  // a bug the smoke tests will catch).
  if (!std::isfinite(v)) return "null";
  // Shortest representation that still round-trips to the same double:
  // most values (0.03, 12.5, …) print exactly at 15 significant digits;
  // %.17g always round-trips but renders 0.03 as 0.029999999999999999.
  char buf[40];
  for (int precision : {15, 16}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void JsonDict::PutStr(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, JsonEscape(value));
}

void JsonDict::PutNum(const std::string& key, double value) {
  fields_.emplace_back(key, JsonNum(value));
}

void JsonDict::PutInt(const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  fields_.emplace_back(key, buf);
}

void JsonDict::PutBool(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

void JsonDict::PutDict(const std::string& key, const JsonDict& value) {
  fields_.emplace_back(key, value.ToString());
}

void JsonDict::PutDictArray(const std::string& key,
                            const std::vector<JsonDict>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += "]";
  fields_.emplace_back(key, std::move(out));
}

bool JsonDict::Has(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return true;
  }
  return false;
}

std::string JsonDict::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonEscape(fields_[i].first) + ": " + fields_[i].second;
  }
  out += "}";
  return out;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  meta_.PutStr("bench", name_);
}

JsonDict& BenchReport::AddConfig(const std::string& label) {
  configs_.push_back(std::make_unique<JsonDict>());
  configs_.back()->PutStr("config", label);
  return *configs_.back();
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n";
  const std::string meta = meta_.ToString();
  // Splice the meta fields (sans braces) into the top-level object.
  out += "  " + meta.substr(1, meta.size() - 2) + ",\n";
  out += "  \"configs\": [\n";
  for (size_t i = 0; i < configs_.size(); ++i) {
    out += "    " + configs_[i]->ToString();
    if (i + 1 < configs_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchReport::WriteFile(const std::string& path) const {
  const std::string dest =
      path.empty() ? "BENCH_" + name_ + ".json" : path;
  std::FILE* f = std::fopen(dest.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", dest.c_str());
    return false;
  }
  const std::string doc = ToJson();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  std::printf("\nwrote %s\n", dest.c_str());
  return ok;
}

bool JsonValue::boolean() const {
  RTB_CHECK(is_bool());
  return bool_;
}

double JsonValue::number() const {
  RTB_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::str() const {
  RTB_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  RTB_CHECK(is_array());
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  RTB_CHECK(is_object());
  return members_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

/// Recursive-descent parser over a borrowed string. Depth is bounded so a
/// hostile "[[[[..." spec cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    RTB_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out->type_ = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Error("invalid token");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      RTB_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      RTB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      RTB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':  out->push_back('"');  break;
        case '\\': out->push_back('\\'); break;
        case '/':  out->push_back('/');  break;
        case 'b':  out->push_back('\b'); break;
        case 'f':  out->push_back('\f'); break;
        case 'n':  out->push_back('\n'); break;
        case 'r':  out->push_back('\r'); break;
        case 't':  out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          pos_ += 4;
          // The reports only ever emit \u00XX control escapes; encode the
          // general case as UTF-8 anyway.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    return Error("invalid token");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    (void)Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid token");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      return Error("invalid number");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace rtb::report
