// Shared machine-readable report layer: a tiny JSON emitter and parser.
//
// The emitter (JsonDict / BenchReport) started life in bench/common.h as the
// perf-trajectory harness; it is promoted here so CLI runs, benches, the
// experiment engine and tests all write the same schema. The parser
// (JsonValue) is what the engine's declarative ExperimentSpec and the
// schema smoke tests read JSON with. Both sides are deliberately small:
// objects, arrays, strings, finite doubles, bools and null — exactly what
// the run reports need, no external dependency.

#ifndef RTB_REPORT_JSON_H_
#define RTB_REPORT_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace rtb::report {

/// An insertion-ordered flat JSON object of string/number/bool fields.
/// Distinct method names per type sidestep the const char* -> bool overload
/// trap. Nested objects and arrays of objects are supported through
/// PutDict / PutDictArray (values are rendered at Put time).
class JsonDict {
 public:
  void PutStr(const std::string& key, const std::string& value);
  void PutNum(const std::string& key, double value);  // Shortest round-trip.
  void PutInt(const std::string& key, uint64_t value);
  void PutBool(const std::string& key, bool value);

  /// Nests `value` under `key` (rendered immediately).
  void PutDict(const std::string& key, const JsonDict& value);

  /// Nests `[v0, v1, ...]` under `key`.
  void PutDictArray(const std::string& key,
                    const std::vector<JsonDict>& values);

  bool Has(const std::string& key) const;
  size_t size() const { return fields_.size(); }

  /// {"k": v, ...} with keys in insertion order and strings escaped.
  std::string ToString() const;

 private:
  // Value is pre-rendered JSON; strings are escaped+quoted at Put time.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The JSON document a benchmark emits: top-level metadata (bench name,
/// seed, workload parameters) plus one result object per measured
/// configuration. Written as BENCH_<name>.json so every perf PR can record
/// its before/after numbers in a diffable, machine-readable form.
///
/// Schema:
///   {
///     "bench": "<name>",
///     <metadata fields...>,
///     "configs": [ {"config": "<label>", <metric fields...>}, ... ]
///   }
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Top-level metadata fields.
  JsonDict& meta() { return meta_; }

  /// Appends a config-result object (its "config" field is `label`) and
  /// returns it for metric Puts. References stay valid for the report's
  /// lifetime.
  JsonDict& AddConfig(const std::string& label);

  size_t num_configs() const { return configs_.size(); }

  /// The full document.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; empty path means "BENCH_<name>.json" in the
  /// current directory. Prints the destination and returns false on I/O
  /// failure.
  bool WriteFile(const std::string& path = "") const;

 private:
  std::string name_;
  JsonDict meta_;
  std::vector<std::unique_ptr<JsonDict>> configs_;
};

/// A parsed JSON value. Objects preserve member order; numbers are doubles
/// (integers up to 2^53 round-trip exactly, which covers every counter the
/// reports emit).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  /// Parses `text` as a single JSON document (trailing whitespace only).
  /// Errors are InvalidArgument with a byte offset and description.
  static Result<JsonValue> Parse(const std::string& text);

  JsonValue() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (RTB_CHECK). Use the is_*() predicates first.
  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const std::vector<JsonValue>& array() const;
  const std::vector<Member>& members() const;

  /// Object lookup; nullptr when absent or when this is not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

}  // namespace rtb::report

#endif  // RTB_REPORT_JSON_H_
