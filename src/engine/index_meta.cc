#include "engine/index_meta.h"

#include <fstream>

namespace rtb::engine {

Status SaveIndexMeta(const std::string& index_path, const IndexMeta& meta) {
  std::ofstream out(index_path + ".meta");
  if (!out) return Status::IoError("cannot write " + index_path + ".meta");
  out << "rtb-index " << meta.root << ' ' << meta.height << ' '
      << meta.fanout << '\n';
  return out ? Status::OK()
             : Status::IoError("write failed: " + index_path + ".meta");
}

Result<IndexMeta> LoadIndexMeta(const std::string& index_path) {
  std::ifstream in(index_path + ".meta");
  if (!in) return Status::IoError("cannot open " + index_path + ".meta");
  std::string magic;
  IndexMeta meta;
  uint32_t root, height;
  if (!(in >> magic >> root >> height >> meta.fanout) ||
      magic != "rtb-index") {
    return Status::Corruption(index_path + ".meta: bad format");
  }
  meta.root = root;
  meta.height = static_cast<uint16_t>(height);
  return meta;
}

}  // namespace rtb::engine
