#include "engine/engine.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "data/datasets.h"
#include "data/io.h"
#include "model/cost_model.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "rtree/validate.h"
#include "sim/query_gen.h"
#include "storage/file_page_store.h"
#include "storage/replacement.h"
#include "storage/sharded_buffer_pool.h"
#include "storage/wal.h"

namespace rtb::engine {

namespace {

// Class c's workers draw from substreams base_seed + c*stride + w; the
// stride keeps the streams of successive classes disjoint for any sane
// thread count. Class 0 uses spec.run.seed exactly, which is what keeps a
// single-class serial spec byte-identical to the legacy serial runner.
constexpr uint64_t kClassSeedStride = 1u << 16;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Result<std::vector<geom::Rect>> MaterializeRects(const DatasetSpec& ds) {
  if (ds.kind == "file") return data::LoadRects(ds.path);
  Rng rng(ds.seed);
  if (ds.kind == "uniform") return data::GenerateUniformPoints(ds.n, &rng);
  if (ds.kind == "region") return data::GenerateSyntheticRegion(ds.n, &rng);
  if (ds.kind == "tiger") {
    data::TigerParams params;
    params.num_rects = ds.n;
    return data::GenerateTigerSurrogate(params, &rng);
  }
  if (ds.kind == "cfd") {
    data::CfdParams params;
    params.num_points = ds.n;
    return data::GenerateCfdSurrogate(params, &rng);
  }
  if (ds.kind == "clusters") {
    data::ClusterParams params;
    params.num_rects = ds.n;
    return data::GenerateGaussianClusters(params, &rng);
  }
  return Status::InvalidArgument("unknown dataset kind '" + ds.kind + "'");
}

Result<rtree::LoadAlgorithm> ParseAlgo(const std::string& name) {
  if (name == "HS") return rtree::LoadAlgorithm::kHilbertSort;
  if (name == "NX") return rtree::LoadAlgorithm::kNearestX;
  if (name == "STR") return rtree::LoadAlgorithm::kStr;
  if (name == "TAT" || name == "RSTAR") {
    return rtree::LoadAlgorithm::kTupleAtATime;
  }
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "' (HS|NX|STR|TAT|RSTAR)");
}

bool NeedsCenters(const ExperimentSpec& spec) {
  for (const QueryClassSpec& cls : spec.workload.classes) {
    if (sim::GeneratorNeedsCenters(cls.query.center)) return true;
  }
  return false;
}

std::string ExtentLabel(const model::AxisExtent& ax) {
  if (ax.open) return "open";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", ax.length);
  return buf;
}

std::string ClassLabel(const QueryClassSpec& cls) {
  if (!cls.label.empty()) return cls.label;
  const char* center = cls.query.center.c_str();
  char buf[96];
  if (cls.IsMixed()) {
    std::snprintf(buf, sizeof(buf), "mixed i%g/d%g %s", cls.insert_frac,
                  cls.delete_frac, center);
    return buf;
  }
  if (cls.query.is_point()) {
    std::snprintf(buf, sizeof(buf), "%s point", center);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %sx%s", center,
                  ExtentLabel(cls.query.x).c_str(),
                  ExtentLabel(cls.query.y).c_str());
  }
  return buf;
}

Result<std::unique_ptr<storage::PageCache>> MakePool(
    const ExperimentSpec& spec, storage::PageStore* store) {
  RTB_ASSIGN_OR_RETURN(storage::PolicyKind kind,
                       ParsePolicyKind(spec.pool.policy));
  const uint64_t pages = spec.pool.buffer_pages;
  std::unique_ptr<storage::PageCache> pool;
  if (spec.run.threads == 1 && spec.pool.shards == 0) {
    // The paper's serial pool: single-threaded, globally ordered
    // replacement, bit-reproducible.
    pool = std::make_unique<storage::BufferPool>(
        store, pages, storage::MakePolicy(kind, pages, spec.run.seed));
  } else {
    storage::ShardedBufferPool::Options options;
    options.num_shards = spec.pool.shards;
    options.policy = kind;
    options.seed = spec.run.seed;
    pool = std::make_unique<storage::ShardedBufferPool>(store, pages,
                                                        options);
  }
  return pool;
}

}  // namespace

Result<PreparedTree> PrepareTree(const ExperimentSpec& spec) {
  PreparedTree prepared;
  if (!spec.tree.index.empty()) {
    // Open an existing persistent index; the dataset is only consulted for
    // data-driven query centers.
    RTB_ASSIGN_OR_RETURN(prepared.meta, LoadIndexMeta(spec.tree.index));
    RTB_ASSIGN_OR_RETURN(prepared.store,
                         storage::FilePageStore::Open(spec.tree.index));
    if (NeedsCenters(spec)) {
      RTB_ASSIGN_OR_RETURN(std::vector<geom::Rect> rects,
                           data::LoadRects(spec.dataset.path));
      prepared.centers = std::make_shared<const std::vector<geom::Point>>(
          data::Centers(rects));
    }
  } else {
    const auto start = std::chrono::steady_clock::now();
    RTB_ASSIGN_OR_RETURN(std::vector<geom::Rect> rects,
                         MaterializeRects(spec.dataset));
    RTB_ASSIGN_OR_RETURN(rtree::LoadAlgorithm algo,
                         ParseAlgo(spec.tree.algo));
    rtree::RTreeConfig config =
        spec.tree.algo == "RSTAR"
            ? rtree::RTreeConfig::RStar(spec.tree.fanout)
            : rtree::RTreeConfig::WithFanout(spec.tree.fanout);
    std::unique_ptr<storage::PageStore> store;
    if (spec.storage.backend == "file") {
      RTB_ASSIGN_OR_RETURN(store,
                           storage::FilePageStore::Create(spec.storage.path));
    } else {
      store = std::make_unique<storage::MemPageStore>();
    }
    RTB_ASSIGN_OR_RETURN(rtree::BuiltTree built,
                         rtree::BuildRTree(store.get(), config, rects, algo));
    prepared.build_seconds = SecondsSince(start);
    prepared.meta = IndexMeta{built.root, built.height, spec.tree.fanout};
    prepared.store = std::move(store);
    if (NeedsCenters(spec)) {
      prepared.centers = std::make_shared<const std::vector<geom::Point>>(
          data::Centers(rects));
    }
    // Mixed update classes draw delete victims from the build rectangles
    // (object ids are their indexes — the BuildRTree contract).
    if (spec.workload.HasMixedClass()) prepared.rects = std::move(rects);
  }
  RTB_ASSIGN_OR_RETURN(
      rtree::TreeSummary summary,
      rtree::TreeSummary::Extract(prepared.store.get(), prepared.meta.root));
  prepared.summary = std::make_unique<rtree::TreeSummary>(std::move(summary));
  prepared.store->ResetStats();
  return prepared;
}

Result<ModelEstimate> EvaluateModel(const rtree::TreeSummary& summary,
                                    const model::QuerySpec& qspec,
                                    const PoolSpec& pool,
                                    const std::vector<geom::Point>* centers,
                                    uint64_t batch_size) {
  RTB_ASSIGN_OR_RETURN(std::vector<double> probs,
                       model::AccessProbabilities(summary, qspec, centers));
  ModelEstimate est;
  est.node_accesses = model::ExpectedNodeAccesses(probs);
  if (pool.pinned_levels == 0) {
    est.disk_accesses = model::ExpectedDiskAccesses(probs, pool.buffer_pages);
    est.disk_accesses_continuous =
        model::ExpectedDiskAccessesContinuous(probs, pool.buffer_pages);
    if (batch_size >= 2) {
      const model::BatchedModelResult batched =
          model::ExpectedBatchedDiskAccesses(probs, pool.buffer_pages,
                                             batch_size);
      est.batched = true;
      est.batched_disk_accesses = batched.disk_accesses;
      est.effective_hit_rate = batched.effective_hit_rate;
    }
  } else {
    model::PinnedModelResult pinned = model::ExpectedDiskAccessesPinned(
        summary, probs, pool.buffer_pages, pool.pinned_levels);
    est.feasible = pinned.feasible;
    est.pinned_pages = pinned.pinned_pages;
    est.disk_accesses = pinned.disk_accesses;
    est.disk_accesses_continuous = pinned.disk_accesses;
  }
  return est;
}

Result<RunReport> Run(const ExperimentSpec& spec) {
  RTB_RETURN_IF_ERROR(spec.Validate());
  // Applies to every FilePageStore in the process; a no-op request to
  // enable a path the binary lacks degrades to scalar pread.
  storage::SetVectoredIo(spec.storage.vectored_io);
  // Same process-wide seam for the async read engine; requesting it on a
  // binary compiled without RTB_ASYNC_IO degrades to the sync path.
  storage::SetAsyncIo(spec.storage.async_io);
  // The WAL seam does NOT silently degrade: a spec that asks for a durable
  // write path must not run without one. The env override (RTB_WAL=1) only
  // applies where a log makes sense — a file-backed, dataset-built store.
  if (spec.storage.wal.enabled && !storage::WalAvailable()) {
    return Status::InvalidArgument(
        "storage.wal.enabled, but this binary was built without RTB_WAL");
  }
  const bool use_wal =
      spec.storage.wal.enabled ||
      (storage::WalActive() && spec.storage.backend == "file" &&
       spec.tree.index.empty());
  RunReport report;
  report.spec = spec;
  report.async_active = storage::AsyncIoActive();
  const storage::AsyncIoStats async_before =
      storage::AsyncReadEngine::Instance().stats();

  RTB_ASSIGN_OR_RETURN(PreparedTree prepared, PrepareTree(spec));
  report.build_seconds = prepared.build_seconds;
  report.height = prepared.summary->height();
  report.num_nodes = prepared.summary->NumNodes();
  report.data_entries = prepared.summary->NumDataEntries();

  RTB_ASSIGN_OR_RETURN(std::unique_ptr<storage::PageCache> pool,
                       MakePool(spec, prepared.store.get()));
  if (spec.pool.pinned_levels > 0) {
    const auto pin_start = std::chrono::steady_clock::now();
    RTB_RETURN_IF_ERROR(sim::PinTopLevels(pool.get(), *prepared.summary,
                                          spec.pool.pinned_levels));
    report.pin_seconds = SecondsSince(pin_start);
  }
  report.pinned_pages = pool->num_permanent_pins();

  std::unique_ptr<storage::WalWriter> wal;
  if (use_wal) {
    // The bulk load wrote the store directly (no pool, no log), so sync it
    // and start the log with a checkpoint describing that durable base;
    // recovery of a crash mid-run replays from here.
    RTB_RETURN_IF_ERROR(prepared.store->Sync());
    storage::WalWriter::Options wopts;
    wopts.group_commit_window = spec.storage.wal.group_commit_window;
    const std::string wal_path = spec.storage.wal.path.empty()
                                     ? spec.storage.path + ".wal"
                                     : spec.storage.wal.path;
    RTB_ASSIGN_OR_RETURN(wal, storage::WalWriter::Create(wal_path, wopts));
    RTB_RETURN_IF_ERROR(wal->Checkpoint(prepared.store->num_pages()));
    pool->AttachWal(wal.get());
  }
  report.wal_active = use_wal;

  RTB_ASSIGN_OR_RETURN(
      rtree::RTree tree,
      rtree::RTree::Open(pool.get(),
                         rtree::RTreeConfig::WithFanout(prepared.meta.fanout),
                         prepared.meta.root, prepared.meta.height));

  const std::vector<geom::Point>* centers =
      prepared.centers == nullptr ? nullptr : prepared.centers.get();
  sim::GeneratorContext gen_ctx;
  gen_ctx.centers = prepared.centers;  // Shared, not borrowed: generators
                                       // survive the PreparedTree.
  for (size_t c = 0; c < spec.workload.classes.size(); ++c) {
    const QueryClassSpec& cls = spec.workload.classes[c];
    ClassReport cr;
    cr.label = ClassLabel(cls);
    cr.qspec = cls.query;

    RTB_ASSIGN_OR_RETURN(std::unique_ptr<sim::QueryGenerator> gen,
                         sim::MakeGenerator(cr.qspec, gen_ctx));
    sim::WorkloadOptions options;
    options.threads = spec.run.threads;
    options.base_seed = spec.run.seed + c * kClassSeedStride;
    options.warmup = c == 0 ? spec.workload.warmup : 0;
    options.queries = cls.count;
    options.batch_size = spec.workload.batch_size;
    options.shared_frontier = spec.workload.shared_frontier;
    if (cls.IsMixed()) {
      options.insert_frac = cls.insert_frac;
      options.delete_frac = cls.delete_frac;
      options.update_batch_size = spec.workload.update_batch_size;
      options.dataset = &prepared.rects;
      // Disjoint id ranges per class, so one class never deletes another
      // class's insertion by id collision.
      options.insert_id_base =
          (uint64_t{1} << 40) + c * (uint64_t{1} << 32);
    }
    RTB_ASSIGN_OR_RETURN(cr.run,
                         sim::RunWorkload(&tree, prepared.store.get(),
                                          gen.get(), options));
    if (cls.IsMixed()) {
      // Updates went through the buffered batch path; force every dirty
      // page out and re-check the structural invariants before the class
      // is reported. Packed loads legitimately leave one underfull node
      // per level, so min fill is not enforced.
      RTB_RETURN_IF_ERROR(pool->FlushAll());
      rtree::ValidateOptions vopts;
      vopts.check_min_fill = false;
      const rtree::ValidationReport vr = rtree::ValidateTree(
          prepared.store.get(), tree.root(), tree.config(), vopts);
      if (!vr.ok) {
        return Status::Corruption(
            "tree invalid after mixed class '" + cr.label + "': " +
            (vr.issues.empty() ? "unknown issue" : vr.issues.front()));
      }
      cr.validated = true;
    }
    report.warmup_seconds += cr.run.warmup_seconds;
    report.measure_seconds += cr.run.elapsed_seconds;
    report.total.queries += cr.run.queries;
    report.total.disk_accesses += cr.run.disk_accesses;
    report.total.node_accesses += cr.run.node_accesses;
    report.total.searches += cr.run.searches;
    report.total.inserts += cr.run.inserts;
    report.total.deletes += cr.run.deletes;
    report.total.warmup_seconds += cr.run.warmup_seconds;
    report.total.elapsed_seconds += cr.run.elapsed_seconds;

    // The analytic model predicts query cost against the built tree; a
    // mixed class mutates it mid-run, so no prediction is reported.
    // Custom-registered center sources have no analytic model and are
    // skipped rather than failing the run.
    if (spec.run.evaluate_model && !cls.IsMixed() &&
        model::HasAnalyticModel(cls.query.center)) {
      RTB_ASSIGN_OR_RETURN(cr.predicted,
                           EvaluateModel(*prepared.summary, cr.qspec,
                                         spec.pool, centers,
                                         spec.workload.batch_size));
      cr.model_evaluated = true;
    }
    report.classes.push_back(std::move(cr));
  }

  report.buffer = pool->AggregateStats();
  report.store_io = prepared.store->stats();
  if (wal != nullptr) {
    const storage::WalStats ws = wal->stats();
    report.store_io.wal_records = ws.records;
    report.store_io.wal_bytes = ws.bytes;
    report.store_io.wal_commits = ws.commits;
    report.store_io.wal_fsyncs = ws.fsyncs;
  }
  report.async_io =
      storage::AsyncReadEngine::Instance().stats().Delta(async_before);
  // Tear down explicitly so a writeback or final-flush failure surfaces as
  // a Status instead of being swallowed by the destructors. Counters were
  // captured above, so the flush traffic doesn't perturb the report. A
  // WAL-attached pool checkpoints on Close (flush + store sync + log
  // truncation), so a clean shutdown leaves nothing to recover.
  RTB_RETURN_IF_ERROR(pool->Close());
  if (wal != nullptr) RTB_RETURN_IF_ERROR(wal->Close());
  RTB_RETURN_IF_ERROR(prepared.store->Close());
  return report;
}

report::JsonDict RunReport::ToJsonDict() const {
  report::JsonDict doc;
  doc.PutStr("report", "rtb-run");
  doc.PutInt("schema_version", kRunReportSchemaVersion);
  doc.PutStr("name", spec.name);
  doc.PutDict("spec", spec.ToJsonDict());

  report::JsonDict tree;
  tree.PutInt("height", height);
  tree.PutInt("nodes", num_nodes);
  tree.PutInt("data_entries", data_entries);
  tree.PutInt("fanout", spec.tree.fanout);
  doc.PutDict("tree", tree);

  report::JsonDict phases;
  phases.PutNum("build_seconds", build_seconds);
  phases.PutNum("pin_seconds", pin_seconds);
  phases.PutNum("warmup_seconds", warmup_seconds);
  phases.PutNum("measure_seconds", measure_seconds);
  doc.PutDict("phases", phases);

  report::JsonDict pool;
  pool.PutInt("requests", buffer.requests);
  pool.PutInt("hits", buffer.hits);
  pool.PutInt("misses", buffer.misses);
  pool.PutInt("evictions", buffer.evictions);
  pool.PutInt("writebacks", buffer.writebacks);
  pool.PutNum("hit_rate", buffer.HitRate());
  pool.PutInt("pinned_pages", pinned_pages);
  doc.PutDict("pool", pool);

  report::JsonDict store;
  store.PutInt("reads", store_io.reads);
  store.PutInt("writes", store_io.writes);
  store.PutInt("read_batches", store_io.read_batches);
  store.PutInt("batch_pages", store_io.batch_pages);
  store.PutNum("pages_per_batch", store_io.PagesPerBatch());
  store.PutInt("write_batches", store_io.write_batches);
  store.PutInt("write_batch_pages", store_io.write_batch_pages);
  store.PutInt("write_syscalls", store_io.WriteSyscalls());
  if (wal_active) {
    // Only present on WAL runs, so a WAL-off report stays byte-identical
    // to a build without the seam.
    store.PutInt("wal_records", store_io.wal_records);
    store.PutInt("wal_bytes", store_io.wal_bytes);
    store.PutInt("wal_commits", store_io.wal_commits);
    store.PutInt("wal_fsyncs", store_io.wal_fsyncs);
  }
  doc.PutDict("store", store);

  report::JsonDict async;
  async.PutBool("active", async_active);
  async.PutStr("backend", async_active ? storage::AsyncIoBackendName()
                                       : "sync");
  async.PutInt("jobs", async_io.jobs);
  async.PutInt("pages", async_io.pages);
  async.PutInt("waits_ready", async_io.waits_ready);
  async.PutInt("waits_blocked", async_io.waits_blocked);
  async.PutNum("overlap_ratio", async_io.OverlapRatio());
  async.PutInt("max_inflight", async_io.max_inflight);
  async.PutInt("uring_jobs", async_io.uring_jobs);
  doc.PutDict("async", async);

  report::JsonDict totals;
  totals.PutInt("queries", total.queries);
  totals.PutInt("disk_accesses", total.disk_accesses);
  totals.PutInt("node_accesses", total.node_accesses);
  totals.PutNum("mean_disk_accesses", total.MeanDiskAccesses());
  totals.PutNum("mean_node_accesses", total.MeanNodeAccesses());
  totals.PutNum("queries_per_second", total.QueriesPerSecond());
  doc.PutDict("totals", totals);

  std::vector<report::JsonDict> class_dicts;
  for (const ClassReport& cr : classes) {
    report::JsonDict c;
    c.PutStr("label", cr.label);
    c.PutStr("model", cr.qspec.center);
    if (cr.qspec.x.open) {
      c.PutStr("qx", "open");
    } else {
      c.PutNum("qx", cr.qspec.x.length);
    }
    if (cr.qspec.y.open) {
      c.PutStr("qy", "open");
    } else {
      c.PutNum("qy", cr.qspec.y.length);
    }
    c.PutInt("queries", cr.run.queries);
    c.PutInt("disk_accesses", cr.run.disk_accesses);
    c.PutInt("node_accesses", cr.run.node_accesses);
    c.PutNum("mean_disk_accesses", cr.run.MeanDiskAccesses());
    c.PutNum("mean_node_accesses", cr.run.MeanNodeAccesses());
    c.PutNum("elapsed_seconds", cr.run.elapsed_seconds);
    c.PutNum("queries_per_second", cr.run.QueriesPerSecond());
    if (cr.validated) {
      c.PutInt("searches", cr.run.searches);
      c.PutInt("inserts", cr.run.inserts);
      c.PutInt("deletes", cr.run.deletes);
      c.PutBool("validated", cr.validated);
    }
    if (cr.model_evaluated) {
      report::JsonDict predicted;
      predicted.PutNum("node_accesses", cr.predicted.node_accesses);
      predicted.PutNum("disk_accesses", cr.predicted.disk_accesses);
      predicted.PutNum("disk_accesses_continuous",
                       cr.predicted.disk_accesses_continuous);
      predicted.PutBool("feasible", cr.predicted.feasible);
      if (spec.pool.pinned_levels > 0) {
        predicted.PutInt("pinned_pages", cr.predicted.pinned_pages);
      }
      if (cr.predicted.batched) {
        // Only on batched runs, so batch_size == 1 reports keep their
        // pre-redesign bytes.
        predicted.PutNum("batched_disk_accesses",
                         cr.predicted.batched_disk_accesses);
        predicted.PutNum("effective_hit_rate",
                         cr.predicted.effective_hit_rate);
      }
      c.PutDict("predicted", predicted);
    }
    if (cr.run.per_worker.size() > 1) {
      std::vector<report::JsonDict> workers;
      for (size_t w = 0; w < cr.run.per_worker.size(); ++w) {
        report::JsonDict wd;
        wd.PutInt("worker", w);
        wd.PutInt("queries", cr.run.per_worker[w].queries);
        wd.PutInt("node_accesses", cr.run.per_worker[w].node_accesses);
        workers.push_back(std::move(wd));
      }
      c.PutDictArray("per_worker", workers);
    }
    class_dicts.push_back(std::move(c));
  }
  doc.PutDictArray("classes", class_dicts);
  return doc;
}

std::string RunReport::ToJsonString() const {
  return ToJsonDict().ToString() + "\n";
}

}  // namespace rtb::engine
