#include "engine/spec.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/query_gen.h"

namespace rtb::engine {

namespace {

using report::JsonValue;

Status Bad(const std::string& what) {
  return Status::InvalidArgument("spec: " + what);
}

Status GetStr(const JsonValue& v, const std::string& ctx, std::string* out) {
  if (!v.is_string()) return Bad(ctx + " must be a string");
  *out = v.str();
  return Status::OK();
}

Status GetUint(const JsonValue& v, const std::string& ctx, uint64_t* out) {
  // JSON numbers arrive as doubles; only exact non-negative integers are
  // valid counts/seeds.
  if (!v.is_number()) return Bad(ctx + " must be a number");
  const double d = v.number();
  if (d < 0 || d != std::floor(d) || d > 9.007199254740992e15) {
    return Bad(ctx + " must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(d);
  return Status::OK();
}

Status GetDouble(const JsonValue& v, const std::string& ctx, double* out) {
  if (!v.is_number()) return Bad(ctx + " must be a number");
  *out = v.number();
  return Status::OK();
}

Status GetBool(const JsonValue& v, const std::string& ctx, bool* out) {
  if (!v.is_bool()) return Bad(ctx + " must be true or false");
  *out = v.boolean();
  return Status::OK();
}

Status ParseDataset(const JsonValue& v, DatasetSpec* out) {
  if (!v.is_object()) return Bad("dataset must be an object");
  for (const auto& [key, value] : v.members()) {
    if (key == "kind") {
      RTB_RETURN_IF_ERROR(GetStr(value, "dataset.kind", &out->kind));
    } else if (key == "n") {
      RTB_RETURN_IF_ERROR(GetUint(value, "dataset.n", &out->n));
    } else if (key == "seed") {
      RTB_RETURN_IF_ERROR(GetUint(value, "dataset.seed", &out->seed));
    } else if (key == "path") {
      RTB_RETURN_IF_ERROR(GetStr(value, "dataset.path", &out->path));
    } else {
      return Bad("unknown key dataset." + key);
    }
  }
  return Status::OK();
}

Status ParseTree(const JsonValue& v, TreeSpec* out) {
  if (!v.is_object()) return Bad("tree must be an object");
  for (const auto& [key, value] : v.members()) {
    if (key == "fanout") {
      uint64_t fanout = 0;
      RTB_RETURN_IF_ERROR(GetUint(value, "tree.fanout", &fanout));
      out->fanout = static_cast<uint32_t>(fanout);
    } else if (key == "algo") {
      RTB_RETURN_IF_ERROR(GetStr(value, "tree.algo", &out->algo));
    } else if (key == "index") {
      RTB_RETURN_IF_ERROR(GetStr(value, "tree.index", &out->index));
    } else {
      return Bad("unknown key tree." + key);
    }
  }
  return Status::OK();
}

Status ParseWal(const JsonValue& v, WalSpec* out) {
  if (!v.is_object()) return Bad("storage.wal must be an object");
  for (const auto& [key, value] : v.members()) {
    if (key == "enabled") {
      RTB_RETURN_IF_ERROR(GetBool(value, "storage.wal.enabled", &out->enabled));
    } else if (key == "path") {
      RTB_RETURN_IF_ERROR(GetStr(value, "storage.wal.path", &out->path));
    } else if (key == "group_commit_window") {
      RTB_RETURN_IF_ERROR(GetUint(value, "storage.wal.group_commit_window",
                                  &out->group_commit_window));
    } else {
      return Bad("unknown key storage.wal." + key);
    }
  }
  return Status::OK();
}

Status ParseStorage(const JsonValue& v, StorageSpec* out) {
  if (!v.is_object()) return Bad("storage must be an object");
  for (const auto& [key, value] : v.members()) {
    if (key == "backend") {
      RTB_RETURN_IF_ERROR(GetStr(value, "storage.backend", &out->backend));
    } else if (key == "path") {
      RTB_RETURN_IF_ERROR(GetStr(value, "storage.path", &out->path));
    } else if (key == "vectored_io") {
      RTB_RETURN_IF_ERROR(
          GetBool(value, "storage.vectored_io", &out->vectored_io));
    } else if (key == "async_io") {
      RTB_RETURN_IF_ERROR(
          GetBool(value, "storage.async_io", &out->async_io));
    } else if (key == "wal") {
      RTB_RETURN_IF_ERROR(ParseWal(value, &out->wal));
    } else {
      return Bad("unknown key storage." + key);
    }
  }
  return Status::OK();
}

Status ParsePool(const JsonValue& v, PoolSpec* out) {
  if (!v.is_object()) return Bad("pool must be an object");
  for (const auto& [key, value] : v.members()) {
    if (key == "buffer_pages") {
      RTB_RETURN_IF_ERROR(
          GetUint(value, "pool.buffer_pages", &out->buffer_pages));
    } else if (key == "policy") {
      RTB_RETURN_IF_ERROR(GetStr(value, "pool.policy", &out->policy));
    } else if (key == "shards") {
      RTB_RETURN_IF_ERROR(GetUint(value, "pool.shards", &out->shards));
    } else if (key == "pinned_levels") {
      uint64_t levels = 0;
      RTB_RETURN_IF_ERROR(GetUint(value, "pool.pinned_levels", &levels));
      if (levels > UINT16_MAX) return Bad("pool.pinned_levels out of range");
      out->pinned_levels = static_cast<uint16_t>(levels);
    } else {
      return Bad("unknown key pool." + key);
    }
  }
  return Status::OK();
}

// An extent is a number, or the string "open" for an unconstrained
// (partial-match) axis.
Status GetExtent(const JsonValue& v, const std::string& ctx,
                 model::AxisExtent* out) {
  if (v.is_string()) {
    if (v.str() != "open") {
      return Bad(ctx + " must be a number or \"open\"");
    }
    *out = model::AxisExtent::Open();
    return Status::OK();
  }
  double length = 0.0;
  RTB_RETURN_IF_ERROR(GetDouble(v, ctx, &length));
  *out = model::AxisExtent::Fixed(length);
  return Status::OK();
}

Status ParseClass(const JsonValue& v, size_t i, QueryClassSpec* out) {
  const std::string ctx = "workload.classes[" + std::to_string(i) + "]";
  if (!v.is_object()) return Bad(ctx + " must be an object");
  bool saw_cluster_key = false;
  for (const auto& [key, value] : v.members()) {
    if (key == "label") {
      RTB_RETURN_IF_ERROR(GetStr(value, ctx + ".label", &out->label));
    } else if (key == "model") {
      RTB_RETURN_IF_ERROR(GetStr(value, ctx + ".model", &out->query.center));
    } else if (key == "qx") {
      RTB_RETURN_IF_ERROR(GetExtent(value, ctx + ".qx", &out->query.x));
    } else if (key == "qy") {
      RTB_RETURN_IF_ERROR(GetExtent(value, ctx + ".qy", &out->query.y));
    } else if (key == "hotspots") {
      uint64_t hotspots = 0;
      RTB_RETURN_IF_ERROR(GetUint(value, ctx + ".hotspots", &hotspots));
      if (hotspots == 0 || hotspots > UINT32_MAX) {
        return Bad(ctx + ".hotspots out of range");
      }
      out->query.cluster.hotspots = static_cast<uint32_t>(hotspots);
      saw_cluster_key = true;
    } else if (key == "spread") {
      RTB_RETURN_IF_ERROR(
          GetDouble(value, ctx + ".spread", &out->query.cluster.spread));
      saw_cluster_key = true;
    } else if (key == "skew") {
      RTB_RETURN_IF_ERROR(
          GetDouble(value, ctx + ".skew", &out->query.cluster.skew));
      saw_cluster_key = true;
    } else if (key == "hotspot_seed") {
      RTB_RETURN_IF_ERROR(GetUint(value, ctx + ".hotspot_seed",
                                  &out->query.cluster.placement_seed));
      saw_cluster_key = true;
    } else if (key == "count") {
      RTB_RETURN_IF_ERROR(GetUint(value, ctx + ".count", &out->count));
    } else if (key == "insert_frac") {
      RTB_RETURN_IF_ERROR(
          GetDouble(value, ctx + ".insert_frac", &out->insert_frac));
    } else if (key == "delete_frac") {
      RTB_RETURN_IF_ERROR(
          GetDouble(value, ctx + ".delete_frac", &out->delete_frac));
    } else {
      return Bad("unknown key " + ctx + "." + key);
    }
  }
  if (saw_cluster_key && out->query.center != model::kCenterCluster) {
    return Bad(ctx + ": hotspots/spread/skew/hotspot_seed require "
               "model 'cluster'");
  }
  return Status::OK();
}

Status ParseWorkload(const JsonValue& v, WorkloadSpec* out) {
  if (!v.is_object()) return Bad("workload must be an object");
  for (const auto& [key, value] : v.members()) {
    if (key == "warmup") {
      RTB_RETURN_IF_ERROR(GetUint(value, "workload.warmup", &out->warmup));
    } else if (key == "batch_size") {
      RTB_RETURN_IF_ERROR(
          GetUint(value, "workload.batch_size", &out->batch_size));
    } else if (key == "shared_frontier") {
      RTB_RETURN_IF_ERROR(GetBool(value, "workload.shared_frontier",
                                  &out->shared_frontier));
    } else if (key == "update_batch_size") {
      RTB_RETURN_IF_ERROR(GetUint(value, "workload.update_batch_size",
                                  &out->update_batch_size));
    } else if (key == "classes") {
      if (!value.is_array()) return Bad("workload.classes must be an array");
      out->classes.clear();
      for (size_t i = 0; i < value.array().size(); ++i) {
        QueryClassSpec cls;
        RTB_RETURN_IF_ERROR(ParseClass(value.array()[i], i, &cls));
        out->classes.push_back(std::move(cls));
      }
    } else {
      return Bad("unknown key workload." + key);
    }
  }
  return Status::OK();
}

Status ParseRun(const JsonValue& v, RunSpec* out) {
  if (!v.is_object()) return Bad("run must be an object");
  for (const auto& [key, value] : v.members()) {
    if (key == "threads") {
      uint64_t threads = 0;
      RTB_RETURN_IF_ERROR(GetUint(value, "run.threads", &threads));
      if (threads > UINT32_MAX) return Bad("run.threads out of range");
      out->threads = static_cast<uint32_t>(threads);
    } else if (key == "seed") {
      RTB_RETURN_IF_ERROR(GetUint(value, "run.seed", &out->seed));
    } else if (key == "evaluate_model") {
      RTB_RETURN_IF_ERROR(
          GetBool(value, "run.evaluate_model", &out->evaluate_model));
    } else {
      return Bad("unknown key run." + key);
    }
  }
  return Status::OK();
}

bool ValidKind(const std::string& kind) {
  return kind == "uniform" || kind == "region" || kind == "tiger" ||
         kind == "cfd" || kind == "clusters" || kind == "file";
}

bool ValidAlgo(const std::string& algo) {
  return algo == "HS" || algo == "NX" || algo == "STR" || algo == "TAT" ||
         algo == "RSTAR";
}

}  // namespace

Result<storage::PolicyKind> ParsePolicyKind(const std::string& name) {
  if (name == "LRU") return storage::PolicyKind::kLru;
  if (name == "FIFO") return storage::PolicyKind::kFifo;
  if (name == "CLOCK") return storage::PolicyKind::kClock;
  if (name == "LFU") return storage::PolicyKind::kLfu;
  if (name == "RANDOM") return storage::PolicyKind::kRandom;
  if (name == "LRU2") return storage::PolicyKind::kLruK;
  return Status::InvalidArgument(
      "unknown policy '" + name + "' (LRU|FIFO|CLOCK|LFU|RANDOM|LRU2)");
}

Result<ExperimentSpec> ExperimentSpec::FromJson(const std::string& text) {
  RTB_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  if (!doc.is_object()) return Bad("top level must be an object");
  ExperimentSpec spec;
  for (const auto& [key, value] : doc.members()) {
    if (key == "name") {
      RTB_RETURN_IF_ERROR(GetStr(value, "name", &spec.name));
    } else if (key == "dataset") {
      RTB_RETURN_IF_ERROR(ParseDataset(value, &spec.dataset));
    } else if (key == "tree") {
      RTB_RETURN_IF_ERROR(ParseTree(value, &spec.tree));
    } else if (key == "storage") {
      RTB_RETURN_IF_ERROR(ParseStorage(value, &spec.storage));
    } else if (key == "pool") {
      RTB_RETURN_IF_ERROR(ParsePool(value, &spec.pool));
    } else if (key == "workload") {
      RTB_RETURN_IF_ERROR(ParseWorkload(value, &spec.workload));
    } else if (key == "run") {
      RTB_RETURN_IF_ERROR(ParseRun(value, &spec.run));
    } else {
      return Bad("unknown key " + key);
    }
  }
  RTB_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Result<ExperimentSpec> ExperimentSpec::FromJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return FromJson(text.str());
}

Status ExperimentSpec::Validate() const {
  if (!ValidKind(dataset.kind)) {
    return Bad("unknown dataset.kind '" + dataset.kind +
               "' (uniform|region|tiger|cfd|clusters|file)");
  }
  if (dataset.kind == "file" && dataset.path.empty()) {
    return Bad("dataset.kind 'file' needs dataset.path");
  }
  if (dataset.kind != "file" && dataset.n == 0) {
    return Bad("dataset.n must be >= 1");
  }
  if (tree.fanout < 2) return Bad("tree.fanout must be >= 2");
  if (!ValidAlgo(tree.algo)) {
    return Bad("unknown tree.algo '" + tree.algo +
               "' (HS|NX|STR|TAT|RSTAR)");
  }
  if (storage.backend != "mem" && storage.backend != "file") {
    return Bad("unknown storage.backend '" + storage.backend +
               "' (mem|file)");
  }
  if (storage.backend == "file" && storage.path.empty()) {
    return Bad("storage.backend 'file' needs storage.path");
  }
  if (storage.backend == "file" && !tree.index.empty()) {
    // A persistent index carries its own store file; a second one would
    // silently go unused.
    return Bad("storage.backend 'file' conflicts with tree.index");
  }
  if (storage.wal.enabled && storage.backend != "file") {
    // The log redoes/undoes pages of a real store file; an in-memory store
    // has nothing to recover.
    return Bad("storage.wal.enabled requires storage.backend 'file'");
  }
  if (storage.wal.group_commit_window == 0) {
    return Bad("storage.wal.group_commit_window must be >= 1");
  }
  if (pool.buffer_pages == 0) return Bad("pool.buffer_pages must be >= 1");
  RTB_RETURN_IF_ERROR(ParsePolicyKind(pool.policy).status());
  if (workload.batch_size == 0) {
    return Bad("workload.batch_size must be >= 1");
  }
  if (workload.shared_frontier && workload.batch_size < 2) {
    return Bad("workload.shared_frontier requires workload.batch_size >= 2");
  }
  if (workload.update_batch_size == 0) {
    return Bad("workload.update_batch_size must be >= 1");
  }
  if (workload.classes.empty()) {
    return Bad("workload.classes must have at least one class");
  }
  for (size_t i = 0; i < workload.classes.size(); ++i) {
    const QueryClassSpec& cls = workload.classes[i];
    const std::string ctx = "workload.classes[" + std::to_string(i) + "]";
    if (!sim::HasGenerator(cls.query.center)) {
      return Bad(ctx + ".model must name a registered query model "
                 "('uniform', 'data', 'cluster', ...)");
    }
    if ((!cls.query.x.open &&
         !(cls.query.x.length >= 0.0 && cls.query.x.length < 1.0)) ||
        (!cls.query.y.open &&
         !(cls.query.y.length >= 0.0 && cls.query.y.length < 1.0))) {
      return Bad(ctx + " extents must be in [0, 1)");
    }
    if (Status s = cls.query.Validate(); !s.ok()) {
      return Bad(ctx + ": " + s.message());
    }
    if (cls.count == 0) return Bad(ctx + ".count must be >= 1");
    if (!(cls.insert_frac >= 0.0 && cls.insert_frac <= 1.0) ||
        !(cls.delete_frac >= 0.0 && cls.delete_frac <= 1.0) ||
        cls.insert_frac + cls.delete_frac > 1.0) {
      return Bad(ctx + " update fractions must be in [0, 1] with sum <= 1");
    }
    if (cls.IsMixed()) {
      if (cls.query.has_open_axis()) {
        // Mixed classes insert rectangles drawn from the query generator;
        // an open axis would insert infinite geometry into the tree.
        return Bad(ctx + " mixes updates, which conflicts with open axes");
      }
      if (!tree.index.empty()) {
        // Updates mutate the store; an opened index file must not be
        // rewritten behind the user's back, and the delete ledger needs
        // the dataset the tree was built from.
        return Bad(ctx + " mixes updates, which requires a dataset-built "
                   "tree (tree.index must be empty)");
      }
      if (run.threads != 1) {
        return Bad(ctx + " mixes updates, which requires run.threads == 1");
      }
      if (workload.shared_frontier) {
        return Bad(ctx + " mixes updates, which conflicts with "
                   "workload.shared_frontier");
      }
    }
    if (sim::GeneratorNeedsCenters(cls.query.center) && !tree.index.empty() &&
        dataset.path.empty()) {
      // Built trees supply query centers from their own data; an opened
      // index has no data on hand, so the centers must come from a file.
      return Bad(ctx + " is data-driven over an opened index; set "
                 "dataset.path to the rectangle file");
    }
  }
  if (run.threads == 0) return Bad("run.threads must be >= 1");
  return Status::OK();
}

report::JsonDict ExperimentSpec::ToJsonDict() const {
  report::JsonDict doc;
  doc.PutStr("name", name);

  report::JsonDict ds;
  ds.PutStr("kind", dataset.kind);
  ds.PutInt("n", dataset.n);
  ds.PutInt("seed", dataset.seed);
  if (!dataset.path.empty()) ds.PutStr("path", dataset.path);
  doc.PutDict("dataset", ds);

  report::JsonDict tr;
  tr.PutInt("fanout", tree.fanout);
  tr.PutStr("algo", tree.algo);
  if (!tree.index.empty()) tr.PutStr("index", tree.index);
  doc.PutDict("tree", tr);

  report::JsonDict st;
  st.PutStr("backend", storage.backend);
  if (!storage.path.empty()) st.PutStr("path", storage.path);
  st.PutBool("vectored_io", storage.vectored_io);
  st.PutBool("async_io", storage.async_io);
  if (storage.wal.enabled || !storage.wal.path.empty() ||
      storage.wal.group_commit_window != WalSpec().group_commit_window) {
    // Omitted entirely at the defaults, so a WAL-off spec round-trips to
    // the same bytes it produced before the WAL existed.
    report::JsonDict wal;
    wal.PutBool("enabled", storage.wal.enabled);
    if (!storage.wal.path.empty()) wal.PutStr("path", storage.wal.path);
    wal.PutInt("group_commit_window", storage.wal.group_commit_window);
    st.PutDict("wal", wal);
  }
  doc.PutDict("storage", st);

  report::JsonDict pl;
  pl.PutInt("buffer_pages", pool.buffer_pages);
  pl.PutStr("policy", pool.policy);
  pl.PutInt("shards", pool.shards);
  pl.PutInt("pinned_levels", pool.pinned_levels);
  doc.PutDict("pool", pl);

  report::JsonDict wl;
  wl.PutInt("warmup", workload.warmup);
  wl.PutInt("batch_size", workload.batch_size);
  wl.PutBool("shared_frontier", workload.shared_frontier);
  wl.PutInt("update_batch_size", workload.update_batch_size);
  std::vector<report::JsonDict> classes;
  for (const QueryClassSpec& cls : workload.classes) {
    report::JsonDict c;
    if (!cls.label.empty()) c.PutStr("label", cls.label);
    c.PutStr("model", cls.query.center);
    // An open axis emits the string "open"; fixed extents stay numbers, so
    // pre-redesign specs round-trip byte-identically.
    if (cls.query.x.open) {
      c.PutStr("qx", "open");
    } else {
      c.PutNum("qx", cls.query.x.length);
    }
    if (cls.query.y.open) {
      c.PutStr("qy", "open");
    } else {
      c.PutNum("qy", cls.query.y.length);
    }
    if (cls.query.center == model::kCenterCluster) {
      // Cluster parameters only exist for cluster classes, mirroring the
      // WAL dict's omit-at-defaults contract.
      c.PutInt("hotspots", cls.query.cluster.hotspots);
      c.PutNum("spread", cls.query.cluster.spread);
      c.PutNum("skew", cls.query.cluster.skew);
      c.PutInt("hotspot_seed", cls.query.cluster.placement_seed);
    }
    c.PutInt("count", cls.count);
    if (cls.IsMixed()) {
      c.PutNum("insert_frac", cls.insert_frac);
      c.PutNum("delete_frac", cls.delete_frac);
    }
    classes.push_back(std::move(c));
  }
  wl.PutDictArray("classes", classes);
  doc.PutDict("workload", wl);

  report::JsonDict rn;
  rn.PutInt("threads", run.threads);
  rn.PutInt("seed", run.seed);
  rn.PutBool("evaluate_model", run.evaluate_model);
  doc.PutDict("run", rn);
  return doc;
}

}  // namespace rtb::engine
